// Quickstart: create an ioSnap device, write data, take a snapshot,
// overwrite the data, and read the original back through an activated
// snapshot view — the paper's core promise in ~60 lines.
package main

import (
	"fmt"
	"log"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

func main() {
	// A small device with payload storage so we can verify contents.
	nc := nand.DefaultConfig()
	nc.SectorSize = 4096
	nc.PagesPerSegment = 256
	nc.Segments = 64
	nc.StoreData = true

	dev, err := iosnap.New(iosnap.DefaultConfig(nc), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %d sectors x %d B (%.0f MB usable)\n",
		dev.Sectors(), dev.SectorSize(), float64(dev.Sectors()*4096)/(1<<20))

	// Write version 1 of a "document" at LBA 0.
	now := sim.Time(0)
	v1 := make([]byte, 4096)
	copy(v1, "important document, version 1")
	now, err = dev.Write(now, 0, v1)
	if err != nil {
		log.Fatal(err)
	}

	// Snapshot: one log note, tens of microseconds.
	before := now
	snap, now, err := dev.CreateSnapshot(now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %d created in %v\n", snap.ID, now.Sub(before))

	// Oops: overwrite the document.
	v2 := make([]byte, 4096)
	copy(v2, "corrupted!!")
	if now, err = dev.Write(now, 0, v2); err != nil {
		log.Fatal(err)
	}

	buf := make([]byte, 4096)
	if now, err = dev.Read(now, 0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("active device reads: %q\n", string(buf[:30]))

	// Activate the snapshot (deferred work happens here: log scan + map
	// reconstruction) and read the original.
	view, now, err := dev.ActivateSync(now, snap.ID, ratelimit.WorkSleep{}, false)
	if err != nil {
		log.Fatal(err)
	}
	if now, err = view.Read(now, 0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %d reads:    %q\n", snap.ID, string(buf[:30]))
	fmt.Printf("snapshot map: %d entries in %d B\n", view.MappedSectors(), view.MapMemory())

	if _, err := view.Deactivate(now); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok: the overwrite never touched the snapshot")
}
