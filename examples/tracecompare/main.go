// Trace compare: record one database-like workload trace on ioSnap, then
// replay the identical trace (open-loop, preserving inter-arrival times)
// against the vanilla FTL and the disk-optimized CoW baseline — an
// apples-to-apples, single-workload version of the paper's §6.4
// comparison, built on the trace record/replay package.
package main

import (
	"bytes"
	"fmt"
	"log"

	"iosnap/internal/blockdev"
	"iosnap/internal/cowsim"
	"iosnap/internal/ftl"
	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
	"iosnap/internal/trace"
	"iosnap/internal/workload"
)

func deviceConfig() nand.Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 4096
	nc.PagesPerSegment = 256
	nc.Segments = 128
	return nc
}

func main() {
	// 1. Record: a zipf-skewed update workload with a snapshot mid-way,
	//    running on ioSnap.
	iodev, err := iosnap.New(iosnap.DefaultConfig(deviceConfig()), nil)
	if err != nil {
		log.Fatal(err)
	}
	rec := trace.NewRecorder(iodev)
	region := int64(48 << 20 / 4096)

	now, err := workload.Fill(rec, 0, 128<<10, 0, region, iodev.Scheduler())
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.Spec{
		Kind: workload.Write, Pattern: workload.Zipf, ZipfS: 1.2,
		BlockSize: 4096, Threads: 1, QueueDepth: 1,
		RangeHi: region, Seed: 42, MaxOps: 20000,
	}
	ioLat := sim.NewLatencyRecorder(0)
	written := 0
	_, end, err := workload.Run(rec, now, spec, workload.Options{
		Scheduler: iodev.Scheduler(),
		Latency:   ioLat,
		BetweenOps: func(t sim.Time) sim.Time {
			written++
			if written == 10000 { // snapshot mid-run
				if _, t2, err := iodev.CreateSnapshot(t); err == nil {
					t = t2
				}
			}
			return t
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = end
	captured := rec.Trace()
	fmt.Printf("recorded %d ops on ioSnap (1 snapshot mid-run): mean %v, max %v\n",
		len(captured.Ops), ioLat.Mean(), ioLat.Max())

	// Serialize + reload, as a real trace archive would.
	var stream bytes.Buffer
	if err := captured.Save(&stream); err != nil {
		log.Fatal(err)
	}
	archiveBytes := stream.Len()
	loaded, err := trace.Load(&stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace archive: %d bytes for %d ops\n\n", archiveBytes, len(loaded.Ops))
	// Split the trace where the snapshot was taken so every system
	// snapshots at the same point in the op stream.
	fillOps := len(loaded.Ops) - 20000
	snapAt := fillOps + 10000
	firstHalf := &trace.Trace{SectorSize: loaded.SectorSize, Ops: loaded.Ops[:snapAt]}
	secondHalf := &trace.Trace{SectorSize: loaded.SectorSize, Ops: loaded.Ops[snapAt:]}

	// 2. Replay on the other two systems, preserving the original timing.
	vdev, err := ftl.New(ftl.DefaultConfig(deviceConfig()), nil)
	if err != nil {
		log.Fatal(err)
	}
	ccfg := cowsim.DefaultConfig(vdev.Sectors())
	cdev, err := cowsim.New(ccfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, sys := range []struct {
		name string
		dev  blockdev.Device
		sch  *sim.Scheduler
		snap func(now sim.Time) (sim.Time, error)
	}{
		{"vanilla FTL", vdev, vdev.Scheduler(), func(now sim.Time) (sim.Time, error) { return now, nil }},
		{"Btrfs-like ", cdev, nil, func(now sim.Time) (sim.Time, error) {
			_, t, err := cdev.CreateSnapshot(now)
			return t, err
		}},
	} {
		lat := sim.NewLatencyRecorder(0)
		res1, mid, err := trace.Replay(sys.dev, 0, firstHalf, trace.ReplayOptions{
			PreserveTiming: true, Scheduler: sys.sch, Latency: lat,
		})
		if err != nil {
			log.Fatalf("%s: %v", sys.name, err)
		}
		if mid, err = sys.snap(mid); err != nil {
			log.Fatalf("%s snapshot: %v", sys.name, err)
		}
		res2, _, err := trace.Replay(sys.dev, mid, secondHalf, trace.ReplayOptions{
			PreserveTiming: true, Scheduler: sys.sch, Latency: lat,
		})
		if err != nil {
			log.Fatalf("%s: %v", sys.name, err)
		}
		fmt.Printf("replayed on %s: %d ops, mean %v, p99 %v, max %v\n",
			sys.name, res1.Ops+res2.Ops, lat.Mean(), lat.Percentile(99), lat.Max())
	}
	fmt.Println("\nsame trace, three systems: ioSnap tracks the vanilla FTL; the CoW baseline pays per-write snapshot taxes")
}
