// Rate limiting: activate a snapshot while a latency-sensitive read
// workload runs, with and without the activation rate limiter — the
// trade-off of the paper's Figure 9 as a runnable demo.
package main

import (
	"fmt"
	"log"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

func main() {
	configs := []struct {
		name  string
		limit ratelimit.WorkSleep
	}{
		{"unthrottled", ratelimit.WorkSleep{}},
		{"rate-limited", ratelimit.WorkSleep{Work: 100 * sim.Microsecond, Sleep: 2 * sim.Millisecond}},
	}
	for _, c := range configs {
		nc := nand.DefaultConfig()
		nc.SectorSize = 4096
		nc.PagesPerSegment = 256
		nc.Segments = 192

		dev, err := iosnap.New(iosnap.DefaultConfig(nc), nil)
		if err != nil {
			log.Fatal(err)
		}
		sched := dev.Scheduler()

		// 128 MB of data, then a snapshot.
		spec := workload.Spec{
			Kind: workload.Write, Pattern: workload.Random,
			BlockSize: 4096, Threads: 2, QueueDepth: 16,
			TotalBytes: 128 << 20, Seed: 1, SubmitCost: sim.Microsecond,
		}
		_, now, err := workload.Run(dev, 0, spec, workload.Options{Scheduler: sched})
		if err != nil {
			log.Fatal(err)
		}
		snap, now, err := dev.CreateSnapshot(now)
		if err != nil {
			log.Fatal(err)
		}

		// Baseline read latency.
		base := sim.NewLatencyRecorder(0)
		readSpec := workload.Spec{
			Kind: workload.Read, Pattern: workload.Random,
			BlockSize: 4096, Threads: 1, QueueDepth: 1,
			MaxTime: now.Add(sim.Duration(200 * sim.Millisecond)), Seed: 2,
		}
		if _, now, err = workload.Run(dev, now, readSpec, workload.Options{Scheduler: sched, Latency: base}); err != nil {
			log.Fatal(err)
		}

		// Activate in the background while reads continue.
		actStart := now
		act, now, err := dev.Activate(now, snap.ID, c.limit, false)
		if err != nil {
			log.Fatal(err)
		}
		during := sim.NewLatencyRecorder(0)
		for !act.Ready() {
			slice := readSpec
			slice.MaxTime = now.Add(sim.Duration(20 * sim.Millisecond))
			slice.Seed = uint64(now)
			if _, now, err = workload.Run(dev, now, slice, workload.Options{Scheduler: sched, Latency: during}); err != nil {
				log.Fatal(err)
			}
		}
		view, err := act.View()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s activation took %8v | read latency: baseline mean %v, during mean %v, during max %v\n",
			c.name+":", act.CompletedAt().Sub(actStart), base.Mean(), during.Mean(), during.Max())
		fmt.Printf("%-13s snapshot view holds %d translations\n", "", view.MappedSectors())
	}
	fmt.Println("\nthe limiter trades activation time for foreground latency (paper Fig. 9)")
}
