// Crash recovery: write data across several snapshots, "crash" without a
// clean shutdown, then run the paper's two-pass recovery — rebuilding the
// snapshot tree from log notes and the active forward map bottom-up — and
// verify both the active state and an activated snapshot.
package main

import (
	"bytes"
	"fmt"
	"log"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

func pattern(lba int64, version byte) []byte {
	b := make([]byte, 4096)
	for i := range b {
		b[i] = byte(lba) ^ version ^ byte(i)
	}
	return b
}

func main() {
	nc := nand.DefaultConfig()
	nc.SectorSize = 4096
	nc.PagesPerSegment = 128
	nc.Segments = 64
	nc.StoreData = true

	cfg := iosnap.DefaultConfig(nc)
	dev, err := iosnap.New(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Three generations of data with a snapshot after each.
	now := sim.Time(0)
	var snaps []*iosnap.Snapshot
	for gen := byte(1); gen <= 3; gen++ {
		for lba := int64(0); lba < 200; lba++ {
			dev.Scheduler().RunUntil(now)
			if now, err = dev.Write(now, lba, pattern(lba, gen)); err != nil {
				log.Fatal(err)
			}
		}
		snap, t, err := dev.CreateSnapshot(now)
		if err != nil {
			log.Fatal(err)
		}
		now = t
		snaps = append(snaps, snap)
		fmt.Printf("generation %d written, snapshot %d (epoch %d)\n", gen, snap.ID, snap.Epoch)
	}
	// More uncommitted writes after the last snapshot.
	for lba := int64(0); lba < 50; lba++ {
		dev.Scheduler().RunUntil(now)
		if now, err = dev.Write(now, lba, pattern(lba, 9)); err != nil {
			log.Fatal(err)
		}
	}

	// CRASH: no Close, no checkpoint. All host memory is gone; only the
	// NAND device survives.
	raw := dev.Device()
	fmt.Println("\n-- crash! recovering from the raw log --")

	rec, t, err := iosnap.Recover(cfg, raw, nil, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery scanned the log in %v (virtual)\n", t.Sub(now))
	now = t
	fmt.Printf("snapshot tree recovered: %d snapshots, active epoch %d\n",
		rec.Tree().Len(), rec.ActiveEpoch())

	// Verify the active state: LBAs 0..49 are generation 9, the rest 3.
	buf := make([]byte, 4096)
	for lba := int64(0); lba < 200; lba++ {
		want := byte(3)
		if lba < 50 {
			want = 9
		}
		if now, err = rec.Read(now, lba, buf); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf, pattern(lba, want)) {
			log.Fatalf("active LBA %d corrupted after recovery", lba)
		}
	}
	fmt.Println("active state verified: uncommitted writes survived the crash")

	// Activate the middle snapshot and verify it shows generation 2.
	view, t2, err := rec.ActivateSync(now, snaps[1].ID, ratelimit.WorkSleep{}, false)
	if err != nil {
		log.Fatal(err)
	}
	now = t2
	for lba := int64(0); lba < 200; lba++ {
		if now, err = view.Read(now, lba, buf); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf, pattern(lba, 2)) {
			log.Fatalf("snapshot 2 LBA %d wrong after recovery", lba)
		}
	}
	fmt.Printf("snapshot %d verified post-crash: all 200 blocks show generation 2\n", snaps[1].ID)
}
