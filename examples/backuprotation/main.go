// Backup rotation: a database-like workload takes a snapshot every virtual
// minute and keeps only the last three — the high-snapshot-frequency usage
// the paper argues flash makes practical. Old snapshots are deleted (one
// log note each) and the segment cleaner reclaims their exclusive blocks in
// the background.
package main

import (
	"fmt"
	"log"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

const retain = 3

func main() {
	nc := nand.DefaultConfig()
	nc.SectorSize = 4096
	nc.PagesPerSegment = 512
	nc.Segments = 256 // 512 MB raw

	dev, err := iosnap.New(iosnap.DefaultConfig(nc), nil)
	if err != nil {
		log.Fatal(err)
	}
	sched := dev.Scheduler()

	// The "database": zipf-skewed 4K updates over a 64 MB working set.
	region := int64(64 << 20 / 4096)
	now, err := workload.Fill(dev, 0, 128<<10, 0, region, sched)
	if err != nil {
		log.Fatal(err)
	}

	var ring []iosnap.SnapshotID
	for minute := 1; minute <= 8; minute++ {
		spec := workload.Spec{
			Kind: workload.Write, Pattern: workload.Zipf, ZipfS: 1.2,
			BlockSize: 4096, Threads: 2, QueueDepth: 8,
			SubmitCost: sim.Microsecond,
			RangeHi:    region, Seed: uint64(minute),
			MaxTime: now.Add(sim.Duration(1 * sim.Second)), // 1 virtual "minute"
		}
		res, end, err := workload.Run(dev, now, spec, workload.Options{Scheduler: sched})
		if err != nil {
			log.Fatal(err)
		}
		now = end

		snap, end2, err := dev.CreateSnapshot(now)
		if err != nil {
			log.Fatal(err)
		}
		now = end2
		ring = append(ring, snap.ID)
		fmt.Printf("minute %d: %5.0f MB written, snapshot %d taken (%d live, free segments %d)\n",
			minute, float64(res.Bytes)/(1<<20), snap.ID, dev.Tree().Live(), dev.FreeSegments())

		// Rotate: delete beyond the retention window.
		for len(ring) > retain {
			victim := ring[0]
			ring = ring[1:]
			if now, err = dev.DeleteSnapshot(now, victim); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("          rotated out snapshot %d\n", victim)
		}
	}
	now = sched.Drain(now)

	st := dev.Stats()
	fmt.Printf("\nfinal: %d live snapshots, %d deleted; cleaner ran %d times, "+
		"write amplification %.2f, validity CoW pages %d\n",
		dev.Tree().Live(), st.SnapshotDeletes, st.GCRuns, st.WriteAmplify, st.CoWPageCopies)
	fmt.Printf("snapshot metadata on flash: %d notes x 4 KB; map memory %s\n",
		st.SnapshotCreates+st.SnapshotDeletes, fmtBytes(st.MapMemory))
}

func fmtBytes(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
}
