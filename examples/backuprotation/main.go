// Backup rotation: a database-like workload takes a snapshot every virtual
// minute and keeps only the last three — the high-snapshot-frequency usage
// the paper argues flash makes practical. Before a snapshot is rotated out
// it is replicated off-device: the first generation ships as a full image,
// every later one as an incremental delta against the previous generation
// (diffing the two frozen epoch maps — no activation needed), and each
// transfer ends with a hash verify of everything the manifest claims.
// Only then are old snapshots deleted and their blocks reclaimed.
package main

import (
	"fmt"
	"log"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

const retain = 3

func main() {
	nc := nand.DefaultConfig()
	nc.SectorSize = 4096
	nc.PagesPerSegment = 512
	nc.Segments = 256 // 512 MB raw
	nc.StoreData = true // replication ships real payloads, not fingerprints

	dev, err := iosnap.New(iosnap.DefaultConfig(nc), nil)
	if err != nil {
		log.Fatal(err)
	}
	sched := dev.Scheduler()

	// The replica tier: a second device the snapshots are shipped to. Any
	// blockdev.Device works; an FTL keeps the demo self-contained.
	arch, err := iosnap.New(iosnap.DefaultConfig(nc), nil)
	if err != nil {
		log.Fatal(err)
	}
	repl := &iosnap.Replicator{
		Src:    dev,
		Dst:    arch,
		Policy: retry.Policy{MaxAttempts: 4, Backoff: 100 * sim.Microsecond},
	}

	// The "database": zipf-skewed 4K updates over a 64 MB working set.
	region := int64(64 << 20 / 4096)
	now, err := workload.Fill(dev, 0, 128<<10, 0, region, sched)
	if err != nil {
		log.Fatal(err)
	}

	var (
		ring     []iosnap.SnapshotID
		lastRepl iosnap.SnapshotID // previous generation on the replica
	)
	for minute := 1; minute <= 8; minute++ {
		spec := workload.Spec{
			Kind: workload.Write, Pattern: workload.Zipf, ZipfS: 1.2,
			BlockSize: 4096, Threads: 2, QueueDepth: 8,
			SubmitCost: sim.Microsecond,
			RangeHi:    region, Seed: uint64(minute),
			MaxTime: now.Add(sim.Duration(1 * sim.Second)), // 1 virtual "minute"
		}
		res, end, err := workload.Run(dev, now, spec, workload.Options{Scheduler: sched})
		if err != nil {
			log.Fatal(err)
		}
		now = end

		snap, end2, err := dev.CreateSnapshot(now)
		if err != nil {
			log.Fatal(err)
		}
		now = end2
		ring = append(ring, snap.ID)
		fmt.Printf("minute %d: %5.0f MB written, snapshot %d taken (%d live, free segments %d)\n",
			minute, float64(res.Bytes)/(1<<20), snap.ID, dev.Tree().Live(), dev.FreeSegments())

		// Ship this generation before anything older is rotated out. The
		// replicator diffs against lastRepl's frozen epoch (full image when
		// zero), retries damaged transfers, and verifies every shipped and
		// trimmed sector against the manifest hashes before committing.
		before := dev.Stats()
		start := now
		m, end3, err := repl.Replicate(now, snap.ID, lastRepl)
		if err != nil {
			log.Fatalf("replicate snapshot %d: %v", snap.ID, err)
		}
		now = arch.Scheduler().Drain(end3)
		after := dev.Stats()
		kind := "delta"
		if !m.IsDelta() {
			kind = "full"
		}
		fmt.Printf("          replicated as %s: %d sectors shipped (%d deduped, %d deletes), "+
			"%.0f MB over wire in %v virtual\n",
			kind, after.ExportChunks-before.ExportChunks,
			after.ExportDedupHits-before.ExportDedupHits, len(m.Deletes),
			float64(len(m.Writes)*nc.SectorSize)/(1<<20), now.Sub(start))
		lastRepl = snap.ID

		// Per-generation spot check: re-verify the committed generation
		// manifest after the replicator's own verify pass has run.
		if bad, _, err := iosnap.VerifyReplica(arch, now, repl.Generation()); err != nil {
			log.Fatal(err)
		} else if len(bad) > 0 {
			log.Fatalf("replica diverges at %d sectors (first: LBA %d)", len(bad), bad[0])
		}

		// Rotate: delete beyond the retention window — safe now that every
		// generation in the window has been verified off-device.
		for len(ring) > retain {
			victim := ring[0]
			ring = ring[1:]
			if now, err = dev.DeleteSnapshot(now, victim); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("          rotated out snapshot %d (archived)\n", victim)
		}
	}
	now = sched.Drain(now)

	st := dev.Stats()
	fmt.Printf("\nfinal: %d live snapshots, %d deleted; cleaner ran %d times, "+
		"write amplification %.2f, validity CoW pages %d\n",
		dev.Tree().Live(), st.SnapshotDeletes, st.GCRuns, st.WriteAmplify, st.CoWPageCopies)
	fmt.Printf("replication: %d sectors shipped total, %d deduped, %d retries, %d verify mismatches healed\n",
		st.ExportChunks, st.ExportDedupHits, st.ImportRetries, st.VerifyMismatches)
	fmt.Printf("snapshot metadata on flash: %d notes x 4 KB; map memory %s\n",
		st.SnapshotCreates+st.SnapshotDeletes, fmtBytes(st.MapMemory))
}

func fmtBytes(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
}
