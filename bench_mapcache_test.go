package main

import (
	"fmt"
	"testing"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

// BenchmarkMapCache traces the paged mapping table's hit-rate /
// foreground-latency tradeoff on a TB-class device (DESIGN.md §13). The
// full in-RAM map for such a device would not fit the paper's FTL RAM
// budget; the paged map keeps a bounded translation-page cache instead,
// and this bench sweeps that bound under a hot/cold read mix whose
// locality knobs (workload.HotCold) map directly onto translation-page
// reuse. Metrics per variant: cache hit rate, mean foreground virtual
// latency, and resident map bytes. All are deterministic virtual
// quantities — one iteration suffices.
//
// Gated by scripts/bench.sh: the largest cache must reach a 90% hit rate
// while staying within 2x of the in-RAM map's mean latency.

const (
	// 1 TB device: 4K pages, 1024 pages/segment, 256Ki segments. Segments
	// materialize lazily, so only the touched span costs host RAM.
	mapBenchSegments = 1 << 18
	// The active span: 4 GB of LBA space, every 16th sector mapped. Each
	// 16-sector read then lands on exactly one programmed page, so the
	// in-RAM baseline pays one NAND read per op and a translation-page
	// miss shows up as the one extra read it really is. The span covers
	// 4096 translation pages (256 slots each at 4K sectors) while host
	// RAM holds only 64K payloads.
	mapBenchSpan   = int64(1) << 20
	mapBenchStride = int64(16)
	mapBenchHot    = 0.95 // HotFrac: share of ops on the hot set
	mapBenchSpanH  = 0.1  // HotSpan: hot set = first 10% of the span
	mapBenchOps    = 100_000
)

func mapBenchConfig(cachePages int) iosnap.Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 4096
	nc.PagesPerSegment = 1024
	nc.Segments = mapBenchSegments
	nc.StoreData = true
	cfg := iosnap.DefaultConfig(nc)
	cfg.MapCachePages = cachePages
	return cfg
}

func benchMapCacheVariant(b *testing.B, cachePages int) {
	for i := 0; i < b.N; i++ {
		f, err := iosnap.New(mapBenchConfig(cachePages), nil)
		if err != nil {
			b.Fatal(err)
		}
		ss := f.SectorSize()
		buf := make([]byte, ss)
		now := sim.Time(0)
		for lba := int64(0); lba < mapBenchSpan; lba += mapBenchStride {
			f.Scheduler().RunUntil(now)
			d, err := f.Write(now, lba, buf)
			if err != nil {
				b.Fatal(err)
			}
			now = d
		}
		preHits, preMisses := f.Stats().MapCacheHits, f.Stats().MapCacheMisses

		spec := workload.Spec{
			Kind: workload.Read, Pattern: workload.HotCold,
			BlockSize: int(mapBenchStride) * ss, Threads: 1, QueueDepth: 1,
			MaxOps: mapBenchOps, RangeHi: mapBenchSpan,
			Seed: 42, HotFrac: mapBenchHot, HotSpan: mapBenchSpanH,
		}
		res, _, err := workload.Run(f, now, spec, workload.Options{Scheduler: f.Scheduler()})
		if err != nil {
			b.Fatal(err)
		}
		st := f.Stats()
		hits := st.MapCacheHits - preHits
		misses := st.MapCacheMisses - preMisses
		if total := hits + misses; total > 0 {
			b.ReportMetric(float64(hits)/float64(total), "hitrate")
		} else {
			b.ReportMetric(1.0, "hitrate") // in-RAM map: every lookup free
		}
		b.ReportMetric(res.MeanLat.Microseconds(), "vus/op")
		b.ReportMetric(float64(st.MapMemoryResident), "residentB")
	}
}

// Variants: the unbounded in-RAM baseline plus three cache sizes. The hot
// set spans ~410 translation pages of the span's 4096, so 128 thrashes,
// 512 holds the hot set, and 2048 adds cold headroom.
func BenchmarkMapCache(b *testing.B) {
	b.Run("inram", func(b *testing.B) { benchMapCacheVariant(b, 0) })
	for _, pages := range []int{128, 512, 2048} {
		pages := pages
		b.Run(fmt.Sprintf("cache%d", pages), func(b *testing.B) {
			benchMapCacheVariant(b, pages)
		})
	}
}
