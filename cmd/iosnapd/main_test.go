package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"iosnap/internal/srv"
	"iosnap/internal/vfs"
)

func testOpts(image string) options {
	return options{
		image:     image,
		addr:      "127.0.0.1:0",
		shards:    2,
		megabytes: 8,
		sector:    4096,
	}
}

// startDaemon runs serve in a goroutine and returns the bound address plus
// the channel its result lands on.
func startDaemon(t *testing.T, opt options, sig <-chan os.Signal) (string, chan error) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- serve(opt, sig, func(a net.Addr) { addrCh <- a }) }()
	select {
	case a := <-addrCh:
		return a.String(), done
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
		return "", nil
	}
}

// TestDaemonLifecycle: first start formats the shard images; data and a
// snapshot written over the wire survive a graceful shutdown and are
// served again by the next start.
func TestDaemonLifecycle(t *testing.T) {
	img := filepath.Join(t.TempDir(), "dev.img")
	opt := testOpts(img)

	addr, done := startDaemon(t, opt, nil)
	c, err := srv.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 {
		t.Fatalf("stats: %+v", st)
	}
	want := bytes.Repeat([]byte("durable!"), st.SectorSize/8)
	if err := c.Write(5, want); err != nil {
		t.Fatal(err)
	}
	snapID, err := c.SnapCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(5, bytes.Repeat([]byte("newer..."), st.SectorSize/8)); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}
	c.Close()
	for i := 0; i < opt.shards; i++ {
		if _, err := os.Stat(shardPath(img, i)); err != nil {
			t.Fatalf("shard image %d missing after shutdown: %v", i, err)
		}
		if _, err := os.Stat(shardPath(img, i) + ".tmp"); !os.IsNotExist(err) {
			t.Fatalf("shard %d temp file left behind", i)
		}
	}

	// Second start: mounts the saved images.
	addr, done = startDaemon(t, opt, nil)
	c, err = srv.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(got), "newer...") {
		t.Fatalf("live data lost across restart: %q", got[:16])
	}
	// The snapshot survives too: its frozen image still reads the old data.
	sgot, err := c.SnapRead(snapID, 5, 1)
	if err != nil {
		t.Fatalf("snapshot %d lost across restart: %v", snapID, err)
	}
	if !bytes.Equal(sgot, want) {
		t.Fatalf("snapshot content changed across restart: %q", sgot[:16])
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("second run: %v", err)
	}
	c.Close()
}

// TestDaemonSignalShutdown: SIGTERM takes the same graceful path as the
// shutdown op.
func TestDaemonSignalShutdown(t *testing.T) {
	img := filepath.Join(t.TempDir(), "dev.img")
	sig := make(chan os.Signal, 1)
	addr, done := startDaemon(t, testOpts(img), sig)
	c, err := srv.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	sig <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("signal shutdown: %v", err)
	}
	c.Close()
	if _, err := os.Stat(shardPath(img, 0)); err != nil {
		t.Fatalf("images not saved on signal shutdown: %v", err)
	}
}

// TestDaemonRefusesPartialDevice: some-but-not-all shard images present
// must refuse to mount rather than format over the survivors.
func TestDaemonRefusesPartialDevice(t *testing.T) {
	img := filepath.Join(t.TempDir(), "dev.img")
	if err := os.WriteFile(shardPath(img, 0), []byte("not empty"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := serve(testOpts(img), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "partial device") {
		t.Fatalf("partial device: %v", err)
	}
}

// TestDaemonCrashAfterShutdownIsDurable runs the whole lifecycle against
// the in-memory filesystem, power-fails it after the daemon exits, and
// remounts: the atomic fsynced save must leave loadable images holding the
// written data.
func TestDaemonCrashAfterShutdownIsDurable(t *testing.T) {
	mem := vfs.NewMem()
	old := fsys
	fsys = mem
	defer func() { fsys = old }()

	opt := testOpts("crash/dev.img")
	addr, done := startDaemon(t, opt, nil)
	c, err := srv.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("pwrfail!"), st.SectorSize/8)
	if err := c.Write(3, want); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	c.Close()

	mem.Crash()

	addr, done = startDaemon(t, opt, nil)
	c, err = srv.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(3, 1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("data lost to power failure after clean shutdown: %v", err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestDaemonFlagErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -image accepted")
	}
	if err := run([]string{"-image", "x", "-shards", "0"}); err == nil {
		t.Fatal("zero shards accepted")
	}
}
