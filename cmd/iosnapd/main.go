// Command iosnapd is the storage-service front-end: a long-running TCP
// block server multiplexing many client connections onto one sharded
// ioSnap service. Where iosnapctl reloads the image and replays recovery
// on every invocation, iosnapd mounts once, serves reads, writes, trims,
// and snapshot operations over the wire, and persists the images back out
// on graceful shutdown.
//
// Usage:
//
//	iosnapd -image dev.img [-addr 127.0.0.1:7621] [-shards 4] [-megabytes 64] [-sector 4096] [-window 128] [-viewttl 2s]
//
// The logical device is partitioned contiguously across -shards shards;
// shard i's NAND lives in dev.img.shard<i>. On first start the per-shard
// images are initialized (each -megabytes MiB raw); on later starts each
// is loaded, streamed through crash recovery, and served. Shutdown — via
// SIGINT/SIGTERM or `iosnapctl -remote ADDR shutdown` — drains in-flight
// requests, checkpoints every shard, and streams each device back to its
// image atomically (fsynced temp file + rename), so the next start mounts
// tail-bounded from the checkpoints.
//
// Drive it with the client mode of iosnapctl:
//
//	iosnapctl -remote 127.0.0.1:7621 write -lba 0 -text hello
//	iosnapctl -remote 127.0.0.1:7621 snap-create
//	iosnapctl -remote 127.0.0.1:7621 snap-read -id 1 -lba 0
//	iosnapctl -remote 127.0.0.1:7621 stats
//	iosnapctl -remote 127.0.0.1:7621 shutdown
//
// Connections negotiate wire protocol v2 and may keep up to -window
// requests in flight each (old v1 clients keep working serially).
// Activated snapshot views are cached server-side and expire after
// -viewttl idle; -viewttl -1ns disables the cache. Measure throughput
// with `iosnapctl -remote ADDR loadgen`.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/shard"
	"iosnap/internal/srv"
	"iosnap/internal/vfs"
)

// fsys is the filesystem all image I/O goes through; tests swap in a fake.
var fsys vfs.FileSystem = vfs.OS{}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iosnapd:", err)
		os.Exit(1)
	}
}

type options struct {
	image     string
	addr      string
	shards    int
	megabytes int
	sector    int
	window    int
	viewTTL   time.Duration
}

func run(args []string) error {
	fs := flag.NewFlagSet("iosnapd", flag.ContinueOnError)
	opt := options{}
	fs.StringVar(&opt.image, "image", "", "base image path; shard i uses IMAGE.shard<i> (required)")
	fs.StringVar(&opt.addr, "addr", "127.0.0.1:7621", "listen address")
	fs.IntVar(&opt.shards, "shards", 4, "number of shards (fixed at init; later starts must match)")
	fs.IntVar(&opt.megabytes, "megabytes", 64, "per-shard raw size in MiB (first start only)")
	fs.IntVar(&opt.sector, "sector", 4096, "sector size in bytes (first start only)")
	fs.IntVar(&opt.window, "window", 0, "max in-flight pipelined requests per connection (0 = default)")
	fs.DurationVar(&opt.viewTTL, "viewttl", 0, "idle TTL for cached snapshot views (0 = default, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if opt.image == "" {
		return fmt.Errorf("usage: iosnapd -image FILE [-addr HOST:PORT] [-shards N]")
	}
	if opt.shards < 1 {
		return fmt.Errorf("iosnapd: -shards %d must be at least 1", opt.shards)
	}

	// Forward SIGINT/SIGTERM to the same graceful path the shutdown op
	// takes. The channel is installed before serving so a prompt signal
	// cannot be lost.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)

	return serve(opt, sig, func(addr net.Addr) {
		fmt.Printf("iosnapd: serving %s (%d shards) on %s\n", opt.image, opt.shards, addr)
	})
}

func shardPath(image string, i int) string { return fmt.Sprintf("%s.shard%d", image, i) }

// serve mounts (initializing on first start), serves until a shutdown op
// or a signal, then checkpoints and persists every shard image. started
// is called with the bound address once the listener is up (tests bind
// ":0" and need the port).
func serve(opt options, sig <-chan os.Signal, started func(net.Addr)) error {
	if err := ensureImages(opt); err != nil {
		return err
	}
	devs, err := loadDevices(opt)
	if err != nil {
		return err
	}
	cfg, err := shard.ConfigForDevices(devs)
	if err != nil {
		return err
	}
	svc, err := shard.NewServiceFrom(cfg, devs)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		svc.Close()
		return err
	}
	server := srv.NewServer(svc, ln)
	server.Window = opt.window
	server.ViewTTL = opt.viewTTL
	if started != nil {
		started(ln.Addr())
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-sig:
			server.Shutdown()
		case <-stop:
		}
	}()
	serveErr := server.Serve()
	close(stop)

	// Serve returned with every in-flight request drained and the service
	// still open: checkpoint each shard, then stream each device back to
	// its image. Both must succeed for the shutdown to count as clean.
	closeErr := svc.Close()
	var saveErr error
	for i, d := range devs {
		if err := writeImage(shardPath(opt.image, i), d); err != nil && saveErr == nil {
			saveErr = fmt.Errorf("saving shard %d: %w", i, err)
		}
	}
	if serveErr != nil {
		return serveErr
	}
	if closeErr != nil {
		return fmt.Errorf("checkpointing: %w", closeErr)
	}
	if saveErr != nil {
		return saveErr
	}
	fmt.Printf("iosnapd: checkpointed and saved %d shard image(s)\n", len(devs))
	return nil
}

// ensureImages initializes the per-shard images on first start. All
// present → mount; none present → format; a mix is refused (half a device
// is not a device).
func ensureImages(opt options) error {
	present := 0
	for i := 0; i < opt.shards; i++ {
		if _, err := fsys.Open(shardPath(opt.image, i)); err == nil {
			present++
		} else if !vfs.IsNotExist(err) {
			return err
		}
	}
	if present == opt.shards {
		return nil
	}
	if present != 0 {
		return fmt.Errorf("iosnapd: %d of %d shard images exist — refusing a partial device (wrong -shards, or delete the strays)", present, opt.shards)
	}
	nc := nand.DefaultConfig()
	nc.SectorSize = opt.sector
	nc.PagesPerSegment = (1 << 20) / opt.sector // 1 MiB segments
	nc.Segments = opt.megabytes
	nc.StoreData = true
	for i := 0; i < opt.shards; i++ {
		f, err := iosnap.New(iosnap.DefaultConfig(nc), nil)
		if err != nil {
			return err
		}
		if _, err := f.Close(0); err != nil {
			return err
		}
		if err := writeImage(shardPath(opt.image, i), f.Device()); err != nil {
			return err
		}
	}
	fmt.Printf("iosnapd: initialized %d shard image(s) (%d MiB each) under %s\n",
		opt.shards, opt.megabytes, opt.image)
	return nil
}

func loadDevices(opt options) ([]*nand.Device, error) {
	devs := make([]*nand.Device, opt.shards)
	for i := range devs {
		f, err := fsys.Open(shardPath(opt.image, i))
		if err != nil {
			return nil, err
		}
		d, err := nand.LoadImage(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", shardPath(opt.image, i), err)
		}
		devs[i] = d
	}
	return devs, nil
}

// writeImage streams the device to its image file atomically: fsynced
// temp file, rename, parent-directory fsync.
func writeImage(path string, dev *nand.Device) error {
	a, err := vfs.NewAtomicFile(fsys, path)
	if err != nil {
		return err
	}
	if err := dev.SaveImage(a); err != nil {
		a.Abort()
		return err
	}
	return a.Commit()
}
