package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iosnap/internal/vfs"
)

// failFS wraps the real filesystem and fails creates whose path matches a
// substring — the "sidecar disk broke" fault for persist-propagation tests.
type failFS struct {
	vfs.FileSystem
	match string
	err   error
	fired int
}

func (f *failFS) Create(name string) (vfs.File, error) {
	if strings.Contains(name, f.match) {
		f.fired++
		return nil, f.err
	}
	return f.FileSystem.Create(name)
}

// replicaFixture initializes a source with a snapshot and an exported
// stream plus an empty destination, returning their paths.
func replicaFixture(t *testing.T) (src, dst, stream string) {
	t.Helper()
	dir := t.TempDir()
	src = filepath.Join(dir, "src.img")
	dst = filepath.Join(dir, "dst.img")
	stream = filepath.Join(dir, "stream.bin")
	for _, img := range []string{src, dst} {
		if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
			t.Fatal(err)
		}
	}
	for lba := 0; lba < 4; lba++ {
		if err := runCtl(t, src, "write", "-lba", fmt.Sprint(lba), "-text", fmt.Sprintf("v-%d", lba)); err != nil {
			t.Fatal(err)
		}
	}
	if err := runCtl(t, src, "snap-create"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, src, "export", "-id", "1", "-out", stream); err != nil {
		t.Fatal(err)
	}
	return src, dst, stream
}

// TestCLIImportPersistFailureAborts: a journal that cannot be written must
// abort the import with the persist error — not "succeed" with a resume
// contract that never reached disk. (Regression: the error used to be
// swallowed with `_ = writeFileAtomic(...)`.)
func TestCLIImportPersistFailureAborts(t *testing.T) {
	_, dst, stream := replicaFixture(t)

	boom := errors.New("injected sidecar write failure")
	ff := &failFS{FileSystem: fsys, match: ".journal", err: boom}
	old := fsys
	fsys = ff
	err := runCtl(t, dst, "import", "-in", stream)
	fsys = old
	if !errors.Is(err, boom) {
		t.Fatalf("import with failing journal persist returned %v, want the persist error", err)
	}
	if ff.fired == 0 {
		t.Fatal("fault never fired — the test exercised nothing")
	}
	if _, err := os.Stat(dst + ".gen"); !os.IsNotExist(err) {
		t.Fatal("aborted import must not commit a generation manifest")
	}
	// With the fault cleared the import completes and verifies.
	if err := runCtl(t, dst, "import", "-in", stream); err != nil {
		t.Fatalf("import after fault cleared: %v", err)
	}
	if err := runCtl(t, dst, "verify"); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestCLIReplicatePersistFailureAborts: same contract for the replicate
// verb's journal sidecar.
func TestCLIReplicatePersistFailureAborts(t *testing.T) {
	src, dst, _ := replicaFixture(t)

	boom := errors.New("injected sidecar write failure")
	ff := &failFS{FileSystem: fsys, match: ".journal", err: boom}
	old := fsys
	fsys = ff
	err := runCtl(t, src, "replicate", "-id", "1", "-dst", dst)
	fsys = old
	if !errors.Is(err, boom) {
		t.Fatalf("replicate with failing journal persist returned %v, want the persist error", err)
	}
	if ff.fired == 0 {
		t.Fatal("fault never fired")
	}
	if _, err := os.Stat(dst + ".gen"); !os.IsNotExist(err) {
		t.Fatal("failed replicate must not commit a generation manifest")
	}
	if err := runCtl(t, src, "replicate", "-id", "1", "-dst", dst); err != nil {
		t.Fatalf("replicate after fault cleared: %v", err)
	}
	if err := runCtl(t, dst, "verify"); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestCLICorruptSidecarFailsLoudly: a corrupt generation manifest must
// fail the verb, not be silently treated as "fresh replica" (which would
// re-clear and overwrite a replica whose true state is unknown). A MISSING
// sidecar is the legitimate fresh case and must keep working.
func TestCLICorruptSidecarFailsLoudly(t *testing.T) {
	src, dst, stream := replicaFixture(t)

	// Commit a first generation so the sidecar exists.
	if err := runCtl(t, dst, "import", "-in", stream); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst+".gen", []byte("garbage manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runCtl(t, dst, "import", "-in", stream)
	if err == nil || !strings.Contains(err.Error(), "generation sidecar") {
		t.Fatalf("import with corrupt .gen returned %v, want a loud sidecar failure", err)
	}
	err = runCtl(t, src, "replicate", "-id", "1", "-dst", dst)
	if err == nil || !strings.Contains(err.Error(), "generation sidecar") {
		t.Fatalf("replicate with corrupt .gen returned %v, want a loud sidecar failure", err)
	}

	// An unreadable journal sidecar fails loudly too (a directory is a
	// reliable read error on every platform).
	if err := os.Remove(dst + ".gen"); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(dst+".journal", 0o755); err != nil {
		t.Fatal(err)
	}
	err = runCtl(t, dst, "import", "-in", stream)
	if err == nil || !strings.Contains(err.Error(), "journal sidecar") {
		t.Fatalf("import with unreadable .journal returned %v, want a loud sidecar failure", err)
	}
	if err := os.Remove(dst + ".journal"); err != nil {
		t.Fatal(err)
	}

	// Missing sidecars (the fresh-replica case) still proceed.
	if err := runCtl(t, dst, "import", "-in", stream); err != nil {
		t.Fatalf("fresh import after sidecar removal: %v", err)
	}
	if err := runCtl(t, dst, "verify"); err != nil {
		t.Fatalf("verify: %v", err)
	}
}
