package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain doubles as a re-exec shim: when IOSNAPCTL_ARGS is set, the test
// binary behaves exactly like iosnapctl's main — same error printing, same
// exit code — so tests can assert the process-level contract (non-zero exit
// on invariant violations and failed runs). Args are joined with an ASCII
// unit separator, since TempDir paths may contain spaces.
func TestMain(m *testing.M) {
	if argv := os.Getenv("IOSNAPCTL_ARGS"); argv != "" {
		if err := run(strings.Split(argv, "\x1f")); err != nil {
			fmt.Fprintln(os.Stderr, "iosnapctl:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// execCtl re-executes the test binary as iosnapctl and returns its exit code.
func execCtl(t *testing.T, args ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "IOSNAPCTL_ARGS="+strings.Join(args, "\x1f"))
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("re-exec: %v (output %q)", err, out)
	}
	return ee.ExitCode()
}

// runCtl invokes the CLI entry point with the given image and args.
func runCtl(t *testing.T, image string, args ...string) error {
	t.Helper()
	return run(append([]string{"-image", image}, args...))
}

func TestCLILifecycle(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "dev.img")

	if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
		t.Fatalf("init: %v", err)
	}
	if err := runCtl(t, img, "write", "-lba", "0", "-text", "v1"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := runCtl(t, img, "snap-create"); err != nil {
		t.Fatalf("snap-create: %v", err)
	}
	if err := runCtl(t, img, "write", "-lba", "0", "-text", "v2"); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if err := runCtl(t, img, "read", "-lba", "0"); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := runCtl(t, img, "snap-read", "-id", "1", "-lba", "0"); err != nil {
		t.Fatalf("snap-read: %v", err)
	}
	if err := runCtl(t, img, "snap-list"); err != nil {
		t.Fatalf("snap-list: %v", err)
	}
	if err := runCtl(t, img, "stats"); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := runCtl(t, img, "trim", "-lba", "0", "-count", "1"); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if err := runCtl(t, img, "snap-delete", "-id", "1"); err != nil {
		t.Fatalf("snap-delete: %v", err)
	}
	// Deleting again must fail.
	if err := runCtl(t, img, "snap-delete", "-id", "1"); err == nil {
		t.Fatal("double delete accepted")
	}
}

// TestCLIStateSurvivesReload verifies that the data written in one
// invocation is visible in the next (recovery from the image's log).
func TestCLIStateSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "dev.img")
	if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, img, "write", "-lba", "7", "-text", "persistent"); err != nil {
		t.Fatal(err)
	}
	// Fresh load + recover, then verify through the package API (the CLI
	// prints to stdout; we check state directly).
	dev, f, err := load(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = dev
	buf := make([]byte, f.SectorSize())
	if _, err := f.Read(0, 7, buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf), "persistent") {
		t.Fatalf("state lost: %q", string(buf[:16]))
	}
}

// TestCLITailBoundedReload verifies that a mutating verb checkpoints on
// save, so the next invocation mounts tail-bounded instead of full-scanning
// the log — and that the checkpointed state is the state written.
func TestCLITailBoundedReload(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "dev.img")
	if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, img, "write", "-lba", "1", "-text", "ckpt"); err != nil {
		t.Fatal(err)
	}
	_, f, err := load(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if !st.RecoveryTailBounded {
		t.Fatalf("reload after write did not mount tail-bounded (%d segments scanned, %d fallbacks)",
			st.RecoverySegsScanned, st.RecoveryFallbacks)
	}
	buf := make([]byte, f.SectorSize())
	if _, err := f.Read(0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf), "ckpt") {
		t.Fatalf("state lost: %q", string(buf[:8]))
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	out, rerr := io.ReadAll(r)
	r.Close()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if ferr != nil {
		t.Fatalf("captured command failed: %v (output %q)", ferr, out)
	}
	return string(out)
}

// TestCLIMapCacheStats mounts the image with a bounded translation-page
// cache (-mapcache), drives enough traffic to fault and flush pages, and
// asserts the stats verb reports the resident split and the cache
// counters. It then remounts in tree mode: a GTD checkpoint written by the
// paged mount must degrade to the full-scan fallback, not break the image.
func TestCLIMapCacheStats(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "dev.img")
	if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
		t.Fatal(err)
	}
	// One sector per translation page (256 slots at 4K sectors) over the
	// image's 5 pages, mounted with a 2-page cache: faults, evictions,
	// flushes.
	for lba := int64(0); lba < 5*256; lba += 256 {
		if err := run([]string{"-image", img, "-mapcache", "2", "write",
			"-lba", fmt.Sprint(lba), "-text", "mc"}); err != nil {
			t.Fatal(err)
		}
	}
	// Counters are per-mount, so fault pages in-process and print through
	// the same code path the verb uses.
	_, f, err := load(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, f.SectorSize())
	for lba := int64(0); lba < 5*256; lba += 256 {
		if _, err := f.Read(0, lba, buf); err != nil {
			t.Fatalf("read lba %d: %v", lba, err)
		}
	}
	out := captureStdout(t, func() error { return cmdStats(f) })
	if !strings.Contains(out, "B resident)") {
		t.Fatalf("stats output missing resident map split:\n%s", out)
	}
	var hits, misses, evictions, flushed int64
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "map cache:") {
			if _, err := fmt.Sscanf(line, "map cache: %d hits, %d misses, %d evictions, %d pages flushed",
				&hits, &misses, &evictions, &flushed); err != nil {
				t.Fatalf("unparseable map cache line %q: %v", line, err)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("stats output missing map cache line:\n%s", out)
	}
	if misses == 0 || evictions == 0 {
		t.Fatalf("5 stride reads through a 2-page cache faulted misses=%d evictions=%d:\n%s",
			misses, evictions, out)
	}
	_ = hits

	// Tree-mode remount of a paged checkpoint: full-scan fallback, data
	// intact, and the cache counters read zero.
	out = captureStdout(t, func() error {
		return run([]string{"-image", img, "stats"})
	})
	if !strings.Contains(out, "map cache:          0 hits, 0 misses, 0 evictions, 0 pages flushed") {
		t.Fatalf("tree-mode stats should report an idle cache:\n%s", out)
	}
	if err := runCtl(t, img, "read", "-lba", "0"); err != nil {
		t.Fatalf("tree-mode read after paged checkpoint: %v", err)
	}
	if err := run([]string{"-image", img, "-mapcache", "2", "check"}); err != nil {
		t.Fatalf("check under bounded cache: %v", err)
	}
}

// TestCLICheck exercises the invariant checker verb on a populated image.
func TestCLICheck(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "dev.img")
	if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, img, "check"); err != nil {
		t.Fatalf("check on fresh image: %v", err)
	}
	if err := runCtl(t, img, "write", "-lba", "3", "-text", "hello", "-count", "2"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, img, "snap-create"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, img, "write", "-lba", "3", "-text", "hello2"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, img, "check"); err != nil {
		t.Fatalf("check after writes+snapshot: %v", err)
	}
}

// TestCLIFaultDemo runs each canned fault plan end to end; the harness
// errors on any real bug (invariant violation, wrong content without an
// error), so success here is a meaningful assertion, not just smoke.
func TestCLIFaultDemo(t *testing.T) {
	for _, plan := range []string{"gc-copy", "torn-note", "crash-scan", "random", "transient", "wear-out", "none"} {
		if err := run([]string{"faultdemo", "-plan", plan, "-seed", "3", "-steps", "400"}); err != nil {
			t.Fatalf("faultdemo -plan %s: %v", plan, err)
		}
	}
	if err := run([]string{"faultdemo", "-plan", "bogus"}); err == nil {
		t.Fatal("unknown fault plan accepted")
	}
}

// TestCLIHealth exercises the health verb on a populated image.
func TestCLIHealth(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "dev.img")
	if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, img, "write", "-lba", "0", "-text", "x", "-count", "4"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, img, "health"); err != nil {
		t.Fatalf("health: %v", err)
	}
}

// TestCLIExitCodes asserts the process-level contract: check and faultdemo
// exit non-zero when they find a problem and zero when the run is clean.
func TestCLIExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec test skipped in short mode")
	}
	dir := t.TempDir()
	img := filepath.Join(dir, "dev.img")
	if code := execCtl(t, "-image", img, "init", "-megabytes", "8"); code != 0 {
		t.Fatalf("init exited %d", code)
	}
	if code := execCtl(t, "-image", img, "check"); code != 0 {
		t.Fatalf("check on healthy image exited %d", code)
	}
	if code := execCtl(t, "-image", img, "health"); code != 0 {
		t.Fatalf("health exited %d", code)
	}
	bad := filepath.Join(dir, "bad.img")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := execCtl(t, "-image", bad, "check"); code == 0 {
		t.Fatal("check on corrupt image exited 0")
	}
	if code := execCtl(t, "faultdemo", "-plan", "wear-out", "-seed", "3", "-steps", "400"); code != 0 {
		t.Fatalf("faultdemo wear-out exited %d", code)
	}
	if code := execCtl(t, "faultdemo", "-plan", "bogus"); code == 0 {
		t.Fatal("faultdemo with unknown plan exited 0")
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "dev.img")
	if err := run([]string{}); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"-image", img}); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := runCtl(t, img, "bogus"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := runCtl(t, filepath.Join(dir, "missing.img"), "stats"); err == nil {
		t.Fatal("missing image accepted")
	}
	// Corrupt image.
	bad := filepath.Join(dir, "bad.img")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, bad, "stats"); err == nil {
		t.Fatal("corrupt image accepted")
	}
}

func TestCLIInitOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "dev.img")
	if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
		t.Fatal(err)
	}
	info1, err := os.Stat(img)
	if err != nil {
		t.Fatal(err)
	}
	// Re-init produces a fresh, loadable image and leaves no temp file.
	if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(img + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp image left behind")
	}
	if _, _, err := load(img, 0); err != nil {
		t.Fatal(err)
	}
	_ = info1
}

// TestCLIReplication drives the full replication workflow across image
// files: full replicate, incremental replicate, verify, and verify's
// non-zero exit once the replica is tampered with.
func TestCLIReplication(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.img")
	dst := filepath.Join(dir, "dst.img")
	for _, img := range []string{src, dst} {
		if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
			t.Fatalf("init %s: %v", img, err)
		}
	}
	for lba := 0; lba < 4; lba++ {
		if err := runCtl(t, src, "write", "-lba", fmt.Sprint(lba), "-text", fmt.Sprintf("gen1-%d", lba)); err != nil {
			t.Fatal(err)
		}
	}
	if err := runCtl(t, src, "snap-create"); err != nil { // snapshot 1
		t.Fatal(err)
	}
	if err := runCtl(t, src, "replicate", "-id", "1", "-dst", dst); err != nil {
		t.Fatalf("full replicate: %v", err)
	}
	if err := runCtl(t, dst, "verify"); err != nil {
		t.Fatalf("verify after full replicate: %v", err)
	}
	if _, err := os.Stat(dst + ".gen"); err != nil {
		t.Fatalf("generation manifest sidecar missing: %v", err)
	}
	if _, err := os.Stat(dst + ".journal"); !os.IsNotExist(err) {
		t.Fatal("committed replicate left a journal behind")
	}

	// Generation 2: change one sector, add one, and replicate incrementally.
	if err := runCtl(t, src, "write", "-lba", "2", "-text", "gen2-2"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, src, "write", "-lba", "9", "-text", "gen2-9"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, src, "snap-create"); err != nil { // snapshot 2
		t.Fatal(err)
	}
	if err := runCtl(t, src, "replicate", "-id", "2", "-base", "1", "-dst", dst); err != nil {
		t.Fatalf("incremental replicate: %v", err)
	}
	if err := runCtl(t, dst, "verify"); err != nil {
		t.Fatalf("verify after incremental replicate: %v", err)
	}

	// Tamper with the replica: verify must exit non-zero (process contract).
	if err := runCtl(t, dst, "write", "-lba", "2", "-text", "tampered"); err != nil {
		t.Fatal(err)
	}
	if code := execCtl(t, "-image", dst, "verify"); code == 0 {
		t.Fatal("verify of a tampered replica exited 0")
	}
}

// TestCLIExportImportResume exercises the split export/import verbs plus
// the crash-mid-import resume path, asserting process exit codes.
func TestCLIExportImportResume(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.img")
	dst := filepath.Join(dir, "dst.img")
	stream := filepath.Join(dir, "stream.bin")
	for _, img := range []string{src, dst} {
		if err := runCtl(t, img, "init", "-megabytes", "8"); err != nil {
			t.Fatal(err)
		}
	}
	for lba := 0; lba < 5; lba++ {
		if err := runCtl(t, src, "write", "-lba", fmt.Sprint(lba), "-text", fmt.Sprintf("v-%d", lba)); err != nil {
			t.Fatal(err)
		}
	}
	if err := runCtl(t, src, "snap-create"); err != nil {
		t.Fatal(err)
	}
	if err := runCtl(t, src, "export", "-id", "1", "-out", stream); err != nil {
		t.Fatalf("export: %v", err)
	}

	// Simulated crash after two chunk writes: non-zero exit, journal kept,
	// no generation committed.
	if code := execCtl(t, "-image", dst, "import", "-in", stream, "-abort-after", "2"); code == 0 {
		t.Fatal("aborted import exited 0")
	}
	if _, err := os.Stat(dst + ".journal"); err != nil {
		t.Fatalf("aborted import must persist its journal: %v", err)
	}
	if _, err := os.Stat(dst + ".gen"); !os.IsNotExist(err) {
		t.Fatal("aborted import must not commit a generation")
	}

	// Re-run: resumes from the journal and commits.
	if err := runCtl(t, dst, "import", "-in", stream); err != nil {
		t.Fatalf("resumed import: %v", err)
	}
	if _, err := os.Stat(dst + ".journal"); !os.IsNotExist(err) {
		t.Fatal("committed import must remove the journal")
	}
	if err := runCtl(t, dst, "verify"); err != nil {
		t.Fatalf("verify after resumed import: %v", err)
	}

	// A damaged stream is rejected with a non-zero exit and no state change.
	b, err := os.ReadFile(stream)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "truncated.bin")
	if err := os.WriteFile(truncated, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if code := execCtl(t, "-image", dst, "import", "-in", truncated); code == 0 {
		t.Fatal("truncated stream import exited 0")
	}
	// Incremental export demands the receiver's generation manifest.
	if code := execCtl(t, "-image", src, "export", "-id", "1", "-base", "1", "-out", stream); code == 0 {
		t.Fatal("export -base without -basegen exited 0")
	}
}
