package main

import (
	"flag"
	"fmt"

	"iosnap/internal/srv"
)

// runRemote dispatches a verb against a running iosnapd instead of a local
// image file. The verbs reuse the local flags (-lba, -count, -text, -id),
// so scripts move between the two modes by adding -remote.
func runRemote(addr, cmd string, args []string) error {
	c, err := srv.Dial(addr)
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", addr, err)
	}
	defer c.Close()
	switch cmd {
	case "ping":
		if err := c.Ping(); err != nil {
			return err
		}
		fmt.Printf("%s is alive\n", addr)
		return nil
	case "write":
		return remoteWrite(c, args)
	case "read":
		return remoteRead(c, args)
	case "trim":
		return remoteTrim(c, args)
	case "snap-create":
		id, err := c.SnapCreate()
		if err != nil {
			return err
		}
		fmt.Printf("created snapshot %d\n", id)
		return nil
	case "snap-delete":
		fs := flag.NewFlagSet("snap-delete", flag.ContinueOnError)
		id := fs.Uint64("id", 0, "snapshot id")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if err := c.SnapDelete(*id); err != nil {
			return err
		}
		fmt.Printf("deleted snapshot %d (blocks reclaim in background)\n", *id)
		return nil
	case "snap-read":
		return remoteSnapRead(c, args)
	case "stats":
		return remoteStats(c)
	case "shutdown":
		if err := c.Shutdown(); err != nil {
			return err
		}
		fmt.Printf("%s is shutting down (it checkpoints and persists its images)\n", addr)
		return nil
	default:
		return fmt.Errorf("verb %q is not available over -remote (want ping, write, read, trim, snap-create, snap-delete, snap-read, stats, or shutdown)", cmd)
	}
}

// remoteSectorSize derives the sector size from the server's stats — the
// remote verbs need it to size payloads the way the local verbs use
// f.SectorSize().
func remoteSectorSize(c *srv.Client) (int, error) {
	st, err := c.Stats()
	if err != nil {
		return 0, err
	}
	return st.SectorSize, nil
}

func remoteWrite(c *srv.Client, args []string) error {
	fs := flag.NewFlagSet("write", flag.ContinueOnError)
	lba, count := lbaCountFlags(fs)
	text := fs.String("text", "", "payload text (zero-padded per sector)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss, err := remoteSectorSize(c)
	if err != nil {
		return err
	}
	buf := make([]byte, int(*count)*ss)
	copy(buf, *text)
	if err := c.Write(*lba, buf); err != nil {
		return err
	}
	fmt.Printf("wrote %d sector(s) at LBA %d\n", *count, *lba)
	return nil
}

func remoteRead(c *srv.Client, args []string) error {
	fs := flag.NewFlagSet("read", flag.ContinueOnError)
	lba, count := lbaCountFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss, err := remoteSectorSize(c)
	if err != nil {
		return err
	}
	buf, err := c.Read(*lba, int(*count))
	if err != nil {
		return err
	}
	printSectors(buf, ss, *lba)
	return nil
}

func remoteTrim(c *srv.Client, args []string) error {
	fs := flag.NewFlagSet("trim", flag.ContinueOnError)
	lba, count := lbaCountFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := c.Trim(*lba, *count); err != nil {
		return err
	}
	fmt.Printf("trimmed %d sector(s) at LBA %d\n", *count, *lba)
	return nil
}

func remoteSnapRead(c *srv.Client, args []string) error {
	fs := flag.NewFlagSet("snap-read", flag.ContinueOnError)
	id := fs.Uint64("id", 0, "snapshot id")
	lba, count := lbaCountFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss, err := remoteSectorSize(c)
	if err != nil {
		return err
	}
	buf, err := c.SnapRead(*id, *lba, int(*count))
	if err != nil {
		return err
	}
	printSectors(buf, ss, *lba)
	return nil
}

func remoteStats(c *srv.Client) error {
	st, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("shards:             %d\n", st.Shards)
	fmt.Printf("sectors:            %d x %d B\n", st.Sectors, st.SectorSize)
	fmt.Printf("mapped sectors:     %d\n", st.MappedSectors)
	fmt.Printf("snapshots (live):   %d\n", st.LiveSnapshots)
	var reads, writes, trims, gcRuns int64
	for _, p := range st.PerShard {
		reads += p.UserReads
		writes += p.UserWrites
		trims += p.Trims
		gcRuns += p.GCRuns
	}
	fmt.Printf("user reads:         %d sectors\n", reads)
	fmt.Printf("user writes:        %d sectors\n", writes)
	fmt.Printf("trims:              %d\n", trims)
	fmt.Printf("gc runs:            %d\n", gcRuns)
	return nil
}
