package main

import (
	"flag"
	"fmt"

	"time"

	"iosnap/internal/sim"
	"iosnap/internal/srv"
)

// runRemote dispatches a verb against a running iosnapd instead of a local
// image file. The verbs reuse the local flags (-lba, -count, -text, -id),
// so scripts move between the two modes by adding -remote.
func runRemote(addr, cmd string, args []string) error {
	c, err := srv.Dial(addr)
	if err != nil {
		return fmt.Errorf("connecting to %s: %w", addr, err)
	}
	defer c.Close()
	switch cmd {
	case "ping":
		if err := c.Ping(); err != nil {
			return err
		}
		fmt.Printf("%s is alive\n", addr)
		return nil
	case "write":
		return remoteWrite(c, args)
	case "read":
		return remoteRead(c, args)
	case "trim":
		return remoteTrim(c, args)
	case "snap-create":
		id, err := c.SnapCreate()
		if err != nil {
			return err
		}
		fmt.Printf("created snapshot %d\n", id)
		return nil
	case "snap-delete":
		fs := flag.NewFlagSet("snap-delete", flag.ContinueOnError)
		id := fs.Uint64("id", 0, "snapshot id")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if err := c.SnapDelete(*id); err != nil {
			return err
		}
		fmt.Printf("deleted snapshot %d (blocks reclaim in background)\n", *id)
		return nil
	case "snap-read":
		return remoteSnapRead(c, args)
	case "stats":
		return remoteStats(c)
	case "loadgen":
		// loadgen opens its own connections; the dialed one only proved
		// the server is there.
		return remoteLoadgen(addr, args)
	case "shutdown":
		if err := c.Shutdown(); err != nil {
			return err
		}
		fmt.Printf("%s is shutting down (it checkpoints and persists its images)\n", addr)
		return nil
	default:
		return fmt.Errorf("verb %q is not available over -remote (want ping, write, read, trim, snap-create, snap-delete, snap-read, stats, loadgen, or shutdown)", cmd)
	}
}

// remoteSectorSize derives the sector size from the server's stats — the
// remote verbs need it to size payloads the way the local verbs use
// f.SectorSize().
func remoteSectorSize(c *srv.Client) (int, error) {
	st, err := c.Stats()
	if err != nil {
		return 0, err
	}
	return st.SectorSize, nil
}

func remoteWrite(c *srv.Client, args []string) error {
	fs := flag.NewFlagSet("write", flag.ContinueOnError)
	lba, count := lbaCountFlags(fs)
	text := fs.String("text", "", "payload text (zero-padded per sector)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss, err := remoteSectorSize(c)
	if err != nil {
		return err
	}
	buf := make([]byte, int(*count)*ss)
	copy(buf, *text)
	if err := c.Write(*lba, buf); err != nil {
		return err
	}
	fmt.Printf("wrote %d sector(s) at LBA %d\n", *count, *lba)
	return nil
}

func remoteRead(c *srv.Client, args []string) error {
	fs := flag.NewFlagSet("read", flag.ContinueOnError)
	lba, count := lbaCountFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss, err := remoteSectorSize(c)
	if err != nil {
		return err
	}
	buf, err := c.Read(*lba, int(*count))
	if err != nil {
		return err
	}
	printSectors(buf, ss, *lba)
	return nil
}

func remoteTrim(c *srv.Client, args []string) error {
	fs := flag.NewFlagSet("trim", flag.ContinueOnError)
	lba, count := lbaCountFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := c.Trim(*lba, *count); err != nil {
		return err
	}
	fmt.Printf("trimmed %d sector(s) at LBA %d\n", *count, *lba)
	return nil
}

func remoteSnapRead(c *srv.Client, args []string) error {
	fs := flag.NewFlagSet("snap-read", flag.ContinueOnError)
	id := fs.Uint64("id", 0, "snapshot id")
	lba, count := lbaCountFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss, err := remoteSectorSize(c)
	if err != nil {
		return err
	}
	buf, err := c.SnapRead(*id, *lba, int(*count))
	if err != nil {
		return err
	}
	printSectors(buf, ss, *lba)
	return nil
}

func remoteStats(c *srv.Client) error {
	st, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("shards:             %d\n", st.Shards)
	fmt.Printf("sectors:            %d x %d B\n", st.Sectors, st.SectorSize)
	fmt.Printf("mapped sectors:     %d\n", st.MappedSectors)
	fmt.Printf("snapshots (live):   %d\n", st.LiveSnapshots)
	var reads, writes, trims, gcRuns int64
	for _, p := range st.PerShard {
		reads += p.UserReads
		writes += p.UserWrites
		trims += p.Trims
		gcRuns += p.GCRuns
	}
	fmt.Printf("user reads:         %d sectors\n", reads)
	fmt.Printf("user writes:        %d sectors\n", writes)
	fmt.Printf("trims:              %d\n", trims)
	fmt.Printf("gc runs:            %d\n", gcRuns)
	// Per-shard virtual clocks: the skew between the fastest and slowest
	// shard is the load imbalance the striping left behind.
	if len(st.PerShardVirtual) > 0 {
		min, max := st.PerShardVirtual[0], st.PerShardVirtual[0]
		fmt.Printf("shard clocks:      ")
		for _, v := range st.PerShardVirtual {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			fmt.Printf(" %v", sim.Duration(v))
		}
		fmt.Printf("\nshard skew:         %v (max-min)\n", sim.Duration(max-min))
	}
	lookups := st.ViewCacheHits + st.ViewCacheMisses
	if lookups > 0 {
		fmt.Printf("view cache:         %d lookups, %.1f%% hit, %d live, %d expired, %d invalidated\n",
			lookups, 100*float64(st.ViewCacheHits)/float64(lookups),
			st.ViewCacheLive, st.ViewCacheExpiries, st.ViewCacheInvalidations)
	}
	return nil
}

// remoteLoadgen drives the wall-clock load generator against the server:
// real connections, real pipelines, and a throughput report — ROADMAP's
// "many client processes hammering the daemon" in one verb.
func remoteLoadgen(addr string, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	conns := fs.Int("conns", 4, "concurrent connections")
	depth := fs.Int("depth", 16, "in-flight requests per connection (1 = serial)")
	ops := fs.Int("ops", 5000, "requests per connection")
	writePct := fs.Int("writepct", 20, "percent of ops that are writes")
	snapPct := fs.Int("snappct", 0, "percent of ops that are snapshot create/read/delete")
	sectors := fs.Int("sectors", 1, "sectors per read/write")
	seed := fs.Int64("seed", 1, "op-mix RNG seed")
	v1 := fs.Bool("v1", false, "force the serial v1 protocol (baseline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := srv.RunLoad(srv.LoadConfig{
		Addr: addr, Conns: *conns, Depth: *depth, Ops: *ops,
		WritePct: *writePct, SnapPct: *snapPct, Sectors: *sectors,
		Seed: *seed, V1: *v1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("proto:       v%d, %d conns x depth %d\n", rep.Proto, rep.Conns, rep.Depth)
	fmt.Printf("completed:   %d ops in %v\n", rep.Ops, rep.Wall.Round(time.Millisecond))
	fmt.Printf("throughput:  %.0f ops/s, %.2f MB/s payload\n",
		rep.OpsPerSec(), float64(rep.Bytes)/(1<<20)/rep.Wall.Seconds())
	if rep.SnapCreates+rep.SnapReads+rep.SnapDeletes > 0 {
		fmt.Printf("snapshots:   %d created, %d reads, %d deleted\n",
			rep.SnapCreates, rep.SnapReads, rep.SnapDeletes)
	}
	return nil
}
