package main

import (
	"net"
	"strings"
	"testing"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/shard"
	"iosnap/internal/sim"
	"iosnap/internal/srv"
)

// startTestServer brings up a sharded service behind a loopback server.
func startTestServer(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 32
	nc.Segments = 32
	nc.Channels = 4
	nc.StoreData = true
	base := iosnap.DefaultConfig(nc)
	base.UserSectors = 768
	base.GCWindow = 10 * sim.Millisecond
	base.BitmapPageBits = 64
	svc, err := shard.NewService(shard.Config{Base: base, Shards: 2, StripeSectors: 16})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := srv.NewServer(svc, ln)
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()
	return ln.Addr().String(), func() {
		s.Shutdown()
		<-served
		svc.Close()
	}
}

// TestCLIRemoteVerbs drives every -remote verb through the real CLI entry
// point against a live server.
func TestCLIRemoteVerbs(t *testing.T) {
	addr, shutdown := startTestServer(t)
	defer shutdown()

	remote := func(args ...string) error {
		return run(append([]string{"-remote", addr}, args...))
	}
	if err := remote("ping"); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := remote("write", "-lba", "0", "-text", "gen1"); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := captureStdout(t, func() error { return remote("read", "-lba", "0") })
	if !strings.Contains(out, "gen1") {
		t.Fatalf("read output %q missing written text", out)
	}
	out = captureStdout(t, func() error { return remote("snap-create") })
	if !strings.Contains(out, "created snapshot 1") {
		t.Fatalf("snap-create output %q", out)
	}
	if err := remote("write", "-lba", "0", "-text", "gen2"); err != nil {
		t.Fatal(err)
	}
	// The snapshot still reads the frozen content; live reads the new.
	out = captureStdout(t, func() error { return remote("snap-read", "-id", "1", "-lba", "0") })
	if !strings.Contains(out, "gen1") {
		t.Fatalf("snap-read output %q missing frozen text", out)
	}
	out = captureStdout(t, func() error { return remote("read", "-lba", "0") })
	if !strings.Contains(out, "gen2") {
		t.Fatalf("read output %q missing live text", out)
	}
	out = captureStdout(t, func() error { return remote("stats") })
	if !strings.Contains(out, "shards:             2") || !strings.Contains(out, "snapshots (live):   1") {
		t.Fatalf("stats output:\n%s", out)
	}
	if err := remote("trim", "-lba", "0", "-count", "1"); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if err := remote("snap-delete", "-id", "1"); err != nil {
		t.Fatalf("snap-delete: %v", err)
	}
	// Server-side failures surface as CLI errors.
	if err := remote("snap-read", "-id", "1", "-lba", "0"); err == nil {
		t.Fatal("snap-read of deleted snapshot succeeded")
	}
	if err := remote("read", "-lba", "100000"); err == nil {
		t.Fatal("out-of-range remote read succeeded")
	}
	// Verbs that need the local image are rejected in remote mode.
	if err := remote("export", "-id", "1", "-out", "/dev/null"); err == nil || !strings.Contains(err.Error(), "not available over -remote") {
		t.Fatalf("remote export: %v", err)
	}
}

// TestCLIRemoteShutdown: the shutdown verb stops the server; further
// connections are refused.
func TestCLIRemoteShutdown(t *testing.T) {
	addr, shutdown := startTestServer(t)
	defer shutdown() // idempotent; Serve already returned

	if err := run([]string{"-remote", addr, "shutdown"}); err != nil {
		t.Fatalf("shutdown verb: %v", err)
	}
	if err := run([]string{"-remote", addr, "ping"}); err == nil {
		t.Fatal("ping succeeded after shutdown")
	}
}

// TestCLIRemoteConnectError: an unreachable server is a clean error, not a
// hang or a panic.
func TestCLIRemoteConnectError(t *testing.T) {
	if err := run([]string{"-remote", "127.0.0.1:1", "ping"}); err == nil {
		t.Fatal("connecting to a dead address succeeded")
	}
}
