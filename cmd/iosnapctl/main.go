// Command iosnapctl operates an ioSnap device persisted to an image file.
// Every invocation reloads the NAND image and runs crash recovery to
// rebuild the FTL state. Mutating verbs checkpoint on save, so the next
// invocation mounts tail-bounded from the anchored checkpoint; without one
// (crash, torn checkpoint, stale generation) recovery falls back to the
// paper's full two-pass log scan.
//
// Usage:
//
//	iosnapctl -image dev.img init [-megabytes 64] [-sector 4096]
//	iosnapctl -image dev.img write -lba N [-text "..."] [-count k]
//	iosnapctl -image dev.img read -lba N [-count k]
//	iosnapctl -image dev.img trim -lba N [-count k]
//	iosnapctl -image dev.img snap-create
//	iosnapctl -image dev.img snap-delete -id N
//	iosnapctl -image dev.img snap-list
//	iosnapctl -image dev.img snap-read -id N -lba L [-count k]
//	iosnapctl -image dev.img export -id N -out stream.bin [-base M] [-basegen replica.img.gen]
//	iosnapctl -image replica.img import -in stream.bin [-abort-after N]
//	iosnapctl -image dev.img replicate -id N -dst replica.img [-base M] [-attempts N]
//	iosnapctl -image replica.img verify [-gen replica.img.gen]
//	iosnapctl -image dev.img stats
//	iosnapctl -image dev.img check
//	iosnapctl -image dev.img health
//	iosnapctl faultdemo [-plan gc-copy|torn-note|crash-scan|random|transient|wear-out|none] [-seed N] [-steps N]
//	iosnapctl shardbench [-shards N] [-clients N] [-ops N] [-seed N]
//	iosnapctl -remote host:port {ping|write|read|trim|snap-create|snap-delete|snap-read|stats|loadgen|shutdown} [flags]
//
// With -remote, the verb runs against a live iosnapd (see cmd/iosnapd)
// instead of reloading an image: the same -lba/-count/-text/-id flags
// apply, no -image is needed, and shutdown asks the server to checkpoint
// and persist its images. Remote connections negotiate wire protocol v2
// and pipeline automatically; loadgen drives wall-clock load (N
// connections x depth-D pipelines with a read/write/snapshot mix, e.g.
// `iosnapctl -remote :7621 loadgen -conns 4 -depth 16 -ops 5000`) and
// prints the measured ops/s; stats additionally reports per-shard virtual
// clocks (shard skew) and snapshot-view-cache effectiveness.
//
// The replication verbs speak the internal/xport transport. export writes a
// self-checking chunk stream (no activation needed; with -base only the
// delta between the two snapshots is shipped). import applies a stream to
// the image, journaling progress in IMAGE.journal so an interrupted import
// — simulate one with -abort-after — resumes instead of restarting, and
// recording the committed generation manifest in IMAGE.gen. replicate runs
// the whole pipeline (export, receive, verify, bounded retry) from the
// source image onto -dst, incremental when -base names the previously
// replicated snapshot. verify re-hashes every sector the generation
// manifest defines and exits non-zero on any mismatch.
//
// check reloads the image, crash-recovers, and runs the full invariant
// checker over the rebuilt state; health reports per-segment media health
// (suspect/retired segments, wear, degradation). Both — like every other
// verb — exit non-zero on failure, so scripts can gate on them.
//
// faultdemo needs no image: it drives the randomized torture harness
// against an in-memory device with a fault plan armed and prints the run
// report, demonstrating that every injected fault is either surfaced as an
// error or survived with invariants intact. The transient plan injects
// retryable read/program faults the retry policy must absorb; the wear-out
// plan combines an erase budget (erases past it fail probabilistically,
// retiring segments after rescue), 1% transient faults, an armed scrubber,
// and three crash/recover cycles.
//
// shardbench also needs no image: it drives the seeded service-mode load
// through the sharded front-end with real client goroutines and prints the
// virtual-time throughput the run modeled — the same figure bench.sh
// extracts into BENCH_shard.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"iosnap/internal/faultinject"
	"iosnap/internal/header"
	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/retry"
	"iosnap/internal/shard"
	"iosnap/internal/sim"
	"iosnap/internal/vfs"
	"iosnap/internal/xport"
)

// fsys is the filesystem every sidecar and image write goes through.
// Tests swap in a faulting or in-memory implementation.
var fsys vfs.FileSystem = vfs.OS{}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iosnapctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("iosnapctl", flag.ContinueOnError)
	image := global.String("image", "", "device image path (required unless -remote)")
	remote := global.String("remote", "", "iosnapd address (host:port); verbs run against the server instead of an image")
	mapCache := global.Int("mapcache", 0,
		"translation-page cache size in pages (0 = in-RAM map, <0 = unbounded paged)")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: iosnapctl -image FILE COMMAND [flags] (run with -h for commands)")
	}
	cmd, cmdArgs := rest[0], rest[1:]

	// faultdemo and shardbench run against in-memory devices and need no image.
	if cmd == "faultdemo" {
		return cmdFaultDemo(cmdArgs)
	}
	if cmd == "shardbench" {
		return cmdShardBench(cmdArgs)
	}
	if *remote != "" {
		return runRemote(*remote, cmd, cmdArgs)
	}
	if *image == "" {
		return fmt.Errorf("usage: iosnapctl -image FILE COMMAND [flags] (run with -h for commands)")
	}

	if cmd == "init" {
		return cmdInit(*image, cmdArgs)
	}

	dev, f, err := load(*image, *mapCache)
	if err != nil {
		return err
	}
	now := sim.Time(0)
	dirty := false
	switch cmd {
	case "write":
		dirty = true
		err = cmdWrite(f, now, cmdArgs)
	case "read":
		err = cmdRead(f, now, cmdArgs)
	case "trim":
		dirty = true
		err = cmdTrim(f, now, cmdArgs)
	case "snap-create":
		dirty = true
		err = cmdSnapCreate(f, now)
	case "snap-delete":
		dirty = true
		err = cmdSnapDelete(f, now, cmdArgs)
	case "snap-list":
		err = cmdSnapList(f)
	case "snap-read":
		err = cmdSnapRead(f, now, cmdArgs)
	case "export":
		err = cmdExport(f, now, cmdArgs) // reads only; no notes are written
	case "import":
		return cmdImport(*image, dev, f, now, cmdArgs) // saves (or preserves) its own state
	case "replicate":
		err = cmdReplicate(f, now, cmdArgs) // source is read-only; dst saves itself
	case "verify":
		err = cmdVerify(*image, f, now, cmdArgs)
	case "stats":
		err = cmdStats(f)
	case "check":
		err = cmdCheck(f)
	case "health":
		err = cmdHealth(f)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		return err
	}
	if dirty {
		return save(*image, dev, f, now)
	}
	return nil
}

func cmdInit(image string, args []string) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	megabytes := fs.Int("megabytes", 64, "raw device size in MiB")
	sector := fs.Int("sector", 4096, "sector size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nc := nand.DefaultConfig()
	nc.SectorSize = *sector
	nc.PagesPerSegment = (1 << 20) / *sector // 1 MiB segments
	nc.Segments = *megabytes
	nc.StoreData = true // the CLI reads data back across invocations
	f, err := iosnap.New(iosnap.DefaultConfig(nc), nil)
	if err != nil {
		return err
	}
	if err := writeImage(image, f.Device()); err != nil {
		return err
	}
	fmt.Printf("initialized %s: %d MiB raw, %d sectors x %d B usable\n",
		image, *megabytes, f.Sectors(), f.SectorSize())
	return nil
}

func load(image string, mapCachePages int) (*nand.Device, *iosnap.FTL, error) {
	rd, err := os.Open(image)
	if err != nil {
		return nil, nil, err
	}
	defer rd.Close()
	dev, err := nand.LoadImage(rd)
	if err != nil {
		return nil, nil, fmt.Errorf("loading %s: %w", image, err)
	}
	cfg := iosnap.DefaultConfig(dev.Config())
	cfg.MapCachePages = mapCachePages
	f, _, err := iosnap.Recover(cfg, dev, nil, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("recovering device state: %w", err)
	}
	return dev, f, nil
}

func save(image string, dev *nand.Device, f *iosnap.FTL, now sim.Time) error {
	// Close drains background work and writes a checkpoint, so the next
	// invocation mounts tail-bounded instead of full-scanning the log.
	if _, err := f.Close(now); err != nil {
		return fmt.Errorf("checkpointing before save: %w", err)
	}
	return writeImage(image, dev)
}

// writeImage streams the device image to disk through an atomic, fsynced
// temp-file + rename, so a crash at any point leaves either the previous
// image or the complete new one.
func writeImage(image string, dev *nand.Device) error {
	a, err := vfs.NewAtomicFile(fsys, image)
	if err != nil {
		return err
	}
	if err := dev.SaveImage(a); err != nil {
		a.Abort()
		return err
	}
	return a.Commit()
}

func lbaCountFlags(fs *flag.FlagSet) (lba *int64, count *int64) {
	lba = fs.Int64("lba", 0, "logical block address")
	count = fs.Int64("count", 1, "number of sectors")
	return
}

func cmdWrite(f *iosnap.FTL, now sim.Time, args []string) error {
	fs := flag.NewFlagSet("write", flag.ContinueOnError)
	lba, count := lbaCountFlags(fs)
	text := fs.String("text", "", "payload text (zero-padded per sector)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ss := f.SectorSize()
	buf := make([]byte, int(*count)*ss)
	copy(buf, *text)
	done, err := f.Write(now, *lba, buf)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d sector(s) at LBA %d in %v (virtual)\n", *count, *lba, done.Sub(now))
	return nil
}

func printSectors(buf []byte, ss int, lba int64) {
	for i := 0; i*ss < len(buf); i++ {
		sector := buf[i*ss : (i+1)*ss]
		end := len(sector)
		for end > 0 && sector[end-1] == 0 {
			end--
		}
		fmt.Printf("LBA %d: %q\n", lba+int64(i), string(sector[:end]))
	}
}

func cmdRead(f *iosnap.FTL, now sim.Time, args []string) error {
	fs := flag.NewFlagSet("read", flag.ContinueOnError)
	lba, count := lbaCountFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	buf := make([]byte, int(*count)*f.SectorSize())
	if _, err := f.Read(now, *lba, buf); err != nil {
		return err
	}
	printSectors(buf, f.SectorSize(), *lba)
	return nil
}

func cmdTrim(f *iosnap.FTL, now sim.Time, args []string) error {
	fs := flag.NewFlagSet("trim", flag.ContinueOnError)
	lba, count := lbaCountFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := f.Trim(now, *lba, *count); err != nil {
		return err
	}
	fmt.Printf("trimmed %d sector(s) at LBA %d\n", *count, *lba)
	return nil
}

func cmdSnapCreate(f *iosnap.FTL, now sim.Time) error {
	snap, done, err := f.CreateSnapshot(now)
	if err != nil {
		return err
	}
	fmt.Printf("created snapshot %d (epoch %d) in %v (virtual)\n", snap.ID, snap.Epoch, done.Sub(now))
	return nil
}

func cmdSnapDelete(f *iosnap.FTL, now sim.Time, args []string) error {
	fs := flag.NewFlagSet("snap-delete", flag.ContinueOnError)
	id := fs.Uint64("id", 0, "snapshot id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := f.DeleteSnapshot(now, iosnap.SnapshotID(*id)); err != nil {
		return err
	}
	fmt.Printf("deleted snapshot %d (blocks reclaim in background)\n", *id)
	return nil
}

func cmdSnapList(f *iosnap.FTL) error {
	tree := f.Tree()
	if tree.Len() == 0 {
		fmt.Println("no snapshots")
		return nil
	}
	fmt.Printf("%-6s %-7s %-8s %s\n", "ID", "EPOCH", "STATE", "PARENT")
	for _, id := range tree.IDs() {
		s, _ := tree.Lookup(id)
		state := "live"
		if s.Deleted {
			state = "deleted"
		}
		parent := "-"
		if s.Parent != nil {
			parent = fmt.Sprintf("%d", s.Parent.ID)
		}
		fmt.Printf("%-6d %-7d %-8s %s\n", s.ID, s.Epoch, state, parent)
	}
	return nil
}

func cmdSnapRead(f *iosnap.FTL, now sim.Time, args []string) error {
	fs := flag.NewFlagSet("snap-read", flag.ContinueOnError)
	id := fs.Uint64("id", 0, "snapshot id")
	lba, count := lbaCountFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	view, done, err := f.ActivateSync(now, iosnap.SnapshotID(*id), ratelimit.WorkSleep{}, false)
	if err != nil {
		return err
	}
	fmt.Printf("activated snapshot %d in %v (virtual): %d translations, %d B map\n",
		*id, done.Sub(now), view.MappedSectors(), view.MapMemory())
	buf := make([]byte, int(*count)*f.SectorSize())
	if _, err := view.Read(done, *lba, buf); err != nil {
		return err
	}
	printSectors(buf, f.SectorSize(), *lba)
	_, err = view.Deactivate(done)
	return err
}

// --- snapshot replication (internal/xport transport) -----------------------

// genPath / journalPath are the replica image's sidecars: the committed
// generation manifest and the in-flight receive journal.
func genPath(image string) string     { return image + ".gen" }
func journalPath(image string) string { return image + ".journal" }

func readManifest(path string) (*xport.Manifest, error) {
	b, err := vfs.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	m, err := xport.DecodeManifest(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// loadSidecars reads the replica's committed generation manifest and
// in-flight journal, distinguishing "never existed" (a fresh replica —
// proceed bare) from "exists but unreadable/corrupt" (fail loudly: treating
// a damaged generation as a bare destination would silently re-clear and
// re-apply a full image over a replica whose true state is unknown).
func loadSidecars(image string) (gen *xport.Manifest, journal []byte, err error) {
	g, gerr := readManifest(genPath(image))
	switch {
	case gerr == nil:
		gen = g
	case vfs.IsNotExist(gerr):
		// Fresh replica: no committed generation yet.
	default:
		return nil, nil, fmt.Errorf("generation sidecar: %w", gerr)
	}
	jb, jerr := vfs.ReadFile(fsys, journalPath(image))
	switch {
	case jerr == nil:
		journal = jb
	case vfs.IsNotExist(jerr):
		// No interrupted transfer to resume.
	default:
		return nil, nil, fmt.Errorf("journal sidecar: %w", jerr)
	}
	return gen, journal, nil
}

func writeFileAtomic(path string, b []byte) error {
	return vfs.WriteFileAtomic(fsys, path, b)
}

func cmdExport(f *iosnap.FTL, now sim.Time, args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	id := fs.Uint64("id", 0, "snapshot id to export")
	base := fs.Uint64("base", 0, "base snapshot id (ship only the delta; 0 = full image)")
	baseGen := fs.String("basegen", "", "receiver's committed generation manifest (required with -base; alone it just enables dedup)")
	out := fs.String("out", "", "output stream file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("export: -out is required")
	}
	opt := iosnap.ExportOpts{Snapshot: iosnap.SnapshotID(*id), Base: iosnap.SnapshotID(*base)}
	if *baseGen != "" {
		g, err := readManifest(*baseGen)
		if err != nil {
			return err
		}
		opt.BaseManifestID = g.ID()
		opt.Have = func(lba, hash uint64) bool {
			e, ok := g.Find(lba)
			return ok && e.Hash == hash
		}
	} else if *base != 0 {
		return fmt.Errorf("export: -base requires -basegen (the receiver's generation manifest)")
	}
	m, stream, done, err := f.ExportSync(now, opt)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(*out, stream); err != nil {
		return err
	}
	st := f.Stats()
	kind := "full"
	if m.IsDelta() {
		kind = fmt.Sprintf("delta vs snapshot %d", m.BaseSnapID)
	}
	fmt.Printf("exported snapshot %d (%s): %d sectors, %d chunks shipped, %d deduped, %d deletes, %d B stream in %v (virtual)\n",
		*id, kind, len(m.Writes), st.ExportChunks, st.ExportDedupHits, len(m.Deletes), len(stream), done.Sub(now))
	return nil
}

func cmdImport(image string, dev *nand.Device, f *iosnap.FTL, now sim.Time, args []string) error {
	fs := flag.NewFlagSet("import", flag.ContinueOnError)
	in := fs.String("in", "", "transfer stream file (required)")
	abortAfter := fs.Int("abort-after", 0, "abort after N chunk writes (simulated crash; journal survives)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("import: -in is required")
	}
	stream, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	opt := iosnap.ReceiveOpts{
		AbortAfter: *abortAfter,
		// A journal that cannot be persisted aborts the receive: resuming
		// later would otherwise trust durability points that never hit disk.
		Persist: func(j []byte) error { return writeFileAtomic(journalPath(image), j) },
	}
	opt.Base, opt.Journal, err = loadSidecars(image)
	if err != nil {
		return fmt.Errorf("import: %w", err)
	}
	rec, done, rerr := iosnap.ReceiveInto(f, now, stream, opt)
	if rec != nil {
		// Writes may have landed (even on the abort path) — persist the
		// device so a later import resumes against real state.
		if serr := save(image, dev, f, done); serr != nil {
			return serr
		}
	}
	if rerr != nil {
		return rerr
	}
	if err := writeFileAtomic(genPath(image), rec.Manifest.Encode()); err != nil {
		return err
	}
	os.Remove(journalPath(image))
	fmt.Printf("imported %s: applied %d, skipped %d (already durable), deduped %d, resumed=%v\n",
		*in, rec.Applied, rec.Skipped, rec.Deduped, rec.Resumed)
	return nil
}

func cmdReplicate(f *iosnap.FTL, now sim.Time, args []string) error {
	fs := flag.NewFlagSet("replicate", flag.ContinueOnError)
	id := fs.Uint64("id", 0, "snapshot id to replicate")
	base := fs.Uint64("base", 0, "base snapshot id (incremental; must be the previously replicated snapshot)")
	dst := fs.String("dst", "", "destination image path (required)")
	attempts := fs.Int("attempts", 3, "receive/verify attempts before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dst == "" {
		return fmt.Errorf("replicate: -dst is required")
	}
	dstDev, dstF, err := load(*dst, 0)
	if err != nil {
		return err
	}
	r := &iosnap.Replicator{
		Src:     f,
		Dst:     dstF,
		Policy:  retry.Policy{MaxAttempts: *attempts, Backoff: 100 * sim.Microsecond},
		Persist: func(j []byte) error { return writeFileAtomic(journalPath(*dst), j) },
	}
	gen, journal, err := loadSidecars(*dst)
	if err != nil {
		return fmt.Errorf("replicate: %w", err)
	}
	r.Restore(gen, journal)
	m, done, rerr := r.Replicate(now, iosnap.SnapshotID(*id), iosnap.SnapshotID(*base))
	// Persist the destination either way: on failure the journal sidecar
	// plus the partially-applied image is exactly what a resume needs.
	if serr := save(*dst, dstDev, dstF, done); serr != nil {
		return serr
	}
	if rerr != nil {
		return rerr
	}
	if err := writeFileAtomic(genPath(*dst), m.Encode()); err != nil {
		return err
	}
	os.Remove(journalPath(*dst))
	st := f.Stats()
	kind := "full"
	if m.IsDelta() {
		kind = "delta"
	}
	fmt.Printf("replicated snapshot %d to %s (%s): %d sectors, %d chunks shipped, %d deduped, retries=%d resumes=%d mismatches=%d\n",
		*id, *dst, kind, len(m.Writes), st.ExportChunks, st.ExportDedupHits,
		st.ImportRetries, st.ImportResumes, st.VerifyMismatches)
	return nil
}

func cmdVerify(image string, f *iosnap.FTL, now sim.Time, args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	gen := fs.String("gen", "", "generation manifest to verify against (default IMAGE.gen)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *gen
	if path == "" {
		path = genPath(image)
	}
	m, err := readManifest(path)
	if err != nil {
		return err
	}
	mism, _, err := iosnap.VerifyReplica(f, now, m)
	if err != nil {
		return err
	}
	if len(mism) > 0 {
		return fmt.Errorf("verify: %d of %d sectors do not match the manifest (first bad LBA %d)",
			len(mism), len(m.Writes)+len(m.Deletes), mism[0])
	}
	fmt.Printf("replica verifies clean against %s: %d sectors, %d deletes, generation %#x\n",
		path, len(m.Writes), len(m.Deletes), m.ID())
	return nil
}

func cmdStats(f *iosnap.FTL) error {
	st := f.Stats()
	fmt.Printf("sectors:            %d x %d B\n", f.Sectors(), f.SectorSize())
	fmt.Printf("mapped sectors:     %d\n", f.MappedSectors())
	fmt.Printf("free segments:      %d\n", f.FreeSegments())
	fmt.Printf("snapshots (live):   %d\n", f.Tree().Live())
	fmt.Printf("snapshots (total):  %d\n", f.Tree().Len())
	fmt.Printf("active epoch:       %d\n", f.ActiveEpoch())
	fmt.Printf("map memory:         %d B (%d B resident)\n", st.MapMemory, st.MapMemoryResident)
	fmt.Printf("map cache:          %d hits, %d misses, %d evictions, %d pages flushed\n",
		st.MapCacheHits, st.MapCacheMisses, st.MapCacheEvictions, st.MapPagesFlushed)
	fmt.Printf("validity memory:    %d B\n", st.ValidityMemory)
	fmt.Printf("gc errors:          %d\n", st.GCErrors)
	if st.GCLastErr != "" {
		fmt.Printf("gc last error:      %s\n", st.GCLastErr)
	}
	fmt.Printf("gc victim selects:  %d (%d served from fresh caches)\n", st.GCVictimSelects, st.GCCacheHits)
	fmt.Printf("gc cache rebuilds:  %d (%d pages re-merged)\n", st.GCCacheRebuilds, st.GCCacheRebuildPages)
	fmt.Printf("torn pages skipped: %d\n", st.TornPagesSkipped)
	mode := "full-scan"
	if st.RecoveryTailBounded {
		mode = "tail-bounded"
	}
	fmt.Printf("recovery:           %s (%d segments, %d header pages, %d fallbacks)\n",
		mode, st.RecoverySegsScanned, st.RecoveryHeaderPages, st.RecoveryFallbacks)
	fmt.Printf("checkpoints:        %d committed (%d chunks, %d errors)\n",
		st.Checkpoints, st.CheckpointChunks, st.CheckpointErrors)
	fmt.Printf("batched data path:  %d leaf descents, %d pages in %d NAND calls\n",
		st.BatchDescents, st.BatchPages, st.BatchNandCalls)
	fmt.Printf("replication:        %d chunks shipped, %d deduped, %d retries, %d resumes, %d verify mismatches\n",
		st.ExportChunks, st.ExportDedupHits, st.ImportRetries, st.ImportResumes, st.VerifyMismatches)
	fmt.Printf("device wear (min/max/total erases): %v\n", formatWear(f))
	return nil
}

func cmdCheck(f *iosnap.FTL) error {
	if err := f.CheckInvariants(); err != nil {
		return err
	}
	fmt.Printf("invariants OK: %d mapped sectors, %d live snapshots, active epoch %d\n",
		f.MappedSectors(), f.Tree().Live(), f.ActiveEpoch())
	return nil
}

// cmdHealth reports media health: segment health states (persisted in the
// image, so retirements survive reloads), wear, and whether the device is
// degraded to read-only for lack of rescuable space.
func cmdHealth(f *iosnap.FTL) error {
	dev := f.Device()
	suspect, retired := dev.HealthCounts()
	st := f.Stats()
	fmt.Printf("segments:           %d total, %d free, %d suspect, %d retired\n",
		dev.Config().Segments, f.FreeSegments(), suspect, retired)
	fmt.Printf("device wear (min/max/total erases): %v\n", formatWear(f))
	fmt.Printf("degraded:           %v\n", st.Degraded)
	fmt.Printf("retries:            %d\n", st.Retries)
	fmt.Printf("media failures:     %d\n", st.MediaFailures)
	fmt.Printf("rescued pages:      %d\n", st.RescuedPages)
	fmt.Printf("out-of-space writes: %d\n", st.OutOfSpaceWrites)
	fmt.Printf("scrub passes:       %d (%d segments scanned, %d rescues)\n",
		st.ScrubPasses, st.ScrubSegments, st.ScrubRescues)
	bad := false
	for seg := 0; seg < dev.Config().Segments; seg++ {
		if h := dev.SegmentHealth(seg); h != nand.Healthy {
			if !bad {
				fmt.Printf("%-8s %-8s %s\n", "SEGMENT", "HEALTH", "ERASES")
				bad = true
			}
			fmt.Printf("%-8d %-8s %d\n", seg, h, dev.EraseCount(seg))
		}
	}
	if !bad {
		fmt.Println("all segments healthy")
	}
	return nil
}

// demoConfig is the faultdemo device: small enough that a few hundred
// operations exercise cleaning, in-memory data so torn/corrupt pages are
// observable, geometry matching the package torture tests.
func demoConfig() iosnap.Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 16
	nc.Segments = 32
	nc.Channels = 2
	nc.StoreData = true
	cfg := iosnap.DefaultConfig(nc)
	cfg.GCWindow = 10 * sim.Millisecond
	cfg.BitmapPageBits = 64
	return cfg
}

func cmdFaultDemo(args []string) error {
	fs := flag.NewFlagSet("faultdemo", flag.ContinueOnError)
	planName := fs.String("plan", "gc-copy", "fault plan: gc-copy | torn-note | crash-scan | random | transient | wear-out | none")
	seed := fs.Uint64("seed", 1, "workload RNG seed")
	steps := fs.Int("steps", 600, "operations to run")
	prob := fs.Float64("prob", 0.02, "per-operation fault probability (random/transient plans)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := demoConfig()
	opt := iosnap.TortureOptions{Seed: *seed, Steps: *steps}
	switch *planName {
	case "gc-copy":
		opt.Plan = faultinject.GCCopyError(5)
	case "torn-note":
		opt.Plan = faultinject.TornNote(header.TypeSnapCreate, 2)
	case "crash-scan":
		opt.Plan = faultinject.CrashAtScan(2)
		// Throttle activations so the scan stays in flight long enough to hit.
		opt.ActivationLimit = ratelimit.WorkSleep{Work: 10 * sim.Microsecond, Sleep: 5 * sim.Millisecond}
	case "random":
		opt.Plan = faultinject.RandomFaults(*seed, *prob)
	case "transient":
		// Retryable faults only: the run must complete with zero surfaced
		// errors — the retry policy absorbs every episode.
		opt.Plan = faultinject.RandomTransients(*seed, *prob, 2)
	case "wear-out":
		// The media-failure acceptance scenario: a low erase budget (erases
		// past it fail with ErrWornOut, retiring segments after rescue), 1%
		// transient read/program faults, an armed scrubber, and three
		// crash/recover cycles with a fresh fault plan each cycle.
		cfg.Nand.WearOutThreshold = 6
		cfg.Nand.WearOutProb = 0.3
		cfg.Nand.WearSeed = *seed
		cfg.ScrubInterval = 2 * sim.Millisecond
		cfg.ScrubLimit = ratelimit.WorkSleep{Work: 50 * sim.Microsecond, Sleep: 2 * sim.Millisecond}
		wearPlan := func(cycle int) *faultinject.Plan {
			return faultinject.NewPlan(*seed+uint64(cycle)*7919,
				faultinject.Rule{Name: "transient-read", Kind: faultinject.KindTransient,
					Op: nand.OpRead, Seg: faultinject.AnySeg, Prob: 0.01, Times: 1},
				faultinject.Rule{Name: "transient-program", Kind: faultinject.KindTransient,
					Op: nand.OpProgram, Seg: faultinject.AnySeg, Prob: 0.01, Times: 1},
				faultinject.Rule{Name: "crash", Kind: faultinject.KindCrash,
					Op: nand.OpProgram, Seg: faultinject.AnySeg, AfterN: 120},
			)
		}
		opt.Plan = wearPlan(0)
		opt.Replan = func(cycle int) *faultinject.Plan {
			if cycle >= 3 {
				return nil
			}
			return wearPlan(cycle)
		}
	case "none":
	default:
		return fmt.Errorf("unknown fault plan %q (want gc-copy, torn-note, crash-scan, random, transient, wear-out, or none)", *planName)
	}
	rep, err := iosnap.Torture(cfg, opt)
	if err != nil {
		return fmt.Errorf("torture run found a real bug: %w", err)
	}
	fmt.Printf("plan=%s seed=%d %s\n", *planName, *seed, rep)
	st := rep.FinalStats
	fmt.Printf("media: retries=%d failures=%d suspect=%d retired=%d rescued=%d scrubPasses=%d degraded=%v\n",
		st.Retries, st.MediaFailures, st.SegmentsSuspect, st.SegmentsRetired,
		st.RescuedPages, st.ScrubPasses, st.Degraded)
	if len(rep.Fired) == 0 {
		fmt.Println("no faults fired (try more -steps or a different -seed)")
		return nil
	}
	for _, fi := range rep.Fired {
		fmt.Printf("fired %-15s op=%-8s page=%d (match #%d)\n", fi.Rule, fi.Op, fi.Addr, fi.Count)
	}
	return nil
}

// cmdShardBench runs the service-mode load driver and prints what it
// measured. The virtual-MB/s figure depends on the (shards, clients,
// ops, seed) tuple — host speed only perturbs it a couple of percent
// through queue-arrival interleaving; wall time depends on the host.
func cmdShardBench(args []string) error {
	fs := flag.NewFlagSet("shardbench", flag.ContinueOnError)
	shards := fs.Int("shards", 4, "number of shards")
	clients := fs.Int("clients", 16, "concurrent client goroutines")
	opsPer := fs.Int("ops", 150, "operations per client")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := shard.RunLoad(shard.LoadConfig{
		Shards:       *shards,
		Clients:      *clients,
		OpsPerClient: *opsPer,
		RunSectors:   16,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("shards=%d clients=%d ops=%d bytes=%d\n", rep.Shards, rep.Clients, rep.Ops, rep.Bytes)
	fmt.Printf("virtual makespan:   %v\n", sim.Duration(rep.Virtual))
	fmt.Printf("virtual throughput: %.1f MB/s\n", rep.VirtualMBps())
	fmt.Printf("wall time:          %v\n", rep.Wall)
	return nil
}

func formatWear(f *iosnap.FTL) string {
	minE, maxE, total := f.Device().WearStats()
	return fmt.Sprintf("%d / %d / %d", minE, maxE, total)
}
