// Command benchrunner regenerates the paper's tables and figures on the
// simulated device.
//
// Usage:
//
//	benchrunner [-run id[,id...]] [-scale f] [-csv dir] [-v] [-list]
//
// With no -run flag every experiment runs in order. -scale multiplies data
// volumes (1.0 = the default scaled-down-from-paper sizes; try 0.1 for a
// quick pass). -csv writes each report's tables and series as CSV files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"iosnap/internal/harness"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		scale = flag.Float64("scale", 1.0, "data-volume scale factor")
		csv   = flag.String("csv", "", "directory to write CSV results into")
		verb  = flag.Bool("v", false, "log per-run progress")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *run == "" {
		ids = harness.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}

	rc := harness.RunConfig{Scale: *scale}
	if *verb {
		rc.Out = os.Stderr
	}
	failures := 0
	for _, id := range ids {
		exp, ok := harness.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use -list)\n", id)
			failures++
			continue
		}
		start := time.Now()
		report, err := exp.Run(rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s failed: %v\n", exp.ID, err)
			failures++
			continue
		}
		report.Render(os.Stdout)
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", exp.ID, time.Since(start).Seconds())

		if *csv != "" {
			if err := os.MkdirAll(*csv, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csv, exp.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
				os.Exit(1)
			}
			if err := report.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: writing %s: %v\n", path, err)
			}
			f.Close()
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
