// Package blockdev defines the block-device interface that every storage
// backend in this repository implements: the vanilla FTL, the
// snapshot-capable ioSnap FTL, activated snapshots, and the disk-optimized
// CoW baseline. Workload generators and experiments are written against
// this interface only.
//
// All operations take and return virtual time (see internal/sim): an
// operation submitted at `now` completes at the returned time, which
// includes any device queueing behind other foreground or background work.
package blockdev

import "iosnap/internal/sim"

// Device is a logical block device over virtual time.
type Device interface {
	// SectorSize returns the size of one logical sector in bytes.
	SectorSize() int
	// Sectors returns the number of addressable logical sectors.
	Sectors() int64
	// Read reads len(buf)/SectorSize() sectors starting at lba into buf,
	// returning the completion time. Reads of never-written sectors zero the
	// buffer (conventional block-device semantics).
	Read(now sim.Time, lba int64, buf []byte) (sim.Time, error)
	// Write writes len(data)/SectorSize() sectors starting at lba,
	// returning the completion time.
	Write(now sim.Time, lba int64, data []byte) (sim.Time, error)
}

// Trimmer is implemented by devices supporting discard of sector ranges.
type Trimmer interface {
	// Trim discards n sectors starting at lba.
	Trim(now sim.Time, lba int64, n int64) (sim.Time, error)
}
