// Package vfs is the minimal filesystem abstraction the storage service
// persists through: a FileSystem hands out Files, and everything above it
// (device images, sidecar manifests, receive journals) is written via the
// durable helpers in this package instead of bare os calls.
//
// Two implementations exist: OS, a thin veneer over the operating system,
// and Mem, an in-memory fake that models *crash durability* — data written
// but never synced, and directory entries created or renamed but never
// followed by a directory sync, are lost when the test calls Crash(). That
// is exactly the window the atomic-write helpers must close, so the fake
// turns "did we fsync in the right places" from a code-review question into
// a failing test.
//
// The durability contract the helpers implement (and the fake enforces):
//
//  1. write the full content to a temporary file,
//  2. fsync the temporary file (its *bytes* are now durable),
//  3. rename it over the destination (atomic replacement),
//  4. fsync the parent directory (the *entry* is now durable).
//
// Skipping step 2 can surface an empty or torn file after a crash; skipping
// step 4 can surface the old name (or nothing). Either way a sidecar
// written "atomically" would not actually be there on restart.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is an open file: sequential reads and writes plus Sync, which makes
// the bytes written so far durable.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written data to stable storage.
	Sync() error
}

// FileSystem is the minimal surface the storage service needs. Paths use
// the host convention (filepath); implementations must return errors
// satisfying errors.Is(err, fs.ErrNotExist) for missing files, so callers
// can distinguish "absent" from "present but unreadable".
type FileSystem interface {
	// Create creates or truncates name for writing.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// SyncDir makes the directory's entries durable (the post-rename fsync
	// of the parent directory).
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// Create implements FileSystem.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FileSystem.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// Remove implements FileSystem.
func (OS) Remove(name string) error { return os.Remove(name) }

// Rename implements FileSystem.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// SyncDir implements FileSystem: it opens the directory and fsyncs it,
// making renames and creates within it durable.
func (OS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadFile reads the whole of name from fsys.
func ReadFile(fsys FileSystem, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// AtomicFile streams content to a temporary file and, on Commit, publishes
// it at its final path with full crash durability (fsync of both the bytes
// and the directory entry). Abandoning it without Commit leaves the
// destination untouched; call Abort to also clean up the temporary file.
// It exists so multi-gigabyte device images can be written atomically
// without ever being held in memory — callers hand it to nand.SaveImage as
// a plain io.Writer.
type AtomicFile struct {
	fsys      FileSystem
	f         File
	tmp, path string
	err       error
	done      bool
}

// NewAtomicFile begins an atomic write of path.
func NewAtomicFile(fsys FileSystem, path string) (*AtomicFile, error) {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, err
	}
	return &AtomicFile{fsys: fsys, f: f, tmp: tmp, path: path}, nil
}

// Write implements io.Writer.
func (a *AtomicFile) Write(p []byte) (int, error) {
	if a.err != nil {
		return 0, a.err
	}
	n, err := a.f.Write(p)
	if err != nil {
		a.err = err
	}
	return n, err
}

// Commit makes the content durable and publishes it at the final path:
// fsync the temp file, rename it over the destination, fsync the parent
// directory. On any failure the destination is left as it was and the
// temporary file is removed.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("vfs: AtomicFile for %s already finished", a.path)
	}
	a.done = true
	if a.err != nil {
		a.f.Close()
		a.fsys.Remove(a.tmp)
		return a.err
	}
	// The bytes must be durable BEFORE the rename publishes the name: a
	// crash between rename and a late fsync could surface a torn file
	// under the final path — the exact window atomicity is meant to close.
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		a.fsys.Remove(a.tmp)
		return fmt.Errorf("vfs: syncing %s: %w", a.tmp, err)
	}
	if err := a.f.Close(); err != nil {
		a.fsys.Remove(a.tmp)
		return fmt.Errorf("vfs: closing %s: %w", a.tmp, err)
	}
	if err := a.fsys.Rename(a.tmp, a.path); err != nil {
		a.fsys.Remove(a.tmp)
		return err
	}
	if err := a.fsys.SyncDir(filepath.Dir(a.path)); err != nil {
		return fmt.Errorf("vfs: syncing parent of %s: %w", a.path, err)
	}
	return nil
}

// Abort discards the write: the temporary file is removed and the
// destination is untouched. Abort after Commit is a no-op.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	a.fsys.Remove(a.tmp)
}

// WriteFileAtomic writes b to path with full crash durability: after it
// returns nil, a crash at any later point surfaces the complete new
// content; a crash before it returns surfaces the complete old content (or
// absence). This is the sidecar-file helper — receive journals and
// generation manifests exist precisely to survive crashes, so their own
// persistence must not have a torn-write window.
func WriteFileAtomic(fsys FileSystem, path string, b []byte) error {
	a, err := NewAtomicFile(fsys, path)
	if err != nil {
		return err
	}
	if _, err := a.Write(b); err != nil {
		a.Abort()
		return err
	}
	return a.Commit()
}

// IsNotExist reports whether err means the file is absent (as opposed to
// present but unreadable — corrupt, permission-denied, or IO-failed).
func IsNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}
