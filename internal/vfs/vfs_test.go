package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestOSRoundTrip exercises the OS implementation end to end: atomic write,
// read-back, rename, remove, and the not-exist error contract.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	path := filepath.Join(dir, "sidecar.gen")
	if err := WriteFileAtomic(fsys, path, []byte("generation-1")); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	b, err := ReadFile(fsys, path)
	if err != nil || string(b) != "generation-1" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	// Overwrite is atomic and leaves the new content.
	if err := WriteFileAtomic(fsys, path, []byte("generation-2")); err != nil {
		t.Fatal(err)
	}
	if b, _ := ReadFile(fsys, path); string(b) != "generation-2" {
		t.Fatalf("after overwrite: %q", b)
	}
	if err := fsys.Remove(path); err != nil {
		t.Fatal(err)
	}
	_, err = ReadFile(fsys, path)
	if !IsNotExist(err) {
		t.Fatalf("read of removed file: %v (want not-exist)", err)
	}
}

// TestMemBehavesLikeAFilesystem checks the fake against the same contract
// the OS implementation satisfies.
func TestMemBehavesLikeAFilesystem(t *testing.T) {
	m := NewMem()
	if _, err := m.Open("missing"); !IsNotExist(err) {
		t.Fatalf("open missing: %v", err)
	}
	if err := m.Remove("missing"); !IsNotExist(err) {
		t.Fatalf("remove missing: %v", err)
	}
	if err := m.Rename("missing", "x"); !IsNotExist(err) {
		t.Fatalf("rename missing: %v", err)
	}
	f, err := m.Create("a/b.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(m, "a/b.txt")
	if err != nil || string(b) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := m.Rename("a/b.txt", "a/c.txt"); err != nil {
		t.Fatal(err)
	}
	if m.Exists("a/b.txt") || !m.Exists("a/c.txt") {
		t.Fatal("rename did not move the entry")
	}
	// Create truncates.
	f2, err := m.Create("a/c.txt")
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if b, _ := ReadFile(m, "a/c.txt"); len(b) != 0 {
		t.Fatalf("create did not truncate: %q", b)
	}
}

// TestMemCrashDropsUnsyncedData is the durability model itself: bytes
// survive a crash only up to the last Sync, entries only past a SyncDir.
func TestMemCrashDropsUnsyncedData(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("d/file")
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("-volatile"))
	f.Close()
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}

	// A second file whose direntry was never made durable.
	g, _ := m.Create("d/ghost")
	g.Write([]byte("never here"))
	g.Sync() // bytes synced, but the entry is not
	g.Close()

	m.Crash()

	b, err := ReadFile(m, "d/file")
	if err != nil || string(b) != "durable" {
		t.Fatalf("after crash: %q, %v (want synced prefix only)", b, err)
	}
	if m.Exists("d/ghost") {
		t.Fatal("file with unsynced direntry survived the crash")
	}
}

// TestWriteFileAtomicSurvivesCrash: after WriteFileAtomic returns, a crash
// must surface the complete new content — that is the helper's whole
// contract, and the fsync-less version of the helper fails this test.
func TestWriteFileAtomicSurvivesCrash(t *testing.T) {
	m := NewMem()
	if err := WriteFileAtomic(m, "d/x.journal", []byte("epoch-1")); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	b, err := ReadFile(m, "d/x.journal")
	if err != nil || string(b) != "epoch-1" {
		t.Fatalf("after crash: %q, %v", b, err)
	}
	// Overwrite, crash: the new content (not a torn mix) survives.
	if err := WriteFileAtomic(m, "d/x.journal", []byte("epoch-2-longer")); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	b, err = ReadFile(m, "d/x.journal")
	if err != nil || string(b) != "epoch-2-longer" {
		t.Fatalf("after overwrite crash: %q, %v", b, err)
	}
	if m.Exists("d/x.journal.tmp") {
		t.Fatal("temp file survived")
	}
}

// TestWriteFileAtomicCrashMidway: a crash at ANY point before
// WriteFileAtomic returns leaves either the old content or the new content
// — never a torn file, never a missing file when one durably existed.
func TestWriteFileAtomicCrashMidway(t *testing.T) {
	for failAt := 0; ; failAt++ {
		m := NewMem()
		if err := WriteFileAtomic(m, "d/s", []byte("old")); err != nil {
			t.Fatal(err)
		}
		n := 0
		injected := false
		m.FailOp = func(op Op, name string) error {
			// Fail the failAt'th mutating op of the second write.
			if op == OpOpen {
				return nil
			}
			if n == failAt {
				n++
				injected = true
				return fmt.Errorf("injected %s failure on %s", op, name)
			}
			n++
			return nil
		}
		err := WriteFileAtomic(m, "d/s", []byte("new-content"))
		m.FailOp = nil
		if !injected {
			// The whole sequence ran without hitting the injection point:
			// every op index has been covered.
			if err != nil {
				t.Fatalf("failAt=%d: clean run errored: %v", failAt, err)
			}
			return
		}
		// Whether or not the helper reported the injected error (a SyncDir
		// failure after rename may be unreportable-but-harmless), a crash
		// must surface exactly "old" or "new-content".
		m.Crash()
		b, rerr := ReadFile(m, "d/s")
		if rerr != nil {
			t.Fatalf("failAt=%d: durable file lost: %v", failAt, rerr)
		}
		if s := string(b); s != "old" && s != "new-content" {
			t.Fatalf("failAt=%d: torn content %q", failAt, s)
		}
	}
}

// TestAtomicFileStreamsAndCommits drives the streaming writer with many
// small writes (the SaveImage pattern) and checks durability.
func TestAtomicFileStreamsAndCommits(t *testing.T) {
	m := NewMem()
	a, err := NewAtomicFile(m, "img/dev.img")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for i := 0; i < 100; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 128)
		want.Write(chunk)
		if _, err := a.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	b, err := ReadFile(m, "img/dev.img")
	if err != nil || !bytes.Equal(b, want.Bytes()) {
		t.Fatalf("streamed image lost or torn after crash: %d bytes, %v", len(b), err)
	}
	if err := a.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
}

// TestAtomicFileAbort leaves no trace.
func TestAtomicFileAbort(t *testing.T) {
	m := NewMem()
	a, err := NewAtomicFile(m, "img/dev.img")
	if err != nil {
		t.Fatal(err)
	}
	a.Write([]byte("partial"))
	a.Abort()
	if m.Exists("img/dev.img") || m.Exists("img/dev.img.tmp") {
		t.Fatal("abort left files behind")
	}
}

// TestAtomicFileWriteFailure propagates the first write error and cleans up.
func TestAtomicFileWriteFailure(t *testing.T) {
	m := NewMem()
	boom := errors.New("disk full")
	a, err := NewAtomicFile(m, "d/f")
	if err != nil {
		t.Fatal(err)
	}
	m.FailOp = func(op Op, name string) error {
		if op == OpWrite {
			return boom
		}
		return nil
	}
	if _, err := a.Write([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("write error = %v", err)
	}
	m.FailOp = nil
	if err := a.Commit(); !errors.Is(err, boom) {
		t.Fatalf("commit after failed write = %v (want the write error)", err)
	}
	if m.Exists("d/f") || m.Exists("d/f.tmp") {
		t.Fatal("failed atomic write left files behind")
	}
}

// TestMemReadEOF: handles read sequentially to EOF like real files, so
// io.ReadAll works over them.
func TestMemReadEOF(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("f")
	f.Write(make([]byte, 8192))
	f.Close()
	r, err := m.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(r)
	if err != nil || len(b) != 8192 {
		t.Fatalf("ReadAll = %d bytes, %v", len(b), err)
	}
	r.Close()
}
