package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sync"
)

// Op names a filesystem operation for the Mem fault hook.
type Op string

// Operations the fault hook can intercept.
const (
	OpCreate  Op = "create"
	OpOpen    Op = "open"
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpClose   Op = "close"
	OpRemove  Op = "remove"
	OpRename  Op = "rename"
	OpSyncDir Op = "syncdir"
)

// Mem is the in-memory FileSystem fake. Beyond behaving like a filesystem,
// it models the two durability gaps a real one has after a crash:
//
//   - file BYTES are durable only up to the last Sync on that file;
//   - directory ENTRIES (creates, renames, removes) are durable only once
//     the parent directory has been SyncDir'd.
//
// Crash() rolls the namespace back to exactly what a power loss would
// leave: the durable entry set, each file truncated to its synced length.
// Tests write through the same helpers production uses, crash, and assert
// on what survived.
//
// FailOp, when non-nil, is consulted before every operation and may return
// an error to inject a persistence failure (a full disk, an IO error) at a
// precise point. The zero value is not usable; call NewMem.
type Mem struct {
	mu sync.Mutex
	// files is the volatile namespace: what an uncrashed process observes.
	files map[string]*memFile
	// durable is the crash-surviving entry set: name -> file identity as of
	// the last SyncDir covering that name. File identities are shared with
	// files (a rename moves an identity; its synced bytes travel with it).
	durable map[string]*memFile

	// FailOp, when non-nil, may fail an operation before it happens.
	FailOp func(op Op, name string) error

	// writes/bytesWritten count Write calls and bytes across all files —
	// the accounting the allocation-bounds tests read.
	writes       int64
	bytesWritten int64
}

type memFile struct {
	data      []byte
	syncedLen int
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memFile), durable: make(map[string]*memFile)}
}

func (m *Mem) fail(op Op, name string) error {
	if m.FailOp != nil {
		return m.FailOp(op, name)
	}
	return nil
}

func notExist(op, name string) error {
	return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
}

// Create implements FileSystem.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fail(OpCreate, name); err != nil {
		return nil, err
	}
	f := m.files[name]
	if f == nil {
		f = &memFile{}
		m.files[name] = f
	} else {
		// Truncation is data loss the moment it happens: the old bytes are
		// gone from the volatile file, and the durable length cannot exceed
		// what the file now holds.
		f.data = f.data[:0]
		f.syncedLen = 0
	}
	return &memHandle{m: m, f: f, name: name, writable: true}, nil
}

// Open implements FileSystem.
func (m *Mem) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fail(OpOpen, name); err != nil {
		return nil, err
	}
	f := m.files[name]
	if f == nil {
		return nil, notExist("open", name)
	}
	return &memHandle{m: m, f: f, name: name}, nil
}

// Remove implements FileSystem.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fail(OpRemove, name); err != nil {
		return err
	}
	if m.files[name] == nil {
		return notExist("remove", name)
	}
	delete(m.files, name)
	return nil
}

// Rename implements FileSystem. Like the syscall it is atomic in the
// volatile namespace; durability of the new entry waits for SyncDir.
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fail(OpRename, oldname); err != nil {
		return err
	}
	f := m.files[oldname]
	if f == nil {
		return notExist("rename", oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// SyncDir implements FileSystem: every entry in dir becomes durable as it
// currently stands — creates and renames into dir persist, removes and
// renames out of dir persist as absences.
func (m *Mem) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fail(OpSyncDir, dir); err != nil {
		return err
	}
	for name := range m.durable {
		if filepath.Dir(name) == dir {
			delete(m.durable, name)
		}
	}
	for name, f := range m.files {
		if filepath.Dir(name) == dir {
			m.durable[name] = f
		}
	}
	return nil
}

// Crash simulates power loss: the namespace rolls back to the durable
// entry set and every file's bytes roll back to its last-synced length.
// Open handles remain usable (the process writing through them is "gone";
// tests just stop using them), and the filesystem continues to work.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files = make(map[string]*memFile, len(m.durable))
	for name, f := range m.durable {
		f.data = f.data[:f.syncedLen:f.syncedLen]
		m.files[name] = f
	}
}

// ReadFileDirect returns the volatile content of name without going
// through a handle (test convenience).
func (m *Mem) ReadFileDirect(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// Exists reports whether name is present in the volatile namespace.
func (m *Mem) Exists(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.files[name] != nil
}

// WriteCounts returns how many Write calls and payload bytes all handles
// have performed since construction.
func (m *Mem) WriteCounts() (writes, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes, m.bytesWritten
}

// memHandle is one open descriptor: sequential writes append, sequential
// reads walk from the start of the file at open time.
type memHandle struct {
	m        *Mem
	f        *memFile
	name     string
	off      int
	writable bool
	closed   bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("vfs: write to closed file %s", h.name)
	}
	if !h.writable {
		return 0, fmt.Errorf("vfs: %s opened read-only", h.name)
	}
	if err := h.m.fail(OpWrite, h.name); err != nil {
		return 0, err
	}
	h.f.data = append(h.f.data, p...)
	h.m.writes++
	h.m.bytesWritten += int64(len(p))
	return len(p), nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("vfs: read of closed file %s", h.name)
	}
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return fmt.Errorf("vfs: sync of closed file %s", h.name)
	}
	if err := h.m.fail(OpSync, h.name); err != nil {
		return err
	}
	h.f.syncedLen = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return fmt.Errorf("vfs: double close of %s", h.name)
	}
	if err := h.m.fail(OpClose, h.name); err != nil {
		return err
	}
	h.closed = true
	return nil
}
