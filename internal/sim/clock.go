// Package sim provides the discrete virtual-time substrate used by the
// entire repository: a nanosecond-resolution virtual clock, busy-time
// accounting for contended resources (NAND channels, the device bus), a
// deterministic random number generator, a background-task scheduler, and
// latency statistics.
//
// Nothing in this package ever touches wall-clock time. Every experiment in
// the repo is therefore deterministic and runs as fast as the host CPU can
// simulate it, while still reproducing queueing and interference effects
// (foreground I/O stalled behind background activation reads, etc.).
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration's representation so the usual constants read naturally.
type Duration int64

// Common duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.2fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

func (t Time) String() string { return Duration(t).String() }

// MaxTime is the largest representable virtual time.
const MaxTime = Time(1<<63 - 1)

// Resource models a serially-reusable resource (a NAND channel, the device
// bus). Work submitted at time t begins at max(t, busyUntil) and occupies
// the resource for its cost; the caller learns its completion time, which
// includes any queueing delay. This is the entire contention model of the
// simulator and is what produces realistic latency spikes when background
// work (activation scans, segment cleaning) competes with foreground I/O.
type Resource struct {
	busyUntil Time
}

// Acquire schedules work of duration cost that was submitted at time now.
// It returns the start and completion times and advances the resource's
// busy horizon to the completion time.
func (r *Resource) Acquire(now Time, cost Duration) (start, done Time) {
	start = now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	done = start.Add(cost)
	r.busyUntil = done
	return start, done
}

// BusyUntil reports the time at which the resource next becomes free.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// Reset makes the resource idle immediately.
func (r *Resource) Reset() { r.busyUntil = 0 }
