package sim

import (
	"fmt"
	"math"
	"sort"
)

// LatencyRecorder accumulates per-operation latencies in a log-bucketed
// histogram (for percentiles) and, optionally, a down-sampled time series
// (for the paper's latency-vs-time figures, e.g., Figures 7, 9, 10, 11).
type LatencyRecorder struct {
	count   int64
	sum     Duration
	min     Duration
	max     Duration
	buckets [nLatBuckets]int64

	series       []SeriesPoint
	seriesEvery  int64 // record 1 of every N samples; 0 disables the series
	seriesCursor int64
}

// SeriesPoint is a single (virtual time, latency) observation.
type SeriesPoint struct {
	At      Time
	Latency Duration
}

const nLatBuckets = 64 * 8 // 8 sub-buckets per power of two up to 2^63

// NewLatencyRecorder returns a recorder. If seriesEvery > 0 the recorder
// also keeps one of every seriesEvery samples as a time-series point.
func NewLatencyRecorder(seriesEvery int64) *LatencyRecorder {
	return &LatencyRecorder{min: math.MaxInt64, seriesEvery: seriesEvery}
}

func latBucket(d Duration) int {
	if d < 1 {
		d = 1
	}
	exp := 63 - leadingZeros64(uint64(d))
	// 8 linear sub-buckets inside each power of two.
	var sub int
	if exp >= 3 {
		sub = int((uint64(d) >> (uint(exp) - 3)) & 7)
	}
	b := exp*8 + sub
	if b >= nLatBuckets {
		b = nLatBuckets - 1
	}
	return b
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketUpper returns a representative latency for bucket b (its upper edge).
func bucketUpper(b int) Duration {
	exp := b / 8
	sub := b % 8
	if exp < 3 {
		return Duration(1) << uint(exp+1)
	}
	base := Duration(1) << uint(exp)
	step := base / 8
	return base + Duration(sub+1)*step
}

// Record adds one observation taken at virtual time at.
func (l *LatencyRecorder) Record(at Time, d Duration) {
	l.count++
	l.sum += d
	if d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	l.buckets[latBucket(d)]++
	if l.seriesEvery > 0 {
		l.seriesCursor++
		if l.seriesCursor >= l.seriesEvery {
			l.seriesCursor = 0
			l.series = append(l.series, SeriesPoint{At: at, Latency: d})
		}
	}
}

// Count returns the number of recorded observations.
func (l *LatencyRecorder) Count() int64 { return l.count }

// Mean returns the mean latency, or 0 with no observations.
func (l *LatencyRecorder) Mean() Duration {
	if l.count == 0 {
		return 0
	}
	return Duration(int64(l.sum) / l.count)
}

// Min returns the smallest observation (0 if none).
func (l *LatencyRecorder) Min() Duration {
	if l.count == 0 {
		return 0
	}
	return l.min
}

// Max returns the largest observation.
func (l *LatencyRecorder) Max() Duration { return l.max }

// Percentile returns an upper bound for the p-th percentile (p in [0,100]).
func (l *LatencyRecorder) Percentile(p float64) Duration {
	if l.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(l.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range l.buckets {
		seen += c
		if seen >= rank {
			return bucketUpper(b)
		}
	}
	return l.max
}

// Series returns the recorded time series (nil when disabled).
func (l *LatencyRecorder) Series() []SeriesPoint { return l.series }

// Reset discards all state, keeping the series sampling rate.
func (l *LatencyRecorder) Reset() {
	every := l.seriesEvery
	*l = LatencyRecorder{min: math.MaxInt64, seriesEvery: every}
}

// Summary renders a single-line human-readable digest.
func (l *LatencyRecorder) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		l.count, l.Mean(), l.Percentile(50), l.Percentile(99), l.Max())
}

// Throughput is a helper computing MB/s given bytes moved over a span of
// virtual time. It returns 0 for an empty span.
func Throughput(bytes int64, span Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / span.Seconds()
}

// MeanStddev returns the mean and sample standard deviation of xs.
func MeanStddev(xs []float64) (mean, stddev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// BandwidthWindow aggregates completed bytes into fixed-width windows of
// virtual time, yielding a bandwidth-vs-time series (Figure 12).
type BandwidthWindow struct {
	width   Duration
	points  []BWPoint
	cur     Time
	bytes   int64
	started bool
}

// BWPoint is one (window start, MB/s) sample.
type BWPoint struct {
	At   Time
	MBps float64
}

// NewBandwidthWindow returns an aggregator with the given window width.
func NewBandwidthWindow(width Duration) *BandwidthWindow {
	return &BandwidthWindow{width: width}
}

// Add records that n bytes completed at virtual time at. Calls must be in
// non-decreasing time order. The first call anchors the window origin, so
// measurements that begin mid-simulation do not emit leading empty windows.
func (b *BandwidthWindow) Add(at Time, n int64) {
	if !b.started {
		b.started = true
		b.cur = at - at%Time(b.width)
	}
	for at >= b.cur.Add(b.width) {
		b.flush()
	}
	b.bytes += n
}

func (b *BandwidthWindow) flush() {
	b.points = append(b.points, BWPoint{At: b.cur, MBps: Throughput(b.bytes, b.width)})
	b.cur = b.cur.Add(b.width)
	b.bytes = 0
}

// Points flushes the current window and returns all samples.
func (b *BandwidthWindow) Points() []BWPoint {
	if b.bytes > 0 {
		b.flush()
	}
	return b.points
}

// Quantiles returns the q-quantiles (e.g., 0.5) of xs without modifying it.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, q := range qs {
		idx := int(q * float64(len(s)-1))
		out[i] = s[idx]
	}
	return out
}
