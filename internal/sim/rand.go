package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (xorshift64star). Experiments seed it explicitly so every run of every
// benchmark is bit-for-bit reproducible. It deliberately does not depend on
// math/rand so that library behaviour cannot drift across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped to a fixed
// non-zero constant, since xorshift has an all-zeros fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Zipf generates Zipf-distributed values over [0, n) with exponent s > 1,
// using rejection-inversion (Hörmann). It models the skewed access
// distributions common in database workloads on flash.
type Zipf struct {
	rng              *RNG
	n                float64
	s                float64
	oneMinusS        float64
	hIntegralX1      float64
	hIntegralNumElem float64
}

// NewZipf returns a Zipf generator over [0, n) with exponent s (> 1).
func NewZipf(rng *RNG, s float64, n int64) *Zipf {
	if s <= 1 {
		panic("sim: Zipf exponent must be > 1")
	}
	if n <= 0 {
		panic("sim: Zipf n must be positive")
	}
	z := &Zipf{rng: rng, n: float64(n), s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumElem = z.hIntegral(z.n + 0.5)
	return z
}

func (z *Zipf) hIntegral(x float64) float64 {
	logX := ln(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *Zipf) h(x float64) float64 {
	return exp(-z.s * ln(x))
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return exp(helper1(t) * x)
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() int64 {
	for {
		u := z.hIntegralNumElem + z.rng.Float64()*(z.hIntegralX1-z.hIntegralNumElem)
		x := z.hIntegralInverse(u)
		k := x + 0.5
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		kf := float64(int64(k))
		if u >= z.hIntegral(kf+0.5)-z.h(kf) {
			return int64(kf) - 1
		}
	}
}

// helper1 computes log1p(x)/x stably.
func helper1(x float64) float64 {
	if x > -0.5 && x < 0.5 {
		// Taylor expansion around 0.
		return 1 - x/2 + x*x/3 - x*x*x/4
	}
	return ln(1+x) / x
}

// helper2 computes expm1(x)/x stably.
func helper2(x float64) float64 {
	if x > -0.5 && x < 0.5 {
		return 1 + x/2 + x*x/6 + x*x*x/24
	}
	return (exp(x) - 1) / x
}

// ln and exp are tiny aliases so the sampling math above reads close to the
// published rejection-inversion pseudocode.
func ln(x float64) float64  { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }
