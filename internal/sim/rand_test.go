package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnUniformish(t *testing.T) {
	r := NewRNG(1234)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		if c < trials/n*8/10 || c > trials/n*12/10 {
			t.Fatalf("bucket %d count %d deviates more than 20%% from %d", i, c, trials/n)
		}
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBytesFills(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{0, 1, 7, 8, 9, 31, 64, 100} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 16 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Bytes(%d) produced all zeros", n)
			}
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRNG(99)
	z := NewZipf(r, 1.2, 1000)
	counts := make(map[int64]int)
	const trials = 50000
	for i := 0; i < trials; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf value out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be sampled far more often than rank 500.
	if counts[0] <= counts[500]*5 {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(s<=1) did not panic")
		}
	}()
	NewZipf(NewRNG(1), 1.0, 10)
}
