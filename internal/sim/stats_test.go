package sim

import (
	"math"
	"testing"
)

func TestLatencyRecorderBasics(t *testing.T) {
	l := NewLatencyRecorder(0)
	for i := 1; i <= 100; i++ {
		l.Record(Time(i), Duration(i)*Microsecond)
	}
	if l.Count() != 100 {
		t.Fatalf("Count = %d", l.Count())
	}
	if l.Min() != 1*Microsecond {
		t.Fatalf("Min = %v", l.Min())
	}
	if l.Max() != 100*Microsecond {
		t.Fatalf("Max = %v", l.Max())
	}
	mean := l.Mean()
	if mean < 50*Microsecond || mean > 51*Microsecond {
		t.Fatalf("Mean = %v, want ~50.5us", mean)
	}
}

func TestLatencyPercentileMonotone(t *testing.T) {
	l := NewLatencyRecorder(0)
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		l.Record(0, Duration(r.Intn(1000000)+1))
	}
	prev := Duration(0)
	for _, p := range []float64{10, 50, 90, 99, 99.9, 100} {
		v := l.Percentile(p)
		if v < prev {
			t.Fatalf("percentile %v = %v < previous %v", p, v, prev)
		}
		prev = v
	}
}

func TestLatencyPercentileAccuracy(t *testing.T) {
	l := NewLatencyRecorder(0)
	for i := 1; i <= 1000; i++ {
		l.Record(0, Duration(i)*Microsecond)
	}
	p50 := l.Percentile(50)
	// Log-bucketed: allow 25% relative error.
	if math.Abs(p50.Microseconds()-500) > 125 {
		t.Fatalf("p50 = %v, want ~500us", p50)
	}
	p99 := l.Percentile(99)
	if math.Abs(p99.Microseconds()-990) > 250 {
		t.Fatalf("p99 = %v, want ~990us", p99)
	}
}

func TestLatencySeries(t *testing.T) {
	l := NewLatencyRecorder(10)
	for i := 0; i < 100; i++ {
		l.Record(Time(i), Duration(i))
	}
	if got := len(l.Series()); got != 10 {
		t.Fatalf("series length = %d, want 10", got)
	}
}

func TestLatencyReset(t *testing.T) {
	l := NewLatencyRecorder(5)
	l.Record(0, 100)
	l.Reset()
	if l.Count() != 0 || len(l.Series()) != 0 {
		t.Fatal("Reset did not clear state")
	}
	for i := 0; i < 10; i++ {
		l.Record(Time(i), 1)
	}
	if len(l.Series()) != 2 {
		t.Fatalf("series sampling rate lost after Reset: %d", len(l.Series()))
	}
}

func TestThroughput(t *testing.T) {
	mb := Throughput(100<<20, Second)
	if math.Abs(mb-100) > 1e-9 {
		t.Fatalf("Throughput = %v, want 100", mb)
	}
	if Throughput(100, 0) != 0 {
		t.Fatal("zero span should yield 0")
	}
}

func TestMeanStddev(t *testing.T) {
	mean, sd := MeanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(sd-2.138089935) > 1e-6 {
		t.Fatalf("stddev = %v", sd)
	}
	m0, s0 := MeanStddev(nil)
	if m0 != 0 || s0 != 0 {
		t.Fatal("empty input should give zeros")
	}
}

func TestBandwidthWindow(t *testing.T) {
	bw := NewBandwidthWindow(Second)
	bw.Add(Time(100*Millisecond), 10<<20)
	bw.Add(Time(900*Millisecond), 10<<20)
	bw.Add(Time(1100*Millisecond), 30<<20)
	pts := bw.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if math.Abs(pts[0].MBps-20) > 1e-9 {
		t.Fatalf("window 0 = %v MB/s, want 20", pts[0].MBps)
	}
	if math.Abs(pts[1].MBps-30) > 1e-9 {
		t.Fatalf("window 1 = %v MB/s, want 30", pts[1].MBps)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	q := Quantiles(xs, 0, 0.5, 1)
	if q[0] != 1 || q[1] != 3 || q[2] != 5 {
		t.Fatalf("Quantiles = %v", q)
	}
	// input must be unmodified
	if xs[0] != 5 {
		t.Fatal("Quantiles modified its input")
	}
}

func TestBucketMapping(t *testing.T) {
	// Every representative value must land in its own bucket's range.
	for _, d := range []Duration{1, 2, 7, 8, 100, 4096, 1 << 20, 1 << 40} {
		b := latBucket(d)
		if up := bucketUpper(b); up < d {
			t.Fatalf("bucketUpper(%d)=%d < %d", b, up, d)
		}
	}
}
