package sim

import "container/heap"

// Task is a unit of background work managed by a Scheduler. Run executes one
// quantum of work starting at virtual time now and returns the time at which
// the task wants to run again (typically now + workDone + sleep as dictated
// by a rate limiter). A task signals completion by returning done=true.
type Task interface {
	// Name identifies the task in stats and error messages.
	Name() string
	// Run performs one quantum starting at now. next is ignored when done.
	Run(now Time) (next Time, done bool)
}

// TaskFunc adapts a function to the Task interface.
type TaskFunc struct {
	Label string
	Fn    func(now Time) (Time, bool)
}

// Name returns the task's label.
func (t *TaskFunc) Name() string { return t.Label }

// Run invokes the wrapped function.
func (t *TaskFunc) Run(now Time) (Time, bool) { return t.Fn(now) }

type schedEntry struct {
	at    Time
	seq   int64 // tie-break: FIFO among equal times
	task  Task
	index int
}

type schedHeap []*schedEntry

func (h schedHeap) Len() int { return len(h) }
func (h schedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h schedHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *schedHeap) Push(x any) {
	e := x.(*schedEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *schedHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler runs background tasks (segment cleaning, snapshot activation)
// interleaved with foreground I/O. Foreground drivers call RunUntil(now)
// before issuing each operation so that any background quanta scheduled
// earlier than the operation execute first and consume device time, exactly
// as a background kernel thread would on real hardware.
type Scheduler struct {
	heap schedHeap
	seq  int64
	// Ran counts executed quanta, for tests and stats.
	Ran int64
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Schedule enqueues task to run at virtual time at.
func (s *Scheduler) Schedule(at Time, task Task) {
	s.seq++
	heap.Push(&s.heap, &schedEntry{at: at, seq: s.seq, task: task})
}

// RunUntil executes, in timestamp order, every task quantum scheduled at or
// before now. Tasks that reschedule themselves past now are left pending.
func (s *Scheduler) RunUntil(now Time) {
	for len(s.heap) > 0 && s.heap[0].at <= now {
		e := heap.Pop(&s.heap).(*schedEntry)
		next, done := e.task.Run(e.at)
		s.Ran++
		if !done {
			if next < e.at {
				next = e.at
			}
			s.seq++
			heap.Push(&s.heap, &schedEntry{at: next, seq: s.seq, task: e.task})
		}
	}
}

// Drain runs every pending task quantum to completion and returns the
// virtual time of the last executed quantum (or now if none ran). It is used
// when a caller must wait for background work (e.g., blocking on an
// activation finishing).
func (s *Scheduler) Drain(now Time) Time {
	last := now
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*schedEntry)
		at := e.at
		if at < last {
			at = last
		}
		next, done := e.task.Run(at)
		s.Ran++
		last = at
		if !done {
			if next < at {
				next = at
			}
			s.seq++
			heap.Push(&s.heap, &schedEntry{at: next, seq: s.seq, task: e.task})
		}
	}
	return last
}

// Reset discards every pending task quantum without running it. Fault
// harnesses use it to model power loss: background work (cleans, snapshot
// activations) lives in host RAM and simply ceases to exist at the crash
// point, while the device's durable state stays whatever the executed quanta
// made it.
func (s *Scheduler) Reset() {
	s.heap = nil
}

// Pending reports the number of scheduled task quanta.
func (s *Scheduler) Pending() int { return len(s.heap) }

// NextAt returns the virtual time of the earliest pending quantum, or
// MaxTime when the scheduler is empty.
func (s *Scheduler) NextAt() Time {
	if len(s.heap) == 0 {
		return MaxTime
	}
	return s.heap[0].at
}
