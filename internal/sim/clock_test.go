package sim

import "testing"

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{50 * Microsecond, "50.00us"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: got %d, want 150", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d, want 50", d)
	}
}

func TestResourceIdleStart(t *testing.T) {
	var r Resource
	start, done := r.Acquire(1000, 10)
	if start != 1000 || done != 1010 {
		t.Fatalf("idle acquire: start=%d done=%d", start, done)
	}
}

func TestResourceQueueing(t *testing.T) {
	var r Resource
	r.Acquire(0, 100) // busy until 100
	start, done := r.Acquire(10, 50)
	if start != 100 {
		t.Fatalf("queued op should start at 100, got %d", start)
	}
	if done != 150 {
		t.Fatalf("queued op should finish at 150, got %d", done)
	}
	if r.BusyUntil() != 150 {
		t.Fatalf("BusyUntil = %d, want 150", r.BusyUntil())
	}
}

func TestResourceLateSubmitter(t *testing.T) {
	var r Resource
	r.Acquire(0, 100)
	start, done := r.Acquire(500, 30)
	if start != 500 || done != 530 {
		t.Fatalf("late submit should not queue: start=%d done=%d", start, done)
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Acquire(0, 1000)
	r.Reset()
	if r.BusyUntil() != 0 {
		t.Fatal("Reset did not clear busy horizon")
	}
}
