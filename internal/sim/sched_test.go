package sim

import "testing"

func TestSchedulerRunsInOrder(t *testing.T) {
	s := NewScheduler()
	var order []string
	mk := func(name string) Task {
		return &TaskFunc{Label: name, Fn: func(now Time) (Time, bool) {
			order = append(order, name)
			return 0, true
		}}
	}
	s.Schedule(30, mk("c"))
	s.Schedule(10, mk("a"))
	s.Schedule(20, mk("b"))
	s.RunUntil(25)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("RunUntil(25) ran %v, want [a b]", order)
	}
	s.RunUntil(100)
	if len(order) != 3 || order[2] != "c" {
		t.Fatalf("RunUntil(100) ran %v, want [a b c]", order)
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(10, &TaskFunc{Label: "t", Fn: func(now Time) (Time, bool) {
			order = append(order, i)
			return 0, true
		}})
	}
	s.RunUntil(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time tasks ran out of order: %v", order)
		}
	}
}

func TestSchedulerReschedule(t *testing.T) {
	s := NewScheduler()
	runs := 0
	s.Schedule(0, &TaskFunc{Label: "loop", Fn: func(now Time) (Time, bool) {
		runs++
		if runs == 4 {
			return 0, true
		}
		return now + 10, false
	}})
	s.RunUntil(100)
	if runs != 4 {
		t.Fatalf("self-rescheduling task ran %d times, want 4", runs)
	}
	if s.Pending() != 0 {
		t.Fatalf("scheduler should be empty, has %d", s.Pending())
	}
}

func TestSchedulerDoesNotRunFuture(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.Schedule(1000, &TaskFunc{Label: "future", Fn: func(now Time) (Time, bool) {
		ran = true
		return 0, true
	}})
	s.RunUntil(999)
	if ran {
		t.Fatal("task scheduled at 1000 ran during RunUntil(999)")
	}
	if got := s.NextAt(); got != 1000 {
		t.Fatalf("NextAt = %d, want 1000", got)
	}
}

func TestSchedulerDrain(t *testing.T) {
	s := NewScheduler()
	runs := 0
	s.Schedule(50, &TaskFunc{Label: "loop", Fn: func(now Time) (Time, bool) {
		runs++
		if runs == 3 {
			return 0, true
		}
		return now + 100, false
	}})
	last := s.Drain(0)
	if runs != 3 {
		t.Fatalf("Drain ran %d quanta, want 3", runs)
	}
	if last != 250 {
		t.Fatalf("Drain returned %d, want 250", last)
	}
	if s.NextAt() != MaxTime {
		t.Fatal("NextAt should be MaxTime when empty")
	}
}

func TestSchedulerRescheduleNeverGoesBackward(t *testing.T) {
	s := NewScheduler()
	var times []Time
	s.Schedule(100, &TaskFunc{Label: "bad", Fn: func(now Time) (Time, bool) {
		times = append(times, now)
		if len(times) == 2 {
			return 0, true
		}
		return 5, false // asks to run in the past
	}})
	s.RunUntil(200)
	if len(times) != 2 {
		t.Fatalf("ran %d times, want 2", len(times))
	}
	if times[1] < times[0] {
		t.Fatalf("task ran backward in time: %v", times)
	}
}
