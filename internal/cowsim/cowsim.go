// Package cowsim implements a disk-optimized copy-on-write snapshotting
// block store in the style of Btrfs, as the comparison baseline for the
// paper's Figures 11 and 12.
//
// Architecturally it is the opposite of ioSnap: snapshot state lives in the
// *active metadata* (a CoW-friendly mapping tree with reference counts), so
//
//   - snapshot creation must commit: every dirty metadata page is flushed
//     synchronously, stalling foreground I/O (Figure 11's 3× spikes);
//   - after a snapshot, the first write to each metadata page must CoW it
//     and update reference counts — extra device writes on the foreground
//     path until the write working set has been re-copied;
//   - the reference-count tree grows with every snapshot, so refcount
//     lookups miss the metadata cache more and more often, degrading
//     sustained bandwidth as snapshots accumulate (Figure 12's decline).
//
// The store runs on a flash-like timing model (channels + shared bus with
// the same latencies as internal/nand's defaults) because the paper ran
// Btrfs on the same Fusion-io card. As in the paper, only the *deviation
// from its own baseline* is comparable with ioSnap.
package cowsim

import (
	"errors"
	"fmt"
	"sort"

	"iosnap/internal/sim"
)

// Errors.
var (
	ErrOutOfRange     = errors.New("cowsim: LBA out of range")
	ErrBadLength      = errors.New("cowsim: buffer not a multiple of sector size")
	ErrNoSuchSnapshot = errors.New("cowsim: no such snapshot")
)

// Config parameterizes the store.
type Config struct {
	SectorSize int
	Sectors    int64
	Channels   int

	ReadLatency  sim.Duration
	WriteLatency sim.Duration
	BusMBps      int

	// MappingsPerMetaPage is how many LBA translations share one metadata
	// page (the CoW granularity of the mapping tree).
	MappingsPerMetaPage int64
	// RefsPerMetaPage is how many refcount entries fit a refcount page.
	RefsPerMetaPage int64
	// MetaCachePages bounds the in-memory metadata cache; refcount pages
	// beyond it cost a device read per access.
	MetaCachePages int64
	// StoreData keeps payloads for verification (tests); off for big runs.
	StoreData bool
}

// DefaultConfig mirrors the flash timing used by the NAND simulator.
func DefaultConfig(sectors int64) Config {
	return Config{
		SectorSize:          4096,
		Sectors:             sectors,
		Channels:            16,
		ReadLatency:         25 * sim.Microsecond,
		WriteLatency:        40 * sim.Microsecond,
		BusMBps:             1700,
		MappingsPerMetaPage: 256,
		RefsPerMetaPage:     512,
		MetaCachePages:      256,
		StoreData:           false,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SectorSize <= 0:
		return fmt.Errorf("cowsim: SectorSize %d", c.SectorSize)
	case c.Sectors <= 0:
		return fmt.Errorf("cowsim: Sectors %d", c.Sectors)
	case c.Channels <= 0:
		return fmt.Errorf("cowsim: Channels %d", c.Channels)
	case c.MappingsPerMetaPage <= 0 || c.RefsPerMetaPage <= 0:
		return fmt.Errorf("cowsim: metadata geometry must be positive")
	}
	return nil
}

// version is one generation of a sector's contents.
type version struct {
	gen  uint64
	data []byte
}

// SnapshotID identifies a snapshot.
type SnapshotID uint64

// Stats counts store activity.
type Stats struct {
	UserWrites     int64
	UserReads      int64
	MetaCoWWrites  int64 // metadata pages copied on first post-snapshot touch
	RefcountReads  int64 // refcount page reads that missed the cache
	FlushedPages   int64 // metadata pages written by snapshot commits
	SnapshotsTaken int64
}

// Store is the Btrfs-like snapshotting block device.
type Store struct {
	cfg      Config
	channels []sim.Resource
	bus      sim.Resource
	busNsPB  float64

	hist    map[int64][]version // per-sector version chain (newest last)
	curGen  uint64              // generation of the active tree
	snapGen map[SnapshotID]uint64
	nextID  SnapshotID

	// dirtyMeta is the set of metadata pages modified since the last commit.
	dirtyMeta map[int64]bool
	// refEntries is the size of the refcount tree; it grows with each
	// snapshot by the number of extents the snapshot pins.
	refEntries int64

	stats Stats
}

// New returns an empty store.
func New(cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Store{
		cfg:       cfg,
		channels:  make([]sim.Resource, cfg.Channels),
		hist:      make(map[int64][]version),
		curGen:    1,
		snapGen:   make(map[SnapshotID]uint64),
		nextID:    1,
		dirtyMeta: make(map[int64]bool),
	}
	if cfg.BusMBps > 0 {
		s.busNsPB = 1e9 / (float64(cfg.BusMBps) * (1 << 20))
	}
	return s, nil
}

// SectorSize implements blockdev.Device.
func (s *Store) SectorSize() int { return s.cfg.SectorSize }

// Sectors implements blockdev.Device.
func (s *Store) Sectors() int64 { return s.cfg.Sectors }

// Stats returns the counters.
func (s *Store) Stats() Stats { return s.stats }

// Snapshots returns the number of live snapshots.
func (s *Store) Snapshots() int { return len(s.snapGen) }

func (s *Store) chanFor(key int64) *sim.Resource {
	return &s.channels[key%int64(s.cfg.Channels)]
}

// devWrite models one page program crossing the bus.
func (s *Store) devWrite(now sim.Time, key int64) sim.Time {
	if s.busNsPB > 0 {
		cost := sim.Duration(float64(s.cfg.SectorSize) * s.busNsPB)
		_, now = s.bus.Acquire(now, cost)
	}
	_, done := s.chanFor(key).Acquire(now, s.cfg.WriteLatency)
	return done
}

// devRead models one page read.
func (s *Store) devRead(now sim.Time, key int64) sim.Time {
	_, done := s.chanFor(key).Acquire(now, s.cfg.ReadLatency)
	if s.busNsPB > 0 {
		cost := sim.Duration(float64(s.cfg.SectorSize) * s.busNsPB)
		_, done = s.bus.Acquire(done, cost)
	}
	return done
}

func (s *Store) checkIO(lba int64, n int) error {
	if lba < 0 || lba+int64(n) > s.cfg.Sectors {
		return fmt.Errorf("%w: [%d,%d)", ErrOutOfRange, lba, lba+int64(n))
	}
	return nil
}

// Write implements blockdev.Device with the disk-optimized CoW write path.
func (s *Store) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	ss := s.cfg.SectorSize
	if len(data)%ss != 0 || len(data) == 0 {
		return now, fmt.Errorf("%w: %d", ErrBadLength, len(data))
	}
	n := len(data) / ss
	if err := s.checkIO(lba, n); err != nil {
		return now, err
	}
	done := now
	for i := 0; i < n; i++ {
		d := s.writeSector(now, lba+int64(i), data[i*ss:(i+1)*ss])
		if d > done {
			done = d
		}
	}
	s.stats.UserWrites += int64(n)
	return done, nil
}

func (s *Store) writeSector(now sim.Time, lba int64, data []byte) sim.Time {
	// Data block write.
	done := s.devWrite(now, lba)

	h := s.hist[lba]
	if len(h) > 0 && h[len(h)-1].gen == s.curGen {
		// The extent is exclusive to the active tree: overwrite in place,
		// no snapshot-related work.
		if s.cfg.StoreData {
			h[len(h)-1].data = append(h[len(h)-1].data[:0], data...)
		}
	} else {
		// The extent is shared with a snapshot (or new): preserve the old
		// version and pay the disk-optimized CoW tax — the mapping-tree
		// page is copied (extra write) and the refcount tree updated, with
		// a device read whenever the refcount page misses the cache. This
		// is the per-write overhead that makes the baseline recover slowly
		// after every snapshot and degrade as snapshots accumulate.
		var payload []byte
		if s.cfg.StoreData {
			payload = append([]byte(nil), data...)
		}
		s.hist[lba] = append(h, version{gen: s.curGen, data: payload})
		if len(h) > 0 && s.Snapshots() > 0 {
			mp := lba / s.cfg.MappingsPerMetaPage
			done = s.devWrite(done, mp) // mapping page CoW
			refPages := s.refEntries/s.cfg.RefsPerMetaPage + 1
			if refPages > s.cfg.MetaCachePages {
				// The refcount tree outgrew the cache: the update must read
				// its page first, and misses get more frequent as the tree
				// grows. missStride shrinks with tree size.
				stride := s.cfg.MetaCachePages * 4 / refPages
				if stride < 1 || lba%(stride+1) == 0 {
					done = s.devRead(done, mp+refPages%7)
					s.stats.RefcountReads++
				}
			}
			if s.stats.MetaCoWWrites%8 == 0 {
				done = s.devWrite(done, mp+1) // amortized refcount page write-back
			}
			s.stats.MetaCoWWrites++
		}
	}
	s.dirtyMeta[lba/s.cfg.MappingsPerMetaPage] = true
	return done
}

// Read implements blockdev.Device against the active tree.
func (s *Store) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	ss := s.cfg.SectorSize
	if len(buf)%ss != 0 || len(buf) == 0 {
		return now, fmt.Errorf("%w: %d", ErrBadLength, len(buf))
	}
	n := len(buf) / ss
	if err := s.checkIO(lba, n); err != nil {
		return now, err
	}
	done := now
	for i := 0; i < n; i++ {
		sector := buf[i*ss : (i+1)*ss]
		h := s.hist[lba+int64(i)]
		if len(h) == 0 {
			for j := range sector {
				sector[j] = 0
			}
			continue
		}
		if s.cfg.StoreData {
			copy(sector, h[len(h)-1].data)
		}
		if d := s.devRead(now, lba+int64(i)); d > done {
			done = d
		}
	}
	s.stats.UserReads += int64(n)
	return done, nil
}

// CreateSnapshot commits the filesystem and registers a snapshot. The
// commit synchronously flushes every dirty metadata page — the foreground
// stall the paper's Figure 11 shows — and grows the refcount tree by the
// number of extents the snapshot pins.
func (s *Store) CreateSnapshot(now sim.Time) (SnapshotID, sim.Time, error) {
	done := now
	// Flush in page order: each write's channel depends on the page id, so
	// Go's randomized map iteration would make commit times (and everything
	// scheduled after them) vary run to run.
	pages := make([]int64, 0, len(s.dirtyMeta))
	for mp := range s.dirtyMeta {
		pages = append(pages, mp)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	flushed := int64(len(pages))
	for _, mp := range pages {
		if d := s.devWrite(done, mp); d > done {
			done = d
		}
		delete(s.dirtyMeta, mp)
	}
	// Journal commit record.
	done = s.devWrite(done, 0)
	s.stats.FlushedPages += flushed

	id := s.nextID
	s.nextID++
	s.snapGen[id] = s.curGen
	s.curGen++
	// Every mapped extent gains a reference held by the snapshot.
	s.refEntries += int64(len(s.hist))
	s.stats.SnapshotsTaken++
	return id, done, nil
}

// DeleteSnapshot drops a snapshot; refcount entries shrink and pinned-only
// versions are released.
func (s *Store) DeleteSnapshot(now sim.Time, id SnapshotID) (sim.Time, error) {
	gen, ok := s.snapGen[id]
	if !ok {
		return now, fmt.Errorf("%w: %d", ErrNoSuchSnapshot, id)
	}
	delete(s.snapGen, id)
	s.refEntries -= s.pruneVersions()
	_ = gen
	// Deletion walks and updates the refcount tree: charge one metadata
	// write per touched page group (coarse).
	done := s.devWrite(now, 1)
	return done, nil
}

// pruneVersions drops versions no snapshot can reach, returning how many
// references were released.
func (s *Store) pruneVersions() int64 {
	var released int64
	for lba, h := range s.hist {
		keep := h[:0]
		for i, v := range h {
			last := i == len(h)-1
			pinned := false
			for _, g := range s.snapGen {
				if v.gen <= g && (last || h[i+1].gen > g) {
					pinned = true
					break
				}
			}
			if last || pinned {
				keep = append(keep, v)
			} else {
				released++
			}
		}
		s.hist[lba] = keep
	}
	return released
}

// ReadSnapshot reads a sector as of snapshot id (for verification).
func (s *Store) ReadSnapshot(now sim.Time, id SnapshotID, lba int64, buf []byte) (sim.Time, error) {
	gen, ok := s.snapGen[id]
	if !ok {
		return now, fmt.Errorf("%w: %d", ErrNoSuchSnapshot, id)
	}
	if err := s.checkIO(lba, 1); err != nil {
		return now, err
	}
	h := s.hist[lba]
	for j := range buf {
		buf[j] = 0
	}
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].gen <= gen {
			if s.cfg.StoreData {
				copy(buf, h[i].data)
			}
			break
		}
	}
	return s.devRead(now, lba), nil
}
