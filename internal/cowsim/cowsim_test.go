package cowsim

import (
	"bytes"
	"errors"
	"testing"

	"iosnap/internal/sim"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	cfg := DefaultConfig(1024)
	cfg.SectorSize = 512
	cfg.Channels = 2
	cfg.StoreData = true
	cfg.MappingsPerMetaPage = 16
	cfg.MetaCachePages = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pat(ss int, lba int64, v byte) []byte {
	b := make([]byte, ss)
	for i := range b {
		b[i] = byte(lba) ^ v ^ byte(i)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := testStore(t)
	ss := s.SectorSize()
	now, err := s.Write(0, 5, pat(ss, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	if _, err := s.Read(now, 5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pat(ss, 5, 1)) {
		t.Fatal("round trip failed")
	}
	// Unwritten reads zeros.
	if _, err := s.Read(now, 6, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten sector not zero")
		}
	}
}

func TestIOValidation(t *testing.T) {
	s := testStore(t)
	ss := s.SectorSize()
	if _, err := s.Write(0, -1, make([]byte, ss)); !errors.Is(err, ErrOutOfRange) {
		t.Fatal(err)
	}
	if _, err := s.Write(0, 0, make([]byte, ss-1)); !errors.Is(err, ErrBadLength) {
		t.Fatal(err)
	}
	if _, err := s.Read(0, s.Sectors(), make([]byte, ss)); !errors.Is(err, ErrOutOfRange) {
		t.Fatal(err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := testStore(t)
	ss := s.SectorSize()
	now, _ := s.Write(0, 1, pat(ss, 1, 1))
	id, now, err := s.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	now, _ = s.Write(now, 1, pat(ss, 1, 2))
	buf := make([]byte, ss)
	if _, err := s.ReadSnapshot(now, id, 1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pat(ss, 1, 1)) {
		t.Fatal("snapshot lost old version")
	}
	if _, err := s.Read(now, 1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pat(ss, 1, 2)) {
		t.Fatal("active lost new version")
	}
}

func TestSnapshotCreateFlushesDirtyMetadata(t *testing.T) {
	s := testStore(t)
	ss := s.SectorSize()
	now := sim.Time(0)
	// Dirty many distinct metadata pages.
	for lba := int64(0); lba < 256; lba += 16 {
		now, _ = s.Write(now, lba, pat(ss, lba, 1))
	}
	_, done, err := s.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().FlushedPages < 16 {
		t.Fatalf("flushed %d pages, want >= 16", s.Stats().FlushedPages)
	}
	// The commit must consume real device time (the Figure 11 stall).
	if done.Sub(now) < 4*s.cfg.WriteLatency {
		t.Fatalf("commit cost %v too small", done.Sub(now))
	}
	// A second snapshot with nothing dirty is cheap.
	before := done
	_, done2, err := s.CreateSnapshot(done)
	if err != nil {
		t.Fatal(err)
	}
	if done2.Sub(before) > 3*s.cfg.WriteLatency {
		t.Fatal("clean commit should be cheap")
	}
}

func TestPostSnapshotWritesPayMetadataCoW(t *testing.T) {
	s := testStore(t)
	ss := s.SectorSize()
	now := sim.Time(0)
	now, _ = s.Write(now, 0, pat(ss, 0, 1))
	base := s.Stats().MetaCoWWrites
	if base != 0 {
		t.Fatal("CoW before any snapshot")
	}
	_, now, _ = s.CreateSnapshot(now)
	start := now
	now, _ = s.Write(now, 0, pat(ss, 0, 2))
	if s.Stats().MetaCoWWrites != 1 {
		t.Fatalf("MetaCoWWrites = %d, want 1", s.Stats().MetaCoWWrites)
	}
	firstLat := now.Sub(start)
	// Second overwrite of the same extent in the same generation: the
	// extent is now exclusive, so no CoW and a cheaper write.
	start = now
	now, _ = s.Write(now, 0, pat(ss, 0, 3))
	if s.Stats().MetaCoWWrites != 1 {
		t.Fatal("exclusive extent should not CoW again")
	}
	if now.Sub(start) >= firstLat {
		t.Fatalf("exclusive write (%v) not cheaper than CoW write (%v)", now.Sub(start), firstLat)
	}
	// A brand-new extent (never written) has no old version to preserve.
	s2 := testStore(t)
	_, n2, _ := s2.CreateSnapshot(0)
	s2.Write(n2, 9, pat(ss, 9, 1))
	if s2.Stats().MetaCoWWrites != 0 {
		t.Fatal("fresh extent write should not pay CoW")
	}
}

func TestRefcountTreeGrowthDegradesWrites(t *testing.T) {
	// The Figure 12 mechanism: with enough snapshots the refcount tree
	// outgrows the cache and CoW writes start paying extra reads.
	s := testStore(t)
	ss := s.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 512; lba++ {
		now, _ = s.Write(now, lba, pat(ss, lba, 1))
	}
	missesBefore := s.Stats().RefcountReads
	for i := 0; i < 10; i++ {
		_, d, err := s.CreateSnapshot(now)
		if err != nil {
			t.Fatal(err)
		}
		now = d
		for lba := int64(0); lba < 512; lba += 8 {
			now, _ = s.Write(now, lba, pat(ss, lba, byte(i)))
		}
	}
	if s.Stats().RefcountReads == missesBefore {
		t.Fatal("refcount tree growth never caused cache misses")
	}
}

func TestDeleteSnapshotReleasesVersions(t *testing.T) {
	s := testStore(t)
	ss := s.SectorSize()
	now, _ := s.Write(0, 7, pat(ss, 7, 1))
	id, now, _ := s.CreateSnapshot(now)
	now, _ = s.Write(now, 7, pat(ss, 7, 2))
	if len(s.hist[7]) != 2 {
		t.Fatalf("history = %d versions", len(s.hist[7]))
	}
	now, err := s.DeleteSnapshot(now, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.hist[7]) != 1 {
		t.Fatalf("history after delete = %d versions", len(s.hist[7]))
	}
	if _, err := s.DeleteSnapshot(now, id); !errors.Is(err, ErrNoSuchSnapshot) {
		t.Fatal("double delete accepted")
	}
	if s.Snapshots() != 0 {
		t.Fatal("snapshot count wrong")
	}
}

func TestMultipleSnapshotsVersionChains(t *testing.T) {
	s := testStore(t)
	ss := s.SectorSize()
	now := sim.Time(0)
	var ids []SnapshotID
	for v := byte(1); v <= 4; v++ {
		now, _ = s.Write(now, 3, pat(ss, 3, v))
		id, d, err := s.CreateSnapshot(now)
		if err != nil {
			t.Fatal(err)
		}
		now = d
		ids = append(ids, id)
	}
	buf := make([]byte, ss)
	for i, id := range ids {
		if _, err := s.ReadSnapshot(now, id, 3, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pat(ss, 3, byte(i+1))) {
			t.Fatalf("snapshot %d shows wrong version", id)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(0)
	if _, err := New(bad); err == nil {
		t.Fatal("zero sectors accepted")
	}
	bad = DefaultConfig(100)
	bad.Channels = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero channels accepted")
	}
}

// TestStoreMatchesModelRandomOps drives random writes, snapshots, deletes,
// and reads against a pure-map model of versioned state.
func TestStoreMatchesModelRandomOps(t *testing.T) {
	s := testStore(t)
	ss := s.SectorSize()
	rng := sim.NewRNG(21)

	active := make(map[int64]byte)
	snaps := make(map[SnapshotID]map[int64]byte)
	var ids []SnapshotID
	now := sim.Time(0)
	buf := make([]byte, ss)

	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(20); {
		case op < 12: // write
			lba := int64(rng.Intn(256))
			v := byte(step%250 + 1)
			d, err := s.Write(now, lba, pat(ss, lba, v))
			if err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			active[lba] = v
			now = d
		case op < 14 && len(ids) < 4: // snapshot
			id, d, err := s.CreateSnapshot(now)
			if err != nil {
				t.Fatalf("step %d snap: %v", step, err)
			}
			now = d
			frozen := make(map[int64]byte, len(active))
			for k, v := range active {
				frozen[k] = v
			}
			snaps[id] = frozen
			ids = append(ids, id)
		case op < 15 && len(ids) > 0: // delete
			i := rng.Intn(len(ids))
			id := ids[i]
			d, err := s.DeleteSnapshot(now, id)
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			now = d
			delete(snaps, id)
			ids = append(ids[:i], ids[i+1:]...)
		case op < 18: // read active
			lba := int64(rng.Intn(256))
			if _, err := s.Read(now, lba, buf); err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			if v, ok := active[lba]; ok {
				if !bytes.Equal(buf, pat(ss, lba, v)) {
					t.Fatalf("step %d: active LBA %d wrong", step, lba)
				}
			} else {
				for _, b := range buf {
					if b != 0 {
						t.Fatalf("step %d: unwritten LBA %d nonzero", step, lba)
					}
				}
			}
		default: // read a random snapshot
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			lba := int64(rng.Intn(256))
			if _, err := s.ReadSnapshot(now, id, lba, buf); err != nil {
				t.Fatalf("step %d snapread: %v", step, err)
			}
			if v, ok := snaps[id][lba]; ok {
				if !bytes.Equal(buf, pat(ss, lba, v)) {
					t.Fatalf("step %d: snapshot %d LBA %d wrong", step, id, lba)
				}
			} else {
				for _, b := range buf {
					if b != 0 {
						t.Fatalf("step %d: snapshot %d unwritten LBA %d nonzero", step, id, lba)
					}
				}
			}
		}
	}
	// Final: every surviving snapshot matches its frozen model exactly.
	for id, frozen := range snaps {
		for lba, v := range frozen {
			if _, err := s.ReadSnapshot(now, id, lba, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, pat(ss, lba, v)) {
				t.Fatalf("final: snapshot %d LBA %d wrong", id, lba)
			}
		}
	}
}
