package srv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"iosnap/internal/iosnap"
	"iosnap/internal/shard"
	"iosnap/internal/sim"
)

// ServerStats is the stats-op response: an aggregate view of the service
// plus the per-shard counters, JSON-encoded on the wire so the CLI can
// print it without sharing Go types beyond this package.
type ServerStats struct {
	Shards        int
	SectorSize    int
	Sectors       int64
	LiveSnapshots int
	MappedSectors int64
	PerShard      []iosnap.Stats
	// PerShardVirtual is each shard's virtual clock at the stats barrier:
	// the skew between entries is the load imbalance across shards.
	PerShardVirtual []sim.Time
	// Snapshot-view cache counters (see viewCache).
	ViewCacheHits          int64
	ViewCacheMisses        int64
	ViewCacheExpiries      int64
	ViewCacheInvalidations int64
	ViewCacheLive          int
}

// Server serves the block protocol over a listener, dispatching every
// request onto one shard.Service. Connections are handled concurrently,
// and a v2 connection additionally pipelines: each tagged request runs on
// its own goroutine (at most Window in flight per connection), responses
// are serialized through a per-connection writer goroutine in completion
// order. A graceful shutdown (Shutdown call or shutdown op) stops the
// accept loop, waits for in-flight requests to finish, drains the
// snapshot-view cache, and returns from Serve with the service still
// open, so the owner can checkpoint and persist it.
type Server struct {
	svc *shard.Service
	ln  net.Listener

	// Window bounds in-flight pipelined requests per v2 connection. Zero
	// means defaultWindow. Set before Serve.
	Window int
	// ViewTTL is how long an idle activated snapshot view stays cached
	// before the janitor deactivates it. Zero means defaultViewTTL; a
	// negative value disables caching entirely (every snap-read activates
	// and deactivates, the pre-v2 behavior). Set before Serve.
	ViewTTL time.Duration

	views *viewCache

	// preDispatch, when non-nil, runs in the handler goroutine before a v2
	// request dispatches. Test hook: it forces deterministic out-of-order
	// completion by stalling chosen ops.
	preDispatch func(op byte)

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	stopping bool
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// defaultViewTTL keeps an idle activated view alive this long by default.
const defaultViewTTL = 2 * time.Second

// NewServer wraps svc behind ln. The server does not own svc: Serve
// returns with the service open, and closing it (checkpointing the FTLs)
// is the caller's job.
func NewServer(svc *shard.Service, ln net.Listener) *Server {
	return &Server{svc: svc, ln: ln, conns: make(map[net.Conn]struct{}), stopped: make(chan struct{})}
}

// Addr returns the listener address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) window() int {
	if s.Window > 0 {
		return s.Window
	}
	return defaultWindow
}

// Serve accepts connections until Shutdown is called (directly or via the
// shutdown op), then waits for in-flight connections to drain. It returns
// nil on a clean shutdown. When Accept fails for any other reason the
// error is returned — but only after in-flight connections drained there
// too: the caller's next move is closing the service, and handler
// goroutines must not race it.
func (s *Server) Serve() error {
	ttl := s.ViewTTL
	if ttl == 0 {
		ttl = defaultViewTTL
	}
	if ttl > 0 {
		s.views = newViewCache(s.svc, ttl)
		jstop := make(chan struct{})
		defer close(jstop)
		go s.janitor(jstop)
	}
	for {
		c, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.stopping
			if !stopping {
				// Abnormal accept failure: unblock every connection's reader
				// so the drain below terminates.
				for c := range s.conns {
					c.Close()
				}
			}
			s.mu.Unlock()
			s.wg.Wait()
			if s.views != nil {
				s.views.drain()
			}
			if stopping {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.stopping {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
			c.Close()
		}()
	}
}

// janitor periodically expires idle cached views until Serve returns.
func (s *Server) janitor(stop <-chan struct{}) {
	period := s.views.ttl / 2
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.views.sweep()
		case <-stop:
			return
		}
	}
}

// Shutdown stops the accept loop. In-flight requests finish; idle
// connections are closed. Safe to call more than once and from request
// handlers. It does not wait — Serve's return is the completion signal.
func (s *Server) Shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return
	}
	s.stopping = true
	close(s.stopped)
	s.ln.Close()
	// Close connections so their readFrame unblocks. A request being
	// executed right now still writes its response: the write races the
	// close harmlessly (worst case the client sees a reset after its
	// response, exactly like a server crash after commit).
	for c := range s.conns {
		c.Close()
	}
}

// serveConn inspects the first frame: a valid hello upgrades the
// connection to the pipelined v2 loop, anything else is a v1 client and
// runs the serial loop (starting with that first request).
func (s *Server) serveConn(c net.Conn) {
	req, err := readFrame(c)
	if err != nil || len(req) == 0 {
		putBuf(req)
		return
	}
	if req[0] == opHello {
		if _, want, ok := parseHello(req[1:]); ok {
			putBuf(req)
			s.serveConn2(c, want)
			return
		}
	}
	s.serveConn1(c, req)
}

// serveConn1 runs the serial v1 request loop: one request, one response,
// in order. first is the already-read first frame (owned by this func).
// Any protocol error (as opposed to an op error, which is reported
// in-band) ends the connection.
func (s *Server) serveConn1(c net.Conn, first []byte) {
	req := first
	for {
		if req == nil {
			var err error
			req, err = readFrame(c)
			if err != nil {
				return // client went away or spoke garbage; nothing to answer
			}
			if len(req) == 0 {
				putBuf(req)
				return
			}
		}
		op, body := req[0], req[1:]
		if op == opShutdown {
			// Acknowledge before stopping: Shutdown closes every
			// connection, so the response must already be on the wire.
			putBuf(req)
			writeFrame(c, []byte{statusOK})
			s.Shutdown()
			return
		}
		result, err := s.dispatch(op, body)
		putBuf(req)
		req = nil
		if err != nil {
			if werr := writeFrame(c, []byte{statusErr}, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		werr := writeFrame(c, []byte{statusOK}, result)
		putBuf(result)
		if werr != nil {
			return
		}
	}
}

// wresp is one response bound for a v2 connection's writer goroutine.
type wresp struct {
	tag    uint32
	status byte
	body   []byte // recycled by the writer after the frame is out
	after  func() // runs after the frame (and everything before it) is flushed
}

// serveConn2 runs the pipelined v2 loop. The reader accepts tagged frames
// and hands each to its own handler goroutine, admission-limited by a
// window semaphore (a client past the window simply stalls in TCP — flow
// control, not an error). Handlers dispatch concurrently, so requests to
// different shards overlap; a single writer goroutine serializes the
// responses in completion order, flushing when the queue runs dry so
// back-to-back completions coalesce into one syscall. No ordering is
// promised between in-flight requests — a client that needs write-then-
// read ordering must wait for the write's response before issuing the
// read.
func (s *Server) serveConn2(c net.Conn, wantWindow int) {
	window := s.window()
	if wantWindow > 0 && wantWindow < window {
		window = wantWindow
	}
	if err := writeFrame(c, []byte{statusOK}, putU32(protoVersion2), putU32(uint32(window))); err != nil {
		return
	}

	out := make(chan wresp, window)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(c, 64<<10)
		broken := false
		for r := range out {
			if !broken {
				if err := writeFrame(bw, putU32(r.tag), []byte{r.status}, r.body); err != nil {
					broken = true
				}
				if len(out) == 0 && !broken {
					// Flush only when the queue is truly dry. Handlers whose
					// responses are an instant away are sitting on the run
					// queue; yielding once lets them enqueue, so one syscall
					// carries a batch instead of every completion paying its
					// own. (On the loopback bench this halves write syscalls.)
					runtime.Gosched()
					if len(out) == 0 {
						if err := bw.Flush(); err != nil {
							broken = true
						}
					}
				}
			}
			putBuf(r.body)
			if r.after != nil {
				bw.Flush()
				r.after()
			}
		}
		bw.Flush()
	}()

	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	// Buffer the read side too: a deep pipeline delivers many request
	// frames per TCP segment, and one syscall should consume them all.
	br := bufio.NewReaderSize(c, 64<<10)
	for {
		req, err := readFrame(br)
		if err != nil {
			break
		}
		if len(req) < 5 {
			// A tagged frame needs at least tag+op; anything shorter is a
			// protocol violation and ends the connection (there is no tag
			// to answer on).
			putBuf(req)
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(req []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			tag, op, body := be32(req), req[4], req[5:]
			if gate := s.preDispatch; gate != nil {
				gate(op)
			}
			if op == opShutdown {
				putBuf(req)
				out <- wresp{tag: tag, status: statusOK, after: s.Shutdown}
				return
			}
			result, err := s.dispatch(op, body)
			putBuf(req)
			if err != nil {
				out <- wresp{tag: tag, status: statusErr, body: []byte(err.Error())}
				return
			}
			out <- wresp{tag: tag, status: statusOK, body: result}
		}(req)
	}
	wg.Wait()
	close(out)
	<-writerDone
}

// dispatch executes one op against the service. The returned buffer may be
// pooled; the caller recycles it (putBuf) once the response frame is out.
func (s *Server) dispatch(op byte, body []byte) ([]byte, error) {
	switch op {
	case opPing:
		return nil, nil

	case opRead:
		if len(body) != 12 {
			return nil, fmt.Errorf("srv: read body %d bytes, want 12", len(body))
		}
		lba := int64(be64(body))
		n := int64(be32(body[8:]))
		size := n * int64(s.svc.SectorSize())
		if n <= 0 || size > maxBody {
			return nil, fmt.Errorf("srv: read of %d sectors out of range", n)
		}
		buf := getBuf(int(size))
		if err := s.svc.Read(lba, buf); err != nil {
			putBuf(buf)
			return nil, err
		}
		return buf, nil

	case opWrite:
		if len(body) < 8 {
			return nil, fmt.Errorf("srv: write body %d bytes, want >= 8", len(body))
		}
		data := body[8:]
		if ss := s.svc.SectorSize(); len(data) == 0 || len(data)%ss != 0 {
			return nil, fmt.Errorf("srv: write payload of %d bytes is not a positive multiple of the %d-byte sector size", len(data), ss)
		}
		return nil, s.svc.Write(int64(be64(body)), data)

	case opTrim:
		if len(body) != 16 {
			return nil, fmt.Errorf("srv: trim body %d bytes, want 16", len(body))
		}
		return nil, s.svc.Trim(int64(be64(body)), int64(be64(body[8:])))

	case opSnapCreate:
		id, err := s.svc.CreateSnapshot()
		if err != nil {
			return nil, err
		}
		return putU64(uint64(id)), nil

	case opSnapDelete:
		if len(body) != 8 {
			return nil, fmt.Errorf("srv: snap-delete body %d bytes, want 8", len(body))
		}
		id := iosnap.SnapshotID(be64(body))
		// Drop the cached activation first: the delete must not observe it,
		// and the snapshot's blocks must actually become reclaimable.
		if s.views != nil {
			s.views.invalidate(id)
		}
		return nil, s.svc.DeleteSnapshot(id)

	case opSnapRead:
		if len(body) != 20 {
			return nil, fmt.Errorf("srv: snap-read body %d bytes, want 20", len(body))
		}
		id := iosnap.SnapshotID(be64(body))
		lba := int64(be64(body[8:]))
		n := int64(be32(body[16:]))
		size := n * int64(s.svc.SectorSize())
		if n <= 0 || size > maxBody {
			return nil, fmt.Errorf("srv: snap-read of %d sectors out of range", n)
		}
		view, release, err := s.acquireView(id)
		if err != nil {
			return nil, err
		}
		buf := getBuf(int(size))
		rerr := view.Read(lba, buf)
		derr := release()
		if rerr == nil {
			rerr = derr
		}
		if rerr != nil {
			putBuf(buf)
			return nil, rerr
		}
		return buf, nil

	case opStats:
		sum := s.svc.Summary()
		st := ServerStats{
			Shards:          sum.Shards,
			SectorSize:      sum.SectorSize,
			Sectors:         sum.Sectors,
			LiveSnapshots:   sum.LiveSnapshots,
			MappedSectors:   sum.MappedSectors,
			PerShard:        sum.PerShard,
			PerShardVirtual: sum.Virtual,
		}
		if s.views != nil {
			st.ViewCacheHits, st.ViewCacheMisses, st.ViewCacheExpiries,
				st.ViewCacheInvalidations, st.ViewCacheLive = s.views.counters()
		}
		return json.Marshal(st)

	default:
		return nil, fmt.Errorf("srv: unknown op %d", op)
	}
}

// acquireView resolves a snapshot view either through the cache or, when
// caching is disabled, by a one-shot activate whose release deactivates.
func (s *Server) acquireView(id iosnap.SnapshotID) (*shard.ServiceView, func() error, error) {
	if s.views != nil {
		view, release, err := s.views.acquire(id)
		if err != nil {
			return nil, nil, err
		}
		return view, func() error { release(); return nil }, nil
	}
	view, err := s.svc.ActivateSync(id, false)
	if err != nil {
		return nil, nil, err
	}
	return view, view.Deactivate, nil
}
