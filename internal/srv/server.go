package srv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"iosnap/internal/iosnap"
	"iosnap/internal/shard"
)

// ServerStats is the stats-op response: an aggregate view of the service
// plus the per-shard counters, JSON-encoded on the wire so the CLI can
// print it without sharing Go types beyond this package.
type ServerStats struct {
	Shards        int
	SectorSize    int
	Sectors       int64
	LiveSnapshots int
	MappedSectors int64
	PerShard      []iosnap.Stats
}

// Server serves the block protocol over a listener, dispatching every
// request onto one shard.Service. Connections are handled concurrently —
// the service's own barrier model provides the consistency — and a
// graceful shutdown (Shutdown call or shutdown op) stops the accept loop,
// waits for in-flight requests to finish, and returns from Serve with the
// service still open, so the owner can checkpoint and persist it.
type Server struct {
	svc *shard.Service
	ln  net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	stopping bool
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// NewServer wraps svc behind ln. The server does not own svc: Serve
// returns with the service open, and closing it (checkpointing the FTLs)
// is the caller's job.
func NewServer(svc *shard.Service, ln net.Listener) *Server {
	return &Server{svc: svc, ln: ln, conns: make(map[net.Conn]struct{}), stopped: make(chan struct{})}
}

// Addr returns the listener address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until Shutdown is called (directly or via the
// shutdown op), then waits for in-flight connections to drain. It returns
// nil on a clean shutdown.
func (s *Server) Serve() error {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.stopping
			s.mu.Unlock()
			if stopping {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.stopping {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
			c.Close()
		}()
	}
}

// Shutdown stops the accept loop. In-flight requests finish; idle
// connections are closed. Safe to call more than once and from request
// handlers. It does not wait — Serve's return is the completion signal.
func (s *Server) Shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping {
		return
	}
	s.stopping = true
	close(s.stopped)
	s.ln.Close()
	// Close connections so their readFrame unblocks. A request being
	// executed right now still writes its response: the write races the
	// close harmlessly (worst case the client sees a reset after its
	// response, exactly like a server crash after commit).
	for c := range s.conns {
		c.Close()
	}
}

// serveConn runs the request loop for one connection. Any protocol error
// (as opposed to an op error, which is reported in-band) ends the
// connection.
func (s *Server) serveConn(c net.Conn) {
	for {
		req, err := readFrame(c)
		if err != nil {
			return // client went away or spoke garbage; nothing to answer
		}
		if len(req) == 0 {
			return
		}
		op, body := req[0], req[1:]
		if op == opShutdown {
			// Acknowledge before stopping: Shutdown closes every
			// connection, so the response must already be on the wire.
			writeFrame(c, []byte{statusOK})
			s.Shutdown()
			return
		}
		result, err := s.dispatch(op, body)
		if err != nil {
			if werr := writeFrame(c, []byte{statusErr}, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if err := writeFrame(c, []byte{statusOK}, result); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(op byte, body []byte) ([]byte, error) {
	switch op {
	case opPing:
		return nil, nil

	case opRead:
		if len(body) != 12 {
			return nil, fmt.Errorf("srv: read body %d bytes, want 12", len(body))
		}
		lba := int64(be64(body))
		n := int64(be32(body[8:]))
		size := n * int64(s.svc.SectorSize())
		if n <= 0 || size > maxFrame-1 {
			return nil, fmt.Errorf("srv: read of %d sectors out of range", n)
		}
		buf := make([]byte, size)
		if err := s.svc.Read(lba, buf); err != nil {
			return nil, err
		}
		return buf, nil

	case opWrite:
		if len(body) < 8 {
			return nil, fmt.Errorf("srv: write body %d bytes, want >= 8", len(body))
		}
		return nil, s.svc.Write(int64(be64(body)), body[8:])

	case opTrim:
		if len(body) != 16 {
			return nil, fmt.Errorf("srv: trim body %d bytes, want 16", len(body))
		}
		return nil, s.svc.Trim(int64(be64(body)), int64(be64(body[8:])))

	case opSnapCreate:
		id, err := s.svc.CreateSnapshot()
		if err != nil {
			return nil, err
		}
		return putU64(uint64(id)), nil

	case opSnapDelete:
		if len(body) != 8 {
			return nil, fmt.Errorf("srv: snap-delete body %d bytes, want 8", len(body))
		}
		return nil, s.svc.DeleteSnapshot(iosnap.SnapshotID(be64(body)))

	case opSnapRead:
		if len(body) != 20 {
			return nil, fmt.Errorf("srv: snap-read body %d bytes, want 20", len(body))
		}
		id := iosnap.SnapshotID(be64(body))
		lba := int64(be64(body[8:]))
		n := int64(be32(body[16:]))
		size := n * int64(s.svc.SectorSize())
		if n <= 0 || size > maxFrame-1 {
			return nil, fmt.Errorf("srv: snap-read of %d sectors out of range", n)
		}
		view, err := s.svc.ActivateSync(id, false)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, size)
		rerr := view.Read(lba, buf)
		derr := view.Deactivate()
		if err := errors.Join(rerr, derr); err != nil {
			return nil, err
		}
		return buf, nil

	case opStats:
		per, _ := s.svc.ShardStats()
		st := ServerStats{
			Shards:        s.svc.Shards(),
			SectorSize:    s.svc.SectorSize(),
			Sectors:       s.svc.Sectors(),
			LiveSnapshots: s.svc.LiveSnapshots(),
			MappedSectors: s.svc.MappedSectors(),
			PerShard:      per,
		}
		return json.Marshal(st)

	default:
		return nil, fmt.Errorf("srv: unknown op %d", op)
	}
}
