package srv

import (
	"net"
	"testing"

	"iosnap/internal/shard"
)

// The wire benchmarks measure real wall-clock throughput over loopback
// TCP: an in-process server, load-generator clients, 1-sector ops on
// identical geometry. The serial-v1 and pipelined legs differ ONLY in the
// protocol — the ≥3x ratio bench.sh gates on is pure wire-path win
// (request pipelining amortizes per-op syscalls and round-trips; the
// server overlaps dispatch across shards).

func benchService(b *testing.B) *shard.Service {
	b.Helper()
	svc, err := shard.NewService(testShardConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	return svc
}

func benchServer(b *testing.B, svc *shard.Service) (*Server, string, chan error) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s := NewServer(svc, ln)
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()
	return s, ln.Addr().String(), served
}

// runWireBench executes one load config sized to b.N and reports ops/s.
func runWireBench(b *testing.B, cfg LoadConfig) LoadReport {
	b.Helper()
	svc := benchService(b)
	defer svc.Close()
	s, addr, served := benchServer(b, svc)
	defer func() { s.Shutdown(); <-served }()
	cfg.Addr = addr
	cfg.Ops = (b.N + cfg.Conns - 1) / cfg.Conns
	if cfg.Ops < 1 {
		cfg.Ops = 1
	}
	b.ResetTimer()
	rep, err := RunLoad(cfg)
	b.StopTimer()
	if err != nil {
		b.Fatalf("load: %v (report %+v)", err, rep)
	}
	b.ReportMetric(rep.OpsPerSec(), "ops/s")
	b.ReportMetric(0, "ns/op") // wall-clock ops/s is the meaningful number
	return rep
}

// BenchmarkWireSerialV1 is the baseline: the PR 9 protocol, one request
// per round-trip per connection.
func BenchmarkWireSerialV1(b *testing.B) {
	runWireBench(b, LoadConfig{Conns: 2, Depth: 1, V1: true, Seed: 7})
}

// BenchmarkWirePipelined16 is the same geometry and op mix at pipeline
// depth 16 over protocol v2.
func BenchmarkWirePipelined16(b *testing.B) {
	runWireBench(b, LoadConfig{Conns: 2, Depth: 16, Seed: 7})
}

// BenchmarkWireSnapRead16 hammers snap-reads of one hot snapshot at depth
// 16: with the view cache this costs what live reads cost; the hitrate
// metric proves the cache (not repeated activation) served the loop.
func BenchmarkWireSnapRead16(b *testing.B) {
	svc := benchService(b)
	defer svc.Close()
	s, addr, served := benchServer(b, svc)
	defer func() { s.Shutdown(); <-served }()

	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(0, pattern('b', 8, svc.SectorSize())); err != nil {
		b.Fatal(err)
	}
	id, err := c.SnapCreate()
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	ring := make([]*Call, 0, 16)
	for i := 0; i < b.N; i++ {
		if len(ring) == 16 {
			if _, err := ring[0].Wait(); err != nil {
				b.Fatal(err)
			}
			ring[0].release()
			ring = ring[1:]
		}
		ring = append(ring, c.GoSnapRead(id, int64(i%8), 1))
	}
	for _, cl := range ring {
		if _, err := cl.Wait(); err != nil {
			b.Fatal(err)
		}
		cl.release()
	}
	b.StopTimer()

	st, err := c.Stats()
	if err != nil {
		b.Fatal(err)
	}
	total := st.ViewCacheHits + st.ViewCacheMisses
	if total > 0 {
		b.ReportMetric(float64(st.ViewCacheHits)/float64(total), "hitrate")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	b.ReportMetric(0, "ns/op")
}
