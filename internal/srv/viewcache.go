package srv

import (
	"sync"
	"time"

	"iosnap/internal/iosnap"
	"iosnap/internal/shard"
)

// viewCache keeps activated snapshot views alive across snap-read
// requests. Before it existed every snap-read paid a full activate (a
// durable note plus a rate-limited log scan) and deactivate (another
// note) — per request. The cache activates a snapshot once on first read,
// hands out refcounted references to the ServiceView, and deactivates it
// only when the snapshot is deleted or the view has sat idle past the
// TTL. Snap-reads of a hot snapshot therefore cost exactly what live
// reads cost: the shard fan-out and nothing else.
//
// Lifecycle rules:
//
//   - acquire either joins an existing entry (ref++), waits on an
//     activation already in flight (single-flight: concurrent first reads
//     of the same snapshot trigger one activation), or starts one.
//   - release drops the ref and stamps the idle clock. A doomed entry
//     (invalidated or expired while readers were inside) deactivates on
//     the last release.
//   - invalidate removes the entry immediately — new acquires re-resolve
//     against the service, so a deleted snapshot fails with the service's
//     own error — and deactivates now (or on last release). The server
//     calls it before every snap-delete so the delete never observes the
//     cache's activation, and the snapshot's blocks become reclaimable.
//   - sweep deactivates entries idle past the TTL; drain (server
//     shutdown) deactivates everything regardless of age.
//
// Deactivation always happens outside the cache mutex: it fans out to the
// shard workers and must not block acquire/release on other snapshots.
type viewCache struct {
	svc *shard.Service
	ttl time.Duration
	now func() time.Time // hookable for expiry tests

	mu      sync.Mutex
	entries map[iosnap.SnapshotID]*cachedView

	// Counters (guarded by mu) surfaced through ServerStats.
	hits          int64
	misses        int64
	expiries      int64
	invalidations int64
}

type cachedView struct {
	view     *shard.ServiceView
	err      error         // terminal activation error (entry already removed)
	ready    chan struct{} // closed when view/err is decided
	refs     int
	doomed   bool // deactivate on last release
	lastUsed time.Time
}

func newViewCache(svc *shard.Service, ttl time.Duration) *viewCache {
	return &viewCache{
		svc:     svc,
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[iosnap.SnapshotID]*cachedView),
	}
}

// acquire returns an activated view of snapshot id plus a release func the
// caller must invoke once it is done reading. The entry stays cached (and
// the snapshot stays activated) after release.
func (vc *viewCache) acquire(id iosnap.SnapshotID) (*shard.ServiceView, func(), error) {
	vc.mu.Lock()
	if e, ok := vc.entries[id]; ok && !e.doomed {
		e.refs++
		vc.hits++
		vc.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// Activation failed; the starter already removed the entry.
			return nil, nil, e.err
		}
		return e.view, func() { vc.release(id, e) }, nil
	}
	e := &cachedView{ready: make(chan struct{}), refs: 1, lastUsed: vc.now()}
	vc.entries[id] = e
	vc.misses++
	vc.mu.Unlock()

	view, err := vc.svc.ActivateSync(id, false)
	vc.mu.Lock()
	e.view, e.err = view, err
	if err != nil && vc.entries[id] == e {
		delete(vc.entries, id)
	}
	close(e.ready)
	vc.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	return view, func() { vc.release(id, e) }, nil
}

// release drops one reference. The last release of a doomed entry
// deactivates the view.
func (vc *viewCache) release(id iosnap.SnapshotID, e *cachedView) {
	vc.mu.Lock()
	e.refs--
	e.lastUsed = vc.now()
	deactivate := e.refs == 0 && e.doomed && e.view != nil
	vc.mu.Unlock()
	if deactivate {
		e.view.Deactivate()
	}
}

// invalidate removes id from the cache (new acquires re-resolve against
// the service) and deactivates its view — immediately when idle, on the
// last release when readers are still inside. In-flight readers finish
// safely: the activation epoch keeps the snapshot's blocks live until the
// deferred deactivate.
func (vc *viewCache) invalidate(id iosnap.SnapshotID) {
	vc.mu.Lock()
	e, ok := vc.entries[id]
	if !ok {
		vc.mu.Unlock()
		return
	}
	delete(vc.entries, id)
	e.doomed = true
	vc.invalidations++
	ready := e.ready
	vc.mu.Unlock()

	// An activation may still be in flight; its view (or error) must be
	// decided before we can deactivate it.
	<-ready
	vc.mu.Lock()
	deactivate := e.refs == 0 && e.view != nil
	vc.mu.Unlock()
	if deactivate {
		e.view.Deactivate()
	}
}

// sweep deactivates idle entries older than the TTL. It never touches an
// entry with readers inside or an activation still in flight.
func (vc *viewCache) sweep() {
	cutoff := vc.now().Add(-vc.ttl)
	var victims []*cachedView
	vc.mu.Lock()
	for id, e := range vc.entries {
		select {
		case <-e.ready:
		default:
			continue // activation in flight
		}
		if e.refs == 0 && e.view != nil && e.lastUsed.Before(cutoff) {
			delete(vc.entries, id)
			e.doomed = true
			vc.expiries++
			victims = append(victims, e)
		}
	}
	vc.mu.Unlock()
	for _, e := range victims {
		e.view.Deactivate()
	}
}

// drain deactivates every cached view. Called after the last connection
// finished (so refs are zero) and before the server hands the still-open
// service back to its owner.
func (vc *viewCache) drain() {
	var victims []*cachedView
	vc.mu.Lock()
	for id, e := range vc.entries {
		delete(vc.entries, id)
		e.doomed = true
		select {
		case <-e.ready:
			if e.refs == 0 && e.view != nil {
				victims = append(victims, e)
			}
		default:
			// Activation still in flight; its acquirer's release deactivates.
		}
	}
	vc.mu.Unlock()
	for _, e := range victims {
		e.view.Deactivate()
	}
}

// counters snapshots the stats counters plus the live entry count.
func (vc *viewCache) counters() (hits, misses, expiries, invalidations int64, live int) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.hits, vc.misses, vc.expiries, vc.invalidations, len(vc.entries)
}
