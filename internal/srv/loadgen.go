package srv

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// LoadConfig describes one wall-clock load run against a live server:
// Conns connections, each keeping up to Depth requests in flight, issuing
// Ops requests drawn from a read/write/snapshot mix. This is real TCP —
// the numbers it produces are wall-clock throughput of the whole stack
// (client pipeline, wire, server dispatch, shard fan-out), which is what
// the ROADMAP's "many client processes hammering the daemon" item asks
// for.
type LoadConfig struct {
	Addr  string
	Conns int // concurrent connections (default 1)
	Depth int // in-flight requests per connection (default 1 = serial)
	Ops   int // requests per connection (default 1000)

	// WritePct and SnapPct are percentages of the op mix; the rest are
	// reads. Snapshot ops cycle create → snap-read×4 → delete-oldest so a
	// long run neither leaks snapshots nor thrashes creates.
	WritePct int
	SnapPct  int

	Sectors int   // sectors per read/write (default 1)
	Seed    int64 // mix RNG seed (default 1)
	V1      bool  // force the serial v1 protocol (baseline mode)
}

// LoadReport is what a load run measured.
type LoadReport struct {
	Conns int
	Depth int
	Proto int // negotiated protocol version

	Ops    int64 // requests completed successfully
	Bytes  int64 // payload bytes moved (read + written)
	Errors int64 // in-band op errors (any -> run fails)

	SnapCreates int64
	SnapReads   int64
	SnapDeletes int64

	Wall time.Duration
}

// OpsPerSec is the headline number: successful requests per wall-clock
// second across all connections.
func (r LoadReport) OpsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Wall.Seconds()
}

// RunLoad executes the configured load and reports wall-clock throughput.
// Any op error fails the run: a load generator that shrugs off errors
// measures the speed of error strings.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 1000
	}
	if cfg.Sectors <= 0 {
		cfg.Sectors = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.WritePct < 0 || cfg.SnapPct < 0 || cfg.WritePct+cfg.SnapPct > 100 {
		return LoadReport{}, fmt.Errorf("srv: bad op mix: write %d%% + snap %d%%", cfg.WritePct, cfg.SnapPct)
	}

	// Probe the geometry once so each connection can stay inside its own
	// disjoint LBA region (no cross-connection write races to reason about,
	// and reads always land on in-range sectors).
	probe, err := Dial(cfg.Addr)
	if err != nil {
		return LoadReport{}, err
	}
	st, err := probe.Stats()
	probe.Close()
	if err != nil {
		return LoadReport{}, fmt.Errorf("srv: loadgen probe: %w", err)
	}
	region := st.Sectors / int64(cfg.Conns)
	if region < int64(cfg.Sectors) {
		return LoadReport{}, fmt.Errorf("srv: %d sectors cannot give %d connections a %d-sector region",
			st.Sectors, cfg.Conns, cfg.Sectors)
	}

	rep := LoadReport{Conns: cfg.Conns, Depth: cfg.Depth}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			r, err := runLoadConn(cfg, ci, region, st.SectorSize)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("conn %d: %w", ci, err)
			}
			rep.Ops += r.Ops
			rep.Bytes += r.Bytes
			rep.SnapCreates += r.SnapCreates
			rep.SnapReads += r.SnapReads
			rep.SnapDeletes += r.SnapDeletes
			if r.Proto > rep.Proto {
				rep.Proto = r.Proto
			}
		}(ci)
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	if firstErr != nil {
		rep.Errors++
		return rep, firstErr
	}
	return rep, nil
}

// runLoadConn drives one connection's share of the load: a ring of up to
// Depth in-flight calls; completions are harvested oldest-first, which is
// exactly the client-side pipelining discipline the protocol expects.
func runLoadConn(cfg LoadConfig, ci int, region int64, sectorSize int) (LoadReport, error) {
	c, err := DialOpts(cfg.Addr, DialOptions{ForceV1: cfg.V1, Window: cfg.Depth})
	if err != nil {
		return LoadReport{}, err
	}
	defer c.Close()
	rep := LoadReport{Proto: c.Proto()}

	rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
	base := region * int64(ci)
	span := region - int64(cfg.Sectors) + 1
	wbuf := make([]byte, cfg.Sectors*sectorSize)
	for i := range wbuf {
		wbuf[i] = byte(ci + i)
	}

	// Snapshot lifecycle state, private to this connection.
	var snaps []uint64
	snapPhase := 0 // 0 create, 1..4 snap-read, 5 delete-oldest (if >3 live)

	type slot struct {
		call  *Call
		bytes int64
		kind  byte // 'r', 'w', 'c' (create), 's' (snap-read), 'd' (delete)
	}
	ring := make([]slot, 0, cfg.Depth)
	harvest := func(sl slot) error {
		b, err := sl.call.Wait()
		if err != nil {
			return err
		}
		rep.Ops++
		rep.Bytes += sl.bytes
		switch sl.kind {
		case 'r', 's':
			rep.Bytes += int64(len(b))
		case 'c':
			if len(b) != 8 {
				sl.call.release()
				return fmt.Errorf("snap-create response %d bytes", len(b))
			}
			snaps = append(snaps, be64(b))
		}
		sl.call.release()
		return nil
	}

	for issued := 0; issued < cfg.Ops; issued++ {
		if len(ring) == cfg.Depth {
			if err := harvest(ring[0]); err != nil {
				return rep, err
			}
			ring = ring[1:]
		}
		lba := base + rng.Int63n(span)
		p := rng.Intn(100)
		var sl slot
		switch {
		case p < cfg.SnapPct:
			switch {
			case snapPhase == 0 || len(snaps) == 0:
				// Snapshot create barriers every shard: it must not overlap
				// this connection's own in-flight ops (other connections'
				// ops simply serialize against it, which is the contention
				// the mix is meant to measure).
				for _, s := range ring {
					if err := harvest(s); err != nil {
						return rep, err
					}
				}
				ring = ring[:0]
				sl = slot{call: c.GoSnapCreate(), kind: 'c'}
				snapPhase = 1
			case snapPhase >= 5 && len(snaps) > 3:
				id := snaps[0]
				snaps = snaps[1:]
				sl = slot{call: c.GoSnapDelete(id), kind: 'd'}
				rep.SnapDeletes++
				snapPhase = 0
			default:
				id := snaps[len(snaps)-1]
				sl = slot{call: c.GoSnapRead(id, lba, cfg.Sectors), kind: 's'}
				rep.SnapReads++
				if snapPhase < 5 {
					snapPhase++
				} else {
					snapPhase = 0
				}
			}
			if sl.kind == 'c' {
				rep.SnapCreates++
			}
		case p < cfg.SnapPct+cfg.WritePct:
			sl = slot{call: c.GoWrite(lba, wbuf), bytes: int64(len(wbuf)), kind: 'w'}
		default:
			sl = slot{call: c.GoRead(lba, cfg.Sectors), kind: 'r'}
		}
		ring = append(ring, sl)
	}
	for _, s := range ring {
		if err := harvest(s); err != nil {
			return rep, err
		}
	}
	// Leave no snapshots behind: a bench loop that leaks snapshots slows
	// down run over run and measures its own garbage.
	for _, id := range snaps {
		if err := c.SnapDelete(id); err != nil {
			return rep, err
		}
		rep.SnapDeletes++
		rep.Ops++
	}
	return rep, nil
}
