package srv

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"iosnap/internal/shard"
)

// startServerWith is startServer with a chance to configure the Server
// (window, TTL, preDispatch hook) before Serve starts — the hook field
// must not be written once handler goroutines may be reading it.
func startServerWith(t *testing.T, svc *shard.Service, setup func(*Server)) (*Server, string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(svc, ln)
	if setup != nil {
		setup(s)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()
	return s, ln.Addr().String(), served
}

// TestWireNegotiation: a default dial lands on protocol v2 with a granted
// window; ForceV1 stays serial; both speak to the same server.
func TestWireNegotiation(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Proto() != 2 || c2.Window() <= 0 {
		t.Fatalf("negotiated proto %d window %d, want v2 with a window", c2.Proto(), c2.Window())
	}
	c1, err := DialOpts(addr, DialOptions{ForceV1: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if c1.Proto() != 1 {
		t.Fatalf("ForceV1 negotiated proto %d", c1.Proto())
	}
	ss := svc.SectorSize()
	if err := c1.Write(0, pattern('1', 4, ss)); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Read(0, 4)
	if err != nil || !bytes.Equal(got, pattern('1', 4, ss)) {
		t.Fatalf("v2 read of v1 write: %v", err)
	}
}

// TestWireOutOfOrderCompletion pins the point of tagging: a slow request
// does not block a fast one behind it. The preDispatch gate stalls the
// read deterministically; the ping issued after it completes first.
func TestWireOutOfOrderCompletion(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	release := make(chan struct{})
	s, addr, served := startServerWith(t, svc, func(s *Server) {
		s.preDispatch = func(op byte) {
			if op == opRead {
				<-release
			}
		}
	})
	defer func() { s.Shutdown(); <-served }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rd := c.GoRead(0, 1) // stalls server-side until release
	pg := c.GoPing()
	if _, err := pg.Wait(); err != nil {
		t.Fatalf("ping behind stalled read: %v", err)
	}
	select {
	case <-rd.Done():
		t.Fatal("stalled read completed before its gate released")
	default:
	}
	close(release)
	if _, err := rd.Wait(); err != nil {
		t.Fatalf("read after release: %v", err)
	}
}

// TestWireMidPipelineError: an in-band failure on one tag answers that tag
// alone — requests pipelined before and after it complete normally.
func TestWireMidPipelineError(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ss := svc.SectorSize()
	if err := c.Write(0, pattern('e', 2, ss)); err != nil {
		t.Fatal(err)
	}

	good1 := c.GoRead(0, 2)
	bad := c.GoRead(svc.Sectors(), 1) // out of range -> in-band error
	good2 := c.GoPing()
	good3 := c.GoWrite(2, pattern('f', 1, ss))

	if b, err := good1.Wait(); err != nil || !bytes.Equal(b, pattern('e', 2, ss)) {
		t.Fatalf("read before failing tag: %v", err)
	}
	if _, err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("failing tag error = %v", err)
	}
	if _, err := good2.Wait(); err != nil {
		t.Fatalf("ping after failing tag: %v", err)
	}
	if _, err := good3.Wait(); err != nil {
		t.Fatalf("write after failing tag: %v", err)
	}
}

// TestWireMalformedTaggedFrames: a tagged frame too short to carry tag+op,
// an oversized header, and a frame truncated mid-payload each end only the
// offending connection; the server keeps serving others.
func TestWireMalformedTaggedFrames(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	// Each raw connection completes the v2 hello first, then misbehaves.
	hello := func(t *testing.T) net.Conn {
		t.Helper()
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		parts := append([][]byte{{opHello}}, helloRequest(4)...)
		if err := writeFrame(raw, parts...); err != nil {
			t.Fatal(err)
		}
		ack, err := readFrame(raw)
		if err != nil || len(ack) == 0 || ack[0] != statusOK {
			t.Fatalf("hello ack: %v", err)
		}
		putBuf(ack)
		return raw
	}

	t.Run("short", func(t *testing.T) {
		raw := hello(t)
		defer raw.Close()
		// 2-byte payload: no room for tag+op. No tag to answer on, so the
		// server must drop the connection silently.
		writeFrame(raw, []byte{1, 2})
		if n, _ := raw.Read(make([]byte, 16)); n != 0 {
			t.Fatalf("server answered a short tagged frame with %d bytes", n)
		}
	})
	t.Run("oversized", func(t *testing.T) {
		raw := hello(t)
		defer raw.Close()
		raw.Write([]byte{0xff, 0xff, 0xff, 0xff}) // header far past maxFrame
		if n, _ := raw.Read(make([]byte, 16)); n != 0 {
			t.Fatalf("server answered an oversized frame with %d bytes", n)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		raw := hello(t)
		// Header promises 100 bytes; send 3 and hang up.
		raw.Write([]byte{0, 0, 0, 100, 1, 2, 3})
		raw.Close()
	})

	// The server survived all three.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after malformed connections: %v", err)
	}
}

// TestWireV1FallbackAgainstV1Server: a v2 client dialing a server that
// answers the hello with an in-band error (exactly what the PR 9 server
// did) downgrades to serial v1 on the same connection.
func TestWireV1FallbackAgainstV1Server(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Minimal v1-only server: ping works, every other op (the hello
	// included) gets "unknown op".
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				for {
					req, err := readFrame(c)
					if err != nil || len(req) == 0 {
						return
					}
					op := req[0]
					putBuf(req)
					if op == opPing {
						writeFrame(c, []byte{statusOK})
					} else {
						writeFrame(c, []byte{statusErr}, []byte(fmt.Sprintf("srv: unknown op %d", op)))
					}
				}
			}()
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial v1-only server: %v", err)
	}
	defer c.Close()
	if c.Proto() != 1 {
		t.Fatalf("negotiated proto %d against a v1 server", c.Proto())
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping over fallback connection: %v", err)
	}
	// The pipeline API degrades to serial calls rather than failing.
	if _, err := c.GoPing().Wait(); err != nil {
		t.Fatalf("pipelined ping over v1: %v", err)
	}
}

// TestServeDrainsOnAcceptError: when Accept fails for a non-shutdown
// reason, Serve must not return while handler goroutines still run
// against the service — the caller's next move is closing it.
func TestServeDrainsOnAcceptError(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s, addr, served := startServerWith(t, svc, func(s *Server) {
		s.preDispatch = func(op byte) {
			if op == opRead {
				once.Do(func() { close(entered) })
				<-release
			}
		}
	})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rd := c.GoRead(0, 1)
	c.Flush()
	<-entered // the handler is now in flight

	s.ln.Close() // abnormal accept failure, not a shutdown
	select {
	case err := <-served:
		t.Fatalf("Serve returned %v with a handler still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-served; err == nil {
		t.Fatal("Serve returned nil for an abnormal accept failure")
	}
	<-rd.Done() // the drained connection failed the call; no hang
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteValidation: empty and non-sector-multiple write payloads are
// rejected in-band before reaching the shard layer, and the connection
// survives.
func TestWriteValidation(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Empty payload: a raw 8-byte body (lba only, zero data).
	if _, err := c.do(opWrite, putU64(0)).Wait(); err == nil || !strings.Contains(err.Error(), "sector size") {
		t.Fatalf("empty write payload: %v", err)
	}
	if err := c.Write(0, make([]byte, svc.SectorSize()+1)); err == nil || !strings.Contains(err.Error(), "sector size") {
		t.Fatalf("ragged write payload: %v", err)
	}
	if err := c.Write(0, pattern('v', 1, svc.SectorSize())); err != nil {
		t.Fatalf("valid write after rejections: %v", err)
	}
}

// TestViewCacheServesRepeatedSnapReads: the snap-read hot loop activates
// once, hits the cache thereafter, and invalidates on delete.
func TestViewCacheServesRepeatedSnapReads(t *testing.T) {
	const shards = 2
	svc, err := shard.NewService(testShardConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ss := svc.SectorSize()
	want := pattern('h', 4, ss)
	if err := c.Write(0, want); err != nil {
		t.Fatal(err)
	}
	id, err := c.SnapCreate()
	if err != nil {
		t.Fatal(err)
	}

	const reads = 50
	for i := 0; i < reads; i++ {
		got, err := c.SnapRead(id, 0, 4)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("snap-read %d: %v", i, err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ViewCacheMisses != 1 || st.ViewCacheHits != reads-1 {
		t.Fatalf("cache hits=%d misses=%d, want %d/1", st.ViewCacheHits, st.ViewCacheMisses, reads-1)
	}
	if st.ViewCacheLive != 1 {
		t.Fatalf("live cached views = %d, want 1", st.ViewCacheLive)
	}
	// The real point: one activation per shard total, not one per read.
	var acts int64
	for _, p := range st.PerShard {
		acts += p.SnapshotActivations
	}
	if acts != shards {
		t.Fatalf("SnapshotActivations = %d across %d reads, want %d (cache defeated)", acts, reads, shards)
	}

	// Delete invalidates: the entry is gone and later reads fail cleanly.
	if err := c.SnapDelete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SnapRead(id, 0, 4); err == nil {
		t.Fatal("snap-read of deleted snapshot served from cache")
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ViewCacheInvalidations != 1 || st.ViewCacheLive != 0 {
		t.Fatalf("after delete: invalidations=%d live=%d, want 1/0", st.ViewCacheInvalidations, st.ViewCacheLive)
	}
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestViewCacheExpiry drives the cache unit directly with a fake clock:
// an idle view past the TTL is deactivated by sweep; a busy one is not.
func TestViewCacheExpiry(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Write(0, pattern('t', 1, svc.SectorSize())); err != nil {
		t.Fatal(err)
	}
	id, err := svc.CreateSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	now := time.Unix(1000, 0)
	vc := newViewCache(svc, time.Second)
	vc.now = func() time.Time { return now }

	view, release, err := vc.acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, svc.SectorSize())
	if err := view.Read(0, buf); err != nil {
		t.Fatal(err)
	}

	// A held entry never expires, no matter how stale.
	now = now.Add(time.Hour)
	vc.sweep()
	if _, _, exp, _, live := vc.counters(); exp != 0 || live != 1 {
		t.Fatalf("sweep expired a held view: expiries=%d live=%d", exp, live)
	}
	release()

	// Released but fresh: release stamped the idle clock at now.
	vc.sweep()
	if _, _, exp, _, _ := vc.counters(); exp != 0 {
		t.Fatal("sweep expired a fresh view")
	}
	// Released and stale: swept.
	now = now.Add(2 * time.Second)
	vc.sweep()
	if _, _, exp, _, live := vc.counters(); exp != 1 || live != 0 {
		t.Fatalf("expiries=%d live=%d, want 1/0", exp, live)
	}

	// Reacquire after expiry works (a fresh activation).
	_, release, err = vc.acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	release()
	vc.drain()
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestViewCacheInvalidateWithReaderInside: invalidation while a reader
// holds the view defers the deactivation to the last release; the reader
// finishes safely.
func TestViewCacheInvalidateWithReaderInside(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Write(0, pattern('d', 2, svc.SectorSize())); err != nil {
		t.Fatal(err)
	}
	id, err := svc.CreateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	vc := newViewCache(svc, time.Minute)

	view, release, err := vc.acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	vc.invalidate(id)
	if err := svc.DeleteSnapshot(id); err != nil {
		t.Fatal(err)
	}
	// The reader is still inside a doomed entry: its activation epoch keeps
	// the snapshot's blocks live, so the read still returns the frozen data.
	buf := make([]byte, 2*svc.SectorSize())
	if err := view.Read(0, buf); err != nil {
		t.Fatalf("read on doomed view: %v", err)
	}
	if !bytes.Equal(buf, pattern('d', 2, svc.SectorSize())) {
		t.Fatal("doomed view returned wrong data")
	}
	release() // last ref: deactivates here
	if _, _, _, inv, live := vc.counters(); inv != 1 || live != 0 {
		t.Fatalf("invalidations=%d live=%d, want 1/0", inv, live)
	}
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWirePipelinedStorm is the -race leg for the v2 path: several tagged
// clients with deep pipelines, a write/snap-churn mix, all through the
// real load generator, then a full invariant sweep.
func TestWirePipelinedStorm(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	ops := 300
	if testing.Short() {
		ops = 60
	}
	rep, err := RunLoad(LoadConfig{
		Addr: addr, Conns: 4, Depth: 8, Ops: ops,
		WritePct: 30, SnapPct: 10, Seed: 42,
	})
	if err != nil {
		t.Fatalf("storm: %v (report %+v)", err, rep)
	}
	if rep.Proto != 2 {
		t.Fatalf("storm negotiated proto %d", rep.Proto)
	}
	if rep.Ops < int64(4*ops) {
		t.Fatalf("storm completed %d ops, want >= %d", rep.Ops, 4*ops)
	}
	if rep.SnapCreates == 0 || rep.SnapReads == 0 || rep.SnapDeletes == 0 {
		t.Fatalf("storm mix degenerate: %+v", rep)
	}
	st, err := func() (ServerStats, error) {
		c, err := Dial(addr)
		if err != nil {
			return ServerStats{}, err
		}
		defer c.Close()
		return c.Stats()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerShardVirtual) != 4 {
		t.Fatalf("PerShardVirtual has %d entries, want 4", len(st.PerShardVirtual))
	}
	if st.LiveSnapshots != 0 {
		t.Fatalf("storm leaked %d snapshots", st.LiveSnapshots)
	}
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWireShutdownMidPipeline: a shutdown racing deep pipelines neither
// hangs nor corrupts — calls after the cut fail cleanly, Serve drains, and
// the service passes its invariant sweep.
func TestWireShutdownMidPipeline(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	_, addr, served := startServer(t, svc)

	const clients = 3
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				return // shutdown won the race to the listener
			}
			defer c.Close()
			base := int64(ci * 32)
			for r := 0; ; r++ {
				var calls []*Call
				for k := 0; k < 8; k++ {
					calls = append(calls, c.GoWrite(base+int64(k), pattern(byte(r), 1, svc.SectorSize())))
					calls = append(calls, c.GoRead(base+int64(k), 1))
				}
				for _, cl := range calls {
					if _, err := cl.Wait(); err != nil {
						return // in-band or connection error after shutdown: fine
					}
				}
			}
		}(ci)
	}
	time.Sleep(20 * time.Millisecond) // let the pipelines get going
	sc, err := Dial(addr)
	if err == nil {
		sc.Shutdown()
		sc.Close()
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	wg.Wait() // every client unblocked: no hang
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadgenSerialV1Baseline: the loadgen's baseline mode really speaks
// v1 and still completes a mixed run.
func TestLoadgenSerialV1Baseline(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	rep, err := RunLoad(LoadConfig{
		Addr: addr, Conns: 2, Depth: 4, Ops: 50,
		WritePct: 20, SnapPct: 5, V1: true,
	})
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	if rep.Proto != 1 {
		t.Fatalf("V1 run negotiated proto %d", rep.Proto)
	}
	if rep.Ops < 100 {
		t.Fatalf("v1 run completed %d ops", rep.Ops)
	}
}
