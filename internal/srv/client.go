package srv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Client speaks the block protocol to a Server over one connection. Dial
// negotiates protocol v2 when the server supports it: the client then
// keeps many tagged requests in flight (a background reader demuxes
// responses by tag) and the Go* methods expose the pipeline explicitly —
// issue several calls, then Wait them. The plain blocking methods are
// thin submit-and-wait wrappers and remain safe for concurrent use from
// any number of goroutines. Against a v1-only server the client falls
// back to the serial protocol transparently (every call then holds the
// connection for its round-trip, exactly the old behavior).
type Client struct {
	conn   net.Conn
	v2     bool
	window int

	// v1 serial path: one round-trip at a time.
	mu sync.Mutex

	// v2 write side. Frames accumulate in bw and flush when a caller is
	// about to block (Wait, or Do stalling on a full window), so a burst
	// of pipelined requests coalesces into few syscalls.
	wmu sync.Mutex
	bw  *bufio.Writer

	// v2 demux state.
	pmu     sync.Mutex
	pending map[uint32]*Call
	nextTag uint32
	cerr    error // sticky connection error

	sem    chan struct{} // window slots
	broken chan struct{} // closed on connection failure
	failed sync.Once
}

// DialOptions tunes the connection handshake.
type DialOptions struct {
	// ForceV1 skips version negotiation and speaks the serial v1
	// protocol, byte-for-byte what pre-v2 clients sent. Useful as a
	// baseline in benchmarks and to exercise the server's v1 path.
	ForceV1 bool
	// Window caps this client's in-flight pipelined requests. Zero asks
	// for the package default; the server may grant less.
	Window int
}

// Dial connects to a server, negotiating the newest protocol both sides
// speak.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, DialOptions{})
}

// DialOpts connects with explicit handshake options.
func DialOpts(addr string, o DialOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	if o.ForceV1 {
		return c, nil
	}
	want := o.Window
	if want <= 0 {
		want = defaultWindow
	}
	if err := c.negotiate(want); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// negotiate sends the hello and interprets the answer: a v2 server grants
// a window and the connection switches to tagged framing; a v1 server
// reports an in-band "unknown op" error, which downgrades the client to
// serial mode on the same connection.
func (c *Client) negotiate(wantWindow int) error {
	parts := append([][]byte{{opHello}}, helloRequest(wantWindow)...)
	if err := writeFrame(c.conn, parts...); err != nil {
		return err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return err
	}
	defer putBuf(resp)
	if len(resp) == 0 {
		return fmt.Errorf("srv: empty hello response")
	}
	if resp[0] == statusErr {
		// A v1 server does not know the hello op; stay serial.
		return nil
	}
	if resp[0] != statusOK || len(resp) != 9 {
		return fmt.Errorf("srv: malformed hello response (%d bytes, status %d)", len(resp), resp[0])
	}
	if v := be32(resp[1:]); v != protoVersion2 {
		return fmt.Errorf("srv: server negotiated unknown protocol version %d", v)
	}
	granted := int(be32(resp[5:]))
	if granted <= 0 {
		return fmt.Errorf("srv: server granted a zero request window")
	}
	if granted > wantWindow {
		granted = wantWindow
	}
	c.v2 = true
	c.window = granted
	c.bw = bufio.NewWriterSize(c.conn, 64<<10)
	c.pending = make(map[uint32]*Call)
	c.sem = make(chan struct{}, granted)
	c.broken = make(chan struct{})
	go c.reader()
	return nil
}

// Proto reports the negotiated protocol version (1 or 2).
func (c *Client) Proto() int {
	if c.v2 {
		return 2
	}
	return 1
}

// Window reports the granted pipeline window (0 on a v1 connection).
func (c *Client) Window() int { return c.window }

// Close closes the connection. Outstanding pipelined calls fail.
func (c *Client) Close() error {
	return c.conn.Close()
}

// Call is one in-flight pipelined request. Issue it with a Go* method,
// then Wait (or select on Done) for the response.
type Call struct {
	c    *Client
	done chan struct{}
	buf  []byte // pooled response frame backing body (nil after release)
	body []byte // [status][payload]
	err  error
}

// Done is closed when the response (or a connection error) arrived.
func (cl *Call) Done() <-chan struct{} { return cl.done }

// Wait flushes any buffered requests, blocks for the response, and
// returns the payload or the in-band error. The payload shares the
// response buffer; it stays valid until release is called (the typed
// wrappers handle that).
func (cl *Call) Wait() ([]byte, error) {
	select {
	case <-cl.done:
	default:
		cl.c.flush()
		<-cl.done
	}
	if cl.err != nil {
		return nil, cl.err
	}
	switch cl.body[0] {
	case statusOK:
		return cl.body[1:], nil
	case statusErr:
		return nil, fmt.Errorf("%s", cl.body[1:])
	default:
		return nil, fmt.Errorf("srv: unknown status %d", cl.body[0])
	}
}

// release recycles the response buffer. Only wrappers that do not hand
// the payload to the caller may use it.
func (cl *Call) release() {
	putBuf(cl.buf)
	cl.buf, cl.body = nil, nil
}

// waitDiscard waits and releases the response, keeping only the error.
func (cl *Call) waitDiscard() error {
	_, err := cl.Wait()
	cl.release()
	return err
}

// failedCall returns a pre-completed Call carrying err.
func failedCall(err error) *Call {
	done := make(chan struct{})
	close(done)
	return &Call{done: done, err: err}
}

// completedCall returns a pre-completed Call carrying a v1 response body.
func completedCall(body []byte, err error) *Call {
	done := make(chan struct{})
	close(done)
	if err != nil {
		return &Call{done: done, err: err}
	}
	return &Call{done: done, buf: body, body: body}
}

// do issues one request. On a v2 connection it registers a tag, writes
// the frame (possibly leaving it buffered), and returns immediately; on a
// v1 connection it performs the blocking round-trip right here, so the
// pipeline API degrades to serial calls rather than failing.
func (c *Client) do(op byte, parts ...[]byte) *Call {
	if !c.v2 {
		body, err := c.call1(op, parts...)
		return completedCall(body, err)
	}
	// Take a window slot; if the window is full, flush first — the
	// responses that free slots cannot arrive while their requests sit in
	// our write buffer.
	select {
	case c.sem <- struct{}{}:
	default:
		c.flush()
		select {
		case c.sem <- struct{}{}:
		case <-c.broken:
			return failedCall(c.connErr())
		}
	}
	cl := &Call{c: c, done: make(chan struct{})}
	c.pmu.Lock()
	if c.cerr != nil {
		err := c.cerr
		c.pmu.Unlock()
		<-c.sem
		return failedCall(err)
	}
	c.nextTag++
	tag := c.nextTag
	c.pending[tag] = cl
	c.pmu.Unlock()

	c.wmu.Lock()
	err := writeFrame(c.bw, append([][]byte{putU32(tag), {op}}, parts...)...)
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
	}
	return cl
}

// flush pushes buffered request frames onto the wire.
func (c *Client) flush() {
	if !c.v2 {
		return
	}
	c.wmu.Lock()
	var err error
	if c.bw.Buffered() > 0 {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
	}
}

// reader demuxes response frames to their tags until the connection dies,
// then fails every outstanding call. The buffered reader matters: the
// server's writer coalesces completions, so one syscall here drains many
// response frames.
func (c *Client) reader() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		buf, err := readFrame(br)
		if err != nil {
			c.fail(err)
			return
		}
		if len(buf) < 5 {
			putBuf(buf)
			c.fail(fmt.Errorf("srv: malformed tagged response (%d bytes)", len(buf)))
			return
		}
		tag := be32(buf)
		c.pmu.Lock()
		cl := c.pending[tag]
		delete(c.pending, tag)
		c.pmu.Unlock()
		if cl == nil {
			putBuf(buf)
			c.fail(fmt.Errorf("srv: response for unknown tag %d", tag))
			return
		}
		<-c.sem // release the window slot
		cl.buf, cl.body = buf, buf[4:]
		close(cl.done)
	}
}

// fail records the terminal connection error, fails every pending call,
// and unblocks future submitters.
func (c *Client) fail(err error) {
	c.failed.Do(func() {
		c.pmu.Lock()
		c.cerr = err
		pend := c.pending
		c.pending = make(map[uint32]*Call)
		c.pmu.Unlock()
		close(c.broken)
		c.conn.Close()
		for _, cl := range pend {
			cl.err = err
			close(cl.done)
		}
	})
}

func (c *Client) connErr() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.cerr != nil {
		return c.cerr
	}
	return fmt.Errorf("srv: connection broken")
}

// call1 performs one serial v1 round-trip and returns the success body,
// or the server-reported error. The returned body is pooled-backed; it is
// only handed onward by wrappers that give it to the caller.
func (c *Client) call1(op byte, parts ...[]byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, append([][]byte{{op}}, parts...)...); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		putBuf(resp)
		return nil, fmt.Errorf("srv: empty response")
	}
	switch resp[0] {
	case statusOK:
		return resp, nil
	case statusErr:
		err := fmt.Errorf("%s", resp[1:])
		putBuf(resp)
		return nil, err
	default:
		st := resp[0]
		putBuf(resp)
		return nil, fmt.Errorf("srv: unknown status %d", st)
	}
}

// --- pipelined (Go*) API ----------------------------------------------------

// GoPing starts a liveness check.
func (c *Client) GoPing() *Call { return c.do(opPing) }

// GoRead starts a read of n sectors at lba.
func (c *Client) GoRead(lba int64, n int) *Call {
	return c.do(opRead, putU64(uint64(lba)), putU32(uint32(n)))
}

// GoWrite starts a write of sector-aligned data at lba. The data is
// copied into the connection's write buffer before GoWrite returns.
func (c *Client) GoWrite(lba int64, data []byte) *Call {
	return c.do(opWrite, putU64(uint64(lba)), data)
}

// GoTrim starts a trim of n sectors at lba.
func (c *Client) GoTrim(lba, n int64) *Call {
	return c.do(opTrim, putU64(uint64(lba)), putU64(uint64(n)))
}

// GoSnapCreate starts a snapshot create. Note it barriers every shard, so
// it serializes against all in-flight I/O.
func (c *Client) GoSnapCreate() *Call { return c.do(opSnapCreate) }

// GoSnapDelete starts a snapshot delete.
func (c *Client) GoSnapDelete(id uint64) *Call { return c.do(opSnapDelete, putU64(id)) }

// GoSnapRead starts a read of n sectors at lba from snapshot id.
func (c *Client) GoSnapRead(id uint64, lba int64, n int) *Call {
	return c.do(opSnapRead, putU64(id), putU64(uint64(lba)), putU32(uint32(n)))
}

// Flush pushes any buffered pipelined requests onto the wire without
// waiting for their responses.
func (c *Client) Flush() { c.flush() }

// --- blocking API (thin wrappers over the pipeline) -------------------------

// Ping checks liveness.
func (c *Client) Ping() error { return c.GoPing().waitDiscard() }

// Read returns n sectors starting at lba from the live image.
func (c *Client) Read(lba int64, n int) ([]byte, error) {
	return c.GoRead(lba, n).Wait()
}

// Write stores sector-aligned data at lba.
func (c *Client) Write(lba int64, data []byte) error {
	return c.GoWrite(lba, data).waitDiscard()
}

// Trim invalidates n sectors starting at lba.
func (c *Client) Trim(lba, n int64) error {
	return c.GoTrim(lba, n).waitDiscard()
}

// SnapCreate takes a consistent snapshot across all shards and returns
// its ID.
func (c *Client) SnapCreate() (uint64, error) {
	cl := c.GoSnapCreate()
	b, err := cl.Wait()
	if err != nil {
		return 0, err
	}
	if len(b) != 8 {
		cl.release()
		return 0, fmt.Errorf("srv: snap-create response %d bytes, want 8", len(b))
	}
	id := be64(b)
	cl.release()
	return id, nil
}

// SnapDelete tombstones a snapshot.
func (c *Client) SnapDelete(id uint64) error {
	return c.GoSnapDelete(id).waitDiscard()
}

// SnapRead returns n sectors starting at lba from snapshot id's frozen
// image.
func (c *Client) SnapRead(id uint64, lba int64, n int) ([]byte, error) {
	return c.GoSnapRead(id, lba, n).Wait()
}

// Stats fetches the server's aggregate statistics.
func (c *Client) Stats() (ServerStats, error) {
	cl := c.do(opStats)
	b, err := cl.Wait()
	if err != nil {
		return ServerStats{}, err
	}
	var st ServerStats
	uerr := json.Unmarshal(b, &st)
	cl.release()
	if uerr != nil {
		return ServerStats{}, fmt.Errorf("srv: stats decode: %w", uerr)
	}
	return st, nil
}

// Shutdown asks the server to stop. The call returns once the server has
// acknowledged; Serve on the server side returns after in-flight work
// drains.
func (c *Client) Shutdown() error {
	return c.do(opShutdown).waitDiscard()
}
