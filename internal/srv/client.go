package srv

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Client speaks the block protocol to a Server over one connection. All
// methods are safe for concurrent use: each request/response round-trip
// holds the connection for its duration.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// call performs one round-trip and returns the success body, or the
// server-reported error.
func (c *Client) call(op byte, parts ...[]byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, append([][]byte{{op}}, parts...)...); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, fmt.Errorf("srv: empty response")
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusErr:
		return nil, fmt.Errorf("%s", resp[1:])
	default:
		return nil, fmt.Errorf("srv: unknown status %d", resp[0])
	}
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(opPing)
	return err
}

// Read returns n sectors starting at lba from the live image.
func (c *Client) Read(lba int64, n int) ([]byte, error) {
	return c.call(opRead, putU64(uint64(lba)), putU32(uint32(n)))
}

// Write stores sector-aligned data at lba.
func (c *Client) Write(lba int64, data []byte) error {
	_, err := c.call(opWrite, putU64(uint64(lba)), data)
	return err
}

// Trim invalidates n sectors starting at lba.
func (c *Client) Trim(lba, n int64) error {
	_, err := c.call(opTrim, putU64(uint64(lba)), putU64(uint64(n)))
	return err
}

// SnapCreate takes a consistent snapshot across all shards and returns
// its ID.
func (c *Client) SnapCreate() (uint64, error) {
	b, err := c.call(opSnapCreate)
	if err != nil {
		return 0, err
	}
	if len(b) != 8 {
		return 0, fmt.Errorf("srv: snap-create response %d bytes, want 8", len(b))
	}
	return be64(b), nil
}

// SnapDelete tombstones a snapshot.
func (c *Client) SnapDelete(id uint64) error {
	_, err := c.call(opSnapDelete, putU64(id))
	return err
}

// SnapRead returns n sectors starting at lba from snapshot id's frozen
// image.
func (c *Client) SnapRead(id uint64, lba int64, n int) ([]byte, error) {
	return c.call(opSnapRead, putU64(id), putU64(uint64(lba)), putU32(uint32(n)))
}

// Stats fetches the server's aggregate statistics.
func (c *Client) Stats() (ServerStats, error) {
	b, err := c.call(opStats)
	if err != nil {
		return ServerStats{}, err
	}
	var st ServerStats
	if err := json.Unmarshal(b, &st); err != nil {
		return ServerStats{}, fmt.Errorf("srv: stats decode: %w", err)
	}
	return st, nil
}

// Shutdown asks the server to stop. The call returns once the server has
// acknowledged; Serve on the server side returns after in-flight work
// drains.
func (c *Client) Shutdown() error {
	_, err := c.call(opShutdown)
	return err
}
