package srv

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/shard"
	"iosnap/internal/sim"
)

func testNandConfig() nand.Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 32
	nc.Segments = 32
	nc.Channels = 4
	nc.StoreData = true
	nc.ReadLatency = 2 * sim.Microsecond
	nc.ProgramLatency = 4 * sim.Microsecond
	nc.EraseLatency = 50 * sim.Microsecond
	return nc
}

func testShardConfig(shards int) shard.Config {
	base := iosnap.DefaultConfig(testNandConfig())
	base.UserSectors = 768
	base.GCWindow = 10 * sim.Millisecond
	base.BitmapPageBits = 64
	base.CoWPageCost = 10 * sim.Microsecond
	return shard.Config{Base: base, Shards: shards, StripeSectors: 16}
}

// startServer brings up a service and a server on a loopback listener and
// returns the dial address plus the channel Serve's result lands on.
func startServer(t *testing.T, svc *shard.Service) (*Server, string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(svc, ln)
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()
	return s, ln.Addr().String(), served
}

func pattern(tag byte, sectors, ss int) []byte {
	b := make([]byte, sectors*ss)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

// TestServerBasicOps drives every protocol op through one client and
// checks snapshot isolation end to end over the wire.
func TestServerBasicOps(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	ss := svc.SectorSize()

	old := pattern('a', 8, ss)
	if err := c.Write(100, old); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := c.Read(100, 8)
	if err != nil || !bytes.Equal(got, old) {
		t.Fatalf("read-back mismatch: %v", err)
	}

	id, err := c.SnapCreate()
	if err != nil {
		t.Fatalf("snap-create: %v", err)
	}
	niu := pattern('b', 8, ss)
	if err := c.Write(100, niu); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Read(100, 8); err != nil || !bytes.Equal(got, niu) {
		t.Fatalf("live read after overwrite: %v", err)
	}
	if got, err := c.SnapRead(id, 100, 8); err != nil || !bytes.Equal(got, old) {
		t.Fatalf("snapshot read: err=%v, isolation broken", err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Shards != 4 || st.LiveSnapshots != 1 || st.SectorSize != ss || st.Sectors != 768 {
		t.Fatalf("stats = %+v", st)
	}
	var writes int64
	for _, p := range st.PerShard {
		writes += p.UserWrites
	}
	if writes != 16 {
		t.Fatalf("aggregate UserWrites = %d, want 16", writes)
	}

	if err := c.Trim(100, 8); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if err := c.SnapDelete(id); err != nil {
		t.Fatalf("snap-delete: %v", err)
	}
	if _, err := c.SnapRead(id, 100, 8); err == nil {
		t.Fatal("snap-read of deleted snapshot succeeded")
	}
}

// TestServerErrorsStayInBand: op failures are reported on the wire and do
// not poison the connection.
func TestServerErrorsStayInBand(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Read(svc.Sectors(), 1); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range read: %v", err)
	}
	if err := c.Write(0, []byte("unaligned")); err == nil {
		t.Fatal("unaligned write accepted")
	}
	if _, err := c.SnapRead(99, 0, 1); err == nil {
		t.Fatal("snap-read of unknown snapshot accepted")
	}
	// The connection still works after every failure.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after errors: %v", err)
	}
	if err := c.Write(0, pattern('x', 1, svc.SectorSize())); err != nil {
		t.Fatalf("write after errors: %v", err)
	}
}

// TestServerConcurrentClients is the -race leg: many client connections
// hammer disjoint LBA ranges while another takes and reads snapshots.
func TestServerConcurrentClients(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	const clients = 6
	const rounds = 20
	const run = 8 // sectors per client
	ss := svc.SectorSize()

	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			base := int64(ci * run)
			for r := 0; r < rounds; r++ {
				want := pattern(byte(ci*31+r), run, ss)
				if err := c.Write(base, want); err != nil {
					errs <- fmt.Errorf("client %d round %d write: %w", ci, r, err)
					return
				}
				got, err := c.Read(base, run)
				if err != nil || !bytes.Equal(got, want) {
					errs <- fmt.Errorf("client %d round %d read-back mismatch: %v", ci, r, err)
					return
				}
			}
		}(ci)
	}
	// Snapshot client: create, read a little, delete, repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for r := 0; r < rounds/2; r++ {
			id, err := c.SnapCreate()
			if err != nil {
				errs <- fmt.Errorf("snap round %d create: %w", r, err)
				return
			}
			if _, err := c.SnapRead(id, 0, clients*run); err != nil {
				errs <- fmt.Errorf("snap round %d read: %w", r, err)
				return
			}
			if err := c.SnapDelete(id); err != nil {
				errs <- fmt.Errorf("snap round %d delete: %w", r, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServerGracefulShutdown: the shutdown op stops Serve, in-flight work
// drains, and the service is handed back open so the owner can checkpoint
// it.
func TestServerGracefulShutdown(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	_, addr, served := startServer(t, svc)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(0, pattern('s', 4, svc.SectorSize())); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatalf("shutdown op: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after shutdown", err)
	}
	c.Close()
	// New connections are refused…
	if c2, err := Dial(addr); err == nil {
		c2.Close()
		t.Fatal("dial succeeded after shutdown")
	}
	// …but the service is still open: the owner checkpoints it.
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("service close after serve: %v", err)
	}
}

// TestServerRejectsGarbage: an oversized frame header terminates the
// connection without taking the server down.
func TestServerRejectsGarbage(t *testing.T) {
	svc, err := shard.NewService(testShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s, addr, served := startServer(t, svc)
	defer func() { s.Shutdown(); <-served }()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	buf := make([]byte, 16)
	if n, _ := raw.Read(buf); n != 0 {
		t.Fatalf("server answered a garbage frame with %d bytes", n)
	}
	raw.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after garbage connection: %v", err)
	}
}

// TestMountFromImages is the daemon's persistence loop in miniature:
// initialize per-shard devices, run a service over them, close (which
// checkpoints), stream each device to an image, load the images back, and
// remount with NewServiceFrom/ConfigForDevices — data written before the
// restart must be readable after it.
func TestMountFromImages(t *testing.T) {
	const shards = 4
	nc := testNandConfig()

	// Init: one fresh FTL per shard, closed immediately (the daemon's
	// "format" step), streamed to an image.
	images := make([]*bytes.Buffer, shards)
	for i := range images {
		f, err := iosnap.New(iosnap.DefaultConfig(nc), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Close(0); err != nil {
			t.Fatal(err)
		}
		images[i] = &bytes.Buffer{}
		if err := f.Device().SaveImage(images[i]); err != nil {
			t.Fatal(err)
		}
	}

	// loadDevs reconstructs the per-shard devices from the current images;
	// the daemon keeps these handles so it can SaveImage them after Close.
	loadDevs := func() []*nand.Device {
		devs := make([]*nand.Device, shards)
		for i := range devs {
			d, err := nand.LoadImage(bytes.NewReader(images[i].Bytes()))
			if err != nil {
				t.Fatalf("shard %d image: %v", i, err)
			}
			devs[i] = d
		}
		return devs
	}

	// First mount: serve, write a run straddling a shard boundary over the
	// wire, shut down gracefully, checkpoint, persist.
	devs := loadDevs()
	cfg, err := shard.ConfigForDevices(devs)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := shard.NewServiceFrom(cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	_, addr, served := startServer(t, svc)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern('m', 32, svc.SectorSize())
	lba := cfg.Base.UserSectors/int64(shards) - 8 // straddles shard 0/1
	if err := c.Write(lba, want); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := svc.Close(); err != nil { // checkpoints every shard
		t.Fatal(err)
	}
	for i, d := range devs {
		images[i].Reset()
		if err := d.SaveImage(images[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Second mount: the data survives the restart.
	devs2 := loadDevs()
	cfg2, err := shard.ConfigForDevices(devs2)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := shard.NewServiceFrom(cfg2, devs2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	got := make([]byte, len(want))
	if err := svc2.Read(lba, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data lost across image save/load remount")
	}
	if err := svc2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
