// Package srv is the storage-service front-end: a long-running TCP block
// server that multiplexes many client connections onto one shard.Service,
// plus the matching client. Since wire protocol v2 a connection is a
// *pipeline*: requests carry a 32-bit tag, the server dispatches each
// tagged request on its own goroutine (bounded by a per-connection
// window), and responses return in completion order — so independent
// operations land on different shards concurrently instead of paying one
// round-trip each. Version 1 (one untagged request/response pair at a
// time) remains fully supported for old clients, and a v2 client degrades
// to v1 automatically when the server does not understand the hello.
package srv

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sync"
)

// Wire format. Every frame, in both directions, is
//
//	[u32 big-endian length][payload of exactly that many bytes]
//
// Protocol v1: a request payload is [u8 op][op-specific body]; a response
// payload is [u8 status][body], where status 0 is success (body is the
// op's result) and status 1 is an error (body is the error text). The
// connection carries one request/response pair at a time.
//
// Protocol v2 is negotiated by a hello exchange in v1 framing: the
// client's first frame is [opHello]["iosnapv2"][u32 maxVersion][u32
// wantWindow]; a v2 server answers [statusOK][u32 version][u32 window]
// and the connection switches to tagged framing, where a request payload
// is [u32 tag][u8 op][body] and a response payload is [u32 tag][u8
// status][body]. Tags are chosen by the client; the server answers each
// tag exactly once, in completion order (NOT submission order — that is
// the point), and at most `window` requests may be in flight. A v1 server
// answers the hello with an in-band statusErr ("unknown op"), which a v2
// client takes as the signal to fall back to serial v1 operation.
//
// Op bodies (all integers big-endian):
//
//	ping        ->                               <- (empty)
//	read        -> u64 lba, u32 sectors          <- data
//	write       -> u64 lba, data                 <- (empty)
//	trim        -> u64 lba, u64 sectors          <- (empty)
//	snapCreate  ->                               <- u64 id
//	snapDelete  -> u64 id                        <- (empty)
//	snapRead    -> u64 id, u64 lba, u32 sectors  <- data
//	stats       ->                               <- JSON ServerStats
//	shutdown    ->                               <- (empty; server stops)
//	hello       -> magic, u32 ver, u32 window    <- u32 ver, u32 window
const (
	opPing       byte = 1
	opRead       byte = 2
	opWrite      byte = 3
	opTrim       byte = 4
	opSnapCreate byte = 5
	opSnapDelete byte = 6
	opSnapRead   byte = 7
	opStats      byte = 8
	opShutdown   byte = 9
	opHello      byte = 10
)

const (
	statusOK  byte = 0
	statusErr byte = 1
)

// protoVersion2 is the highest protocol version this package speaks.
const protoVersion2 = 2

// helloMagic guards against mistaking a v1 request that happens to start
// with byte 10 for a negotiation attempt (no v1 op uses 10, but a hostile
// peer could).
const helloMagic = "iosnapv2"

// defaultWindow bounds in-flight requests per v2 connection when neither
// side asks for a specific window.
const defaultWindow = 128

// maxFrame bounds a single frame. It caps request sizes (a hostile or
// buggy peer cannot make the server allocate gigabytes) and therefore the
// largest single read/write a client may issue.
const maxFrame = 1 << 26 // 64 MiB

// maxBody is the largest op result that fits a response frame in either
// protocol version (v2 spends 4 tag bytes + 1 status byte of the frame).
const maxBody = maxFrame - 5

// --- pooled frame buffers ---------------------------------------------------
//
// readFrame and the dispatch read paths used to allocate a fresh []byte
// per frame — at depth-16 pipelines that is the single largest per-request
// allocation on both ends of the wire. Buffers are pooled in power-of-two
// size classes; getBuf returns a slice of exactly the requested length,
// putBuf recycles any buffer whose capacity is exactly a class size (so a
// slice that grew elsewhere, or a sub-slice handed to a caller, is simply
// left for the GC rather than poisoning a class).

const (
	minBufShift = 9  // 512 B
	maxBufShift = 20 // 1 MiB; larger frames allocate fresh
	bufClasses  = maxBufShift - minBufShift + 1
)

var bufPools [bufClasses]sync.Pool

// getBuf returns a length-n slice backed by a pooled class buffer (or a
// fresh allocation for n beyond the largest class).
func getBuf(n int) []byte {
	if n > 1<<maxBufShift {
		return make([]byte, n)
	}
	shift := minBufShift
	for n > 1<<shift {
		shift++
	}
	if p := bufPools[shift-minBufShift].Get(); p != nil {
		return (*(p.(*[]byte)))[:n]
	}
	return make([]byte, n, 1<<shift)
}

// putBuf recycles b if (and only if) its capacity is exactly a pool class
// size. Callers must own b outright: no live sub-slice may survive the put.
func putBuf(b []byte) {
	c := cap(b)
	if c < 1<<minBufShift || c > 1<<maxBufShift || c&(c-1) != 0 {
		return
	}
	b = b[:c]
	bufPools[bits.TrailingZeros(uint(c))-minBufShift].Put(&b)
}

// writeFrame sends one length-prefixed frame built from the given parts.
func writeFrame(w io.Writer, parts ...[]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > maxFrame {
		return fmt.Errorf("srv: frame of %d bytes exceeds limit %d", total, maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(total))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range parts {
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one length-prefixed frame into a pooled buffer. io.EOF
// is returned only at a clean frame boundary; a frame cut off mid-payload
// is ErrUnexpectedEOF. The caller owns the returned buffer and should
// putBuf it when the frame's contents are dead.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("srv: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	buf := getBuf(int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		putBuf(buf)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// helloRequest builds the v2 negotiation frame body (after the op byte).
func helloRequest(wantWindow int) [][]byte {
	return [][]byte{[]byte(helloMagic), putU32(protoVersion2), putU32(uint32(wantWindow))}
}

// parseHello validates a hello body and returns the peer's max version and
// requested window.
func parseHello(body []byte) (version, window int, ok bool) {
	if len(body) != len(helloMagic)+8 || string(body[:len(helloMagic)]) != helloMagic {
		return 0, 0, false
	}
	return int(be32(body[len(helloMagic):])), int(be32(body[len(helloMagic)+4:])), true
}

func be64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }
func be32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

func putU64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func putU32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}
