// Package srv is the storage-service front-end: a long-running TCP block
// server that multiplexes many client connections onto one shard.Service,
// plus the matching client. The wire protocol is deliberately minimal —
// length-prefixed binary frames, one request/response pair at a time per
// connection — because the interesting concurrency lives in the sharded
// service behind it, not in the transport.
package srv

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format. Every frame, in both directions, is
//
//	[u32 big-endian length][payload of exactly that many bytes]
//
// A request payload is [u8 op][op-specific body]; a response payload is
// [u8 status][body], where status 0 is success (body is the op's result)
// and status 1 is an error (body is the error text).
//
// Op bodies (all integers big-endian):
//
//	ping        ->                               <- (empty)
//	read        -> u64 lba, u32 sectors          <- data
//	write       -> u64 lba, data                 <- (empty)
//	trim        -> u64 lba, u64 sectors          <- (empty)
//	snapCreate  ->                               <- u64 id
//	snapDelete  -> u64 id                        <- (empty)
//	snapRead    -> u64 id, u64 lba, u32 sectors  <- data
//	stats       ->                               <- JSON ServerStats
//	shutdown    ->                               <- (empty; server stops)
const (
	opPing       byte = 1
	opRead       byte = 2
	opWrite      byte = 3
	opTrim       byte = 4
	opSnapCreate byte = 5
	opSnapDelete byte = 6
	opSnapRead   byte = 7
	opStats      byte = 8
	opShutdown   byte = 9
)

const (
	statusOK  byte = 0
	statusErr byte = 1
)

// maxFrame bounds a single frame. It caps request sizes (a hostile or
// buggy peer cannot make the server allocate gigabytes) and therefore the
// largest single read/write a client may issue.
const maxFrame = 1 << 26 // 64 MiB

// writeFrame sends one length-prefixed frame built from the given parts.
func writeFrame(w io.Writer, parts ...[]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > maxFrame {
		return fmt.Errorf("srv: frame of %d bytes exceeds limit %d", total, maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(total))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range parts {
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one length-prefixed frame. io.EOF is returned only at a
// clean frame boundary; a frame cut off mid-payload is ErrUnexpectedEOF.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("srv: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

func be64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }
func be32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

func putU64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func putU32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}
