package harness

import (
	"fmt"

	"iosnap/internal/blockdev"
	"iosnap/internal/ftl"
	"iosnap/internal/iosnap"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "table4",
		Title: "Segment-cleaning overheads vs snapshot count",
		Paper: "Table 4 — overall cleaning time roughly flat (pacing-dominated, paper ~10.4 s); validity-merge time grows with snapshots (113 -> 205 ms); snapshots add copy-forward volume",
		Run:   runTable4,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Foreground write latency under cleaning: pacing policies",
		Paper: "Figure 10 — with snapshots, the vanilla pacing estimate roughly doubles foreground write latency; snapshot-aware pacing restores the vanilla profile",
		Run:   runFig10,
	})
}

// worstWindowMean slides a window of the given width over the latency
// series and returns the highest window-mean — the sustained-interference
// metric the pacing policies differ on.
func worstWindowMean(pts []sim.SeriesPoint, width sim.Duration) sim.Duration {
	if len(pts) == 0 {
		return 0
	}
	// Clip the tail: the victim's final erase (a fixed multi-ms channel
	// stall, identical across configs) would otherwise dominate the metric.
	cut := pts[len(pts)-1].At.Add(-sim.Duration(5 * sim.Millisecond))
	for len(pts) > 0 && pts[len(pts)-1].At > cut {
		pts = pts[:len(pts)-1]
	}
	if len(pts) == 0 {
		return 0
	}
	var worst sim.Duration
	j := 0
	var sum sim.Duration
	for i := range pts {
		sum += pts[i].Latency
		for pts[i].At.Sub(pts[j].At) > width {
			sum -= pts[j].Latency
			j++
		}
		if n := i - j + 1; n >= 8 {
			if m := sum / sim.Duration(n); m > worst {
				worst = m
			}
		}
	}
	return worst
}

// cleanTarget abstracts the two FTLs for the forced-clean experiments.
type cleanTarget interface {
	blockdev.Device
	ForceClean(now sim.Time, seg int) error
	CleaningActive() bool
	UsedSegments() []int
}

// prepSnappedLog fills a quarter of the device, interleaving churn and the
// requested number of snapshots, so the oldest segments hold a mix of dead
// blocks, snapshot-pinned blocks, and live blocks — the paper's "segment
// which was just written" with snapshots inside it. It returns the end time.
func prepSnappedLog(dev blockdev.Device, sched *sim.Scheduler, snapFn func(now sim.Time) (sim.Time, error), snapshots int, seed uint64) (sim.Time, error) {
	region := dev.Sectors() / 4
	now, err := workload.Fill(dev, 0, 128<<10, 0, region, sched)
	if err != nil {
		return now, err
	}
	churn := func(now sim.Time, bytes int64, seed uint64) (sim.Time, error) {
		spec := workload.Spec{
			Kind: workload.Write, Pattern: workload.Random,
			BlockSize: 4096, Threads: 1, QueueDepth: 1,
			TotalBytes: bytes, RangeHi: region, Seed: seed,
		}
		_, end, err := workload.Run(dev, now, spec, workload.Options{Scheduler: sched})
		return end, err
	}
	half := region * int64(dev.SectorSize()) / 2
	for i := 0; i < snapshots; i++ {
		if now, err = churn(now, half, seed+uint64(i)); err != nil {
			return now, err
		}
		if now, err = snapFn(now); err != nil {
			return now, err
		}
	}
	// A final churn pass after the last snapshot pins old versions.
	return churn(now, half, seed+99)
}

// forcedCleanRun prepares the log, then forces paced cleans of the oldest
// written segments one after another (the paper cleans the freshly written
// multi-segment region) while foreground sync writes continue.
func forcedCleanRun(dev cleanTarget, sched *sim.Scheduler,
	snapFn func(now sim.Time) (sim.Time, error), snapshots int) (*sim.LatencyRecorder, sim.Duration, error) {
	now, err := prepSnappedLog(dev, sched, snapFn, snapshots, 11)
	if err != nil {
		return nil, 0, err
	}
	const batch = 8
	targets := dev.UsedSegments()
	if len(targets) > batch {
		targets = targets[:batch]
	}
	start := now
	lat := sim.NewLatencyRecorder(1)
	region := dev.Sectors() / 4
	for _, target := range targets {
		if err := dev.ForceClean(now, target); err != nil {
			return nil, 0, err
		}
		for dev.CleaningActive() {
			spec := workload.Spec{
				Kind: workload.Write, Pattern: workload.Random,
				BlockSize: 4096, Threads: 1, QueueDepth: 1,
				MaxOps: 64, RangeHi: region, Seed: uint64(now),
			}
			_, end, err := workload.Run(dev, now, spec, workload.Options{Scheduler: sched, Latency: lat})
			if err != nil {
				return nil, 0, err
			}
			now = end
		}
	}
	return lat, now.Sub(start), nil
}

func table4Nand(rc RunConfig) (cfgSegs int) {
	total := scaledBytes(rc, 1<<30)
	return segmentsFor(expNand(0), total)
}

func runTable4(rc RunConfig) (*Report, error) {
	nc := expNand(table4Nand(rc))
	tbl := Table{
		Title:  "Cleaning one snapshot-bearing segment while writes continue",
		Header: []string{"Config", "Overall time", "Validity merge", "Pages copied"},
	}
	// Vanilla FTL.
	{
		fcfg := ftl.DefaultConfig(nc)
		fcfg.GCWindow = 30 * sim.Millisecond
		f, err := ftl.New(fcfg, nil)
		if err != nil {
			return nil, err
		}
		_, overall, err := forcedCleanRun(f, f.Scheduler(),
			func(t sim.Time) (sim.Time, error) { return t, nil }, 0)
		if err != nil {
			return nil, fmt.Errorf("table4 vanilla: %w", err)
		}
		st := f.Stats()
		tbl.Rows = append(tbl.Rows, []string{"Vanilla (0)", fmtDur(overall),
			fmtDur(st.GCMergeTime), fmt.Sprintf("%d", st.GCCopied)})
		rc.logf("table4: vanilla overall=%v merge=%v copied=%d", overall, st.GCMergeTime, st.GCCopied)
	}
	// ioSnap with 0, 1, 2 snapshots (snapshot-aware pacing, like the
	// paper's final configuration).
	for snaps := 0; snaps <= 2; snaps++ {
		icfg := iosnap.DefaultConfig(nc)
		icfg.GCWindow = 30 * sim.Millisecond
		f, err := iosnap.New(icfg, nil)
		if err != nil {
			return nil, err
		}
		_, overall, err := forcedCleanRun(f, f.Scheduler(),
			func(t sim.Time) (sim.Time, error) {
				_, t2, err := f.CreateSnapshot(t)
				return t2, err
			}, snaps)
		if err != nil {
			return nil, fmt.Errorf("table4 iosnap(%d): %w", snaps, err)
		}
		st := f.Stats()
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprintf("ioSnap (%d snapshots)", snaps),
			fmtDur(overall), fmtDur(st.GCMergeTime), fmt.Sprintf("%d", st.GCCopied)})
		rc.logf("table4: iosnap(%d) overall=%v merge=%v copied=%d", snaps, overall, st.GCMergeTime, st.GCCopied)
	}
	return &Report{
		ID:     "table4",
		Title:  "Overheads of segment cleaning",
		Paper:  "overall time roughly flat across snapshot counts (pacing-dominated); merge time grows with the number of epochs; snapshotted data adds copy-forward volume",
		Tables: []Table{tbl},
		Notes: []string{
			"the forced victim is the oldest segment; foreground 4K sync random writes run throughout (paper §6.3)",
		},
	}, nil
}

func runFig10(rc RunConfig) (*Report, error) {
	nc := expNand(table4Nand(rc))
	type config struct {
		name   string
		system string
		policy iosnap.GCPolicy
		snaps  int
	}
	configs := []config{
		{"Vanilla FTL", "vanilla", 0, 0},
		{"ioSnap, 2 snapshots, vanilla rate policy", "iosnap", iosnap.GCVanillaEstimate, 2},
		{"ioSnap, 2 snapshots, snapshot-aware policy", "iosnap", iosnap.GCSnapshotAware, 2},
	}
	tbl := Table{
		Title:  "Foreground 4K sync write latency while the forced clean runs",
		Header: []string{"Config", "Mean", "p99", "Worst 2ms window", "Unpaced quanta", "Clean duration"},
	}
	var allSeries []Series
	for _, c := range configs {
		var lat *sim.LatencyRecorder
		var overall sim.Duration
		var unpaced int64
		var err error
		if c.system == "vanilla" {
			fcfg := ftl.DefaultConfig(nc)
			fcfg.GCWindow = 30 * sim.Millisecond
			f, e := ftl.New(fcfg, nil)
			if e != nil {
				return nil, e
			}
			lat, overall, err = forcedCleanRun(f, f.Scheduler(),
				func(t sim.Time) (sim.Time, error) { return t, nil }, 0)
		} else {
			icfg := iosnap.DefaultConfig(nc)
			icfg.GCWindow = 30 * sim.Millisecond
			icfg.GCPolicy = c.policy
			f, e := iosnap.New(icfg, nil)
			if e != nil {
				return nil, e
			}
			lat, overall, err = forcedCleanRun(f, f.Scheduler(),
				func(t sim.Time) (sim.Time, error) {
					_, t2, err := f.CreateSnapshot(t)
					return t2, err
				}, c.snaps)
			unpaced = f.Stats().GCUnpacedQuanta
		}
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", c.name, err)
		}
		tbl.Rows = append(tbl.Rows, []string{
			c.name, fmtDur(lat.Mean()), fmtDur(lat.Percentile(99)),
			fmtDur(worstWindowMean(lat.Series(), 2*sim.Millisecond)),
			fmt.Sprintf("%d", unpaced), fmtDur(overall),
		})
		allSeries = append(allSeries, seriesFromLatency("write latency ("+c.name+")", lat.Series()))
		rc.logf("fig10: %-44s mean=%v p99=%v max=%v dur=%v", c.name, lat.Mean(), lat.Percentile(99), lat.Max(), overall)
	}
	return &Report{
		ID:     "fig10",
		Title:  "Impact of segment cleaner on user performance",
		Paper:  "snapshot-unaware pacing bunches copy-forward (latency roughly doubles in the paper); snapshot-aware pacing restores the vanilla profile",
		Tables: []Table{tbl},
		Series: allSeries,
		Notes: []string{
			"'Unpaced quanta' counts cleaner work bursts that ran unthrottled because the vanilla estimate under-counted valid blocks — the paper's failure mode",
			"on this simulator's 16-channel device the burst dilutes across channels, so the mean-latency gap is smaller than the paper's 2x; the mechanism (unpaced bursts vs none) reproduces exactly",
		},
	}, nil
}
