package harness

import (
	"fmt"

	"iosnap/internal/iosnap"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "selectivescan",
		Title: "Extension: selective activation scan (paper §7 future work)",
		Paper: "§7 — \"activations can be further optimized by selectively scanning only those segments that have data corresponding to the snapshot\"; not evaluated in the paper",
		Run:   runSelectiveScan,
	})
}

func runSelectiveScan(rc RunConfig) (*Report, error) {
	snapData := scaledBytes(rc, 16<<20) // a small, old snapshot
	logSizes := []int64{256 << 20, 512 << 20, 1 << 30}

	tbl := Table{
		Title:  "Activation of a small early snapshot vs total log size",
		Header: []string{"Log size", "Full scan", "Selective scan", "Speedup", "Segments scanned (sel/full)"},
	}
	series := Series{Name: "selective-scan speedup", XLabel: "log size (MB)", YLabel: "speedup (x)"}
	for _, base := range logSizes {
		logSize := scaledBytes(rc, base)
		var times [2]sim.Duration
		var segsScanned [2]int64
		for i, selective := range []bool{false, true} {
			nc := expNand(segmentsFor(expNand(0), logSize))
			cfg := iosnap.DefaultConfig(nc)
			cfg.SelectiveScan = selective
			f, err := newIoSnapCfg(cfg)
			if err != nil {
				return nil, err
			}
			// Small snapshot first, then fill the log with unrelated data.
			spec := workload.Spec{
				Kind: workload.Write, Pattern: workload.Random,
				BlockSize: 4096, Threads: 2, QueueDepth: 16,
				TotalBytes: snapData, RangeHi: snapData / 4096 * 2,
				Seed: 1, SubmitCost: sim.Microsecond,
			}
			_, now, err := workload.Run(f, 0, spec, workload.Options{Scheduler: f.Scheduler()})
			if err != nil {
				return nil, fmt.Errorf("selectivescan prep: %w", err)
			}
			snap, now, err := f.CreateSnapshot(now)
			if err != nil {
				return nil, err
			}
			fill := spec
			fill.TotalBytes = logSize - snapData
			fill.RangeLo = snapData / 4096 * 2
			fill.RangeHi = f.Sectors()
			fill.Seed = 2
			_, now, err = workload.Run(f, now, fill, workload.Options{Scheduler: f.Scheduler()})
			if err != nil {
				return nil, fmt.Errorf("selectivescan fill: %w", err)
			}
			scansBefore := f.Device().Stats().OOBScans
			view, done, err := f.ActivateSync(now, snap.ID, ratelimit.WorkSleep{}, false)
			if err != nil {
				return nil, err
			}
			times[i] = done.Sub(now)
			segsScanned[i] = f.Device().Stats().OOBScans - scansBefore
			if _, err := view.Deactivate(done); err != nil {
				return nil, err
			}
			rc.logf("selectivescan: log=%s selective=%v act=%v segs=%d",
				fmtBytes(logSize), selective, times[i], segsScanned[i])
		}
		speedup := float64(times[0]) / float64(times[1])
		tbl.Rows = append(tbl.Rows, []string{
			fmtBytes(logSize), fmtDur(times[0]), fmtDur(times[1]),
			fmt.Sprintf("%.1fx", speedup),
			fmt.Sprintf("%d / %d", segsScanned[1], segsScanned[0]),
		})
		series.X = append(series.X, float64(logSize)/(1<<20))
		series.Y = append(series.Y, speedup)
	}
	return &Report{
		ID:     "selectivescan",
		Title:  "Selective activation scan (extension)",
		Paper:  "beyond the paper: per-segment epoch-presence summaries make activation cost proportional to the snapshot's footprint, not the log size",
		Tables: []Table{tbl},
		Series: []Series{series},
		Notes: []string{
			fmt.Sprintf("%s snapshot on growing logs; correctness vs full scan is enforced by iosnap's test suite", fmtBytes(snapData)),
		},
	}, nil
}

// newIoSnapCfg builds an FTL from an explicit config (variant of newIoSnap).
func newIoSnapCfg(cfg iosnap.Config) (*iosnap.FTL, error) {
	return iosnap.New(cfg, nil)
}
