package harness

import (
	"fmt"

	"iosnap/internal/blockdev"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Regular operations: vanilla FTL vs ioSnap (MB/s)",
		Paper: "Table 2 — ioSnap indistinguishable from vanilla: seq write ~1617, rand write ~1375, seq read ~1238, rand read ~312 MB/s",
		Run:   runTable2,
	})
}

// table2System abstracts the two FTLs for this experiment.
type table2System struct {
	name  string
	build func(segs int) (blockdev.Device, *sim.Scheduler, error)
}

func runTable2(rc RunConfig) (*Report, error) {
	perRun := scaledBytes(rc, 1<<30) // paper: 16 GB; scaled default 1 GB
	nc := expNand(0)
	segs := segmentsFor(nc, perRun)
	const reps = 3

	systems := []table2System{
		{"Vanilla", func(segs int) (blockdev.Device, *sim.Scheduler, error) {
			f, err := newVanilla(expNand(segs))
			if err != nil {
				return nil, nil, err
			}
			return f, f.Scheduler(), nil
		}},
		{"ioSnap", func(segs int) (blockdev.Device, *sim.Scheduler, error) {
			f, err := newIoSnap(expNand(segs))
			if err != nil {
				return nil, nil, err
			}
			return f, f.Scheduler(), nil
		}},
	}

	type bench struct {
		name string
		kind workload.Kind
		pat  workload.Pattern
		qd   int
	}
	benches := []bench{
		{"Sequential Write", workload.Write, workload.Sequential, 16},
		{"Random Write", workload.Write, workload.Random, 16},
		{"Sequential Read", workload.Read, workload.Sequential, 16},
		{"Random Read", workload.Read, workload.Random, 1},
	}

	results := make(map[string][]float64) // "bench/system" -> MB/s samples
	for _, b := range benches {
		for _, sys := range systems {
			for rep := 0; rep < reps; rep++ {
				dev, sched, err := sys.build(segs)
				if err != nil {
					return nil, err
				}
				now := sim.Time(0)
				if b.kind == workload.Read {
					now, err = workload.Fill(dev, now, 256<<10, 0, dev.Sectors(), sched)
					if err != nil {
						return nil, fmt.Errorf("table2 %s/%s prefill: %w", b.name, sys.name, err)
					}
				}
				spec := workload.Spec{
					Kind: b.kind, Pattern: b.pat,
					BlockSize: 4096, Threads: 2, QueueDepth: b.qd,
					TotalBytes: perRun, Seed: uint64(rep + 1), SubmitCost: sim.Microsecond,
				}
				res, _, err := workload.Run(dev, now, spec, workload.Options{Scheduler: sched})
				if err != nil {
					return nil, fmt.Errorf("table2 %s/%s: %w", b.name, sys.name, err)
				}
				key := b.name + "/" + sys.name
				results[key] = append(results[key], res.MBps)
				rc.logf("table2: %-16s %-8s rep %d: %.1f MB/s", b.name, sys.name, rep, res.MBps)
			}
		}
	}

	tbl := Table{
		Title:  "Regular operations (MB/s, mean ± std over 3 runs)",
		Header: []string{"Benchmark", "Vanilla", "ioSnap", "delta"},
	}
	for _, b := range benches {
		v := results[b.name+"/Vanilla"]
		i := results[b.name+"/ioSnap"]
		vm, _ := sim.MeanStddev(v)
		im, _ := sim.MeanStddev(i)
		delta := "0.0%"
		if vm > 0 {
			delta = fmt.Sprintf("%+.1f%%", (im-vm)/vm*100)
		}
		tbl.Rows = append(tbl.Rows, []string{b.name, meanStd(v), meanStd(i), delta})
	}
	return &Report{
		ID:     "table2",
		Title:  "Baseline performance — regular I/O operations",
		Paper:  "negligible difference between vanilla and ioSnap on all four microbenchmarks",
		Tables: []Table{tbl},
		Notes: []string{
			fmt.Sprintf("4 KB I/O, 2 threads, %s per run (paper: 16 GB), async QD16 except sync random reads", fmtBytes(perRun)),
		},
	}, nil
}
