// Package harness defines and runs the paper-reproduction experiments: one
// per table and figure in ioSnap's evaluation (§6), each regenerating the
// same rows or series the paper reports, on the simulated device.
//
// Absolute numbers are simulator-calibrated (see EXPERIMENTS.md); what the
// experiments reproduce is the paper's *shape*: who wins, by what rough
// factor, and where the crossovers fall.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"iosnap/internal/sim"
)

// RunConfig controls experiment scale and output.
type RunConfig struct {
	// Scale multiplies data volumes; 1.0 is the default scaled-down-from-
	// paper size, smaller is quicker.
	Scale float64
	// Out receives progress lines (nil = quiet).
	Out io.Writer
}

func (rc RunConfig) scale() float64 {
	if rc.Scale <= 0 {
		return 1.0
	}
	return rc.Scale
}

func (rc RunConfig) logf(format string, args ...any) {
	if rc.Out != nil {
		fmt.Fprintf(rc.Out, format+"\n", args...)
	}
}

// Table is one rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Series is one figure line: (x, y) points with axis labels.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Report is an experiment's output.
type Report struct {
	ID     string
	Title  string
	Paper  string // what the paper's version of this artifact shows
	Tables []Table
	Series []Series
	Notes  []string
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Paper string
	Run   func(rc RunConfig) (*Report, error)
}

// registry holds all experiments.
var registry []Experiment

// canonicalOrder lists experiment ids in the paper's presentation order.
var canonicalOrder = []string{
	"table2", "createdelete", "fig7", "fig8", "table3", "fig9", "table4", "fig10", "fig11", "fig12",
}

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment in the paper's order; experiments
// not in the canonical list follow in registration order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	seen := make(map[string]bool)
	for _, id := range canonicalOrder {
		if e, ok := Lookup(id); ok {
			out = append(out, e)
			seen[id] = true
		}
	}
	for _, e := range registry {
		if !seen[e.ID] {
			out = append(out, e)
		}
	}
	return out
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the registered experiment ids in canonical order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// Render writes a report as aligned text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(w, "paper: %s\n", r.Paper)
	}
	for i := range r.Tables {
		fmt.Fprintln(w)
		r.Tables[i].render(w)
	}
	for i := range r.Series {
		fmt.Fprintln(w)
		r.Series[i].render(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func (t *Table) render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "-- %s --\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
}

// render prints a compact summary and an ASCII sparkline of the series.
func (s *Series) render(w io.Writer) {
	fmt.Fprintf(w, "-- series: %s (%s vs %s, %d points) --\n", s.Name, s.YLabel, s.XLabel, len(s.Y))
	if len(s.Y) == 0 {
		return
	}
	min, max := s.Y[0], s.Y[0]
	for _, y := range s.Y {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	fmt.Fprintf(w, "   min=%.3g max=%.3g median=%.3g\n", min, max, median(s.Y))
	fmt.Fprintf(w, "   %s\n", sparkline(s.Y, 80))
}

func median(ys []float64) float64 {
	s := append([]float64(nil), ys...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// sparkline bins ys into width buckets and renders bucket maxima with
// eight-level block characters — enough to see spikes and trends in a
// terminal.
func sparkline(ys []float64, width int) string {
	if len(ys) == 0 {
		return ""
	}
	if width > len(ys) {
		width = len(ys)
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	span := max - min
	var b strings.Builder
	for i := 0; i < width; i++ {
		lo := i * len(ys) / width
		hi := (i + 1) * len(ys) / width
		if hi <= lo {
			hi = lo + 1
		}
		bucket := ys[lo]
		for _, y := range ys[lo:hi] {
			if y > bucket {
				bucket = y
			}
		}
		lvl := 0
		if span > 0 {
			lvl = int((bucket - min) / span * float64(len(levels)-1))
		}
		b.WriteRune(levels[lvl])
	}
	return b.String()
}

// WriteCSV dumps every table and series of the report as CSV sections.
func (r *Report) WriteCSV(w io.Writer) error {
	for _, t := range r.Tables {
		fmt.Fprintf(w, "# table,%s,%s\n", r.ID, csvEscape(t.Title))
		fmt.Fprintln(w, strings.Join(mapSlice(t.Header, csvEscape), ","))
		for _, row := range t.Rows {
			fmt.Fprintln(w, strings.Join(mapSlice(row, csvEscape), ","))
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "# series,%s,%s\n", r.ID, csvEscape(s.Name))
		fmt.Fprintf(w, "%s,%s\n", csvEscape(s.XLabel), csvEscape(s.YLabel))
		for i := range s.X {
			fmt.Fprintf(w, "%g,%g\n", s.X[i], s.Y[i])
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func mapSlice(in []string, f func(string) string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = f(s)
	}
	return out
}

// seriesFromLatency converts a latency time series into a figure series in
// (seconds, microseconds).
func seriesFromLatency(name string, pts []sim.SeriesPoint) Series {
	s := Series{Name: name, XLabel: "time (s)", YLabel: "latency (us)"}
	for _, p := range pts {
		s.X = append(s.X, sim.Duration(p.At).Seconds())
		s.Y = append(s.Y, p.Latency.Microseconds())
	}
	return s
}

// seriesFromBandwidth converts bandwidth windows into a figure series.
func seriesFromBandwidth(name string, pts []sim.BWPoint) Series {
	s := Series{Name: name, XLabel: "time (s)", YLabel: "MB/s"}
	for _, p := range pts {
		s.X = append(s.X, sim.Duration(p.At).Seconds())
		s.Y = append(s.Y, p.MBps)
	}
	return s
}

// fmtDur renders a duration with 3 significant figures for tables.
func fmtDur(d sim.Duration) string { return d.String() }

// fmtMBps renders throughput.
func fmtMBps(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtBytes renders a byte count human-readably.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
