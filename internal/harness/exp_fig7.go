package harness

import (
	"fmt"

	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Impact of snapshot creation on write latency + validity CoW",
		Paper: "Figure 7 — brief latency spike (~up to 7x) right after each create while validity bitmap pages CoW, then back to baseline; ~196 pages copied per snapshot on 3 GB of 512 B blocks",
		Run:   runFig7,
	})
}

func runFig7(rc RunConfig) (*Report, error) {
	// Worst case per the paper: 512 B sectors so each write flips bits in
	// densely shared bitmap pages.
	preload := scaledBytes(rc, 1<<30) // paper: 3 GB
	overwrite := int(8 << 20)         // paper: 8 MB of sync 512 B overwrites
	if int64(overwrite) > preload/4 {
		overwrite = int(preload / 4) // keep tiny -scale runs within capacity
	}
	nc := expNand512(segmentsFor(expNand512(0), preload*3/2))
	f, err := newIoSnap(nc)
	if err != nil {
		return nil, err
	}

	// Phase 0: populate the validity maps with random 512 B writes.
	spec := workload.Spec{
		Kind: workload.Write, Pattern: workload.Random,
		BlockSize: 512, Threads: 2, QueueDepth: 16,
		TotalBytes: preload, Seed: 3, SubmitCost: 200 * sim.Nanosecond,
	}
	_, now, err := workload.Run(f, 0, spec, workload.Options{Scheduler: f.Scheduler()})
	if err != nil {
		return nil, fmt.Errorf("fig7 preload: %w", err)
	}
	rc.logf("fig7: preloaded %s, validity pages in use: %d", fmtBytes(preload), f.Stats().ValidityMemory/(4096))

	latSeries := Series{Name: "write latency", XLabel: "time (ms)", YLabel: "latency (us)"}
	cowSeries := Series{Name: "validity CoW copies", XLabel: "time (ms)", YLabel: "cumulative copies"}
	tbl := Table{
		Title:  "Per-phase write latency and CoW activity (512 B sync random overwrites)",
		Header: []string{"Phase", "Mean lat", "Max lat", "CoW copies", "CoW bytes"},
	}

	rng := sim.NewRNG(99)
	buf := make([]byte, 512)
	origin := now
	runPhase := func(name string) error {
		var sum, maxLat sim.Duration
		n := int64(0)
		startCopies := f.Stats().CoWPageCopies
		for written := 0; written < overwrite; written += 512 {
			f.Scheduler().RunUntil(now)
			lba := rng.Int63n(f.Sectors())
			done, err := f.Write(now, lba, buf)
			if err != nil {
				return fmt.Errorf("fig7 %s: %w", name, err)
			}
			lat := done.Sub(now)
			sum += lat
			if lat > maxLat {
				maxLat = lat
			}
			n++
			if n%4 == 0 {
				latSeries.X = append(latSeries.X, done.Sub(origin).Milliseconds())
				latSeries.Y = append(latSeries.Y, lat.Microseconds())
				cowSeries.X = append(cowSeries.X, done.Sub(origin).Milliseconds())
				cowSeries.Y = append(cowSeries.Y, float64(f.Stats().CoWPageCopies))
			}
			now = done
		}
		copies := f.Stats().CoWPageCopies - startCopies
		tbl.Rows = append(tbl.Rows, []string{
			name, fmtDur(sum / sim.Duration(n)), fmtDur(maxLat),
			fmt.Sprintf("%d", copies), fmtBytes(copies * 4096),
		})
		rc.logf("fig7: %s mean=%v max=%v cows=%d", name, sum/sim.Duration(n), maxLat, copies)
		return nil
	}

	if err := runPhase("baseline (no snapshot)"); err != nil {
		return nil, err
	}
	for i := 1; i <= 2; i++ {
		if _, d, err := f.CreateSnapshot(now); err != nil {
			return nil, err
		} else {
			now = d
		}
		if err := runPhase(fmt.Sprintf("after snapshot %d", i)); err != nil {
			return nil, err
		}
	}

	return &Report{
		ID:     "fig7",
		Title:  "Impact of snapshot creation",
		Paper:  "latency spikes briefly after each create (validity bitmap CoW), then returns to baseline; CoW count steps up once per snapshot",
		Tables: []Table{tbl},
		Series: []Series{latSeries, cowSeries},
		Notes: []string{
			fmt.Sprintf("%s of 512 B random preload (paper: 3 GB), then 8 MB sync 512 B overwrites per phase", fmtBytes(preload)),
		},
	}, nil
}
