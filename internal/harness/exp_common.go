package harness

import (
	"fmt"

	"iosnap/internal/ftl"
	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// expNand returns the experiment device geometry: 4 KB sectors, 4 MB
// segments, 16 channels, fingerprint-mode payloads, timing calibrated to
// the paper's card (Table 2 anchors).
func expNand(segments int) nand.Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 4096
	nc.PagesPerSegment = 1024
	nc.Segments = segments
	nc.StoreData = false
	return nc
}

// expNand512 is the 512 B-sector variant used by the worst-case CoW
// experiment (the paper formatted the device with 512 B sectors for Fig 7).
func expNand512(segments int) nand.Config {
	nc := expNand(segments)
	nc.SectorSize = 512
	nc.PagesPerSegment = 8192 // keep 4 MB segments
	return nc
}

// newVanilla builds a fresh vanilla FTL.
func newVanilla(nc nand.Config) (*ftl.FTL, error) {
	return ftl.New(ftl.DefaultConfig(nc), nil)
}

// newIoSnap builds a fresh ioSnap FTL.
func newIoSnap(nc nand.Config) (*iosnap.FTL, error) {
	return iosnap.New(iosnap.DefaultConfig(nc), nil)
}

// gb and mb convert sizes scaled by the run config.
func scaledBytes(rc RunConfig, base int64) int64 {
	v := int64(float64(base) * rc.scale())
	if v < 1<<20 {
		v = 1 << 20
	}
	return v
}

// segmentsFor sizes a device to hold want bytes of user data with ~35%
// headroom for over-provisioning and snapshot deltas.
func segmentsFor(nc nand.Config, want int64) int {
	segBytes := int64(nc.PagesPerSegment) * int64(nc.SectorSize)
	segs := int(want*27/20/segBytes) + 4
	if segs < 8 {
		segs = 8
	}
	return segs
}

// meanStd formats mean±std from samples.
func meanStd(samples []float64) string {
	m, sd := sim.MeanStddev(samples)
	return fmt.Sprintf("%.2f ± %.2f", m, sd)
}
