package harness

import (
	"bytes"
	"strings"
	"testing"

	"iosnap/internal/sim"
)

func TestRegistryCanonicalOrder(t *testing.T) {
	ids := IDs()
	if len(ids) < len(canonicalOrder) {
		t.Fatalf("registered %d experiments, canonical list has %d", len(ids), len(canonicalOrder))
	}
	for i, want := range canonicalOrder {
		if ids[i] != want {
			t.Fatalf("order[%d] = %q, want %q", i, ids[i], want)
		}
	}
	// Extensions (beyond the paper's artifacts) follow the canonical list.
	for _, id := range ids[len(canonicalOrder):] {
		if id == "" {
			t.Fatal("empty extension id")
		}
	}
	for _, id := range ids {
		e, ok := Lookup(id)
		if !ok || e.ID != id {
			t.Fatalf("Lookup(%q) failed", id)
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %q incompletely registered", id)
		}
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Fatal("Lookup of unknown id succeeded")
	}
}

func TestTableRendering(t *testing.T) {
	r := &Report{
		ID:    "x",
		Title: "demo",
		Tables: []Table{{
			Title:  "t",
			Header: []string{"A", "LongHeader"},
			Rows:   [][]string{{"aaaa", "b"}, {"c", "dd"}},
		}},
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== x — demo ==") {
		t.Fatalf("missing title: %s", out)
	}
	lines := strings.Split(out, "\n")
	var headerLine, sepLine string
	for i, l := range lines {
		if strings.HasPrefix(l, "A ") {
			headerLine = l
			sepLine = lines[i+1]
		}
	}
	if headerLine == "" {
		t.Fatalf("no header line in: %s", out)
	}
	// Alignment: separator must be at least as long as the header text.
	if len(sepLine) < len("A") {
		t.Fatalf("separator wrong: %q", sepLine)
	}
	if !strings.Contains(out, "aaaa") || !strings.Contains(out, "dd") {
		t.Fatal("rows missing")
	}
}

func TestSeriesRendering(t *testing.T) {
	s := Series{Name: "lat", XLabel: "t", YLabel: "us", X: []float64{0, 1, 2}, Y: []float64{1, 100, 1}}
	var buf bytes.Buffer
	s.render(&buf)
	out := buf.String()
	if !strings.Contains(out, "min=1") || !strings.Contains(out, "max=100") {
		t.Fatalf("summary wrong: %s", out)
	}
	// Empty series must not panic.
	e := Series{Name: "empty"}
	e.render(&buf)
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	flat := sparkline([]float64{5, 5, 5, 5}, 4)
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat series should render all-low: %q", flat)
		}
	}
	spike := sparkline([]float64{0, 0, 100, 0}, 4)
	if !strings.ContainsRune(spike, '█') {
		t.Fatalf("spike not visible: %q", spike)
	}
	// Width larger than data must clamp.
	if got := sparkline([]float64{1, 2}, 80); len([]rune(got)) != 2 {
		t.Fatalf("width not clamped: %d", len([]rune(got)))
	}
}

func TestCSVOutput(t *testing.T) {
	r := &Report{
		ID: "exp",
		Tables: []Table{{
			Title:  "has,comma",
			Header: []string{"a", "b"},
			Rows:   [][]string{{"1", "va\"l"}},
		}},
		Series: []Series{{Name: "s", XLabel: "x", YLabel: "y", X: []float64{1.5}, Y: []float64{2.5}}},
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Fatalf("comma not escaped: %s", out)
	}
	if !strings.Contains(out, `"va""l"`) {
		t.Fatalf("quote not escaped: %s", out)
	}
	if !strings.Contains(out, "1.5,2.5") {
		t.Fatalf("series row missing: %s", out)
	}
}

func TestWorstWindowMean(t *testing.T) {
	mk := func(times []int64, lats []int64) []sim.SeriesPoint {
		pts := make([]sim.SeriesPoint, len(times))
		for i := range times {
			pts[i] = sim.SeriesPoint{At: sim.Time(times[i]), Latency: sim.Duration(lats[i])}
		}
		return pts
	}
	if got := worstWindowMean(nil, 100); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	// 20 points 1 apart with a hot middle cluster; tail clipping removes
	// the last 5ms so build times in microseconds with a wide span.
	var times, lats []int64
	for i := 0; i < 200; i++ {
		times = append(times, int64(i)*int64(100*sim.Microsecond))
		l := int64(10)
		if i >= 50 && i < 70 {
			l = 1000
		}
		lats = append(lats, l)
	}
	w := worstWindowMean(mk(times, lats), sim.Duration(2*sim.Millisecond))
	if w < 500 || w > 1000 {
		t.Fatalf("worst window = %v, want the hot cluster's mean", w)
	}
}

func TestScaledBytesFloor(t *testing.T) {
	rc := RunConfig{Scale: 0.00001}
	if got := scaledBytes(rc, 1<<30); got != 1<<20 {
		t.Fatalf("scaledBytes floor = %d", got)
	}
	if got := scaledBytes(RunConfig{}, 100<<20); got != 100<<20 {
		t.Fatalf("zero scale should mean 1.0: %d", got)
	}
}

func TestSegmentsFor(t *testing.T) {
	nc := expNand(0)
	segs := segmentsFor(nc, 1<<30)
	capacity := int64(segs) * int64(nc.PagesPerSegment) * int64(nc.SectorSize)
	if capacity < (1<<30)*5/4 {
		t.Fatalf("segmentsFor left too little headroom: %d bytes for 1 GB", capacity)
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtBytes(512) != "512B" {
		t.Fatal(fmtBytes(512))
	}
	if fmtBytes(4096) != "4.00KB" {
		t.Fatal(fmtBytes(4096))
	}
	if fmtBytes(3<<20) != "3.00MB" {
		t.Fatal(fmtBytes(3 << 20))
	}
	if fmtBytes(2<<30) != "2.00GB" {
		t.Fatal(fmtBytes(2 << 30))
	}
	if fmtMBps(12.345) != "12.35" {
		t.Fatal(fmtMBps(12.345))
	}
}

func TestMedianAndSeriesHelpers(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	s := seriesFromLatency("x", []sim.SeriesPoint{{At: sim.Time(sim.Second), Latency: 5 * sim.Microsecond}})
	if s.X[0] != 1 || s.Y[0] != 5 {
		t.Fatalf("seriesFromLatency = %+v", s)
	}
	b := seriesFromBandwidth("y", []sim.BWPoint{{At: sim.Time(2 * sim.Second), MBps: 7}})
	if b.X[0] != 2 || b.Y[0] != 7 {
		t.Fatalf("seriesFromBandwidth = %+v", b)
	}
}
