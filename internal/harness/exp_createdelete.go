package harness

import (
	"fmt"

	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "createdelete",
		Title: "Snapshot create/delete latency vs data volume",
		Paper: "§6.2.1 — ~50 µs regardless of data on the log; one 4 KB note per operation",
		Run:   runCreateDelete,
	})
}

func runCreateDelete(rc RunConfig) (*Report, error) {
	sizes := []int64{4 << 20, 40 << 20, 400 << 20, 800 << 20}
	tbl := Table{
		Title:  "Snapshot operation latency vs data written before the operation",
		Header: []string{"Data on log", "Create", "Delete", "Metadata on log"},
	}
	for _, base := range sizes {
		size := scaledBytes(rc, base)
		nc := expNand(segmentsFor(expNand(0), size))
		f, err := newIoSnap(nc)
		if err != nil {
			return nil, err
		}
		spec := workload.Spec{
			Kind: workload.Write, Pattern: workload.Random,
			BlockSize: 4096, Threads: 2, QueueDepth: 16,
			TotalBytes: size, Seed: 7, SubmitCost: sim.Microsecond,
		}
		_, now, err := workload.Run(f, 0, spec, workload.Options{Scheduler: f.Scheduler()})
		if err != nil {
			return nil, fmt.Errorf("createdelete prep (%s): %w", fmtBytes(size), err)
		}
		snap, done, err := f.CreateSnapshot(now)
		if err != nil {
			return nil, err
		}
		createLat := done.Sub(now)
		now = done
		done, err = f.DeleteSnapshot(now, snap.ID)
		if err != nil {
			return nil, err
		}
		deleteLat := done.Sub(now)
		rc.logf("createdelete: %s -> create %v, delete %v", fmtBytes(size), createLat, deleteLat)
		tbl.Rows = append(tbl.Rows, []string{
			fmtBytes(size), fmtDur(createLat), fmtDur(deleteLat),
			fmtBytes(int64(f.SectorSize())),
		})
	}
	return &Report{
		ID:     "createdelete",
		Title:  "Snapshot create and delete cost",
		Paper:  "~50 µs and one 4 KB metadata block, independent of data volume",
		Tables: []Table{tbl},
	}, nil
}
