package harness

import (
	"fmt"

	"iosnap/internal/iosnap"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Snapshot activation latency vs data per snapshot",
		Paper: "Figure 8 — activation time grows with log size (constant scan per log) and with snapshot depth (reconstruction processes the whole lineage)",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Forward-map memory: active tree at create vs activated tree",
		Paper: "Table 3 — tree grows with data; the activated (bulk-loaded) tree is more compact than the organically grown active tree",
		Run:   runTable3,
	})
}

// prepFiveSnapshots writes perSnap bytes of random 4K data then creates a
// snapshot, five times, returning the FTL, the snapshots, and the time.
// It also records the active tree's memory footprint at each create (the
// paper's "size of tree at snapshot creation" column).
func prepFiveSnapshots(rc RunConfig, perSnap int64) (*iosnap.FTL, []*iosnap.Snapshot, []int64, sim.Time, error) {
	nc := expNand(segmentsFor(expNand(0), 5*perSnap))
	f, err := newIoSnap(nc)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	now := sim.Time(0)
	var snaps []*iosnap.Snapshot
	var activeAtCreate []int64
	for s := 0; s < 5; s++ {
		spec := workload.Spec{
			Kind: workload.Write, Pattern: workload.Random,
			BlockSize: 4096, Threads: 2, QueueDepth: 16,
			TotalBytes: perSnap, Seed: uint64(s + 1), SubmitCost: sim.Microsecond,
		}
		_, t, err := workload.Run(f, now, spec, workload.Options{Scheduler: f.Scheduler()})
		if err != nil {
			return nil, nil, nil, 0, fmt.Errorf("writing tranche %d: %w", s, err)
		}
		now = t
		snap, t2, err := f.CreateSnapshot(now)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		now = t2
		snaps = append(snaps, snap)
		activeAtCreate = append(activeAtCreate, f.ActiveMapMemory())
	}
	return f, snaps, activeAtCreate, now, nil
}

func runFig8(rc RunConfig) (*Report, error) {
	clusters := []int64{4 << 20, 40 << 20, 400 << 20, 800 << 20, 1600 << 20}
	tbl := Table{
		Title:  "Activation latency (ms) by data-per-snapshot and snapshot depth",
		Header: []string{"Data/snap", "Snap 1", "Snap 2", "Snap 3", "Snap 4", "Snap 5"},
	}
	series := Series{Name: "activation latency (deepest snapshot)", XLabel: "data per snapshot (MB)", YLabel: "latency (ms)"}
	for _, base := range clusters {
		perSnap := scaledBytes(rc, base)
		f, snaps, _, now, err := prepFiveSnapshots(rc, perSnap)
		if err != nil {
			return nil, err
		}
		row := []string{fmtBytes(perSnap)}
		var last sim.Duration
		for i, snap := range snaps {
			view, done, err := f.ActivateSync(now, snap.ID, ratelimit.WorkSleep{}, false)
			if err != nil {
				return nil, fmt.Errorf("fig8 activating snap %d: %w", i+1, err)
			}
			lat := done.Sub(now)
			now = done
			row = append(row, fmt.Sprintf("%.1f", lat.Milliseconds()))
			last = lat
			// Release the map so memory does not accumulate across columns.
			if _, err := view.Deactivate(now); err != nil {
				return nil, err
			}
		}
		rc.logf("fig8: %s/snap -> deepest activation %v", fmtBytes(perSnap), last)
		tbl.Rows = append(tbl.Rows, row)
		series.X = append(series.X, float64(perSnap)/(1<<20))
		series.Y = append(series.Y, last.Milliseconds())
	}
	return &Report{
		ID:     "fig8",
		Title:  "Snapshot activation latency",
		Paper:  "latency grows with total log size; within a cluster, deeper snapshots take longer (lineage reconstruction)",
		Tables: []Table{tbl},
		Series: []Series{series},
		Notes: []string{
			"five snapshots with equal data between; each column activates one snapshot (unthrottled)",
			"cluster sizes follow the paper's 4M..1.6G sweep, scaled by -scale",
		},
	}, nil
}

func runTable3(rc RunConfig) (*Report, error) {
	perSnap := scaledBytes(rc, 1600<<20) // paper: 1.6 GB per snapshot
	f, snaps, activeAtCreate, now, err := prepFiveSnapshots(rc, perSnap)
	if err != nil {
		return nil, err
	}
	tbl := Table{
		Title:  "Forward-map memory (MB)",
		Header: []string{"Snapshot", "Tree at snapshot creation", "Tree after activation", "Compaction"},
	}
	for i, snap := range snaps {
		view, done, err := f.ActivateSync(now, snap.ID, ratelimit.WorkSleep{}, false)
		if err != nil {
			return nil, err
		}
		now = done
		vb := view.MapMemory()
		ab := activeAtCreate[i]
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.2f", float64(ab)/(1<<20)),
			fmt.Sprintf("%.2f", float64(vb)/(1<<20)),
			fmt.Sprintf("%.2f×", float64(vb)/float64(ab)),
		})
		rc.logf("table3: snap %d at-create=%s activated=%s", i+1, fmtBytes(ab), fmtBytes(vb))
		if _, err := view.Deactivate(now); err != nil {
			return nil, err
		}
	}
	return &Report{
		ID:     "table3",
		Title:  "Memory overheads of snapshot activation",
		Paper:  "activated tree grows with snapshot data and is more compact than the equivalent active tree (paper: e.g. 14.44 MB vs 13.72 MB at snap 5)",
		Tables: []Table{tbl},
		Notes: []string{
			fmt.Sprintf("%s of random 4K writes between snapshots (paper: 1.6 GB)", fmtBytes(perSnap)),
			"the active tree column is the fragmented, organically grown tree; the activated column is bulk-loaded at activation",
		},
	}, nil
}
