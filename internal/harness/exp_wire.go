package harness

import (
	"fmt"
	"net"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/shard"
	"iosnap/internal/sim"
	"iosnap/internal/srv"
)

func init() {
	register(Experiment{
		ID:    "wire",
		Title: "Wire protocol v2: pipelined throughput vs serial v1 (wall clock)",
		Paper: "not a paper artifact — ROADMAP item 1: wall-clock load against the TCP daemon",
		Run:   runWire,
	})
}

// runWire is the one wall-clock experiment in the harness: everything else
// measures virtual device time, this one measures the real network stack —
// an in-process server on loopback, load-generator clients, identical
// geometry and op mix across rows, varying only protocol and pipeline
// depth.
func runWire(rc RunConfig) (*Report, error) {
	ops := int(4000 * rc.scale())
	if ops < 200 {
		ops = 200
	}
	rows := []struct {
		name  string
		depth int
		v1    bool
	}{
		{"serial v1", 1, true},
		{"pipelined depth-4", 4, false},
		{"pipelined depth-16", 16, false},
	}
	tbl := Table{
		Title:  fmt.Sprintf("Loopback TCP, 2 connections, %d ops/conn, 20%% writes 5%% snapshot ops", ops),
		Header: []string{"Protocol", "Ops/s", "Speedup vs serial"},
	}
	var base float64
	var last srv.ServerStats
	for _, row := range rows {
		// Each row gets a fresh service and server: rows must differ only
		// in protocol and depth, not in how full (and GC-pressured) the
		// previous rows left the device.
		rep, st, err := wireRow(srv.LoadConfig{
			Conns: 2, Depth: row.depth, Ops: ops,
			WritePct: 20, SnapPct: 5, Seed: 11, V1: row.v1,
		})
		if err != nil {
			return nil, fmt.Errorf("wire %s: %w", row.name, err)
		}
		last = st
		ops := rep.OpsPerSec()
		if base == 0 {
			base = ops
		}
		rc.logf("wire: %s -> %.0f ops/s (proto v%d)", row.name, ops, rep.Proto)
		tbl.Rows = append(tbl.Rows, []string{
			row.name, fmt.Sprintf("%.0f", ops), fmt.Sprintf("%.2fx", ops/base),
		})
	}

	// View-cache effectiveness during the depth-16 row's snap-read loop.
	st := last
	total := st.ViewCacheHits + st.ViewCacheMisses
	hitrate := 0.0
	if total > 0 {
		hitrate = float64(st.ViewCacheHits) / float64(total)
	}
	var acts int64
	for _, p := range st.PerShard {
		acts += p.SnapshotActivations
	}
	cache := Table{
		Title:  "Server-side snapshot-view cache during the depth-16 row",
		Header: []string{"Lookups", "Hit rate", "Activations", "Invalidations"},
		Rows: [][]string{{
			fmt.Sprintf("%d", total), fmt.Sprintf("%.3f", hitrate),
			fmt.Sprintf("%d", acts), fmt.Sprintf("%d", st.ViewCacheInvalidations),
		}},
	}

	return &Report{
		ID:     "wire",
		Title:  "Pipelined wire protocol throughput",
		Paper:  "wall-clock: v2 tagging should beat one-op-per-RTT v1 by >=3x at depth 16",
		Tables: []Table{tbl, cache},
		Notes: []string{
			"absolute ops/s depend on the host; the speedup column is the result",
		},
	}, nil
}

// wireRow runs one load row against a fresh service and server, fetching
// the server stats before teardown.
func wireRow(cfg srv.LoadConfig) (srv.LoadReport, srv.ServerStats, error) {
	svc, err := shard.NewService(wireServiceConfig())
	if err != nil {
		return srv.LoadReport{}, srv.ServerStats{}, err
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return srv.LoadReport{}, srv.ServerStats{}, err
	}
	s := srv.NewServer(svc, ln)
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()
	defer func() { s.Shutdown(); <-served }()
	cfg.Addr = ln.Addr().String()

	rep, err := srv.RunLoad(cfg)
	if err != nil {
		return rep, srv.ServerStats{}, err
	}
	c, err := srv.Dial(cfg.Addr)
	if err != nil {
		return rep, srv.ServerStats{}, err
	}
	defer c.Close()
	st, err := c.Stats()
	return rep, st, err
}

// wireServiceConfig is a small 4-shard geometry sized for wall-clock load
// (virtual device time is irrelevant here; request count is what matters).
func wireServiceConfig() shard.Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 32
	nc.Segments = 128
	nc.Channels = 4
	nc.StoreData = true
	base := iosnap.DefaultConfig(nc)
	base.UserSectors = 1536
	base.BitmapPageBits = 64
	base.GCWindow = 10 * sim.Millisecond
	base.CoWPageCost = 10 * sim.Microsecond
	return shard.Config{Base: base, Shards: 4, StripeSectors: 16}
}
