package harness

import (
	"fmt"

	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Random-read latency during snapshot activation, with rate limiting",
		Paper: "Figure 9 — unthrottled activation spikes reads ~10x for ~0.3 s; rate limiting cuts the impact to ~2x at the cost of ~10x longer activation",
		Run:   runFig9,
	})
}

func runFig9(rc RunConfig) (*Report, error) {
	preload := scaledBytes(rc, 1<<30) // paper: 1 GB over two snapshots
	// Smaller segments (1 MB) keep the activation's per-quantum device
	// occupancy short enough for rate limiting to bite.
	nc := expNand(0)
	nc.PagesPerSegment = 256
	nc.Segments = segmentsFor(nc, preload)

	type config struct {
		name  string
		limit ratelimit.WorkSleep
	}
	configs := []config{
		{"no rate limiting", ratelimit.WorkSleep{}},
		{"moderate (work 100us / sleep 1ms)", ratelimit.WorkSleep{Work: 100 * sim.Microsecond, Sleep: sim.Millisecond}},
		{"aggressive (work 100us / sleep 4ms)", ratelimit.WorkSleep{Work: 100 * sim.Microsecond, Sleep: 4 * sim.Millisecond}},
	}

	tbl := Table{
		Title:  "4K random read latency around a snapshot activation",
		Header: []string{"Rate limit", "Baseline mean", "During mean", "During max", "Impact", "Activation time"},
	}
	var allSeries []Series
	for _, cfg := range configs {
		f, err := newIoSnap(nc)
		if err != nil {
			return nil, err
		}
		// Two snapshots, half the data each.
		now := sim.Time(0)
		for s := 0; s < 2; s++ {
			spec := workload.Spec{
				Kind: workload.Write, Pattern: workload.Random,
				BlockSize: 4096, Threads: 2, QueueDepth: 16,
				TotalBytes: preload / 2, Seed: uint64(s + 1), SubmitCost: sim.Microsecond,
			}
			_, t, err := workload.Run(f, now, spec, workload.Options{Scheduler: f.Scheduler()})
			if err != nil {
				return nil, fmt.Errorf("fig9 preload: %w", err)
			}
			now = t
			if _, t2, err := f.CreateSnapshot(now); err != nil {
				return nil, err
			} else {
				now = t2
			}
		}
		snaps := f.Snapshots()
		first := snaps[0]

		readSpec := workload.Spec{
			Kind: workload.Read, Pattern: workload.Random,
			BlockSize: 4096, Threads: 1, QueueDepth: 1, Seed: 42,
		}
		origin := now
		series := Series{Name: "read latency (" + cfg.name + ")", XLabel: "time (ms)", YLabel: "latency (us)"}

		// Phase A: 500 ms of baseline reads.
		baseRec := sim.NewLatencyRecorder(0)
		specA := readSpec
		specA.MaxTime = now.Add(sim.Duration(500 * sim.Millisecond))
		resA, t, err := workload.Run(f, now, specA, workload.Options{Scheduler: f.Scheduler(), Latency: baseRec})
		if err != nil {
			return nil, err
		}
		now = t
		_ = resA

		// Kick off the activation in the background.
		act, t2, err := f.Activate(now, first.ID, cfg.limit, false)
		if err != nil {
			return nil, err
		}
		now = t2
		actStart := now

		// Phase B: reads while the activation runs, in 50 ms slices.
		durRec := sim.NewLatencyRecorder(4)
		for !act.Ready() {
			specB := readSpec
			specB.MaxTime = now.Add(sim.Duration(50 * sim.Millisecond))
			specB.Seed = uint64(now)
			_, t, err := workload.Run(f, now, specB, workload.Options{Scheduler: f.Scheduler(), Latency: durRec})
			if err != nil {
				return nil, err
			}
			if t <= now {
				t = now.Add(50 * sim.Millisecond)
				f.Scheduler().RunUntil(t)
			}
			now = t
		}
		actDur := act.CompletedAt().Sub(actStart)

		for _, p := range durRec.Series() {
			series.X = append(series.X, p.At.Sub(origin).Milliseconds())
			series.Y = append(series.Y, p.Latency.Microseconds())
		}
		allSeries = append(allSeries, series)

		impact := float64(durRec.Max()) / float64(baseRec.Mean())
		tbl.Rows = append(tbl.Rows, []string{
			cfg.name,
			fmtDur(baseRec.Mean()),
			fmtDur(durRec.Mean()),
			fmtDur(durRec.Max()),
			fmt.Sprintf("%.1fx worst", impact),
			fmtDur(actDur),
		})
		rc.logf("fig9: %-34s base=%v during(mean=%v max=%v) act=%v",
			cfg.name, baseRec.Mean(), durRec.Mean(), durRec.Max(), actDur)
	}
	return &Report{
		ID:     "fig9",
		Title:  "Random read performance during activation",
		Paper:  "rate limiting trades activation time for foreground latency (10x spikes -> ~2x)",
		Tables: []Table{tbl},
		Series: allSeries,
		Notes: []string{
			fmt.Sprintf("%s over two snapshots; the first snapshot is activated ~0.5 s into a 4K random-read workload", fmtBytes(preload)),
			"rate-limit knob values recalibrated for the simulator; see EXPERIMENTS.md",
		},
	}, nil
}
