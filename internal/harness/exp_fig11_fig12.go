package harness

import (
	"fmt"

	"iosnap/internal/blockdev"
	"iosnap/internal/cowsim"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Write latency across snapshot creates: Btrfs-like vs ioSnap",
		Paper: "Figure 11 — the disk-optimized baseline degrades up to 3x around each create; ioSnap stays within ~5% of its baseline",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Sustained bandwidth with periodic snapshots: Btrfs-like vs ioSnap",
		Paper: "Figure 12 — the baseline's bandwidth recovery slows as snapshots accumulate (declining envelope); ioSnap delivers flat bandwidth",
		Run:   runFig12,
	})
}

// snapper wraps the two systems' snapshot-create entry points.
type snapSystem struct {
	name string
	dev  blockdev.Device
	sch  *sim.Scheduler
	snap func(now sim.Time) (sim.Time, error)
	// warmed reports whether the device has reached cleaner steady state;
	// nil means no warm-up is needed.
	warmed func() bool
}

func fig11Systems(rc RunConfig, preload int64) ([]*snapSystem, error) {
	// ioSnap on the NAND simulator.
	nc := expNand(segmentsFor(expNand(0), preload*3))
	iof, err := newIoSnap(nc)
	if err != nil {
		return nil, err
	}
	// Btrfs-like store with matching logical size.
	ccfg := cowsim.DefaultConfig(iof.Sectors())
	cs, err := cowsim.New(ccfg)
	if err != nil {
		return nil, err
	}
	return []*snapSystem{
		{name: "Btrfs-like", dev: cs, sch: nil, snap: func(now sim.Time) (sim.Time, error) {
			_, t, err := cs.CreateSnapshot(now)
			return t, err
		}},
		{name: "ioSnap", dev: iof, sch: iof.Scheduler(), snap: func(now sim.Time) (sim.Time, error) {
			_, t, err := iof.CreateSnapshot(now)
			return t, err
		}},
	}, nil
}

func runFig11(rc RunConfig) (*Report, error) {
	preload := scaledBytes(rc, 2<<30) // paper: 8 GB sequential preload
	interval := sim.Duration(2 * sim.Second)
	const nSnaps = 4

	systems, err := fig11Systems(rc, preload)
	if err != nil {
		return nil, err
	}
	tbl := Table{
		Title:  "Sync 4K random write latency around snapshot creates",
		Header: []string{"System", "Baseline mean", "Post-create mean", "Between-creates mean", "Post-create p99"},
	}
	var allSeries []Series
	for _, sys := range systems {
		// Preload.
		now, err := workload.Fill(sys.dev, 0, 256<<10, 0, preload/int64(sys.dev.SectorSize()), sys.sch)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s preload: %w", sys.name, err)
		}
		origin := now
		// Churn a subset of the preloaded region sized so the sync write
		// stream re-copies ("re-exclusivizes") the shared extents within
		// one interval — the regime where Btrfs-like latency spikes after
		// each create and then recovers, as the paper plots.
		region := preload / int64(sys.dev.SectorSize()) / 8
		if region > 16384 {
			region = 16384 // keep the working set coverable per interval
		}

		series := Series{Name: "write latency (" + sys.name + ")", XLabel: "time (s)", YLabel: "latency (us)"}
		var snapTimes []sim.Time
		nextSnap := now.Add(interval)
		snapsTaken := 0
		spec := workload.Spec{
			Kind: workload.Write, Pattern: workload.Random,
			BlockSize: 4096, Threads: 1, QueueDepth: 1,
			RangeHi: region, Seed: 5,
			MaxTime: now.Add(interval * sim.Duration(nSnaps+1)),
		}
		rec := sim.NewLatencyRecorder(4)
		_, _, err = workload.Run(sys.dev, now, spec, workload.Options{
			Scheduler: sys.sch,
			Latency:   rec,
			BetweenOps: func(t sim.Time) sim.Time {
				if t >= nextSnap && snapsTaken < nSnaps {
					t2, err := sys.snap(t)
					if err == nil {
						t = t2
					}
					snapTimes = append(snapTimes, t)
					nextSnap = t.Add(interval)
					snapsTaken++
				}
				return t
			},
		})
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", sys.name, err)
		}
		// Classify samples: before the first create = baseline; within the
		// half-interval after any create = post; the rest = steady.
		baseRec := sim.NewLatencyRecorder(0)
		postRec := sim.NewLatencyRecorder(0)
		steadyRec := sim.NewLatencyRecorder(0)
		for _, p := range rec.Series() {
			series.X = append(series.X, p.At.Sub(origin).Seconds())
			series.Y = append(series.Y, p.Latency.Microseconds())
			if len(snapTimes) == 0 || p.At < snapTimes[0] {
				baseRec.Record(p.At, p.Latency)
				continue
			}
			inPost := false
			for _, st := range snapTimes {
				if d := p.At.Sub(st); d >= 0 && d < interval/2 {
					inPost = true
					break
				}
			}
			if inPost {
				postRec.Record(p.At, p.Latency)
			} else {
				steadyRec.Record(p.At, p.Latency)
			}
		}
		postRatio := float64(postRec.Mean()) / float64(baseRec.Mean())
		steadyRatio := float64(steadyRec.Mean()) / float64(baseRec.Mean())
		tbl.Rows = append(tbl.Rows, []string{
			sys.name,
			fmtDur(baseRec.Mean()),
			fmt.Sprintf("%v (%.2fx)", postRec.Mean(), postRatio),
			fmt.Sprintf("%v (%.2fx)", steadyRec.Mean(), steadyRatio),
			fmtDur(postRec.Percentile(99)),
		})
		allSeries = append(allSeries, series)
		rc.logf("fig11: %-10s base=%v post=%.2fx steady=%.2fx snaps=%d",
			sys.name, baseRec.Mean(), postRatio, steadyRatio, snapsTaken)
	}
	return &Report{
		ID:     "fig11",
		Title:  "Foreground write latency upon snapshot creation",
		Paper:  "baseline-relative: Btrfs-like degrades ~3x around creates, ioSnap stays near its baseline",
		Tables: []Table{tbl},
		Series: allSeries,
		Notes: []string{
			fmt.Sprintf("%s preload, snapshot every %v during sync 4K random writes", fmtBytes(preload), interval),
			"absolute latencies differ between architectures; compare each system with its own baseline (paper §6.4)",
		},
	}, nil
}

func runFig12(rc RunConfig) (*Report, error) {
	region := scaledBytes(rc, 512<<20) // churned region (paper: 200 GB preload)
	interval := sim.Duration(2 * sim.Second)
	const nIntervals = 8

	// ioSnap device sized for pinned deltas: each snapshot pins up to the
	// churn region, so leave generous headroom, like the paper's 200 GB
	// working set on a 1.2 TB card.
	nc := expNand(segmentsFor(expNand(0), region*24))
	iof, err := newIoSnap(nc)
	if err != nil {
		return nil, err
	}
	ccfg := cowsim.DefaultConfig(iof.Sectors())
	// Size the metadata cache so refcount misses begin only after a few
	// snapshots, independent of -scale (the paper's gradual decline).
	extents := region / int64(ccfg.SectorSize)
	if c := 4 * extents / ccfg.RefsPerMetaPage; c > ccfg.MetaCachePages {
		ccfg.MetaCachePages = c
	}
	cs, err := cowsim.New(ccfg)
	if err != nil {
		return nil, err
	}
	systems := []*snapSystem{
		{name: "Btrfs-like", dev: cs, sch: nil, snap: func(now sim.Time) (sim.Time, error) {
			_, t, err := cs.CreateSnapshot(now)
			return t, err
		}},
		{name: "ioSnap", dev: iof, sch: iof.Scheduler(), snap: func(now sim.Time) (sim.Time, error) {
			_, t, err := iof.CreateSnapshot(now)
			return t, err
		}, warmed: func() bool { return iof.FreeSegments() <= iof.Config().ReserveSegments*2 }},
	}

	tbl := Table{
		Title:  "Sustained async 4K random write bandwidth with a snapshot every interval",
		Header: []string{"System", "After 1st snapshot MB/s", "Final MB/s", "Decline"},
	}
	var allSeries []Series
	for _, sys := range systems {
		sectors := region / int64(sys.dev.SectorSize())
		now, err := workload.Fill(sys.dev, 0, 256<<10, 0, sectors, sys.sch)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s preload: %w", sys.name, err)
		}
		// Age the log until the cleaner reaches steady state, so the run
		// measures snapshot effects rather than the fresh-device honeymoon.
		for sys.warmed != nil && !sys.warmed() {
			warm := workload.Spec{
				Kind: workload.Write, Pattern: workload.Random,
				BlockSize: 4096, Threads: 2, QueueDepth: 16,
				RangeHi: sectors, Seed: uint64(now) | 1, SubmitCost: sim.Microsecond,
				MaxOps: 65536,
			}
			_, t, err := workload.Run(sys.dev, now, warm, workload.Options{Scheduler: sys.sch})
			if err != nil {
				return nil, fmt.Errorf("fig12 %s warm-up: %w", sys.name, err)
			}
			now = t
		}
		bw := sim.NewBandwidthWindow(250 * sim.Millisecond)
		measureStart := now
		nextSnap := now.Add(interval)
		snaps := 0
		spec := workload.Spec{
			Kind: workload.Write, Pattern: workload.Random,
			BlockSize: 4096, Threads: 2, QueueDepth: 16,
			RangeHi: sectors, Seed: 8, SubmitCost: sim.Microsecond,
			MaxTime: now.Add(interval * nIntervals),
		}
		_, _, err = workload.Run(sys.dev, now, spec, workload.Options{
			Scheduler: sys.sch,
			Bandwidth: bw,
			BetweenOps: func(t sim.Time) sim.Time {
				if t >= nextSnap {
					t2, err := sys.snap(t)
					if err == nil {
						t = t2
					}
					nextSnap = t.Add(interval)
					snaps++
				}
				return t
			},
		})
		if err != nil {
			return nil, fmt.Errorf("fig12 %s: %w", sys.name, err)
		}
		pts := bw.Points()
		if len(pts) < 8 {
			return nil, fmt.Errorf("fig12 %s: only %d bandwidth points", sys.name, len(pts))
		}
		// Compare the second interval (after the first snapshot's hit has
		// been absorbed) with the final 15% of the run.
		var first, last []float64
		for i, p := range pts {
			d := p.At.Sub(measureStart)
			if d >= interval && d < 2*interval {
				first = append(first, p.MBps)
			}
			if i >= len(pts)*85/100 {
				last = append(last, p.MBps)
			}
		}
		fm, _ := sim.MeanStddev(first)
		lm, _ := sim.MeanStddev(last)
		decline := (fm - lm) / fm * 100
		tbl.Rows = append(tbl.Rows, []string{
			sys.name, fmtMBps(fm), fmtMBps(lm), fmt.Sprintf("%.1f%%", decline),
		})
		allSeries = append(allSeries, seriesFromBandwidth("bandwidth ("+sys.name+")", pts))
		rc.logf("fig12: %-10s first=%.0f last=%.0f MB/s snaps=%d", sys.name, fm, lm, snaps)
	}
	return &Report{
		ID:     "fig12",
		Title:  "Impact of snapshots on sustained bandwidth",
		Paper:  "Btrfs-like bandwidth declines as snapshots accumulate; ioSnap stays flat",
		Tables: []Table{tbl},
		Series: allSeries,
		Notes: []string{
			fmt.Sprintf("%s churn region, snapshot every %v (paper: 200 GB preload, every 15 s)", fmtBytes(region), interval),
		},
	}, nil
}
