// Package faultinject builds deterministic, seed-driven fault plans for the
// simulated NAND device. A Plan implements nand.FaultHook and is armed on a
// device with Arm; from then on it counts matching operations and fires its
// rules: aborting an operation with an injected error, corrupting the OOB
// header of a page as it is programmed (a torn log note), or cutting power so
// that every subsequent operation fails until the harness "restores power"
// and runs crash recovery.
//
// Plans are reproducible by construction: rule triggers are either exact
// operation counts or probabilities drawn from a sim.RNG seeded explicitly,
// and the same plan against the same workload fires the same faults at the
// same operations on every run. This is what lets the torture harness replay
// a failing seed exactly.
package faultinject

import (
	"errors"
	"fmt"
	"strings"

	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// ErrCrashed is returned for every device operation after a plan cuts power.
var ErrCrashed = errors.New("faultinject: device lost power")

// AnyOp matches every device operation in a Rule.
const AnyOp nand.Op = -1

// AnySeg matches every segment in a Rule.
const AnySeg = -1

// Kind selects what a rule does when it fires.
type Kind int

const (
	// KindError aborts the matching operation with the rule's error.
	KindError Kind = iota
	// KindCrash cuts power: the matching operation and all later ones fail
	// with ErrCrashed until the harness recovers the device.
	KindCrash
	// KindTornOOB lets the matching program proceed but corrupts its OOB
	// header bytes and then cuts power — the torn-write-at-the-log-tail
	// crash artifact. (A torn header is only ever observable after power
	// loss: while the host stays up its RAM state is authoritative.)
	KindTornOOB
	// KindTransient injects retryable failures: a matching (op, page) target
	// fails its first Times attempts with the rule's error (default
	// nand.ErrTransient) and then succeeds — the distinction a retry policy
	// exists to exploit. Count-based rules put the AfterN-th distinct
	// matching target into a transient episode; with Prob > 0 each new
	// target independently enters an episode with that probability.
	KindTransient
	// KindCorruptData flips payload bits (seeded, deterministic) on matching
	// read or program targets instead of failing the operation — the fault
	// that exercises checksum detection end to end. Episode semantics match
	// KindTransient: the AfterN-th distinct target (or, with Prob > 0, each
	// new target independently) corrupts its first Times attempts. A
	// corrupted READ hands the host damaged bytes for that one transfer (the
	// device's integrity check turns it into nand.ErrCorruptData and a
	// re-read clears it); a corrupted PROGRAM stores damaged bytes behind an
	// intact fingerprint, so every later read of the page detects it until
	// the page is rewritten.
	KindCorruptData
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindCrash:
		return "crash"
	case KindTornOOB:
		return "torn-oob"
	case KindTransient:
		return "transient"
	case KindCorruptData:
		return "corrupt-data"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rule is one fault trigger. The zero value of the filter fields is
// permissive where that reads naturally (Seg 0 would silently mean "segment
// 0", so use AnySeg explicitly; NewPlan validates this footgun away by
// treating AfterN==0 && Prob==0 as AfterN==1).
type Rule struct {
	Name string // label used in the fired-event log; defaults to the kind

	Kind Kind

	// Matching for KindError / KindCrash (consulted in BeforeOp):
	Op  nand.Op // operation to match; AnyOp matches all
	Seg int     // segment filter; AnySeg matches all

	// Matching for KindTornOOB — and for KindCrash rules that should cut
	// power right AFTER a specific kind of header lands (both are consulted
	// as headers are programmed): only programs of this header type match;
	// 0 = any. A KindCrash rule with HeaderType set lets the program that
	// triggered it complete intact — the crash is observed by the next
	// operation — which models power dying between two appends.
	HeaderType header.Type

	// Trigger: the AfterN-th matching call (1-based), or — when Prob > 0 —
	// each matching call independently with probability Prob drawn from the
	// plan's seeded RNG. Count-based rules fire once; probabilistic rules
	// stay armed.
	AfterN int64
	Prob   float64

	// Times is how many consecutive attempts a KindTransient episode fails
	// before the target recovers (default 1).
	Times int64

	// Err is the error injected by KindError (default nand.ErrDeviceFailed)
	// or KindTransient (default nand.ErrTransient).
	Err error

	// CrashAfter makes a KindError rule also cut power after injecting its
	// error (the failure took the device down with it).
	CrashAfter bool
}

// Fired records one rule firing, for reports and tests.
type Fired struct {
	Rule  string
	Op    nand.Op
	Addr  nand.PageAddr
	Count int64 // the matching-operation count at which the rule fired
}

func (f Fired) String() string {
	return fmt.Sprintf("%s@%s#%d(page %d)", f.Rule, f.Op, f.Count, f.Addr)
}

type ruleState struct {
	Rule
	matched int64
	spent   bool
	trans   map[transKey]*transState // KindTransient per-target episodes
}

// transKey identifies a transient-fault target: retrying the same operation
// at the same page consumes the episode; other targets are independent.
type transKey struct {
	op   nand.Op
	addr nand.PageAddr
}

type transState struct {
	remaining int64 // failures still to inject; 0 = target behaves normally
}

// Plan is a deterministic schedule of faults against one device. It
// implements nand.FaultHook. A Plan is not safe for concurrent use, matching
// the single-threaded simulation.
type Plan struct {
	rng     *sim.RNG
	seed    uint64 // also salts KindCorruptData's deterministic bit flips
	rules   []*ruleState
	pps     int // pages per segment of the armed device (for Seg filters)
	crashed bool
	fired   []Fired
}

// NewPlan builds a plan over the given rules. seed drives probabilistic
// rules; plans with only count-based rules ignore it.
func NewPlan(seed uint64, rules ...Rule) *Plan {
	p := &Plan{rng: sim.NewRNG(seed), seed: seed}
	for _, r := range rules {
		if r.Err == nil {
			if r.Kind == KindTransient {
				r.Err = nand.ErrTransient
			} else {
				r.Err = nand.ErrDeviceFailed
			}
		}
		if r.Name == "" {
			r.Name = r.Kind.String()
		}
		if r.AfterN <= 0 && r.Prob == 0 {
			r.AfterN = 1
		}
		if r.Times <= 0 {
			r.Times = 1
		}
		rs := &ruleState{Rule: r}
		if r.Kind == KindTransient || r.Kind == KindCorruptData {
			rs.trans = make(map[transKey]*transState)
		}
		p.rules = append(p.rules, rs)
	}
	return p
}

// Arm installs the plan as dev's fault hook and records the geometry its
// segment filters need.
func (p *Plan) Arm(dev *nand.Device) {
	p.pps = dev.Config().PagesPerSegment
	dev.SetFaultHook(p)
}

// Disarm removes the plan from dev if it is the installed hook. The torture
// harness calls this to "restore power" before crash recovery.
func (p *Plan) Disarm(dev *nand.Device) {
	if dev.FaultHook() == p {
		dev.SetFaultHook(nil)
	}
}

// Crashed reports whether a crash rule has fired.
func (p *Plan) Crashed() bool { return p.crashed }

// Fired returns the log of rule firings, oldest first.
func (p *Plan) Fired() []Fired { return append([]Fired(nil), p.fired...) }

// String summarizes the fired events ("-" when none fired yet).
func (p *Plan) String() string {
	if len(p.fired) == 0 {
		return "-"
	}
	parts := make([]string, len(p.fired))
	for i, f := range p.fired {
		parts[i] = f.String()
	}
	return strings.Join(parts, ", ")
}

// triggers advances the rule's match count and reports whether it fires.
func (p *Plan) triggers(r *ruleState) bool {
	r.matched++
	if r.Prob > 0 {
		return p.rng.Float64() < r.Prob
	}
	if r.matched == r.AfterN {
		r.spent = true
		return true
	}
	return false
}

func (p *Plan) segOf(addr nand.PageAddr) int {
	if p.pps <= 0 {
		return 0
	}
	return int(addr) / p.pps
}

// BeforeOp implements nand.FaultHook.
func (p *Plan) BeforeOp(op nand.Op, addr nand.PageAddr) error {
	if p.crashed {
		return ErrCrashed
	}
	for _, r := range p.rules {
		if r.spent || r.Kind == KindTornOOB || r.Kind == KindCorruptData {
			continue // payload corruption triggers in CorruptData, not here
		}
		if r.Kind == KindCrash && r.HeaderType != 0 {
			continue // header-matched crashes trigger in MutateOOB
		}
		if r.Op != AnyOp && r.Op != op {
			continue
		}
		if r.Seg != AnySeg && r.Seg != p.segOf(addr) {
			continue
		}
		if r.Kind == KindTransient {
			if err := p.transientFault(r, op, addr); err != nil {
				return err
			}
			continue
		}
		if !p.triggers(r) {
			continue
		}
		p.fired = append(p.fired, Fired{Rule: r.Name, Op: op, Addr: addr, Count: r.matched})
		switch r.Kind {
		case KindCrash:
			p.crashed = true
			return ErrCrashed
		default: // KindError
			if r.CrashAfter {
				p.crashed = true
			}
			return r.Err
		}
	}
	return nil
}

// transientFault runs one KindTransient rule against a matching operation:
// the first attempt at a new target decides (by count or probability)
// whether the target enters an episode; attempts during an episode fail and
// consume it. Determinism holds because targets are keyed, never iterated.
func (p *Plan) transientFault(r *ruleState, op nand.Op, addr nand.PageAddr) error {
	key := transKey{op: op, addr: addr}
	st, seen := r.trans[key]
	if !seen {
		st = &transState{}
		r.trans[key] = st
		r.matched++
		if r.Prob > 0 {
			if p.rng.Float64() < r.Prob {
				st.remaining = r.Times
			}
		} else if r.matched == r.AfterN {
			st.remaining = r.Times
		}
	}
	if st.remaining <= 0 {
		return nil
	}
	st.remaining--
	p.fired = append(p.fired, Fired{Rule: r.Name, Op: op, Addr: addr, Count: r.matched})
	return r.Err
}

// CorruptData implements nand.DataCorrupter: KindCorruptData rules damage
// the payload of matching read/program targets with seeded, deterministic
// bit flips. Episode bookkeeping mirrors transientFault — the first attempt
// at a new target decides (by count or probability) whether it enters an
// episode; attempts during an episode corrupt the payload and consume it.
func (p *Plan) CorruptData(op nand.Op, addr nand.PageAddr, data []byte) []byte {
	if p.crashed || len(data) == 0 {
		return data
	}
	for _, r := range p.rules {
		if r.Kind != KindCorruptData {
			continue
		}
		if r.Op != AnyOp && r.Op != op {
			continue
		}
		if r.Seg != AnySeg && r.Seg != p.segOf(addr) {
			continue
		}
		key := transKey{op: op, addr: addr}
		st, seen := r.trans[key]
		if !seen {
			st = &transState{}
			r.trans[key] = st
			r.matched++
			if r.Prob > 0 {
				if p.rng.Float64() < r.Prob {
					st.remaining = r.Times
				}
			} else if r.matched == r.AfterN {
				st.remaining = r.Times
			}
		}
		if st.remaining <= 0 {
			continue
		}
		st.remaining--
		p.fired = append(p.fired, Fired{Rule: r.Name, Op: op, Addr: addr, Count: r.matched})
		return flipBits(p.seed, uint64(addr), uint64(r.matched), uint64(st.remaining), data)
	}
	return data
}

// flipBits returns a copy of data with 1–3 bits flipped at positions derived
// deterministically from (seed, addr, matched, rem): the same plan against
// the same workload damages the same bits on every run, so a failing seed
// replays exactly.
func flipBits(seed, addr, matched, rem uint64, data []byte) []byte {
	out := append([]byte(nil), data...)
	h := seed ^ addr*0x9E3779B97F4A7C15 ^ matched<<32 ^ rem
	flips := 1 + int(h>>61)%3
	for i := 0; i < flips; i++ {
		// splitmix64-style finalizer: every flip lands at an independent bit.
		h += 0x9E3779B97F4A7C15
		z := h
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		z ^= z >> 31
		bit := z % uint64(len(out)*8)
		out[bit/8] ^= 1 << (bit % 8)
	}
	return out
}

// MutateOOB implements nand.FaultHook: KindTornOOB rules corrupt matching
// headers and cut power; header-matched KindCrash rules cut power after the
// matching header lands intact.
func (p *Plan) MutateOOB(addr nand.PageAddr, oob []byte) []byte {
	for _, r := range p.rules {
		if r.spent || r.Kind != KindCrash || r.HeaderType == 0 {
			continue
		}
		if r.Seg != AnySeg && r.Seg != p.segOf(addr) {
			continue
		}
		if h, err := header.Unmarshal(oob); err != nil || h.Type != r.HeaderType {
			continue
		}
		if !p.triggers(r) {
			continue
		}
		p.fired = append(p.fired, Fired{Rule: r.Name, Op: nand.OpProgram, Addr: addr, Count: r.matched})
		p.crashed = true
		return oob // this header lands intact; the NEXT operation sees the crash
	}
	for _, r := range p.rules {
		if r.spent || r.Kind != KindTornOOB {
			continue
		}
		if r.Seg != AnySeg && r.Seg != p.segOf(addr) {
			continue
		}
		if r.HeaderType != 0 {
			h, err := header.Unmarshal(oob)
			if err != nil || h.Type != r.HeaderType {
				continue
			}
		}
		if !p.triggers(r) {
			continue
		}
		p.fired = append(p.fired, Fired{Rule: r.Name, Op: nand.OpProgram, Addr: addr, Count: r.matched})
		p.crashed = true
		torn := append([]byte(nil), oob...)
		if len(torn) == 0 {
			torn = []byte{0xFF}
		}
		torn[0] ^= 0xFF // destroys the header magic: recovery sees garbage
		if len(torn) > 1 {
			torn[len(torn)/2] ^= 0xA5
		}
		return torn
	}
	return oob
}

// Canonical plans for the torture harness's three acceptance scenarios.

// GCCopyError injects a device failure into the n-th cleaner copy-forward
// (foreground I/O is untouched).
func GCCopyError(n int64) *Plan {
	return NewPlan(0, Rule{Name: "gc-copy-error", Kind: KindError, Op: nand.OpCopy, Seg: AnySeg, AfterN: n})
}

// TornNote tears the n-th log note of the given header type: the note's
// header bytes are corrupted as they are programmed and power fails.
func TornNote(t header.Type, n int64) *Plan {
	return NewPlan(0, Rule{Name: "torn-note", Kind: KindTornOOB, Seg: AnySeg, HeaderType: t, AfterN: n})
}

// CrashAtScan cuts power at the n-th bulk OOB scan — mid-activation or
// mid-recovery, whichever issues it.
func CrashAtScan(n int64) *Plan {
	return NewPlan(0, Rule{Name: "crash-at-scan", Kind: KindCrash, Op: nand.OpScanOOB, Seg: AnySeg, AfterN: n})
}

// CrashAtChunk cuts power right after the n-th checkpoint chunk of the given
// header type lands — mid-checkpoint, before the generation commits. The
// partial generation's chunks are intact but unanchored (or the anchor still
// names the previous generation), so recovery must not trust them.
func CrashAtChunk(t header.Type, n int64) *Plan {
	return NewPlan(0, Rule{Name: "crash-at-chunk", Kind: KindCrash, Seg: AnySeg, HeaderType: t, AfterN: n})
}

// RandomTransients is a probabilistic retryable-fault plan: each distinct
// read or program target independently enters a transient episode with
// probability prob, failing its first times attempts before recovering —
// the workload a bounded retry policy must absorb without surfacing errors.
func RandomTransients(seed uint64, prob float64, times int64) *Plan {
	return NewPlan(seed,
		Rule{Name: "transient-read", Kind: KindTransient, Op: nand.OpRead, Seg: AnySeg, Prob: prob, Times: times},
		Rule{Name: "transient-program", Kind: KindTransient, Op: nand.OpProgram, Seg: AnySeg, Prob: prob, Times: times},
	)
}

// RandomCorruptData is the payload-corruption analogue of RandomTransients:
// each distinct read or program target independently corrupts its first
// times attempts with probability prob. Corrupted reads are transient (the
// device detects them and a re-read clears the damage); corrupted programs
// persist behind an intact fingerprint until the page is rewritten, so every
// later read of the page reports nand.ErrCorruptData.
func RandomCorruptData(seed uint64, prob float64, times int64) *Plan {
	return NewPlan(seed,
		Rule{Name: "corrupt-read", Kind: KindCorruptData, Op: nand.OpRead, Seg: AnySeg, Prob: prob, Times: times},
		Rule{Name: "corrupt-program", Kind: KindCorruptData, Op: nand.OpProgram, Seg: AnySeg, Prob: prob, Times: times},
	)
}

// CorruptNth corrupts the payload of the n-th distinct target of the given
// operation, once — a read clears on retry, a program persists until the
// page is rewritten.
func CorruptNth(op nand.Op, n int64) *Plan {
	return NewPlan(0, Rule{Name: "corrupt-nth", Kind: KindCorruptData, Op: op, Seg: AnySeg, AfterN: n})
}

// RandomFaults is a probabilistic background-noise plan: every operation
// class fails independently with the given probability, reproducibly from
// seed.
func RandomFaults(seed uint64, prob float64) *Plan {
	return NewPlan(seed,
		Rule{Name: "rand-read", Kind: KindError, Op: nand.OpRead, Seg: AnySeg, Prob: prob},
		Rule{Name: "rand-program", Kind: KindError, Op: nand.OpProgram, Seg: AnySeg, Prob: prob},
		Rule{Name: "rand-erase", Kind: KindError, Op: nand.OpErase, Seg: AnySeg, Prob: prob},
		Rule{Name: "rand-copy", Kind: KindError, Op: nand.OpCopy, Seg: AnySeg, Prob: prob},
	)
}
