package faultinject

import (
	"errors"
	"testing"

	"iosnap/internal/header"
	"iosnap/internal/nand"
)

func testDevice() *nand.Device {
	cfg := nand.DefaultConfig()
	cfg.SectorSize = 512
	cfg.PagesPerSegment = 8
	cfg.Segments = 4
	cfg.Channels = 2
	cfg.StoreData = true
	return nand.New(cfg)
}

func dataOOB(lba uint64, seq uint64) []byte {
	return header.Header{Type: header.TypeData, LBA: lba, Epoch: 1, Seq: seq}.Marshal()
}

func program(t *testing.T, d *nand.Device, addr nand.PageAddr, lba uint64) {
	t.Helper()
	payload := make([]byte, d.Config().SectorSize)
	if _, err := d.ProgramPage(0, addr, payload, dataOOB(lba, uint64(addr))); err != nil {
		t.Fatalf("program page %d: %v", addr, err)
	}
}

func TestCountRuleFiresOnceAtExactN(t *testing.T) {
	d := testDevice()
	p := NewPlan(1, Rule{Name: "third-prog", Kind: KindError, Op: nand.OpProgram, Seg: AnySeg, AfterN: 3})
	p.Arm(d)

	payload := make([]byte, d.Config().SectorSize)
	var errs int
	for i := 0; i < 6; i++ {
		_, err := d.ProgramPage(0, d.Addr(0, i-errs), payload, dataOOB(uint64(i), uint64(i)))
		if i == 2 {
			if !errors.Is(err, nand.ErrDeviceFailed) {
				t.Fatalf("program %d: got %v, want ErrDeviceFailed", i, err)
			}
			errs++
			continue
		}
		if err != nil {
			t.Fatalf("program %d: unexpected error %v", i, err)
		}
	}
	fired := p.Fired()
	if len(fired) != 1 {
		t.Fatalf("fired %d times, want 1: %v", len(fired), fired)
	}
	if fired[0].Rule != "third-prog" || fired[0].Count != 3 {
		t.Fatalf("unexpected fired record %+v", fired[0])
	}
	if p.Crashed() {
		t.Fatal("plain error rule should not crash the device")
	}
}

func TestSegmentFilter(t *testing.T) {
	d := testDevice()
	p := NewPlan(1, Rule{Kind: KindError, Op: nand.OpProgram, Seg: 2, AfterN: 1})
	p.Arm(d)

	// Programs in segments 0 and 1 never match.
	program(t, d, d.Addr(0, 0), 10)
	program(t, d, d.Addr(1, 0), 11)

	payload := make([]byte, d.Config().SectorSize)
	if _, err := d.ProgramPage(0, d.Addr(2, 0), payload, dataOOB(12, 12)); !errors.Is(err, nand.ErrDeviceFailed) {
		t.Fatalf("segment-2 program: got %v, want ErrDeviceFailed", err)
	}
}

func TestCrashRuleBricksDeviceUntilDisarm(t *testing.T) {
	d := testDevice()
	p := NewPlan(1, Rule{Kind: KindCrash, Op: nand.OpErase, Seg: AnySeg, AfterN: 1})
	p.Arm(d)

	program(t, d, d.Addr(0, 0), 1)
	if _, err := d.EraseSegment(0, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("erase: got %v, want ErrCrashed", err)
	}
	if !p.Crashed() {
		t.Fatal("Crashed() = false after crash rule fired")
	}
	// Every operation class now fails, including ones no rule matches.
	if _, _, _, err := d.ReadPage(0, d.Addr(0, 0)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: got %v, want ErrCrashed", err)
	}
	if _, _, err := d.ScanSegmentOOB(0, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash scan: got %v, want ErrCrashed", err)
	}
	payload := make([]byte, d.Config().SectorSize)
	if _, err := d.ProgramPage(0, d.Addr(0, 1), payload, dataOOB(2, 2)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash program: got %v, want ErrCrashed", err)
	}

	// Power restored: the device works again and the durable state survived.
	p.Disarm(d)
	if _, _, _, err := d.ReadPage(0, d.Addr(0, 0)); err != nil {
		t.Fatalf("post-recovery read: %v", err)
	}
}

func TestCrashAfterError(t *testing.T) {
	d := testDevice()
	p := NewPlan(1, Rule{Kind: KindError, Op: nand.OpProgram, Seg: AnySeg, AfterN: 1, CrashAfter: true})
	p.Arm(d)

	payload := make([]byte, d.Config().SectorSize)
	if _, err := d.ProgramPage(0, d.Addr(0, 0), payload, dataOOB(1, 1)); !errors.Is(err, nand.ErrDeviceFailed) {
		t.Fatalf("program: got %v, want ErrDeviceFailed", err)
	}
	if _, _, _, err := d.ReadPage(0, d.Addr(0, 0)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after CrashAfter error: got %v, want ErrCrashed", err)
	}
}

func TestTornOOBCorruptsHeaderAndCrashes(t *testing.T) {
	d := testDevice()
	p := TornNote(header.TypeSnapCreate, 1)
	p.Arm(d)

	// Data headers are not matched by the type filter.
	program(t, d, d.Addr(0, 0), 1)

	payload := make([]byte, d.Config().SectorSize)
	note := header.Header{Type: header.TypeSnapCreate, LBA: 7, Epoch: 2, Seq: 9}.Marshal()
	if _, err := d.ProgramPage(0, d.Addr(0, 1), payload, note); err != nil {
		t.Fatalf("torn program itself must succeed (the bits land): %v", err)
	}
	if !p.Crashed() {
		t.Fatal("torn write must imply power loss")
	}
	if len(p.Fired()) != 1 {
		t.Fatalf("fired = %v, want exactly the torn-note event", p.Fired())
	}

	p.Disarm(d)
	// The data page's header survived intact; the note's is garbage.
	_, oob, _, err := d.ReadPage(0, d.Addr(0, 0))
	if err != nil {
		t.Fatalf("read data page: %v", err)
	}
	if h, err := header.Unmarshal(oob); err != nil || h.Type != header.TypeData || h.LBA != 1 {
		t.Fatalf("data header corrupted: %+v, %v", h, err)
	}
	_, oob, _, err = d.ReadPage(0, d.Addr(0, 1))
	if err != nil {
		t.Fatalf("read note page: %v", err)
	}
	if _, err := header.Unmarshal(oob); err == nil {
		t.Fatal("note header still parses — torn injection did not corrupt it")
	}
}

func TestProbabilisticRulesAreDeterministicBySeed(t *testing.T) {
	run := func(seed uint64) []Fired {
		d := testDevice()
		p := RandomFaults(seed, 0.3)
		p.Arm(d)
		payload := make([]byte, d.Config().SectorSize)
		idx := 0
		for i := 0; i < 24 && idx < 8; i++ {
			if _, err := d.ProgramPage(0, d.Addr(0, idx), payload, dataOOB(uint64(i), uint64(i))); err == nil {
				idx++
			}
			d.ReadPage(0, d.Addr(0, 0))
		}
		return p.Fired()
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("prob 0.3 over ~48 ops fired nothing — suspicious")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different firing counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestOpCopyRuleHitsCopyPageOnly(t *testing.T) {
	d := testDevice()
	p := GCCopyError(1)
	p.Arm(d)

	program(t, d, d.Addr(0, 0), 1)
	if _, err := d.CopyPage(0, d.Addr(0, 0), d.Addr(1, 0)); !errors.Is(err, nand.ErrDeviceFailed) {
		t.Fatalf("copy: got %v, want ErrDeviceFailed", err)
	}
	// Foreground traffic is untouched, and the rule is spent.
	program(t, d, d.Addr(0, 1), 2)
	if _, err := d.CopyPage(0, d.Addr(0, 1), d.Addr(1, 0)); err != nil {
		t.Fatalf("second copy should succeed: %v", err)
	}
}

func TestDefaultsAndAccessors(t *testing.T) {
	p := NewPlan(0, Rule{Kind: KindError, Op: AnyOp, Seg: AnySeg})
	if p.String() != "-" {
		t.Fatalf("empty fired log String = %q", p.String())
	}
	if err := p.BeforeOp(nand.OpRead, 0); !errors.Is(err, nand.ErrDeviceFailed) {
		t.Fatalf("zero-trigger rule should default to AfterN=1: %v", err)
	}
	if p.String() == "-" {
		t.Fatal("String should render the fired event")
	}
	// MutateOOB with no torn rules is the identity.
	oob := []byte{1, 2, 3}
	if got := p.MutateOOB(0, oob); &got[0] != &oob[0] {
		t.Fatal("MutateOOB without torn rules must return input unchanged")
	}
}

// TestTransientEpisodeFailsThenClears: a transient target fails exactly
// Times attempts and then behaves normally, while other targets are
// untouched.
func TestTransientEpisodeFailsThenClears(t *testing.T) {
	d := testDevice()
	p := NewPlan(0, Rule{
		Kind: KindTransient, Op: nand.OpProgram, Seg: AnySeg, AfterN: 1, Times: 2,
	})
	p.Arm(d)

	payload := make([]byte, d.Config().SectorSize)
	addr := d.Addr(0, 0)
	for i := 0; i < 2; i++ {
		if _, err := d.ProgramPage(0, addr, payload, dataOOB(1, 1)); !errors.Is(err, nand.ErrTransient) {
			t.Fatalf("attempt %d: %v, want ErrTransient", i, err)
		}
	}
	// Third attempt at the same target succeeds — and the page really landed.
	if _, err := d.ProgramPage(0, addr, payload, dataOOB(1, 1)); err != nil {
		t.Fatalf("post-episode attempt: %v", err)
	}
	if !d.IsProgrammed(addr) {
		t.Fatal("post-episode program did not land")
	}
	// Only the first distinct target was in an episode (AfterN=1).
	if _, err := d.ProgramPage(0, d.Addr(0, 1), payload, dataOOB(2, 2)); err != nil {
		t.Fatalf("other target: %v", err)
	}
	if got := len(p.Fired()); got != 2 {
		t.Fatalf("fired %d events, want 2", got)
	}
}

// TestTransientCountSelectsNthTarget: AfterN counts distinct matching
// targets, so only the n-th new (op, page) pair enters an episode.
func TestTransientCountSelectsNthTarget(t *testing.T) {
	d := testDevice()
	p := NewPlan(0, Rule{Kind: KindTransient, Op: nand.OpRead, Seg: AnySeg, AfterN: 2, Times: 1})
	program(t, d, d.Addr(0, 0), 1)
	program(t, d, d.Addr(0, 1), 2)
	p.Arm(d)

	if _, _, _, err := d.ReadPage(0, d.Addr(0, 0)); err != nil {
		t.Fatalf("first target must not fault: %v", err)
	}
	if _, _, _, err := d.ReadPage(0, d.Addr(0, 1)); !errors.Is(err, nand.ErrTransient) {
		t.Fatalf("second target: %v, want ErrTransient", err)
	}
	if _, _, _, err := d.ReadPage(0, d.Addr(0, 1)); err != nil {
		t.Fatalf("retry of second target: %v", err)
	}
}

// TestRandomTransientsDeterministic: the same seed yields the same fired
// sequence; transient faults always clear within Times retries.
func TestRandomTransientsDeterministic(t *testing.T) {
	run := func() string {
		d := testDevice()
		p := RandomTransients(7, 0.5, 1)
		p.Arm(d)
		payload := make([]byte, d.Config().SectorSize)
		for i := 0; i < 8; i++ {
			addr := d.Addr(0, i)
			_, err := d.ProgramPage(0, addr, payload, dataOOB(uint64(i), uint64(i)))
			if errors.Is(err, nand.ErrTransient) {
				if _, err := d.ProgramPage(0, addr, payload, dataOOB(uint64(i), uint64(i))); err != nil {
					t.Fatalf("retry after single-failure episode: %v", err)
				}
			} else if err != nil {
				t.Fatal(err)
			}
		}
		return p.String()
	}
	a, b := run(), run()
	if a == b && a != "-" {
		return
	}
	if a != b {
		t.Fatalf("same seed, different transients:\n%s\n%s", a, b)
	}
	t.Fatal("prob 0.5 over 8 targets fired nothing; plan dead")
}

func TestCorruptReadClearsOnRetry(t *testing.T) {
	d := testDevice()
	payload := make([]byte, d.Config().SectorSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	addr := d.Addr(0, 0)
	if _, err := d.ProgramPage(0, addr, payload, dataOOB(1, 1)); err != nil {
		t.Fatal(err)
	}

	p := CorruptNth(nand.OpRead, 1)
	p.Arm(d)
	if _, _, _, err := d.ReadPage(0, addr); !errors.Is(err, nand.ErrCorruptData) {
		t.Fatalf("corrupted read: got %v, want ErrCorruptData", err)
	}
	// The damage lived in one transfer's copy: a re-read sees intact cells.
	data, _, _, err := d.ReadPage(0, addr)
	if err != nil {
		t.Fatalf("re-read after transient corruption: %v", err)
	}
	for i := range payload {
		if data[i] != payload[i] {
			t.Fatalf("re-read byte %d = %#x, want %#x", i, data[i], payload[i])
		}
	}
	if fired := p.Fired(); len(fired) != 1 || fired[0].Rule != "corrupt-nth" {
		t.Fatalf("fired log %v, want one corrupt-nth event", fired)
	}
}

func TestCorruptProgramPersistsUntilRewritten(t *testing.T) {
	d := testDevice()
	payload := make([]byte, d.Config().SectorSize)
	p := CorruptNth(nand.OpProgram, 2)
	p.Arm(d)

	program(t, d, d.Addr(0, 0), 1) // first target: intact
	program(t, d, d.Addr(0, 1), 2) // second target: cells store damaged bytes

	if data, _, _, err := d.ReadPage(0, d.Addr(0, 0)); err != nil || data == nil {
		t.Fatalf("intact page read: %v", err)
	}
	// Every read of the damaged page detects the corruption — retries don't help.
	for attempt := 0; attempt < 3; attempt++ {
		if _, _, _, err := d.ReadPage(0, d.Addr(0, 1)); !errors.Is(err, nand.ErrCorruptData) {
			t.Fatalf("attempt %d: got %v, want ErrCorruptData", attempt, err)
		}
	}
	// Rewriting the data elsewhere is clean: only the episode target is hit.
	if _, err := d.ProgramPage(0, d.Addr(0, 2), payload, dataOOB(2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.ReadPage(0, d.Addr(0, 2)); err != nil {
		t.Fatalf("rewritten copy: %v", err)
	}
}

func TestCorruptDataStopsBatchReadAtCorruptPage(t *testing.T) {
	d := testDevice()
	for i := 0; i < 4; i++ {
		program(t, d, d.Addr(0, i), uint64(10+i))
	}
	p := CorruptNth(nand.OpRead, 3)
	p.Arm(d)

	addrs := []nand.PageAddr{d.Addr(0, 0), d.Addr(0, 1), d.Addr(0, 2), d.Addr(0, 3)}
	var datas, oobs [][]byte
	n, _, err := d.ReadPagesInto(0, addrs, &datas, &oobs)
	if !errors.Is(err, nand.ErrCorruptData) {
		t.Fatalf("batch read: got %v, want ErrCorruptData", err)
	}
	if n != 2 || len(datas) != 2 {
		t.Fatalf("batch landed %d pages (datas %d), want 2 before the corrupt third", n, len(datas))
	}
}

func TestRandomCorruptDataDeterministic(t *testing.T) {
	run := func(seed uint64) string {
		d := testDevice()
		p := RandomCorruptData(seed, 0.5, 1)
		p.Arm(d)
		payload := make([]byte, d.Config().SectorSize)
		for i := 0; i < 8; i++ {
			if _, err := d.ProgramPage(0, d.Addr(0, i), payload, dataOOB(uint64(i), uint64(i))); err != nil {
				t.Fatalf("program %d: %v", i, err)
			}
		}
		for i := 0; i < 8; i++ {
			// Reads may detect either program- or read-side corruption; both
			// clear within two extra attempts for Times == 1 episodes unless
			// the program side persisted, which the log records identically.
			for attempt := 0; attempt < 3; attempt++ {
				if _, _, _, err := d.ReadPage(0, d.Addr(0, i)); err == nil || attempt == 2 {
					break
				}
			}
		}
		return p.String()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different corruption:\n%s\n%s", a, b)
	}
	if a == "-" {
		t.Fatal("prob 0.5 over 16 targets fired nothing; plan dead")
	}
}

func TestCorruptDataKindString(t *testing.T) {
	if got := KindCorruptData.String(); got != "corrupt-data" {
		t.Fatalf("KindCorruptData.String() = %q", got)
	}
}

func TestFlipBitsDamagesCopyNotOriginal(t *testing.T) {
	orig := make([]byte, 64)
	for i := range orig {
		orig[i] = 0xAA
	}
	out := flipBits(1, 2, 3, 4, orig)
	if &out[0] == &orig[0] {
		t.Fatal("flipBits returned the original backing array")
	}
	for i := range orig {
		if orig[i] != 0xAA {
			t.Fatalf("original byte %d modified to %#x", i, orig[i])
		}
	}
	diff := 0
	for i := range out {
		if out[i] != orig[i] {
			diff++
		}
	}
	if diff < 1 || diff > 3 {
		t.Fatalf("flipBits changed %d bytes, want 1..3", diff)
	}
}
