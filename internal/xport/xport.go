// Package xport is the snapshot transport codec: a content-addressed,
// TLV-sectioned wire format for shipping a snapshot image (or the delta
// between two snapshots) from one device to another, built on the same
// framing discipline as the checkpoint codec (magic + version + explicit
// length + FNV-64a checksum on every self-contained unit).
//
// Three artifacts travel between sender and receiver:
//
//   - a Manifest names every sector the image defines, with a content hash
//     per sector, plus (for deltas) the sectors the base image defines that
//     this image does not. A manifest's identity is the hash of its own
//     canonical encoding, so "is this the delta I asked for" and "does this
//     chunk belong to this transfer" are both single-comparison checks.
//
//   - a stream of frames carries the manifest followed by one chunk frame
//     per shipped sector and a trailing end frame with the expected chunk
//     count. Each frame is independently checksummed: a bit flip is caught
//     at the damaged frame, a truncation at the missing end frame, and a
//     reordering is harmless because every chunk names its own LBA.
//
//   - a Journal records which chunks a receiver has verified and applied,
//     so an interrupted receive resumes from the last durable chunk instead
//     of restarting, and a half-applied import is detectable (journal
//     present, Committed false) rather than silently visible.
//
// The codec is device-agnostic; the device-aware send/receive/verify loops
// live in internal/iosnap (replicate.go) and compose this package with the
// FTL's epoch-diff machinery.
package xport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"iosnap/internal/ckpt"
)

// Errors. The first group reports stream-shape damage a re-send can repair
// (Retryable reports true); the second reports protocol misuse that no
// retry fixes.
var (
	ErrTruncated   = errors.New("xport: truncated stream")
	ErrBadChecksum = errors.New("xport: frame checksum mismatch")
	ErrBadStream   = errors.New("xport: malformed stream")
	ErrHashMismatch = errors.New("xport: chunk hash mismatch")

	ErrBadManifest   = errors.New("xport: malformed manifest")
	ErrBadJournal    = errors.New("xport: malformed journal")
	ErrWrongTransfer = errors.New("xport: chunk belongs to a different transfer")
	ErrUnknownLBA    = errors.New("xport: chunk for LBA not in manifest")
	ErrBaseMismatch  = errors.New("xport: delta does not apply to this base")
)

// Retryable reports whether err is stream-shape damage — truncation, a
// checksum or content-hash mismatch, garbled framing — that a bounded
// re-send (retry.Policy.DoRetryable) may repair. Protocol errors (wrong
// base, unknown LBA, malformed manifest) are not retryable: the same bytes
// would fail the same way.
func Retryable(err error) bool {
	return errors.Is(err, ErrTruncated) ||
		errors.Is(err, ErrBadChecksum) ||
		errors.Is(err, ErrBadStream) ||
		errors.Is(err, ErrHashMismatch)
}

// HashChunk is the content hash of one sector payload (FNV-64a, matching
// the rest of the repository's integrity checks).
func HashChunk(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// Entry names one sector an image defines: its LBA and its content hash.
type Entry struct {
	LBA  uint64
	Hash uint64
}

// Manifest describes one snapshot image, full or incremental.
//
// A full manifest (BaseID == 0, Deletes empty) defines the image exactly:
// every sector in Writes has the named content, every other sector reads
// as zeros. A delta manifest (BaseID != 0) defines the image relative to
// the base manifest it names: Writes are the sectors whose content changed
// or appeared since the base, Deletes the sectors the base defined that
// the target no longer does.
type Manifest struct {
	// SnapID is the source-side snapshot identity (informational: it names
	// which snapshot this image captures, for logs and rotation schemes).
	SnapID uint64
	// BaseSnapID is the source-side snapshot the delta was diffed against
	// (0 for a full image).
	BaseSnapID uint64
	// BaseID is the ID() of the manifest this delta builds on; 0 marks a
	// full image. A receiver refuses a delta whose BaseID does not match
	// its current generation (ErrBaseMismatch).
	BaseID uint64
	// SectorSize and Sectors pin the geometry; a receiver refuses a
	// mismatched device before touching it.
	SectorSize int
	Sectors    int64
	// Writes is sorted ascending by LBA with no duplicates.
	Writes []Entry
	// Deletes is sorted ascending with no duplicates, disjoint from Writes.
	Deletes []uint64
}

// IsDelta reports whether the manifest is incremental.
func (m *Manifest) IsDelta() bool { return m.BaseID != 0 }

// Find returns the entry for lba, if the image defines it.
func (m *Manifest) Find(lba uint64) (Entry, bool) {
	i := sort.Search(len(m.Writes), func(i int) bool { return m.Writes[i].LBA >= lba })
	if i < len(m.Writes) && m.Writes[i].LBA == lba {
		return m.Writes[i], true
	}
	return Entry{}, false
}

// encodeBody is the canonical encoding ID() hashes and Encode() frames.
func (m *Manifest) encodeBody() []byte {
	var w ckpt.Writer
	w.U64(m.SnapID)
	w.U64(m.BaseSnapID)
	w.U64(m.BaseID)
	w.U32(uint32(m.SectorSize))
	w.U64(uint64(m.Sectors))
	w.U32(uint32(len(m.Writes)))
	for _, e := range m.Writes {
		w.U64(e.LBA)
		w.U64(e.Hash)
	}
	w.U32(uint32(len(m.Deletes)))
	for _, lba := range m.Deletes {
		w.U64(lba)
	}
	return w.B
}

// ID is the manifest's content-derived identity: the hash of its canonical
// encoding. Two manifests with identical content have identical IDs; any
// difference — one changed sector hash — yields a different ID.
func (m *Manifest) ID() uint64 {
	id := HashChunk(m.encodeBody())
	if id == 0 {
		id = 1 // 0 is reserved for "no base"
	}
	return id
}

var manifestMagic = [4]byte{'i', 'X', 'm', 'f'}

const xportVersion = 1

// Encode frames the manifest as a standalone self-checking blob (magic,
// version, length, body, FNV-64a), suitable for a stream frame or a file.
func (m *Manifest) Encode() []byte {
	body := m.encodeBody()
	b := make([]byte, 0, 4+1+4+len(body)+8)
	b = append(b, manifestMagic[:]...)
	b = append(b, xportVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(body)))
	b = append(b, body...)
	h := fnv.New64a()
	h.Write(b)
	return binary.LittleEndian.AppendUint64(b, h.Sum64())
}

// DecodeManifest validates framing, checksum, and ordering invariants.
func DecodeManifest(b []byte) (*Manifest, error) {
	body, err := unframe(b, manifestMagic, ErrBadManifest)
	if err != nil {
		return nil, err
	}
	r := ckpt.Reader{B: body}
	m := &Manifest{
		SnapID:     r.U64(),
		BaseSnapID: r.U64(),
		BaseID:     r.U64(),
		SectorSize: int(r.U32()),
		Sectors:    int64(r.U64()),
	}
	nw := int(r.U32())
	if nw < 0 || nw > len(body) {
		return nil, fmt.Errorf("%w: %d writes", ErrBadManifest, nw)
	}
	m.Writes = make([]Entry, 0, nw)
	for i := 0; i < nw; i++ {
		m.Writes = append(m.Writes, Entry{LBA: r.U64(), Hash: r.U64()})
	}
	nd := int(r.U32())
	if nd < 0 || nd > len(body) {
		return nil, fmt.Errorf("%w: %d deletes", ErrBadManifest, nd)
	}
	m.Deletes = make([]uint64, 0, nd)
	for i := 0; i < nd; i++ {
		m.Deletes = append(m.Deletes, r.U64())
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, r.Err())
	}
	if m.SectorSize <= 0 || m.Sectors <= 0 {
		return nil, fmt.Errorf("%w: geometry %d×%d", ErrBadManifest, m.Sectors, m.SectorSize)
	}
	for i := 1; i < len(m.Writes); i++ {
		if m.Writes[i].LBA <= m.Writes[i-1].LBA {
			return nil, fmt.Errorf("%w: writes not strictly ascending at %d", ErrBadManifest, i)
		}
	}
	for i := 1; i < len(m.Deletes); i++ {
		if m.Deletes[i] <= m.Deletes[i-1] {
			return nil, fmt.Errorf("%w: deletes not strictly ascending at %d", ErrBadManifest, i)
		}
	}
	return m, nil
}

// unframe validates a magic+version+length+checksum envelope and returns
// the body. badErr classifies structural violations.
func unframe(b []byte, magic [4]byte, badErr error) ([]byte, error) {
	if len(b) < 4+1+4+8 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if [4]byte(b[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", badErr)
	}
	if b[4] != xportVersion {
		return nil, fmt.Errorf("%w: version %d", badErr, b[4])
	}
	n := int(binary.LittleEndian.Uint32(b[5:]))
	if n < 0 || 9+n+8 > len(b) {
		return nil, fmt.Errorf("%w: body %d of %d bytes", ErrTruncated, n, len(b))
	}
	sum := binary.LittleEndian.Uint64(b[9+n:])
	h := fnv.New64a()
	h.Write(b[:9+n])
	if h.Sum64() != sum {
		return nil, ErrBadChecksum
	}
	return b[9 : 9+n], nil
}

// Frame types. A stream is a manifest frame, then chunk frames in any
// order, then an end frame carrying the chunk count.
const (
	FrameManifest byte = 1
	FrameChunk    byte = 2
	FrameEnd      byte = 3
)

var frameMagic = [4]byte{'i', 'X', 'f', 'r'}

// Frame is one decoded stream frame.
type Frame struct {
	Type byte
	// Manifest is set for FrameManifest.
	Manifest *Manifest
	// TransferID tags chunk and end frames with the manifest's ID().
	TransferID uint64
	// LBA and Data are set for FrameChunk. Data aliases the stream buffer.
	LBA  uint64
	Data []byte
	// Chunks is the sender's shipped-chunk count, set for FrameEnd.
	Chunks uint64
}

// appendFrame wraps a payload in the frame envelope.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, frameMagic[:]...)
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	h := fnv.New64a()
	h.Write(dst[start:])
	return binary.LittleEndian.AppendUint64(dst, h.Sum64())
}

// StreamWriter assembles a transfer stream: manifest first, chunks as the
// sender reads them, end frame on Close.
type StreamWriter struct {
	b      []byte
	id     uint64
	chunks uint64
}

// NewStreamWriter starts a stream for m, writing its manifest frame.
func NewStreamWriter(m *Manifest) *StreamWriter {
	w := &StreamWriter{id: m.ID()}
	w.b = appendFrame(w.b, FrameManifest, m.Encode())
	return w
}

// AddChunk appends one sector payload.
func (w *StreamWriter) AddChunk(lba uint64, data []byte) {
	var p ckpt.Writer
	p.U64(w.id)
	p.U64(lba)
	p.Bytes(data)
	w.b = appendFrame(w.b, FrameChunk, p.B)
	w.chunks++
}

// Close appends the end frame and returns the finished stream.
func (w *StreamWriter) Close() []byte {
	var p ckpt.Writer
	p.U64(w.id)
	p.U64(w.chunks)
	return appendFrame(w.b, FrameEnd, p.B)
}

// Scanner iterates the frames of a stream, validating each frame's
// checksum. Damage is attributed to the frame it occurs in: a flipped bit
// is ErrBadChecksum at that frame, missing bytes are ErrTruncated.
type Scanner struct {
	b   []byte
	off int
}

// NewScanner scans stream from its first frame.
func NewScanner(stream []byte) *Scanner { return &Scanner{b: stream} }

// More reports whether bytes remain. A well-formed stream ends exactly
// after its end frame; More returning true after FrameEnd means trailing
// garbage (the receiver treats it as ErrBadStream).
func (s *Scanner) More() bool { return s.off < len(s.b) }

// Next decodes the frame at the cursor.
func (s *Scanner) Next() (Frame, error) {
	rest := s.b[s.off:]
	if len(rest) < 4+1+4+8 {
		return Frame{}, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(rest))
	}
	if [4]byte(rest[:4]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad frame magic at offset %d", ErrBadStream, s.off)
	}
	typ := rest[4]
	n := int(binary.LittleEndian.Uint32(rest[5:]))
	if n < 0 || 9+n+8 > len(rest) {
		return Frame{}, fmt.Errorf("%w: frame body %d of %d bytes", ErrTruncated, n, len(rest))
	}
	sum := binary.LittleEndian.Uint64(rest[9+n:])
	h := fnv.New64a()
	h.Write(rest[:9+n])
	if h.Sum64() != sum {
		return Frame{}, fmt.Errorf("%w: frame at offset %d", ErrBadChecksum, s.off)
	}
	payload := rest[9 : 9+n]
	s.off += 9 + n + 8

	f := Frame{Type: typ}
	switch typ {
	case FrameManifest:
		m, err := DecodeManifest(payload)
		if err != nil {
			return Frame{}, err
		}
		f.Manifest = m
		f.TransferID = m.ID()
	case FrameChunk:
		r := ckpt.Reader{B: payload}
		f.TransferID = r.U64()
		f.LBA = r.U64()
		f.Data = r.Bytes()
		if r.Err() != nil || r.Rest() != 0 {
			return Frame{}, fmt.Errorf("%w: malformed chunk frame", ErrBadStream)
		}
	case FrameEnd:
		r := ckpt.Reader{B: payload}
		f.TransferID = r.U64()
		f.Chunks = r.U64()
		if r.Err() != nil || r.Rest() != 0 {
			return Frame{}, fmt.Errorf("%w: malformed end frame", ErrBadStream)
		}
	default:
		return Frame{}, fmt.Errorf("%w: unknown frame type %d", ErrBadStream, typ)
	}
	return f, nil
}

// VerifyChunk checks a received chunk against the transfer's manifest:
// the chunk must be tagged with the manifest's ID, name an LBA the image
// defines, and hash to the manifest's recorded content hash.
func VerifyChunk(m *Manifest, id uint64, f Frame) error {
	if f.TransferID != id {
		return fmt.Errorf("%w: chunk tagged %#x, transfer %#x", ErrWrongTransfer, f.TransferID, id)
	}
	e, ok := m.Find(f.LBA)
	if !ok {
		return fmt.Errorf("%w: LBA %d", ErrUnknownLBA, f.LBA)
	}
	if len(f.Data) != m.SectorSize {
		return fmt.Errorf("%w: chunk LBA %d is %d bytes, sector %d", ErrBadStream, f.LBA, len(f.Data), m.SectorSize)
	}
	if HashChunk(f.Data) != e.Hash {
		return fmt.Errorf("%w: LBA %d", ErrHashMismatch, f.LBA)
	}
	return nil
}

// Journal is the receiver's durable record of one transfer: which chunks
// verified and landed on the target device, whether the delta's deletes
// were applied, and whether the import committed. A receiver persists the
// journal after every applied batch; on restart, DecodeJournal + the same
// manifest resume the transfer from the last durable chunk.
type Journal struct {
	// ManifestID pins the journal to one transfer; resuming with a journal
	// from a different transfer is ErrWrongTransfer.
	ManifestID uint64
	// Committed is set by the receiver's final step, after every chunk and
	// delete has landed. A journal with Committed false marks a half-applied
	// import: invisible to consumers until resumed to completion.
	Committed bool
	// DeletesDone records that the delta's Deletes were applied (they are
	// idempotent, but tracking them keeps resume cheap).
	DeletesDone bool

	applied map[uint64]struct{}
}

// NewJournal starts an empty journal for the given transfer.
func NewJournal(manifestID uint64) *Journal {
	return &Journal{ManifestID: manifestID, applied: make(map[uint64]struct{})}
}

// MarkApplied records that lba's chunk verified and landed.
func (j *Journal) MarkApplied(lba uint64) { j.applied[lba] = struct{}{} }

// Applied reports whether lba's chunk already landed.
func (j *Journal) Applied(lba uint64) bool {
	_, ok := j.applied[lba]
	return ok
}

// AppliedCount is the number of landed chunks.
func (j *Journal) AppliedCount() int { return len(j.applied) }

// Unmark forgets that lba's chunk landed, forcing the next resumed apply
// to re-write it — the verify-repair path for sectors that failed a
// post-receive hash check.
func (j *Journal) Unmark(lba uint64) { delete(j.applied, lba) }

var journalMagic = [4]byte{'i', 'X', 'j', 'l'}

// Encode frames the journal as a standalone self-checking blob.
func (j *Journal) Encode() []byte {
	lbas := make([]uint64, 0, len(j.applied))
	for lba := range j.applied {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(a, b int) bool { return lbas[a] < lbas[b] })
	var w ckpt.Writer
	w.U64(j.ManifestID)
	w.Bool(j.Committed)
	w.Bool(j.DeletesDone)
	w.U32(uint32(len(lbas)))
	for _, lba := range lbas {
		w.U64(lba)
	}
	b := make([]byte, 0, 4+1+4+len(w.B)+8)
	b = append(b, journalMagic[:]...)
	b = append(b, xportVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(w.B)))
	b = append(b, w.B...)
	h := fnv.New64a()
	h.Write(b)
	return binary.LittleEndian.AppendUint64(b, h.Sum64())
}

// DecodeJournal validates framing and checksum and rebuilds the journal.
// A damaged journal is ErrBadJournal-class: the receiver restarts the
// transfer from scratch rather than trusting it.
func DecodeJournal(b []byte) (*Journal, error) {
	body, err := unframe(b, journalMagic, ErrBadJournal)
	if err != nil {
		if errors.Is(err, ErrTruncated) || errors.Is(err, ErrBadChecksum) {
			return nil, fmt.Errorf("%w: %v", ErrBadJournal, err)
		}
		return nil, err
	}
	r := ckpt.Reader{B: body}
	j := &Journal{
		ManifestID:  r.U64(),
		Committed:   r.Bool(),
		DeletesDone: r.Bool(),
		applied:     make(map[uint64]struct{}),
	}
	n := int(r.U32())
	if n < 0 || n > len(body) {
		return nil, fmt.Errorf("%w: %d applied entries", ErrBadJournal, n)
	}
	for i := 0; i < n; i++ {
		j.applied[r.U64()] = struct{}{}
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadJournal, r.Err())
	}
	return j, nil
}
