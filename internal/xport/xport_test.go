package xport

import (
	"errors"
	"testing"
)

func testManifest() *Manifest {
	chunk := func(b byte) []byte {
		d := make([]byte, 64)
		for i := range d {
			d[i] = b
		}
		return d
	}
	return &Manifest{
		SnapID:     7,
		SectorSize: 64,
		Sectors:    128,
		Writes: []Entry{
			{LBA: 3, Hash: HashChunk(chunk(3))},
			{LBA: 10, Hash: HashChunk(chunk(10))},
			{LBA: 77, Hash: HashChunk(chunk(77))},
		},
	}
}

func chunkData(b byte) []byte {
	d := make([]byte, 64)
	for i := range d {
		d[i] = b
	}
	return d
}

func buildStream(m *Manifest) []byte {
	w := NewStreamWriter(m)
	for _, e := range m.Writes {
		w.AddChunk(e.LBA, chunkData(byte(e.LBA)))
	}
	return w.Close()
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	m.BaseID = 42
	m.BaseSnapID = 6
	m.Deletes = []uint64{1, 2, 99}
	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.SnapID != m.SnapID || got.BaseSnapID != m.BaseSnapID || got.BaseID != m.BaseID {
		t.Fatalf("identity fields: %+v", got)
	}
	if got.SectorSize != m.SectorSize || got.Sectors != m.Sectors {
		t.Fatalf("geometry: %+v", got)
	}
	if len(got.Writes) != len(m.Writes) || len(got.Deletes) != len(m.Deletes) {
		t.Fatalf("lengths: %d writes, %d deletes", len(got.Writes), len(got.Deletes))
	}
	for i, e := range m.Writes {
		if got.Writes[i] != e {
			t.Fatalf("write %d: %+v != %+v", i, got.Writes[i], e)
		}
	}
	if got.ID() != m.ID() {
		t.Fatal("round-trip changed the manifest ID")
	}
}

func TestManifestIDChangesWithContent(t *testing.T) {
	a, b := testManifest(), testManifest()
	b.Writes[1].Hash ^= 1
	if a.ID() == b.ID() {
		t.Fatal("one changed sector hash must change the manifest ID")
	}
	if a.ID() == 0 || b.ID() == 0 {
		t.Fatal("manifest ID 0 is reserved for 'no base'")
	}
}

func TestManifestDecodeRejectsDamage(t *testing.T) {
	m := testManifest()
	enc := m.Encode()
	cases := []struct {
		name   string
		mangle func([]byte) []byte
		want   error
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"bit-flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x10
			return c
		}, ErrBadChecksum},
		{"bad-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, ErrBadManifest},
	}
	for _, tc := range cases {
		if _, err := DecodeManifest(tc.mangle(enc)); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// Unsorted writes are structural damage even with a valid checksum.
	bad := testManifest()
	bad.Writes[0], bad.Writes[1] = bad.Writes[1], bad.Writes[0]
	if _, err := DecodeManifest(bad.Encode()); !errors.Is(err, ErrBadManifest) {
		t.Errorf("unsorted writes: got %v, want ErrBadManifest", err)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	m := testManifest()
	stream := buildStream(m)
	s := NewScanner(stream)

	f, err := s.Next()
	if err != nil || f.Type != FrameManifest {
		t.Fatalf("first frame: %+v, %v", f, err)
	}
	id := f.TransferID
	if id != m.ID() {
		t.Fatalf("manifest frame id %#x, want %#x", id, m.ID())
	}
	var chunks int
	for s.More() {
		f, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case FrameChunk:
			if f.Manifest != nil {
				t.Fatal("chunk frames carry no manifest")
			}
			if err := VerifyChunk(m, id, f); err != nil {
				t.Fatal(err)
			}
			chunks++
		case FrameEnd:
			if f.Chunks != uint64(chunks) {
				t.Fatalf("end frame says %d chunks, saw %d", f.Chunks, chunks)
			}
		}
	}
	if chunks != len(m.Writes) {
		t.Fatalf("scanned %d chunks, want %d", chunks, len(m.Writes))
	}
}

func TestScannerAttributesDamage(t *testing.T) {
	m := testManifest()
	stream := buildStream(m)

	// Truncation: the last frame's bytes are missing.
	s := NewScanner(stream[:len(stream)-10])
	var lastErr error
	for s.More() {
		if _, lastErr = s.Next(); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrTruncated) || !Retryable(lastErr) {
		t.Fatalf("truncation: got %v (retryable %v)", lastErr, Retryable(lastErr))
	}

	// Bit flip inside a chunk frame: checksum catches it at that frame.
	flipped := append([]byte(nil), stream...)
	flipped[len(flipped)/2] ^= 0x04
	s = NewScanner(flipped)
	lastErr = nil
	for s.More() {
		if _, lastErr = s.Next(); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrBadChecksum) || !Retryable(lastErr) {
		t.Fatalf("bit flip: got %v (retryable %v)", lastErr, Retryable(lastErr))
	}
}

func TestChunkReorderIsHarmless(t *testing.T) {
	m := testManifest()
	// Build the stream with chunks in reverse order: every chunk names its
	// own LBA, so verification does not depend on arrival order.
	w := NewStreamWriter(m)
	for i := len(m.Writes) - 1; i >= 0; i-- {
		w.AddChunk(m.Writes[i].LBA, chunkData(byte(m.Writes[i].LBA)))
	}
	s := NewScanner(w.Close())
	id := m.ID()
	var verified int
	for s.More() {
		f, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type == FrameChunk {
			if err := VerifyChunk(m, id, f); err != nil {
				t.Fatal(err)
			}
			verified++
		}
	}
	if verified != len(m.Writes) {
		t.Fatalf("verified %d reordered chunks, want %d", verified, len(m.Writes))
	}
}

func TestVerifyChunkRejections(t *testing.T) {
	m := testManifest()
	id := m.ID()
	good := Frame{Type: FrameChunk, TransferID: id, LBA: 3, Data: chunkData(3)}
	if err := VerifyChunk(m, id, good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    Frame
		want error
	}{
		{"wrong transfer", Frame{TransferID: id ^ 1, LBA: 3, Data: chunkData(3)}, ErrWrongTransfer},
		{"unknown lba", Frame{TransferID: id, LBA: 4, Data: chunkData(4)}, ErrUnknownLBA},
		{"bad size", Frame{TransferID: id, LBA: 3, Data: chunkData(3)[:32]}, ErrBadStream},
		{"hash mismatch", Frame{TransferID: id, LBA: 3, Data: chunkData(5)}, ErrHashMismatch},
	}
	for _, tc := range cases {
		if err := VerifyChunk(m, id, tc.f); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if !Retryable(VerifyChunk(m, id, cases[3].f)) {
		t.Error("hash mismatch must be retryable (a re-send can fix it)")
	}
	if Retryable(VerifyChunk(m, id, cases[0].f)) {
		t.Error("wrong-transfer must not be retryable")
	}
}

func TestJournalRoundTripAndResume(t *testing.T) {
	j := NewJournal(0xABCD)
	j.MarkApplied(3)
	j.MarkApplied(77)
	j.DeletesDone = true

	got, err := DecodeJournal(j.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ManifestID != j.ManifestID || got.Committed || !got.DeletesDone {
		t.Fatalf("journal fields: %+v", got)
	}
	if !got.Applied(3) || !got.Applied(77) || got.Applied(10) {
		t.Fatal("applied set did not round-trip")
	}
	if got.AppliedCount() != 2 {
		t.Fatalf("AppliedCount = %d", got.AppliedCount())
	}

	got.Committed = true
	again, err := DecodeJournal(got.Encode())
	if err != nil || !again.Committed {
		t.Fatalf("committed round-trip: %+v, %v", again, err)
	}
}

func TestJournalDecodeRejectsDamage(t *testing.T) {
	j := NewJournal(1)
	j.MarkApplied(5)
	enc := j.Encode()

	if _, err := DecodeJournal(enc[:len(enc)-3]); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("truncated journal: %v", err)
	}
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)-10] ^= 0x80
	if _, err := DecodeJournal(flipped); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("flipped journal: %v", err)
	}
}

func TestEmptyManifestStream(t *testing.T) {
	// A delta with no changed sectors is legal: manifest + end frame only.
	m := &Manifest{SnapID: 1, BaseSnapID: 2, BaseID: 9, SectorSize: 64, Sectors: 16}
	s := NewScanner(NewStreamWriter(m).Close())
	f, err := s.Next()
	if err != nil || f.Type != FrameManifest {
		t.Fatalf("manifest frame: %v", err)
	}
	f, err = s.Next()
	if err != nil || f.Type != FrameEnd || f.Chunks != 0 {
		t.Fatalf("end frame: %+v, %v", f, err)
	}
	if s.More() {
		t.Fatal("trailing bytes after end frame")
	}
}
