package mapcache

import (
	"testing"

	"iosnap/internal/ftlmap"
	"iosnap/internal/sim"
)

func TestSlotsFor(t *testing.T) {
	if k := SlotsFor(512); k != 32 {
		t.Fatalf("SlotsFor(512) = %d, want 32", k)
	}
	if k := SlotsFor(4096); k != 256 {
		t.Fatalf("SlotsFor(4096) = %d, want 256", k)
	}
}

func TestPageCodecRoundTrip(t *testing.T) {
	const sector = 512
	k := SlotsFor(sector)
	slots := make([]uint64, k)
	for i := range slots {
		slots[i] = Unmapped
	}
	slots[3] = 12345
	slots[k-1] = 99
	payload := EncodePage(7, 42, slots, sector)
	if len(payload) != sector {
		t.Fatalf("payload %d bytes, want %d", len(payload), sector)
	}
	idx, got, err := DecodePage(payload)
	if err != nil {
		t.Fatalf("DecodePage: %v", err)
	}
	if idx != 7 {
		t.Fatalf("idx %d, want 7", idx)
	}
	for i := range slots {
		if got[i] != slots[i] {
			t.Fatalf("slot %d: %d, want %d", i, got[i], slots[i])
		}
	}
	payload[10] ^= 0xFF
	if _, _, err := DecodePage(payload); err == nil {
		t.Fatal("corrupted page decoded without error")
	}
}

// opMix drives the same random operation sequence through a Map and a
// reference ftlmap.Tree and checks full agreement.
func opMix(t *testing.T, m *Map, seed uint64, space uint64, steps int) {
	t.Helper()
	ref := ftlmap.New()
	rng := sim.NewRNG(seed)
	vals := make([]uint64, 16)
	found := make([]bool, 16)
	rvals := make([]uint64, 16)
	rfound := make([]bool, 16)
	for step := 0; step < steps; step++ {
		lba := uint64(rng.Int63n(int64(space)))
		switch uint64(rng.Int63n(int64(10))) {
		case 0, 1, 2: // single insert
			val := uint64(rng.Int63n(int64(1 << 40)))
			p1, e1 := m.Insert(lba, val)
			p2, e2 := ref.Insert(lba, val)
			if p1 != p2 || e1 != e2 {
				t.Fatalf("step %d: Insert(%d) -> (%d,%v), ref (%d,%v)", step, lba, p1, e1, p2, e2)
			}
		case 3, 4: // run insert
			n := 1 + uint64(rng.Int63n(int64(40)))
			entries := make([]ftlmap.Entry, 0, n)
			for i := uint64(0); i < n; i++ {
				entries = append(entries, ftlmap.Entry{Key: lba + i, Val: uint64(rng.Int63n(int64(1 << 40)))})
			}
			var prevs1, prevs2 []uint64
			m.InsertRun(entries, func(i int, prev uint64) { prevs1 = append(prevs1, uint64(i)<<48|prev) })
			ref.InsertRun(entries, func(i int, prev uint64) { prevs2 = append(prevs2, uint64(i)<<48|prev) })
			if len(prevs1) != len(prevs2) {
				t.Fatalf("step %d: InsertRun prev count %d vs %d", step, len(prevs1), len(prevs2))
			}
			for i := range prevs1 {
				if prevs1[i] != prevs2[i] {
					t.Fatalf("step %d: InsertRun prev %d: %x vs %x", step, i, prevs1[i], prevs2[i])
				}
			}
		case 5: // delete
			v1, ok1 := m.Delete(lba)
			v2, ok2 := ref.Delete(lba)
			if v1 != v2 || ok1 != ok2 {
				t.Fatalf("step %d: Delete(%d) -> (%d,%v), ref (%d,%v)", step, lba, v1, ok1, v2, ok2)
			}
		case 6: // range delete
			n := 1 + uint64(rng.Int63n(int64(60)))
			var dels1, dels2 []uint64
			n1 := m.DeleteRange(lba, lba+n, func(k, v uint64) { dels1 = append(dels1, k, v) })
			n2 := ref.DeleteRange(lba, lba+n, func(k, v uint64) { dels2 = append(dels2, k, v) })
			if n1 != n2 || len(dels1) != len(dels2) {
				t.Fatalf("step %d: DeleteRange count %d vs %d", step, n1, n2)
			}
			for i := range dels1 {
				if dels1[i] != dels2[i] {
					t.Fatalf("step %d: DeleteRange seq %d: %d vs %d", step, i, dels1[i], dels2[i])
				}
			}
		case 7, 8: // range lookup
			n := 1 + uint64(rng.Int63n(int64(16)))
			for i := uint64(0); i < n; i++ {
				vals[i], rvals[i] = 0, 0
				found[i], rfound[i] = false, false
			}
			h1 := m.LookupRange(lba, vals[:n], found[:n])
			h2 := ref.LookupRange(lba, rvals[:n], rfound[:n])
			if h1 != h2 {
				t.Fatalf("step %d: LookupRange hits %d vs %d", step, h1, h2)
			}
			for i := uint64(0); i < n; i++ {
				if found[i] != rfound[i] || (found[i] && vals[i] != rvals[i]) {
					t.Fatalf("step %d: LookupRange[%d] (%d,%v) vs (%d,%v)",
						step, i, vals[i], found[i], rvals[i], rfound[i])
				}
			}
		default: // point lookup
			v1, ok1 := m.Lookup(lba)
			v2, ok2 := ref.Lookup(lba)
			if v1 != v2 || ok1 != ok2 {
				t.Fatalf("step %d: Lookup(%d) -> (%d,%v), ref (%d,%v)", step, lba, v1, ok1, v2, ok2)
			}
		}
		if m.Len() != ref.Len() {
			t.Fatalf("step %d: Len %d vs %d", step, m.Len(), ref.Len())
		}
	}
	var got, want []uint64
	m.All(func(k, v uint64) bool { got = append(got, k, v); return true })
	ref.All(func(k, v uint64) bool { want = append(want, k, v); return true })
	if len(got) != len(want) {
		t.Fatalf("All: %d vs %d values", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("All[%d]: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestUnboundedPagedMatchesTree(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		m := NewPaged(32, 0, nil)
		opMix(t, m, seed, 4096, 3000)
		if c := m.Paged(); c.Stats().Misses != 0 {
			t.Fatalf("unbounded cache faulted %d pages", c.Stats().Misses)
		}
	}
}

// flashSim backs a bounded cache with an in-memory "flash": a map from
// fake address to encoded page, exercising the real wire codec.
type flashSim struct {
	t      *testing.T
	sector int
	next   uint64
	store  map[uint64][]byte
}

func (fs *flashSim) fault(idx, addr uint64) ([]uint64, error) {
	payload, ok := fs.store[addr]
	if !ok {
		fs.t.Fatalf("fault of page %d at unknown addr %d", idx, addr)
	}
	gotIdx, slots, err := DecodePage(payload)
	if err != nil {
		return nil, err
	}
	if gotIdx != idx {
		fs.t.Fatalf("fault of page %d decoded page %d", idx, gotIdx)
	}
	return slots, nil
}

// trim evicts down to the residency limit the way the FTL glue does:
// CLOCK victim, flush if dirty, drop.
func (fs *flashSim) trim(c *Cache) {
	for c.Bounded() && c.Resident() > c.Limit() {
		idx, ok := c.ClockVictim(nil)
		if !ok {
			fs.t.Fatal("no evictable page while over limit")
		}
		dirty, live, resident := c.PageState(idx)
		if !resident {
			fs.t.Fatalf("victim %d not resident", idx)
		}
		switch {
		case live == 0:
			if _, had := c.DropPage(idx); had {
				// flash copy released; nothing to unpin in this harness
				_ = had
			}
		case dirty:
			fs.next++
			fs.store[fs.next] = EncodePage(idx, 0, c.Slots(idx), fs.sector)
			if prev, had := c.MarkFlushed(idx, fs.next); had {
				delete(fs.store, prev)
			}
			c.NoteFlushed(1)
			fallthrough
		default:
			c.DropResident(idx)
			c.NoteEviction()
		}
	}
}

func TestBoundedCacheMatchesTree(t *testing.T) {
	const sector = 512
	for seed := uint64(1); seed <= 4; seed++ {
		fs := &flashSim{t: t, sector: sector, store: make(map[uint64][]byte)}
		m := NewPaged(SlotsFor(sector), 4, fs.fault)
		c := m.Paged()
		ref := ftlmap.New()
		rng := sim.NewRNG(seed ^ 0x9E3779B9)
		for step := 0; step < 4000; step++ {
			lba := uint64(rng.Int63n(int64(2048)))
			switch uint64(rng.Int63n(int64(6))) {
			case 0, 1, 2:
				val := uint64(rng.Int63n(int64(1 << 40)))
				p1, e1 := m.Insert(lba, val)
				p2, e2 := ref.Insert(lba, val)
				if p1 != p2 || e1 != e2 {
					t.Fatalf("seed %d step %d: Insert mismatch", seed, step)
				}
			case 3:
				v1, ok1 := m.Delete(lba)
				v2, ok2 := ref.Delete(lba)
				if v1 != v2 || ok1 != ok2 {
					t.Fatalf("seed %d step %d: Delete mismatch", seed, step)
				}
			default:
				v1, ok1 := m.Lookup(lba)
				v2, ok2 := ref.Lookup(lba)
				if v1 != v2 || ok1 != ok2 {
					t.Fatalf("seed %d step %d: Lookup(%d) (%d,%v) vs (%d,%v)",
						seed, step, lba, v1, ok1, v2, ok2)
				}
			}
			fs.trim(c)
			if m.Len() != ref.Len() {
				t.Fatalf("seed %d step %d: Len %d vs %d", seed, step, m.Len(), ref.Len())
			}
		}
		if c.Resident() > c.Limit() {
			t.Fatalf("resident %d over limit %d", c.Resident(), c.Limit())
		}
		if c.Stats().Misses == 0 || c.Stats().Flushed == 0 {
			t.Fatalf("bounded run saw no cache traffic: %+v", c.Stats())
		}
		// Full-content audit via the transient walk (faults without install).
		before := c.Resident()
		var got, want []uint64
		m.All(func(k, v uint64) bool { got = append(got, k, v); return true })
		ref.All(func(k, v uint64) bool { want = append(want, k, v); return true })
		if c.Resident() != before {
			t.Fatalf("All changed residency %d -> %d", before, c.Resident())
		}
		if len(got) != len(want) {
			t.Fatalf("All: %d vs %d values", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("All[%d]: %d vs %d", i, got[i], want[i])
			}
		}
		if c.ResidentBytes() >= c.MemoryBytes() {
			t.Fatalf("resident bytes %d not below total %d", c.ResidentBytes(), c.MemoryBytes())
		}
	}
}

func TestTreeModeDelegates(t *testing.T) {
	m := NewTree()
	if m.Paged() != nil {
		t.Fatal("tree-mode map reports a cache")
	}
	opMix(t, m, 11, 4096, 1500)
}
