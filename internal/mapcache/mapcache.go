// Package mapcache implements the flash-resident paged forward map
// (DFTL-style, after Dayan & Bonnet's flash-resident page-mapping FTLs).
//
// The forward map is cut into fixed-size translation pages of K
// consecutive LBA slots (K a power of two chosen so one encoded page fits
// a NAND sector). Translation pages live on flash in ordinary log pages
// (header.TypeMapPage); a bounded CLOCK cache keeps the hot ones resident
// in host RAM, and a global translation directory (GTD) — pinned in RAM
// and persisted through the checkpoint — maps each translation-page index
// to its newest flash address. Dirty resident pages are written back
// through the log head by the owning FTL; this package only tracks state.
//
// Map is the FTL-facing handle. It has two modes behind one API:
//
//   - tree mode wraps the plain in-RAM ftlmap.Tree (the legacy layout);
//   - paged mode runs the translation-page cache. With no residency limit
//     ("cache-unbounded") every page stays resident and nothing is ever
//     written to flash, which is what makes unbounded paged mode lockstep
//     bit-exact with tree mode — it is purely a host memory layout change.
//
// The on-flash wire format reuses the ckpt sectioned codec: one encoded
// stream per translation page (checkpoint ID field carries the page
// index), zero-padded to the sector size.
package mapcache

import (
	"fmt"
	"sort"

	"iosnap/internal/ckpt"
	"iosnap/internal/ftlmap"
)

// Unmapped is the slot sentinel for an LBA with no mapping.
const Unmapped = ^uint64(0)

// FaultFunc resolves a translation-page fault host-side: given the page
// index and its flash address (from the GTD), it returns the page's K
// decoded slots. The owning FTL installs one reading via nand.PageData;
// timed foreground faults instead go through the FTL's charged batch read
// and land via Absorb.
type FaultFunc func(idx, addr uint64) ([]uint64, error)

// GTDEnt is one global-translation-directory entry: translation page idx
// lives at flash address Addr and holds Live mappings.
type GTDEnt struct {
	Idx  uint64
	Addr uint64
	Live int
}

// CacheStats counts translation-page cache traffic.
type CacheStats struct {
	Hits      int64 // touched translation pages served from RAM (or empty)
	Misses    int64 // touched translation pages faulted from flash
	Evictions int64 // resident pages evicted by the CLOCK policy
	Flushed   int64 // dirty pages written back to the log
}

// SlotsFor returns the translation-page slot count for a sector size: the
// largest power of two whose encoded page (codec framing + 8 bytes per
// slot) fits one sector. 512-byte sectors give 32 slots; 4K gives 256.
func SlotsFor(sectorSize int) int {
	k := 1
	for 2*k*8+pageOverhead <= sectorSize {
		k *= 2
	}
	if k*8+pageOverhead > sectorSize {
		panic(fmt.Sprintf("mapcache: sector size %d too small for a translation page", sectorSize))
	}
	return k
}

// pageOverhead is the codec framing around the slot array: the ckpt
// stream header and checksum, one section header, and the idx/count
// fields of the section body.
const pageOverhead = 29 + 8 + 5 + 8 + 4

// secSlots is the ckpt section kind of a translation page's slot array.
const secSlots = 1

// EncodePage encodes one translation page for programming: a ckpt stream
// (ID = page index) holding the dense slot array, zero-padded to
// sectorSize. seq is the log sequence number the page is written under.
func EncodePage(idx, seq uint64, slots []uint64, sectorSize int) []byte {
	var w ckpt.Writer
	w.U64(idx)
	w.U32(uint32(len(slots)))
	for _, s := range slots {
		w.U64(s)
	}
	stream := ckpt.Encode(idx, seq, []ckpt.Section{{Kind: secSlots, Data: w.B}})
	if len(stream) > sectorSize {
		panic(fmt.Sprintf("mapcache: encoded translation page %d bytes exceeds sector %d", len(stream), sectorSize))
	}
	out := make([]byte, sectorSize)
	copy(out, stream)
	return out
}

// DecodePage decodes a translation page payload (the codec's explicit
// length makes the sector padding harmless).
func DecodePage(payload []byte) (idx uint64, slots []uint64, err error) {
	id, _, secs, err := ckpt.Decode(payload)
	if err != nil {
		return 0, nil, err
	}
	if len(secs) != 1 || secs[0].Kind != secSlots {
		return 0, nil, fmt.Errorf("mapcache: translation page has %d sections", len(secs))
	}
	r := ckpt.Reader{B: secs[0].Data}
	idx = r.U64()
	n := int(r.U32())
	if idx != id {
		return 0, nil, fmt.Errorf("mapcache: translation page id %d / body idx %d mismatch", id, idx)
	}
	if n <= 0 || r.Rest() < n*8 {
		return 0, nil, fmt.Errorf("mapcache: translation page %d slot count %d truncated", idx, n)
	}
	slots = make([]uint64, n)
	for i := range slots {
		slots[i] = r.U64()
	}
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	return idx, slots, nil
}

// tpage is one resident translation page.
type tpage struct {
	idx     uint64
	slots   []uint64 // Unmapped = no translation
	live    int      // non-Unmapped slots
	dirty   bool     // diverged from the flash copy (or never flushed)
	ref     bool     // CLOCK reference bit
	ringIdx int
}

// Cache is the paged forward map: resident translation pages, the CLOCK
// ring over them, and the RAM-pinned GTD of flash-resident pages.
type Cache struct {
	slotsPer int
	shift    uint
	mask     uint64
	limit    int // >0: residency bound in pages; <=0: unbounded

	pages map[uint64]*tpage
	ring  []*tpage
	hand  int
	gtd   map[uint64]GTDEnt
	size  int // live mappings across resident and flash-only pages

	fault FaultFunc
	stats CacheStats
}

// NewCache creates a paged map with slotsPer slots per translation page
// (a power of two, from SlotsFor) and a residency limit in pages
// (<=0 = unbounded). fault serves host-side page faults; it may be nil
// only if the map is never populated from flash.
func NewCache(slotsPer, limit int, fault FaultFunc) *Cache {
	if slotsPer <= 0 || slotsPer&(slotsPer-1) != 0 {
		panic(fmt.Sprintf("mapcache: slots per page %d not a power of two", slotsPer))
	}
	shift := uint(0)
	for 1<<shift != slotsPer {
		shift++
	}
	return &Cache{
		slotsPer: slotsPer,
		shift:    shift,
		mask:     uint64(slotsPer - 1),
		limit:    limit,
		pages:    make(map[uint64]*tpage),
		gtd:      make(map[uint64]GTDEnt),
		fault:    fault,
	}
}

// SetFault installs the host-side fault handler (recovery wires it after
// the device handle exists).
func (c *Cache) SetFault(fault FaultFunc) { c.fault = fault }

// SlotsPerPage returns K.
func (c *Cache) SlotsPerPage() int { return c.slotsPer }

// Bounded reports whether a residency limit is in force.
func (c *Cache) Bounded() bool { return c.limit > 0 }

// Limit returns the residency limit in pages (<=0 = unbounded).
func (c *Cache) Limit() int { return c.limit }

// Resident returns the number of resident translation pages.
func (c *Cache) Resident() int { return len(c.pages) }

// PageOf returns the translation-page index covering lba.
func (c *Cache) PageOf(lba uint64) uint64 { return lba >> c.shift }

// Stats returns the cache traffic counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// NoteEviction / NoteFlushed let the owning FTL attribute policy events
// (it drives eviction and owns the write-back I/O).
func (c *Cache) NoteEviction()     { c.stats.Evictions++ }
func (c *Cache) NoteFlushed(n int) { c.stats.Flushed += int64(n) }

// peek returns the page at idx if it is resident or can be faulted from
// flash host-side; nil when no such page exists anywhere.
func (c *Cache) peek(idx uint64) *tpage {
	if tp := c.pages[idx]; tp != nil {
		tp.ref = true
		return tp
	}
	ent, ok := c.gtd[idx]
	if !ok {
		return nil
	}
	if c.fault == nil {
		panic(fmt.Sprintf("mapcache: fault of translation page %d with no fault handler", idx))
	}
	slots, err := c.fault(idx, ent.Addr)
	if err != nil {
		panic(fmt.Sprintf("mapcache: translation page %d at addr %d unreadable: %v", idx, ent.Addr, err))
	}
	c.stats.Misses++
	return c.install(idx, slots)
}

// mutable is peek that materializes an empty page when none exists (the
// insert path; an absent page simply means "no mappings in this range").
func (c *Cache) mutable(idx uint64) *tpage {
	if tp := c.peek(idx); tp != nil {
		return tp
	}
	slots := make([]uint64, c.slotsPer)
	for i := range slots {
		slots[i] = Unmapped
	}
	tp := c.install(idx, slots)
	tp.dirty = true
	return tp
}

// install makes a page resident (ref set, clean) from decoded slots.
func (c *Cache) install(idx uint64, slots []uint64) *tpage {
	if len(slots) != c.slotsPer {
		panic(fmt.Sprintf("mapcache: translation page %d has %d slots, want %d", idx, len(slots), c.slotsPer))
	}
	live := 0
	for _, s := range slots {
		if s != Unmapped {
			live++
		}
	}
	tp := &tpage{idx: idx, slots: slots, live: live, ref: true, ringIdx: len(c.ring)}
	c.pages[idx] = tp
	c.ring = append(c.ring, tp)
	return tp
}

// Absorb installs a page faulted by the FTL's charged foreground read.
func (c *Cache) Absorb(idx uint64, slots []uint64) {
	if c.pages[idx] != nil {
		return
	}
	c.install(idx, slots)
}

// AddrOf returns the flash address of translation page idx, if on flash.
func (c *Cache) AddrOf(idx uint64) (uint64, bool) {
	ent, ok := c.gtd[idx]
	return ent.Addr, ok
}

// TouchRange walks the translation pages covering n consecutive LBAs from
// lba, setting reference bits and counting hits/misses. Non-resident
// pages that are on flash are appended to miss (ascending) for the caller
// to fault with a charged batch read; absent pages (no mappings there)
// and resident pages count as hits.
func (c *Cache) TouchRange(lba uint64, n int, miss []uint64) []uint64 {
	if n <= 0 {
		return miss
	}
	lo, hi := lba>>c.shift, (lba+uint64(n)-1)>>c.shift
	for idx := lo; ; idx++ {
		if tp := c.pages[idx]; tp != nil {
			tp.ref = true
			c.stats.Hits++
		} else if _, ok := c.gtd[idx]; ok {
			c.stats.Misses++
			miss = append(miss, idx)
		} else {
			c.stats.Hits++
		}
		if idx == hi {
			return miss
		}
	}
}

// MissingInRange is TouchRange for sparse spans (trims): it visits only
// translation pages that exist — resident or in the GTD — inside
// [lo, hi] (page indices, inclusive), so a discard over a huge hole
// costs O(map) instead of O(range). Resident pages get their reference
// bit set and count as hits; flash-only pages are appended to miss
// (ascending) and count as misses.
func (c *Cache) MissingInRange(lo, hi uint64, miss []uint64) []uint64 {
	for idx, tp := range c.pages {
		if idx >= lo && idx <= hi {
			tp.ref = true
			c.stats.Hits++
		}
	}
	for idx := range c.gtd {
		if idx >= lo && idx <= hi && c.pages[idx] == nil {
			c.stats.Misses++
			miss = append(miss, idx)
		}
	}
	sort.Slice(miss, func(i, j int) bool { return miss[i] < miss[j] })
	return miss
}

// ClockVictim runs the CLOCK hand to the next eviction candidate whose
// index skip doesn't reject, clearing reference bits as it passes. It
// returns ok=false when every resident page is referenced-and-skipped
// twice over (nothing evictable).
func (c *Cache) ClockVictim(skip func(idx uint64) bool) (idx uint64, ok bool) {
	for step := 0; step < 2*len(c.ring)+1; step++ {
		if len(c.ring) == 0 {
			return 0, false
		}
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		tp := c.ring[c.hand]
		if skip != nil && skip(tp.idx) {
			c.hand++
			continue
		}
		if tp.ref {
			tp.ref = false
			c.hand++
			continue
		}
		return tp.idx, true
	}
	return 0, false
}

// PageState reports a resident page's write-back state.
func (c *Cache) PageState(idx uint64) (dirty bool, live int, resident bool) {
	tp := c.pages[idx]
	if tp == nil {
		return false, 0, false
	}
	return tp.dirty, tp.live, true
}

// Slots returns a resident page's slot array (caller must not modify).
func (c *Cache) Slots(idx uint64) []uint64 {
	tp := c.pages[idx]
	if tp == nil {
		panic(fmt.Sprintf("mapcache: Slots of non-resident page %d", idx))
	}
	return tp.slots
}

// MarkFlushed records that idx's current content landed on flash at addr:
// the page becomes clean and the GTD points at the new copy. It returns
// the superseded flash address for unpinning.
func (c *Cache) MarkFlushed(idx, addr uint64) (prevAddr uint64, hadPrev bool) {
	tp := c.pages[idx]
	if tp == nil {
		panic(fmt.Sprintf("mapcache: MarkFlushed of non-resident page %d", idx))
	}
	prev, had := c.gtd[idx]
	c.gtd[idx] = GTDEnt{Idx: idx, Addr: addr, Live: tp.live}
	tp.dirty = false
	return prev.Addr, had
}

// Relocate updates the GTD after the cleaner copied translation page idx
// from old to dst (the page content is unchanged).
func (c *Cache) Relocate(idx, old, dst uint64) bool {
	ent, ok := c.gtd[idx]
	if !ok || ent.Addr != old {
		return false
	}
	ent.Addr = dst
	c.gtd[idx] = ent
	return true
}

// DropResident evicts a clean (or just-flushed) page from RAM; its flash
// copy, if any, stays reachable through the GTD.
func (c *Cache) DropResident(idx uint64) {
	tp := c.pages[idx]
	if tp == nil {
		return
	}
	if tp.dirty && tp.live > 0 {
		panic(fmt.Sprintf("mapcache: evicting dirty page %d without flush", idx))
	}
	c.ringRemove(tp)
	delete(c.pages, idx)
}

// DropPage removes an emptied page everywhere (RAM and GTD), returning
// its flash address for unpinning.
func (c *Cache) DropPage(idx uint64) (prevAddr uint64, hadPrev bool) {
	if tp := c.pages[idx]; tp != nil {
		if tp.live != 0 {
			panic(fmt.Sprintf("mapcache: DropPage of page %d with %d live slots", idx, tp.live))
		}
		c.ringRemove(tp)
		delete(c.pages, idx)
	}
	ent, had := c.gtd[idx]
	delete(c.gtd, idx)
	return ent.Addr, had
}

func (c *Cache) ringRemove(tp *tpage) {
	last := len(c.ring) - 1
	c.ring[tp.ringIdx] = c.ring[last]
	c.ring[tp.ringIdx].ringIdx = tp.ringIdx
	c.ring = c.ring[:last]
	if c.hand > last {
		c.hand = 0
	}
}

// DirtyPages returns the resident dirty page indices, ascending (the
// checkpoint's flush-all order).
func (c *Cache) DirtyPages() []uint64 {
	var out []uint64
	for idx, tp := range c.pages {
		if tp.dirty {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GTDEntries returns the directory sorted by page index (the checkpoint's
// serialization order).
func (c *Cache) GTDEntries() []GTDEnt {
	out := make([]GTDEnt, 0, len(c.gtd))
	for _, ent := range c.gtd {
		out = append(out, ent)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Idx < out[j].Idx })
	return out
}

// LoadGTD primes the directory from a checkpoint (recovery). No pages
// become resident; they fault in on first touch.
func (c *Cache) LoadGTD(ents []GTDEnt) {
	for _, ent := range ents {
		c.gtd[ent.Idx] = ent
		c.size += ent.Live
	}
}

// LoadEntries builds resident (dirty, never-flushed) pages from sorted
// map entries — full-scan recovery's bottom-up rebuild.
func (c *Cache) LoadEntries(entries []ftlmap.Entry) {
	for _, e := range entries {
		tp := c.mutable(e.Key >> c.shift)
		slot := e.Key & c.mask
		if tp.slots[slot] == Unmapped {
			tp.live++
			c.size++
		}
		tp.slots[slot] = e.Val
		tp.dirty = true
	}
}

// ---- forward-map operations (the ftlmap.Tree-compatible surface) ----

// Lookup returns the mapping for lba.
func (c *Cache) Lookup(lba uint64) (uint64, bool) {
	tp := c.pages[lba>>c.shift]
	if tp == nil {
		if _, onFlash := c.gtd[lba>>c.shift]; !onFlash {
			return 0, false
		}
		tp = c.peek(lba >> c.shift)
	}
	v := tp.slots[lba&c.mask]
	if v == Unmapped {
		return 0, false
	}
	return v, true
}

// LookupRange fills vals/found for the len(vals) consecutive LBAs from
// lo, returning the number found (the tree's batched-read contract).
func (c *Cache) LookupRange(lo uint64, vals []uint64, found []bool) int {
	if len(vals) != len(found) {
		panic("mapcache: LookupRange vals/found length mismatch")
	}
	hits := 0
	n := uint64(len(vals))
	for off := uint64(0); off < n; {
		idx := (lo + off) >> c.shift
		end := (idx+1)<<c.shift - lo // offset of the next page boundary
		if end > n {
			end = n
		}
		tp := c.pages[idx]
		if tp == nil {
			if _, onFlash := c.gtd[idx]; onFlash {
				tp = c.peek(idx)
			}
		}
		if tp != nil {
			for ; off < end; off++ {
				if v := tp.slots[(lo+off)&c.mask]; v != Unmapped {
					vals[off] = v
					found[off] = true
					hits++
				}
			}
		} else {
			off = end
		}
	}
	return hits
}

// Insert maps lba to val, returning any previous mapping.
func (c *Cache) Insert(lba, val uint64) (prev uint64, existed bool) {
	tp := c.mutable(lba >> c.shift)
	slot := lba & c.mask
	prev = tp.slots[slot]
	existed = prev != Unmapped
	if !existed {
		prev = 0
		tp.live++
		c.size++
	}
	tp.slots[slot] = val
	tp.dirty = true
	return prev, existed
}

// InsertRun inserts strictly-ascending entries, grouped so each touched
// translation page is resolved once (the batched data path's contract:
// one cache fill per touched page, not per sector).
func (c *Cache) InsertRun(entries []ftlmap.Entry, onPrev func(i int, prev uint64)) {
	for i := 0; i < len(entries); {
		idx := entries[i].Key >> c.shift
		tp := c.mutable(idx)
		for ; i < len(entries) && entries[i].Key>>c.shift == idx; i++ {
			slot := entries[i].Key & c.mask
			prev := tp.slots[slot]
			if prev != Unmapped {
				if onPrev != nil {
					onPrev(i, prev)
				}
			} else {
				tp.live++
				c.size++
			}
			tp.slots[slot] = entries[i].Val
		}
		tp.dirty = true
	}
}

// Delete removes lba's mapping, returning it.
func (c *Cache) Delete(lba uint64) (uint64, bool) {
	idx := lba >> c.shift
	if c.pages[idx] == nil {
		if _, onFlash := c.gtd[idx]; !onFlash {
			return 0, false
		}
	}
	tp := c.peek(idx)
	slot := lba & c.mask
	prev := tp.slots[slot]
	if prev == Unmapped {
		return 0, false
	}
	tp.slots[slot] = Unmapped
	tp.live--
	c.size--
	tp.dirty = true
	return prev, true
}

// DeleteRange removes every mapping in [lo, hi), calling onDel in
// ascending key order, and returns the count. Only translation pages that
// exist are visited, so a trim over a huge hole costs nothing.
func (c *Cache) DeleteRange(lo, hi uint64, onDel func(key, val uint64)) int {
	if hi <= lo {
		return 0
	}
	loIdx, hiIdx := lo>>c.shift, (hi-1)>>c.shift
	var cand []uint64
	for idx := range c.pages {
		if idx >= loIdx && idx <= hiIdx {
			cand = append(cand, idx)
		}
	}
	for idx := range c.gtd {
		if idx >= loIdx && idx <= hiIdx && c.pages[idx] == nil {
			cand = append(cand, idx)
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	deleted := 0
	for _, idx := range cand {
		tp := c.peek(idx)
		if tp == nil || tp.live == 0 {
			continue
		}
		slotLo, slotHi := uint64(0), c.mask
		if idx == loIdx {
			slotLo = lo & c.mask
		}
		if idx == hiIdx {
			slotHi = (hi - 1) & c.mask
		}
		touched := false
		for s := slotLo; s <= slotHi; s++ {
			if v := tp.slots[s]; v != Unmapped {
				if onDel != nil {
					onDel(idx<<c.shift|s, v)
				}
				tp.slots[s] = Unmapped
				tp.live--
				c.size--
				deleted++
				touched = true
			}
		}
		if touched {
			tp.dirty = true
		}
	}
	return deleted
}

// Len returns the number of live mappings (resident and flash-resident).
func (c *Cache) Len() int { return c.size }

// All visits every mapping in ascending key order. Non-resident pages are
// decoded transiently through the fault handler without being installed,
// so invariant walks don't disturb the cache.
func (c *Cache) All(fn func(key, val uint64) bool) {
	idxs := make([]uint64, 0, len(c.pages)+len(c.gtd))
	for idx := range c.pages {
		idxs = append(idxs, idx)
	}
	for idx := range c.gtd {
		if c.pages[idx] == nil {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		var slots []uint64
		if tp := c.pages[idx]; tp != nil {
			slots = tp.slots
		} else {
			ent := c.gtd[idx]
			if c.fault == nil {
				panic(fmt.Sprintf("mapcache: walk of translation page %d with no fault handler", idx))
			}
			var err error
			slots, err = c.fault(idx, ent.Addr)
			if err != nil {
				panic(fmt.Sprintf("mapcache: translation page %d at addr %d unreadable: %v", idx, ent.Addr, err))
			}
		}
		for s, v := range slots {
			if v == Unmapped {
				continue
			}
			if !fn(idx<<c.shift|uint64(s), v) {
				return
			}
		}
	}
}

// pageBytes is the modeled RAM cost of one resident translation page:
// the slot array plus struct/map/ring overhead.
func (c *Cache) pageBytes() int64 { return int64(c.slotsPer)*8 + 64 }

// gtdEntBytes is the modeled RAM cost of one GTD entry.
const gtdEntBytes = 40

// MemoryBytes returns the as-if-fully-resident footprint: what the paged
// map would cost with every translation page in RAM. This is the "total"
// side of the resident-vs-total split.
func (c *Cache) MemoryBytes() int64 {
	n := len(c.pages)
	for idx := range c.gtd {
		if c.pages[idx] == nil {
			n++
		}
	}
	return int64(n)*c.pageBytes() + int64(len(c.gtd))*gtdEntBytes
}

// ResidentBytes returns the actual host RAM held: resident pages plus the
// RAM-pinned GTD.
func (c *Cache) ResidentBytes() int64 {
	return int64(len(c.pages))*c.pageBytes() + int64(len(c.gtd))*gtdEntBytes
}

// ---- Map: the two-mode FTL-facing handle ----

// Map is the forward-map handle both FTLs hold: either a plain in-RAM
// B+tree or the paged translation-page cache, behind the tree's API.
type Map struct {
	tree *ftlmap.Tree
	c    *Cache
}

// NewTree returns a tree-mode map (the legacy in-RAM layout).
func NewTree() *Map { return &Map{tree: ftlmap.New()} }

// FromTree wraps an existing tree (bulk-loaded recovery/activation paths).
func FromTree(t *ftlmap.Tree) *Map { return &Map{tree: t} }

// NewPaged returns a paged-mode map (see NewCache).
func NewPaged(slotsPer, limit int, fault FaultFunc) *Map {
	return &Map{c: NewCache(slotsPer, limit, fault)}
}

// Paged returns the underlying cache, or nil in tree mode.
func (m *Map) Paged() *Cache { return m.c }

// Tree returns the underlying tree, or nil in paged mode.
func (m *Map) Tree() *ftlmap.Tree { return m.tree }

// Lookup returns the mapping for lba.
func (m *Map) Lookup(lba uint64) (uint64, bool) {
	if m.c != nil {
		return m.c.Lookup(lba)
	}
	return m.tree.Lookup(lba)
}

// LookupRange resolves len(vals) consecutive keys from lo (tree contract).
func (m *Map) LookupRange(lo uint64, vals []uint64, found []bool) int {
	if m.c != nil {
		return m.c.LookupRange(lo, vals, found)
	}
	return m.tree.LookupRange(lo, vals, found)
}

// Insert maps lba to val.
func (m *Map) Insert(lba, val uint64) (prev uint64, existed bool) {
	if m.c != nil {
		return m.c.Insert(lba, val)
	}
	return m.tree.Insert(lba, val)
}

// InsertRun inserts strictly-ascending entries (tree contract).
func (m *Map) InsertRun(entries []ftlmap.Entry, onPrev func(i int, prev uint64)) {
	if m.c != nil {
		m.c.InsertRun(entries, onPrev)
		return
	}
	m.tree.InsertRun(entries, onPrev)
}

// Delete removes lba's mapping.
func (m *Map) Delete(lba uint64) (uint64, bool) {
	if m.c != nil {
		return m.c.Delete(lba)
	}
	return m.tree.Delete(lba)
}

// DeleteRange removes [lo, hi), calling onDel ascending (tree contract).
func (m *Map) DeleteRange(lo, hi uint64, onDel func(key, val uint64)) int {
	if m.c != nil {
		return m.c.DeleteRange(lo, hi, onDel)
	}
	return m.tree.DeleteRange(lo, hi, onDel)
}

// Len returns the number of mappings.
func (m *Map) Len() int {
	if m.c != nil {
		return m.c.Len()
	}
	return m.tree.Len()
}

// All visits every mapping in ascending key order.
func (m *Map) All(fn func(key, val uint64) bool) {
	if m.c != nil {
		m.c.All(fn)
		return
	}
	m.tree.All(fn)
}

// MemoryBytes returns the as-if-fully-resident map footprint.
func (m *Map) MemoryBytes() int64 {
	if m.c != nil {
		return m.c.MemoryBytes()
	}
	return m.tree.MemoryBytes()
}

// ResidentBytes returns the actual host RAM held by the map. In tree mode
// (and unbounded paged mode) it equals MemoryBytes.
func (m *Map) ResidentBytes() int64 {
	if m.c != nil {
		return m.c.ResidentBytes()
	}
	return m.tree.MemoryBytes()
}
