package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// LoadConfig parameterizes RunLoad, the service-mode throughput driver
// shared by the Go benchmark, the shardbench CLI verb, and bench.sh.
type LoadConfig struct {
	Shards       int
	Clients      int   // concurrent client goroutines
	OpsPerClient int   // operations each client issues
	RunSectors   int64 // sectors per operation
	Seed         int64
}

// LoadReport is what a RunLoad run measured.
type LoadReport struct {
	Shards, Clients int
	Ops             int64
	Bytes           int64         // user bytes moved (reads + writes)
	Virtual         sim.Time      // virtual makespan: the latest shard clock
	Wall            time.Duration // host wall-clock for the whole run
}

// VirtualMBps is the device-level throughput the run modeled: user bytes
// over the virtual makespan. This is the figure sharding exists to move —
// with one shard every request serializes behind a single clock (and a
// single device bus); with N shards the clocks advance concurrently.
func (r LoadReport) VirtualMBps() float64 {
	if r.Virtual <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / sim.Duration(r.Virtual).Seconds()
}

// loadBase is the fixed bench geometry: a device whose shared bus — not
// its channel array — is the throughput ceiling, which is exactly the
// regime the paper's hardware (and LFTL's motivation) lives in. The
// generous over-provisioning (advertised capacity is 3/8 of physical)
// keeps the cleaner out of the out-of-space regime even at 16 shards,
// where each shard owns only 16 segments and random overwrite churn
// would otherwise outrun per-shard cleaning.
func loadBase() iosnap.Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 32
	nc.Segments = 256
	nc.Channels = 16
	nc.StoreData = true
	nc.ReadLatency = 2 * sim.Microsecond
	nc.ProgramLatency = 4 * sim.Microsecond
	nc.EraseLatency = 50 * sim.Microsecond
	nc.ReadBusMBps = 400
	nc.WriteBusMBps = 400
	cfg := iosnap.DefaultConfig(nc)
	cfg.UserSectors = 3072
	cfg.GCWindow = sim.Millisecond
	cfg.BitmapPageBits = 64
	cfg.CoWPageCost = 10 * sim.Microsecond
	return cfg
}

// RunLoad drives a seeded random read/write/trim mix through a Service in
// real goroutines and reports bytes moved, virtual makespan, and wall
// time. The op stream is a function of (Seed, Clients, OpsPerClient)
// only, so different shard counts process identical work.
func RunLoad(lc LoadConfig) (LoadReport, error) {
	if lc.Clients <= 0 || lc.OpsPerClient <= 0 || lc.RunSectors <= 0 {
		return LoadReport{}, fmt.Errorf("shard: load needs positive clients/ops/run")
	}
	cfg := Config{
		Base:          loadBase(),
		Shards:        lc.Shards,
		StripeSectors: 16,
		GCConcurrency: (lc.Shards + 3) / 4,
	}
	svc, err := NewService(cfg)
	if err != nil {
		return LoadReport{}, err
	}
	sectors := svc.Sectors()
	ss := int64(svc.SectorSize())

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		bytes    int64
		ops      int64
	)
	start := time.Now()
	for c := 0; c < lc.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(lc.Seed + int64(c)))
			data := make([]byte, lc.RunSectors*ss)
			rng.Read(data)
			var myBytes, myOps int64
			for op := 0; op < lc.OpsPerClient; op++ {
				lba := rng.Int63n(sectors - lc.RunSectors + 1)
				var err error
				switch r := rng.Intn(20); {
				case r < 13:
					err = svc.Write(lba, data)
					myBytes += lc.RunSectors * ss
				case r < 19:
					err = svc.Read(lba, data)
					myBytes += lc.RunSectors * ss
				default:
					err = svc.Trim(lba, lc.RunSectors)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d op %d: %w", c, op, err)
					}
					mu.Unlock()
					return
				}
				myOps++
			}
			mu.Lock()
			bytes += myBytes
			ops += myOps
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	rep := LoadReport{
		Shards:  lc.Shards,
		Clients: lc.Clients,
		Ops:     ops,
		Bytes:   bytes,
		Virtual: svc.MaxVirtualTime(),
		Wall:    time.Since(start),
	}
	if firstErr != nil {
		svc.Close()
		return rep, firstErr
	}
	if err := svc.CheckInvariants(); err != nil {
		svc.Close()
		return rep, err
	}
	if err := svc.Close(); err != nil {
		return rep, err
	}
	return rep, nil
}
