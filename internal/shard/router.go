package shard

import (
	"errors"
	"fmt"

	"iosnap/internal/iosnap"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

// ErrClosed is returned once the router (or service) has been closed.
var ErrClosed = errors.New("shard: closed")

// RouterStats counts front-end-level events; per-shard FTL statistics live
// in each shard's own iosnap.Stats.
type RouterStats struct {
	Ops         int64        // user operations accepted (read/write/trim)
	SplitOps    int64        // operations that crossed a shard boundary
	Pieces      int64        // shard-local pieces issued
	Barriers    int64        // snapshot-create barriers executed
	BarrierWait sim.Duration // virtual time spent waiting for shards to quiesce
	BusWait     sim.Duration // virtual time serialized on the shared interconnect
}

// Router is the deterministic virtual-time execution mode of the sharded
// front-end: a single caller drives it exactly like an unsharded
// iosnap.FTL (explicit `now`, explicit RunUntil), and per-shard overlap is
// modeled by the shards' independent NAND resources. With cfg.Shards==1
// every operation is a pure pass-through to the one shard, making the
// router bit-exact against the unsharded FTL.
type Router struct {
	cfg    Config
	shards []*iosnap.FTL
	gov    *Governor

	// Optional shared host interconnect. busNsPerByte converts payload
	// bytes to occupancy; zero bandwidth leaves the pointer nil.
	rbus, wbus         *sim.Resource
	rNsPerMB, wNsPerMB int64

	stats   RouterStats
	scratch []extent
	closed  bool
}

// NewRouter builds the shards. Each shard gets its own device slice,
// scheduler, and FTL; cross-shard couplings (GC governor, interconnect)
// are installed only when configured.
func NewRouter(cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{cfg: cfg}
	var gate iosnap.GCGate
	if cfg.GCConcurrency > 0 {
		r.gov = NewGovernor(cfg.GCConcurrency)
		gate = r.gov
	}
	for i := 0; i < cfg.Shards; i++ {
		f, err := iosnap.New(cfg.shardConfig(i, gate), nil)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.shards = append(r.shards, f)
	}
	if cfg.Shards > 1 {
		if cfg.InterconnectReadMBps > 0 {
			r.rbus = &sim.Resource{}
			r.rNsPerMB = int64(sim.Second) / int64(cfg.InterconnectReadMBps)
		}
		if cfg.InterconnectWriteMBps > 0 {
			r.wbus = &sim.Resource{}
			r.wNsPerMB = int64(sim.Second) / int64(cfg.InterconnectWriteMBps)
		}
	}
	return r, nil
}

// Shards returns the number of shards.
func (r *Router) Shards() int { return len(r.shards) }

// Shard exposes shard i's FTL for tests and diagnostics.
func (r *Router) Shard(i int) *iosnap.FTL { return r.shards[i] }

// Governor returns the global GC governor, or nil when GCConcurrency is 0.
func (r *Router) Governor() *Governor { return r.gov }

// SectorSize returns the logical sector size.
func (r *Router) SectorSize() int { return r.cfg.Base.Nand.SectorSize }

// Sectors returns the advertised capacity of the whole logical device.
func (r *Router) Sectors() int64 { return r.cfg.Base.UserSectors }

// Stats returns the front-end counters.
func (r *Router) Stats() RouterStats { return r.stats }

// ShardStats returns each shard's FTL statistics.
func (r *Router) ShardStats() []iosnap.Stats {
	out := make([]iosnap.Stats, len(r.shards))
	for i, f := range r.shards {
		out[i] = f.Stats()
	}
	return out
}

// RunUntil advances every shard's scheduler to now (background GC,
// checkpoints, scrub).
func (r *Router) RunUntil(now sim.Time) {
	for _, f := range r.shards {
		f.Scheduler().RunUntil(now)
	}
}

// Drain runs every shard's scheduler dry and returns the latest finish.
func (r *Router) Drain(now sim.Time) sim.Time {
	done := now
	for _, f := range r.shards {
		if d := f.Scheduler().Drain(now); d > done {
			done = d
		}
	}
	return done
}

// CheckInvariants runs every shard's invariant sweep.
func (r *Router) CheckInvariants() error {
	var errs []error
	for i, f := range r.shards {
		if err := f.CheckInvariants(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// busCharge serializes nbytes over the shared interconnect resource and
// returns when the transfer completes. now is the earliest start.
func (r *Router) busCharge(bus *sim.Resource, nsPerMB int64, now sim.Time, nbytes int) sim.Time {
	cost := sim.Duration(int64(nbytes) * nsPerMB / (1 << 20))
	start, done := bus.Acquire(now, cost)
	r.stats.BusWait += start.Sub(now)
	return done
}

func (r *Router) checkIO(lba int64, n int64) error {
	if r.closed {
		return ErrClosed
	}
	if n <= 0 || lba < 0 || lba+n > r.cfg.Base.UserSectors {
		return fmt.Errorf("shard: I/O out of range: lba %d n %d (capacity %d)", lba, n, r.cfg.Base.UserSectors)
	}
	return nil
}

// Write stores data (a whole number of sectors) at lba. The payload first
// serializes over the shared write interconnect (when modeled), then the
// shard-local pieces are all issued at the same instant; overlap between
// shards falls out of their independent channel/bus accounting. On a piece
// failure the remaining pieces are not issued (ascending-LBA order, like
// the unsharded partial-run contract) and the error surfaces with the
// virtual time actually consumed.
func (r *Router) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	ss := r.SectorSize()
	if len(data) == 0 || len(data)%ss != 0 {
		return now, fmt.Errorf("shard: write size %d not sector aligned", len(data))
	}
	n := int64(len(data) / ss)
	if err := r.checkIO(lba, n); err != nil {
		return now, err
	}
	if len(r.shards) == 1 {
		return r.shards[0].Write(now, lba, data)
	}
	if r.wbus != nil {
		now = r.busCharge(r.wbus, r.wNsPerMB, now, len(data))
	}
	r.scratch = r.cfg.extents(lba, n, r.scratch)
	r.stats.Ops++
	r.stats.Pieces += int64(len(r.scratch))
	if len(r.scratch) > 1 {
		r.stats.SplitOps++
	}
	done := now
	for _, e := range r.scratch {
		d, err := r.shards[e.shard].Write(now, e.lba, data[e.off*int64(ss):(e.off+e.n)*int64(ss)])
		if d > done {
			done = d
		}
		if err != nil {
			return done, fmt.Errorf("shard %d: %w", e.shard, err)
		}
	}
	return done, nil
}

// Read fills buf (a whole number of sectors) from lba. Pieces issue at the
// same instant; the assembled payload then serializes over the shared read
// interconnect (when modeled).
func (r *Router) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	ss := r.SectorSize()
	if len(buf) == 0 || len(buf)%ss != 0 {
		return now, fmt.Errorf("shard: read size %d not sector aligned", len(buf))
	}
	n := int64(len(buf) / ss)
	if err := r.checkIO(lba, n); err != nil {
		return now, err
	}
	if len(r.shards) == 1 {
		return r.shards[0].Read(now, lba, buf)
	}
	r.scratch = r.cfg.extents(lba, n, r.scratch)
	r.stats.Ops++
	r.stats.Pieces += int64(len(r.scratch))
	if len(r.scratch) > 1 {
		r.stats.SplitOps++
	}
	done := now
	for _, e := range r.scratch {
		d, err := r.shards[e.shard].Read(now, e.lba, buf[e.off*int64(ss):(e.off+e.n)*int64(ss)])
		if d > done {
			done = d
		}
		if err != nil {
			return done, fmt.Errorf("shard %d: %w", e.shard, err)
		}
	}
	if r.rbus != nil {
		done = r.busCharge(r.rbus, r.rNsPerMB, done, len(buf))
	}
	return done, nil
}

// Trim invalidates [lba, lba+n).
func (r *Router) Trim(now sim.Time, lba int64, n int64) (sim.Time, error) {
	if err := r.checkIO(lba, n); err != nil {
		return now, err
	}
	if len(r.shards) == 1 {
		return r.shards[0].Trim(now, lba, n)
	}
	r.scratch = r.cfg.extents(lba, n, r.scratch)
	r.stats.Ops++
	r.stats.Pieces += int64(len(r.scratch))
	if len(r.scratch) > 1 {
		r.stats.SplitOps++
	}
	done := now
	for _, e := range r.scratch {
		d, err := r.shards[e.shard].Trim(now, e.lba, e.n)
		if d > done {
			done = d
		}
		if err != nil {
			return done, fmt.Errorf("shard %d: %w", e.shard, err)
		}
	}
	return done, nil
}

// barrierTime computes the consistent freeze instant: no shard may still
// have NAND work in flight from before the snapshot, so the barrier waits
// for the busiest shard device to quiesce.
func (r *Router) barrierTime(now sim.Time) sim.Time {
	t := now
	for _, f := range r.shards {
		if b := f.Device().BusyUntil(); b > t {
			t = b
		}
	}
	return t
}

// CreateSnapshot captures one consistent point-in-time image across every
// shard. Multi-shard creates are a barrier: all shards quiesce to the same
// instant, then each logs its create note at that instant; because creates
// are the only ID-allocating operation and they always run on every shard,
// the per-shard IDs must agree — a mismatch is an invariant violation. A
// partial failure rolls back the shards that succeeded. With one shard
// this is a plain pass-through (no barrier), preserving bit-exactness.
func (r *Router) CreateSnapshot(now sim.Time) (iosnap.SnapshotID, sim.Time, error) {
	if r.closed {
		return 0, now, ErrClosed
	}
	if len(r.shards) == 1 {
		s, done, err := r.shards[0].CreateSnapshot(now)
		if err != nil {
			return 0, done, err
		}
		return s.ID, done, nil
	}
	tbar := r.barrierTime(now)
	r.stats.Barriers++
	r.stats.BarrierWait += tbar.Sub(now)
	var id iosnap.SnapshotID
	done := tbar
	created := 0
	for i, f := range r.shards {
		s, d, err := f.CreateSnapshot(tbar)
		if d > done {
			done = d
		}
		if err != nil {
			// Roll the completed shards back so no shard advertises a
			// snapshot that does not exist device-wide.
			for j := 0; j < created; j++ {
				if d2, derr := r.shards[j].DeleteSnapshot(done, id); derr == nil && d2 > done {
					done = d2
				}
			}
			return 0, done, fmt.Errorf("shard %d: snapshot create: %w", i, err)
		}
		if i == 0 {
			id = s.ID
		} else if s.ID != id {
			return 0, done, fmt.Errorf("shard %d: snapshot ID %d diverges from shard 0's %d", i, s.ID, id)
		}
		created++
	}
	return id, done, nil
}

// DeleteSnapshot tombstones id on every shard.
func (r *Router) DeleteSnapshot(now sim.Time, id iosnap.SnapshotID) (sim.Time, error) {
	if r.closed {
		return now, ErrClosed
	}
	if len(r.shards) == 1 {
		return r.shards[0].DeleteSnapshot(now, id)
	}
	done := now
	var errs []error
	for i, f := range r.shards {
		d, err := f.DeleteSnapshot(now, id)
		if d > done {
			done = d
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return done, errors.Join(errs...)
}

// SnapshotIDs lists the live snapshot IDs (identical on every shard, so
// shard 0 answers for the device).
func (r *Router) SnapshotIDs() []iosnap.SnapshotID {
	var out []iosnap.SnapshotID
	for _, s := range r.shards[0].Snapshots() {
		if !s.Deleted {
			out = append(out, s.ID)
		}
	}
	return out
}

// RouterView is a snapshot of the whole logical device activated across
// every shard.
type RouterView struct {
	r     *Router
	views []*iosnap.View
}

// ActivateSync activates snapshot id on every shard and composes the
// per-shard views into one logical view. A partial failure deactivates the
// views already built.
func (r *Router) ActivateSync(now sim.Time, id iosnap.SnapshotID, limit ratelimit.WorkSleep, writable bool) (*RouterView, sim.Time, error) {
	if r.closed {
		return nil, now, ErrClosed
	}
	views := make([]*iosnap.View, 0, len(r.shards))
	done := now
	for i, f := range r.shards {
		v, d, err := f.ActivateSync(now, id, limit, writable)
		if d > done {
			done = d
		}
		if err != nil {
			for _, pv := range views {
				if d2, derr := pv.Deactivate(done); derr == nil && d2 > done {
					done = d2
				}
			}
			return nil, done, fmt.Errorf("shard %d: activate %d: %w", i, id, err)
		}
		views = append(views, v)
	}
	return &RouterView{r: r, views: views}, done, nil
}

// Read fills buf from the snapshot image.
func (v *RouterView) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	ss := v.r.SectorSize()
	n := int64(len(buf) / ss)
	if len(v.views) == 1 {
		return v.views[0].Read(now, lba, buf)
	}
	exts := v.r.cfg.extents(lba, n, nil)
	done := now
	for _, e := range exts {
		d, err := v.views[e.shard].Read(now, e.lba, buf[e.off*int64(ss):(e.off+e.n)*int64(ss)])
		if d > done {
			done = d
		}
		if err != nil {
			return done, fmt.Errorf("shard %d: %w", e.shard, err)
		}
	}
	return done, nil
}

// Write stores data into a writable activation.
func (v *RouterView) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	ss := v.r.SectorSize()
	n := int64(len(data) / ss)
	if len(v.views) == 1 {
		return v.views[0].Write(now, lba, data)
	}
	exts := v.r.cfg.extents(lba, n, nil)
	done := now
	for _, e := range exts {
		d, err := v.views[e.shard].Write(now, e.lba, data[e.off*int64(ss):(e.off+e.n)*int64(ss)])
		if d > done {
			done = d
		}
		if err != nil {
			return done, fmt.Errorf("shard %d: %w", e.shard, err)
		}
	}
	return done, nil
}

// Deactivate releases the activation on every shard.
func (v *RouterView) Deactivate(now sim.Time) (sim.Time, error) {
	done := now
	var errs []error
	for i, pv := range v.views {
		d, err := pv.Deactivate(now)
		if d > done {
			done = d
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return done, errors.Join(errs...)
}

// Close checkpoints and closes every shard (each shard's Close never fails
// on checkpoint errors — it records them and closes anyway) and returns
// the latest finish.
func (r *Router) Close(now sim.Time) (sim.Time, error) {
	if r.closed {
		return now, ErrClosed
	}
	done := now
	var errs []error
	for i, f := range r.shards {
		d, err := f.Close(now)
		if d > done {
			done = d
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	r.closed = true
	return done, errors.Join(errs...)
}
