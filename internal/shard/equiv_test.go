package shard

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// With one shard the router must be a pure pass-through: the same seeded
// op mix driven through a Router{Shards:1} and through a bare iosnap.FTL
// must agree bit-for-bit — per-op completion times, errors, Stats, device
// Stats, and the full device image. This is the same lockstep discipline
// the batched-vs-reference data-path equivalence test enforces, lifted to
// the sharded front-end.

func equivBase() iosnap.Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 32
	nc.Segments = 32
	nc.Channels = 4
	nc.StoreData = true
	nc.ReadLatency = 2 * sim.Microsecond
	nc.ProgramLatency = 4 * sim.Microsecond
	nc.EraseLatency = 50 * sim.Microsecond
	cfg := iosnap.DefaultConfig(nc)
	cfg.GCWindow = 10 * sim.Millisecond
	cfg.BitmapPageBits = 64
	cfg.CoWPageCost = 10 * sim.Microsecond
	return cfg
}

type equivOp struct {
	kind byte // 'w' write, 'r' read, 't' trim, 's' snapshot, 'd' delete-snap
	lba  int64
	n    int
	ver  byte
}

func genEquivOps(seed int64, userSectors int64, count, maxRun int) []equivOp {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(userSectors-1))
	ops := make([]equivOp, 0, count)
	ver := byte(1)
	seqCursor := int64(0)
	for len(ops) < count {
		n := 1 + rng.Intn(maxRun)
		var lba int64
		switch rng.Intn(3) {
		case 0:
			lba = seqCursor
			if lba+int64(n) > userSectors {
				lba = 0
			}
			seqCursor = lba + int64(n)
		case 1:
			lba = rng.Int63n(userSectors - int64(n) + 1)
		default:
			lba = int64(zipf.Uint64())
			if lba+int64(n) > userSectors {
				lba = userSectors - int64(n)
			}
		}
		switch r := rng.Intn(20); {
		case r < 10:
			ver++
			ops = append(ops, equivOp{'w', lba, n, ver})
		case r < 15:
			ops = append(ops, equivOp{'r', lba, n, 0})
		case r < 17:
			ops = append(ops, equivOp{'t', lba, n, 0})
		case r < 19:
			ops = append(ops, equivOp{'s', 0, 0, 0})
		default:
			ops = append(ops, equivOp{'d', 0, 0, 0})
		}
	}
	return ops
}

func runPattern(ss int, lba int64, n int, ver byte) []byte {
	b := make([]byte, n*ss)
	for i := range b {
		sec := lba + int64(i/ss)
		b[i] = byte(sec) ^ byte(sec>>8) ^ ver ^ byte(i)
	}
	return b
}

func deviceDigest(t *testing.T, d *nand.Device) string {
	t.Helper()
	cfg := d.Config()
	var b strings.Builder
	for seg := 0; seg < cfg.Segments; seg++ {
		for i := 0; i < cfg.PagesPerSegment; i++ {
			a := d.Addr(seg, i)
			if !d.IsProgrammed(a) {
				continue
			}
			fp, err := d.PageFingerprint(a)
			if err != nil {
				t.Fatalf("fingerprint %v: %v", a, err)
			}
			oob, err := d.PageOOB(a)
			if err != nil {
				t.Fatalf("oob %v: %v", a, err)
			}
			fmt.Fprintf(&b, "%d/%d %x %x\n", seg, i, fp, oob)
		}
	}
	return b.String()
}

func TestSingleShardLockstepEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 23, 77} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			bare, err := iosnap.New(equivBase(), nil)
			if err != nil {
				t.Fatal(err)
			}
			router, err := NewRouter(Config{Base: equivBase(), Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			ss := bare.SectorSize()
			ops := genEquivOps(seed, bare.Sectors(), 250, 256)

			now := sim.Time(0)
			bbuf := make([]byte, 256*ss)
			rbuf := make([]byte, 256*ss)
			var liveSnaps []iosnap.SnapshotID
			for i, op := range ops {
				var bd, rd sim.Time
				var be, re error
				switch op.kind {
				case 'w':
					data := runPattern(ss, op.lba, op.n, op.ver)
					bd, be = bare.Write(now, op.lba, data)
					rd, re = router.Write(now, op.lba, data)
				case 'r':
					bd, be = bare.Read(now, op.lba, bbuf[:op.n*ss])
					rd, re = router.Read(now, op.lba, rbuf[:op.n*ss])
					if string(bbuf[:op.n*ss]) != string(rbuf[:op.n*ss]) {
						t.Fatalf("op %d (%c lba=%d n=%d): payload mismatch", i, op.kind, op.lba, op.n)
					}
				case 't':
					bd, be = bare.Trim(now, op.lba, int64(op.n))
					rd, re = router.Trim(now, op.lba, int64(op.n))
				case 's':
					var bs *iosnap.Snapshot
					var rid iosnap.SnapshotID
					bs, bd, be = bare.CreateSnapshot(now)
					rid, rd, re = router.CreateSnapshot(now)
					if be == nil {
						if bs.ID != rid {
							t.Fatalf("op %d: snapshot IDs diverge: %d vs %d", i, bs.ID, rid)
						}
						liveSnaps = append(liveSnaps, rid)
					}
				case 'd':
					if len(liveSnaps) == 0 {
						continue
					}
					id := liveSnaps[0]
					liveSnaps = liveSnaps[1:]
					bd, be = bare.DeleteSnapshot(now, id)
					rd, re = router.DeleteSnapshot(now, id)
				}
				if (be == nil) != (re == nil) {
					t.Fatalf("op %d (%c lba=%d n=%d): bare err %v, router err %v", i, op.kind, op.lba, op.n, be, re)
				}
				if bd != rd {
					t.Fatalf("op %d (%c lba=%d n=%d): bare done %d, router done %d (Δ %d)",
						i, op.kind, op.lba, op.n, bd, rd, bd.Sub(rd))
				}
				if bd > now {
					now = bd
				}
				bare.Scheduler().RunUntil(now)
				router.RunUntil(now)
			}

			// The pass-through must not have spent anything on front-end
			// machinery: no splits, no barriers, no bus waits.
			if rs := router.Stats(); rs != (RouterStats{}) {
				t.Fatalf("single-shard router accrued front-end stats: %+v", rs)
			}
			bs, ss2 := bare.Stats(), router.Shard(0).Stats()
			if bs != ss2 {
				t.Fatalf("Stats diverge:\nbare:   %+v\nrouter: %+v", bs, ss2)
			}
			if bdev, rdev := bare.Device().Stats(), router.Shard(0).Device().Stats(); bdev != rdev {
				t.Fatalf("device Stats diverge:\nbare:   %+v\nrouter: %+v", bdev, rdev)
			}
			if bdig, rdig := deviceDigest(t, bare.Device()), deviceDigest(t, router.Shard(0).Device()); bdig != rdig {
				t.Fatal("device images diverge")
			}
			if err := router.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			bd, be := bare.Close(now)
			rd, re := router.Close(now)
			if (be == nil) != (re == nil) || bd != rd {
				t.Fatalf("Close diverges: %v/%v at %d/%d", be, re, bd, rd)
			}
		})
	}
}
