package shard

import (
	"strings"
	"testing"

	"iosnap/internal/iosnap"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

// noLimit is an unthrottled activation budget.
var noLimit = ratelimit.WorkSleep{}

// multiBase is a 4-shard-friendly base: 768 user sectors leave each shard
// two spare segments for cleaning headroom.
func multiConfig(shards int, stripe int64) Config {
	cfg := Config{Base: equivBase(), Shards: shards, StripeSectors: stripe}
	cfg.Base.UserSectors = 768
	return cfg
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero shards", func(c *Config) { c.Shards = 0 }, "at least 1"},
		{"segments not divisible", func(c *Config) { c.Shards = 5 }, "not divisible"},
		{"sectors not divisible", func(c *Config) { c.Base.UserSectors = 770 }, "not divisible"},
		{"stripe misaligned", func(c *Config) { c.StripeSectors = 7 }, "stripe"},
		{"negative stripe", func(c *Config) { c.StripeSectors = -1 }, "negative"},
		{"negative bus", func(c *Config) { c.InterconnectReadMBps = -1 }, "bandwidth"},
		{"negative gc", func(c *Config) { c.GCConcurrency = -1 }, "GCConcurrency"},
	} {
		cfg := multiConfig(4, 32)
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := multiConfig(4, 32).Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

// TestExtentsPartitioning checks both partitioning schemes are bijections
// from the global LBA space onto per-shard spaces, split pieces are in
// ascending global order, and buffer offsets tile the request exactly.
func TestExtentsPartitioning(t *testing.T) {
	for _, tc := range []struct {
		name   string
		stripe int64
	}{{"contiguous", 0}, {"striped", 32}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := multiConfig(4, tc.stripe)
			per := cfg.Base.UserSectors / int64(cfg.Shards)
			seen := make(map[[2]int64]int64)
			for lba := int64(0); lba < cfg.Base.UserSectors; lba++ {
				exts := cfg.extents(lba, 1, nil)
				if len(exts) != 1 || exts[0].n != 1 || exts[0].off != 0 {
					t.Fatalf("lba %d: single-sector split wrong: %+v", lba, exts)
				}
				e := exts[0]
				if e.shard < 0 || e.shard >= cfg.Shards || e.lba < 0 || e.lba >= per {
					t.Fatalf("lba %d: out-of-range piece %+v", lba, e)
				}
				key := [2]int64{int64(e.shard), e.lba}
				if prev, dup := seen[key]; dup {
					t.Fatalf("lba %d and %d both map to shard %d local %d", prev, lba, e.shard, e.lba)
				}
				seen[key] = lba
			}
			if int64(len(seen)) != cfg.Base.UserSectors {
				t.Fatalf("mapping not onto: %d of %d", len(seen), cfg.Base.UserSectors)
			}
			// A long run must tile: offsets consecutive, total length n.
			exts := cfg.extents(10, 300, nil)
			var off int64
			for _, e := range exts {
				if e.off != off {
					t.Fatalf("offset gap: %+v at expected %d", e, off)
				}
				off += e.n
			}
			if off != 300 {
				t.Fatalf("pieces cover %d of 300 sectors", off)
			}
		})
	}
}

func TestDistributeConservesBudget(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 16, 17} {
		total := 0
		for i := 0; i < 4; i++ {
			total += distribute(n, 4, i)
		}
		if total != n {
			t.Fatalf("distribute(%d, 4): total %d", n, total)
		}
	}
}

func TestShardedWriteReadTrimRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		stripe int64
	}{{"contiguous", 0}, {"striped", 32}} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewRouter(multiConfig(4, tc.stripe))
			if err != nil {
				t.Fatal(err)
			}
			ss := r.SectorSize()
			now := sim.Time(0)
			// Runs of 100 sectors deliberately straddle both stripe and
			// contiguous shard boundaries.
			for lba := int64(0); lba+100 <= r.Sectors(); lba += 100 {
				if now, err = r.Write(now, lba, runPattern(ss, lba, 100, 1)); err != nil {
					t.Fatalf("write lba %d: %v", lba, err)
				}
				r.RunUntil(now)
			}
			buf := make([]byte, 100*ss)
			for lba := int64(0); lba+100 <= r.Sectors(); lba += 100 {
				if now, err = r.Read(now, lba, buf); err != nil {
					t.Fatalf("read lba %d: %v", lba, err)
				}
				if string(buf) != string(runPattern(ss, lba, 100, 1)) {
					t.Fatalf("payload mismatch at lba %d", lba)
				}
			}
			if st := r.Stats(); st.SplitOps == 0 || st.Pieces <= st.Ops {
				t.Fatalf("workload never crossed a shard boundary: %+v", st)
			}
			// Trim a boundary-straddling run; it must read back as zeros.
			if now, err = r.Trim(now, 150, 100); err != nil {
				t.Fatal(err)
			}
			if now, err = r.Read(now, 150, buf); err != nil {
				t.Fatal(err)
			}
			for i, c := range buf {
				if c != 0 {
					t.Fatalf("trimmed sector not zero at byte %d", i)
				}
			}
			if err := r.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Close(now); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Close(now); err != ErrClosed {
				t.Fatalf("second Close: got %v, want ErrClosed", err)
			}
		})
	}
}

// TestSnapshotBarrier: a multi-shard snapshot is one consistent image —
// same ID on every shard, taken at a single instant no earlier than any
// shard's in-flight NAND work, readable across shard boundaries after
// the active view moves on.
func TestSnapshotBarrier(t *testing.T) {
	r, err := NewRouter(multiConfig(4, 32))
	if err != nil {
		t.Fatal(err)
	}
	ss := r.SectorSize()
	now := sim.Time(0)
	if now, err = r.Write(now, 0, runPattern(ss, 0, 256, 1)); err != nil {
		t.Fatal(err)
	}
	// Snapshot while shard NAND is still busy: the barrier must wait.
	id, done, err := r.CreateSnapshot(now / 2)
	if err != nil {
		t.Fatal(err)
	}
	if done < now {
		t.Fatalf("snapshot completed at %d, before in-flight writes at %d", done, now)
	}
	st := r.Stats()
	if st.Barriers != 1 || st.BarrierWait <= 0 {
		t.Fatalf("barrier not exercised: %+v", st)
	}
	now = done
	// Every shard's tree must list the same ID, created at the same time.
	var createdAt sim.Time
	for i := 0; i < r.Shards(); i++ {
		snaps := r.Shard(i).Snapshots()
		if len(snaps) != 1 || snaps[0].ID != id {
			t.Fatalf("shard %d tree diverges: %+v", i, snaps)
		}
		if i == 0 {
			createdAt = snaps[0].CreatedAt
		} else if snaps[0].CreatedAt != createdAt {
			t.Fatalf("shard %d froze at %d, shard 0 at %d", i, snaps[0].CreatedAt, createdAt)
		}
	}
	// Diverge the active view, then read the old data through the
	// composed activation.
	if now, err = r.Write(now, 0, runPattern(ss, 0, 256, 2)); err != nil {
		t.Fatal(err)
	}
	view, done, err := r.ActivateSync(now, id, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	now = done
	buf := make([]byte, 256*ss)
	if now, err = view.Read(now, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(runPattern(ss, 0, 256, 1)) {
		t.Fatal("snapshot view does not show the frozen image")
	}
	if now, err = view.Deactivate(now); err != nil {
		t.Fatal(err)
	}
	if len(r.SnapshotIDs()) != 1 {
		t.Fatalf("SnapshotIDs = %v", r.SnapshotIDs())
	}
	if now, err = r.DeleteSnapshot(now, id); err != nil {
		t.Fatal(err)
	}
	if len(r.SnapshotIDs()) != 0 {
		t.Fatal("deleted snapshot still listed")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIDsStayAligned: creates and deletes interleaved with writes
// keep every shard's ID sequence identical.
func TestSnapshotIDsStayAligned(t *testing.T) {
	r, err := NewRouter(multiConfig(4, 32))
	if err != nil {
		t.Fatal(err)
	}
	ss := r.SectorSize()
	now := sim.Time(0)
	var ids []iosnap.SnapshotID
	for k := 0; k < 5; k++ {
		if now, err = r.Write(now, int64(k*64), runPattern(ss, int64(k*64), 64, byte(k+1))); err != nil {
			t.Fatal(err)
		}
		id, done, err := r.CreateSnapshot(now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		ids = append(ids, id)
	}
	if now, err = r.DeleteSnapshot(now, ids[2]); err != nil {
		t.Fatal(err)
	}
	live := r.SnapshotIDs()
	if len(live) != 4 {
		t.Fatalf("live snapshots: %v", live)
	}
	for i := 1; i < r.Shards(); i++ {
		a, b := r.Shard(0).Snapshots(), r.Shard(i).Snapshots()
		if len(a) != len(b) {
			t.Fatalf("shard %d tree size %d vs %d", i, len(b), len(a))
		}
		for j := range a {
			if a[j].ID != b[j].ID || a[j].Deleted != b[j].Deleted {
				t.Fatalf("shard %d entry %d diverges", i, j)
			}
		}
	}
}

func TestGovernorTokenGate(t *testing.T) {
	g := NewGovernor(2)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("governor denied within capacity")
	}
	if g.TryAcquire() {
		t.Fatal("governor admitted past capacity")
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("released token not reusable")
	}
	granted, denied := g.Counts()
	if granted != 3 || denied != 1 {
		t.Fatalf("counts granted=%d denied=%d", granted, denied)
	}
	if g.InUse() != 2 {
		t.Fatalf("InUse = %d", g.InUse())
	}
	// Unbounded governor only counts.
	u := NewGovernor(0)
	for i := 0; i < 10; i++ {
		if !u.TryAcquire() {
			t.Fatal("unbounded governor denied")
		}
	}
}

// TestGovernedCleaning: heavy overwrite churn across 4 shards with a
// global GC budget of 1 still cleans (granted tokens, completed runs) and
// never leaks a token.
func TestGovernedCleaning(t *testing.T) {
	cfg := multiConfig(4, 32)
	cfg.GCConcurrency = 1
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss := r.SectorSize()
	now := sim.Time(0)
	for round := 0; round < 20; round++ {
		for lba := int64(0); lba+128 <= r.Sectors(); lba += 128 {
			if now, err = r.Write(now, lba, runPattern(ss, lba, 128, byte(round+1))); err != nil {
				t.Fatalf("round %d lba %d: %v", round, lba, err)
			}
			r.RunUntil(now)
		}
	}
	now = r.Drain(now)
	var gcRuns int64
	for _, st := range r.ShardStats() {
		gcRuns += st.GCRuns
	}
	if gcRuns == 0 {
		t.Fatal("churn workload never cleaned")
	}
	granted, _ := r.Governor().Counts()
	if granted == 0 {
		t.Fatal("governed cleaning never acquired a token")
	}
	if r.Governor().InUse() != 0 {
		t.Fatalf("token leaked: InUse = %d", r.Governor().InUse())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInterconnectSerializes: with a shared write bus configured, two
// back-to-back writes at the same instant finish later than they would
// with infinite interconnect bandwidth.
func TestInterconnectSerializes(t *testing.T) {
	free, err := NewRouter(multiConfig(4, 32))
	if err != nil {
		t.Fatal(err)
	}
	cfg := multiConfig(4, 32)
	cfg.InterconnectWriteMBps = 100
	cfg.InterconnectReadMBps = 100
	bused, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss := free.SectorSize()
	data := runPattern(ss, 0, 256, 1)
	d1, err := free.Write(0, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := bused.Write(0, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Fatalf("bus-charged write done %d, free write done %d", d2, d1)
	}
	if bused.Stats().BusWait != 0 {
		t.Fatalf("first transfer should not wait, got %v", bused.Stats().BusWait)
	}
	// Issue a second write at time zero: it must queue behind the first
	// transfer on the shared link.
	if _, err := bused.Write(0, 256, data); err != nil {
		t.Fatal(err)
	}
	if bused.Stats().BusWait <= 0 {
		t.Fatal("second transfer did not queue on the shared interconnect")
	}
}
