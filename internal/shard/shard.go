// Package shard implements the sharded concurrent front-end over the
// snapshot-capable FTL (the LFTL direction: partition the LBA space across
// the device's parallelism so independent requests proceed in parallel
// instead of serializing behind one translation layer).
//
// The logical device is statically partitioned into N shards. Each shard
// owns a disjoint slice of everything that today serializes requests: its
// own forward map, CoW validity store, snapshot tree, GC accounting, log
// head, and NAND (an equal share of the segments and channels). A request
// is split at shard boundaries and the pieces proceed independently; two
// requests to different shards never contend on host-side state.
//
// Two execution modes share the same partitioning:
//
//   - Router is the deterministic virtual-time mode: a single caller
//     drives it exactly like an unsharded FTL, and shard overlap is
//     *modeled* — pieces of a request are submitted to their shards at the
//     same virtual instant, and each shard's NAND channels/buses queue the
//     work independently (the per-channel busy-time accounting
//     internal/nand already performs). With Shards=1 the Router is a pure
//     pass-through: bit-exact against the unsharded FTL in device state,
//     Stats, and virtual completion times (the equivalence tests demand
//     it).
//
//   - Service is the real-goroutine mode for wall-clock load tests: one
//     worker goroutine per shard consumes a request queue, many client
//     goroutines submit concurrently, and the per-shard virtual clocks
//     advance independently. It is clean under -race.
//
// Cross-shard machinery:
//
//   - Snapshot create is a barrier: all shards freeze at one consistent
//     instant (the maximum quiescence horizon across shard devices —
//     nand.Device.BusyUntil), a create note lands in every shard's log at
//     that instant, and the per-shard snapshot IDs are verified identical.
//     In service mode the barrier additionally drains every worker queue
//     before freezing.
//
//   - Background cleaning draws from a global budget: a Governor token
//     gate (iosnap.Config.GCGate) caps how many shards clean concurrently,
//     so a device-wide dip of the free pool cannot turn into N
//     simultaneous cleaners saturating every channel. Forced synchronous
//     cleans bypass the gate.
//
//   - The rescue reserve is a global budget distributed across shards:
//     Config.Base.RescueReserve segments total, round-robin, so sharding
//     does not multiply the held-back space.
//
//   - An optional shared interconnect (Config.InterconnectMBps) models the
//     host link all shards share: request payloads serialize over one bus
//     before fanning out to per-shard NAND. Zero disables it (required
//     for Shards=1 bit-exactness).
package shard

import (
	"fmt"
	"sync"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
)

// Config parameterizes the sharded front-end.
type Config struct {
	// Base is the configuration of the WHOLE logical device; New splits it
	// evenly across shards (segments, channels, user sectors, reserves).
	// With Shards=1 the single shard receives Base verbatim.
	Base iosnap.Config

	// Shards is the number of LBA-space partitions (>= 1).
	Shards int

	// StripeSectors selects striped partitioning: consecutive
	// StripeSectors-sector stripes rotate across shards, so sequential
	// streams fan out over every shard. 0 selects contiguous partitioning
	// (shard i owns one big range), which keeps per-shard locality but
	// serializes sequential streams on one shard.
	StripeSectors int64

	// InterconnectReadMBps/InterconnectWriteMBps model the shared host
	// link between the front-end and the shards: read completions and
	// write payloads serialize over it before/after fanning out. 0
	// disables a direction (the default, and required for Shards=1
	// lockstep equivalence with the unsharded FTL).
	InterconnectReadMBps  int
	InterconnectWriteMBps int

	// GCConcurrency caps how many shards may run *background* cleaning at
	// once (the global GC budget). 0 = unlimited (no gate installed).
	GCConcurrency int
}

// DefaultConfig mirrors iosnap.DefaultConfig over the given geometry with
// striped partitioning sized to one segment's worth of sectors.
func DefaultConfig(nc nand.Config, shards int) Config {
	return Config{
		Base:          iosnap.DefaultConfig(nc),
		Shards:        shards,
		StripeSectors: int64(nc.PagesPerSegment),
	}
}

// Validate checks shard-level consistency (per-shard configs are validated
// again by iosnap.New when the router is built).
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("shard: Shards %d must be at least 1", c.Shards)
	}
	if c.Base.Nand.Segments%c.Shards != 0 {
		return fmt.Errorf("shard: Segments %d not divisible by %d shards", c.Base.Nand.Segments, c.Shards)
	}
	if c.Base.UserSectors%int64(c.Shards) != 0 {
		return fmt.Errorf("shard: UserSectors %d not divisible by %d shards", c.Base.UserSectors, c.Shards)
	}
	if c.StripeSectors < 0 {
		return fmt.Errorf("shard: StripeSectors %d must not be negative", c.StripeSectors)
	}
	if c.StripeSectors > 0 && c.Base.UserSectors%(c.StripeSectors*int64(c.Shards)) != 0 {
		return fmt.Errorf("shard: UserSectors %d not divisible by stripe %d x %d shards",
			c.Base.UserSectors, c.StripeSectors, c.Shards)
	}
	if c.InterconnectReadMBps < 0 || c.InterconnectWriteMBps < 0 {
		return fmt.Errorf("shard: interconnect bandwidth must not be negative")
	}
	if c.GCConcurrency < 0 {
		return fmt.Errorf("shard: GCConcurrency %d must not be negative", c.GCConcurrency)
	}
	return nil
}

// shardConfig derives shard i's iosnap configuration: an equal slice of
// the segments, channels, and advertised capacity, with the reserve
// budgets distributed so the device-wide totals match Base.
func (c Config) shardConfig(i int, gate iosnap.GCGate) iosnap.Config {
	sc := c.Base
	if c.Shards == 1 {
		sc.GCGate = gate
		return sc
	}
	sc.Nand.Segments = c.Base.Nand.Segments / c.Shards
	if ch := c.Base.Nand.Channels / c.Shards; ch >= 1 {
		sc.Nand.Channels = ch
	} else {
		sc.Nand.Channels = 1
	}
	sc.UserSectors = c.Base.UserSectors / int64(c.Shards)
	sc.ReserveSegments = distribute(c.Base.ReserveSegments, c.Shards, i)
	if sc.ReserveSegments < 1 {
		sc.ReserveSegments = 1
	}
	sc.RescueReserve = distribute(c.Base.RescueReserve, c.Shards, i)
	sc.GCGate = gate
	return sc
}

// distribute splits a global budget of n tokens across shards round-robin:
// shard i receives floor(n/shards) plus one of the n%shards remainder.
func distribute(n, shards, i int) int {
	per := n / shards
	if i < n%shards {
		per++
	}
	return per
}

// extent is one shard-local piece of a global request.
type extent struct {
	shard int   // owning shard
	lba   int64 // shard-local LBA
	n     int64 // sectors in this piece
	off   int64 // sector offset within the global request
}

// extents splits the global run [lba, lba+n) into shard-local pieces in
// ascending global-LBA order. The split respects both partitioning
// schemes; with one shard it returns a single identity piece.
func (c *Config) extents(lba, n int64, out []extent) []extent {
	out = out[:0]
	if c.Shards == 1 {
		return append(out, extent{shard: 0, lba: lba, n: n})
	}
	off := int64(0)
	if c.StripeSectors > 0 {
		s := c.StripeSectors
		for n > 0 {
			si := lba / s
			within := lba % s
			take := s - within
			if take > n {
				take = n
			}
			out = append(out, extent{
				shard: int(si % int64(c.Shards)),
				lba:   (si/int64(c.Shards))*s + within,
				n:     take,
				off:   off,
			})
			lba += take
			n -= take
			off += take
		}
		return out
	}
	per := c.Base.UserSectors / int64(c.Shards)
	for n > 0 {
		sh := lba / per
		local := lba % per
		take := per - local
		if take > n {
			take = n
		}
		out = append(out, extent{shard: int(sh), lba: local, n: take, off: off})
		lba += take
		n -= take
		off += take
	}
	return out
}

// Governor is the global background-GC budget: a token gate shared by
// every shard's cleaner (installed as iosnap.Config.GCGate). It is safe
// for concurrent use, so the same governor serves both execution modes.
type Governor struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	denied   int64
	granted  int64
}

// NewGovernor returns a governor admitting at most capacity concurrent
// background cleans; capacity <= 0 admits everything (counting only).
func NewGovernor(capacity int) *Governor {
	return &Governor{capacity: capacity}
}

// TryAcquire implements iosnap.GCGate.
func (g *Governor) TryAcquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.capacity > 0 && g.inUse >= g.capacity {
		g.denied++
		return false
	}
	g.inUse++
	g.granted++
	return true
}

// Release implements iosnap.GCGate.
func (g *Governor) Release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inUse > 0 {
		g.inUse--
	}
}

// InUse returns how many cleans currently hold a token.
func (g *Governor) InUse() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}

// Counts returns how many acquisitions were granted and denied.
func (g *Governor) Counts() (granted, denied int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.granted, g.denied
}
