package shard

import (
	"errors"
	"fmt"
	"sync"

	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

// Service is the real-goroutine execution mode of the sharded front-end:
// one worker goroutine per shard owns that shard's FTL, scheduler, and
// virtual clock, and consumes a queue of request closures. Any number of
// client goroutines may submit concurrently; requests to different shards
// proceed in parallel, requests to the same shard serialize in queue
// order.
//
// Synchronization model. All shard state is touched only (a) by its
// worker goroutine or (b) by a caller holding the barrier write lock
// while every queue is provably empty. Ordinary operations hold the read
// lock: they enqueue closures and block on per-piece reply channels, so a
// client releases the read lock only after its pieces finished executing.
// The barrier (snapshot create, stats, close) takes the write lock, which
// it cannot acquire until every reader released — i.e. until every
// submitted closure has executed and replied. The worker's writes to
// shard state happen-before its reply send, which happens-before the
// client's read-lock release, which happens-before the barrier's
// write-lock acquire: direct FTL access under the write lock is
// race-free, and the race detector can follow that chain.
//
// Virtual time. Each worker keeps its own clock vnow: ops execute at
// vnow, which then advances to the op's completion. The clocks decouple —
// that is the point of sharding (an op on shard 3 does not wait for shard
// 5's clock) — and re-synchronize only at snapshot barriers, which
// advance every clock to the common freeze instant.
type Service struct {
	r  *serviceState
	mu sync.RWMutex
}

// serviceState is everything governed by the synchronization model above;
// keeping it behind one pointer makes the ownership rule auditable.
type serviceState struct {
	cfg    Config
	shards []*iosnap.FTL
	gov    *Governor
	queues []chan func()
	vnow   []sim.Time
	wg     sync.WaitGroup
	closed bool
}

// NewService builds fresh shards and starts one worker per shard.
func NewService(cfg Config) (*Service, error) {
	return newService(cfg, nil)
}

// NewServiceFrom recovers one FTL per already-loaded device and serves
// them as shards: devs[i] becomes shard i, crash-recovered under shard i's
// derived configuration. This is the storage server's mount path — the
// daemon loads each shard's image, recovers here, serves traffic, and
// saves the same devices back out at shutdown. Each shard's virtual clock
// starts at its recovery completion time.
func NewServiceFrom(cfg Config, devs []*nand.Device) (*Service, error) {
	if len(devs) != cfg.Shards {
		return nil, fmt.Errorf("shard: %d devices for %d shards", len(devs), cfg.Shards)
	}
	return newService(cfg, devs)
}

func newService(cfg Config, devs []*nand.Device) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &serviceState{cfg: cfg}
	var gate iosnap.GCGate
	if cfg.GCConcurrency > 0 {
		in.gov = NewGovernor(cfg.GCConcurrency)
		gate = in.gov
	}
	in.vnow = make([]sim.Time, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sc := cfg.shardConfig(i, gate)
		var f *iosnap.FTL
		var err error
		if devs == nil {
			f, err = iosnap.New(sc, nil)
		} else {
			f, in.vnow[i], err = iosnap.Recover(sc, devs[i], nil, 0)
		}
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		in.shards = append(in.shards, f)
		in.queues = append(in.queues, make(chan func(), 64))
	}
	s := &Service{r: in}
	for i := range in.queues {
		in.wg.Add(1)
		go func(q chan func()) {
			defer in.wg.Done()
			for fn := range q {
				fn()
			}
		}(in.queues[i])
	}
	return s, nil
}

// ConfigForDevices derives the service configuration whose per-shard split
// reproduces exactly the geometry of the given (identically-configured)
// devices — the inverse of shardConfig, used when mounting existing
// per-shard images. Contiguous partitioning is selected: shard boundaries
// must match what the images were written under, and contiguous is the
// layout the daemon initializes.
func ConfigForDevices(devs []*nand.Device) (Config, error) {
	if len(devs) == 0 {
		return Config{}, fmt.Errorf("shard: no devices")
	}
	nc := devs[0].Config()
	for i, d := range devs {
		if d.Config() != nc {
			return Config{}, fmt.Errorf("shard: device %d geometry differs from device 0", i)
		}
	}
	n := len(devs)
	per := iosnap.DefaultConfig(nc)
	base := per
	base.Nand.Segments = nc.Segments * n
	base.Nand.Channels = nc.Channels * n
	base.UserSectors = per.UserSectors * int64(n)
	base.ReserveSegments = per.ReserveSegments * n
	base.RescueReserve = per.RescueReserve * n
	return Config{Base: base, Shards: n}, nil
}

// LiveSnapshots returns the number of live snapshots (shard 0's count;
// cross-shard snapshot IDs are aligned by the create barrier). It takes
// the barrier lock, so it observes a quiescent point.
func (s *Service) LiveSnapshots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.shards[0].Tree().Live()
}

// MappedSectors sums the mapped-sector counts across shards at a quiescent
// point.
func (s *Service) MappedSectors() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, f := range s.r.shards {
		total += int64(f.MappedSectors())
	}
	return total
}

// Shards returns the number of shards.
func (s *Service) Shards() int { return len(s.r.shards) }

// SectorSize returns the logical sector size.
func (s *Service) SectorSize() int { return s.r.cfg.Base.Nand.SectorSize }

// Sectors returns the advertised capacity of the whole logical device.
func (s *Service) Sectors() int64 { return s.r.cfg.Base.UserSectors }

// Governor returns the global GC governor, or nil when GCConcurrency is 0.
func (s *Service) Governor() *Governor { return s.r.gov }

// shardOp is one piece of work bound for one shard's worker. The worker
// runs the shard's scheduler up to its clock, executes op at the clock,
// and advances the clock to the completion time.
type shardOp func(f *iosnap.FTL, now sim.Time) (sim.Time, error)

// submit enqueues op on shard i and returns the reply channel. The caller
// must hold s.mu.RLock for the whole submit/await span.
func (s *Service) submit(i int, op shardOp) chan error {
	in := s.r
	reply := make(chan error, 1)
	in.queues[i] <- func() {
		f := in.shards[i]
		f.Scheduler().RunUntil(in.vnow[i])
		done, err := op(f, in.vnow[i])
		if done > in.vnow[i] {
			in.vnow[i] = done
		}
		reply <- err
	}
	return reply
}

// await collects every piece's reply and returns the first error (all
// pieces are always awaited, so no reply leaks).
func await(replies []chan error) error {
	var first error
	for _, ch := range replies {
		if err := <-ch; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Service) checkIO(lba, n int64) error {
	if n <= 0 || lba < 0 || lba+n > s.r.cfg.Base.UserSectors {
		return fmt.Errorf("shard: I/O out of range: lba %d n %d (capacity %d)", lba, n, s.r.cfg.Base.UserSectors)
	}
	return nil
}

// Write stores data at lba, fanning the pieces out to their shard workers
// and waiting for all of them.
func (s *Service) Write(lba int64, data []byte) error {
	ss := s.SectorSize()
	if len(data) == 0 || len(data)%ss != 0 {
		return fmt.Errorf("shard: write size %d not sector aligned", len(data))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.r.closed {
		return ErrClosed
	}
	n := int64(len(data) / ss)
	if err := s.checkIO(lba, n); err != nil {
		return err
	}
	exts := s.r.cfg.extents(lba, n, nil)
	replies := make([]chan error, 0, len(exts))
	for _, e := range exts {
		e := e
		replies = append(replies, s.submit(e.shard, func(f *iosnap.FTL, now sim.Time) (sim.Time, error) {
			return f.Write(now, e.lba, data[e.off*int64(ss):(e.off+e.n)*int64(ss)])
		}))
	}
	return await(replies)
}

// Read fills buf from lba. Pieces target disjoint buf ranges, so the
// concurrent writes into buf do not race.
func (s *Service) Read(lba int64, buf []byte) error {
	ss := s.SectorSize()
	if len(buf) == 0 || len(buf)%ss != 0 {
		return fmt.Errorf("shard: read size %d not sector aligned", len(buf))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.r.closed {
		return ErrClosed
	}
	n := int64(len(buf) / ss)
	if err := s.checkIO(lba, n); err != nil {
		return err
	}
	exts := s.r.cfg.extents(lba, n, nil)
	replies := make([]chan error, 0, len(exts))
	for _, e := range exts {
		e := e
		replies = append(replies, s.submit(e.shard, func(f *iosnap.FTL, now sim.Time) (sim.Time, error) {
			return f.Read(now, e.lba, buf[e.off*int64(ss):(e.off+e.n)*int64(ss)])
		}))
	}
	return await(replies)
}

// Trim invalidates [lba, lba+n).
func (s *Service) Trim(lba, n int64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.r.closed {
		return ErrClosed
	}
	if err := s.checkIO(lba, n); err != nil {
		return err
	}
	exts := s.r.cfg.extents(lba, n, nil)
	replies := make([]chan error, 0, len(exts))
	for _, e := range exts {
		e := e
		replies = append(replies, s.submit(e.shard, func(f *iosnap.FTL, now sim.Time) (sim.Time, error) {
			return f.Trim(now, e.lba, e.n)
		}))
	}
	return await(replies)
}

// CreateSnapshot is the service-mode barrier: it takes the write lock
// (acquired only once every in-flight request has fully completed — see
// the synchronization model above), computes the consistent freeze
// instant across all shard clocks and devices, and logs the create note
// on every shard at that instant. All shard clocks advance to the
// barrier, re-synchronizing them.
func (s *Service) CreateSnapshot() (iosnap.SnapshotID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := s.r
	if in.closed {
		return 0, ErrClosed
	}
	tbar := sim.Time(0)
	for i, f := range in.shards {
		if in.vnow[i] > tbar {
			tbar = in.vnow[i]
		}
		if b := f.Device().BusyUntil(); b > tbar {
			tbar = b
		}
	}
	var id iosnap.SnapshotID
	created := 0
	for i, f := range in.shards {
		f.Scheduler().RunUntil(tbar)
		snap, done, err := f.CreateSnapshot(tbar)
		if done > in.vnow[i] {
			in.vnow[i] = done
		} else {
			in.vnow[i] = tbar
		}
		if err != nil {
			for j := 0; j < created; j++ {
				if d, derr := in.shards[j].DeleteSnapshot(in.vnow[j], id); derr == nil && d > in.vnow[j] {
					in.vnow[j] = d
				}
			}
			return 0, fmt.Errorf("shard %d: snapshot create: %w", i, err)
		}
		if i == 0 {
			id = snap.ID
		} else if snap.ID != id {
			return 0, fmt.Errorf("shard %d: snapshot ID %d diverges from shard 0's %d", i, snap.ID, id)
		}
		created++
	}
	return id, nil
}

// DeleteSnapshot tombstones id on every shard (no barrier needed: deletes
// allocate nothing and commute with data ops).
func (s *Service) DeleteSnapshot(id iosnap.SnapshotID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.r.closed {
		return ErrClosed
	}
	replies := make([]chan error, 0, len(s.r.shards))
	for i := range s.r.shards {
		replies = append(replies, s.submit(i, func(f *iosnap.FTL, now sim.Time) (sim.Time, error) {
			return f.DeleteSnapshot(now, id)
		}))
	}
	return await(replies)
}

// ServiceView is an activated snapshot spanning every shard; its I/O goes
// through the same worker queues as live I/O.
type ServiceView struct {
	s     *Service
	views []*iosnap.View
}

// ActivateSync activates snapshot id on every shard. The per-shard
// activations run on the workers (serializing with that shard's live
// I/O); a partial failure deactivates what was built.
func (s *Service) ActivateSync(id iosnap.SnapshotID, writable bool) (*ServiceView, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.r.closed {
		return nil, ErrClosed
	}
	views := make([]*iosnap.View, len(s.r.shards))
	replies := make([]chan error, 0, len(s.r.shards))
	for i := range s.r.shards {
		i := i
		replies = append(replies, s.submit(i, func(f *iosnap.FTL, now sim.Time) (sim.Time, error) {
			v, done, err := f.ActivateSync(now, id, ratelimit.WorkSleep{}, writable)
			views[i] = v // worker-owned slot; published by the reply send
			return done, err
		}))
	}
	if err := await(replies); err != nil {
		for i, v := range views {
			if v == nil {
				continue
			}
			i, v := i, v
			<-s.submit(i, func(f *iosnap.FTL, now sim.Time) (sim.Time, error) {
				return v.Deactivate(now)
			})
		}
		return nil, err
	}
	return &ServiceView{s: s, views: views}, nil
}

// Read fills buf from the snapshot image.
func (v *ServiceView) Read(lba int64, buf []byte) error {
	s := v.s
	ss := s.SectorSize()
	if len(buf) == 0 || len(buf)%ss != 0 {
		return fmt.Errorf("shard: read size %d not sector aligned", len(buf))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.r.closed {
		return ErrClosed
	}
	n := int64(len(buf) / ss)
	if err := s.checkIO(lba, n); err != nil {
		return err
	}
	exts := s.r.cfg.extents(lba, n, nil)
	replies := make([]chan error, 0, len(exts))
	for _, e := range exts {
		e := e
		replies = append(replies, s.submit(e.shard, func(f *iosnap.FTL, now sim.Time) (sim.Time, error) {
			return v.views[e.shard].Read(now, e.lba, buf[e.off*int64(ss):(e.off+e.n)*int64(ss)])
		}))
	}
	return await(replies)
}

// Deactivate releases the activation on every shard.
func (v *ServiceView) Deactivate() error {
	s := v.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.r.closed {
		return ErrClosed
	}
	replies := make([]chan error, 0, len(v.views))
	for i, pv := range v.views {
		pv := pv
		replies = append(replies, s.submit(i, func(f *iosnap.FTL, now sim.Time) (sim.Time, error) {
			return pv.Deactivate(now)
		}))
	}
	return await(replies)
}

// Summary is a single-barrier snapshot of everything a stats consumer
// wants: geometry, aggregate counts, and the per-shard counters plus
// virtual clocks (whose skew is the cross-shard load imbalance).
type Summary struct {
	Shards        int
	SectorSize    int
	Sectors       int64
	LiveSnapshots int
	MappedSectors int64
	PerShard      []iosnap.Stats
	Virtual       []sim.Time
}

// Summary collects the full statistics snapshot under one barrier, so all
// of its fields describe the same quiescent point (unlike calling
// LiveSnapshots, MappedSectors, and ShardStats back to back, which pays
// three barriers and lets I/O slip between them).
func (s *Service) Summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := s.r
	sum := Summary{
		Shards:        len(in.shards),
		SectorSize:    in.cfg.Base.Nand.SectorSize,
		Sectors:       in.cfg.Base.UserSectors,
		LiveSnapshots: in.shards[0].Tree().Live(),
		PerShard:      make([]iosnap.Stats, len(in.shards)),
		Virtual:       make([]sim.Time, len(in.shards)),
	}
	for i, f := range in.shards {
		sum.MappedSectors += int64(f.MappedSectors())
		sum.PerShard[i] = f.Stats()
		sum.Virtual[i] = in.vnow[i]
	}
	return sum
}

// ShardStats returns each shard's statistics plus its virtual clock. It
// takes the barrier lock, so it observes a quiescent point.
func (s *Service) ShardStats() ([]iosnap.Stats, []sim.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats := make([]iosnap.Stats, len(s.r.shards))
	vnow := make([]sim.Time, len(s.r.shards))
	for i, f := range s.r.shards {
		stats[i] = f.Stats()
		vnow[i] = s.r.vnow[i]
	}
	return stats, vnow
}

// MaxVirtualTime returns the latest shard clock: the virtual makespan of
// everything executed so far.
func (s *Service) MaxVirtualTime() sim.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t sim.Time
	for _, v := range s.r.vnow {
		if v > t {
			t = v
		}
	}
	return t
}

// CheckInvariants sweeps every shard at a quiescent point.
func (s *Service) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for i, f := range s.r.shards {
		if err := f.CheckInvariants(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close stops the workers (draining their queues), drains each shard's
// scheduler, and closes each FTL at its final clock. Further calls on the
// service return ErrClosed.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := s.r
	if in.closed {
		return ErrClosed
	}
	in.closed = true
	for _, q := range in.queues {
		close(q)
	}
	in.wg.Wait()
	var errs []error
	for i, f := range in.shards {
		if d := f.Scheduler().Drain(in.vnow[i]); d > in.vnow[i] {
			in.vnow[i] = d
		}
		d, err := f.Close(in.vnow[i])
		if d > in.vnow[i] {
			in.vnow[i] = d
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
