package shard

import (
	"fmt"
	"testing"
)

// BenchmarkShardService reports the virtual-time throughput of the
// goroutine service mode at 1, 4, and 16 shards over an identical seeded
// workload. The virtual-MB/s metric is a function of the seed and
// geometry, not of host speed or core count — only the queue-arrival
// interleaving moves it, by a couple of percent; bench.sh extracts it
// into BENCH_shard.json and enforces the 16-vs-1 scaling floor with wide
// margin. Wall time is reported by the benchmark framework as usual but
// not gated — this container may have a single CPU.
func BenchmarkShardService(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := RunLoad(LoadConfig{
					Shards:       shards,
					Clients:      16,
					OpsPerClient: 150,
					RunSectors:   16,
					Seed:         1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.VirtualMBps(), "virtual-MB/s")
				b.ReportMetric(float64(rep.Virtual)/1e6, "virtual-ms")
				b.SetBytes(rep.Bytes)
			}
		})
	}
}
