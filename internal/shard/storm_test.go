package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestServiceStorm is the race-detector torture test for service mode:
// several client goroutines hammer reads, writes, and trims while another
// churns the snapshot lifecycle (create barrier, activate, view reads,
// deactivate, delete) across all shards. Each client owns a disjoint LBA
// region — which still spans every shard, because the space is striped —
// so it can verify its own read-after-write content exactly even though
// the global interleaving is nondeterministic.
func TestServiceStorm(t *testing.T) {
	cfg := multiConfig(4, 32)
	// Snapshots pin overwritten epochs until deleted, so the storm needs
	// real over-provisioning headroom: double the segments, same
	// advertised capacity.
	cfg.Base.Nand.Segments = 64
	cfg.GCConcurrency = 2
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss := svc.SectorSize()

	const clients = 6
	const opsPerClient = 120
	region := svc.Sectors() / clients

	var wg sync.WaitGroup
	errCh := make(chan error, clients+1)

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			base := int64(c) * region
			buf := make([]byte, 64*ss)
			ver := make(map[int64]byte)
			for op := 0; op < opsPerClient; op++ {
				n := int64(1 + rng.Intn(64))
				lba := base + rng.Int63n(region-n+1)
				switch rng.Intn(10) {
				case 0: // trim, then confirm zeros
					if err := svc.Trim(lba, n); err != nil {
						errCh <- fmt.Errorf("client %d trim: %w", c, err)
						return
					}
					for s := lba; s < lba+n; s++ {
						ver[s] = 0
					}
				default:
					v := byte(1 + rng.Intn(200))
					if err := svc.Write(lba, runPattern(ss, lba, int(n), v)); err != nil {
						errCh <- fmt.Errorf("client %d write: %w", c, err)
						return
					}
					for s := lba; s < lba+n; s++ {
						ver[s] = v
					}
					if err := svc.Read(lba, buf[:n*int64(ss)]); err != nil {
						errCh <- fmt.Errorf("client %d read: %w", c, err)
						return
					}
					want := runPattern(ss, lba, int(n), v)
					if string(buf[:n*int64(ss)]) != string(want) {
						errCh <- fmt.Errorf("client %d: read-after-write mismatch at lba %d", c, lba)
						return
					}
				}
			}
			// Final sweep: every sector in the region matches its last
			// recorded version (zero = trimmed or never written).
			one := make([]byte, ss)
			for s := base; s < base+region; s++ {
				v, ok := ver[s]
				if !ok {
					continue
				}
				if err := svc.Read(s, one); err != nil {
					errCh <- fmt.Errorf("client %d sweep read: %w", c, err)
					return
				}
				var want []byte
				if v == 0 {
					want = make([]byte, ss)
				} else {
					want = runPattern(ss, s, 1, v)
				}
				if string(one) != string(want) {
					errCh <- fmt.Errorf("client %d: sweep mismatch at lba %d", c, s)
					return
				}
			}
		}(c)
	}

	// Snapshot churner: lifecycle ops riding across all shards while the
	// clients run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		buf := make([]byte, 32*ss)
		for k := 0; k < 12; k++ {
			id, err := svc.CreateSnapshot()
			if err != nil {
				errCh <- fmt.Errorf("snapshot create: %w", err)
				return
			}
			view, err := svc.ActivateSync(id, false)
			if err != nil {
				errCh <- fmt.Errorf("activate %d: %w", id, err)
				return
			}
			// Frozen-image reads race with live writes by design; content
			// is checked by the barrier test, here we only demand they
			// complete without error.
			for j := 0; j < 4; j++ {
				lba := rng.Int63n(svc.Sectors() - 32)
				if err := view.Read(lba, buf); err != nil {
					errCh <- fmt.Errorf("view read: %w", err)
					return
				}
			}
			if err := view.Deactivate(); err != nil {
				errCh <- fmt.Errorf("deactivate %d: %w", id, err)
				return
			}
			if err := svc.DeleteSnapshot(id); err != nil {
				errCh <- fmt.Errorf("delete %d: %w", id, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if svc.MaxVirtualTime() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if g := svc.Governor(); g.InUse() != 0 {
		t.Fatalf("GC token leaked: %d", g.InUse())
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: got %v, want ErrClosed", err)
	}
	if err := svc.Write(0, make([]byte, ss)); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after Close: got %v, want ErrClosed", err)
	}
}
