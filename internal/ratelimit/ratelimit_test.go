package ratelimit

import (
	"testing"

	"iosnap/internal/sim"
)

func TestWorkSleepEnabled(t *testing.T) {
	if (WorkSleep{}).Enabled() {
		t.Fatal("zero value should be disabled")
	}
	ws := WorkSleep{Work: 50 * sim.Microsecond, Sleep: 250 * sim.Millisecond}
	if !ws.Enabled() {
		t.Fatal("configured limiter should be enabled")
	}
	if ws.String() != "50.00us/250.00ms" {
		t.Fatalf("String = %q", ws.String())
	}
	if (WorkSleep{}).String() != "unlimited" {
		t.Fatal("zero String should be unlimited")
	}
}

func TestBudgetCharges(t *testing.T) {
	b := NewBudget(WorkSleep{Work: 100, Sleep: 1000})
	for i := 0; i < 9; i++ {
		if sleep, ex := b.Charge(10); ex || sleep != 0 {
			t.Fatalf("charge %d exhausted early", i)
		}
	}
	sleep, ex := b.Charge(10)
	if !ex || sleep != 1000 {
		t.Fatalf("budget not exhausted at 100: sleep=%d ex=%v", sleep, ex)
	}
	// Accumulator must reset.
	if _, ex := b.Charge(10); ex {
		t.Fatal("budget did not reset after sleep")
	}
}

func TestBudgetDisabled(t *testing.T) {
	b := NewBudget(WorkSleep{})
	for i := 0; i < 1000; i++ {
		if _, ex := b.Charge(1 << 40); ex {
			t.Fatal("disabled budget exhausted")
		}
	}
}

func TestBudgetOvershootSingleCharge(t *testing.T) {
	// A quantum worth ten full work periods owes ten sleeps, not one: the
	// old code reset the accumulator to zero and systematically
	// under-throttled large scan quanta.
	b := NewBudget(WorkSleep{Work: 100, Sleep: 7})
	sleep, ex := b.Charge(1000)
	if !ex || sleep != 70 {
		t.Fatalf("Charge(1000) = %d,%v; want 70 (10 periods x 7)", sleep, ex)
	}
}

func TestBudgetCarryoverExact(t *testing.T) {
	b := NewBudget(WorkSleep{Work: 100, Sleep: 7})
	// 250 = 2 full periods + 50 carried over.
	sleep, ex := b.Charge(250)
	if !ex || sleep != 14 {
		t.Fatalf("Charge(250) = %d,%v; want 14", sleep, ex)
	}
	// The 50 remainder must persist: another 50 completes a period.
	if sleep, ex := b.Charge(49); ex || sleep != 0 {
		t.Fatalf("Charge(49) = %d,%v; carryover lost", sleep, ex)
	}
	sleep, ex = b.Charge(1)
	if !ex || sleep != 7 {
		t.Fatalf("Charge(1) after 250+49 = %d,%v; want 7", sleep, ex)
	}
	// Long-run conservation: total sleep tracks total work regardless of
	// quantum sizes.
	b = NewBudget(WorkSleep{Work: 100, Sleep: 7})
	var total sim.Duration
	for _, q := range []sim.Duration{3, 333, 64, 1, 999, 100, 42, 58} {
		s, _ := b.Charge(q)
		total += s
	}
	// 1600 units of work = 16 periods = 112 sleep.
	if total != 112 {
		t.Fatalf("total sleep = %d, want 112", total)
	}
}

func TestPacerSpreadsWork(t *testing.T) {
	p := NewPacer(0, 10, 1000)
	var prev sim.Time = -1
	for i := 0; i < 10; i++ {
		at := p.Ready(0)
		if at != sim.Time(i*100) {
			t.Fatalf("unit %d ready at %d, want %d", i, at, i*100)
		}
		if at <= prev && i > 0 {
			t.Fatalf("non-monotone ready times")
		}
		prev = at
	}
}

func TestPacerOverrunRunsImmediately(t *testing.T) {
	p := NewPacer(0, 2, 1000)
	p.Ready(0)
	p.Ready(0)
	// Third unit exceeds the plan: it must run at `now` with no delay.
	if at := p.Ready(1234); at != 1234 {
		t.Fatalf("overrun unit delayed to %d", at)
	}
	done, overrun := p.Consumed()
	if done != 3 || !overrun {
		t.Fatalf("Consumed = %d,%v", done, overrun)
	}
}

func TestPacerNeverBeforeNow(t *testing.T) {
	p := NewPacer(0, 10, 1000)
	// Caller shows up late; pacing must not send it into the past.
	if at := p.Ready(5000); at != 5000 {
		t.Fatalf("Ready returned %d < now", at)
	}
}

func TestPacerDisabled(t *testing.T) {
	p := NewPacer(0, 0, 1000)
	if at := p.Ready(42); at != 42 {
		t.Fatal("disabled pacer delayed work")
	}
}

func TestPacerLargePlanNoZeroDelayCollapse(t *testing.T) {
	// planned > window's tick count: the old per-unit-delay computation
	// truncated window/planned to 0 and disabled pacing entirely. With
	// remainder-spreading the plan still covers the window.
	const window = 1000
	const planned = 3000
	p := NewPacer(0, planned, window)
	var last sim.Time
	nonzero := false
	for i := 0; i < planned; i++ {
		at := p.Ready(0)
		if at < last {
			t.Fatalf("unit %d ready at %d, before previous %d", i, at, last)
		}
		if at > 0 {
			nonzero = true
		}
		last = at
	}
	if !nonzero {
		t.Fatal("pacer degenerated to zero delay for every unit")
	}
	// The final unit lands at the end of the window (within one unit's
	// share), not at time zero.
	if last < window*(planned-1)/planned {
		t.Fatalf("last unit ready at %d, want ~%d", last, window)
	}
}

func TestPacerReadyTimesExact(t *testing.T) {
	// i*window/planned with the multiply first: 7 units over 10 ticks.
	p := NewPacer(0, 7, 10)
	want := []sim.Time{0, 1, 2, 4, 5, 7, 8} // floor(i*10/7)
	for i, w := range want {
		if at := p.Ready(0); at != w {
			t.Fatalf("unit %d ready at %d, want %d", i, at, w)
		}
	}
}

func TestPacerAccurateEstimateNoOverrun(t *testing.T) {
	p := NewPacer(100, 5, 500)
	for i := 0; i < 5; i++ {
		p.Ready(0)
	}
	if _, overrun := p.Consumed(); overrun {
		t.Fatal("exact plan flagged as overrun")
	}
}
