package ratelimit

import (
	"testing"

	"iosnap/internal/sim"
)

func TestWorkSleepEnabled(t *testing.T) {
	if (WorkSleep{}).Enabled() {
		t.Fatal("zero value should be disabled")
	}
	ws := WorkSleep{Work: 50 * sim.Microsecond, Sleep: 250 * sim.Millisecond}
	if !ws.Enabled() {
		t.Fatal("configured limiter should be enabled")
	}
	if ws.String() != "50.00us/250.00ms" {
		t.Fatalf("String = %q", ws.String())
	}
	if (WorkSleep{}).String() != "unlimited" {
		t.Fatal("zero String should be unlimited")
	}
}

func TestBudgetCharges(t *testing.T) {
	b := NewBudget(WorkSleep{Work: 100, Sleep: 1000})
	for i := 0; i < 9; i++ {
		if sleep, ex := b.Charge(10); ex || sleep != 0 {
			t.Fatalf("charge %d exhausted early", i)
		}
	}
	sleep, ex := b.Charge(10)
	if !ex || sleep != 1000 {
		t.Fatalf("budget not exhausted at 100: sleep=%d ex=%v", sleep, ex)
	}
	// Accumulator must reset.
	if _, ex := b.Charge(10); ex {
		t.Fatal("budget did not reset after sleep")
	}
}

func TestBudgetDisabled(t *testing.T) {
	b := NewBudget(WorkSleep{})
	for i := 0; i < 1000; i++ {
		if _, ex := b.Charge(1 << 40); ex {
			t.Fatal("disabled budget exhausted")
		}
	}
}

func TestBudgetOvershootSingleCharge(t *testing.T) {
	b := NewBudget(WorkSleep{Work: 100, Sleep: 7})
	sleep, ex := b.Charge(1000)
	if !ex || sleep != 7 {
		t.Fatal("single oversized charge should exhaust")
	}
}

func TestPacerSpreadsWork(t *testing.T) {
	p := NewPacer(0, 10, 1000)
	var prev sim.Time = -1
	for i := 0; i < 10; i++ {
		at := p.Ready(0)
		if at != sim.Time(i*100) {
			t.Fatalf("unit %d ready at %d, want %d", i, at, i*100)
		}
		if at <= prev && i > 0 {
			t.Fatalf("non-monotone ready times")
		}
		prev = at
	}
}

func TestPacerOverrunRunsImmediately(t *testing.T) {
	p := NewPacer(0, 2, 1000)
	p.Ready(0)
	p.Ready(0)
	// Third unit exceeds the plan: it must run at `now` with no delay.
	if at := p.Ready(1234); at != 1234 {
		t.Fatalf("overrun unit delayed to %d", at)
	}
	done, overrun := p.Consumed()
	if done != 3 || !overrun {
		t.Fatalf("Consumed = %d,%v", done, overrun)
	}
}

func TestPacerNeverBeforeNow(t *testing.T) {
	p := NewPacer(0, 10, 1000)
	// Caller shows up late; pacing must not send it into the past.
	if at := p.Ready(5000); at != 5000 {
		t.Fatalf("Ready returned %d < now", at)
	}
}

func TestPacerDisabled(t *testing.T) {
	p := NewPacer(0, 0, 1000)
	if at := p.Ready(42); at != 42 {
		t.Fatal("disabled pacer delayed work")
	}
}

func TestPacerAccurateEstimateNoOverrun(t *testing.T) {
	p := NewPacer(100, 5, 500)
	for i := 0; i < 5; i++ {
		p.Ready(0)
	}
	if _, overrun := p.Consumed(); overrun {
		t.Fatal("exact plan flagged as overrun")
	}
}
