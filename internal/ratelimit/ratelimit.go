// Package ratelimit implements the two pacing mechanisms of the paper's
// §5.7 "Predictable Performance":
//
//   - WorkSleep budgets for snapshot activation ("for every x µs of
//     activation work done, the activation thread has to sleep for y ms" —
//     the knobs of Figure 9), and
//   - Pacer, the segment cleaner's pacing policy, which spreads an estimated
//     amount of copy-forward work over a window. Giving the pacer a
//     *snapshot-aware* work estimate (merged validity maps instead of the
//     active epoch's) is exactly the fix evaluated in Figure 10.
package ratelimit

import "iosnap/internal/sim"

// WorkSleep is an "x work / y sleep" rate-limit configuration. The zero
// value disables limiting.
type WorkSleep struct {
	Work  sim.Duration // budget of work per period
	Sleep sim.Duration // sleep inserted when the budget is exhausted
}

// Enabled reports whether the configuration actually limits anything.
func (ws WorkSleep) Enabled() bool { return ws.Work > 0 && ws.Sleep > 0 }

// String renders the paper's "x usec/y msec" notation.
func (ws WorkSleep) String() string {
	if !ws.Enabled() {
		return "unlimited"
	}
	return ws.Work.String() + "/" + ws.Sleep.String()
}

// Budget tracks work performed against a WorkSleep configuration.
type Budget struct {
	ws   WorkSleep
	used sim.Duration
}

// NewBudget returns a fresh budget for ws.
func NewBudget(ws WorkSleep) *Budget { return &Budget{ws: ws} }

// Charge records that d of work was just performed. When the accumulated
// work reaches the budget, Charge returns the configured sleep — one per
// full work period consumed, so a single quantum several times larger than
// Work owes proportionally more sleep — with exhausted=true; the caller
// yields for that long. Work in excess of whole periods carries over to the
// next Charge rather than being forgiven.
func (b *Budget) Charge(d sim.Duration) (sleep sim.Duration, exhausted bool) {
	if !b.ws.Enabled() {
		return 0, false
	}
	b.used += d
	if b.used < b.ws.Work {
		return 0, false
	}
	periods := b.used / b.ws.Work
	b.used -= periods * b.ws.Work
	return sim.Duration(periods) * b.ws.Sleep, true
}

// Config returns the budget's configuration.
func (b *Budget) Config() WorkSleep { return b.ws }

// Pacer spreads estimatedUnits of work uniformly over window: the i-th unit
// may not start before start + i*window/estimatedUnits. Once the planned
// units are consumed (the estimate was too low — e.g., a vanilla-policy
// cleaner that did not account for snapshotted data), Ready returns the
// current time: the remaining work runs unthrottled, producing the
// interference spike the snapshot-aware estimate avoids.
type Pacer struct {
	start   sim.Time
	window  sim.Duration
	planned int
	done    int
}

// NewPacer plans estimatedUnits of work across window starting at start.
// estimatedUnits <= 0 disables pacing entirely.
func NewPacer(start sim.Time, estimatedUnits int, window sim.Duration) *Pacer {
	return &Pacer{start: start, window: window, planned: estimatedUnits}
}

// Ready returns the earliest time at or after now at which the next unit of
// work may run, and consumes that unit. Ready-times are computed as
// start + i*window/planned with the multiplication first, so sub-tick
// per-unit delays spread across units instead of truncating to zero (which
// would silently disable pacing whenever planned exceeded the window's tick
// count).
func (p *Pacer) Ready(now sim.Time) sim.Time {
	if p.planned <= 0 || p.done >= p.planned {
		p.done++
		return now
	}
	at := p.start.Add(sim.Duration(int64(p.done) * int64(p.window) / int64(p.planned)))
	p.done++
	if at < now {
		return now
	}
	return at
}

// Consumed reports how many units have been drawn, and whether the pacer has
// exceeded its plan (i.e., the estimate was too low).
func (p *Pacer) Consumed() (done int, overrun bool) {
	return p.done, p.done > p.planned
}
