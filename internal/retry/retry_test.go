package retry

import (
	"errors"
	"fmt"
	"testing"

	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

func TestDoSucceedsAfterTransients(t *testing.T) {
	p := Policy{MaxAttempts: 3, Backoff: 100 * sim.Microsecond}
	attempts := 0
	var submits []sim.Time
	done, retries, err := p.Do(0, func(at sim.Time) (sim.Time, error) {
		attempts++
		submits = append(submits, at)
		if attempts < 3 {
			return at, fmt.Errorf("wrapped: %w", nand.ErrTransient)
		}
		return at.Add(40 * sim.Microsecond), nil
	})
	if err != nil || attempts != 3 || retries != 2 {
		t.Fatalf("err=%v attempts=%d retries=%d", err, attempts, retries)
	}
	// Exponential virtual-time backoff: 0, +100µs, +200µs more.
	want := []sim.Time{0, sim.Time(100 * sim.Microsecond), sim.Time(300 * sim.Microsecond)}
	for i := range want {
		if submits[i] != want[i] {
			t.Fatalf("submit times %v, want %v", submits, want)
		}
	}
	if done != want[2].Add(40*sim.Microsecond) {
		t.Fatalf("done = %v", done)
	}
}

func TestDoGivesUpAfterBudget(t *testing.T) {
	p := Policy{MaxAttempts: 2, Backoff: sim.Microsecond}
	attempts := 0
	_, retries, err := p.Do(0, func(at sim.Time) (sim.Time, error) {
		attempts++
		return at, nand.ErrTransient
	})
	if !errors.Is(err, nand.ErrTransient) || attempts != 2 || retries != 1 {
		t.Fatalf("err=%v attempts=%d retries=%d", err, attempts, retries)
	}
}

func TestDoDoesNotRetryPermanentErrors(t *testing.T) {
	p := Default()
	for _, perm := range []error{nand.ErrDeviceFailed, nand.ErrWornOut, nand.ErrNotErased} {
		attempts := 0
		_, retries, err := p.Do(0, func(at sim.Time) (sim.Time, error) {
			attempts++
			return at, perm
		})
		if !errors.Is(err, perm) || attempts != 1 || retries != 0 {
			t.Fatalf("%v: attempts=%d retries=%d err=%v", perm, attempts, retries, err)
		}
	}
}

func TestZeroValuePolicySingleAttempt(t *testing.T) {
	var p Policy
	attempts := 0
	_, retries, err := p.Do(0, func(at sim.Time) (sim.Time, error) {
		attempts++
		return at, nand.ErrTransient
	})
	if attempts != 1 || retries != 0 || err == nil {
		t.Fatalf("zero policy: attempts=%d retries=%d err=%v", attempts, retries, err)
	}
}

func TestClassifiers(t *testing.T) {
	if !Transient(fmt.Errorf("x: %w", nand.ErrTransient)) || Transient(nand.ErrDeviceFailed) {
		t.Fatal("Transient misclassifies")
	}
	for _, err := range []error{nand.ErrDeviceFailed, nand.ErrWornOut, nand.ErrTransient} {
		if !MediaFailure(err) {
			t.Fatalf("%v should be a media failure", err)
		}
	}
	for _, err := range []error{nand.ErrNotErased, nand.ErrBadAddress, nand.ErrOutOfOrder, errors.New("faultinject: device lost power")} {
		if MediaFailure(err) {
			t.Fatalf("%v should not be a media failure", err)
		}
	}
}

// TestDoFromContinuesSchedule: splitting a retry sequence into "first
// attempt elsewhere + DoFrom for the rest" must reproduce Do's attempt
// times and its retry count exactly — that is what lets the batched data
// path count a failed multi-page call as each page's first attempt.
func TestDoFromContinuesSchedule(t *testing.T) {
	p := Policy{MaxAttempts: 4, Backoff: 100 * sim.Microsecond}
	run := func(split bool) (times []sim.Time, retries int64, err error) {
		failures := 2 // succeed on attempt 3
		op := func(at sim.Time) (sim.Time, error) {
			times = append(times, at)
			if failures > 0 {
				failures--
				return at, nand.ErrTransient
			}
			return at.Add(5 * sim.Microsecond), nil
		}
		now := sim.Time(1000)
		if !split {
			_, retries, err = p.Do(now, op)
			return times, retries, err
		}
		_, firstErr := op(now)
		failuresSeen := int64(0)
		_, failRetries, err := p.DoFrom(now, 1, firstErr, op)
		retries = failuresSeen + failRetries
		return times, retries, err
	}
	doTimes, doRetries, doErr := run(false)
	fromTimes, fromRetries, fromErr := run(true)
	if fmt.Sprint(doTimes) != fmt.Sprint(fromTimes) {
		t.Fatalf("attempt times differ: Do %v, DoFrom %v", doTimes, fromTimes)
	}
	if doRetries != fromRetries || (doErr == nil) != (fromErr == nil) {
		t.Fatalf("retries/err differ: Do (%d,%v), DoFrom (%d,%v)", doRetries, doErr, fromRetries, fromErr)
	}
}

// TestDoFromExhaustedBudget: when the prior attempts already consumed the
// whole budget, DoFrom performs no attempts and reports the prior error.
func TestDoFromExhaustedBudget(t *testing.T) {
	p := Policy{MaxAttempts: 2, Backoff: time100()}
	calls := 0
	done, retries, err := p.DoFrom(500, 2, nand.ErrTransient, func(at sim.Time) (sim.Time, error) {
		calls++
		return at, nil
	})
	if calls != 0 || retries != 0 || done != 500 || !Transient(err) {
		t.Fatalf("calls=%d retries=%d done=%v err=%v", calls, retries, done, err)
	}
}

func time100() sim.Duration { return 100 * sim.Microsecond }

// TestDoRetryableCustomClassifier: transport-level errors unknown to the
// media Transient check retry under a caller-supplied classifier, and
// non-retryable errors stop the loop immediately.
func TestDoRetryableCustomClassifier(t *testing.T) {
	errFrame := errors.New("xport: bad frame")
	errFatal := errors.New("xport: manifest mismatch")
	retryable := func(err error) bool { return errors.Is(err, errFrame) }

	p := Policy{MaxAttempts: 3, Backoff: time100()}
	calls := 0
	_, retries, err := p.DoRetryable(0, retryable, func(at sim.Time) (sim.Time, error) {
		calls++
		if calls < 3 {
			return at, errFrame
		}
		return at, nil
	})
	if err != nil || retries != 2 || calls != 3 {
		t.Fatalf("retryable frame error: err=%v retries=%d calls=%d", err, retries, calls)
	}

	calls = 0
	_, retries, err = p.DoRetryable(0, retryable, func(at sim.Time) (sim.Time, error) {
		calls++
		return at, errFatal
	})
	if !errors.Is(err, errFatal) || retries != 0 || calls != 1 {
		t.Fatalf("fatal error must not retry: err=%v retries=%d calls=%d", err, retries, calls)
	}
}

// TestCorruptDataIsTransientAndMediaFailure: detected payload corruption is
// retry-worthy (read-side damage clears on a re-read) and, if it survives
// the budget, counts as a media failure for suspect-marking.
func TestCorruptDataIsTransientAndMediaFailure(t *testing.T) {
	if !Transient(nand.ErrCorruptData) {
		t.Fatal("ErrCorruptData must be transient")
	}
	if !MediaFailure(nand.ErrCorruptData) {
		t.Fatal("ErrCorruptData must be a media failure")
	}
}
