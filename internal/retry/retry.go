// Package retry is the shared media-retry policy both FTLs apply to NAND
// operations. Flash errors split into two classes: transient ones (a read
// that needs another sensing pass, a program disturbed by a neighbour)
// clear on their own and are worth bounded re-attempts; permanent ones
// (wear-out, a grown bad block) never clear and should instead mark the
// segment suspect so rescue and retirement can deal with it. Policy
// implements the first half of that split; MediaFailure classifies the
// second.
//
// Backoff is virtual time: a retried operation is simply re-submitted at a
// later sim.Time, so retries cost simulated latency — visible in every
// experiment — without any real-world sleeping.
package retry

import (
	"errors"

	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// Policy bounds the retry loop. The zero value performs no retries, so an
// unconfigured FTL behaves exactly as before this package existed.
type Policy struct {
	// MaxAttempts is the total number of attempts per operation (first try
	// included); values below 1 mean a single attempt.
	MaxAttempts int
	// Backoff is the virtual-time delay before the second attempt; it
	// doubles for each further attempt.
	Backoff sim.Duration
}

// Default is the policy both FTLs adopt via their DefaultConfig: three
// attempts with a 100µs initial backoff, enough to clear any
// faultinject.KindTransient episode with Times ≤ 2.
func Default() Policy {
	return Policy{MaxAttempts: 3, Backoff: 100 * sim.Microsecond}
}

// Transient reports whether err is worth retrying. Detected payload
// corruption counts: a corruption injected on the read path clears on the
// next sensing pass, and only a re-read can tell it apart from bits that
// really flipped in the cells.
func Transient(err error) bool {
	return errors.Is(err, nand.ErrTransient) ||
		errors.Is(err, nand.ErrCorruptData)
}

// MediaFailure reports whether err is a permanent media failure that should
// mark the affected segment suspect: wear-out, a device failure, or a
// transient/corrupt-data error that survived the whole retry budget. Power
// loss and logic errors (bad address, out-of-order program, ...) are not
// media failures — crashing is not the medium's fault, and logic errors are
// bugs.
func MediaFailure(err error) bool {
	return errors.Is(err, nand.ErrDeviceFailed) ||
		errors.Is(err, nand.ErrWornOut) ||
		errors.Is(err, nand.ErrTransient) ||
		errors.Is(err, nand.ErrCorruptData)
}

// Do runs op, retrying transient failures within the policy's budget. op
// receives the virtual submit time of its attempt and returns its
// completion time. Do returns the final attempt's completion time, the
// number of retries performed (0 when the first attempt decided), and the
// final error.
func (p Policy) Do(now sim.Time, op func(sim.Time) (sim.Time, error)) (done sim.Time, retries int64, err error) {
	done, err = op(now)
	if err == nil {
		return done, 0, nil
	}
	return p.DoFrom(now, 1, err, op)
}

// DoFrom continues a retry schedule whose first `attempted` attempts
// already ran elsewhere — the batched data path's case, where a multi-page
// device call counts as each page's first attempt and only the failing
// page re-enters the per-page loop. lastErr is the most recent attempt's
// error, observed at virtual time now; DoFrom performs the remaining
// attempts with the backoff schedule continuing where Do's would be (the
// delay before attempt k+1 is Backoff·2^(k-1)). retries counts only the
// attempts DoFrom itself performs, so a caller adding them to a stats
// counter matches Do's accounting exactly: total attempts - 1.
func (p Policy) DoFrom(now sim.Time, attempted int, lastErr error, op func(sim.Time) (sim.Time, error)) (done sim.Time, retries int64, err error) {
	return p.doFrom(now, attempted, lastErr, Transient, op)
}

// DoRetryable is Do with a caller-supplied retryability classifier, for
// retry loops above the NAND layer — the snapshot transport re-drives a
// transfer on stream-level errors (truncation, a bit-flipped frame, a chunk
// hash mismatch) that the media-oriented Transient check knows nothing
// about. The backoff schedule and accounting match Do exactly.
func (p Policy) DoRetryable(now sim.Time, retryable func(error) bool, op func(sim.Time) (sim.Time, error)) (done sim.Time, retries int64, err error) {
	done, err = op(now)
	if err == nil {
		return done, 0, nil
	}
	return p.doFrom(now, 1, err, retryable, op)
}

func (p Policy) doFrom(now sim.Time, attempted int, lastErr error, retryable func(error) bool, op func(sim.Time) (sim.Time, error)) (done sim.Time, retries int64, err error) {
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	if attempted < 1 {
		attempted = 1
	}
	backoff := p.Backoff
	for i := 1; i < attempted; i++ {
		backoff *= 2
	}
	done, err = now, lastErr
	for attempt := attempted; err != nil && retryable(err) && attempt < maxAttempts; attempt++ {
		retries++
		now = now.Add(backoff)
		backoff *= 2
		done, err = op(now)
	}
	return done, retries, err
}
