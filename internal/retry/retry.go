// Package retry is the shared media-retry policy both FTLs apply to NAND
// operations. Flash errors split into two classes: transient ones (a read
// that needs another sensing pass, a program disturbed by a neighbour)
// clear on their own and are worth bounded re-attempts; permanent ones
// (wear-out, a grown bad block) never clear and should instead mark the
// segment suspect so rescue and retirement can deal with it. Policy
// implements the first half of that split; MediaFailure classifies the
// second.
//
// Backoff is virtual time: a retried operation is simply re-submitted at a
// later sim.Time, so retries cost simulated latency — visible in every
// experiment — without any real-world sleeping.
package retry

import (
	"errors"

	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// Policy bounds the retry loop. The zero value performs no retries, so an
// unconfigured FTL behaves exactly as before this package existed.
type Policy struct {
	// MaxAttempts is the total number of attempts per operation (first try
	// included); values below 1 mean a single attempt.
	MaxAttempts int
	// Backoff is the virtual-time delay before the second attempt; it
	// doubles for each further attempt.
	Backoff sim.Duration
}

// Default is the policy both FTLs adopt via their DefaultConfig: three
// attempts with a 100µs initial backoff, enough to clear any
// faultinject.KindTransient episode with Times ≤ 2.
func Default() Policy {
	return Policy{MaxAttempts: 3, Backoff: 100 * sim.Microsecond}
}

// Transient reports whether err is worth retrying.
func Transient(err error) bool {
	return errors.Is(err, nand.ErrTransient)
}

// MediaFailure reports whether err is a permanent media failure that should
// mark the affected segment suspect: wear-out, a device failure, or a
// transient error that survived the whole retry budget. Power loss and
// logic errors (bad address, out-of-order program, ...) are not media
// failures — crashing is not the medium's fault, and logic errors are bugs.
func MediaFailure(err error) bool {
	return errors.Is(err, nand.ErrDeviceFailed) ||
		errors.Is(err, nand.ErrWornOut) ||
		errors.Is(err, nand.ErrTransient)
}

// Do runs op, retrying transient failures within the policy's budget. op
// receives the virtual submit time of its attempt and returns its
// completion time. Do returns the final attempt's completion time, the
// number of retries performed (0 when the first attempt decided), and the
// final error.
func (p Policy) Do(now sim.Time, op func(sim.Time) (sim.Time, error)) (done sim.Time, retries int64, err error) {
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	backoff := p.Backoff
	for attempt := 1; ; attempt++ {
		done, err = op(now)
		if err == nil || attempt >= maxAttempts || !Transient(err) {
			return done, retries, err
		}
		retries++
		now = now.Add(backoff)
		backoff *= 2
	}
}
