// Package header defines the out-of-band block header that the FTLs stamp
// into every NAND page (the paper's "data block header", §5.3.2). The
// header carries the page's logical address, the epoch it was written in,
// a global sequence number (for last-write-wins ordering during recovery),
// and a type tag distinguishing user data from the snapshot notes and
// checkpoint records that also live on the log.
package header

import (
	"encoding/binary"
	"errors"
	"fmt"

	"iosnap/internal/nand"
)

// Type tags a log page.
type Type uint8

// Log page types.
const (
	TypeInvalid Type = iota
	TypeData         // user data; LBA and Epoch are meaningful
	TypeSnapCreate
	TypeSnapDelete
	TypeSnapActivate
	TypeSnapDeactivate
	TypeCheckpoint // vanilla-FTL checkpoint chunk (map + segment table)

	// ioSnap checkpoint chunk streams: each section kind is its own chunk
	// sequence, with chunk index in LBA and chunk total in Epoch (the same
	// convention TypeCheckpoint uses). Note that for all four checkpoint
	// types LBA/Epoch are NOT a logical address / epoch number.
	TypeCkptMap   // active forward map
	TypeCkptTree  // snapshot tree, epoch graph, counters, segment table
	TypeCkptValid // per-epoch CoW validity pages

	// TypeMapPage tags a flash-resident translation page of the paged
	// forward map: LBA holds the translation-page index, Epoch is unused
	// (always 0). Map pages are not user data (no validity bits, skipped by
	// replay) and not checkpoint chunks (they are reached through the GTD,
	// not the anchor); the live copy of each translation page is pinned
	// against cleaning like a checkpoint chunk.
	TypeMapPage
)

// IsCheckpoint reports whether t tags a checkpoint chunk of either FTL —
// pages whose LBA/Epoch fields are chunk coordinates, which recovery
// replay and the cleaner's presence/remap bookkeeping must skip.
func (t Type) IsCheckpoint() bool {
	switch t {
	case TypeCheckpoint, TypeCkptMap, TypeCkptTree, TypeCkptValid:
		return true
	}
	return false
}

func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeSnapCreate:
		return "snap-create"
	case TypeSnapDelete:
		return "snap-delete"
	case TypeSnapActivate:
		return "snap-activate"
	case TypeSnapDeactivate:
		return "snap-deactivate"
	case TypeCheckpoint:
		return "checkpoint"
	case TypeCkptMap:
		return "ckpt-map"
	case TypeCkptTree:
		return "ckpt-tree"
	case TypeCkptValid:
		return "ckpt-valid"
	case TypeMapPage:
		return "map-page"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Header is the decoded OOB area of a log page.
type Header struct {
	Type  Type
	LBA   uint64 // logical block address (TypeData), or snapshot id (notes)
	Epoch uint64 // epoch the page was written in; for notes, the epoch snapshotted/created
	Seq   uint64 // global, monotonically increasing write sequence number
}

const (
	magic   = 0xF7
	version = 1
	// encoded layout: magic(1) version(1) type(1) lba(8) epoch(8) seq(8) = 27
	encodedLen = 27
)

// Errors from Unmarshal.
var (
	ErrBadMagic   = errors.New("header: bad magic")
	ErrBadVersion = errors.New("header: unsupported version")
	ErrTooShort   = errors.New("header: buffer too short")
)

// Len is the encoded size of a header, for callers that marshal into
// pre-sized scratch buffers with MarshalInto.
const Len = encodedLen

// Marshal encodes h into a fresh OOB-sized buffer.
func (h Header) Marshal() []byte {
	b := make([]byte, encodedLen)
	h.MarshalInto(b)
	return b
}

// MarshalInto encodes h into b, which must be at least Len bytes. It exists
// so the per-page write path can marshal into reused scratch instead of
// allocating a fresh buffer for every page.
func (h Header) MarshalInto(b []byte) {
	b[0] = magic
	b[1] = version
	b[2] = byte(h.Type)
	binary.LittleEndian.PutUint64(b[3:], h.LBA)
	binary.LittleEndian.PutUint64(b[11:], h.Epoch)
	binary.LittleEndian.PutUint64(b[19:], h.Seq)
}

// Unmarshal decodes a header from OOB bytes.
func Unmarshal(b []byte) (Header, error) {
	if len(b) < encodedLen {
		return Header{}, fmt.Errorf("%w: %d bytes", ErrTooShort, len(b))
	}
	if b[0] != magic {
		return Header{}, ErrBadMagic
	}
	if b[1] != version {
		return Header{}, fmt.Errorf("%w: %d", ErrBadVersion, b[1])
	}
	return Header{
		Type:  Type(b[2]),
		LBA:   binary.LittleEndian.Uint64(b[3:]),
		Epoch: binary.LittleEndian.Uint64(b[11:]),
		Seq:   binary.LittleEndian.Uint64(b[19:]),
	}, nil
}

// static assertion that the encoding fits the device OOB area.
var _ = [1]struct{}{}[nand.OOBSize-encodedLen-5] // require OOBSize >= encodedLen+5 headroom
