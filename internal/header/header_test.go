package header

import (
	"errors"
	"testing"
	"testing/quick"

	"iosnap/internal/nand"
)

func TestRoundTrip(t *testing.T) {
	h := Header{Type: TypeData, LBA: 12345, Epoch: 7, Seq: 99}
	b := h.Marshal()
	if len(b) > nand.OOBSize {
		t.Fatalf("encoded header %d bytes exceeds OOB %d", len(b), nand.OOBSize)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

func TestRoundTripQuick(t *testing.T) {
	if err := quick.Check(func(typ uint8, lba, epoch, seq uint64) bool {
		h := Header{Type: Type(typ), LBA: lba, Epoch: epoch, Seq: seq}
		got, err := Unmarshal(h.Marshal())
		return err == nil && got == h
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); !errors.Is(err, ErrTooShort) {
		t.Fatalf("nil: %v", err)
	}
	b := Header{Type: TypeData}.Marshal()
	b[0] = 0
	if _, err := Unmarshal(b); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	b = Header{Type: TypeData}.Marshal()
	b[1] = 99
	if _, err := Unmarshal(b); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		TypeData:           "data",
		TypeSnapCreate:     "snap-create",
		TypeSnapDelete:     "snap-delete",
		TypeSnapActivate:   "snap-activate",
		TypeSnapDeactivate: "snap-deactivate",
		TypeCheckpoint:     "checkpoint",
		TypeCkptMap:        "ckpt-map",
		TypeCkptTree:       "ckpt-tree",
		TypeCkptValid:      "ckpt-valid",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestIsCheckpoint(t *testing.T) {
	for _, typ := range []Type{TypeCheckpoint, TypeCkptMap, TypeCkptTree, TypeCkptValid} {
		if !typ.IsCheckpoint() {
			t.Errorf("%v.IsCheckpoint() = false", typ)
		}
	}
	for _, typ := range []Type{TypeInvalid, TypeData, TypeSnapCreate, TypeSnapDelete, TypeSnapActivate, TypeSnapDeactivate} {
		if typ.IsCheckpoint() {
			t.Errorf("%v.IsCheckpoint() = true", typ)
		}
	}
}
