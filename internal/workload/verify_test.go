package workload

import (
	"strings"
	"testing"

	"iosnap/internal/sim"
)

// storeDev retains payloads, like a StoreData device.
type storeDev struct {
	ss      int
	sectors int64
	data    map[int64][]byte
	corrupt bool // flip a byte on every read
}

func newStoreDev() *storeDev {
	return &storeDev{ss: 512, sectors: 4096, data: make(map[int64][]byte)}
}

func (d *storeDev) SectorSize() int { return d.ss }
func (d *storeDev) Sectors() int64  { return d.sectors }
func (d *storeDev) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	for i := 0; i*d.ss < len(data); i++ {
		d.data[lba+int64(i)] = append([]byte(nil), data[i*d.ss:(i+1)*d.ss]...)
	}
	return now + 10, nil
}
func (d *storeDev) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	for i := 0; i*d.ss < len(buf); i++ {
		sector := buf[i*d.ss : (i+1)*d.ss]
		if stored, ok := d.data[lba+int64(i)]; ok {
			copy(sector, stored)
			if d.corrupt {
				sector[100] ^= 0xFF
			}
		} else {
			for j := range sector {
				sector[j] = 0
			}
		}
	}
	return now + 10, nil
}

func TestVerifierPassesOnFaithfulDevice(t *testing.T) {
	d := newStoreDev()
	v := NewVerifier()
	wspec := Spec{Kind: Write, Pattern: Random, BlockSize: 1024, Threads: 1, QueueDepth: 1, MaxOps: 500, Seed: 1, RangeHi: 200}
	if _, _, err := Run(d, 0, wspec, Options{Verify: v}); err != nil {
		t.Fatalf("verified writes: %v", err)
	}
	rspec := Spec{Kind: Read, Pattern: Random, BlockSize: 1024, Threads: 1, QueueDepth: 1, MaxOps: 500, Seed: 2, RangeHi: 200}
	if _, _, err := Run(d, 0, rspec, Options{Verify: v}); err != nil {
		t.Fatalf("verified reads: %v", err)
	}
	if v.Checked == 0 {
		t.Fatal("verifier checked nothing")
	}
}

func TestVerifierCatchesCorruption(t *testing.T) {
	d := newStoreDev()
	v := NewVerifier()
	wspec := Spec{Kind: Write, Pattern: Sequential, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 50}
	if _, _, err := Run(d, 0, wspec, Options{Verify: v}); err != nil {
		t.Fatal(err)
	}
	d.corrupt = true
	rspec := Spec{Kind: Read, Pattern: Sequential, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 50}
	_, _, err := Run(d, 0, rspec, Options{Verify: v})
	if err == nil {
		t.Fatal("corruption not detected")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestVerifierLastWriteWins(t *testing.T) {
	d := newStoreDev()
	v := NewVerifier()
	// Two write passes over the same range: reads must verify against the
	// NEWEST generation.
	for pass := 0; pass < 2; pass++ {
		spec := Spec{Kind: Write, Pattern: Sequential, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 30}
		if _, _, err := Run(d, 0, spec, Options{Verify: v}); err != nil {
			t.Fatal(err)
		}
	}
	rspec := Spec{Kind: Read, Pattern: Sequential, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 30}
	if _, _, err := Run(d, 0, rspec, Options{Verify: v}); err != nil {
		t.Fatalf("re-written sectors failed verification: %v", err)
	}
}

func TestVerifierUnknownSectors(t *testing.T) {
	d := newStoreDev()
	v := NewVerifier()
	rspec := Spec{Kind: Read, Pattern: Sequential, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 10}
	if _, _, err := Run(d, 0, rspec, Options{Verify: v}); err != nil {
		t.Fatal(err)
	}
	if v.Unknown != 10 || v.Checked != 0 {
		t.Fatalf("unknown=%d checked=%d", v.Unknown, v.Checked)
	}
}
