// Package workload drives block devices with the microbenchmark patterns
// the paper evaluates with: sequential/random/zipfian reads and writes, one
// or more logical threads, synchronous or queued (async) submission — all
// over virtual time, interleaving any background tasks (cleaning,
// activation) the device has scheduled.
package workload

import (
	"errors"
	"fmt"

	"iosnap/internal/blockdev"
	"iosnap/internal/sim"
)

// Pattern selects the address distribution.
type Pattern int

// Address patterns.
const (
	Sequential Pattern = iota
	Random
	Zipf
	// HotCold splits the range into a hot head and a cold tail: a HotFrac
	// share of the ops lands uniformly in the first HotSpan share of the
	// range, the rest uniformly in the remainder. The two knobs dial
	// translation-page locality directly — the map-cache benchmarks sweep
	// them to trace hit-rate versus cache size.
	HotCold
)

func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	case Zipf:
		return "zipf"
	case HotCold:
		return "hotcold"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Kind selects the operation.
type Kind int

// Operation kinds.
const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Spec describes one workload run.
type Spec struct {
	Kind    Kind
	Pattern Pattern

	// BlockSize is bytes per operation (a multiple of the sector size).
	BlockSize int
	// Threads is the number of logical submitters.
	Threads int
	// QueueDepth is outstanding ops per thread; 1 = synchronous.
	QueueDepth int
	// TotalBytes ends the run once this much data has been issued (0 = use
	// MaxOps/MaxTime).
	TotalBytes int64
	// MaxOps ends the run after this many operations (0 = unlimited).
	MaxOps int64
	// MaxTime ends the run at this virtual time (0 = unlimited).
	MaxTime sim.Time
	// Range restricts LBAs to [Lo, Hi) sectors; zero Hi = whole device.
	RangeLo, RangeHi int64
	// Seed makes the run reproducible.
	Seed uint64
	// ZipfS is the zipf exponent (>1) when Pattern == Zipf.
	ZipfS float64
	// HotFrac and HotSpan parameterize Pattern == HotCold: HotFrac of the
	// ops (0 < HotFrac < 1) target the hot set, which occupies the first
	// HotSpan of the range (0 < HotSpan < 1).
	HotFrac, HotSpan float64
	// SubmitCost models per-op host submission overhead for async runs.
	SubmitCost sim.Duration
}

// Options customizes measurement and interleaving.
type Options struct {
	// Latency, when non-nil, records one sample per completed op.
	Latency *sim.LatencyRecorder
	// Bandwidth, when non-nil, aggregates completed bytes over windows.
	Bandwidth *sim.BandwidthWindow
	// BetweenOps, when non-nil, runs before every submission; it may inject
	// control-plane work (snapshot creates, activations) and must return
	// the possibly advanced time.
	BetweenOps func(now sim.Time) sim.Time
	// Scheduler, when non-nil, is drained up to each submission time so
	// background tasks interleave realistically.
	Scheduler *sim.Scheduler
	// Verify, when non-nil, stamps every written sector and validates every
	// read of a previously written sector (requires a payload-retaining
	// device; see Verifier).
	Verify *Verifier
}

// Result summarizes a run.
type Result struct {
	Ops     int64
	Bytes   int64
	Start   sim.Time
	End     sim.Time
	MBps    float64
	MeanLat sim.Duration
	MaxLat  sim.Duration
}

// Errors.
var ErrBadSpec = errors.New("workload: invalid spec")

func (s Spec) validate(dev blockdev.Device) error {
	ss := dev.SectorSize()
	switch {
	case s.BlockSize <= 0 || s.BlockSize%ss != 0:
		return fmt.Errorf("%w: BlockSize %d not a multiple of sector %d", ErrBadSpec, s.BlockSize, ss)
	case s.Threads <= 0:
		return fmt.Errorf("%w: Threads %d", ErrBadSpec, s.Threads)
	case s.QueueDepth <= 0:
		return fmt.Errorf("%w: QueueDepth %d", ErrBadSpec, s.QueueDepth)
	case s.TotalBytes == 0 && s.MaxOps == 0 && s.MaxTime == 0:
		return fmt.Errorf("%w: no stopping condition", ErrBadSpec)
	case s.Pattern == Zipf && s.ZipfS <= 1:
		return fmt.Errorf("%w: ZipfS %v must be > 1", ErrBadSpec, s.ZipfS)
	case s.Pattern == HotCold && !(s.HotFrac > 0 && s.HotFrac < 1 && s.HotSpan > 0 && s.HotSpan < 1):
		return fmt.Errorf("%w: HotCold needs 0 < HotFrac (%v) < 1 and 0 < HotSpan (%v) < 1", ErrBadSpec, s.HotFrac, s.HotSpan)
	}
	return nil
}

// thread is one logical submitter.
type thread struct {
	now     sim.Time
	ring    []sim.Time // completion times of outstanding ops
	ringIdx int
	seqNext int64 // next sequential LBA
}

// Run executes spec against dev starting at virtual time start and returns
// the result plus the time of the last completion.
func Run(dev blockdev.Device, start sim.Time, spec Spec, opts Options) (Result, sim.Time, error) {
	if err := spec.validate(dev); err != nil {
		return Result{}, start, err
	}
	ss := dev.SectorSize()
	sectorsPerOp := int64(spec.BlockSize / ss)
	lo, hi := spec.RangeLo, spec.RangeHi
	if hi == 0 {
		hi = dev.Sectors()
	}
	if hi-lo < sectorsPerOp {
		return Result{}, start, fmt.Errorf("%w: range [%d,%d) smaller than one op", ErrBadSpec, lo, hi)
	}
	span := hi - lo

	rng := sim.NewRNG(spec.Seed)
	var zipf *sim.Zipf
	if spec.Pattern == Zipf {
		zipf = sim.NewZipf(rng, spec.ZipfS, span/sectorsPerOp)
	}
	// HotCold geometry, in whole ops so every draw stays block-aligned.
	var hotOps, coldOps int64
	if spec.Pattern == HotCold {
		totalOps := span / sectorsPerOp
		hotOps = int64(float64(totalOps) * spec.HotSpan)
		if hotOps < 1 {
			hotOps = 1
		}
		coldOps = totalOps - hotOps
		if coldOps < 1 {
			return Result{}, start, fmt.Errorf("%w: HotSpan %v leaves no cold set", ErrBadSpec, spec.HotSpan)
		}
	}
	buf := make([]byte, spec.BlockSize)
	rng.Bytes(buf)

	threads := make([]*thread, spec.Threads)
	segment := span / int64(spec.Threads)
	for i := range threads {
		threads[i] = &thread{
			now:     start,
			ring:    make([]sim.Time, spec.QueueDepth),
			seqNext: lo + int64(i)*segment,
		}
	}

	var (
		res     = Result{Start: start}
		end     = start
		sumLat  sim.Duration
		maxLat  sim.Duration
		stopped bool
	)
	for !stopped {
		// Pick the thread whose clock is earliest.
		t := threads[0]
		for _, cand := range threads[1:] {
			if cand.now < t.now {
				t = cand
			}
		}
		now := t.now
		if spec.MaxTime > 0 && now >= spec.MaxTime {
			break
		}
		if opts.BetweenOps != nil {
			now = opts.BetweenOps(now)
		}
		if opts.Scheduler != nil {
			opts.Scheduler.RunUntil(now)
		}

		// Choose the LBA.
		var lba int64
		switch spec.Pattern {
		case Sequential:
			lba = t.seqNext
			t.seqNext += sectorsPerOp
			if t.seqNext+sectorsPerOp > hi {
				t.seqNext = lo
			}
			if lba+sectorsPerOp > hi {
				lba = lo
			}
		case Random:
			lba = lo + rng.Int63n(span-sectorsPerOp+1)
			lba = lba / sectorsPerOp * sectorsPerOp
		case Zipf:
			lba = lo + zipf.Next()*sectorsPerOp
		case HotCold:
			if rng.Float64() < spec.HotFrac {
				lba = lo + rng.Int63n(hotOps)*sectorsPerOp
			} else {
				lba = lo + (hotOps+rng.Int63n(coldOps))*sectorsPerOp
			}
		}

		var done sim.Time
		var err error
		if spec.Kind == Read {
			if opts.Verify != nil {
				for i := range buf {
					buf[i] = 0
				}
			}
			done, err = dev.Read(now, lba, buf)
			if err == nil && opts.Verify != nil {
				if verr := opts.Verify.onRead(buf, lba, ss); verr != nil {
					return res, end, verr
				}
			}
		} else {
			if opts.Verify != nil {
				opts.Verify.onWrite(buf, lba, ss, uint64(res.Ops)+1)
			}
			done, err = dev.Write(now, lba, buf)
		}
		if err != nil {
			return res, end, fmt.Errorf("workload: op %d at LBA %d: %w", res.Ops, lba, err)
		}
		lat := done.Sub(now)
		sumLat += lat
		if lat > maxLat {
			maxLat = lat
		}
		if opts.Latency != nil {
			opts.Latency.Record(done, lat)
		}
		if opts.Bandwidth != nil {
			opts.Bandwidth.Add(done, int64(spec.BlockSize))
		}
		if done > end {
			end = done
		}
		res.Ops++
		res.Bytes += int64(spec.BlockSize)

		// Advance the submitter: synchronous waits for completion; queued
		// submission pays only submit cost but is back-pressured by the
		// completion of the op QueueDepth slots ago.
		if spec.QueueDepth == 1 {
			t.now = done
		} else {
			oldest := t.ring[t.ringIdx]
			t.ring[t.ringIdx] = done
			t.ringIdx = (t.ringIdx + 1) % spec.QueueDepth
			t.now = t.now.Add(spec.SubmitCost)
			if oldest > t.now {
				t.now = oldest
			}
		}

		if spec.TotalBytes > 0 && res.Bytes >= spec.TotalBytes {
			stopped = true
		}
		if spec.MaxOps > 0 && res.Ops >= spec.MaxOps {
			stopped = true
		}
	}
	res.End = end
	res.MBps = sim.Throughput(res.Bytes, end.Sub(start))
	if res.Ops > 0 {
		res.MeanLat = sumLat / sim.Duration(res.Ops)
	}
	res.MaxLat = maxLat
	return res, end, nil
}

// Fill sequentially writes [lo, hi) sectors once with blockSize-sized ops —
// the "prepare the device" step many experiments start with. It returns the
// completion time.
func Fill(dev blockdev.Device, start sim.Time, blockSize int, lo, hi int64, sched *sim.Scheduler) (sim.Time, error) {
	ss := dev.SectorSize()
	if blockSize%ss != 0 {
		return start, fmt.Errorf("%w: fill block %d", ErrBadSpec, blockSize)
	}
	sectorsPerOp := int64(blockSize / ss)
	buf := make([]byte, blockSize)
	now := start
	for lba := lo; lba+sectorsPerOp <= hi; lba += sectorsPerOp {
		if sched != nil {
			sched.RunUntil(now)
		}
		done, err := dev.Write(now, lba, buf)
		if err != nil {
			return now, fmt.Errorf("workload: fill at %d: %w", lba, err)
		}
		now = done
	}
	return now, nil
}
