package workload

import (
	"errors"
	"testing"

	"iosnap/internal/sim"
)

// fakeDev is a fixed-latency in-memory device for driver tests.
type fakeDev struct {
	ss      int
	sectors int64
	latency sim.Duration
	channel sim.Resource
	reads   int64
	writes  int64
	lbas    []int64
}

func (d *fakeDev) SectorSize() int { return d.ss }
func (d *fakeDev) Sectors() int64  { return d.sectors }
func (d *fakeDev) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	d.reads++
	d.lbas = append(d.lbas, lba)
	_, done := d.channel.Acquire(now, d.latency)
	return done, nil
}
func (d *fakeDev) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	d.writes++
	d.lbas = append(d.lbas, lba)
	_, done := d.channel.Acquire(now, d.latency)
	return done, nil
}

func newFake() *fakeDev {
	return &fakeDev{ss: 512, sectors: 10000, latency: 100 * sim.Microsecond}
}

func TestSpecValidation(t *testing.T) {
	d := newFake()
	bad := []Spec{
		{BlockSize: 100, Threads: 1, QueueDepth: 1, MaxOps: 1},                // not multiple
		{BlockSize: 512, Threads: 0, QueueDepth: 1, MaxOps: 1},                // no threads
		{BlockSize: 512, Threads: 1, QueueDepth: 0, MaxOps: 1},                // no QD
		{BlockSize: 512, Threads: 1, QueueDepth: 1},                           // no stop
		{BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 1, Pattern: Zipf}, // bad zipf
	}
	for i, s := range bad {
		if _, _, err := Run(d, 0, s, Options{}); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %d: got %v, want ErrBadSpec", i, err)
		}
	}
}

func TestSyncThroughputMatchesLatency(t *testing.T) {
	d := newFake()
	spec := Spec{Kind: Write, Pattern: Sequential, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 100}
	res, end, err := Run(d, 0, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 100 || d.writes != 100 {
		t.Fatalf("ops = %d", res.Ops)
	}
	// Synchronous single thread: makespan = 100 × latency.
	if end != sim.Time(100*100*sim.Microsecond) {
		t.Fatalf("end = %v", end)
	}
	if res.MeanLat != 100*sim.Microsecond {
		t.Fatalf("mean latency = %v", res.MeanLat)
	}
}

func TestTotalBytesStops(t *testing.T) {
	d := newFake()
	spec := Spec{Kind: Write, Pattern: Random, BlockSize: 1024, Threads: 2, QueueDepth: 1, TotalBytes: 64 * 1024, Seed: 1}
	res, _, err := Run(d, 0, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 64*1024 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
}

func TestMaxTimeStops(t *testing.T) {
	d := newFake()
	spec := Spec{Kind: Read, Pattern: Random, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxTime: sim.Time(sim.Millisecond), Seed: 2}
	res, end, err := Run(d, 0, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 1 ms / 100 µs = 10 ops.
	if res.Ops != 10 {
		t.Fatalf("ops = %d (end %v)", res.Ops, end)
	}
}

func TestSequentialAddresses(t *testing.T) {
	d := newFake()
	spec := Spec{Kind: Write, Pattern: Sequential, BlockSize: 1024, Threads: 1, QueueDepth: 1, MaxOps: 5}
	if _, _, err := Run(d, 0, spec, Options{}); err != nil {
		t.Fatal(err)
	}
	for i, lba := range d.lbas {
		if lba != int64(i*2) {
			t.Fatalf("op %d at LBA %d, want %d", i, lba, i*2)
		}
	}
}

func TestSequentialWraps(t *testing.T) {
	d := newFake()
	d.sectors = 10
	spec := Spec{Kind: Write, Pattern: Sequential, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 25}
	if _, _, err := Run(d, 0, spec, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, lba := range d.lbas {
		if lba < 0 || lba >= 10 {
			t.Fatalf("LBA %d out of device", lba)
		}
	}
}

func TestRandomWithinRange(t *testing.T) {
	d := newFake()
	spec := Spec{Kind: Read, Pattern: Random, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 1000, RangeLo: 100, RangeHi: 200, Seed: 3}
	if _, _, err := Run(d, 0, spec, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, lba := range d.lbas {
		if lba < 100 || lba >= 200 {
			t.Fatalf("LBA %d outside [100,200)", lba)
		}
	}
}

func TestAsyncFasterThanSync(t *testing.T) {
	mk := func(qd int) sim.Time {
		d := newFake()
		spec := Spec{Kind: Write, Pattern: Sequential, BlockSize: 512, Threads: 1,
			QueueDepth: qd, MaxOps: 100, SubmitCost: sim.Microsecond}
		_, end, err := Run(d, 0, spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	sync := mk(1)
	async := mk(8)
	// The fake device is serial, so async cannot beat device time, but the
	// submitter must never be the bottleneck and the math must hold up.
	if async > sync {
		t.Fatalf("async (%v) slower than sync (%v)", async, sync)
	}
}

func TestTwoThreadsOverlapOnParallelDevice(t *testing.T) {
	// A device with per-op latency but no shared resource: two threads
	// should halve the makespan.
	par := &parallelDev{ss: 512, sectors: 10000, latency: 100 * sim.Microsecond}
	one := Spec{Kind: Write, Pattern: Random, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 100, Seed: 4}
	two := one
	two.Threads = 2
	_, end1, err := Run(par, 0, one, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, end2, err := Run(par, 0, two, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if end2 > end1*6/10 {
		t.Fatalf("two threads (%v) not ~2x faster than one (%v)", end2, end1)
	}
}

type parallelDev struct {
	ss      int
	sectors int64
	latency sim.Duration
}

func (d *parallelDev) SectorSize() int { return d.ss }
func (d *parallelDev) Sectors() int64  { return d.sectors }
func (d *parallelDev) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	return now.Add(d.latency), nil
}
func (d *parallelDev) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	return now.Add(d.latency), nil
}

func TestLatencyAndBandwidthRecording(t *testing.T) {
	d := newFake()
	lat := sim.NewLatencyRecorder(1)
	bw := sim.NewBandwidthWindow(sim.Millisecond)
	spec := Spec{Kind: Write, Pattern: Sequential, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 50}
	if _, _, err := Run(d, 0, spec, Options{Latency: lat, Bandwidth: bw}); err != nil {
		t.Fatal(err)
	}
	if lat.Count() != 50 {
		t.Fatalf("latency samples = %d", lat.Count())
	}
	if len(bw.Points()) == 0 {
		t.Fatal("no bandwidth points")
	}
}

func TestBetweenOpsHook(t *testing.T) {
	d := newFake()
	calls := 0
	spec := Spec{Kind: Write, Pattern: Sequential, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 10}
	_, _, err := Run(d, 0, spec, Options{BetweenOps: func(now sim.Time) sim.Time {
		calls++
		return now.Add(sim.Microsecond) // hook may consume time
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("hook called %d times", calls)
	}
}

func TestZipfSkew(t *testing.T) {
	d := newFake()
	spec := Spec{Kind: Read, Pattern: Zipf, ZipfS: 1.2, BlockSize: 512, Threads: 1, QueueDepth: 1, MaxOps: 5000, Seed: 9}
	if _, _, err := Run(d, 0, spec, Options{}); err != nil {
		t.Fatal(err)
	}
	counts := make(map[int64]int)
	for _, lba := range d.lbas {
		counts[lba]++
	}
	if counts[0] < 100 {
		t.Fatalf("zipf rank-0 count %d too low; distribution not skewed", counts[0])
	}
}

func TestFill(t *testing.T) {
	d := newFake()
	end, err := Fill(d, 0, 1024, 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.writes != 50 {
		t.Fatalf("fill wrote %d ops, want 50", d.writes)
	}
	if end <= 0 {
		t.Fatal("fill consumed no time")
	}
	for i, lba := range d.lbas {
		if lba != int64(i*2) {
			t.Fatalf("fill op %d at %d", i, lba)
		}
	}
}
