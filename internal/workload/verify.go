package workload

import (
	"encoding/binary"
	"fmt"
)

// Verifier adds end-to-end data-integrity checking to a workload run: every
// written sector is stamped with (LBA, generation), and every read of a
// previously written sector is checked against the newest stamp. It
// requires a device that retains payloads (nand.Config.StoreData for the
// FTLs; cowsim.Config.StoreData for the baseline).
type Verifier struct {
	written map[int64]uint64 // lba -> generation stamp

	// Checked counts read sectors verified against a stamp; Unknown counts
	// read sectors with no recorded write (not an error: reads may hit
	// never-written addresses).
	Checked int64
	Unknown int64
}

// NewVerifier returns an empty verifier.
func NewVerifier() *Verifier {
	return &Verifier{written: make(map[int64]uint64)}
}

const stampHeader = 20 // magic(4) + lba(8) + gen(8)

var stampMagic = [4]byte{'v', 'f', 'y', '!'}

// stampSector fills one sector buffer with a self-describing pattern.
func stampSector(buf []byte, lba int64, gen uint64) {
	copy(buf, stampMagic[:])
	binary.LittleEndian.PutUint64(buf[4:], uint64(lba))
	binary.LittleEndian.PutUint64(buf[12:], gen)
	// Deterministic body derived from the header so torn content is caught.
	seed := uint64(lba)*0x9E3779B97F4A7C15 ^ gen
	for i := stampHeader; i < len(buf); i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		buf[i] = byte(seed >> 56)
	}
}

// checkSector validates one read sector against the newest stamp.
func checkSector(buf []byte, lba int64, gen uint64) error {
	var want [4096]byte
	w := want[:len(buf)]
	stampSector(w, lba, gen)
	for i := range buf {
		if buf[i] != w[i] {
			return fmt.Errorf("workload: LBA %d corrupt at byte %d (gen %d): got %#x want %#x",
				lba, i, gen, buf[i], w[i])
		}
	}
	return nil
}

// onWrite stamps the op's buffer and records the generations.
func (v *Verifier) onWrite(buf []byte, lba int64, ss int, gen uint64) {
	n := len(buf) / ss
	for i := 0; i < n; i++ {
		sector := buf[i*ss : (i+1)*ss]
		stampSector(sector, lba+int64(i), gen)
		v.written[lba+int64(i)] = gen
	}
}

// onRead validates the op's buffer against recorded stamps.
func (v *Verifier) onRead(buf []byte, lba int64, ss int) error {
	n := len(buf) / ss
	for i := 0; i < n; i++ {
		gen, ok := v.written[lba+int64(i)]
		if !ok {
			v.Unknown++
			continue
		}
		if err := checkSector(buf[i*ss:(i+1)*ss], lba+int64(i), gen); err != nil {
			return err
		}
		v.Checked++
	}
	return nil
}
