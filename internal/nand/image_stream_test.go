package nand

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"iosnap/internal/vfs"
)

// seededDevice builds a deterministic, well-worn device: random programs
// across several segments, erases, health marks, an anchor, the works.
func seededDevice(t *testing.T, cfg Config, seed int64) *Device {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := New(cfg)
	// Program a prefix of most segments (in order, per SequentialProg).
	for seg := 0; seg < cfg.Segments; seg++ {
		if rng.Intn(4) == 0 {
			continue // leave some segments untouched
		}
		n := rng.Intn(cfg.PagesPerSegment + 1)
		for p := 0; p < n; p++ {
			data := make([]byte, cfg.SectorSize)
			rng.Read(data)
			oob := make([]byte, 8)
			rng.Read(oob)
			if _, err := d.ProgramPage(0, d.Addr(seg, p), data, oob); err != nil {
				t.Fatalf("program seg %d page %d: %v", seg, p, err)
			}
		}
		if n == cfg.PagesPerSegment && rng.Intn(2) == 0 {
			if _, err := d.EraseSegment(0, seg); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.MarkSuspect(1)
	d.SetAnchor(&Anchor{ID: uint64(seed), Addrs: []PageAddr{1, 5, 9}})
	return d
}

// TestImageFormatsBitIdentical is the cross-format oracle: a seeded device
// saved through the legacy gob writer and through the streaming writer must
// reload as bit-identical devices (equal StateDigest), both equal to the
// original.
func TestImageFormatsBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := testConfig()
		cfg.Segments = 8
		d := seededDevice(t, cfg, seed)
		want := d.StateDigest()

		var legacy, stream bytes.Buffer
		if err := d.saveImageLegacy(&legacy); err != nil {
			t.Fatalf("seed %d: legacy save: %v", seed, err)
		}
		if err := d.SaveImage(&stream); err != nil {
			t.Fatalf("seed %d: streaming save: %v", seed, err)
		}
		dl, err := LoadImage(&legacy)
		if err != nil {
			t.Fatalf("seed %d: legacy load: %v", seed, err)
		}
		ds, err := LoadImage(&stream)
		if err != nil {
			t.Fatalf("seed %d: streaming load: %v", seed, err)
		}
		if got := dl.StateDigest(); got != want {
			t.Fatalf("seed %d: legacy round-trip digest %#x, want %#x", seed, got, want)
		}
		if got := ds.StateDigest(); got != want {
			t.Fatalf("seed %d: streaming round-trip digest %#x, want %#x", seed, got, want)
		}
	}
}

// TestImageFingerprintModeStream round-trips a fingerprint-only device
// (data absent, dlen 0) through the streaming format.
func TestImageFingerprintModeStream(t *testing.T) {
	cfg := testConfig()
	cfg.StoreData = false
	d := New(cfg)
	data := fill(512, 0x77)
	if _, err := d.ProgramPage(0, 0, data, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := d2.PageFingerprint(0)
	if err != nil {
		t.Fatal(err)
	}
	if fp != Fingerprint(data) {
		t.Fatal("fingerprint not preserved")
	}
	if d2.StateDigest() != d.StateDigest() {
		t.Fatal("digest drifted through fingerprint-mode round trip")
	}
}

// TestLoadImageTruncatedPrefix: every proper prefix of a streaming image
// must fail cleanly — no partial device, no panic — whether the cut lands
// mid-magic, mid-frame-header, mid-payload, mid-CRC, or between frames
// (missing end frame).
func TestLoadImageTruncatedPrefix(t *testing.T) {
	d := seededDevice(t, testConfig(), 3)
	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	// Exhaustive over short prefixes, sampled over the rest (the image is a
	// few KB; step keeps the test fast while still hitting every region).
	step := 1
	if len(img) > 4096 {
		step = len(img) / 4096
	}
	for cut := 0; cut < len(img); cut += step {
		dev, err := LoadImage(bytes.NewReader(img[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded successfully", cut, len(img))
		}
		if dev != nil {
			t.Fatalf("prefix of %d bytes returned a partial device alongside error %v", cut, err)
		}
	}
	// And the full image still loads.
	if _, err := LoadImage(bytes.NewReader(img)); err != nil {
		t.Fatalf("full image: %v", err)
	}
}

// TestLoadImageBitDamage: a flipped byte anywhere after the magic must be
// caught (CRC on every frame), and trailing garbage is rejected.
func TestLoadImageBitDamage(t *testing.T) {
	d := seededDevice(t, testConfig(), 5)
	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	step := 1
	if len(img) > 2048 {
		step = len(img) / 2048
	}
	for pos := len(imageMagic); pos < len(img); pos += step {
		damaged := append([]byte(nil), img...)
		damaged[pos] ^= 0x40
		if _, err := LoadImage(bytes.NewReader(damaged)); err == nil {
			t.Fatalf("bit flip at %d/%d accepted", pos, len(img))
		}
	}
	trailing := append(append([]byte(nil), img...), 0xAB, 0xCD)
	if _, err := LoadImage(bytes.NewReader(trailing)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// craftLegacyImage builds a legacy gob image whose segment records are
// produced by mutate — the hook for crafting malformed images the writer
// would never emit.
func craftLegacyImage(t *testing.T, d *Device, mutate func([]imageSegment) []imageSegment) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.saveImageLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode from scratch: decode header + segments, mutate, re-emit.
	hdr, segs := decodeLegacy(t, buf.Bytes(), d.cfg.Segments)
	segs = mutate(segs)
	return encodeLegacy(t, hdr, segs)
}

// TestLoadImageRejectsDuplicateSegment is the satellite regression: a
// legacy image carrying the same segment index twice used to overwrite one
// segment twice and leave another fresh-from-New with no error. Both
// loaders must now reject it.
func TestLoadImageRejectsDuplicateSegment(t *testing.T) {
	cfg := testConfig()
	d := New(cfg)
	for seg := 0; seg < cfg.Segments; seg++ {
		if _, err := d.ProgramPage(0, d.Addr(seg, 0), fill(512, byte(0x10+seg)), []byte{byte(seg)}); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("legacy", func(t *testing.T) {
		img := craftLegacyImage(t, d, func(segs []imageSegment) []imageSegment {
			// Replace segment 2's record with a second copy of segment 1's:
			// same record count, duplicate index — the old loader accepted
			// this and left segment 2 empty.
			segs[2] = segs[1]
			return segs
		})
		dev, err := LoadImage(bytes.NewReader(img))
		if !errors.Is(err, ErrImageCorrupt) {
			t.Fatalf("duplicate-segment legacy image: %v (device %v)", err, dev != nil)
		}
	})

	t.Run("streaming", func(t *testing.T) {
		var buf bytes.Buffer
		if err := d.SaveImage(&buf); err != nil {
			t.Fatal(err)
		}
		// The streaming writer emits one frame per touched segment in index
		// order; duplicate a middle segment frame wholesale (frames are
		// self-checksummed, so the copy remains internally valid).
		img := buf.Bytes()
		frames := splitFrames(t, img)
		if len(frames) < 4 {
			t.Fatalf("expected >= 4 frames, got %d", len(frames))
		}
		var crafted bytes.Buffer
		crafted.WriteString(imageMagic)
		crafted.Write(frames[0]) // header
		crafted.Write(frames[1]) // segment 0
		crafted.Write(frames[1]) // segment 0 again
		for _, f := range frames[2:] {
			crafted.Write(f)
		}
		if _, err := LoadImage(bytes.NewReader(crafted.Bytes())); !errors.Is(err, ErrImageCorrupt) {
			t.Fatalf("duplicate-segment streaming image: %v", err)
		}
	})
}

// TestLoadImageRejectsBadEndCounts: an end frame whose totals disagree with
// the frames actually present (a segment frame dropped by a hole-punching
// copy, say) is rejected even though every surviving frame checksums.
func TestLoadImageRejectsBadEndCounts(t *testing.T) {
	d := seededDevice(t, testConfig(), 11)
	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	frames := splitFrames(t, buf.Bytes())
	if len(frames) < 3 {
		t.Fatalf("need >= 3 frames, got %d", len(frames))
	}
	var crafted bytes.Buffer
	crafted.WriteString(imageMagic)
	crafted.Write(frames[0])
	// Drop one segment frame, keep the rest including the end frame.
	for _, f := range frames[2:] {
		crafted.Write(f)
	}
	if _, err := LoadImage(bytes.NewReader(crafted.Bytes())); !errors.Is(err, ErrImageCorrupt) {
		t.Fatalf("image with a dropped segment frame: %v", err)
	}
}

// splitFrames cuts a streaming image (past the magic) into whole frames.
func splitFrames(t *testing.T, img []byte) [][]byte {
	t.Helper()
	if !bytes.HasPrefix(img, []byte(imageMagic)) {
		t.Fatal("not a streaming image")
	}
	rest := img[len(imageMagic):]
	var frames [][]byte
	for len(rest) > 0 {
		if len(rest) < 9 {
			t.Fatalf("trailing %d bytes are not a frame", len(rest))
		}
		n := int(uint32(rest[1])<<24 | uint32(rest[2])<<16 | uint32(rest[3])<<8 | uint32(rest[4]))
		total := 5 + n + 4
		if len(rest) < total {
			t.Fatalf("frame wants %d bytes, %d remain", total, len(rest))
		}
		frames = append(frames, rest[:total])
		rest = rest[total:]
	}
	return frames
}

// TestSaveImageCrashTorture drives the whole atomic image-write pipeline
// (vfs.AtomicFile + SaveImage) against the vfs fake with a persistence
// fault injected at every successive operation, crashing after each
// attempt: the durable image must always be either the complete old image
// or the complete new one — LoadImage never sees a torn file.
func TestSaveImageCrashTorture(t *testing.T) {
	cfg := testConfig()
	old := seededDevice(t, cfg, 21)
	newer := seededDevice(t, cfg, 22)
	oldDigest, newDigest := old.StateDigest(), newer.StateDigest()
	if oldDigest == newDigest {
		t.Fatal("seeds collided")
	}

	writeImage := func(m *vfs.Mem, d *Device) error {
		a, err := vfs.NewAtomicFile(m, "dir/dev.img")
		if err != nil {
			return err
		}
		if err := d.SaveImage(a); err != nil {
			a.Abort()
			return err
		}
		return a.Commit()
	}

	for failAt := 0; ; failAt++ {
		m := vfs.NewMem()
		if err := writeImage(m, old); err != nil {
			t.Fatal(err)
		}
		m.Crash() // baseline: the old image is durable
		n := 0
		injected := false
		m.FailOp = func(op vfs.Op, name string) error {
			if n == failAt {
				n++
				injected = true
				return fmt.Errorf("injected %s failure", op)
			}
			n++
			return nil
		}
		err := writeImage(m, newer)
		m.FailOp = nil
		if !injected {
			if err != nil {
				t.Fatalf("failAt=%d: clean save errored: %v", failAt, err)
			}
			break // every op index covered
		}
		m.Crash()
		f, oerr := m.Open("dir/dev.img")
		if oerr != nil {
			t.Fatalf("failAt=%d: durable image lost after crash: %v", failAt, oerr)
		}
		dev, lerr := LoadImage(f)
		f.Close()
		if lerr != nil {
			t.Fatalf("failAt=%d: durable image torn: %v", failAt, lerr)
		}
		if got := dev.StateDigest(); got != oldDigest && got != newDigest {
			t.Fatalf("failAt=%d: crash surfaced a third device state %#x", failAt, got)
		}
	}

	// Final sanity: the clean path leaves the new image.
	m := vfs.NewMem()
	if err := writeImage(m, old); err != nil {
		t.Fatal(err)
	}
	if err := writeImage(m, newer); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	f, err := m.Open("dir/dev.img")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := LoadImage(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if dev.StateDigest() != newDigest {
		t.Fatal("clean save did not persist the new image")
	}
}

// TestImageTBClassAllocationBounds is the acceptance gate for streaming
// persistence: saving and loading a TB-class device (PR 8 geometry) with a
// handful of touched segments must allocate O(touched segments), never
// O(device). The image goes through the vfs fake, whose write accounting
// also proves the untouched 256K segments were skipped on the wire.
func TestImageTBClassAllocationBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SectorSize = 4096
	cfg.PagesPerSegment = 1024 // 4 MiB data per segment
	cfg.Segments = 262144      // 1 TiB raw
	cfg.StoreData = true
	if cfg.Capacity() != 1<<40 {
		t.Fatalf("geometry is %d bytes, want 1 TiB", cfg.Capacity())
	}
	d := New(cfg)
	const touched = 3
	payload := make([]byte, cfg.SectorSize)
	for seg := 0; seg < touched; seg++ {
		for p := 0; p < cfg.PagesPerSegment; p++ {
			payload[0], payload[1] = byte(seg), byte(p)
			if _, err := d.ProgramPage(0, d.Addr(seg, p), payload, []byte{byte(seg)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := d.StateDigest()
	segBytes := int64(cfg.PagesPerSegment) * int64(cfg.SectorSize)
	// Generous O(segment) budget: a few segments of payload plus framing,
	// buffers, and the fake's append growth. The device is 1 TiB and holds
	// 12 MiB of data; an O(device) implementation (or one that frames all
	// 262144 segments) blows through this by orders of magnitude.
	budget := (touched + 4) * segBytes * 3

	m := vfs.NewMem()
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	f, err := m.Create("dev.img")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveImage(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	runtime.ReadMemStats(&ms2)
	if alloc := int64(ms2.TotalAlloc - ms1.TotalAlloc); alloc > budget {
		t.Fatalf("SaveImage of a 1 TiB device allocated %d bytes, budget %d (O(segment) violated)", alloc, budget)
	}
	if _, bytesWritten := m.WriteCounts(); int64(bytesWritten) > budget {
		t.Fatalf("image is %d bytes on the wire, budget %d (untouched segments not skipped?)", bytesWritten, budget)
	}

	r, err := m.Open("dev.img")
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	d2, err := LoadImage(r)
	runtime.ReadMemStats(&ms2)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if alloc := int64(ms2.TotalAlloc - ms1.TotalAlloc); alloc > budget {
		t.Fatalf("LoadImage of a 1 TiB image allocated %d bytes, budget %d (O(segment) violated)", alloc, budget)
	}
	if d2.StateDigest() != want {
		t.Fatal("TB-class round trip lost state")
	}
	// Spot-check: a page in a touched segment reads back; the far end of
	// the device is still erased.
	got, _, _, err := d2.ReadPage(0, d2.Addr(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 7 {
		t.Fatalf("page content lost: %v", got[:2])
	}
	if d2.IsProgrammed(d2.Addr(cfg.Segments-1, 0)) {
		t.Fatal("untouched segment materialized as programmed")
	}
}

// decodeLegacy/encodeLegacy are crafting helpers for malformed-image tests.
func decodeLegacy(t *testing.T, b []byte, nSegs int) (imageHeader, []imageSegment) {
	t.Helper()
	dec := gob.NewDecoder(bytes.NewReader(b))
	var hdr imageHeader
	if err := dec.Decode(&hdr); err != nil {
		t.Fatal(err)
	}
	segs := make([]imageSegment, nSegs)
	for i := 0; i < nSegs; i++ {
		if err := dec.Decode(&segs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return hdr, segs
}

func encodeLegacy(t *testing.T, hdr imageHeader, segs []imageSegment) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(hdr); err != nil {
		t.Fatal(err)
	}
	for i := range segs {
		if err := enc.Encode(segs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}
