package nand

import (
	"encoding/gob"
	"fmt"
	"io"
)

// imageVersion guards the on-disk image format. Version 2 added per-segment
// health (the grown-bad-block table); version 1 images load with every
// segment healthy. Version 3 added the checkpoint anchor; older images load
// with no anchor, which recovery treats as "full scan required".
const imageVersion = 3

// imagePage is the serialized form of a programmed page.
type imagePage struct {
	Index int
	OOB   [OOBSize]byte
	FP    uint64
	Data  []byte
}

type imageSegment struct {
	Index    int
	NextProg int
	Erases   int
	Health   Health // absent in v1 images; gob leaves it Healthy
	Pages    []imagePage
}

type imageHeader struct {
	Version int
	Cfg     Config
	Stats   Stats
	// HasAnchor distinguishes "no checkpoint" from a zero-valued anchor;
	// both fields are absent in pre-v3 images and gob leaves them zero.
	HasAnchor bool
	Anchor    Anchor
}

// SaveImage serializes the device (configuration, wear, page contents) to w.
// Together with LoadImage it gives cmd/iosnapctl persistent device images so
// separate CLI invocations operate on the same "drive".
func (d *Device) SaveImage(w io.Writer) error {
	enc := gob.NewEncoder(w)
	hdr := imageHeader{Version: imageVersion, Cfg: d.cfg, Stats: d.stats}
	if d.anchor != nil {
		hdr.HasAnchor = true
		hdr.Anchor = *d.anchor.clone()
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("nand: encoding image header: %w", err)
	}
	for i := range d.segs {
		s := &d.segs[i]
		is := imageSegment{Index: i, NextProg: s.nextProg, Erases: s.erases, Health: s.health}
		for j := range s.pages {
			p := &s.pages[j]
			if p.state != pageProgrammed {
				continue
			}
			is.Pages = append(is.Pages, imagePage{Index: j, OOB: p.oob, FP: p.fp, Data: p.data})
		}
		if err := enc.Encode(is); err != nil {
			return fmt.Errorf("nand: encoding segment %d: %w", i, err)
		}
	}
	return nil
}

// LoadImage reconstructs a device previously serialized with SaveImage.
func LoadImage(r io.Reader) (*Device, error) {
	dec := gob.NewDecoder(r)
	var hdr imageHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("nand: decoding image header: %w", err)
	}
	if hdr.Version < 1 || hdr.Version > imageVersion {
		return nil, fmt.Errorf("nand: image version %d, want 1..%d", hdr.Version, imageVersion)
	}
	if err := hdr.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("nand: image has invalid config: %w", err)
	}
	d := New(hdr.Cfg)
	d.stats = hdr.Stats
	if hdr.HasAnchor {
		d.anchor = hdr.Anchor.clone()
	}
	for i := 0; i < hdr.Cfg.Segments; i++ {
		var is imageSegment
		if err := dec.Decode(&is); err != nil {
			return nil, fmt.Errorf("nand: decoding segment %d: %w", i, err)
		}
		if is.Index < 0 || is.Index >= hdr.Cfg.Segments {
			return nil, fmt.Errorf("nand: image segment index %d out of range", is.Index)
		}
		s := &d.segs[is.Index]
		s.nextProg = is.NextProg
		s.erases = is.Erases
		s.health = is.Health
		if len(is.Pages) > 0 && s.pages == nil {
			s.pages = make([]page, hdr.Cfg.PagesPerSegment)
		}
		for _, ip := range is.Pages {
			if ip.Index < 0 || ip.Index >= hdr.Cfg.PagesPerSegment {
				return nil, fmt.Errorf("nand: image page index %d out of range", ip.Index)
			}
			p := &s.pages[ip.Index]
			p.state = pageProgrammed
			p.oob = ip.OOB
			p.fp = ip.FP
			p.data = ip.Data
		}
	}
	return d, nil
}
