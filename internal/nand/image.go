package nand

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Device images exist in two on-disk formats:
//
//   - The STREAMING format (version 4, current): a magic string followed by
//     CRC-framed chunks — one header frame, one frame per *touched* segment,
//     and an end frame carrying totals. SaveImage emits it segment-at-a-time
//     through any io.Writer and LoadImage consumes it frame-at-a-time, so
//     peak extra heap is O(one segment), never O(device) — which is what
//     lets a TB-class geometry persist through an ordinary file handle.
//     Untouched segments (never programmed, never erased, healthy) are not
//     framed at all, so a sparse huge device images in O(touched) bytes.
//     Every frame carries a CRC32 and the end frame carries segment/page
//     counts: a truncated, torn, or bit-flipped image fails loudly, and no
//     partial device is ever returned.
//
//   - The LEGACY gob format (versions 1-3): a gob stream of header plus one
//     record per segment. LoadImage still reads it (detected by the absence
//     of the streaming magic); nothing writes it anymore outside tests.
//
// Version history: version 2 added per-segment health (the grown-bad-block
// table); version 1 images load with every segment healthy. Version 3 added
// the checkpoint anchor; older images load with no anchor, which recovery
// treats as "full scan required". Version 4 is the streaming format.
const (
	imageVersion       = 4
	legacyImageVersion = 3
)

// imageMagic begins every streaming image. Legacy gob images cannot start
// with these bytes (a gob stream opens with a type definition whose first
// byte is a small length), so format detection is a prefix check.
const imageMagic = "ioSnapImg4\n"

// Streaming frame types.
const (
	frameHeader byte = 1 // gob-encoded imageHeader
	frameSeg    byte = 2 // one touched segment, binary-encoded
	frameEnd    byte = 3 // totals: segment frames, programmed pages
)

// maxFramePayload bounds a single frame so a corrupt length field cannot
// drive a multi-gigabyte allocation. One frame holds at most one segment:
// pages-per-segment × (page overhead + sector) plus slack. 1 GiB covers
// every geometry this repo configures with orders of magnitude to spare.
const maxFramePayload = 1 << 30

// ErrImageCorrupt reports a structurally damaged image: bad CRC, truncated
// frame, duplicate or out-of-range indices, or totals that do not add up.
var ErrImageCorrupt = errors.New("nand: image corrupt")

// imagePage is the serialized form of a programmed page.
type imagePage struct {
	Index int
	OOB   [OOBSize]byte
	FP    uint64
	Data  []byte
}

type imageSegment struct {
	Index    int
	NextProg int
	Erases   int
	Health   Health // absent in v1 images; gob leaves it Healthy
	Pages    []imagePage
}

type imageHeader struct {
	Version int
	Cfg     Config
	Stats   Stats
	// HasAnchor distinguishes "no checkpoint" from a zero-valued anchor;
	// both fields are absent in pre-v3 images and gob leaves them zero.
	HasAnchor bool
	Anchor    Anchor
}

// touched reports whether a segment carries any state worth imaging. A
// fresh-from-New segment (no page array, no erases, healthy) reloads
// identically from nothing, which is what keeps sparse TB-class images
// O(touched segments).
func (s *segment) touched() bool {
	return s.pages != nil || s.nextProg != 0 || s.erases != 0 || s.health != Healthy
}

// SaveImage serializes the device (configuration, wear, page contents) to w
// in the streaming format. It buffers at most one segment frame at a time,
// so the writer may be a plain file handle and the device may be TB-class.
// Together with LoadImage it gives the CLI and the storage server
// persistent device images across process lifetimes.
func (d *Device) SaveImage(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(imageMagic); err != nil {
		return fmt.Errorf("nand: writing image magic: %w", err)
	}

	var payload bytes.Buffer // reused across frames: peak heap is O(largest frame)
	hdr := imageHeader{Version: imageVersion, Cfg: d.cfg, Stats: d.stats}
	if d.anchor != nil {
		hdr.HasAnchor = true
		hdr.Anchor = *d.anchor.clone()
	}
	if err := gob.NewEncoder(&payload).Encode(hdr); err != nil {
		return fmt.Errorf("nand: encoding image header: %w", err)
	}
	if err := writeFrame(bw, frameHeader, payload.Bytes()); err != nil {
		return err
	}

	var segFrames, pagesTotal uint64
	for i := range d.segs {
		s := &d.segs[i]
		if !s.touched() {
			continue
		}
		payload.Reset()
		n := encodeSegmentFrame(&payload, i, s)
		if err := writeFrame(bw, frameSeg, payload.Bytes()); err != nil {
			return fmt.Errorf("nand: writing segment %d: %w", i, err)
		}
		segFrames++
		pagesTotal += uint64(n)
	}

	payload.Reset()
	var end [16]byte
	binary.BigEndian.PutUint64(end[0:8], segFrames)
	binary.BigEndian.PutUint64(end[8:16], pagesTotal)
	if err := writeFrame(bw, frameEnd, end[:]); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("nand: flushing image: %w", err)
	}
	return nil
}

// encodeSegmentFrame appends segment i's binary encoding to buf and returns
// how many programmed pages it encoded. Layout (big endian):
//
//	u32 index, u32 nextProg, u32 erases, u8 health, u32 programmedPages,
//	then per programmed page: u32 pageIndex (ascending), OOBSize bytes OOB,
//	u64 fingerprint, u32 dataLen, dataLen payload bytes.
func encodeSegmentFrame(buf *bytes.Buffer, i int, s *segment) int {
	var scratch [8]byte
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(scratch[:4], v)
		buf.Write(scratch[:4])
	}
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:8], v)
		buf.Write(scratch[:8])
	}
	programmed := 0
	for j := range s.pages {
		if s.pages[j].state == pageProgrammed {
			programmed++
		}
	}
	put32(uint32(i))
	put32(uint32(s.nextProg))
	put32(uint32(s.erases))
	buf.WriteByte(byte(s.health))
	put32(uint32(programmed))
	for j := range s.pages {
		p := &s.pages[j]
		if p.state != pageProgrammed {
			continue
		}
		put32(uint32(j))
		buf.Write(p.oob[:])
		put64(p.fp)
		put32(uint32(len(p.data)))
		buf.Write(p.data)
	}
	return programmed
}

// writeFrame emits one CRC-framed chunk: type byte, payload length, payload,
// CRC32 over the type byte and payload.
func writeFrame(w *bufio.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[:1])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nand: writing frame: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("nand: writing frame: %w", err)
	}
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("nand: writing frame: %w", err)
	}
	return nil
}

// readFrame reads the next frame, reusing *payload as scratch. A short read
// anywhere inside a frame is reported as corruption (truncated image).
func readFrame(r io.Reader, payload *[]byte) (typ byte, body []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF // clean boundary; caller decides if it was expected
		}
		return 0, nil, fmt.Errorf("%w: truncated frame header: %v", ErrImageCorrupt, err)
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame claims %d payload bytes", ErrImageCorrupt, n)
	}
	if cap(*payload) < int(n) {
		*payload = make([]byte, n)
	}
	body = (*payload)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame payload: %v", ErrImageCorrupt, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame checksum: %v", ErrImageCorrupt, err)
	}
	crc := crc32.ChecksumIEEE(hdr[:1])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if got := binary.BigEndian.Uint32(tail[:]); got != crc {
		return 0, nil, fmt.Errorf("%w: frame checksum %#x, want %#x", ErrImageCorrupt, got, crc)
	}
	return hdr[0], body, nil
}

// LoadImage reconstructs a device previously serialized with SaveImage. It
// reads both formats: the streaming format (detected by its magic) and
// legacy gob images. On any error — truncation, bit damage, duplicate or
// out-of-range indices — no device is returned: a partially-reconstructed
// device must never reach recovery.
func LoadImage(r io.Reader) (*Device, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	peek, err := br.Peek(len(imageMagic))
	if err == nil && string(peek) == imageMagic {
		br.Discard(len(imageMagic))
		return loadStreamImage(br)
	}
	// Not the streaming magic (or too short to hold it): legacy gob. The
	// gob decoder produces the authoritative error for garbage input.
	return loadLegacyImage(br)
}

func loadStreamImage(r io.Reader) (*Device, error) {
	var scratch []byte
	typ, body, err := readFrame(r, &scratch)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("%w: image ends before the header frame", ErrImageCorrupt)
		}
		return nil, err
	}
	if typ != frameHeader {
		return nil, fmt.Errorf("%w: first frame type %d, want header", ErrImageCorrupt, typ)
	}
	var hdr imageHeader
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("nand: decoding image header: %w", err)
	}
	if hdr.Version != imageVersion {
		return nil, fmt.Errorf("nand: streaming image version %d, want %d", hdr.Version, imageVersion)
	}
	if err := hdr.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("nand: image has invalid config: %w", err)
	}
	d := New(hdr.Cfg)
	d.stats = hdr.Stats
	if hdr.HasAnchor {
		d.anchor = hdr.Anchor.clone()
	}

	seen := make(map[int]bool)
	var segFrames, pagesTotal uint64
	for {
		typ, body, err = readFrame(r, &scratch)
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("%w: image ends without an end frame", ErrImageCorrupt)
			}
			return nil, err
		}
		if typ == frameEnd {
			if len(body) != 16 {
				return nil, fmt.Errorf("%w: end frame is %d bytes, want 16", ErrImageCorrupt, len(body))
			}
			if got := binary.BigEndian.Uint64(body[0:8]); got != segFrames {
				return nil, fmt.Errorf("%w: end frame promises %d segments, image carries %d",
					ErrImageCorrupt, got, segFrames)
			}
			if got := binary.BigEndian.Uint64(body[8:16]); got != pagesTotal {
				return nil, fmt.Errorf("%w: end frame promises %d pages, image carries %d",
					ErrImageCorrupt, got, pagesTotal)
			}
			// Nothing may follow the end frame.
			if _, _, err := readFrame(r, &scratch); err != io.EOF {
				return nil, fmt.Errorf("%w: data after the end frame", ErrImageCorrupt)
			}
			return d, nil
		}
		if typ != frameSeg {
			return nil, fmt.Errorf("%w: unexpected frame type %d", ErrImageCorrupt, typ)
		}
		n, err := decodeSegmentFrame(d, body, seen)
		if err != nil {
			return nil, err
		}
		segFrames++
		pagesTotal += uint64(n)
	}
}

// decodeSegmentFrame applies one segment frame to d, rejecting duplicate
// segment indices (seen) and malformed page lists.
func decodeSegmentFrame(d *Device, body []byte, seen map[int]bool) (pages int, err error) {
	cfg := d.cfg
	rd := bytes.NewReader(body)
	var fixed [13]byte
	if _, err := io.ReadFull(rd, fixed[:]); err != nil {
		return 0, fmt.Errorf("%w: short segment frame", ErrImageCorrupt)
	}
	idx := int(binary.BigEndian.Uint32(fixed[0:4]))
	nextProg := int(binary.BigEndian.Uint32(fixed[4:8]))
	erases := int(binary.BigEndian.Uint32(fixed[8:12]))
	health := Health(fixed[12])
	var cnt [4]byte
	if _, err := io.ReadFull(rd, cnt[:]); err != nil {
		return 0, fmt.Errorf("%w: short segment frame", ErrImageCorrupt)
	}
	nPages := int(binary.BigEndian.Uint32(cnt[:]))

	if idx < 0 || idx >= cfg.Segments {
		return 0, fmt.Errorf("%w: segment index %d out of range", ErrImageCorrupt, idx)
	}
	if seen[idx] {
		return 0, fmt.Errorf("%w: duplicate segment %d", ErrImageCorrupt, idx)
	}
	seen[idx] = true
	if nextProg < 0 || nextProg > cfg.PagesPerSegment {
		return 0, fmt.Errorf("%w: segment %d nextProg %d out of range", ErrImageCorrupt, idx, nextProg)
	}
	if nPages < 0 || nPages > cfg.PagesPerSegment {
		return 0, fmt.Errorf("%w: segment %d claims %d pages", ErrImageCorrupt, idx, nPages)
	}
	if health > Retired {
		return 0, fmt.Errorf("%w: segment %d health %d unknown", ErrImageCorrupt, idx, health)
	}

	s := &d.segs[idx]
	s.nextProg = nextProg
	s.erases = erases
	s.health = health
	if nPages > 0 && s.pages == nil {
		s.pages = make([]page, cfg.PagesPerSegment)
	}
	prev := -1
	var phdr [4 + OOBSize + 8 + 4]byte
	for k := 0; k < nPages; k++ {
		if _, err := io.ReadFull(rd, phdr[:]); err != nil {
			return 0, fmt.Errorf("%w: segment %d truncated at page %d", ErrImageCorrupt, idx, k)
		}
		pi := int(binary.BigEndian.Uint32(phdr[0:4]))
		if pi <= prev || pi >= cfg.PagesPerSegment {
			// Covers out-of-range, duplicates, and reordering in one check:
			// the writer emits strictly ascending page indices.
			return 0, fmt.Errorf("%w: segment %d page index %d after %d", ErrImageCorrupt, idx, pi, prev)
		}
		prev = pi
		p := &s.pages[pi]
		p.state = pageProgrammed
		copy(p.oob[:], phdr[4:4+OOBSize])
		p.fp = binary.BigEndian.Uint64(phdr[4+OOBSize : 4+OOBSize+8])
		dlen := int(binary.BigEndian.Uint32(phdr[4+OOBSize+8:]))
		switch dlen {
		case 0:
			p.data = nil
		case cfg.SectorSize:
			p.data = make([]byte, dlen)
			if _, err := io.ReadFull(rd, p.data); err != nil {
				return 0, fmt.Errorf("%w: segment %d page %d payload truncated", ErrImageCorrupt, idx, pi)
			}
		default:
			return 0, fmt.Errorf("%w: segment %d page %d payload %d bytes, want 0 or %d",
				ErrImageCorrupt, idx, pi, dlen, cfg.SectorSize)
		}
	}
	if rd.Len() != 0 {
		return 0, fmt.Errorf("%w: segment %d frame has %d trailing bytes", ErrImageCorrupt, idx, rd.Len())
	}
	return nPages, nil
}

// saveImageLegacy writes the pre-v4 gob format. It exists so tests can
// produce legacy images and prove both loaders reconstruct bit-identical
// devices; production code always writes the streaming format.
func (d *Device) saveImageLegacy(w io.Writer) error {
	enc := gob.NewEncoder(w)
	hdr := imageHeader{Version: legacyImageVersion, Cfg: d.cfg, Stats: d.stats}
	if d.anchor != nil {
		hdr.HasAnchor = true
		hdr.Anchor = *d.anchor.clone()
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("nand: encoding image header: %w", err)
	}
	for i := range d.segs {
		s := &d.segs[i]
		is := imageSegment{Index: i, NextProg: s.nextProg, Erases: s.erases, Health: s.health}
		for j := range s.pages {
			p := &s.pages[j]
			if p.state != pageProgrammed {
				continue
			}
			is.Pages = append(is.Pages, imagePage{Index: j, OOB: p.oob, FP: p.fp, Data: p.data})
		}
		if err := enc.Encode(is); err != nil {
			return fmt.Errorf("nand: encoding segment %d: %w", i, err)
		}
	}
	return nil
}

// loadLegacyImage reconstructs a device from a pre-v4 gob image.
func loadLegacyImage(r io.Reader) (*Device, error) {
	dec := gob.NewDecoder(r)
	var hdr imageHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("nand: decoding image header: %w", err)
	}
	if hdr.Version < 1 || hdr.Version > legacyImageVersion {
		return nil, fmt.Errorf("nand: image version %d, want 1..%d", hdr.Version, legacyImageVersion)
	}
	if err := hdr.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("nand: image has invalid config: %w", err)
	}
	d := New(hdr.Cfg)
	d.stats = hdr.Stats
	if hdr.HasAnchor {
		d.anchor = hdr.Anchor.clone()
	}
	seen := make(map[int]bool, hdr.Cfg.Segments)
	for i := 0; i < hdr.Cfg.Segments; i++ {
		var is imageSegment
		if err := dec.Decode(&is); err != nil {
			return nil, fmt.Errorf("nand: decoding segment %d: %w", i, err)
		}
		if is.Index < 0 || is.Index >= hdr.Cfg.Segments {
			return nil, fmt.Errorf("nand: image segment index %d out of range", is.Index)
		}
		if seen[is.Index] {
			// A duplicated record would overwrite one segment twice and
			// leave another fresh-from-New — a silently wrong device.
			return nil, fmt.Errorf("%w: duplicate segment %d", ErrImageCorrupt, is.Index)
		}
		seen[is.Index] = true
		s := &d.segs[is.Index]
		s.nextProg = is.NextProg
		s.erases = is.Erases
		s.health = is.Health
		if len(is.Pages) > 0 && s.pages == nil {
			s.pages = make([]page, hdr.Cfg.PagesPerSegment)
		}
		prevPage := -1
		for _, ip := range is.Pages {
			if ip.Index <= prevPage || ip.Index >= hdr.Cfg.PagesPerSegment {
				return nil, fmt.Errorf("%w: segment %d page index %d after %d",
					ErrImageCorrupt, is.Index, ip.Index, prevPage)
			}
			prevPage = ip.Index
			p := &s.pages[ip.Index]
			p.state = pageProgrammed
			p.oob = ip.OOB
			p.fp = ip.FP
			p.data = ip.Data
		}
	}
	return d, nil
}

// StateDigest hashes the complete externally-observable device state:
// configuration, statistics, anchor, and every segment's wear, health, and
// programmed pages (OOB, fingerprint, payload). Two devices with equal
// digests are interchangeable to the FTL; the image round-trip tests and
// the server's save/remount path use it as the bit-identity oracle.
func (d *Device) StateDigest() uint64 {
	h := mix64(0x696f536e61704469, uint64(imageVersionDigestSalt))
	h = mix64(h, uint64(d.cfg.SectorSize))
	h = mix64(h, uint64(d.cfg.PagesPerSegment))
	h = mix64(h, uint64(d.cfg.Segments))
	h = mix64(h, uint64(d.cfg.Channels))
	h = mix64(h, uint64(d.cfg.EraseEndurance))
	h = mix64(h, boolBit(d.cfg.StoreData)<<1|boolBit(d.cfg.SequentialProg))
	h = mix64(h, uint64(d.stats.PagePrograms))
	h = mix64(h, uint64(d.stats.PageReads))
	h = mix64(h, uint64(d.stats.Erases))
	h = mix64(h, uint64(d.stats.BytesWritten))
	if d.anchor != nil {
		h = mix64(h, d.anchor.ID)
		for _, a := range d.anchor.Addrs {
			h = mix64(h, uint64(a))
		}
	}
	for i := range d.segs {
		s := &d.segs[i]
		if !s.touched() {
			continue
		}
		h = mix64(h, uint64(i))
		h = mix64(h, uint64(s.nextProg))
		h = mix64(h, uint64(s.erases))
		h = mix64(h, uint64(s.health))
		for j := range s.pages {
			p := &s.pages[j]
			if p.state != pageProgrammed {
				continue
			}
			h = mix64(h, uint64(j))
			h = hashWords(h, p.oob[:])
			h = mix64(h, p.fp)
			h = hashWords(h, p.data)
		}
	}
	return h
}

// imageVersionDigestSalt keeps StateDigest stable across format versions:
// the digest hashes device state, not encoding, so it is NOT bumped with
// imageVersion.
const imageVersionDigestSalt = 1

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
