package nand

import (
	"errors"
	"testing"
)

func TestHealthTransitions(t *testing.T) {
	d := New(testConfig())
	if h := d.SegmentHealth(1); h != Healthy {
		t.Fatalf("fresh segment health = %v, want healthy", h)
	}
	d.MarkSuspect(1)
	if h := d.SegmentHealth(1); h != Suspect {
		t.Fatalf("health after MarkSuspect = %v", h)
	}
	d.Retire(1)
	if h := d.SegmentHealth(1); h != Retired {
		t.Fatalf("health after Retire = %v", h)
	}
	// Retirement is terminal.
	d.MarkSuspect(1)
	if h := d.SegmentHealth(1); h != Retired {
		t.Fatalf("MarkSuspect resurrected a retired segment: %v", h)
	}
	sus, ret := d.HealthCounts()
	if sus != 0 || ret != 1 {
		t.Fatalf("HealthCounts = (%d, %d), want (0, 1)", sus, ret)
	}
	if got := d.RetiredSegments(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("RetiredSegments = %v", got)
	}
	// Out-of-range probes are inert.
	d.MarkSuspect(-1)
	d.Retire(99)
	if d.SegmentHealth(-1) != Retired || d.SegmentHealth(99) != Retired {
		t.Fatal("out-of-range segments must report retired")
	}
}

func TestRetiredSegmentRefusesProgramAndErase(t *testing.T) {
	d := New(testConfig())
	data := fill(512, 0xAB)
	if _, err := d.ProgramPage(0, d.Addr(2, 0), data, nil); err != nil {
		t.Fatal(err)
	}
	d.Retire(2)

	if _, err := d.ProgramPage(0, d.Addr(2, 1), data, nil); !errors.Is(err, ErrRetired) {
		t.Fatalf("program of retired segment: %v, want ErrRetired", err)
	}
	if _, err := d.EraseSegment(0, 2); !errors.Is(err, ErrRetired) {
		t.Fatalf("erase of retired segment: %v, want ErrRetired", err)
	}
	if _, err := d.ProgramPage(0, d.Addr(3, 0), data, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CopyPage(0, d.Addr(3, 0), d.Addr(2, 1)); !errors.Is(err, ErrRetired) {
		t.Fatalf("copy into retired segment: %v, want ErrRetired", err)
	}
	// Reads of surviving pages still work — rescue depends on this.
	got, _, _, err := d.ReadPage(0, d.Addr(2, 0))
	if err != nil {
		t.Fatalf("read of retired segment's page: %v", err)
	}
	if string(got) != string(data) {
		t.Fatal("retired segment's data corrupted")
	}
	if _, err := d.CopyPage(0, d.Addr(2, 0), d.Addr(3, 1)); err != nil {
		t.Fatalf("copy out of retired segment: %v", err)
	}
}

// TestWearOutModel: past the threshold, erases fail with ErrWornOut at the
// configured probability, reproducibly for a fixed WearSeed.
func TestWearOutModel(t *testing.T) {
	cfg := testConfig()
	cfg.WearOutThreshold = 3
	cfg.WearOutProb = 0.5
	cfg.WearSeed = 42

	run := func() (failures int, failSeq []int) {
		d := New(cfg)
		for i := 0; i < 40; i++ {
			if _, err := d.EraseSegment(0, 0); err != nil {
				if !errors.Is(err, ErrWornOut) {
					t.Fatalf("erase %d: %v", i, err)
				}
				failures++
				failSeq = append(failSeq, i)
			}
		}
		return failures, failSeq
	}
	n1, seq1 := run()
	n2, seq2 := run()
	if n1 != n2 || len(seq1) != len(seq2) {
		t.Fatalf("wear-out not deterministic: %d vs %d failures", n1, n2)
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("wear-out failure sequence diverged: %v vs %v", seq1, seq2)
		}
	}
	// With prob 0.5 over ~37 post-threshold erases, both extremes are
	// astronomically unlikely; zero either way means the model is dead.
	if n1 == 0 {
		t.Fatal("no wear-out failures past the threshold")
	}
	if n1 >= 37 {
		t.Fatal("every post-threshold erase failed; prob misapplied")
	}
	// A failed erase leaves the segment's contents and counters intact.
	d := New(cfg)
	if _, err := d.ProgramPage(0, d.Addr(1, 0), fill(512, 1), nil); err != nil {
		t.Fatal(err)
	}
	if !d.IsProgrammed(d.Addr(1, 0)) {
		t.Fatal("setup")
	}
}

func TestWearOutDisabledByDefault(t *testing.T) {
	d := New(testConfig())
	for i := 0; i < 100; i++ {
		if _, err := d.EraseSegment(0, 0); err != nil {
			t.Fatalf("erase %d with wear model off: %v", i, err)
		}
	}
}

func TestWearConfigValidate(t *testing.T) {
	cfg := testConfig()
	cfg.WearOutThreshold = -1
	if cfg.Validate() == nil {
		t.Fatal("negative WearOutThreshold accepted")
	}
	cfg = testConfig()
	cfg.WearOutProb = 1.5
	if cfg.Validate() == nil {
		t.Fatal("WearOutProb > 1 accepted")
	}
}
