package nand

import (
	"errors"
	"fmt"
	"testing"

	"iosnap/internal/sim"
)

func batchConfig() Config {
	cfg := DefaultConfig()
	cfg.SectorSize = 4096
	cfg.PagesPerSegment = 64
	cfg.Segments = 8
	cfg.Channels = 4
	cfg.StoreData = true
	return cfg
}

func fillPattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// TestProgramPagesMatchesSequential programs the same stripe on a batch
// device and a per-page twin, demanding identical device state, stats, and
// completion time: the batch's single bus window is n per-page clamped
// costs laid end to end, exactly the schedule sequential acquires produce.
func TestProgramPagesMatchesSequential(t *testing.T) {
	cfg := batchConfig()
	batch := New(cfg)
	seq := New(cfg)
	const n = 48
	addrs := make([]PageAddr, n)
	datas := make([][]byte, n)
	oobs := make([][]byte, n)
	for i := 0; i < n; i++ {
		addrs[i] = PageAddr(i)
		datas[i] = fillPattern(cfg.SectorSize, byte(i))
		oobs[i] = fillPattern(16, byte(i*3))
	}
	now := sim.Time(1000)
	k, batchDone, err := batch.ProgramPages(now, addrs, datas, oobs)
	if err != nil || k != n {
		t.Fatalf("batch: k=%d err=%v", k, err)
	}
	var seqDone sim.Time
	for i := range addrs {
		d, err := seq.ProgramPage(now, addrs[i], datas[i], oobs[i])
		if err != nil {
			t.Fatalf("seq page %d: %v", i, err)
		}
		if d > seqDone {
			seqDone = d
		}
	}
	if batchDone != seqDone {
		t.Fatalf("batch done %v != sequential %v", batchDone, seqDone)
	}
	if batch.Stats() != seq.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", batch.Stats(), seq.Stats())
	}
	for i := range addrs {
		bf, _ := batch.PageFingerprint(addrs[i])
		sf, _ := seq.PageFingerprint(addrs[i])
		if bf != sf {
			t.Fatalf("page %d fingerprint mismatch", i)
		}
		bo, _ := batch.PageOOB(addrs[i])
		so, _ := seq.PageOOB(addrs[i])
		if fmt.Sprint(bo) != fmt.Sprint(so) {
			t.Fatalf("page %d oob mismatch", i)
		}
	}
}

// TestReadPagesMatchesSequential: batch reads issue the identical acquires
// in the identical order as per-page reads, so completion times are exact.
func TestReadPagesMatchesSequential(t *testing.T) {
	cfg := batchConfig()
	batch := New(cfg)
	seq := New(cfg)
	const n = 32
	addrs := make([]PageAddr, n)
	for i := 0; i < n; i++ {
		addrs[i] = PageAddr(i)
		data := fillPattern(cfg.SectorSize, byte(i))
		if _, err := batch.ProgramPage(0, addrs[i], data, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := seq.ProgramPage(0, addrs[i], data, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Random-ish permutation crossing channels.
	perm := make([]PageAddr, 0, n)
	for i := 0; i < n; i++ {
		perm = append(perm, addrs[(i*7)%n])
	}
	now := sim.Time(5_000_000)
	datas, _, k, batchDone, err := batch.ReadPages(now, perm)
	if err != nil || k != n {
		t.Fatalf("batch read: k=%d err=%v", k, err)
	}
	var seqDone sim.Time
	for i, a := range perm {
		data, _, d, err := seq.ReadPage(now, a)
		if err != nil {
			t.Fatalf("seq read %d: %v", i, err)
		}
		if d > seqDone {
			seqDone = d
		}
		if fmt.Sprint(data) != fmt.Sprint(datas[i]) {
			t.Fatalf("read %d payload mismatch", i)
		}
	}
	if batchDone != seqDone {
		t.Fatalf("batch read done %v != sequential %v", batchDone, seqDone)
	}
	if batch.Stats() != seq.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", batch.Stats(), seq.Stats())
	}
}

// TestCopyPagesMatchesSequential: the batch copy is defined as the
// sequential pipeline at a common submit time.
func TestCopyPagesMatchesSequential(t *testing.T) {
	cfg := batchConfig()
	batch := New(cfg)
	seq := New(cfg)
	const n = 16
	froms := make([]PageAddr, n)
	tos := make([]PageAddr, n)
	for i := 0; i < n; i++ {
		froms[i] = PageAddr(i)
		tos[i] = batch.Addr(1, i)
		data := fillPattern(cfg.SectorSize, byte(i))
		if _, err := batch.ProgramPage(0, froms[i], data, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := seq.ProgramPage(0, froms[i], data, nil); err != nil {
			t.Fatal(err)
		}
	}
	now := sim.Time(9_000_000)
	k, batchDone, err := batch.CopyPages(now, froms, tos)
	if err != nil || k != n {
		t.Fatalf("batch copy: k=%d err=%v", k, err)
	}
	var seqDone sim.Time
	for i := range froms {
		d, err := seq.CopyPage(now, froms[i], tos[i])
		if err != nil {
			t.Fatal(err)
		}
		if d > seqDone {
			seqDone = d
		}
	}
	if batchDone != seqDone {
		t.Fatalf("batch copy done %v != sequential %v", batchDone, seqDone)
	}
	if batch.Stats() != seq.Stats() {
		t.Fatalf("stats diverged")
	}
}

// TestProgramPagesFirstErrorContract: a mid-batch fault stops the batch at
// the failing page with everything before it committed and nothing after.
func TestProgramPagesFirstErrorContract(t *testing.T) {
	cfg := batchConfig()
	d := New(cfg)
	const n, failAt = 10, 6
	boom := errors.New("injected")
	ops := 0
	d.SetFaultHook(FaultFunc(func(op Op, addr PageAddr) error {
		if op == OpProgram {
			if ops == failAt {
				return boom
			}
			ops++
		}
		return nil
	}))
	addrs := make([]PageAddr, n)
	datas := make([][]byte, n)
	oobs := make([][]byte, n)
	for i := range addrs {
		addrs[i] = PageAddr(i)
		datas[i] = fillPattern(cfg.SectorSize, byte(i))
		oobs[i] = nil
	}
	k, _, err := d.ProgramPages(0, addrs, datas, oobs)
	if !errors.Is(err, boom) || k != failAt {
		t.Fatalf("k=%d err=%v, want k=%d err=injected", k, err, failAt)
	}
	for i := 0; i < n; i++ {
		if got := d.IsProgrammed(addrs[i]); got != (i < failAt) {
			t.Fatalf("page %d programmed=%v after fail-at-%d", i, got, failAt)
		}
	}
	if got := d.Stats().PagePrograms; got != failAt {
		t.Fatalf("PagePrograms %d, want %d", got, failAt)
	}
}

func TestReadPagesFirstErrorContract(t *testing.T) {
	cfg := batchConfig()
	d := New(cfg)
	for i := 0; i < 4; i++ {
		if _, err := d.ProgramPage(0, PageAddr(i), fillPattern(cfg.SectorSize, 1), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Page 4 is erased: the batch must stop there with 4 pages read.
	addrs := []PageAddr{0, 1, 2, 3, 4, 5}
	datas, oobs, k, _, err := d.ReadPages(0, addrs)
	if !errors.Is(err, ErrReadErased) || k != 4 {
		t.Fatalf("k=%d err=%v", k, err)
	}
	if len(datas) != 4 || len(oobs) != 4 {
		t.Fatalf("partial results len %d/%d, want 4", len(datas), len(oobs))
	}
}
