package nand

import (
	"fmt"

	"iosnap/internal/sim"
)

// Batch entry points. A multi-page request from the FTL's batched data path
// arrives here as one call: every page is submitted at the same virtual
// time, channel acquisitions overlap across the stripe exactly as if the
// host had issued the pages back to back, and the shared bus is claimed
// once per batch — programs reserve one contiguous transfer window up
// front (host-to-device transfers precede cell programming, so the window
// is known when the batch is submitted), while reads append each page's
// transfer to the bus in a single monotone pass (device-to-host transfers
// trail the cell reads). Errors keep per-page attribution: a batch stops at
// the first failing page and reports how many pages landed, so the retry /
// media-failure machinery can charge the right segment and resume with the
// remainder.

// pageCost is the bus transfer time for one page's payload, with the same
// ≥1ns clamp acquire applies. 0 means the bus is disabled.
func (b *busModel) pageCost(bytes int) sim.Duration {
	if b.nsPerByte == 0 {
		return 0
	}
	cost := sim.Duration(float64(bytes) * b.nsPerByte)
	if cost < 1 {
		cost = 1
	}
	return cost
}

// reserve claims one contiguous window of the given length on the bus and
// returns its start time. Because every page in a batch carries the same
// per-page clamped cost, a window of n·pageCost with hand-offs at the
// partial sums is *exactly* the schedule n back-to-back per-page acquires
// would produce — batch and sequential submission agree to the nanosecond.
func (b *busModel) reserve(now sim.Time, window sim.Duration) sim.Time {
	if b.nsPerByte == 0 {
		return now
	}
	start, _ := b.res.Acquire(now, window)
	return start
}

// ProgramPages programs len(addrs) erased pages in one batch submitted at
// now: datas[i] and oobs[i] land at addrs[i]. The write bus is reserved
// once for the batch's total bytes; page i's cell program starts at its
// transfer hand-off point inside that window, on its own channel, so a
// striped batch overlaps programming across channels. Pages commit in
// order (fault hooks are consulted per page, in order, preserving
// crash-at-operation-N semantics); on the first failure the batch stops
// and returns how many pages landed, the completion time of the landed
// pages, and the failing page's error. The bus window for the full batch
// stays claimed on failure — the transfer was already scheduled.
func (d *Device) ProgramPages(now sim.Time, addrs []PageAddr, datas, oobs [][]byte) (n int, done sim.Time, err error) {
	if len(datas) != len(addrs) || len(oobs) != len(addrs) {
		panic(fmt.Sprintf("nand: ProgramPages %d addrs, %d datas, %d oobs", len(addrs), len(datas), len(oobs)))
	}
	done = now
	pageCost := d.writeBus.pageCost(d.cfg.SectorSize)
	var busStart sim.Time
	busReserved := false
	transferred := 0
	// Stats commit once per batch (early returns included): pages that passed
	// validation count exactly as the per-page loop would have counted them.
	programmed := 0
	defer func() {
		d.stats.PagePrograms += int64(programmed)
		d.stats.BytesWritten += int64(programmed) * int64(d.cfg.SectorSize)
	}()
	// Address decomposition runs incrementally: data-path batches are
	// contiguous within a segment, so consecutive addresses advance the page
	// index and channel without re-dividing. Any discontiguity falls back to
	// the full decomposition (with its bounds check).
	pps := d.cfg.PagesPerSegment
	nch := d.cfg.Channels
	segIdx, pageIdx, ch := -1, 0, 0
	var seg *segment
	for i, addr := range addrs {
		if d.hook != nil {
			if err := d.hook.BeforeOp(OpProgram, addr); err != nil {
				return i, done, err
			}
		}
		if segIdx >= 0 && addr == addrs[i-1]+1 && pageIdx+1 < pps {
			pageIdx++
			if ch++; ch == nch {
				ch = 0
			}
		} else {
			if int64(addr) >= d.cfg.TotalPages() {
				return i, done, fmt.Errorf("%w: %d", ErrBadAddress, addr)
			}
			segIdx = d.SegmentOf(addr)
			pageIdx = d.PageIndexOf(addr)
			ch = int(addr) % nch
			seg = &d.segs[segIdx]
			if seg.pages == nil {
				seg.pages = make([]page, pps)
			}
		}
		p := &seg.pages[pageIdx]
		if seg.health == Retired {
			return i, done, fmt.Errorf("%w: program of segment %d", ErrRetired, segIdx)
		}
		data, oob := datas[i], oobs[i]
		if len(data) != d.cfg.SectorSize {
			return i, done, fmt.Errorf("%w: got %d, want %d", ErrBadSize, len(data), d.cfg.SectorSize)
		}
		if len(oob) > OOBSize {
			return i, done, fmt.Errorf("nand: oob %d bytes exceeds %d", len(oob), OOBSize)
		}
		if p.state != pageErased {
			return i, done, fmt.Errorf("%w: page %d", ErrNotErased, addr)
		}
		if d.cfg.SequentialProg && pageIdx != seg.nextProg {
			return i, done, fmt.Errorf("%w: segment %d page %d (next free %d)",
				ErrOutOfOrder, segIdx, pageIdx, seg.nextProg)
		}
		stored := data
		if d.hook != nil {
			if m := d.hook.MutateOOB(addr, oob); len(m) <= OOBSize {
				oob = m
			}
			// Same post-ECC payload corruption as ProgramPage: cells store the
			// corrupted bytes, the fingerprint captures the intended ones.
			stored = d.corruptData(OpProgram, addr, data)
		}

		p.state = pageProgrammed
		copy(p.oob[:], oob)
		for j := len(oob); j < OOBSize; j++ {
			p.oob[j] = 0
		}
		p.fp = Fingerprint(data)
		if d.cfg.StoreData {
			p.data = append(p.data[:0], stored...)
		}
		seg.nextProg = pageIdx + 1
		programmed++

		// One bus window for the whole batch, claimed at the first page that
		// passes validation; page i's program starts once its share of the
		// transfer completes.
		handoff := now
		if !busReserved {
			busStart = d.writeBus.reserve(now, sim.Duration(len(addrs))*pageCost)
			busReserved = true // bus disabled: hand-offs stay at now
		}
		transferred++
		if pageCost != 0 {
			handoff = busStart.Add(sim.Duration(transferred) * pageCost)
		}
		_, chDone := d.channels[ch].Acquire(handoff, d.cfg.ProgramLatency)
		if chDone > done {
			done = chDone
		}
	}
	return len(addrs), done, nil
}

// ReadPages reads len(addrs) programmed pages in one batch submitted at
// now. Cell reads overlap across channels; each page's transfer then
// claims the read bus in submission order (one monotone pass — the batch's
// bus charge). datas[i]/oobs[i] alias device memory like ReadPage's return
// values (datas[i] is nil in fingerprint mode) and must not be modified.
// On the first failing page the batch stops, returning the pages read so
// far, their completion time, and the failing page's error.
func (d *Device) ReadPages(now sim.Time, addrs []PageAddr) (datas, oobs [][]byte, n int, done sim.Time, err error) {
	datas = make([][]byte, 0, len(addrs))
	oobs = make([][]byte, 0, len(addrs))
	n, done, err = d.ReadPagesInto(now, addrs, &datas, &oobs)
	return datas, oobs, n, done, err
}

// ReadPagesInto is ReadPages appending into caller-owned result scratch,
// one entry per completed page. The data path issues one call per chunk,
// so allocating fresh result slices on every call would dominate the
// batched read's host cost; FTLs pass reusable per-FTL scratch instead.
func (d *Device) ReadPagesInto(now sim.Time, addrs []PageAddr, datas, oobs *[][]byte) (n int, done sim.Time, err error) {
	done = now
	for i, addr := range addrs {
		if d.hook != nil {
			if err := d.hook.BeforeOp(OpRead, addr); err != nil {
				return i, done, err
			}
		}
		_, p, err := d.check(addr)
		if err != nil {
			return i, done, err
		}
		if p.state != pageProgrammed {
			return i, done, fmt.Errorf("%w: page %d", ErrReadErased, addr)
		}
		d.stats.PageReads++
		d.stats.BytesRead += int64(d.cfg.SectorSize)

		_, cellDone := d.channelFor(addr).Acquire(now, d.cfg.ReadLatency)
		pageDone := d.readBus.acquire(cellDone, d.cfg.SectorSize)
		if pageDone > done {
			done = pageDone
		}
		data := p.data
		if d.hook != nil {
			data = d.corruptData(OpRead, addr, data)
			if err := d.verifyPayload(addr, p, data); err != nil {
				// Cell and bus time for the rejected page were already
				// charged above; the batch stops at the corrupt page.
				return i, done, err
			}
		}
		*datas = append(*datas, data)
		*oobs = append(*oobs, p.oob[:])
	}
	return len(addrs), done, nil
}

// CopyPages performs a batch of copy-forwards, all submitted at now —
// exactly the schedule the cleaner's quantum pipeline issues, one call
// instead of len(froms). It stops at the first failing pair, returning how
// many pairs completed, their completion time, and the failing pair's
// error (per-pair attribution for the rescue/retirement machinery).
func (d *Device) CopyPages(now sim.Time, froms, tos []PageAddr) (n int, done sim.Time, err error) {
	if len(froms) != len(tos) {
		panic(fmt.Sprintf("nand: CopyPages %d sources, %d destinations", len(froms), len(tos)))
	}
	done = now
	for i := range froms {
		pairDone, err := d.CopyPage(now, froms[i], tos[i])
		if pairDone > done {
			done = pairDone
		}
		if err != nil {
			return i, done, err
		}
	}
	return len(froms), done, nil
}
