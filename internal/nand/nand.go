// Package nand simulates a NAND flash device at the level an FTL programs
// against: segments (erase blocks) of pages, each page carrying a payload
// and an out-of-band (OOB) header area, with the three native operations —
// read page, program page, erase segment — and their asymmetric costs.
//
// The simulator enforces the physical contract that makes Remap-on-Write
// necessary in the first place: a programmed page cannot be reprogrammed
// until its whole segment is erased. It also models the device's internal
// parallelism (pages stripe across channels) and a shared transfer bus, so
// sequential streams reach multi-GB/s while single-threaded random reads are
// latency-bound — the same first-order behaviour as the paper's Fusion-io
// card.
//
// To keep multi-gigabyte experiments cheap, payload storage is optional:
// with Config.StoreData=false the device keeps only a 64-bit fingerprint of
// each payload (enough for integrity checks) while timing and OOB metadata
// remain exact.
package nand

import (
	"encoding/binary"
	"errors"
	"fmt"

	"iosnap/internal/sim"
)

// PageAddr is a physical page address: segment*PagesPerSegment + page index.
type PageAddr uint64

// InvalidPage is a sentinel PageAddr that no device contains.
const InvalidPage = PageAddr(1<<64 - 1)

// OOBSize is the number of out-of-band bytes stored alongside each page.
// The FTL uses this area for the block header (LBA, epoch, type).
const OOBSize = 32

// Errors returned by device operations.
var (
	ErrBadAddress   = errors.New("nand: address out of range")
	ErrNotErased    = errors.New("nand: program of non-erased page")
	ErrReadErased   = errors.New("nand: read of erased page")
	ErrBadSize      = errors.New("nand: payload size != sector size")
	ErrWornOut      = errors.New("nand: segment exceeded erase endurance")
	ErrOutOfOrder   = errors.New("nand: program not at next free page of segment")
	ErrDeviceFailed = errors.New("nand: injected device failure")
	ErrTransient    = errors.New("nand: transient device error")
	ErrRetired      = errors.New("nand: segment retired")
	// ErrCorruptData reports a payload whose bytes no longer match the
	// fingerprint recorded when the page was programmed — the device-level
	// ECC/CRC analogue. Returned by reads when a corruption-injecting fault
	// hook is armed (the check is skipped on clean devices, where stored
	// bytes cannot diverge from the fingerprint).
	ErrCorruptData = errors.New("nand: payload corruption detected")
)

// Health classifies a segment's media condition. Healthy segments behave
// normally; Suspect segments have seen a permanent-looking failure and are
// candidates for rescue; Retired segments are grown bad blocks — the device
// refuses to program or erase them (reads of surviving pages still work, so
// a rescue in progress can finish).
type Health uint8

// Segment health states.
const (
	Healthy Health = iota
	Suspect
	Retired
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Retired:
		return "retired"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// Op identifies a device operation for fault injection and statistics.
type Op int

// Device operations.
const (
	OpRead Op = iota
	OpProgram
	OpErase
	OpScanOOB
	// OpCopy is consulted (in addition to OpRead and OpProgram) when the
	// cleaner moves a page with CopyPage, so fault plans can target
	// copy-forward traffic without also failing foreground I/O.
	OpCopy
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	case OpScanOOB:
		return "scan-oob"
	case OpCopy:
		return "copy"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// FaultHook intercepts device operations for failure injection. The device
// consults it (when non-nil) before executing any operation, and gives it a
// chance to corrupt header bytes as they are programmed — the two primitives
// from which read/program/erase errors, torn log notes, and crash-at-
// operation-N scenarios are built. A nil hook costs one pointer check per
// operation.
type FaultHook interface {
	// BeforeOp is consulted before op executes; a non-nil error aborts the
	// operation with that error and no device state change.
	BeforeOp(op Op, addr PageAddr) error
	// MutateOOB may corrupt the OOB header bytes being programmed at addr
	// (a torn or corrupted header). It returns the bytes to store;
	// returning oob unchanged stores the caller's header verbatim. It must
	// not modify oob in place.
	MutateOOB(addr PageAddr, oob []byte) []byte
}

// DataCorrupter is an optional FaultHook extension for payload corruption.
// When the installed hook also implements it, the device consults it at the
// two points where payload bytes are in flight:
//
//   - on program, the returned bytes are what the cells actually store while
//     the page's fingerprint is still computed from the caller's intended
//     bytes (bits flipped after ECC was computed) — so every later read of
//     the page detects the divergence and fails with ErrCorruptData;
//   - on read, the returned bytes are what the host receives for this one
//     transfer; the device's stored bytes are untouched, so a re-read can
//     succeed (a transient transfer corruption).
//
// Returning data unchanged injects nothing. Implementations must not modify
// data in place — a read hands them device-owned memory.
type DataCorrupter interface {
	CorruptData(op Op, addr PageAddr, data []byte) []byte
}

// FaultFunc adapts a plain before-op function to FaultHook (no OOB
// corruption).
type FaultFunc func(op Op, addr PageAddr) error

// BeforeOp implements FaultHook.
func (fn FaultFunc) BeforeOp(op Op, addr PageAddr) error { return fn(op, addr) }

// MutateOOB implements FaultHook; it never corrupts anything.
func (FaultFunc) MutateOOB(_ PageAddr, oob []byte) []byte { return oob }

// Config describes device geometry and timing. The zero value is not usable;
// call DefaultConfig and adjust.
type Config struct {
	SectorSize      int // payload bytes per page (512 or 4096)
	PagesPerSegment int // pages per erase block
	Segments        int // erase blocks on the device
	Channels        int // parallel channels; pages stripe across them

	ReadLatency    sim.Duration // per-page read (cell + transfer setup)
	ProgramLatency sim.Duration // per-page program
	EraseLatency   sim.Duration // per-segment erase
	OOBScanPerPage sim.Duration // per-page cost of a bulk OOB (header) scan

	ReadBusMBps  int // shared read-path bandwidth cap, MB/s
	WriteBusMBps int // shared write-path bandwidth cap, MB/s

	EraseEndurance int  // max erases per segment; 0 = unlimited
	StoreData      bool // keep payloads (true) or fingerprints only (false)
	SequentialProg bool // enforce in-order programming within a segment

	// Wear-out model: once a segment has been erased WearOutThreshold times,
	// each further erase fails with ErrWornOut with probability WearOutProb.
	// This is the soft, probabilistic aging real flash exhibits, as opposed
	// to EraseEndurance's hard cliff. WearOutThreshold 0 disables the model.
	// Failures draw from a generator seeded with WearSeed, so a given
	// operation sequence wears out reproducibly.
	WearOutThreshold int
	WearOutProb      float64
	WearSeed         uint64
}

// DefaultConfig returns a configuration calibrated so that the vanilla FTL's
// baseline microbenchmarks land near the paper's Table 2 (≈1.6 GB/s
// sequential writes, ≈1.2 GB/s sequential reads, ≈310 MB/s 2-thread random
// reads on 4 KB sectors). size-defining fields (Segments) are modest; tests
// and experiments override them.
func DefaultConfig() Config {
	return Config{
		SectorSize:      4096,
		PagesPerSegment: 1024,
		Segments:        256,
		Channels:        16,
		ReadLatency:     25 * sim.Microsecond,
		ProgramLatency:  40 * sim.Microsecond,
		EraseLatency:    2 * sim.Millisecond,
		OOBScanPerPage:  300 * sim.Nanosecond,
		ReadBusMBps:     1250,
		WriteBusMBps:    1700,
		EraseEndurance:  0,
		StoreData:       false,
		SequentialProg:  true,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.SectorSize <= 0:
		return fmt.Errorf("nand: SectorSize %d must be positive", c.SectorSize)
	case c.PagesPerSegment <= 0:
		return fmt.Errorf("nand: PagesPerSegment %d must be positive", c.PagesPerSegment)
	case c.Segments <= 0:
		return fmt.Errorf("nand: Segments %d must be positive", c.Segments)
	case c.Channels <= 0:
		return fmt.Errorf("nand: Channels %d must be positive", c.Channels)
	case c.ReadLatency < 0 || c.ProgramLatency < 0 || c.EraseLatency < 0:
		return errors.New("nand: latencies must be non-negative")
	case c.WearOutThreshold < 0:
		return fmt.Errorf("nand: WearOutThreshold %d must be non-negative", c.WearOutThreshold)
	case c.WearOutProb < 0 || c.WearOutProb > 1:
		return fmt.Errorf("nand: WearOutProb %g outside [0,1]", c.WearOutProb)
	}
	return nil
}

// TotalPages returns the number of physical pages on a device with this
// configuration.
func (c Config) TotalPages() int64 {
	return int64(c.Segments) * int64(c.PagesPerSegment)
}

// Capacity returns raw device capacity in bytes.
func (c Config) Capacity() int64 {
	return c.TotalPages() * int64(c.SectorSize)
}

type pageState uint8

const (
	pageErased pageState = iota
	pageProgrammed
)

type page struct {
	state pageState
	oob   [OOBSize]byte
	fp    uint64 // payload fingerprint (always kept)
	data  []byte // payload, only when StoreData
}

type segment struct {
	pages    []page
	nextProg int // next in-order page index (SequentialProg)
	erases   int
	health   Health
}

// Stats counts device activity since construction or the last ResetStats.
type Stats struct {
	PageReads    int64
	PagePrograms int64
	Erases       int64
	OOBScans     int64 // segments scanned
	BytesRead    int64
	BytesWritten int64
}

// Device is a simulated NAND flash device. It is not safe for concurrent
// use; the simulation is single-threaded over virtual time by design.
type Device struct {
	cfg      Config
	segs     []segment
	channels []sim.Resource
	readBus  busModel
	writeBus busModel
	stats    Stats
	wearRNG  *sim.RNG // draws wear-out erase failures; nil when model off

	anchor *Anchor // newest committed checkpoint; nil = none

	hook FaultHook // nil = no fault injection
}

// Anchor is the device's checkpoint anchor: the identity and chunk
// addresses of the newest committed checkpoint. Real FTLs keep a small
// fixed area (a superblock / checkpoint pack) that is rewritten only at
// checkpoint commit; we model it as device metadata updated atomically by
// SetAnchor, so a crash mid-checkpoint always leaves the previous anchor
// in place. The anchor only names pages — their contents still live in
// ordinary log pages and are validated (ID tag + checksum) at recovery.
type Anchor struct {
	ID    uint64
	Addrs []PageAddr
}

func (a *Anchor) clone() *Anchor {
	if a == nil {
		return nil
	}
	return &Anchor{ID: a.ID, Addrs: append([]PageAddr(nil), a.Addrs...)}
}

// busModel converts a byte count into occupancy of a shared bus resource.
type busModel struct {
	res       sim.Resource
	nsPerByte float64 // 0 disables the bus
}

func (b *busModel) acquire(now sim.Time, bytes int) (done sim.Time) {
	if b.nsPerByte == 0 {
		return now
	}
	cost := sim.Duration(float64(bytes) * b.nsPerByte)
	if cost < 1 {
		cost = 1
	}
	_, done = b.res.Acquire(now, cost)
	return done
}

func mbpsToNsPerByte(mbps int) float64 {
	if mbps <= 0 {
		return 0
	}
	// bytes/ns = mbps * 2^20 / 1e9; nsPerByte is the reciprocal.
	return 1e9 / (float64(mbps) * (1 << 20))
}

// New constructs a device. It panics on an invalid configuration (device
// construction is always program initialization, never data-dependent).
func New(cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Device{
		cfg:      cfg,
		segs:     make([]segment, cfg.Segments),
		channels: make([]sim.Resource, cfg.Channels),
		readBus:  busModel{nsPerByte: mbpsToNsPerByte(cfg.ReadBusMBps)},
		writeBus: busModel{nsPerByte: mbpsToNsPerByte(cfg.WriteBusMBps)},
	}
	// Per-segment page arrays are materialized lazily on first program
	// (checkProg): a TB-class geometry mounts in O(touched-segments) host
	// memory instead of paying ~sizeof(page) per physical page up front.
	if cfg.WearOutThreshold > 0 {
		d.wearRNG = sim.NewRNG(cfg.WearSeed)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetFaultHook installs (or, with nil, removes) the fault-injection hook.
func (d *Device) SetFaultHook(h FaultHook) { d.hook = h }

// FaultHook returns the installed fault-injection hook, if any.
func (d *Device) FaultHook() FaultHook { return d.hook }

// SetAnchor atomically replaces the checkpoint anchor (nil clears it).
func (d *Device) SetAnchor(a *Anchor) { d.anchor = a.clone() }

// Anchor returns a copy of the checkpoint anchor, or nil if none is set.
func (d *Device) Anchor() *Anchor { return d.anchor.clone() }

// Stats returns a snapshot of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// BusyUntil reports the virtual time at which every device resource —
// channels and both buses — is next idle: the earliest instant at which
// work submitted so far has fully completed. Cross-device coordination
// (the sharded front-end's snapshot-create barrier) uses it as the
// quiescence horizon when freezing several devices at one consistent
// point in virtual time.
func (d *Device) BusyUntil() sim.Time {
	t := d.readBus.res.BusyUntil()
	if w := d.writeBus.res.BusyUntil(); w > t {
		t = w
	}
	for i := range d.channels {
		if c := d.channels[i].BusyUntil(); c > t {
			t = c
		}
	}
	return t
}

// ResetStats zeroes the activity counters.
func (d *Device) ResetStats() { d.stats = Stats{} }

// SegmentOf returns the segment index containing addr.
func (d *Device) SegmentOf(addr PageAddr) int {
	return int(addr) / d.cfg.PagesPerSegment
}

// PageIndexOf returns addr's index within its segment.
func (d *Device) PageIndexOf(addr PageAddr) int {
	return int(addr) % d.cfg.PagesPerSegment
}

// Addr builds a PageAddr from a segment and page index.
func (d *Device) Addr(seg, idx int) PageAddr {
	return PageAddr(seg*d.cfg.PagesPerSegment + idx)
}

// erasedPage stands in for any page of a segment whose backing array has
// not been materialized (nothing was ever programmed there): reads observe
// it as erased. It must never be written through — write paths go via
// checkProg, which materializes the real array first.
var erasedPage page

func (d *Device) check(addr PageAddr) (*segment, *page, error) {
	if int64(addr) >= d.cfg.TotalPages() {
		return nil, nil, fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	s := &d.segs[d.SegmentOf(addr)]
	if s.pages == nil {
		return s, &erasedPage, nil
	}
	return s, &s.pages[d.PageIndexOf(addr)], nil
}

// checkProg is check for write paths: it materializes the segment's page
// array on first touch (lazy allocation keeps untouched segments free).
func (d *Device) checkProg(addr PageAddr) (*segment, *page, error) {
	if int64(addr) >= d.cfg.TotalPages() {
		return nil, nil, fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	s := &d.segs[d.SegmentOf(addr)]
	if s.pages == nil {
		s.pages = make([]page, d.cfg.PagesPerSegment)
	}
	return s, &s.pages[d.PageIndexOf(addr)], nil
}

func (d *Device) channelFor(addr PageAddr) *sim.Resource {
	return &d.channels[int(addr)%d.cfg.Channels]
}

// Fingerprint computes the 64-bit integrity fingerprint of a payload; it is
// what fingerprint-mode devices retain in lieu of data. Small payloads are
// hashed in full; large ones sample the head, middle, and tail plus the
// length, keeping the per-program cost flat so multi-gigabyte experiments
// are not dominated by hashing. Hashing is word-at-a-time: the fingerprint
// is charged on every page program, so it sits on the hot path of every
// simulated write and must stay a small fraction of per-page host cost.
func Fingerprint(b []byte) uint64 {
	const sampleThreshold = 512
	h := mix64(14695981039346656037, uint64(len(b)))
	if len(b) <= sampleThreshold {
		return hashWords(h, b)
	}
	// Three single-word probes. Small payloads (every sub-512B test config)
	// still hash in full; big pages trade collision strength for a flat
	// ~4-multiply cost, which is what keeps multi-gigabyte experiments from
	// being dominated by integrity hashing.
	mid := len(b) / 2
	h = mix64(h, binary.LittleEndian.Uint64(b))
	h = mix64(h, binary.LittleEndian.Uint64(b[mid:]))
	h = mix64(h, binary.LittleEndian.Uint64(b[len(b)-8:]))
	return h
}

func hashWords(h uint64, b []byte) uint64 {
	for len(b) >= 8 {
		h = mix64(h, binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		h = mix64(h, binary.LittleEndian.Uint64(tail[:])^uint64(len(b)))
	}
	return h
}

func mix64(h, x uint64) uint64 {
	// One multiply per word (FNV-style over 64-bit lanes) with a final
	// rotate-free avalanche left to the caller's last mix: this runs for
	// every programmed page, so each extra instruction here is paid
	// millions of times per experiment.
	h ^= x
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// ProgramPage writes data and oob to the erased page at addr, submitted at
// virtual time now. It returns the operation's completion time. len(data)
// must equal the sector size; len(oob) must not exceed OOBSize.
func (d *Device) ProgramPage(now sim.Time, addr PageAddr, data, oob []byte) (sim.Time, error) {
	if d.hook != nil {
		if err := d.hook.BeforeOp(OpProgram, addr); err != nil {
			return now, err
		}
	}
	seg, p, err := d.checkProg(addr)
	if err != nil {
		return now, err
	}
	if seg.health == Retired {
		return now, fmt.Errorf("%w: program of segment %d", ErrRetired, d.SegmentOf(addr))
	}
	if len(data) != d.cfg.SectorSize {
		return now, fmt.Errorf("%w: got %d, want %d", ErrBadSize, len(data), d.cfg.SectorSize)
	}
	if len(oob) > OOBSize {
		return now, fmt.Errorf("nand: oob %d bytes exceeds %d", len(oob), OOBSize)
	}
	if p.state != pageErased {
		return now, fmt.Errorf("%w: page %d", ErrNotErased, addr)
	}
	idx := d.PageIndexOf(addr)
	if d.cfg.SequentialProg && idx != seg.nextProg {
		return now, fmt.Errorf("%w: segment %d page %d (next free %d)",
			ErrOutOfOrder, d.SegmentOf(addr), idx, seg.nextProg)
	}
	stored := data
	if d.hook != nil {
		// Torn/corrupted header injection: the payload lands but its header
		// bytes may be garbage, as when power fails mid-program.
		if m := d.hook.MutateOOB(addr, oob); len(m) <= OOBSize {
			oob = m
		}
		// Payload corruption on program: the cells store the corrupted bytes
		// while the fingerprint below is computed from the intended ones
		// (bits flipped after ECC), so reads detect the damage.
		stored = d.corruptData(OpProgram, addr, data)
	}

	p.state = pageProgrammed
	copy(p.oob[:], oob)
	for i := len(oob); i < OOBSize; i++ {
		p.oob[i] = 0
	}
	p.fp = Fingerprint(data)
	if d.cfg.StoreData {
		p.data = append(p.data[:0], stored...)
	}
	seg.nextProg = idx + 1

	d.stats.PagePrograms++
	d.stats.BytesWritten += int64(len(data))

	// Timing: transfer over the write bus, then cell programming on the
	// page's channel. Bus and channel serialize independently, which is what
	// lets striped sequential writes overlap programming across channels.
	busDone := d.writeBus.acquire(now, len(data))
	_, done := d.channelFor(addr).Acquire(busDone, d.cfg.ProgramLatency)
	return done, nil
}

// ReadPage reads the programmed page at addr. The returned payload is nil in
// fingerprint mode; oob is always the stored header bytes. The returned
// slices alias device memory and must not be modified.
func (d *Device) ReadPage(now sim.Time, addr PageAddr) (data, oob []byte, done sim.Time, err error) {
	if d.hook != nil {
		if err := d.hook.BeforeOp(OpRead, addr); err != nil {
			return nil, nil, now, err
		}
	}
	_, p, err := d.check(addr)
	if err != nil {
		return nil, nil, now, err
	}
	if p.state != pageProgrammed {
		return nil, nil, now, fmt.Errorf("%w: page %d", ErrReadErased, addr)
	}
	d.stats.PageReads++
	d.stats.BytesRead += int64(d.cfg.SectorSize)

	_, cellDone := d.channelFor(addr).Acquire(now, d.cfg.ReadLatency)
	done = d.readBus.acquire(cellDone, d.cfg.SectorSize)
	data = p.data
	if d.hook != nil {
		data = d.corruptData(OpRead, addr, data)
		if err := d.verifyPayload(addr, p, data); err != nil {
			// The read consumed cell and bus time before the integrity check
			// rejected its payload, so the clock still advances.
			return nil, nil, done, err
		}
	}
	return data, p.oob[:], done, nil
}

// corruptData consults the hook's DataCorrupter extension, if any. Callers
// gate on d.hook != nil; a hook without the extension injects nothing.
func (d *Device) corruptData(op Op, addr PageAddr, data []byte) []byte {
	if data == nil {
		return nil
	}
	if dc, ok := d.hook.(DataCorrupter); ok {
		if m := dc.CorruptData(op, addr, data); len(m) == len(data) {
			return m
		}
	}
	return data
}

// verifyPayload re-hashes a payload about to leave the device against the
// page's stored fingerprint — the ECC/CRC check that turns injected payload
// corruption into a detected error instead of silently wrong data. It runs
// only while a fault hook is armed: on a clean device stored bytes cannot
// diverge from the fingerprint, so the per-read hashing cost is not paid on
// the hot path of ordinary experiments.
func (d *Device) verifyPayload(addr PageAddr, p *page, data []byte) error {
	if data == nil || Fingerprint(data) == p.fp {
		return nil
	}
	return fmt.Errorf("%w: page %d", ErrCorruptData, addr)
}

// PageFingerprint returns the payload fingerprint of a programmed page
// without modelling any device time (it is a test/verification hook, not an
// I/O path).
func (d *Device) PageFingerprint(addr PageAddr) (uint64, error) {
	_, p, err := d.check(addr)
	if err != nil {
		return 0, err
	}
	if p.state != pageProgrammed {
		return 0, fmt.Errorf("%w: page %d", ErrReadErased, addr)
	}
	return p.fp, nil
}

// IsProgrammed reports whether the page at addr holds data.
func (d *Device) IsProgrammed(addr PageAddr) bool {
	_, p, err := d.check(addr)
	return err == nil && p.state == pageProgrammed
}

// ScanSegmentOOB performs a bulk header scan of one segment: it returns the
// OOB bytes of every programmed page (indexed by page-in-segment; erased
// pages yield nil) at a far lower cost than page reads. This is the
// operation snapshot activation and crash recovery are built on.
func (d *Device) ScanSegmentOOB(now sim.Time, seg int) (oobs [][]byte, done sim.Time, err error) {
	if seg < 0 || seg >= d.cfg.Segments {
		return nil, now, fmt.Errorf("%w: segment %d", ErrBadAddress, seg)
	}
	if d.hook != nil {
		if err := d.hook.BeforeOp(OpScanOOB, d.Addr(seg, 0)); err != nil {
			return nil, now, err
		}
	}
	s := &d.segs[seg]
	oobs = make([][]byte, d.cfg.PagesPerSegment)
	n := 0
	for i := range s.pages {
		if s.pages[i].state == pageProgrammed {
			oobs[i] = s.pages[i].oob[:]
			n++
		}
	}
	d.stats.OOBScans++
	cost := sim.Duration(int64(d.cfg.OOBScanPerPage) * int64(d.cfg.PagesPerSegment))
	if cost < sim.Duration(d.cfg.ReadLatency) {
		cost = d.cfg.ReadLatency // at least one page read's worth of setup
	}
	ch := &d.channels[seg%d.cfg.Channels]
	_, done = ch.Acquire(now, cost)
	_ = n
	return oobs, done, nil
}

// EraseSegment erases every page in segment seg.
func (d *Device) EraseSegment(now sim.Time, seg int) (sim.Time, error) {
	if seg < 0 || seg >= d.cfg.Segments {
		return now, fmt.Errorf("%w: segment %d", ErrBadAddress, seg)
	}
	if d.hook != nil {
		if err := d.hook.BeforeOp(OpErase, d.Addr(seg, 0)); err != nil {
			return now, err
		}
	}
	s := &d.segs[seg]
	if s.health == Retired {
		return now, fmt.Errorf("%w: erase of segment %d", ErrRetired, seg)
	}
	if d.cfg.EraseEndurance > 0 && s.erases >= d.cfg.EraseEndurance {
		return now, fmt.Errorf("%w: segment %d after %d erases", ErrWornOut, seg, s.erases)
	}
	if d.wearRNG != nil && s.erases >= d.cfg.WearOutThreshold &&
		d.wearRNG.Float64() < d.cfg.WearOutProb {
		// Aged cells failed to reach the erased state; the segment is intact
		// but unreliable. The caller decides whether to retry or retire.
		return now, fmt.Errorf("%w: segment %d wear-out after %d erases", ErrWornOut, seg, s.erases)
	}
	// Only the state byte needs resetting: oob/fp/data are unreadable while
	// erased and fully rewritten on the next program. Keeping data's capacity
	// also lets StoreData configs reuse page buffers across erase cycles.
	for i := range s.pages {
		s.pages[i].state = pageErased
	}
	s.nextProg = 0
	s.erases++
	d.stats.Erases++

	ch := &d.channels[seg%d.cfg.Channels]
	_, done := ch.Acquire(now, d.cfg.EraseLatency)
	return done, nil
}

// SegmentHealth returns the health state of segment seg.
func (d *Device) SegmentHealth(seg int) Health {
	if seg < 0 || seg >= d.cfg.Segments {
		return Retired // out-of-range segments are unusable by definition
	}
	return d.segs[seg].health
}

// MarkSuspect flags segment seg as failing. It is a no-op on retired
// segments (retirement is terminal).
func (d *Device) MarkSuspect(seg int) {
	if seg < 0 || seg >= d.cfg.Segments || d.segs[seg].health == Retired {
		return
	}
	d.segs[seg].health = Suspect
}

// Retire marks segment seg as a grown bad block: programs and erases are
// refused from now on. Reads of pages it still holds continue to work.
// Retirement is terminal — there is no way back to Healthy.
func (d *Device) Retire(seg int) {
	if seg < 0 || seg >= d.cfg.Segments {
		return
	}
	d.segs[seg].health = Retired
}

// HealthCounts returns how many segments are currently suspect and retired.
func (d *Device) HealthCounts() (suspect, retired int) {
	for i := range d.segs {
		switch d.segs[i].health {
		case Suspect:
			suspect++
		case Retired:
			retired++
		}
	}
	return suspect, retired
}

// RetiredSegments lists the retired segment indices in ascending order.
func (d *Device) RetiredSegments() []int {
	var out []int
	for i := range d.segs {
		if d.segs[i].health == Retired {
			out = append(out, i)
		}
	}
	return out
}

// EraseCount returns how many times segment seg has been erased.
func (d *Device) EraseCount(seg int) int {
	if seg < 0 || seg >= d.cfg.Segments {
		return 0
	}
	return d.segs[seg].erases
}

// WearStats summarizes erase counts across segments: min, max, and total.
func (d *Device) WearStats() (minE, maxE, total int) {
	if len(d.segs) == 0 {
		return 0, 0, 0
	}
	minE = d.segs[0].erases
	for i := range d.segs {
		e := d.segs[i].erases
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
		total += e
	}
	return minE, maxE, total
}

// ProgrammedInSegment returns how many pages of segment seg hold data.
func (d *Device) ProgrammedInSegment(seg int) int {
	if seg < 0 || seg >= d.cfg.Segments {
		return 0
	}
	n := 0
	s := &d.segs[seg]
	for i := range s.pages {
		if s.pages[i].state == pageProgrammed {
			n++
		}
	}
	return n
}

// NextFreeInSegment returns the next in-order programmable page index of
// segment seg, or PagesPerSegment when the segment is full.
func (d *Device) NextFreeInSegment(seg int) int {
	if seg < 0 || seg >= d.cfg.Segments {
		return 0
	}
	return d.segs[seg].nextProg
}
