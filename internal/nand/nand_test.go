package nand

import (
	"bytes"
	"errors"
	"testing"

	"iosnap/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SectorSize = 512
	cfg.PagesPerSegment = 8
	cfg.Segments = 4
	cfg.Channels = 2
	cfg.StoreData = true
	return cfg
}

func fill(n int, b byte) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.SectorSize = 0
	if bad.Validate() == nil {
		t.Fatal("zero sector size accepted")
	}
	bad = good
	bad.Segments = -1
	if bad.Validate() == nil {
		t.Fatal("negative segments accepted")
	}
	bad = good
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Fatal("zero channels accepted")
	}
}

func TestCapacity(t *testing.T) {
	cfg := testConfig()
	if got := cfg.TotalPages(); got != 32 {
		t.Fatalf("TotalPages = %d, want 32", got)
	}
	if got := cfg.Capacity(); got != 32*512 {
		t.Fatalf("Capacity = %d, want %d", got, 32*512)
	}
}

func TestProgramAndRead(t *testing.T) {
	d := New(testConfig())
	data := fill(512, 0xAB)
	oob := []byte("hdr")
	done, err := d.ProgramPage(0, 0, data, oob)
	if err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	if done <= 0 {
		t.Fatal("program completion time not after submission")
	}
	got, gotOOB, _, err := d.ReadPage(done, 0)
	if err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
	if !bytes.Equal(gotOOB[:3], oob) {
		t.Fatalf("oob mismatch: %q", gotOOB[:3])
	}
	for _, b := range gotOOB[3:] {
		if b != 0 {
			t.Fatal("oob tail not zero-padded")
		}
	}
}

func TestProgramTwiceFails(t *testing.T) {
	d := New(testConfig())
	data := fill(512, 1)
	if _, err := d.ProgramPage(0, 0, data, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProgramPage(0, 0, data, nil); !errors.Is(err, ErrNotErased) {
		t.Fatalf("reprogram: got %v, want ErrNotErased", err)
	}
}

func TestProgramOutOfOrderFails(t *testing.T) {
	d := New(testConfig())
	data := fill(512, 1)
	if _, err := d.ProgramPage(0, 1, data, nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("skip-ahead program: got %v, want ErrOutOfOrder", err)
	}
	cfg := testConfig()
	cfg.SequentialProg = false
	d2 := New(cfg)
	if _, err := d2.ProgramPage(0, 1, data, nil); err != nil {
		t.Fatalf("random program with SequentialProg=false: %v", err)
	}
}

func TestReadErasedFails(t *testing.T) {
	d := New(testConfig())
	if _, _, _, err := d.ReadPage(0, 5); !errors.Is(err, ErrReadErased) {
		t.Fatalf("got %v, want ErrReadErased", err)
	}
}

func TestBadAddress(t *testing.T) {
	d := New(testConfig())
	if _, err := d.ProgramPage(0, PageAddr(d.Config().TotalPages()), fill(512, 0), nil); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("got %v, want ErrBadAddress", err)
	}
	if _, _, err := d.ScanSegmentOOB(0, 99); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("scan: got %v, want ErrBadAddress", err)
	}
	if _, err := d.EraseSegment(0, -1); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("erase: got %v, want ErrBadAddress", err)
	}
}

func TestBadPayloadSize(t *testing.T) {
	d := New(testConfig())
	if _, err := d.ProgramPage(0, 0, fill(100, 0), nil); !errors.Is(err, ErrBadSize) {
		t.Fatalf("got %v, want ErrBadSize", err)
	}
	if _, err := d.ProgramPage(0, 0, fill(512, 0), make([]byte, OOBSize+1)); err == nil {
		t.Fatal("oversized OOB accepted")
	}
}

func TestEraseAllowsReprogram(t *testing.T) {
	d := New(testConfig())
	data := fill(512, 7)
	for i := 0; i < 8; i++ {
		if _, err := d.ProgramPage(0, PageAddr(i), data, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.ProgrammedInSegment(0); got != 8 {
		t.Fatalf("ProgrammedInSegment = %d, want 8", got)
	}
	if _, err := d.EraseSegment(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.ProgrammedInSegment(0); got != 0 {
		t.Fatalf("after erase, ProgrammedInSegment = %d", got)
	}
	if d.EraseCount(0) != 1 {
		t.Fatalf("EraseCount = %d", d.EraseCount(0))
	}
	if _, err := d.ProgramPage(0, 0, data, nil); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestEraseEndurance(t *testing.T) {
	cfg := testConfig()
	cfg.EraseEndurance = 2
	d := New(cfg)
	for i := 0; i < 2; i++ {
		if _, err := d.EraseSegment(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.EraseSegment(0, 1); !errors.Is(err, ErrWornOut) {
		t.Fatalf("got %v, want ErrWornOut", err)
	}
}

func TestChannelParallelism(t *testing.T) {
	// With 2 channels, two pages on different channels overlap; two on the
	// same channel serialize.
	cfg := testConfig()
	cfg.WriteBusMBps = 0 // disable bus so only channels matter
	d := New(cfg)
	data := fill(512, 1)
	done0, err := d.ProgramPage(0, 0, data, nil) // channel 0
	if err != nil {
		t.Fatal(err)
	}
	done1, err := d.ProgramPage(0, 1, data, nil) // channel 1
	if err != nil {
		t.Fatal(err)
	}
	if done1 != done0 {
		t.Fatalf("parallel channels should finish together: %v vs %v", done0, done1)
	}
	done2, err := d.ProgramPage(0, 2, data, nil) // channel 0 again
	if err != nil {
		t.Fatal(err)
	}
	if done2 != done0.Add(cfg.ProgramLatency) {
		t.Fatalf("same-channel op should queue: done2=%v, want %v", done2, done0.Add(cfg.ProgramLatency))
	}
}

func TestBusCapsThroughput(t *testing.T) {
	cfg := testConfig()
	cfg.PagesPerSegment = 1024
	cfg.Channels = 16
	cfg.WriteBusMBps = 100
	cfg.StoreData = false
	d := New(cfg)
	data := fill(512, 1)
	var now sim.Time
	const n = 2048
	for i := 0; i < n; i++ {
		done, err := d.ProgramPage(now, PageAddr(i), data, nil)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	// Note: `now` chains op completions, so effective throughput is below
	// the bus cap; it must certainly not exceed it.
	mbps := sim.Throughput(int64(n)*512, sim.Duration(now))
	if mbps > 100.5 {
		t.Fatalf("throughput %.1f MB/s exceeds 100 MB/s bus cap", mbps)
	}
}

func TestScanSegmentOOB(t *testing.T) {
	d := New(testConfig())
	data := fill(512, 9)
	for i := 0; i < 3; i++ {
		oob := []byte{byte(i + 10)}
		if _, err := d.ProgramPage(0, PageAddr(i), data, oob); err != nil {
			t.Fatal(err)
		}
	}
	oobs, done, err := d.ScanSegmentOOB(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("scan should consume time")
	}
	if len(oobs) != 8 {
		t.Fatalf("scan returned %d entries, want 8", len(oobs))
	}
	for i := 0; i < 3; i++ {
		if oobs[i] == nil || oobs[i][0] != byte(i+10) {
			t.Fatalf("oob %d wrong: %v", i, oobs[i])
		}
	}
	for i := 3; i < 8; i++ {
		if oobs[i] != nil {
			t.Fatalf("erased page %d has oob", i)
		}
	}
}

func TestFingerprintMode(t *testing.T) {
	cfg := testConfig()
	cfg.StoreData = false
	d := New(cfg)
	data := fill(512, 0x5C)
	if _, err := d.ProgramPage(0, 0, data, nil); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := d.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("fingerprint mode should not retain payloads")
	}
	fp, err := d.PageFingerprint(0)
	if err != nil {
		t.Fatal(err)
	}
	if fp != Fingerprint(data) {
		t.Fatal("fingerprint mismatch")
	}
}

func TestFaultInjection(t *testing.T) {
	d := New(testConfig())
	boom := errors.New("boom")
	d.SetFaultHook(FaultFunc(func(op Op, addr PageAddr) error {
		if op == OpProgram && addr == 2 {
			return boom
		}
		return nil
	}))
	data := fill(512, 1)
	for i := 0; i < 2; i++ {
		if _, err := d.ProgramPage(0, PageAddr(i), data, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.ProgramPage(0, 2, data, nil); !errors.Is(err, boom) {
		t.Fatalf("got %v, want injected error", err)
	}
	// The failed program must leave the page erased and programmable once
	// the hook is removed.
	if d.IsProgrammed(2) {
		t.Fatal("failed program left the page programmed")
	}
	d.SetFaultHook(nil)
	if _, err := d.ProgramPage(0, 2, data, nil); err != nil {
		t.Fatalf("program after hook removal: %v", err)
	}
}

// oobCorruptor is a FaultHook that flips the first OOB byte of every
// programmed page (a torn header).
type oobCorruptor struct{ hits int }

func (c *oobCorruptor) BeforeOp(Op, PageAddr) error { return nil }

func (c *oobCorruptor) MutateOOB(_ PageAddr, oob []byte) []byte {
	c.hits++
	out := append([]byte(nil), oob...)
	if len(out) > 0 {
		out[0] ^= 0xFF
	}
	return out
}

func TestFaultHookMutatesOOB(t *testing.T) {
	d := New(testConfig())
	c := &oobCorruptor{}
	d.SetFaultHook(c)
	want := []byte{0xAA, 0xBB}
	if _, err := d.ProgramPage(0, 0, fill(512, 1), want); err != nil {
		t.Fatal(err)
	}
	if c.hits != 1 {
		t.Fatalf("MutateOOB called %d times, want 1", c.hits)
	}
	oob, err := d.PageOOB(0)
	if err != nil {
		t.Fatal(err)
	}
	if oob[0] != 0xAA^0xFF || oob[1] != 0xBB {
		t.Fatalf("stored oob = %x, want corrupted first byte", oob[:2])
	}
	if want[0] != 0xAA {
		t.Fatal("caller's oob buffer was modified in place")
	}
}

func TestFaultHookOpCopyTargetsCleanerCopies(t *testing.T) {
	d := New(testConfig())
	data := fill(512, 1)
	if _, err := d.ProgramPage(0, 0, data, nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("copy boom")
	d.SetFaultHook(FaultFunc(func(op Op, addr PageAddr) error {
		if op == OpCopy {
			return boom
		}
		return nil
	}))
	// Foreground programs and reads are untouched…
	if _, err := d.ProgramPage(0, 1, data, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.ReadPage(0, 0); err != nil {
		t.Fatal(err)
	}
	// …but copy-forward fails, with the destination left erased.
	dst := d.Addr(1, 0)
	if _, err := d.CopyPage(0, 0, dst); !errors.Is(err, boom) {
		t.Fatalf("CopyPage = %v, want injected copy error", err)
	}
	if d.IsProgrammed(dst) {
		t.Fatal("failed copy programmed the destination")
	}
}

func TestStats(t *testing.T) {
	d := New(testConfig())
	data := fill(512, 1)
	if _, err := d.ProgramPage(0, 0, data, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.ReadPage(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EraseSegment(0, 0); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.PagePrograms != 1 || s.PageReads != 1 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesWritten != 512 || s.BytesRead != 512 {
		t.Fatalf("byte counters = %+v", s)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestWearStats(t *testing.T) {
	d := New(testConfig())
	for i := 0; i < 3; i++ {
		if _, err := d.EraseSegment(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.EraseSegment(0, 2); err != nil {
		t.Fatal(err)
	}
	minE, maxE, total := d.WearStats()
	if minE != 0 || maxE != 3 || total != 4 {
		t.Fatalf("WearStats = %d %d %d", minE, maxE, total)
	}
}

func TestAddrRoundTrip(t *testing.T) {
	d := New(testConfig())
	for seg := 0; seg < 4; seg++ {
		for idx := 0; idx < 8; idx++ {
			a := d.Addr(seg, idx)
			if d.SegmentOf(a) != seg || d.PageIndexOf(a) != idx {
				t.Fatalf("Addr round trip failed for %d/%d", seg, idx)
			}
		}
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpRead: "read", OpProgram: "program", OpErase: "erase", OpScanOOB: "scan-oob"} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q", int(op), op.String())
		}
	}
}

// TestDeviceMatchesModelRandomOps drives random program/copy/erase
// sequences against a simple model of what each page should hold.
func TestDeviceMatchesModelRandomOps(t *testing.T) {
	cfg := testConfig()
	cfg.SequentialProg = false
	d := New(cfg)
	rng := sim.NewRNG(31)
	total := int(cfg.TotalPages())

	type state struct {
		programmed bool
		fp         uint64
		oob        byte
	}
	model := make([]state, total)
	payload := func(tag byte) []byte { return fill(cfg.SectorSize, tag) }

	for step := 0; step < 20000; step++ {
		switch rng.Intn(6) {
		case 0, 1: // program a random erased page
			addr := PageAddr(rng.Intn(total))
			tag := byte(rng.Intn(250))
			_, err := d.ProgramPage(0, addr, payload(tag), []byte{tag})
			if model[addr].programmed {
				if !errors.Is(err, ErrNotErased) {
					t.Fatalf("step %d: reprogram of %d: %v", step, addr, err)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: program %d: %v", step, addr, err)
				}
				model[addr] = state{programmed: true, fp: Fingerprint(payload(tag)), oob: tag}
			}
		case 2: // copy to a random erased page
			from := PageAddr(rng.Intn(total))
			to := PageAddr(rng.Intn(total))
			_, err := d.CopyPage(0, from, to)
			switch {
			case !model[from].programmed:
				if !errors.Is(err, ErrReadErased) {
					t.Fatalf("step %d: copy from erased %d: %v", step, from, err)
				}
			case model[to].programmed:
				if !errors.Is(err, ErrNotErased) {
					t.Fatalf("step %d: copy onto programmed %d: %v", step, to, err)
				}
			default:
				if err != nil {
					t.Fatalf("step %d: copy %d->%d: %v", step, from, to, err)
				}
				model[to] = model[from]
			}
		case 3: // erase a random segment
			seg := rng.Intn(cfg.Segments)
			if _, err := d.EraseSegment(0, seg); err != nil {
				t.Fatalf("step %d: erase %d: %v", step, seg, err)
			}
			for i := 0; i < cfg.PagesPerSegment; i++ {
				model[d.Addr(seg, i)] = state{}
			}
		default: // read and cross-check a random page
			addr := PageAddr(rng.Intn(total))
			data, oob, _, err := d.ReadPage(0, addr)
			m := model[addr]
			if !m.programmed {
				if !errors.Is(err, ErrReadErased) {
					t.Fatalf("step %d: read of erased %d: %v", step, addr, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: read %d: %v", step, addr, err)
			}
			if Fingerprint(data) != m.fp {
				t.Fatalf("step %d: page %d content mismatch", step, addr)
			}
			if oob[0] != m.oob {
				t.Fatalf("step %d: page %d oob mismatch", step, addr)
			}
		}
	}
	// Final sweep: fingerprints of all programmed pages match the model.
	for addr := 0; addr < total; addr++ {
		m := model[addr]
		if !m.programmed {
			if d.IsProgrammed(PageAddr(addr)) {
				t.Fatalf("page %d programmed in device, erased in model", addr)
			}
			continue
		}
		fp, err := d.PageFingerprint(PageAddr(addr))
		if err != nil || fp != m.fp {
			t.Fatalf("final: page %d fp mismatch (%v)", addr, err)
		}
	}
}
