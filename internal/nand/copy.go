package nand

import (
	"fmt"

	"iosnap/internal/sim"
)

// CopyPage moves a programmed page's contents to an erased page (the
// cleaner's copy-forward), preserving payload — or its fingerprint in
// fingerprint mode — and OOB header bytes. Timing models a read on the
// source page's channel followed by a program on the destination's, with
// both transfers crossing the shared buses, so copy-forward contends with
// foreground I/O exactly like host-issued operations.
func (d *Device) CopyPage(now sim.Time, from, to PageAddr) (sim.Time, error) {
	_, src, err := d.check(from)
	if err != nil {
		return now, err
	}
	if src.state != pageProgrammed {
		return now, fmt.Errorf("%w: copy source %d", ErrReadErased, from)
	}
	dstSeg, dst, err := d.checkProg(to)
	if err != nil {
		return now, err
	}
	if dstSeg.health == Retired {
		return now, fmt.Errorf("%w: copy into segment %d", ErrRetired, d.SegmentOf(to))
	}
	if dst.state != pageErased {
		return now, fmt.Errorf("%w: copy destination %d", ErrNotErased, to)
	}
	toIdx := d.PageIndexOf(to)
	if d.cfg.SequentialProg && toIdx != dstSeg.nextProg {
		return now, fmt.Errorf("%w: segment %d page %d (next free %d)",
			ErrOutOfOrder, d.SegmentOf(to), toIdx, dstSeg.nextProg)
	}
	if d.hook != nil {
		// OpCopy lets fault plans target cleaner traffic specifically; the
		// read/program consults model the underlying physical operations.
		if err := d.hook.BeforeOp(OpCopy, from); err != nil {
			return now, err
		}
		if err := d.hook.BeforeOp(OpRead, from); err != nil {
			return now, err
		}
		if err := d.hook.BeforeOp(OpProgram, to); err != nil {
			return now, err
		}
	}

	dst.state = pageProgrammed
	dst.oob = src.oob
	dst.fp = src.fp
	if d.cfg.StoreData && src.data != nil {
		dst.data = append([]byte(nil), src.data...)
	}
	dstSeg.nextProg = toIdx + 1

	d.stats.PageReads++
	d.stats.PagePrograms++
	d.stats.BytesRead += int64(d.cfg.SectorSize)
	d.stats.BytesWritten += int64(d.cfg.SectorSize)

	_, cellDone := d.channelFor(from).Acquire(now, d.cfg.ReadLatency)
	busDone := d.readBus.acquire(cellDone, d.cfg.SectorSize)
	busDone = d.writeBus.acquire(busDone, d.cfg.SectorSize)
	_, done := d.channelFor(to).Acquire(busDone, d.cfg.ProgramLatency)
	return done, nil
}

// PageOOB returns the OOB bytes of a programmed page without modelling
// device time; the cleaner uses it to interpret a page it is about to move
// (the timed read happens in CopyPage).
func (d *Device) PageOOB(addr PageAddr) ([]byte, error) {
	_, p, err := d.check(addr)
	if err != nil {
		return nil, err
	}
	if p.state != pageProgrammed {
		return nil, fmt.Errorf("%w: page %d", ErrReadErased, addr)
	}
	return p.oob[:], nil
}

// PageData returns the stored payload of a programmed page without
// modelling device time. It requires StoreData mode. The paged mapping
// table uses it to interpret translation pages in host-side contexts (GC
// fix-up, invariant walks, tail replay) where the timed read either
// happened elsewhere or is deliberately not part of the foreground charge.
// The returned slice aliases device memory and must not be modified.
func (d *Device) PageData(addr PageAddr) ([]byte, error) {
	if !d.cfg.StoreData {
		return nil, fmt.Errorf("nand: PageData on a fingerprint-mode device")
	}
	_, p, err := d.check(addr)
	if err != nil {
		return nil, err
	}
	if p.state != pageProgrammed {
		return nil, fmt.Errorf("%w: page %d", ErrReadErased, addr)
	}
	return p.data, nil
}
