package nand

import (
	"bytes"
	"errors"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	d := New(testConfig())
	data1 := fill(512, 0x11)
	data2 := fill(512, 0x22)
	if _, err := d.ProgramPage(0, 0, data1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProgramPage(0, 1, data2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EraseSegment(0, 2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatalf("SaveImage: %v", err)
	}
	d2, err := LoadImage(&buf)
	if err != nil {
		t.Fatalf("LoadImage: %v", err)
	}

	if d2.Config() != d.Config() {
		t.Fatal("config not preserved")
	}
	got, oob, _, err := d2.ReadPage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data1) || oob[0] != 'a' {
		t.Fatal("page 0 not preserved")
	}
	got, _, _, err = d2.ReadPage(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data2) {
		t.Fatal("page 1 not preserved")
	}
	if d2.EraseCount(2) != 1 {
		t.Fatal("erase count not preserved")
	}
	if d2.NextFreeInSegment(0) != 2 {
		t.Fatalf("nextProg not preserved: %d", d2.NextFreeInSegment(0))
	}
	// Program must resume exactly where it left off.
	if _, err := d2.ProgramPage(0, 2, data1, nil); err != nil {
		t.Fatalf("program after load: %v", err)
	}
}

func TestImageFingerprintMode(t *testing.T) {
	cfg := testConfig()
	cfg.StoreData = false
	d := New(cfg)
	data := fill(512, 0x77)
	if _, err := d.ProgramPage(0, 0, data, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := d2.PageFingerprint(0)
	if err != nil {
		t.Fatal(err)
	}
	if fp != Fingerprint(data) {
		t.Fatal("fingerprint not preserved")
	}
}

// TestImageHealthAndWearPersist: a retired segment must stay retired across
// save/load (the grown-bad-block table is device state, not FTL RAM), and the
// wear-model configuration must ride along with it.
func TestImageHealthAndWearPersist(t *testing.T) {
	cfg := testConfig()
	cfg.WearOutThreshold = 5
	cfg.WearOutProb = 0.25
	cfg.WearSeed = 99
	d := New(cfg)
	if _, err := d.ProgramPage(0, d.Addr(1, 0), fill(512, 0x5A), nil); err != nil {
		t.Fatal(err)
	}
	d.MarkSuspect(0)
	d.Retire(1)

	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h := d2.SegmentHealth(0); h != Suspect {
		t.Fatalf("segment 0 health after reload = %v, want suspect", h)
	}
	if h := d2.SegmentHealth(1); h != Retired {
		t.Fatalf("segment 1 health after reload = %v, want retired", h)
	}
	if d2.Config().WearOutThreshold != 5 || d2.Config().WearOutProb != 0.25 {
		t.Fatal("wear model configuration lost on reload")
	}
	// The reloaded device still enforces retirement.
	if _, err := d2.EraseSegment(0, 1); !errors.Is(err, ErrRetired) {
		t.Fatalf("reloaded retired segment erasable: %v", err)
	}
	// And the surviving page is still readable.
	got, _, _, err := d2.ReadPage(0, d2.Addr(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fill(512, 0x5A)) {
		t.Fatal("retired segment's page lost on reload")
	}
}

// TestImageAnchorPersists: the checkpoint anchor is device metadata and
// must survive save/load; its absence must survive too (nil stays nil, the
// "no checkpoint, full scan" state).
func TestImageAnchorPersists(t *testing.T) {
	d := New(testConfig())
	if a := d.Anchor(); a != nil {
		t.Fatalf("fresh device has anchor %+v", a)
	}
	d.SetAnchor(&Anchor{ID: 7, Addrs: []PageAddr{3, 9, 12}})

	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := d2.Anchor()
	if a == nil || a.ID != 7 || len(a.Addrs) != 3 || a.Addrs[2] != 12 {
		t.Fatalf("anchor after reload = %+v", a)
	}
	// Mutating the returned copy must not touch device state.
	a.Addrs[0] = 999
	if d2.Anchor().Addrs[0] != 3 {
		t.Fatal("Anchor() returned aliased state")
	}

	// Clearing round-trips as absent.
	d2.SetAnchor(nil)
	buf.Reset()
	if err := d2.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	d3, err := LoadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Anchor() != nil {
		t.Fatal("cleared anchor resurrected by reload")
	}
}

func TestLoadImageGarbage(t *testing.T) {
	if _, err := LoadImage(bytes.NewReader([]byte("not an image"))); err == nil {
		t.Fatal("garbage image accepted")
	}
}

func TestImageStatsPreserved(t *testing.T) {
	d := New(testConfig())
	if _, err := d.ProgramPage(0, 0, fill(512, 1), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Stats().PagePrograms != 1 {
		t.Fatal("stats not preserved")
	}
}
