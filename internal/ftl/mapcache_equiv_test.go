package ftl

import (
	"fmt"
	"testing"

	"iosnap/internal/sim"
)

// Paged-map equivalence. Cache-unbounded paged mode (MapCachePages < 0) is
// contractually lockstep bit-exact with the in-RAM tree: every translation
// page stays resident, the GTD stays empty, nothing is written to flash.
// Bounded mode trades that for RAM — it adds charged fault reads and
// write-back programs to the timeline, so the contract weakens to content
// equivalence plus a crash-safe on-flash map.

func pagedEquivConfig(pages int) Config {
	cfg := equivConfig(false)
	cfg.MapCachePages = pages
	return cfg
}

func TestPagedMapEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tree, err := New(pagedEquivConfig(0), nil)
			if err != nil {
				t.Fatal(err)
			}
			paged, err := New(pagedEquivConfig(-1), nil)
			if err != nil {
				t.Fatal(err)
			}
			if paged.fmap.Paged() == nil {
				t.Fatal("MapCachePages=-1 did not produce a paged map")
			}
			ss := tree.SectorSize()
			ops := genEquivOps(seed, tree.cfg.UserSectors, 300, 256)

			now := sim.Time(0)
			tbuf := make([]byte, 256*ss)
			pbuf := make([]byte, 256*ss)
			for i, op := range ops {
				var td, pd sim.Time
				var te, pe error
				switch op.kind {
				case 'w':
					data := runPattern(ss, op.lba, op.n, op.ver)
					td, te = tree.Write(now, op.lba, data)
					pd, pe = paged.Write(now, op.lba, data)
				case 'r':
					td, te = tree.Read(now, op.lba, tbuf[:op.n*ss])
					pd, pe = paged.Read(now, op.lba, pbuf[:op.n*ss])
					if string(tbuf[:op.n*ss]) != string(pbuf[:op.n*ss]) {
						t.Fatalf("op %d (%c lba=%d n=%d): payload mismatch", i, op.kind, op.lba, op.n)
					}
				case 't':
					td, te = tree.Trim(now, op.lba, int64(op.n))
					pd, pe = paged.Trim(now, op.lba, int64(op.n))
				}
				if (te == nil) != (pe == nil) {
					t.Fatalf("op %d (%c lba=%d n=%d): tree err %v, paged err %v", i, op.kind, op.lba, op.n, te, pe)
				}
				if td != pd {
					t.Fatalf("op %d (%c lba=%d n=%d): tree done %d, paged done %d (Δ %d)",
						i, op.kind, op.lba, op.n, td, pd, td.Sub(pd))
				}
				if td > now {
					now = td
				}
				tree.Scheduler().RunUntil(now)
				paged.Scheduler().RunUntil(now)
			}

			ts, ps := tree.Stats(), paged.Stats()
			if ps.MapPagesFlushed != 0 || ps.MapCacheEvictions != 0 {
				t.Fatalf("unbounded paged map touched flash: %+v", ps)
			}
			// Host RAM layout and the cache's hit counters are the sanctioned
			// divergences; everything else must match bit for bit.
			ts.MapMemory, ps.MapMemory = 0, 0
			ts.MapMemoryResident, ps.MapMemoryResident = 0, 0
			ts.MapCacheHits, ps.MapCacheHits = 0, 0
			ts.MapCacheMisses, ps.MapCacheMisses = 0, 0
			if ts != ps {
				t.Fatalf("Stats diverge:\ntree:  %+v\npaged: %+v", ts, ps)
			}
			if tdev, pdev := tree.Device().Stats(), paged.Device().Stats(); tdev != pdev {
				t.Fatalf("device Stats diverge:\ntree:  %+v\npaged: %+v", tdev, pdev)
			}
			tdig := deviceDigest(t, tree.Device())
			pdig := deviceDigest(t, paged.Device())
			if tdig != pdig {
				t.Fatalf("device images diverge: %s", firstDigestDiff(tdig, pdig))
			}
		})
	}
}

// TestBoundedMapContentAndRecovery drives a bounded cache (far smaller than
// the working set) against a tree twin: contents must agree after every
// read, the cache must actually thrash (misses, evictions, write-backs),
// residency must stay a fraction of the full map, and a clean close must
// recover through the GTD checkpoint with all data intact.
func TestBoundedMapContentAndRecovery(t *testing.T) {
	const cachePages = 4
	// Write-back traffic needs headroom the lockstep geometry lacks.
	cfg := pagedEquivConfig(cachePages)
	cfg.Nand.Segments = 64
	cfg = DefaultConfig(cfg.Nand)
	cfg.GCWindow = 10 * sim.Millisecond
	cfg.MapCachePages = cachePages
	bounded, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := cfg
	tcfg.MapCachePages = 0
	tree, err := New(tcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := bounded.SectorSize()
	ops := genEquivOps(17, bounded.cfg.UserSectors, 400, 128)

	var now, tnow sim.Time
	bbuf := make([]byte, 128*ss)
	tbuf := make([]byte, 128*ss)
	for i, op := range ops {
		var be, te error
		var bd, td sim.Time
		switch op.kind {
		case 'w':
			data := runPattern(ss, op.lba, op.n, op.ver)
			bd, be = bounded.Write(now, op.lba, data)
			td, te = tree.Write(tnow, op.lba, data)
		case 'r':
			bd, be = bounded.Read(now, op.lba, bbuf[:op.n*ss])
			td, te = tree.Read(tnow, op.lba, tbuf[:op.n*ss])
			if be == nil && te == nil && string(bbuf[:op.n*ss]) != string(tbuf[:op.n*ss]) {
				t.Fatalf("op %d (r lba=%d n=%d): content mismatch vs tree twin", i, op.lba, op.n)
			}
		case 't':
			bd, be = bounded.Trim(now, op.lba, int64(op.n))
			td, te = tree.Trim(tnow, op.lba, int64(op.n))
		}
		if (be == nil) != (te == nil) {
			t.Fatalf("op %d (%c lba=%d n=%d): bounded err %v, tree err %v", i, op.kind, op.lba, op.n, be, te)
		}
		if bd > now {
			now = bd
		}
		if td > tnow {
			tnow = td
		}
		bounded.Scheduler().RunUntil(now)
		tree.Scheduler().RunUntil(tnow)
	}

	st := bounded.Stats()
	if st.MapCacheMisses == 0 || st.MapCacheEvictions == 0 || st.MapPagesFlushed == 0 {
		t.Fatalf("bounded cache did not thrash: %+v", st)
	}
	if st.MapCacheHits == 0 {
		t.Fatalf("bounded cache never hit: %+v", st)
	}
	if st.MapMemoryResident >= st.MapMemory {
		t.Fatalf("resident %d not below total %d", st.MapMemoryResident, st.MapMemory)
	}

	// Snapshot expected contents from the tree twin, close, recover, diff.
	mapped := bounded.MappedSectors()
	now, err = bounded.Close(now)
	if err != nil {
		t.Fatal(err)
	}
	rec, now, err := Recover(cfg, bounded.Device(), sim.NewScheduler(), now)
	if err != nil {
		t.Fatal(err)
	}
	rs := rec.Stats()
	if !rs.RecoveryTailBounded || rs.RecoveryFallbacks != 0 {
		t.Fatalf("clean close fell back to full scan: %+v", rs)
	}
	if got := rec.MappedSectors(); got != mapped {
		t.Fatalf("recovered %d mapped sectors, want %d", got, mapped)
	}
	for lba := int64(0); lba < rec.cfg.UserSectors; lba += 64 {
		n := 64
		if lba+int64(n) > rec.cfg.UserSectors {
			n = int(rec.cfg.UserSectors - lba)
		}
		var bd, td sim.Time
		bd, err = rec.Read(now, lba, bbuf[:n*ss])
		if err != nil {
			t.Fatalf("post-recovery read lba %d: %v", lba, err)
		}
		td, err = tree.Read(tnow, lba, tbuf[:n*ss])
		if err != nil {
			t.Fatalf("tree read lba %d: %v", lba, err)
		}
		if string(bbuf[:n*ss]) != string(tbuf[:n*ss]) {
			t.Fatalf("post-recovery content mismatch at lba %d", lba)
		}
		if bd > now {
			now = bd
		}
		if td > tnow {
			tnow = td
		}
		rec.Scheduler().RunUntil(now)
		tree.Scheduler().RunUntil(tnow)
	}
}
