package ftl

import (
	"fmt"

	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// VictimPolicy selects the cleaner's segment-choice heuristic.
type VictimPolicy int

const (
	// VictimGreedy picks the segment with the most invalid blocks.
	VictimGreedy VictimPolicy = iota
	// VictimCostBenefit weighs reclaimable space by block age (the classic
	// LFS benefit/cost heuristic): older, colder segments win ties, which
	// segregates cold data and reduces long-run write amplification.
	VictimCostBenefit
)

func (p VictimPolicy) String() string {
	if p == VictimCostBenefit {
		return "cost-benefit"
	}
	return "greedy"
}

// victimScore rates a candidate segment; higher is better.
func victimScore(policy VictimPolicy, invalid, valid int, curSeq, segSeq uint64) float64 {
	switch policy {
	case VictimCostBenefit:
		u := float64(valid) / float64(valid+invalid)
		age := float64(curSeq - segSeq)
		return (1 - u) * age / (1 + u)
	default:
		return float64(invalid)
	}
}

// maybeScheduleGC starts a background cleaning task when the free pool is at
// or below the reserve and no cleaner is already running.
func (f *FTL) maybeScheduleGC(now sim.Time) {
	if f.gcActive || f.closed || len(f.freeSegs) > f.cfg.ReserveSegments {
		return
	}
	victim, est := f.selectVictim()
	if victim < 0 {
		return
	}
	f.gcActive = true
	f.gcVictim = victim
	quanta := (est + f.cfg.GCChunk - 1) / f.cfg.GCChunk
	task := &gcTask{
		f:       f,
		victim:  victim,
		pacer:   ratelimit.NewPacer(now, quanta, f.cfg.GCWindow),
		started: now,
	}
	f.sched.Schedule(now, task)
}

// selectVictim picks the cleaning victim per the configured policy,
// returning its index and the number of valid pages it still holds (the
// vanilla cleaner's work estimate). It returns -1 when no candidate exists —
// including when every candidate is fully valid, since cleaning a segment
// with nothing invalid reclaims no space and only burns an erase. (The log
// head and a segment the background task is mid-way through cleaning are
// never picked: a forced clean stealing the latter would erase it twice and
// corrupt the free pool.)
//
// Selection runs entirely over the incrementally-maintained counters in
// f.acct: O(log S) for greedy, O(S) for cost-benefit, no bitmap walks.
func (f *FTL) selectVictim() (victim, validPages int) {
	var e *segCounter
	if f.cfg.VictimPolicy == VictimCostBenefit {
		e = f.acct.bestCostBenefit()
	} else {
		e = f.acct.bestGreedy()
	}
	if e == nil {
		return -1, 0
	}
	return e.seg, f.acct.validCount(e.seg)
}

// gcTask incrementally cleans one victim segment under pacing.
type gcTask struct {
	f       *FTL
	victim  int
	pacer   *ratelimit.Pacer
	started sim.Time
	cursor  int // next page index to examine within the victim
	merged  bool
}

// Name implements sim.Task.
func (t *gcTask) Name() string { return fmt.Sprintf("ftl-gc(seg %d)", t.victim) }

// Run implements sim.Task: one paced quantum of copy-forward.
func (t *gcTask) Run(now sim.Time) (sim.Time, bool) {
	f := t.f
	if !t.merged {
		// Validity examination: a single pass over the segment's bitmap.
		mergeCost := sim.Duration(f.cfg.Nand.PagesPerSegment) * f.cfg.MergeCPUPerBlock
		f.stats.GCMergeTime += mergeCost
		now = now.Add(mergeCost)
		t.merged = true
	}
	var err error
	t.cursor, now, _, err = f.copyForward(now, t.victim, t.cursor, f.cfg.GCChunk)
	if err != nil {
		// Abandon the clean but record why: the victim keeps its remaining
		// valid pages (already-moved ones were re-pointed one by one and the
		// failed destination was rolled back), so forced cleaning can retry.
		f.gcActive = false
		f.gcVictim = -1
		f.stats.GCErrors++
		f.stats.GCLastErr = err.Error()
		return 0, true
	}
	if t.cursor < f.cfg.Nand.PagesPerSegment {
		return t.pacer.Ready(now), false
	}
	now, err = f.finishClean(now, t.victim)
	f.gcActive = false
	f.gcVictim = -1
	if err != nil {
		// Erase failed; the victim stays in usedSegs, consistent.
		f.stats.GCErrors++
		f.stats.GCLastErr = err.Error()
		return 0, true
	}
	f.stats.GCRuns++
	f.stats.GCTotalTime += now.Sub(t.started)
	f.stats.GCLastAt = now
	f.maybeScheduleGC(now) // chain onto the next victim if still low
	return 0, true
}

// cleanOnce synchronously cleans the best victim (the forced path taken by
// writers when the pool is nearly empty).
func (f *FTL) cleanOnce(now sim.Time, forced bool) (sim.Time, error) {
	victim, _ := f.selectVictim()
	if victim < 0 {
		return now, ErrDeviceFull
	}
	mergeCost := sim.Duration(f.cfg.Nand.PagesPerSegment) * f.cfg.MergeCPUPerBlock
	f.stats.GCMergeTime += mergeCost
	now = now.Add(mergeCost)
	start := now
	cursor := 0
	for cursor < f.cfg.Nand.PagesPerSegment {
		var err error
		cursor, now, _, err = f.copyForward(now, victim, cursor, f.cfg.Nand.PagesPerSegment)
		if err != nil {
			return now, err
		}
	}
	now, err := f.finishClean(now, victim)
	if err != nil {
		return now, err
	}
	f.stats.GCRuns++
	if forced {
		f.stats.GCForced++
	}
	f.stats.GCTotalTime += now.Sub(start)
	f.stats.GCLastAt = now
	return now, nil
}

// copyForward moves up to max valid pages of the victim starting at page
// index cursor, returning the new cursor, the completion time, and how many
// pages were copied.
//
// The quantum is planned first (destination allocation + header decode are
// host-side) and then issued as one devCopyPages call per head segment.
// Copies within one quantum were always pipelined — submitted together at
// the quantum's start, serialized by the device's per-channel queues — so
// the batch submission is virtual-time identical to the per-page reference
// loop below (nand.CopyPages is exactly sequential-equivalent).
func (f *FTL) copyForward(now sim.Time, victim, cursor, max int) (int, sim.Time, int, error) {
	if f.cfg.ReferenceDataPath {
		return f.copyForwardRef(now, victim, cursor, max)
	}
	pps := f.cfg.Nand.PagesPerSegment
	copied := 0
	submit := now
	maxDone := now
	var (
		froms, tos []nand.PageAddr
		hs         []header.Header
		pins       []bool
		idxs       []int // victim page index per planned copy
	)
	for cursor < pps && copied < max {
		froms, tos, hs, pins, idxs = froms[:0], tos[:0], hs[:0], pins[:0], idxs[:0]
		room := max - copied
		var planErr error
		for len(froms) < room && cursor < pps {
			idx := cursor
			cursor++
			old := f.dev.Addr(victim, idx)
			// Checkpoint chunks and translation pages are never valid in the
			// bitmap (they are consumed at recovery or faulted by the map
			// cache, not translated) but pinned pages must survive cleaning:
			// they are copied like valid ones and the anchor / GTD follows.
			_, mapPinned := f.mapPins[old]
			pinned := f.ckptPins[old] || mapPinned
			if !f.validity.Test(int64(old)) && !pinned {
				continue
			}
			dst, _, err := f.allocPageGC(submit)
			if err != nil {
				planErr = err
				break
			}
			oob, err := f.dev.PageOOB(old)
			if err != nil {
				f.ungetPage(dst)
				planErr = fmt.Errorf("ftl: cleaner reading header: %w", err)
				break
			}
			h, err := header.Unmarshal(oob)
			if err != nil {
				f.ungetPage(dst)
				planErr = fmt.Errorf("ftl: cleaner decoding header: %w", err)
				break
			}
			froms = append(froms, old)
			tos = append(tos, dst)
			hs = append(hs, h)
			pins = append(pins, pinned)
			idxs = append(idxs, idx)
			if len(froms) == 1 {
				// Confine the batch to the current head segment so a
				// mid-batch failure rolls back with a plain headIdx walk.
				if r := 1 + pps - f.headIdx; r < room {
					room = r
				}
			}
		}
		n, d, copyErr := f.devCopyPages(submit, froms, tos)
		if d > maxDone {
			maxDone = d
		}
		for j := 0; j < n; j++ {
			f.gcFixup(froms[j], tos[j], hs[j], pins[j])
		}
		copied += n
		if copyErr != nil {
			// Hand back the destinations that were planned but never
			// attempted, then the failing page's own (which may have landed
			// after all — ungetPage checks). The cursor resumes just past
			// the failing victim page, exactly as the per-page loop would.
			f.headIdx -= len(tos) - n - 1
			f.ungetPage(tos[n])
			return idxs[n] + 1, maxDone, copied, fmt.Errorf("ftl: copy-forward: %w", copyErr)
		}
		if planErr != nil {
			return cursor, maxDone, copied, planErr
		}
	}
	return cursor, maxDone, copied, nil
}

// copyForwardRef is the per-page reference implementation of copyForward,
// kept for the batched-vs-reference equivalence tests (Config.ReferenceDataPath).
func (f *FTL) copyForwardRef(now sim.Time, victim, cursor, max int) (int, sim.Time, int, error) {
	pps := f.cfg.Nand.PagesPerSegment
	copied := 0
	// Copies within one quantum are pipelined (submitted together, the
	// device's per-channel queues serialize them), like a cleaner thread
	// issuing a batch of copyback commands.
	submit := now
	maxDone := now
	for cursor < pps && copied < max {
		idx := cursor
		cursor++
		old := f.dev.Addr(victim, idx)
		_, mapPinned := f.mapPins[old]
		pinned := f.ckptPins[old] || mapPinned
		if !f.validity.Test(int64(old)) && !pinned {
			continue
		}
		dst, _, err := f.allocPageGC(submit)
		if err != nil {
			return cursor, maxDone, copied, err
		}
		oob, err := f.dev.PageOOB(old)
		if err != nil {
			f.ungetPage(dst)
			return cursor, maxDone, copied, fmt.Errorf("ftl: cleaner reading header: %w", err)
		}
		h, err := header.Unmarshal(oob)
		if err != nil {
			f.ungetPage(dst)
			return cursor, maxDone, copied, fmt.Errorf("ftl: cleaner decoding header: %w", err)
		}
		done, err := f.devCopyPage(submit, old, dst)
		if err != nil {
			f.ungetPage(dst)
			return cursor, maxDone, copied, fmt.Errorf("ftl: copy-forward: %w", err)
		}
		if done > maxDone {
			maxDone = done
		}
		f.gcFixup(old, dst, h, pinned)
		copied++
	}
	return cursor, maxDone, copied, nil
}

// gcFixup applies the host-side metadata moves for one copied page: the
// destination inherits the block's age, pins and anchors follow pinned
// pages, and data pages get their translation and validity bit re-pointed.
func (f *FTL) gcFixup(old, dst nand.PageAddr, h header.Header, pinned bool) {
	// The destination inherits the block's age (its original seq), so
	// segments holding cold data still look old to cost-benefit.
	if dseg := f.dev.SegmentOf(dst); h.Seq > f.segLastSeq[dseg] {
		f.segLastSeq[dseg] = h.Seq
	}
	if pinned {
		// The pin and the anchor (or in-flight chunk list, or GTD entry)
		// follow the page; no translation or validity bit exists to move.
		if h.Type == header.TypeMapPage {
			f.moveMapPin(old, dst)
		} else {
			f.movePin(old, dst)
		}
	} else {
		// Re-point the translation and move the validity bit.
		if h.Type == header.TypeData {
			f.fmap.Insert(h.LBA, uint64(dst))
		}
		f.markInvalid(int64(old))
		f.markValid(int64(dst))
	}
	f.stats.GCCopied++
}

// allocPageGC allocates a log-head page for the cleaner. Unlike writer
// allocation it never forces a nested clean; if the pool is exhausted the
// device is genuinely out of reclaimable space.
func (f *FTL) allocPageGC(now sim.Time) (nand.PageAddr, sim.Time, error) {
	if f.headIdx == f.cfg.Nand.PagesPerSegment {
		if len(f.freeSegs) == 0 {
			return 0, now, ErrDeviceFull
		}
		f.headSeg = f.freeSegs[0]
		f.freeSegs = f.freeSegs[1:]
		f.headIdx = 0
		f.usedSegs = append(f.usedSegs, f.headSeg)
		f.acct.track(f.headSeg)
	}
	addr := f.dev.Addr(f.headSeg, f.headIdx)
	f.headIdx++
	return addr, now, nil
}

// finishClean erases the victim and returns it to the free pool — or
// retires it. By this point every valid page has been copied off, so a
// permanently failing or suspect victim can leave service without losing a
// byte; returning it to the pool would just let the next writer trip over
// the same dying segment.
func (f *FTL) finishClean(now sim.Time, victim int) (sim.Time, error) {
	done, err := f.devEraseSegment(now, victim)
	if err != nil {
		if retry.MediaFailure(err) {
			f.retireSegment(victim)
			return now, nil
		}
		return now, fmt.Errorf("ftl: erasing segment %d: %w", victim, err)
	}
	f.stats.GCErases++
	if f.dev.SegmentHealth(victim) != nand.Healthy {
		f.retireSegment(victim)
		return done, nil
	}
	for i, s := range f.usedSegs {
		if s == victim {
			f.usedSegs = append(f.usedSegs[:i], f.usedSegs[i+1:]...)
			break
		}
	}
	f.acct.untrack(victim)
	f.freeSegs = append(f.freeSegs, victim)
	return done, nil
}
