package ftl

// The foreground data path, rebuilt around batches. A multi-sector request
// is one *run*: the forward map is charged one MapCPUCost per leaf the run
// spans in a maximally-packed tree (ftlmap.RunSpan) instead of one per sector, translations move
// through the run operations (InsertRun / LookupRange / DeleteRange),
// validity flips word-at-a-time, and the NAND sees one batch call per
// log-head chunk instead of one call per sector.
//
// Config.ReferenceDataPath selects the historical per-sector algorithms —
// per-key map operations, guarded per-bit validity flips, per-page device
// calls — on the *same* virtual-time skeleton: the same MapCPUCost charge,
// the same chunk boundaries, the same submit times, and the same Stats
// increments. The two paths must therefore produce bit-identical device
// state, Stats, and completion times on any fault-free workload; the
// equivalence tests enforce exactly that.
//
// Partial failure is accounted honestly: when the device fails mid-run, the
// sectors that completed stay committed (map, validity, stats) and the
// returned time reflects the work actually consumed, rather than discarding
// both as the per-sector path once did.

import (
	"fmt"
	"sort"

	"iosnap/internal/ftlmap"
	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// dataPathScratch holds the per-FTL reusable buffers of the batched data
// path; the simulation is single-threaded, so one set suffices.
type dataPathScratch struct {
	addrs   []nand.PageAddr
	datas   [][]byte
	oobs    [][]byte
	oobBuf  []byte   // flat backing store for oobs: header.Len bytes per page
	rdatas  [][]byte // devReadPages results, valid until its next call
	roobs   [][]byte
	entries []ftlmap.Entry
	prevs   []uint64
	vals    []uint64
	found   []bool
	secIdx  []int

	mapMiss  []uint64        // translation-page indices to fault (mappage.go)
	mapAddrs []nand.PageAddr // their flash addresses
}

// Read implements blockdev.Device. Unmapped sectors read as zeros. Reads
// that fail mid-run report the sectors completed before the failure in
// UserReads/BytesRead and return the virtual time already consumed.
func (f *FTL) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	ss := f.cfg.Nand.SectorSize
	if len(buf)%ss != 0 {
		return now, fmt.Errorf("%w: %d", ErrBadLength, len(buf))
	}
	n := len(buf) / ss
	if err := f.checkIO(lba, n); err != nil {
		return now, err
	}
	completed, done, err := f.readRun(now, lba, n, buf)
	f.stats.UserReads += int64(completed)
	f.stats.BytesRead += int64(completed) * int64(ss)
	return done, err
}

func (f *FTL) readRun(now sim.Time, lba int64, n int, buf []byte) (completed int, done sim.Time, err error) {
	ss := f.cfg.Nand.SectorSize
	span := ftlmap.RunSpan(n)
	f.stats.BatchDescents += int64(span)
	t := now.Add(sim.Duration(span) * f.cfg.MapCPUCost)
	if t, err = f.mapEnsure(t, uint64(lba), n); err != nil {
		return 0, t, err
	}
	done = t

	// Resolve the run's translations; unmapped sectors read as zeros.
	addrs := f.ws.addrs[:0]
	secIdx := f.ws.secIdx[:0]
	if f.cfg.ReferenceDataPath {
		for i := 0; i < n; i++ {
			if a, ok := f.fmap.Lookup(uint64(lba) + uint64(i)); ok {
				addrs = append(addrs, nand.PageAddr(a))
				secIdx = append(secIdx, i)
			} else {
				zeroSector(buf[i*ss : (i+1)*ss])
			}
		}
	} else {
		vals, found := f.lookupScratch(n)
		f.fmap.LookupRange(uint64(lba), vals, found)
		for i := 0; i < n; i++ {
			if found[i] {
				addrs = append(addrs, nand.PageAddr(vals[i]))
				secIdx = append(secIdx, i)
				found[i] = false // leave the scratch all-false for reuse
			} else {
				zeroSector(buf[i*ss : (i+1)*ss])
			}
		}
	}
	f.ws.addrs, f.ws.secIdx = addrs, secIdx
	if len(addrs) == 0 {
		return n, done, nil
	}
	f.stats.BatchPages += int64(len(addrs))
	f.stats.BatchNandCalls++

	if f.cfg.ReferenceDataPath {
		for j, a := range addrs {
			data, _, d, err := f.devReadPage(t, a)
			if err != nil {
				return secIdx[j], done, fmt.Errorf("ftl: reading LBA %d: %w", lba+int64(secIdx[j]), err)
			}
			copy(buf[secIdx[j]*ss:(secIdx[j]+1)*ss], data) // nil data (fingerprint mode) leaves buf as-is
			if d > done {
				done = d
			}
		}
		return n, done, nil
	}
	datas, _, k, d, err := f.devReadPages(t, addrs)
	for j := 0; j < k; j++ {
		copy(buf[secIdx[j]*ss:(secIdx[j]+1)*ss], datas[j])
	}
	if d > done {
		done = d
	}
	if err != nil {
		return secIdx[k], done, fmt.Errorf("ftl: reading LBA %d: %w", lba+int64(secIdx[k]), err)
	}
	return n, done, nil
}

// Write implements blockdev.Device: the run is appended at the log head in
// per-segment chunks, old translations are invalidated, and the forward map
// absorbs the run — Remap-on-Write, one descent per touched leaf. A
// mid-run device failure leaves the completed sectors committed and counted.
func (f *FTL) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	ss := f.cfg.Nand.SectorSize
	if len(data)%ss != 0 {
		return now, fmt.Errorf("%w: %d", ErrBadLength, len(data))
	}
	n := len(data) / ss
	if err := f.checkIO(lba, n); err != nil {
		return now, err
	}
	span := ftlmap.RunSpan(n)
	f.stats.BatchDescents += int64(span)
	at := now.Add(sim.Duration(span) * f.cfg.MapCPUCost)
	at, err := f.mapEnsure(at, uint64(lba), n)
	done := at
	if err != nil {
		return done, err
	}
	written := 0
	var firstErr error
	for written < n && firstErr == nil {
		// The first page of each chunk goes through allocPage so head
		// advancement (and any forced cleaning) behaves exactly as before;
		// the rest of the chunk fills the head segment contiguously.
		addr0, at2, err := f.allocPage(at)
		if err != nil {
			firstErr = err
			break
		}
		at = at2
		if at > done {
			done = at
		}
		chunk := n - written
		if room := f.cfg.Nand.PagesPerSegment - f.headIdx + 1; chunk > room {
			chunk = room
		}
		addrs := append(f.ws.addrs[:0], addr0)
		for j := 1; j < chunk; j++ {
			addrs = append(addrs, f.dev.Addr(f.headSeg, f.headIdx))
			f.headIdx++
		}
		seqBase := f.seq
		datas, oobs := f.ws.datas[:0], f.ws.oobs[:0]
		if f.cfg.ReferenceDataPath {
			// Historical host-cost profile: one fresh header buffer per page.
			for j := 0; j < chunk; j++ {
				datas = append(datas, data[(written+j)*ss:(written+j+1)*ss])
				h := header.Header{Type: header.TypeData, LBA: uint64(lba) + uint64(written+j), Epoch: 0, Seq: seqBase + uint64(j) + 1}
				oobs = append(oobs, h.Marshal())
			}
		} else {
			if need := chunk * header.Len; cap(f.ws.oobBuf) < need {
				f.ws.oobBuf = make([]byte, need)
			}
			for j := 0; j < chunk; j++ {
				datas = append(datas, data[(written+j)*ss:(written+j+1)*ss])
				h := header.Header{Type: header.TypeData, LBA: uint64(lba) + uint64(written+j), Epoch: 0, Seq: seqBase + uint64(j) + 1}
				oob := f.ws.oobBuf[j*header.Len : (j+1)*header.Len]
				h.MarshalInto(oob)
				oobs = append(oobs, oob)
			}
		}
		f.seq += uint64(chunk)
		f.ws.addrs, f.ws.datas, f.ws.oobs = addrs, datas, oobs
		f.stats.BatchPages += int64(chunk)
		f.stats.BatchNandCalls++

		var k int
		var d sim.Time
		if f.cfg.ReferenceDataPath {
			d = at
			for k = 0; k < chunk; k++ {
				pd, e := f.devProgramPage(at, addrs[k], datas[k], oobs[k])
				if pd > d {
					d = pd
				}
				if e != nil {
					err = e
					break
				}
			}
		} else {
			k, d, err = f.devProgramPages(at, addrs, datas, oobs)
		}
		if d > done {
			done = d
		}
		if k > 0 {
			f.segLastSeq[f.dev.SegmentOf(addrs[0])] = seqBase + uint64(k)
		}
		if err != nil {
			// Pages past the failing one were never attempted: they hand
			// back their sequence numbers and log-head slots. The failing
			// page keeps its consumed seq (as the per-sector path always
			// did) and is reclaimed by ungetPage unless it landed after all.
			f.seq -= uint64(chunk - k - 1)
			f.headIdx -= chunk - k - 1
			f.ungetPage(addrs[k])
			if retry.MediaFailure(err) {
				f.sealHead() // move future appends off the failing segment
			}
			firstErr = fmt.Errorf("ftl: programming LBA %d: %w", lba+int64(written+k), err)
		}
		f.commitWriteRun(uint64(lba)+uint64(written), addrs[:k])
		written += k
	}
	f.stats.UserWrites += int64(written)
	f.stats.BytesWritten += int64(written) * int64(ss)
	return done, firstErr
}

// commitWriteRun installs translations for a run of freshly-programmed
// pages: addrs[j] now backs lba0+j. New pages are one contiguous physical
// run in the head segment; displaced translations are invalidated in
// coalesced runs.
func (f *FTL) commitWriteRun(lba0 uint64, addrs []nand.PageAddr) {
	if len(addrs) == 0 {
		return
	}
	if f.cfg.ReferenceDataPath {
		for j, a := range addrs {
			if prev, existed := f.fmap.Insert(lba0+uint64(j), uint64(a)); existed {
				f.markInvalid(int64(prev))
			}
			f.markValid(int64(a))
		}
		return
	}
	entries := f.ws.entries[:0]
	for j, a := range addrs {
		entries = append(entries, ftlmap.Entry{Key: lba0 + uint64(j), Val: uint64(a)})
	}
	f.ws.entries = entries
	f.ws.prevs = f.ws.prevs[:0]
	f.fmap.InsertRun(entries, func(_ int, prev uint64) {
		f.ws.prevs = append(f.ws.prevs, prev)
	})
	f.markValidRun(int64(addrs[0]), int64(addrs[0])+int64(len(addrs)))
	f.markInvalidRuns(f.ws.prevs)
}

// markValidRun sets validity over one segment-contained physical run with a
// word-level kernel, adjusting the per-segment counter by the number of
// bits that actually transitioned — exactly what per-bit markValid calls
// would have recorded.
func (f *FTL) markValidRun(lo, hi int64) {
	delta := int(hi-lo) - f.validity.CountRange(lo, hi)
	if delta == 0 {
		return
	}
	f.validity.SetRange(lo, hi)
	f.acct.onRunDelta(lo, delta)
}

// markInvalidRuns invalidates the given physical pages, coalescing sorted
// neighbours into ClearRange calls. Runs are split at segment boundaries so
// each counter update stays within one segment.
func (f *FTL) markInvalidRuns(prevs []uint64) {
	if len(prevs) == 0 {
		return
	}
	sorted := true
	for i := 1; i < len(prevs); i++ {
		if prevs[i] < prevs[i-1] {
			sorted = false
			break
		}
	}
	if !sorted { // sequential overwrites displace already-ascending runs
		sort.Slice(prevs, func(i, j int) bool { return prevs[i] < prevs[j] })
	}
	pps := int64(f.cfg.Nand.PagesPerSegment)
	for i := 0; i < len(prevs); {
		lo := int64(prevs[i])
		hi := lo + 1
		segEnd := (lo/pps + 1) * pps
		j := i + 1
		for j < len(prevs) && int64(prevs[j]) == hi && hi < segEnd {
			hi++
			j++
		}
		if delta := f.validity.CountRange(lo, hi); delta > 0 {
			f.validity.ClearRange(lo, hi)
			f.acct.onRunDelta(lo, -delta)
		}
		i = j
	}
}

// Trim implements blockdev.Trimmer: it drops the run's translations and
// invalidates the backing pages, making them reclaimable. Like the other
// run operations it charges one MapCPUCost per touched leaf.
func (f *FTL) Trim(now sim.Time, lba int64, n int64) (sim.Time, error) {
	if err := f.checkIO(lba, int(n)); err != nil {
		return now, err
	}
	span := ftlmap.RunSpan(int(n))
	f.stats.BatchDescents += int64(span)
	t, err := f.mapEnsureRange(now, uint64(lba), uint64(lba)+uint64(n))
	if err != nil {
		return t, err
	}
	if f.cfg.ReferenceDataPath {
		for i := int64(0); i < n; i++ {
			if prev, existed := f.fmap.Delete(uint64(lba + i)); existed {
				f.markInvalid(int64(prev))
			}
		}
	} else {
		f.ws.prevs = f.ws.prevs[:0]
		f.fmap.DeleteRange(uint64(lba), uint64(lba)+uint64(n), func(_, prev uint64) {
			f.ws.prevs = append(f.ws.prevs, prev)
		})
		f.markInvalidRuns(f.ws.prevs)
	}
	f.stats.Trims += n
	return t.Add(sim.Duration(span) * f.cfg.MapCPUCost), nil
}

// lookupScratch returns the reusable LookupRange buffers, grown to n and
// with found all-false (readRun resets the bits it sets).
func (f *FTL) lookupScratch(n int) ([]uint64, []bool) {
	if cap(f.ws.vals) < n {
		f.ws.vals = make([]uint64, n)
		f.ws.found = make([]bool, n)
	}
	return f.ws.vals[:n], f.ws.found[:n]
}

func zeroSector(s []byte) {
	for i := range s {
		s[i] = 0
	}
}
