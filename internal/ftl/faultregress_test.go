package ftl

import (
	"strings"
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// TestGCErrorRecordedNotSwallowed: a device error during the vanilla
// cleaner's copy-forward must land in Stats (GCErrors/GCLastErr), not vanish,
// and the device must stay usable: writes continue and the victim can be
// cleaned once the fault clears.
func TestGCErrorRecordedNotSwallowed(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 40; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for lba := int64(0); lba < 20; lba++ { // invalidate some blocks
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 2)); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)

	// A victim that still holds valid data, so the clean must copy.
	pps := int64(f.cfg.Nand.PagesPerSegment)
	victim := -1
	for _, seg := range f.UsedSegments() {
		if seg == f.headSeg {
			continue
		}
		for p := int64(seg) * pps; p < int64(seg+1)*pps; p++ {
			if f.validity.Test(p) {
				victim = seg
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Fatal("no cleanable victim with valid data")
	}
	plan := faultinject.GCCopyError(1)
	plan.Arm(f.Device())
	if err := f.ForceClean(now, victim); err != nil {
		t.Fatal(err)
	}
	now = f.sched.Drain(now)
	plan.Disarm(f.Device())

	st := f.Stats()
	if st.GCErrors != 1 {
		t.Fatalf("GCErrors = %d, want 1 (error swallowed)", st.GCErrors)
	}
	if !strings.Contains(st.GCLastErr, "copy-forward") {
		t.Fatalf("GCLastErr = %q, want copy-forward error", st.GCLastErr)
	}
	if f.CleaningActive() {
		t.Fatal("cleaner still marked active after abort")
	}
	// The log head must not be bricked by the rolled-back allocation.
	for lba := int64(0); lba < 10; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 3)); err != nil {
			t.Fatalf("write after GC abort: %v", err)
		}
	}
	// And the victim must still be cleanable.
	if err := f.ForceClean(now, victim); err != nil {
		t.Fatalf("victim not cleanable after abort: %v", err)
	}
	now = f.sched.Drain(now)
	if st := f.Stats(); st.GCErases == 0 {
		t.Fatal("retry clean never erased the victim")
	}
}

// TestWriteFaultDoesNotBrickLogHead: one failed foreground program must not
// leave a permanent hole at the sequential-program log head.
func TestWriteFaultDoesNotBrickLogHead(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	if now, err = f.Write(now, 1, sectorPattern(ss, 1, 1)); err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindError, Op: nand.OpProgram, Seg: faultinject.AnySeg, AfterN: 1,
	})
	plan.Arm(f.Device())
	if _, err := f.Write(now, 2, sectorPattern(ss, 2, 1)); err == nil {
		t.Fatal("injected program fault not reported")
	}
	plan.Disarm(f.Device())
	for lba := int64(2); lba < 12; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatalf("log head bricked after one failed program: %v", err)
		}
	}
}
