package ftl

import (
	"encoding/binary"
	"fmt"

	"iosnap/internal/header"
	"iosnap/internal/sim"
)

// Checkpoint payload layout: 8-byte entry count, then count × (lba, addr)
// little-endian pairs. The header's LBA field carries the chunk index and
// the Epoch field the total chunk count, so recovery can tell whether a
// checkpoint is complete.

// entriesPerChunk returns how many map entries fit one sector payload.
func entriesPerChunk(sectorSize int) int {
	n := (sectorSize - 8) / 16
	if n < 1 {
		n = 1
	}
	return n
}

// writeCheckpoint appends the serialized forward map to the log. The device
// state is then fully captured: a recovering FTL with payload storage can
// rebuild the map without replaying the whole log.
func (f *FTL) writeCheckpoint(now sim.Time) (sim.Time, error) {
	type entry struct{ lba, addr uint64 }
	var entries []entry
	f.fmap.All(func(k, v uint64) bool {
		entries = append(entries, entry{k, v})
		return true
	})
	per := entriesPerChunk(f.cfg.Nand.SectorSize)
	chunks := (len(entries) + per - 1) / per
	if chunks == 0 {
		chunks = 1 // an empty map still writes one (empty) chunk as the clean-shutdown marker
	}
	done := now
	for c := 0; c < chunks; c++ {
		lo := c * per
		hi := lo + per
		if hi > len(entries) {
			hi = len(entries)
		}
		payload := make([]byte, f.cfg.Nand.SectorSize)
		binary.LittleEndian.PutUint64(payload, uint64(hi-lo))
		for i, e := range entries[lo:hi] {
			binary.LittleEndian.PutUint64(payload[8+i*16:], e.lba)
			binary.LittleEndian.PutUint64(payload[8+i*16+8:], e.addr)
		}
		addr, t, err := f.allocPage(now)
		if err != nil {
			return now, fmt.Errorf("ftl: allocating checkpoint page: %w", err)
		}
		f.seq++
		h := header.Header{Type: header.TypeCheckpoint, LBA: uint64(c), Epoch: uint64(chunks), Seq: f.seq}
		d, err := f.devProgramPage(t, addr, payload, h.Marshal())
		if err != nil {
			f.ungetPage(addr)
			return now, fmt.Errorf("ftl: writing checkpoint chunk %d: %w", c, err)
		}
		// Checkpoint pages are consumed at recovery and never re-read after;
		// they stay invalid in the bitmap so the cleaner reclaims them.
		if d > done {
			done = d
		}
	}
	return done, nil
}

// decodeCheckpointChunk parses one checkpoint payload into map entries.
func decodeCheckpointChunk(payload []byte) ([][2]uint64, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("ftl: checkpoint chunk too short: %d bytes", len(payload))
	}
	count := binary.LittleEndian.Uint64(payload)
	if int(count) > (len(payload)-8)/16 {
		return nil, fmt.Errorf("ftl: checkpoint chunk count %d exceeds payload", count)
	}
	out := make([][2]uint64, count)
	for i := range out {
		out[i][0] = binary.LittleEndian.Uint64(payload[8+i*16:])
		out[i][1] = binary.LittleEndian.Uint64(payload[8+i*16+8:])
	}
	return out, nil
}
