package ftl

import (
	"fmt"

	"iosnap/internal/ckpt"
	"iosnap/internal/header"
	"iosnap/internal/mapcache"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// Checkpoint format (shared codec, internal/ckpt): a stream of sections —
// the forward map and a segment table — framed with the checkpoint's
// identity and a checksum, split into sector-sized chunks each tagged with
// the checkpoint ID. The chunk header carries the chunk index in LBA and
// the total chunk count in Epoch, so a scan can group a generation's
// chunks and prove it complete ({0..total-1}, all tagged with the same ID)
// before decoding anything. The checkpoint's identity doubles as its
// cut-off: ckptID = ckptSeq = f.seq at serialization, and recovery replays
// only records with seq > ckptSeq on top of the loaded state.
//
// The segment table is what makes a checkpoint safely *skippable* work at
// recovery: for every used segment it records the erase count, programmed
// page count, and newest sequence number at serialization time. A segment
// whose erase count has since changed was reclaimed by the cleaner — its
// blocks were copy-forwarded with their sequence numbers preserved, i.e.
// below the cut-off and invisible to tail replay — so the whole checkpoint
// is stale and recovery falls back to the full scan.

// Section kinds inside a vanilla checkpoint stream.
const (
	ckptSecMap      = 1 // forward map: count, then count × (lba, addr)
	ckptSecSegTable = 2 // segment table: count, then count × (seg, erases, prog, maxSeq)
	ckptSecGTD      = 3 // bounded-paged map: the global translation directory
)

// ckptSegRecord is one used segment's identity at serialization time.
type ckptSegRecord struct {
	seg    int
	erases int
	prog   int
	maxSeq uint64
}

// serializeCheckpoint captures the forward map and segment table at one
// instant and returns the checkpoint identity plus its sector-sized chunks.
func (f *FTL) serializeCheckpoint() (uint64, [][]byte, error) {
	ckptID := f.seq
	// Tree and cache-unbounded maps serialize the full mapping list
	// (byte-identical between the two — the unbounded equivalence
	// contract). A bounded paged map serializes only the GTD: every dirty
	// translation page was flushed before this point (writeCheckpoint /
	// ckptTask call flushAllMapPages first), so the directory's flash
	// copies are current.
	var mw ckpt.Writer
	mapKind := uint8(ckptSecMap)
	if c := f.fmap.Paged(); c != nil && c.Bounded() {
		if dirty := c.DirtyPages(); len(dirty) != 0 {
			return 0, nil, fmt.Errorf("ftl: checkpoint with %d unflushed translation pages", len(dirty))
		}
		mapKind = ckptSecGTD
		ents := c.GTDEntries()
		mw.U32(uint32(c.SlotsPerPage()))
		mw.U32(uint32(len(ents)))
		for _, ent := range ents {
			mw.U64(ent.Idx)
			mw.U64(ent.Addr)
			mw.U32(uint32(ent.Live))
		}
	} else {
		mw.U64(uint64(f.fmap.Len()))
		f.fmap.All(func(k, v uint64) bool {
			mw.U64(k)
			mw.U64(v)
			return true
		})
	}
	var sw ckpt.Writer
	sw.U32(uint32(len(f.usedSegs)))
	for _, s := range f.usedSegs {
		sw.U32(uint32(s))
		sw.U32(uint32(f.dev.EraseCount(s)))
		sw.U32(uint32(f.dev.NextFreeInSegment(s)))
		sw.U64(f.segLastSeq[s])
	}
	stream := ckpt.Encode(ckptID, ckptID, []ckpt.Section{
		{Kind: mapKind, Data: mw.B},
		{Kind: ckptSecSegTable, Data: sw.B},
	})
	chunks, err := ckpt.Split(ckptID, stream, f.cfg.Nand.SectorSize)
	if err != nil {
		return 0, nil, fmt.Errorf("ftl: chunking checkpoint: %w", err)
	}
	return ckptID, chunks, nil
}

// programCkptChunk appends one chunk at the log head and pins it against
// the cleaner. A failed program is attributed like every other program
// path: roll back the allocation and, on a permanent media failure, seal
// the head so future appends move off the failing segment.
func (f *FTL) programCkptChunk(now sim.Time, chunk []byte, idx, total int) (nand.PageAddr, sim.Time, error) {
	addr, now, err := f.allocPage(now)
	if err != nil {
		return 0, now, fmt.Errorf("ftl: allocating checkpoint page: %w", err)
	}
	f.seq++
	h := header.Header{Type: header.TypeCheckpoint, LBA: uint64(idx), Epoch: uint64(total), Seq: f.seq}
	done, err := f.devProgramPage(now, addr, chunk, h.Marshal())
	if err != nil {
		f.ungetPage(addr)
		if retry.MediaFailure(err) {
			f.sealHead()
		}
		return 0, now, fmt.Errorf("ftl: writing checkpoint chunk %d: %w", idx, err)
	}
	f.segLastSeq[f.dev.SegmentOf(addr)] = f.seq
	f.ckptPins[addr] = true
	return addr, done, nil
}

// commitCheckpoint atomically publishes a fully-programmed checkpoint: the
// device anchor flips to the new generation and the superseded
// generation's pins drop, making its chunks reclaimable.
func (f *FTL) commitCheckpoint(now sim.Time, ckptID uint64, addrs []nand.PageAddr) {
	for _, a := range f.anchorAddrs {
		delete(f.ckptPins, a)
	}
	f.anchorID = ckptID
	f.anchorAddrs = addrs
	f.dev.SetAnchor(&nand.Anchor{ID: ckptID, Addrs: addrs})
	f.lastCkpt = now
	f.stats.Checkpoints++
	f.stats.CheckpointChunks += int64(len(addrs))
}

// pinnedInSeg counts pinned pages (checkpoint chunks and live
// GTD-referenced translation pages) in seg. Victim scoring treats them as
// live: a segment full of pinned pages has zero valid bits yet cleaning it
// reclaims nothing.
func (f *FTL) pinnedInSeg(seg int) int {
	n := 0
	for a := range f.ckptPins {
		if f.dev.SegmentOf(a) == seg {
			n++
		}
	}
	for a := range f.mapPins {
		if f.dev.SegmentOf(a) == seg {
			n++
		}
	}
	return n
}

// movePin follows a copy-forwarded checkpoint chunk: the pin moves with
// the page, and whichever list names it — the committed anchor or the
// in-flight chunk list — is updated in place. A moved anchor chunk
// republishes the device anchor so recovery still finds every chunk.
func (f *FTL) movePin(old, dst nand.PageAddr) {
	delete(f.ckptPins, old)
	f.ckptPins[dst] = true
	for i, a := range f.anchorAddrs {
		if a == old {
			f.anchorAddrs[i] = dst
			f.dev.SetAnchor(&nand.Anchor{ID: f.anchorID, Addrs: f.anchorAddrs})
			return
		}
	}
	for i, a := range f.ckptInflight {
		if a == old {
			f.ckptInflight[i] = dst
			return
		}
	}
}

// abortCheckpoint unpins a partial generation; the previous anchor stays.
func (f *FTL) abortCheckpoint(addrs []nand.PageAddr, err error) {
	for _, a := range addrs {
		delete(f.ckptPins, a)
	}
	f.stats.CheckpointErrors++
	f.stats.CheckpointLastErr = err.Error()
}

// writeCheckpoint synchronously serializes and programs a checkpoint (the
// Close path).
func (f *FTL) writeCheckpoint(now sim.Time) (sim.Time, error) {
	// ckptActive guards the whole sequence: the map flushes below advance
	// the log head, which must not arm a second (background) checkpoint.
	f.ckptActive = true
	defer func() { f.ckptActive = false }()
	if c := f.fmap.Paged(); c != nil && c.Bounded() {
		var err error
		if now, err = f.flushAllMapPages(now, c); err != nil {
			f.stats.CheckpointErrors++
			f.stats.CheckpointLastErr = err.Error()
			return now, err
		}
	}
	ckptID, chunks, err := f.serializeCheckpoint()
	if err != nil {
		f.stats.CheckpointErrors++
		f.stats.CheckpointLastErr = err.Error()
		return now, err
	}
	var addrs []nand.PageAddr
	for i, c := range chunks {
		var addr nand.PageAddr
		addr, now, err = f.programCkptChunk(now, c, i, len(chunks))
		if err != nil {
			f.abortCheckpoint(addrs, err)
			return now, err
		}
		addrs = append(addrs, addr)
	}
	f.commitCheckpoint(now, ckptID, addrs)
	return now, nil
}

// maybeScheduleCheckpoint arms the periodic background checkpoint from the
// head-advance path, the same way the cleaner is armed.
func (f *FTL) maybeScheduleCheckpoint(now sim.Time) {
	if f.ckptActive || f.closed || f.cfg.CheckpointInterval <= 0 || !f.cfg.Nand.StoreData {
		return
	}
	if now.Sub(f.lastCkpt) < f.cfg.CheckpointInterval {
		return
	}
	f.startCheckpoint(now)
}

// StartCheckpoint forces a background checkpoint now (tests and tools).
// It reports whether a task was scheduled.
func (f *FTL) StartCheckpoint(now sim.Time) bool {
	if f.ckptActive || f.closed {
		return false
	}
	return f.startCheckpoint(now)
}

func (f *FTL) startCheckpoint(now sim.Time) bool {
	if c := f.fmap.Paged(); c != nil && c.Bounded() {
		// A bounded paged map must flush every dirty translation page before
		// serializing, and flushing programs through the log head — which
		// cannot happen here: startCheckpoint fires from the head-advance
		// path, possibly mid-program under SequentialProg. Defer both the
		// flush and the serialization to the task's first run.
		f.ckptActive = true
		f.ckptInflight = nil
		f.sched.Schedule(now, &ckptTask{
			f:       f,
			pending: true,
			budget:  ratelimit.NewBudget(f.cfg.CheckpointLimit),
		})
		return true
	}
	ckptID, chunks, err := f.serializeCheckpoint()
	if err != nil {
		f.stats.CheckpointErrors++
		f.stats.CheckpointLastErr = err.Error()
		return false
	}
	f.ckptActive = true
	f.ckptInflight = nil
	f.sched.Schedule(now, &ckptTask{
		f:      f,
		id:     ckptID,
		chunks: chunks,
		budget: ratelimit.NewBudget(f.cfg.CheckpointLimit),
	})
	return true
}

// ckptTask programs a serialized checkpoint's chunks under the WorkSleep
// budget. The state was captured at scheduling time, so foreground writes
// that land between quanta carry seq > ckptSeq and are replayed on top at
// recovery — the checkpoint stays consistent without stalling writers.
type ckptTask struct {
	f       *FTL
	id      uint64
	chunks  [][]byte
	next    int
	pending bool // bounded-paged mode: flush + serialize on first run
	budget  *ratelimit.Budget
}

// Name implements sim.Task.
func (t *ckptTask) Name() string { return fmt.Sprintf("ftl-checkpoint(%d)", t.id) }

// Run implements sim.Task: one budgeted batch of chunk programs.
func (t *ckptTask) Run(now sim.Time) (sim.Time, bool) {
	f := t.f
	if f.closed {
		// Close wrote its own synchronous checkpoint, superseding this one.
		for _, a := range f.ckptInflight {
			delete(f.ckptPins, a)
		}
		f.ckptInflight = nil
		f.ckptActive = false
		return 0, true
	}
	if t.pending {
		var err error
		if c := f.fmap.Paged(); c != nil && c.Bounded() {
			now, err = f.flushAllMapPages(now, c)
		}
		if err == nil {
			t.id, t.chunks, err = f.serializeCheckpoint()
		}
		if err != nil {
			f.stats.CheckpointErrors++
			f.stats.CheckpointLastErr = err.Error()
			f.ckptActive = false
			return 0, true
		}
		t.pending = false
	}
	start := now
	for programmed := 0; t.next < len(t.chunks) && programmed < f.cfg.GCChunk; programmed++ {
		addr, done, err := f.programCkptChunk(now, t.chunks[t.next], t.next, len(t.chunks))
		if err != nil {
			f.abortCheckpoint(f.ckptInflight, err)
			f.ckptInflight = nil
			f.ckptActive = false
			return 0, true
		}
		f.ckptInflight = append(f.ckptInflight, addr)
		t.next++
		now = done
	}
	if t.next < len(t.chunks) {
		if sleep, exhausted := t.budget.Charge(now.Sub(start)); exhausted {
			return now.Add(sleep), false
		}
		return now, false
	}
	f.commitCheckpoint(now, t.id, f.ckptInflight)
	f.ckptInflight = nil
	f.ckptActive = false
	return 0, true
}

// decodeCheckpointSections parses a decoded stream's sections into the map
// state and the segment table. The map section comes in either layout: the
// full mapping list (tree / cache-unbounded checkpoints, ckptSecMap) or
// the global translation directory (bounded-paged checkpoints,
// ckptSecGTD); exactly one of entries / gtd is populated on success.
func decodeCheckpointSections(secs []ckpt.Section) (entries [][2]uint64, gtd []mapcache.GTDEnt, slotsPer int, table []ckptSegRecord, err error) {
	var sawMap, sawTable bool
	for _, s := range secs {
		switch s.Kind {
		case ckptSecMap:
			sawMap = true
			r := ckpt.Reader{B: s.Data}
			n := r.U64()
			for i := uint64(0); i < n; i++ {
				lba, addr := r.U64(), r.U64()
				entries = append(entries, [2]uint64{lba, addr})
			}
			if r.Err() != nil {
				return nil, nil, 0, nil, fmt.Errorf("ftl: checkpoint map section: %w", r.Err())
			}
		case ckptSecGTD:
			sawMap = true
			r := ckpt.Reader{B: s.Data}
			slotsPer = int(r.U32())
			n := r.U32()
			gtd = make([]mapcache.GTDEnt, 0, n)
			for i := uint32(0); i < n; i++ {
				gtd = append(gtd, mapcache.GTDEnt{Idx: r.U64(), Addr: r.U64(), Live: int(r.U32())})
			}
			if r.Err() != nil {
				return nil, nil, 0, nil, fmt.Errorf("ftl: checkpoint GTD section: %w", r.Err())
			}
		case ckptSecSegTable:
			sawTable = true
			r := ckpt.Reader{B: s.Data}
			n := r.U32()
			for i := uint32(0); i < n; i++ {
				rec := ckptSegRecord{
					seg:    int(r.U32()),
					erases: int(r.U32()),
					prog:   int(r.U32()),
					maxSeq: r.U64(),
				}
				table = append(table, rec)
			}
			if r.Err() != nil {
				return nil, nil, 0, nil, fmt.Errorf("ftl: checkpoint segment table: %w", r.Err())
			}
		}
	}
	if !sawMap || !sawTable {
		return nil, nil, 0, nil, fmt.Errorf("ftl: checkpoint missing required sections")
	}
	return entries, gtd, slotsPer, table, nil
}

// checkSegTable decides whether a checkpoint's segment table still
// describes the device. It returns the set of segments recovery may skip
// (recorded used, unchanged, nothing newer) — and ok=false when any
// recorded segment was erased, retired, or rewound since serialization,
// which means the cleaner moved pre-cut-off blocks and the checkpoint can
// no longer be trusted.
func checkSegTable(dev *nand.Device, table []ckptSegRecord) (recorded map[int]ckptSegRecord, ok bool) {
	recorded = make(map[int]ckptSegRecord, len(table))
	for _, rec := range table {
		if rec.seg < 0 || rec.seg >= dev.Config().Segments {
			return nil, false
		}
		if dev.SegmentHealth(rec.seg) == nand.Retired {
			return nil, false
		}
		if dev.EraseCount(rec.seg) != rec.erases {
			return nil, false
		}
		if dev.NextFreeInSegment(rec.seg) < rec.prog {
			return nil, false
		}
		recorded[rec.seg] = rec
	}
	return recorded, true
}
