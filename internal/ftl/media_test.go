package ftl

import (
	"bytes"
	"errors"
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// TestTransientWriteRetriedInvisibly: a KindTransient program episode
// shorter than the retry budget must be absorbed entirely — the write
// succeeds, the retry is counted, and nothing is marked suspect.
func TestTransientWriteRetriedInvisibly(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindTransient, Op: nand.OpProgram, Seg: faultinject.AnySeg,
		AfterN: 1, Times: 2, // budget is 3 attempts, so the episode clears
	})
	plan.Arm(f.Device())
	now, err := f.Write(0, 5, sectorPattern(ss, 5, 1))
	if err != nil {
		t.Fatalf("transient episode not absorbed: %v", err)
	}
	plan.Disarm(f.Device())

	st := f.Stats()
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if st.MediaFailures != 0 || st.SegmentsSuspect != 0 {
		t.Fatalf("transient episode marked media suspect: %+v", st)
	}
	buf := make([]byte, ss)
	if _, err := f.Read(now, 5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 5, 1)) {
		t.Fatal("retried write lost its data")
	}
}

// TestTransientReadRetried: same contract on the read path.
func TestTransientReadRetried(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, err := f.Write(0, 3, sectorPattern(ss, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindTransient, Op: nand.OpRead, Seg: faultinject.AnySeg,
		AfterN: 1, Times: 1,
	})
	plan.Arm(f.Device())
	buf := make([]byte, ss)
	if _, err := f.Read(now, 3, buf); err != nil {
		t.Fatalf("transient read not retried: %v", err)
	}
	plan.Disarm(f.Device())
	if !bytes.Equal(buf, sectorPattern(ss, 3, 1)) {
		t.Fatal("retried read returned wrong data")
	}
	if st := f.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

// TestExhaustedTransientMarksSuspect: an episode longer than the retry
// budget is a permanent failure — the error surfaces, and the segment goes
// suspect so the cleaner will retire it.
func TestExhaustedTransientMarksSuspect(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindTransient, Op: nand.OpProgram, Seg: faultinject.AnySeg,
		AfterN: 1, Times: 10, // outlasts the 3-attempt budget
	})
	plan.Arm(f.Device())
	if _, err := f.Write(0, 5, sectorPattern(ss, 5, 1)); !errors.Is(err, nand.ErrTransient) {
		t.Fatalf("exhausted transient: %v, want ErrTransient to surface", err)
	}
	plan.Disarm(f.Device())
	st := f.Stats()
	if st.MediaFailures != 1 || st.SegmentsSuspect != 1 {
		t.Fatalf("exhausted transient did not mark suspect: %+v", st)
	}
	// The head sealed onto healthy media, so writes keep working.
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 10; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 2)); err != nil {
			t.Fatalf("write after seal: %v", err)
		}
	}
}

// TestSuspectVictimRetiredAfterClean: cleaning a suspect segment rescues its
// valid data and retires it instead of returning it to the free pool.
func TestSuspectVictimRetiredAfterClean(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 40; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)
	victim := -1
	for _, seg := range f.UsedSegments() {
		if seg != f.headSeg {
			victim = seg
			break
		}
	}
	if victim < 0 {
		t.Fatal("no victim")
	}
	f.dev.MarkSuspect(victim)
	if err := f.ForceClean(now, victim); err != nil {
		t.Fatal(err)
	}
	now = f.sched.Drain(now)

	if h := f.dev.SegmentHealth(victim); h != nand.Retired {
		t.Fatalf("cleaned suspect segment health = %v, want retired", h)
	}
	for _, s := range append(f.UsedSegments(), f.freeSegs...) {
		if s == victim {
			t.Fatal("retired segment still pooled")
		}
	}
	// Every LBA still reads back: rescue moved the data before retirement.
	buf := make([]byte, ss)
	for lba := int64(0); lba < 40; lba++ {
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatalf("LBA %d unreadable after retirement: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 1)) {
			t.Fatalf("LBA %d content lost in rescue", lba)
		}
	}
	if st := f.Stats(); st.SegmentsRetired != 1 {
		t.Fatalf("SegmentsRetired = %d, want 1", st.SegmentsRetired)
	}
}

// TestPermanentEraseFailureRetiresVictim: wear-out at erase time retires the
// victim (its data is already rescued) and the device keeps going.
func TestPermanentEraseFailureRetiresVictim(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 40; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)
	victim := -1
	for _, seg := range f.UsedSegments() {
		if seg != f.headSeg {
			victim = seg
			break
		}
	}
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindError, Op: nand.OpErase, Seg: victim,
		AfterN: 1, Err: nand.ErrWornOut,
	})
	plan.Arm(f.Device())
	if err := f.ForceClean(now, victim); err != nil {
		t.Fatalf("clean with failing erase must rescue+retire, got %v", err)
	}
	now = f.sched.Drain(now)
	plan.Disarm(f.Device())

	if h := f.dev.SegmentHealth(victim); h != nand.Retired {
		t.Fatalf("victim health = %v, want retired", h)
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 40; lba++ {
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatalf("LBA %d lost: %v", lba, err)
		}
	}
}

// TestOutOfSpaceDegradation: when nothing is reclaimable and the pool hits
// the reserve, writes shed with ErrOutOfSpace while reads and trims keep
// working — and writes resume automatically once trims free space.
func TestOutOfSpaceDegradation(t *testing.T) {
	cfg := testConfig()
	cfg.RescueReserve = 2
	// Advertise nearly the whole device so a unique-data fill must dip into
	// the reserve with nothing reclaimable.
	cfg.UserSectors = int64(cfg.Nand.Segments-1) * int64(cfg.Nand.PagesPerSegment)
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := f.SectorSize()
	now := sim.Time(0)
	// Fill the advertised capacity with unique live data: nothing invalid,
	// nothing reclaimable.
	written := int64(0)
	for lba := int64(0); lba < f.Sectors(); lba++ {
		var werr error
		now, werr = f.Write(now, lba, sectorPattern(ss, lba, 1))
		if werr != nil {
			if errors.Is(werr, ErrOutOfSpace) {
				break
			}
			t.Fatalf("LBA %d: %v", lba, werr)
		}
		written++
	}
	now = f.sched.Drain(now)
	// Keep writing fresh LBAs until degradation (if not already there).
	sawShed := false
	for lba := written; lba < f.Sectors(); lba++ {
		_, werr := f.Write(now, lba, sectorPattern(ss, lba, 1))
		if errors.Is(werr, ErrOutOfSpace) {
			sawShed = true
			break
		}
		if werr != nil {
			t.Fatalf("unexpected error: %v", werr)
		}
	}
	if !sawShed {
		t.Fatal("never saw ErrOutOfSpace filling the advertised capacity")
	}
	st := f.Stats()
	if !st.Degraded || st.OutOfSpaceWrites == 0 {
		t.Fatalf("degradation not surfaced: %+v", st)
	}
	// Reads still served.
	buf := make([]byte, ss)
	if _, err := f.Read(now, 0, buf); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 0, 1)) {
		t.Fatal("read while degraded returned wrong data")
	}
	// Trims still work and create reclaimable space...
	if now, err = f.Trim(now, 0, int64(written)/2); err != nil {
		t.Fatalf("trim while degraded: %v", err)
	}
	// ...after which writes recover automatically.
	var werr error
	for i := 0; i < 4; i++ { // a few attempts: the first may trigger cleaning
		if now, werr = f.Write(now, 0, sectorPattern(ss, 0, 2)); werr == nil {
			break
		}
	}
	if werr != nil {
		t.Fatalf("writes did not recover after trim: %v", werr)
	}
	if st := f.Stats(); st.Degraded {
		t.Fatal("degraded flag stuck after recovery")
	}
}

// TestRetiredSegmentSurvivesRecovery: retirement must hold across a
// crash/recover cycle, the retired segment staying out of both pools while
// all data remains readable.
func TestRetiredSegmentSurvivesRecovery(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 40; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)
	victim := -1
	for _, seg := range f.UsedSegments() {
		if seg != f.headSeg {
			victim = seg
			break
		}
	}
	f.dev.MarkSuspect(victim)
	if err := f.ForceClean(now, victim); err != nil {
		t.Fatal(err)
	}
	now = f.sched.Drain(now)
	if f.dev.SegmentHealth(victim) != nand.Retired {
		t.Fatal("setup: victim not retired")
	}

	// Crash (no Close) and recover on the same device.
	f2, now, err := Recover(f.cfg, f.dev, nil, now)
	if err != nil {
		t.Fatalf("recovery with retired segment: %v", err)
	}
	for _, s := range append(f2.UsedSegments(), f2.freeSegs...) {
		if s == victim {
			t.Fatal("retired segment re-pooled by recovery")
		}
	}
	if f2.headSeg == victim {
		t.Fatal("recovery resumed head on retired segment")
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 40; lba++ {
		if _, err := f2.Read(now, lba, buf); err != nil {
			t.Fatalf("LBA %d unreadable after recovery: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 1)) {
			t.Fatalf("LBA %d content mismatch after recovery", lba)
		}
	}
}
