package ftl

import (
	"testing"

	"iosnap/internal/sim"
)

func TestVictimScoreGreedy(t *testing.T) {
	// Greedy: score is the invalid count, age-independent.
	if victimScore(VictimGreedy, 10, 6, 100, 50) != 10 {
		t.Fatal("greedy score wrong")
	}
	if victimScore(VictimGreedy, 10, 6, 100, 99) != 10 {
		t.Fatal("greedy must ignore age")
	}
}

func TestVictimScoreCostBenefit(t *testing.T) {
	// Equal utilization: the older segment must score higher.
	oldSeg := victimScore(VictimCostBenefit, 8, 8, 1000, 100)
	newSeg := victimScore(VictimCostBenefit, 8, 8, 1000, 900)
	if oldSeg <= newSeg {
		t.Fatalf("cost-benefit should prefer older: old=%v new=%v", oldSeg, newSeg)
	}
	// Equal age: the emptier segment must score higher.
	empty := victimScore(VictimCostBenefit, 12, 4, 1000, 500)
	full := victimScore(VictimCostBenefit, 4, 12, 1000, 500)
	if empty <= full {
		t.Fatalf("cost-benefit should prefer emptier: %v vs %v", empty, full)
	}
	// Fully valid segments score zero.
	if victimScore(VictimCostBenefit, 0, 16, 1000, 1) != 0 {
		t.Fatal("fully valid segment should score 0")
	}
}

func TestVictimPolicyString(t *testing.T) {
	if VictimGreedy.String() != "greedy" || VictimCostBenefit.String() != "cost-benefit" {
		t.Fatal("policy names wrong")
	}
}

func TestCostBenefitCleanerPreservesData(t *testing.T) {
	cfg := testConfig()
	cfg.VictimPolicy = VictimCostBenefit
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, now := fillAndChurn(t, f, 1500, 90, 17)
	if f.Stats().GCRuns == 0 {
		t.Fatal("no cleaning under cost-benefit")
	}
	buf := make([]byte, f.SectorSize())
	for lba, version := range model {
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatalf("Read(%d): %v", lba, err)
		}
		if buf[0] != sectorPattern(f.SectorSize(), lba, version)[0] {
			t.Fatalf("LBA %d corrupted under cost-benefit cleaning", lba)
		}
	}
}

func TestCostBenefitSegregatesColdData(t *testing.T) {
	// A hot/cold split workload: cost-benefit should not copy cold data
	// more often than greedy does (the LFS argument). We assert it at
	// least keeps write amplification in the same ballpark and cleans.
	run := func(p VictimPolicy) float64 {
		cfg := testConfig()
		cfg.VictimPolicy = p
		f, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		ss := f.SectorSize()
		now := sim.Time(0)
		// Cold fill: LBAs 100..180 written once.
		for lba := int64(100); lba < 180; lba++ {
			f.Scheduler().RunUntil(now)
			now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
		}
		// Hot churn: LBAs 0..20 overwritten constantly.
		rng := sim.NewRNG(uint64(p) + 5)
		for i := 0; i < 1500; i++ {
			f.Scheduler().RunUntil(now)
			lba := rng.Int63n(20)
			d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(i)))
			if err != nil {
				t.Fatal(err)
			}
			now = d
		}
		f.Scheduler().Drain(now)
		return f.Stats().WriteAmplify
	}
	greedy := run(VictimGreedy)
	cb := run(VictimCostBenefit)
	if cb > greedy*1.5 {
		t.Fatalf("cost-benefit WA %.2f much worse than greedy %.2f", cb, greedy)
	}
}
