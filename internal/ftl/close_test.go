package ftl

import (
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// TestCloseFailedCheckpointStillCloses pins the Close semantics fix: a
// checkpoint failure used to surface as a Close error and leave the
// device open (a second Close would try again instead of reporting
// ErrClosed). Close now matches iosnap: the error is recorded in
// CheckpointErrors, the device closes anyway, the clock reflects the
// partial attempt's NAND time, and recovery falls back to the full scan
// with all data intact.
func TestCloseFailedCheckpointStillCloses(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 64; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpoint's second chunk page (second distinct program target
	// after arming) fails for longer than the retry budget.
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindTransient, Op: nand.OpProgram, Seg: faultinject.AnySeg,
		AfterN: 2, Times: 100,
	})
	plan.Arm(f.Device())
	done, err := f.Close(now)
	plan.Disarm(f.Device())
	if err != nil {
		t.Fatalf("Close must absorb checkpoint failures, got %v", err)
	}
	if done <= now {
		t.Fatalf("Close done %v does not reflect the partial checkpoint's time (entered at %v)", done, now)
	}
	st := f.Stats()
	if st.CheckpointErrors != 1 {
		t.Fatalf("CheckpointErrors = %d, want 1", st.CheckpointErrors)
	}
	if st.Checkpoints != 0 {
		t.Fatalf("aborted attempt must not commit, got %d checkpoints", st.Checkpoints)
	}
	if _, err := f.Write(done, 0, sectorPattern(ss, 0, 2)); err != ErrClosed {
		t.Fatalf("write after Close: got %v, want ErrClosed", err)
	}
	if _, err := f.Close(done); err != ErrClosed {
		t.Fatalf("second Close: got %v, want ErrClosed", err)
	}
	// The log remains the source of truth across the failed checkpoint.
	f2, rnow, err := Recover(testConfig(), f.Device(), nil, done)
	if err != nil {
		t.Fatalf("recovery after failed checkpoint close: %v", err)
	}
	if f2.Stats().RecoveryTailBounded {
		t.Fatal("recovery trusted an aborted checkpoint generation")
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 64; lba++ {
		if _, err := f2.Read(rnow, lba, buf); err != nil {
			t.Fatalf("read lba %d after recovery: %v", lba, err)
		}
		if string(buf) != string(sectorPattern(ss, lba, 1)) {
			t.Fatalf("lba %d corrupted after recovery", lba)
		}
	}
}
