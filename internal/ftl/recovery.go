package ftl

import (
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/ckpt"
	"iosnap/internal/ftlmap"
	"iosnap/internal/header"
	"iosnap/internal/mapcache"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// scanEntry is one data translation found during the log scan.
type scanEntry struct {
	lba  uint64
	addr nand.PageAddr
	seq  uint64
}

// ckptChunk locates one checkpoint chunk on the log.
type ckptChunk struct {
	idx   uint64
	total uint64
	seq   uint64
	addr  nand.PageAddr
}

// Recover reconstructs an FTL from an existing device. If the device
// anchor names a complete, still-trustworthy checkpoint, recovery is
// tail-bounded: the forward map is bulk-loaded from the checkpoint and
// only segments written since (per the checkpoint's segment table) have
// their headers scanned. Anything wrong with the checkpoint — torn,
// incomplete, or invalidated by cleaning since it was written — falls
// back to the full header scan of every segment, the paper's bottom-up
// reconstruction (§5.5.1).
func Recover(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time) (*FTL, sim.Time, error) {
	return recoverFTL(cfg, dev, sched, now, false)
}

// RecoverFullScan reconstructs an FTL by the full header scan, ignoring
// the checkpoint anchor. It is the reference path: tests and benchmarks
// compare its result against tail-bounded recovery.
func RecoverFullScan(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time) (*FTL, sim.Time, error) {
	return recoverFTL(cfg, dev, sched, now, true)
}

func recoverFTL(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time, forceFull bool) (*FTL, sim.Time, error) {
	if err := cfg.Validate(); err != nil {
		return nil, now, err
	}
	if dev.Config() != cfg.Nand {
		return nil, now, fmt.Errorf("ftl: device geometry differs from config")
	}
	if sched == nil {
		sched = sim.NewScheduler()
	}
	tailAttempted := false
	if !forceFull && dev.Anchor() != nil && cfg.Nand.StoreData {
		tailAttempted = true
		f, t, ok := tryTailRecover(cfg, dev, sched, now)
		if ok {
			return f, t, nil
		}
		now = t // virtual time spent probing the checkpoint is real
	}
	f, now, err := fullScanRecover(cfg, dev, sched, now)
	if err != nil {
		return nil, now, err
	}
	if tailAttempted {
		f.stats.RecoveryFallbacks++
	}
	return f, now, nil
}

// recoverShell builds the empty FTL both recovery paths fill in.
func recoverShell(cfg Config, dev *nand.Device, sched *sim.Scheduler) *FTL {
	f := &FTL{
		cfg:        cfg,
		dev:        dev,
		sched:      sched,
		validity:   bitmap.New(cfg.Nand.TotalPages()),
		gcVictim:   -1,
		segLastSeq: make([]uint64, cfg.Nand.Segments),
		ckptPins:   make(map[nand.PageAddr]bool),
		mapPins:    make(map[nand.PageAddr]uint64),
	}
	f.fmap = f.newActiveMap()
	f.acct = newGCAcct(f)
	return f
}

// scanSegment reads one segment's OOB headers into the recovery
// accumulators, counting torn pages instead of silently dropping them.
func (f *FTL) scanSegment(now sim.Time, seg int, entries *[]scanEntry, chunks *[]ckptChunk,
	segUsed []bool, segMaxSeq []uint64, maxSeq *uint64) (sim.Time, error) {
	oobs, done, err := f.devScanSegmentOOB(now, seg)
	if err != nil {
		return now, fmt.Errorf("ftl: scanning segment %d: %w", seg, err)
	}
	f.stats.RecoverySegsScanned++
	f.stats.RecoveryHeaderPages += int64(f.cfg.Nand.PagesPerSegment)
	for idx, oob := range oobs {
		if oob == nil {
			continue
		}
		segUsed[seg] = true
		h, err := header.Unmarshal(oob)
		if err != nil {
			// Torn write at the crashed log tail: never acknowledged, so
			// skipping it loses nothing; the cleaner reclaims the page. It
			// is still evidence worth counting.
			f.stats.TornPagesSkipped++
			continue
		}
		if h.Seq > segMaxSeq[seg] {
			segMaxSeq[seg] = h.Seq
		}
		if h.Seq > *maxSeq {
			*maxSeq = h.Seq
		}
		addr := f.dev.Addr(seg, idx)
		switch h.Type {
		case header.TypeData:
			*entries = append(*entries, scanEntry{lba: h.LBA, addr: addr, seq: h.Seq})
		case header.TypeCheckpoint:
			if chunks != nil {
				*chunks = append(*chunks, ckptChunk{idx: h.LBA, total: h.Epoch, seq: h.Seq, addr: addr})
			}
		}
	}
	return done, nil
}

// fullScanRecover is the historical path: scan every live segment's
// headers, prefer the newest complete checkpoint found on the log, and
// replay translations on top.
func fullScanRecover(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time) (*FTL, sim.Time, error) {
	f := recoverShell(cfg, dev, sched)

	var (
		entries   []scanEntry
		chunks    []ckptChunk
		segMaxSeq = make([]uint64, cfg.Nand.Segments)
		segUsed   = make([]bool, cfg.Nand.Segments)
		maxSeq    uint64
	)
	for seg := 0; seg < cfg.Nand.Segments; seg++ {
		if dev.SegmentHealth(seg) == nand.Retired {
			// A retired segment was fully rescued before retirement; any
			// headers it still holds are stale copies that must not win
			// last-write-wins replay over the rescued ones.
			continue
		}
		var err error
		now, err = f.scanSegment(now, seg, &entries, &chunks, segUsed, segMaxSeq, &maxSeq)
		if err != nil {
			return nil, now, err
		}
	}
	if len(entries) == 0 && len(chunks) == 0 && maxSeq == 0 {
		// Fresh device: recovery degenerates to formatting.
		usedAny := false
		for _, u := range segUsed {
			usedAny = usedAny || u
		}
		if !usedAny {
			nf, err := New(cfg, sched)
			if err != nil {
				return nil, now, err
			}
			nf.dev = dev
			return nf, now, nil
		}
	}
	f.seq = maxSeq

	// Prefer the newest complete checkpoint, then replay any data written
	// after it (the device may have been reopened and written post-close).
	loaded, ckptSeq, t, err := f.loadCheckpoint(now, chunks)
	if err != nil {
		return nil, now, err
	}
	now = t
	if loaded {
		newer := entries[:0]
		for _, e := range entries {
			if e.seq > ckptSeq {
				newer = append(newer, e)
			}
		}
		f.applyNewerEntries(newer)
	} else {
		// No usable checkpoint on the log: whatever the anchor pointed at
		// is gone or untrustworthy, so drop it.
		dev.SetAnchor(nil)
		f.replayEntries(entries)
	}

	now, err = f.rebuildGeometry(now, segUsed, segMaxSeq)
	if err != nil {
		return nil, now, err
	}
	return f, now, nil
}

// tryTailRecover attempts checkpoint-based recovery via the device anchor.
// It mutates only the candidate FTL, never the device, so a failure at any
// point simply discards the partial state and reports ok=false.
func tryTailRecover(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time) (*FTL, sim.Time, bool) {
	anchor := dev.Anchor()
	f := recoverShell(cfg, dev, sched)

	// Read and validate every chunk the anchor names.
	payloads := make([][]byte, 0, len(anchor.Addrs))
	if f.cfg.ReferenceDataPath {
		for _, addr := range anchor.Addrs {
			oob, err := dev.PageOOB(addr)
			if err != nil {
				return nil, now, false
			}
			h, err := header.Unmarshal(oob)
			if err != nil || h.Type != header.TypeCheckpoint {
				return nil, now, false
			}
			payload, _, done, err := f.devReadPage(now, addr)
			if err != nil {
				return nil, now, false
			}
			now = done
			payloads = append(payloads, payload)
		}
	} else {
		// Batched anchor load: validate the chunk headers host-side, then
		// fetch every payload in one devReadPages call (cell reads overlap
		// across channels instead of chaining).
		for _, addr := range anchor.Addrs {
			oob, err := dev.PageOOB(addr)
			if err != nil {
				return nil, now, false
			}
			h, err := header.Unmarshal(oob)
			if err != nil || h.Type != header.TypeCheckpoint {
				return nil, now, false
			}
		}
		ds, _, k, done, err := f.devReadPages(now, anchor.Addrs)
		now = done
		if err != nil || k != len(anchor.Addrs) {
			return nil, now, false
		}
		payloads = append(payloads, ds...)
	}
	stream, err := ckpt.Join(anchor.ID, payloads)
	if err != nil {
		return nil, now, false
	}
	id, ckptSeq, secs, err := ckpt.Decode(stream)
	if err != nil || id != anchor.ID {
		return nil, now, false
	}
	mapEntries, gtdEnts, gtdSlots, table, err := decodeCheckpointSections(secs)
	if err != nil {
		return nil, now, false
	}
	if gtdEnts != nil && !f.gtdUsable(gtdSlots) {
		// A GTD checkpoint under a tree-mode config (or a foreign page
		// geometry) cannot be consumed lazily; the full scan rebuilds the
		// map from data headers instead.
		return nil, now, false
	}
	recorded, ok := checkSegTable(dev, table)
	if !ok {
		return nil, now, false
	}

	// Scan only segments that changed since the checkpoint; trust the
	// table for the rest.
	var (
		entries   []scanEntry
		segMaxSeq = make([]uint64, cfg.Nand.Segments)
		segUsed   = make([]bool, cfg.Nand.Segments)
		maxSeq    = ckptSeq
	)
	for seg := 0; seg < cfg.Nand.Segments; seg++ {
		if dev.SegmentHealth(seg) == nand.Retired {
			continue
		}
		rec, isRecorded := recorded[seg]
		if isRecorded && dev.NextFreeInSegment(seg) == rec.prog {
			// Unchanged since serialization: the table speaks for it.
			segUsed[seg] = rec.prog > 0
			segMaxSeq[seg] = rec.maxSeq
			if rec.maxSeq > maxSeq {
				maxSeq = rec.maxSeq
			}
			continue
		}
		if !isRecorded && dev.ProgrammedInSegment(seg) == 0 {
			continue // still free
		}
		var err error
		now, err = f.scanSegment(now, seg, &entries, nil, segUsed, segMaxSeq, &maxSeq)
		if err != nil {
			return nil, now, false
		}
		if isRecorded {
			segUsed[seg] = segUsed[seg] || rec.prog > 0
			if rec.maxSeq > segMaxSeq[seg] {
				segMaxSeq[seg] = rec.maxSeq
			}
		}
	}
	f.seq = maxSeq

	f.loadMapEntries(mapEntries, gtdEnts)
	if now, err = f.markValidFromGTD(now, gtdEnts); err != nil {
		return nil, now, false
	}
	newer := entries[:0]
	for _, e := range entries {
		if e.seq > ckptSeq {
			newer = append(newer, e)
		}
	}
	f.applyNewerEntries(newer)

	// The anchor's chunks are live recovery state until superseded.
	f.anchorID = anchor.ID
	f.anchorAddrs = anchor.Addrs
	for _, a := range anchor.Addrs {
		f.ckptPins[a] = true
	}

	now, err = f.rebuildGeometry(now, segUsed, segMaxSeq)
	if err != nil {
		return nil, now, false
	}
	f.stats.RecoveryTailBounded = true
	return f, now, true
}

// rebuildGeometry reconstructs the segment pools and log head from the
// per-segment summaries either recovery path produced.
func (f *FTL) rebuildGeometry(now sim.Time, segUsed []bool, segMaxSeq []uint64) (sim.Time, error) {
	cfg, dev := f.cfg, f.dev
	type segOrder struct {
		seg int
		seq uint64
	}
	var used []segOrder
	for seg := 0; seg < cfg.Nand.Segments; seg++ {
		switch {
		case dev.SegmentHealth(seg) == nand.Retired:
			// Belongs to neither pool: a grown bad block stays out of service.
		case segUsed[seg]:
			used = append(used, segOrder{seg, segMaxSeq[seg]})
		default:
			f.freeSegs = append(f.freeSegs, seg)
		}
	}
	sort.SliceStable(used, func(i, j int) bool { return used[i].seq < used[j].seq })
	for _, u := range used {
		f.usedSegs = append(f.usedSegs, u.seg)
	}
	copy(f.segLastSeq, segMaxSeq)

	// The head resumes at the newest segment if it still has room — and is
	// healthy; appending onto suspect media would repeat the failure that
	// made it suspect.
	if len(f.usedSegs) > 0 {
		last := f.usedSegs[len(f.usedSegs)-1]
		next := dev.NextFreeInSegment(last)
		if next < cfg.Nand.PagesPerSegment && dev.SegmentHealth(last) == nand.Healthy {
			f.headSeg, f.headIdx = last, next
		} else {
			if len(f.freeSegs) == 0 {
				return now, ErrDeviceFull
			}
			f.headSeg = f.freeSegs[0]
			f.freeSegs = f.freeSegs[1:]
			f.headIdx = 0
			f.usedSegs = append(f.usedSegs, f.headSeg)
		}
	} else {
		if len(f.freeSegs) == 0 {
			return now, ErrUnformatted
		}
		f.headSeg = f.freeSegs[0]
		f.freeSegs = f.freeSegs[1:]
		f.headIdx = 0
		f.usedSegs = append(f.usedSegs, f.headSeg)
	}
	// Track in usedSegs order so insertion stamps reproduce the oldest-first
	// tie-break of a scan-based selection.
	for _, s := range f.usedSegs {
		f.acct.track(s)
	}
	f.maybeScheduleGC(now)
	return now, nil
}

// loadMapEntries bulk-loads checkpointed translations and marks their
// backing pages valid. A bounded-paged checkpoint supplies a GTD instead
// of entries; its pages stay on flash (pinned via recoveredMap) and the
// caller marks their mappings valid via markValidFromGTD.
func (f *FTL) loadMapEntries(pairs [][2]uint64, gtd []mapcache.GTDEnt) {
	entries := make([]ftlmap.Entry, 0, len(pairs))
	for _, p := range pairs {
		entries = append(entries, ftlmap.Entry{Key: p[0], Val: p[1]})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	f.fmap = f.recoveredMap(entries, gtd)
	for _, e := range entries {
		f.markValid(int64(e.Val))
	}
}

// markValidFromGTD rebuilds the validity bits a GTD checkpoint implies.
// Unlike iosnap — whose checkpoints carry an explicit validity stream —
// the vanilla bitmap is derived from the forward map, so recovery must
// read every GTD-referenced translation page (a charged batch read) and
// mark each mapping it holds. The pages are decoded and discarded, not
// made resident: the cache stays empty and bounded.
func (f *FTL) markValidFromGTD(now sim.Time, gtd []mapcache.GTDEnt) (sim.Time, error) {
	if len(gtd) == 0 {
		return now, nil
	}
	addrs := make([]nand.PageAddr, len(gtd))
	for i, ent := range gtd {
		addrs[i] = nand.PageAddr(ent.Addr)
	}
	datas, _, k, done, err := f.devReadPages(now, addrs)
	if err != nil {
		return done, fmt.Errorf("ftl: reading GTD translation page %d: %w", gtd[k].Idx, err)
	}
	for i := 0; i < k; i++ {
		gotIdx, slots, derr := mapcache.DecodePage(datas[i])
		if derr != nil {
			return done, fmt.Errorf("ftl: translation page %d at %d: %w", gtd[i].Idx, addrs[i], derr)
		}
		if gotIdx != gtd[i].Idx {
			return done, fmt.Errorf("ftl: translation page %d decoded as %d", gtd[i].Idx, gotIdx)
		}
		for _, v := range slots {
			if v != mapcache.Unmapped {
				f.markValid(int64(v))
			}
		}
	}
	return done, nil
}

// gtdUsable reports whether a GTD map section can serve this FTL's
// configuration: the map must be paged and the page geometry must match.
func (f *FTL) gtdUsable(slotsPer int) bool {
	return f.cfg.MapCachePages != 0 && slotsPer == mapcache.SlotsFor(f.cfg.Nand.SectorSize)
}

// loadCheckpoint tries to decode the newest complete checkpoint found by
// the full scan. Chunks are grouped by the generation tag each chunk
// carries — an index-set check alone would accept a "complete-looking"
// interleaving of two generations — and a group is used only if its index
// set covers {0..total-1}, its stream checksum verifies, and its segment
// table still describes the device. It returns loaded=false (and no
// error) when no group qualifies — including on devices that do not store
// payloads.
func (f *FTL) loadCheckpoint(now sim.Time, chunks []ckptChunk) (bool, uint64, sim.Time, error) {
	if len(chunks) == 0 || !f.cfg.Nand.StoreData {
		return false, 0, now, nil
	}
	// Group chunk payloads by generation tag.
	type chunkPage struct {
		ckptChunk
		payload []byte
	}
	groups := make(map[uint64][]chunkPage)
	payloads := make([][]byte, len(chunks))
	if f.cfg.ReferenceDataPath {
		for i, c := range chunks {
			payload, _, done, err := f.devReadPage(now, c.addr)
			if err != nil {
				// A vanishing chunk disqualifies only its generation.
				continue
			}
			now = done
			payloads[i] = payload
		}
	} else {
		// Batched chunk load: each devReadPages call reads as far as it can;
		// a permanently failing chunk is skipped (it disqualifies only its
		// generation) and the batch resumes just past it.
		addrs := make([]nand.PageAddr, len(chunks))
		for i, c := range chunks {
			addrs[i] = c.addr
		}
		base := 0
		for base < len(addrs) {
			ds, _, k, done, err := f.devReadPages(now, addrs[base:])
			now = done
			copy(payloads[base:], ds[:k])
			base += k
			if err == nil {
				break
			}
			base++
		}
	}
	for i, c := range chunks {
		if payloads[i] == nil {
			continue
		}
		id, ok := ckpt.ChunkID(payloads[i])
		if !ok {
			continue
		}
		groups[id] = append(groups[id], chunkPage{c, payloads[i]})
	}
	// Try generations newest-first.
	ids := make([]uint64, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
	for _, id := range ids {
		group := groups[id]
		total := group[0].total
		if total == 0 || uint64(len(group)) < total {
			continue
		}
		byIdx := make(map[uint64]chunkPage, total)
		consistent := true
		for _, c := range group {
			if c.total != total || c.idx >= total {
				consistent = false
				break
			}
			byIdx[c.idx] = c
		}
		if !consistent || uint64(len(byIdx)) != total {
			continue // incomplete: some chunks were reclaimed or never written
		}
		ordered := make([][]byte, total)
		for i := uint64(0); i < total; i++ {
			ordered[i] = byIdx[i].payload
		}
		stream, err := ckpt.Join(id, ordered)
		if err != nil {
			continue
		}
		decID, ckptSeq, secs, err := ckpt.Decode(stream)
		if err != nil || decID != id {
			continue
		}
		mapEntries, gtdEnts, gtdSlots, table, err := decodeCheckpointSections(secs)
		if err != nil {
			continue
		}
		if gtdEnts != nil && !f.gtdUsable(gtdSlots) {
			continue // GTD layout this config cannot consume; scan replays instead
		}
		if _, ok := checkSegTable(f.dev, table); !ok {
			continue // the cleaner moved pre-cut-off blocks since; stale
		}
		f.loadMapEntries(mapEntries, gtdEnts)
		if now, err = f.markValidFromGTD(now, gtdEnts); err != nil {
			return false, 0, now, err
		}
		// Re-pin and re-anchor the winning generation so the cleaner keeps
		// honoring it after this reopen.
		f.anchorID = id
		f.anchorAddrs = nil
		for i := uint64(0); i < total; i++ {
			f.anchorAddrs = append(f.anchorAddrs, byIdx[i].addr)
		}
		for _, a := range f.anchorAddrs {
			f.ckptPins[a] = true
		}
		f.dev.SetAnchor(&nand.Anchor{ID: id, Addrs: f.anchorAddrs})
		return true, ckptSeq, now, nil
	}
	return false, 0, now, nil
}

// applyNewerEntries overlays post-checkpoint translations (last write wins)
// onto the checkpoint-loaded map.
func (f *FTL) applyNewerEntries(entries []scanEntry) {
	winners := make(map[uint64]scanEntry, len(entries))
	for _, e := range entries {
		if w, ok := winners[e.lba]; !ok || e.seq > w.seq {
			winners[e.lba] = e
		}
	}
	for lba, e := range winners {
		if prev, existed := f.fmap.Insert(lba, uint64(e.addr)); existed {
			f.markInvalid(int64(prev))
		}
		f.markValid(int64(e.addr))
	}
}

// replayEntries rebuilds the forward map from scanned data translations:
// last write (highest seq) wins per LBA, then the survivors are sorted by
// LBA and bulk-loaded bottom-up.
func (f *FTL) replayEntries(entries []scanEntry) {
	winners := make(map[uint64]scanEntry, len(entries))
	for _, e := range entries {
		if w, ok := winners[e.lba]; !ok || e.seq > w.seq {
			winners[e.lba] = e
		}
	}
	pairs := make([][2]uint64, 0, len(winners))
	for lba, e := range winners {
		pairs = append(pairs, [2]uint64{lba, uint64(e.addr)})
	}
	f.loadMapEntries(pairs, nil)
}
