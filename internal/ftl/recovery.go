package ftl

import (
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/ftlmap"
	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// scanEntry is one data translation found during the log scan.
type scanEntry struct {
	lba  uint64
	addr nand.PageAddr
	seq  uint64
}

// ckptChunk locates one checkpoint chunk on the log.
type ckptChunk struct {
	idx   uint64
	total uint64
	seq   uint64
	addr  nand.PageAddr
}

// Recover reconstructs an FTL from an existing device by scanning every
// segment's page headers. If the tail of the log holds a complete
// checkpoint and the device stores payloads, the forward map is decoded
// from it; otherwise the map is rebuilt by replaying translations with
// last-write-wins ordering and bulk-loading the sorted result — the
// paper's bottom-up reconstruction (§5.5.1).
func Recover(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time) (*FTL, sim.Time, error) {
	if err := cfg.Validate(); err != nil {
		return nil, now, err
	}
	if dev.Config() != cfg.Nand {
		return nil, now, fmt.Errorf("ftl: device geometry differs from config")
	}
	if sched == nil {
		sched = sim.NewScheduler()
	}
	f := &FTL{
		cfg:        cfg,
		dev:        dev,
		sched:      sched,
		fmap:       ftlmap.New(),
		validity:   bitmap.New(cfg.Nand.TotalPages()),
		gcVictim:   -1,
		segLastSeq: make([]uint64, cfg.Nand.Segments),
	}
	f.acct = newGCAcct(f)

	var (
		entries   []scanEntry
		chunks    []ckptChunk
		segMaxSeq = make([]uint64, cfg.Nand.Segments)
		segUsed   = make([]bool, cfg.Nand.Segments)
		maxSeq    uint64
		anyData   bool
	)
	for seg := 0; seg < cfg.Nand.Segments; seg++ {
		if dev.SegmentHealth(seg) == nand.Retired {
			// A retired segment was fully rescued before retirement; any
			// headers it still holds are stale copies that must not win
			// last-write-wins replay over the rescued ones.
			continue
		}
		oobs, done, err := f.devScanSegmentOOB(now, seg)
		if err != nil {
			return nil, now, fmt.Errorf("ftl: scanning segment %d: %w", seg, err)
		}
		now = done
		for idx, oob := range oobs {
			if oob == nil {
				continue
			}
			segUsed[seg] = true
			h, err := header.Unmarshal(oob)
			if err != nil {
				// Torn write at the crashed log tail: never acknowledged, so
				// skipping it loses nothing; the cleaner reclaims the page.
				continue
			}
			if h.Seq > segMaxSeq[seg] {
				segMaxSeq[seg] = h.Seq
			}
			if h.Seq > maxSeq {
				maxSeq = h.Seq
			}
			addr := dev.Addr(seg, idx)
			switch h.Type {
			case header.TypeData:
				anyData = true
				entries = append(entries, scanEntry{lba: h.LBA, addr: addr, seq: h.Seq})
			case header.TypeCheckpoint:
				chunks = append(chunks, ckptChunk{idx: h.LBA, total: h.Epoch, seq: h.Seq, addr: addr})
			}
		}
	}
	if !anyData && len(chunks) == 0 && maxSeq == 0 {
		// Fresh device: recovery degenerates to formatting.
		usedAny := false
		for _, u := range segUsed {
			usedAny = usedAny || u
		}
		if !usedAny {
			nf, err := New(cfg, sched)
			if err != nil {
				return nil, now, err
			}
			nf.dev = dev
			return nf, now, nil
		}
	}
	f.seq = maxSeq

	// Prefer the newest complete checkpoint, then replay any data written
	// after it (the device may have been reopened and written post-close).
	loaded, ckptSeq, t, err := f.loadCheckpoint(now, chunks)
	if err != nil {
		return nil, now, err
	}
	now = t
	if loaded {
		newer := entries[:0]
		for _, e := range entries {
			if e.seq > ckptSeq {
				newer = append(newer, e)
			}
		}
		f.applyNewerEntries(newer)
	} else {
		f.replayEntries(entries)
	}

	// Rebuild the log-order segment list (ascending max seq) and free pool.
	type segOrder struct {
		seg int
		seq uint64
	}
	var used []segOrder
	for seg := 0; seg < cfg.Nand.Segments; seg++ {
		switch {
		case dev.SegmentHealth(seg) == nand.Retired:
			// Belongs to neither pool: a grown bad block stays out of service.
		case segUsed[seg]:
			used = append(used, segOrder{seg, segMaxSeq[seg]})
		default:
			f.freeSegs = append(f.freeSegs, seg)
		}
	}
	sort.Slice(used, func(i, j int) bool { return used[i].seq < used[j].seq })
	for _, u := range used {
		f.usedSegs = append(f.usedSegs, u.seg)
	}
	copy(f.segLastSeq, segMaxSeq)

	// The head resumes at the newest segment if it still has room — and is
	// healthy; appending onto suspect media would repeat the failure that
	// made it suspect.
	if len(f.usedSegs) > 0 {
		last := f.usedSegs[len(f.usedSegs)-1]
		next := dev.NextFreeInSegment(last)
		if next < cfg.Nand.PagesPerSegment && dev.SegmentHealth(last) == nand.Healthy {
			f.headSeg, f.headIdx = last, next
		} else {
			if len(f.freeSegs) == 0 {
				return nil, now, ErrDeviceFull
			}
			f.headSeg = f.freeSegs[0]
			f.freeSegs = f.freeSegs[1:]
			f.headIdx = 0
			f.usedSegs = append(f.usedSegs, f.headSeg)
		}
	} else {
		if len(f.freeSegs) == 0 {
			return nil, now, ErrUnformatted
		}
		f.headSeg = f.freeSegs[0]
		f.freeSegs = f.freeSegs[1:]
		f.headIdx = 0
		f.usedSegs = append(f.usedSegs, f.headSeg)
	}
	// Track in usedSegs order so insertion stamps reproduce the oldest-first
	// tie-break of a scan-based selection.
	for _, s := range f.usedSegs {
		f.acct.track(s)
	}
	f.maybeScheduleGC(now)
	return f, now, nil
}

// loadCheckpoint tries to decode the newest complete checkpoint. It returns
// loaded=false (and no error) when none is usable — including on devices
// that do not store payloads. maxSeq is the newest sequence number covered
// by the checkpoint; data entries beyond it must be replayed on top.
func (f *FTL) loadCheckpoint(now sim.Time, chunks []ckptChunk) (bool, uint64, sim.Time, error) {
	if len(chunks) == 0 || !f.cfg.Nand.StoreData {
		return false, 0, now, nil
	}
	// Group by total+contiguous seq run: the newest checkpoint is the set of
	// chunks with the highest seq numbers. Sort descending by seq and take
	// the first `total` chunks; verify indices cover 0..total-1.
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].seq > chunks[j].seq })
	total := chunks[0].total
	maxSeq := chunks[0].seq
	if total == 0 || uint64(len(chunks)) < total {
		return false, 0, now, nil
	}
	sel := chunks[:total]
	seen := make(map[uint64]ckptChunk, total)
	for _, c := range sel {
		if c.total != total {
			return false, 0, now, nil // mixed generations: incomplete tail
		}
		seen[c.idx] = c
	}
	if uint64(len(seen)) != total {
		return false, 0, now, nil
	}
	var entries []ftlmap.Entry
	for i := uint64(0); i < total; i++ {
		c := seen[i]
		payload, _, done, err := f.devReadPage(now, c.addr)
		if err != nil {
			return false, 0, now, fmt.Errorf("ftl: reading checkpoint chunk %d: %w", i, err)
		}
		now = done
		pairs, err := decodeCheckpointChunk(payload)
		if err != nil {
			return false, 0, now, err
		}
		for _, p := range pairs {
			entries = append(entries, ftlmap.Entry{Key: p[0], Val: p[1]})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	f.fmap = ftlmap.BulkLoad(entries, 1.0)
	for _, e := range entries {
		f.markValid(int64(e.Val))
	}
	return true, maxSeq, now, nil
}

// applyNewerEntries overlays post-checkpoint translations (last write wins)
// onto the checkpoint-loaded map.
func (f *FTL) applyNewerEntries(entries []scanEntry) {
	winners := make(map[uint64]scanEntry, len(entries))
	for _, e := range entries {
		if w, ok := winners[e.lba]; !ok || e.seq > w.seq {
			winners[e.lba] = e
		}
	}
	for lba, e := range winners {
		if prev, existed := f.fmap.Insert(lba, uint64(e.addr)); existed {
			f.markInvalid(int64(prev))
		}
		f.markValid(int64(e.addr))
	}
}

// replayEntries rebuilds the forward map from scanned data translations:
// last write (highest seq) wins per LBA, then the survivors are sorted by
// LBA and bulk-loaded bottom-up.
func (f *FTL) replayEntries(entries []scanEntry) {
	winners := make(map[uint64]scanEntry, len(entries))
	for _, e := range entries {
		if w, ok := winners[e.lba]; !ok || e.seq > w.seq {
			winners[e.lba] = e
		}
	}
	sorted := make([]ftlmap.Entry, 0, len(winners))
	for lba, e := range winners {
		sorted = append(sorted, ftlmap.Entry{Key: lba, Val: uint64(e.addr)})
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	f.fmap = ftlmap.BulkLoad(sorted, 1.0)
	for _, e := range sorted {
		f.markValid(int64(e.Val))
	}
}
