package ftl

import (
	"bytes"
	"testing"

	"iosnap/internal/sim"
)

func TestRecoverAfterCrash(t *testing.T) {
	f := newTestFTL(t)
	model, now := fillAndChurn(t, f, 600, 60, 21)

	// Crash: no Close, no checkpoint. Recover from the raw device.
	r, now2, err := Recover(f.Config(), f.Device(), nil, now)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if now2 <= now {
		t.Fatal("recovery consumed no device time")
	}
	buf := make([]byte, r.SectorSize())
	for lba, version := range model {
		if _, err := r.Read(now2, lba, buf); err != nil {
			t.Fatalf("post-recovery Read(%d): %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(r.SectorSize(), lba, version)) {
			t.Fatalf("LBA %d wrong after recovery", lba)
		}
	}
	if r.MappedSectors() != len(model) {
		t.Fatalf("recovered %d mappings, want %d", r.MappedSectors(), len(model))
	}
}

func TestRecoveredFTLWritable(t *testing.T) {
	f := newTestFTL(t)
	model, now := fillAndChurn(t, f, 400, 40, 5)
	r, now, err := Recover(f.Config(), f.Device(), nil, now)
	if err != nil {
		t.Fatal(err)
	}
	ss := r.SectorSize()
	// Continue writing heavily; cleaning must still work.
	rng := sim.NewRNG(99)
	for i := 0; i < 400; i++ {
		r.Scheduler().RunUntil(now)
		lba := rng.Int63n(40)
		d, err := r.Write(now, lba, sectorPattern(ss, lba, byte(100+i)))
		if err != nil {
			t.Fatalf("post-recovery write %d: %v", i, err)
		}
		model[lba] = byte(100 + i)
		now = d
	}
	now = r.Scheduler().Drain(now)
	buf := make([]byte, ss)
	for lba, version := range model {
		if _, err := r.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, version)) {
			t.Fatalf("LBA %d wrong after post-recovery churn", lba)
		}
	}
}

func TestRecoverFromCheckpoint(t *testing.T) {
	f := newTestFTL(t)
	model, now := fillAndChurn(t, f, 300, 30, 8)
	now, err := f.Close(now)
	if err != nil {
		t.Fatal(err)
	}
	r, now, err := Recover(f.Config(), f.Device(), nil, now)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, r.SectorSize())
	for lba, version := range model {
		if _, err := r.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(r.SectorSize(), lba, version)) {
			t.Fatalf("LBA %d wrong after checkpoint recovery", lba)
		}
	}
	if r.MappedSectors() != len(model) {
		t.Fatalf("recovered %d mappings, want %d", r.MappedSectors(), len(model))
	}
}

func TestRecoverFreshDevice(t *testing.T) {
	f := newTestFTL(t)
	r, _, err := Recover(f.Config(), f.Device(), nil, 0)
	if err != nil {
		t.Fatalf("recover of fresh device: %v", err)
	}
	if r.MappedSectors() != 0 {
		t.Fatal("fresh recovery produced mappings")
	}
	if _, err := r.Write(0, 0, make([]byte, r.SectorSize())); err != nil {
		t.Fatalf("write after fresh recovery: %v", err)
	}
}

func TestRecoverGeometryMismatch(t *testing.T) {
	f := newTestFTL(t)
	other := testConfig()
	other.Nand.Segments = 8
	other.UserSectors = 64
	if _, _, err := Recover(other, f.Device(), nil, 0); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestRecoverEquivalentToLive(t *testing.T) {
	// Property: for several seeds, the recovered map must exactly match the
	// live FTL's map at crash time.
	for _, seed := range []uint64{1, 2, 3, 4} {
		f := newTestFTL(t)
		_, now := fillAndChurn(t, f, 500, 70, seed)
		live := make(map[uint64]uint64)
		f.fmap.All(func(k, v uint64) bool {
			live[k] = v
			return true
		})
		r, _, err := Recover(f.Config(), f.Device(), nil, now)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.MappedSectors() != len(live) {
			t.Fatalf("seed %d: recovered %d mappings, want %d", seed, r.MappedSectors(), len(live))
		}
		r.fmap.All(func(k, v uint64) bool {
			if live[k] != v {
				t.Fatalf("seed %d: LBA %d -> %d, live had %d", seed, k, v, live[k])
			}
			return true
		})
	}
}

func TestRecoverReplaysWritesAfterCheckpoint(t *testing.T) {
	// Close (checkpoint), recover, write more, crash, recover again: the
	// post-checkpoint writes must survive — the stale checkpoint may not
	// shadow them.
	f := newTestFTL(t)
	model, now := fillAndChurn(t, f, 200, 30, 44)
	now, err := f.Close(now)
	if err != nil {
		t.Fatal(err)
	}
	r1, now, err := Recover(f.Config(), f.Device(), nil, now)
	if err != nil {
		t.Fatal(err)
	}
	ss := r1.SectorSize()
	// Session 2: new writes after the checkpoint, then crash (no Close).
	for lba := int64(0); lba < 10; lba++ {
		r1.Scheduler().RunUntil(now)
		d, err := r1.Write(now, lba, sectorPattern(ss, lba, 199))
		if err != nil {
			t.Fatal(err)
		}
		model[lba] = 199
		now = d
	}
	now = r1.Scheduler().Drain(now)
	r2, now, err := Recover(r1.Config(), r1.Device(), nil, now)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	for lba, version := range model {
		if _, err := r2.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, version)) {
			t.Fatalf("LBA %d lost post-checkpoint write (want version %d)", lba, version)
		}
	}
}
