package ftl

import (
	"fmt"

	"iosnap/internal/ftlmap"
	"iosnap/internal/header"
	"iosnap/internal/mapcache"
	"iosnap/internal/nand"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// Flash-resident paged mapping table (DESIGN.md §13), vanilla-FTL side.
// The forward map is cut into translation pages (mapcache); this file is
// the FTL-side glue: charged foreground faults through the batched read
// path, CLOCK eviction with dirty write-back through the log head, and the
// pin bookkeeping that protects on-flash translation pages from the
// cleaner (they are never valid in the bitmap, exactly like checkpoint
// chunks).

// newActiveMap builds the forward map per the configured layout: the
// legacy in-RAM tree, or the paged translation-page cache (bounded when
// MapCachePages > 0, unbounded — and therefore lockstep bit-exact with the
// tree — when negative).
func (f *FTL) newActiveMap() *mapcache.Map {
	if f.cfg.MapCachePages == 0 {
		return mapcache.NewTree()
	}
	return mapcache.NewPaged(mapcache.SlotsFor(f.cfg.Nand.SectorSize), f.cfg.mapLimit(), f.newMapFault())
}

// recoveredMap builds the forward map from recovery output: sorted entries
// (the full scan or a legacy full-map checkpoint) plus, in bounded-paged
// mode, an optional GTD from a paged checkpoint. GTD pages stay on flash
// and fault in lazily; entries become resident dirty pages (the cache may
// start over-limit — the first foreground op shrinks it).
func (f *FTL) recoveredMap(entries []ftlmap.Entry, gtd []mapcache.GTDEnt) *mapcache.Map {
	if f.cfg.MapCachePages == 0 {
		return mapcache.FromTree(ftlmap.BulkLoad(entries, 1.0))
	}
	m := mapcache.NewPaged(mapcache.SlotsFor(f.cfg.Nand.SectorSize), f.cfg.mapLimit(), f.newMapFault())
	c := m.Paged()
	if len(gtd) > 0 {
		c.LoadGTD(gtd)
		for _, ent := range gtd {
			f.mapPins[nand.PageAddr(ent.Addr)] = ent.Idx
		}
	}
	c.LoadEntries(entries)
	return m
}

// newMapFault serves host-side translation-page faults (background
// decodes, cleaner fix-ups): an untimed payload read straight off the
// device. Foreground faults never come here — they go through mapEnsure's
// charged batch read before the map operation runs.
func (f *FTL) newMapFault() mapcache.FaultFunc {
	return func(idx, addr uint64) ([]uint64, error) {
		payload, err := f.dev.PageData(nand.PageAddr(addr))
		if err != nil {
			return nil, err
		}
		gotIdx, slots, err := mapcache.DecodePage(payload)
		if err != nil {
			return nil, err
		}
		if gotIdx != idx {
			return nil, fmt.Errorf("ftl: translation page %d decoded as %d", idx, gotIdx)
		}
		return slots, nil
	}
}

// mapEnsure makes the translation pages covering [lba, lba+n) resident
// before a foreground operation, charging the fault reads to the
// operation's timeline, then evicts back down to the residency limit.
// Tree-mode and unbounded maps pass through untouched (no GTD entries ⇒
// no misses ⇒ no added virtual time).
func (f *FTL) mapEnsure(now sim.Time, lba uint64, n int) (sim.Time, error) {
	c := f.fmap.Paged()
	if c == nil {
		return now, nil
	}
	f.ws.mapMiss = c.TouchRange(lba, n, f.ws.mapMiss[:0])
	now, err := f.mapFill(now, c, f.ws.mapMiss)
	if err != nil {
		return now, err
	}
	if !c.Bounded() {
		return now, nil
	}
	return f.mapShrink(now, c, c.PageOf(lba), c.PageOf(lba+uint64(n)-1))
}

// mapEnsureRange is mapEnsure for sparse spans (trims): only translation
// pages that exist are faulted, so a discard over a huge hole costs
// O(existing pages), not O(range).
func (f *FTL) mapEnsureRange(now sim.Time, lo, hi uint64) (sim.Time, error) {
	c := f.fmap.Paged()
	if c == nil {
		return now, nil
	}
	loIdx, hiIdx := c.PageOf(lo), c.PageOf(hi-1)
	f.ws.mapMiss = c.MissingInRange(loIdx, hiIdx, f.ws.mapMiss[:0])
	now, err := f.mapFill(now, c, f.ws.mapMiss)
	if err != nil {
		return now, err
	}
	if !c.Bounded() {
		return now, nil
	}
	return f.mapShrink(now, c, loIdx, hiIdx)
}

// mapFill faults the missed translation pages with one charged batch read
// and installs the decoded slots.
func (f *FTL) mapFill(now sim.Time, c *mapcache.Cache, miss []uint64) (sim.Time, error) {
	if len(miss) == 0 {
		return now, nil
	}
	addrs := f.ws.mapAddrs[:0]
	for _, idx := range miss {
		a, ok := c.AddrOf(idx)
		if !ok {
			panic(fmt.Sprintf("ftl: missed translation page %d has no flash address", idx))
		}
		addrs = append(addrs, nand.PageAddr(a))
	}
	f.ws.mapAddrs = addrs
	datas, _, k, done, err := f.devReadPages(now, addrs)
	for i := 0; i < k; i++ {
		gotIdx, slots, derr := mapcache.DecodePage(datas[i])
		if derr != nil {
			return done, fmt.Errorf("ftl: translation page %d at %d: %w", miss[i], addrs[i], derr)
		}
		if gotIdx != miss[i] {
			return done, fmt.Errorf("ftl: translation page %d decoded as %d", miss[i], gotIdx)
		}
		c.Absorb(miss[i], slots)
	}
	if err != nil {
		return done, fmt.Errorf("ftl: faulting translation page %d: %w", miss[k], err)
	}
	return done, nil
}

// mapShrink evicts resident translation pages until the cache is back
// under its limit, skipping the pages the in-flight operation needs
// ([keepLo, keepHi]). Eviction follows the CLOCK hand: emptied pages are
// dropped everywhere (their flash copy is unpinned and becomes garbage),
// dirty ones are flushed through the log head first. A failed flush stops
// shrinking (soft over-limit; the next operation retries).
func (f *FTL) mapShrink(now sim.Time, c *mapcache.Cache, keepLo, keepHi uint64) (sim.Time, error) {
	for c.Resident() > c.Limit() {
		idx, ok := c.ClockVictim(func(idx uint64) bool {
			return idx >= keepLo && idx <= keepHi
		})
		if !ok {
			return now, nil
		}
		dirty, live, _ := c.PageState(idx)
		if live == 0 {
			if prev, had := c.DropPage(idx); had {
				delete(f.mapPins, nand.PageAddr(prev))
			}
			continue
		}
		if dirty {
			var err error
			now, err = f.flushMapPage(now, c, idx)
			if err != nil {
				return now, nil
			}
		}
		c.DropResident(idx)
		c.NoteEviction()
	}
	return now, nil
}

// flushMapPage writes one dirty translation page through the log head:
// an ordinary log append under a TypeMapPage header (LBA = page index,
// epoch 0 — translation pages are never valid in the bitmap; the pin in
// f.mapPins is their only cleaning protection).
func (f *FTL) flushMapPage(now sim.Time, c *mapcache.Cache, idx uint64) (sim.Time, error) {
	addr, now, err := f.allocPage(now)
	if err != nil {
		return now, fmt.Errorf("ftl: allocating translation page: %w", err)
	}
	f.seq++
	h := header.Header{Type: header.TypeMapPage, LBA: idx, Epoch: 0, Seq: f.seq}
	payload := mapcache.EncodePage(idx, f.seq, c.Slots(idx), f.cfg.Nand.SectorSize)
	done, err := f.devProgramPage(now, addr, payload, h.Marshal())
	if err != nil {
		f.ungetPage(addr)
		if retry.MediaFailure(err) {
			f.sealHead()
		}
		return now, fmt.Errorf("ftl: writing translation page %d: %w", idx, err)
	}
	f.segLastSeq[f.dev.SegmentOf(addr)] = f.seq
	if prev, had := c.MarkFlushed(idx, uint64(addr)); had {
		delete(f.mapPins, nand.PageAddr(prev))
	}
	f.mapPins[addr] = idx
	c.NoteFlushed(1)
	return done, nil
}

// flushAllMapPages writes back every dirty translation page (checkpoint
// prologue: the GTD a checkpoint serializes must reference current
// copies). It loops to convergence because a forced clean inside a flush
// can re-point mappings on already-flushed pages (gcFixup inserts through
// the live map, re-dirtying them).
func (f *FTL) flushAllMapPages(now sim.Time, c *mapcache.Cache) (sim.Time, error) {
	for {
		dirty := c.DirtyPages()
		if len(dirty) == 0 {
			return now, nil
		}
		for _, idx := range dirty {
			var err error
			now, err = f.flushMapPage(now, c, idx)
			if err != nil {
				return now, err
			}
		}
	}
}

// moveMapPin re-points a translation page's pin and GTD entry after the
// cleaner copied it from old to dst.
func (f *FTL) moveMapPin(old, dst nand.PageAddr) {
	idx, ok := f.mapPins[old]
	if !ok {
		return
	}
	delete(f.mapPins, old)
	f.mapPins[dst] = idx
	if c := f.fmap.Paged(); c != nil {
		c.Relocate(idx, uint64(old), uint64(dst))
	}
}
