package ftl

import (
	"bytes"
	"errors"
	"testing"

	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// testConfig returns a small, fast geometry with payload storage for
// content verification: 16 segments × 16 pages × 512 B.
func testConfig() Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 16
	nc.Segments = 16
	nc.Channels = 2
	nc.StoreData = true
	nc.ReadLatency = 2 * sim.Microsecond
	nc.ProgramLatency = 4 * sim.Microsecond
	nc.EraseLatency = 50 * sim.Microsecond
	cfg := DefaultConfig(nc)
	cfg.GCWindow = 10 * sim.Millisecond
	return cfg
}

func newTestFTL(t *testing.T) *FTL {
	t.Helper()
	f, err := New(testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// sectorPattern builds a recognizable sector payload for lba/version.
func sectorPattern(ss int, lba int64, version byte) []byte {
	b := make([]byte, ss)
	for i := range b {
		b[i] = byte(lba) ^ byte(lba>>8) ^ version ^ byte(i)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 20; lba++ {
		d, err := f.Write(now, lba, sectorPattern(ss, lba, 1))
		if err != nil {
			t.Fatalf("Write(%d): %v", lba, err)
		}
		now = d
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 20; lba++ {
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatalf("Read(%d): %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 1)) {
			t.Fatalf("LBA %d content mismatch", lba)
		}
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	f := newTestFTL(t)
	buf := bytes.Repeat([]byte{0xFF}, f.SectorSize())
	if _, err := f.Read(0, 99, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten sector did not read as zeros")
		}
	}
}

func TestOverwriteReturnsNewest(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, _ := f.Write(0, 5, sectorPattern(ss, 5, 1))
	now, _ = f.Write(now, 5, sectorPattern(ss, 5, 2))
	buf := make([]byte, ss)
	if _, err := f.Read(now, 5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 5, 2)) {
		t.Fatal("read returned stale data after overwrite")
	}
	if f.MappedSectors() != 1 {
		t.Fatalf("MappedSectors = %d", f.MappedSectors())
	}
}

func TestMultiSectorIO(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	data := append(sectorPattern(ss, 10, 1), sectorPattern(ss, 11, 1)...)
	now, err := f.Write(0, 10, data)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2*ss)
	if _, err := f.Read(now, 10, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("multi-sector round trip failed")
	}
}

func TestIOErrors(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	if _, err := f.Write(0, -1, make([]byte, ss)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative lba: %v", err)
	}
	if _, err := f.Write(0, f.Sectors(), make([]byte, ss)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("past-end lba: %v", err)
	}
	if _, err := f.Write(0, 0, make([]byte, ss-1)); !errors.Is(err, ErrBadLength) {
		t.Fatalf("short buffer: %v", err)
	}
	if _, err := f.Read(0, 0, make([]byte, 0)); !errors.Is(err, ErrBadLength) {
		t.Fatalf("empty read: %v", err)
	}
}

func TestClosedRejectsIO(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	if _, err := f.Close(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, 0, make([]byte, ss)); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if _, err := f.Close(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestTrim(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, _ := f.Write(0, 7, sectorPattern(ss, 7, 1))
	now, err := f.Trim(now, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{0xFF}, ss)
	if _, err := f.Read(now, 7, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("trimmed sector did not read as zeros")
		}
	}
	if f.Stats().Trims != 1 {
		t.Fatal("trim not counted")
	}
}

// fillAndChurn writes enough churn to force segment cleaning, maintaining a
// model of expected contents. It returns the model and the final time.
func fillAndChurn(t *testing.T, f *FTL, writes int, space int64, seed uint64) (map[int64]byte, sim.Time) {
	t.Helper()
	rng := sim.NewRNG(seed)
	model := make(map[int64]byte)
	ss := f.SectorSize()
	now := sim.Time(0)
	for i := 0; i < writes; i++ {
		f.Scheduler().RunUntil(now)
		lba := rng.Int63n(space)
		version := byte(i)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, version))
		if err != nil {
			t.Fatalf("write %d (lba %d): %v", i, lba, err)
		}
		model[lba] = version
		now = d
	}
	now = f.Scheduler().Drain(now)
	return model, now
}

func TestGCPreservesData(t *testing.T) {
	f := newTestFTL(t)
	// 16 segs × 16 pages = 256 physical; user = 208. Write 1000 sectors over
	// 100 LBAs: heavy churn, many cleanings.
	model, now := fillAndChurn(t, f, 1000, 100, 42)
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("churn did not trigger any cleaning")
	}
	buf := make([]byte, f.SectorSize())
	for lba, version := range model {
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatalf("Read(%d): %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(f.SectorSize(), lba, version)) {
			t.Fatalf("LBA %d corrupted after cleaning", lba)
		}
	}
	if st.WriteAmplify <= 1.0 {
		t.Fatalf("write amplification %v not > 1 after cleaning", st.WriteAmplify)
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	f := newTestFTL(t)
	_, now := fillAndChurn(t, f, 2000, 50, 7)
	_ = now
	if f.FreeSegments() == 0 {
		t.Fatal("cleaner never reclaimed a segment")
	}
	// Liveness: mapped sectors is bounded by the LBA space touched.
	if f.MappedSectors() > 50 {
		t.Fatalf("MappedSectors = %d", f.MappedSectors())
	}
}

func TestValidityConsistentWithMap(t *testing.T) {
	f := newTestFTL(t)
	_, _ = fillAndChurn(t, f, 800, 80, 13)
	// Every mapped LBA's physical page must be valid and hold that LBA.
	count := 0
	f.fmap.All(func(lba, addr uint64) bool {
		count++
		if !f.validity.Test(int64(addr)) {
			t.Fatalf("LBA %d maps to invalid page %d", lba, addr)
		}
		if _, err := f.dev.PageOOB(nand.PageAddr(addr)); err != nil {
			t.Fatalf("LBA %d page %d unreadable: %v", lba, addr, err)
		}
		return true
	})
	// And the validity population must equal the map population (vanilla has
	// exactly one live page per mapping).
	if got := f.validity.Count(); got != count {
		t.Fatalf("validity bits %d != mappings %d", got, count)
	}
}

func TestDeviceFullOfLiveData(t *testing.T) {
	cfg := testConfig()
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := f.SectorSize()
	now := sim.Time(0)
	// Write every user sector once (all live), then churn: must not error,
	// must clean, and must preserve.
	for lba := int64(0); lba < f.Sectors(); lba++ {
		f.Scheduler().RunUntil(now)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, 0))
		if err != nil {
			t.Fatalf("fill write %d: %v", lba, err)
		}
		now = d
	}
	for i := 0; i < 300; i++ {
		f.Scheduler().RunUntil(now)
		lba := int64(i) % 100 // churn only the low LBAs; high ones stay cold
		d, err := f.Write(now, lba, sectorPattern(ss, lba, 1))
		if err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
		now = d
	}
	buf := make([]byte, ss)
	if _, err := f.Read(now, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 0, 1)) {
		t.Fatal("churned sector lost")
	}
	if _, err := f.Read(now, f.Sectors()-1, buf); err != nil {
		t.Fatal(err)
	}
	// The high sectors were only written in the fill pass.
	if !bytes.Equal(buf, sectorPattern(ss, f.Sectors()-1, 0)) {
		t.Fatal("cold sector lost during cleaning")
	}
}

func TestStatsCounting(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, _ := f.Write(0, 0, make([]byte, 2*ss))
	if _, err := f.Read(now, 0, make([]byte, ss)); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.UserWrites != 2 || st.UserReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesWritten != int64(2*ss) || st.BytesRead != int64(ss) {
		t.Fatalf("bytes = %+v", st)
	}
	if st.MapMemory <= 0 {
		t.Fatal("MapMemory not populated")
	}
}

func TestWriteLatencyReasonable(t *testing.T) {
	// A single 512 B write on an idle device should take roughly the program
	// latency (plus small CPU/bus costs), not milliseconds.
	f := newTestFTL(t)
	done, err := f.Write(0, 0, make([]byte, f.SectorSize()))
	if err != nil {
		t.Fatal(err)
	}
	lat := done.Sub(0)
	min := testConfig().Nand.ProgramLatency
	if lat < min || lat > 3*min {
		t.Fatalf("idle write latency %v outside [%v, %v]", lat, min, 3*min)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.UserSectors = cfg.Nand.TotalPages() // no over-provisioning
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("config without over-provisioning accepted")
	}
	cfg = testConfig()
	cfg.GCChunk = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("zero GCChunk accepted")
	}
	cfg = testConfig()
	cfg.ReserveSegments = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("zero reserve accepted")
	}
}

func TestForceCleanVanilla(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 32; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	for lba := int64(0); lba < 8; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 2))
	}
	target := f.UsedSegments()[0]
	if err := f.ForceClean(now, target); err != nil {
		t.Fatalf("ForceClean: %v", err)
	}
	if !f.CleaningActive() {
		t.Fatal("cleaning not active")
	}
	now = f.Scheduler().Drain(now)
	if f.Device().ProgrammedInSegment(target) != 0 {
		t.Fatal("target not erased")
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 32; lba++ {
		want := byte(1)
		if lba < 8 {
			want = 2
		}
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, want)) {
			t.Fatalf("LBA %d wrong after forced clean", lba)
		}
	}
	if err := f.ForceClean(now, 999); err == nil {
		t.Fatal("bad segment accepted")
	}
}
