package ftl

// Incremental valid-page accounting for the vanilla cleaner.
//
// The vanilla FTL has a single validity bitmap, so per-segment valid counts
// can be maintained exactly on every bit flip — there is no epoch set to go
// stale, hence no generation stamps or cache rebuilds (contrast with the
// snapshot-aware gcAcct in package iosnap). Victim selection becomes O(log S)
// for the greedy policy (a min-valid heap) and O(S) for cost-benefit (a
// counter scan), instead of O(S × pages-per-segment) bitmap popcounts per
// decision.
//
// Determinism: the old selectVictim scanned usedSegs oldest-first and kept
// the first strict maximum. The heap reproduces that order by breaking
// valid-count ties on a monotone insertion stamp; segments are tracked in
// the order they enter usedSegs, and removals never reorder survivors, so
// stamp order always equals usedSegs order.

// segCounter is one tracked (in-use) segment's heap entry.
type segCounter struct {
	seg     int
	stamp   uint64 // monotone tracking order; ties on valid break oldest-first
	heapIdx int
}

// gcAcct holds the per-segment counters and the greedy selection heap.
type gcAcct struct {
	f     *FTL
	valid []int         // valid pages per segment; exact at all times
	bySeg []*segCounter // tracked segments by index (nil = not tracked)
	heap  []*segCounter // min-heap: valid asc, then stamp asc
	stamp uint64
}

func newGCAcct(f *FTL) *gcAcct {
	return &gcAcct{
		f:     f,
		valid: make([]int, f.cfg.Nand.Segments),
		bySeg: make([]*segCounter, f.cfg.Nand.Segments),
	}
}

// track registers a segment that just entered usedSegs.
func (a *gcAcct) track(seg int) {
	if a.bySeg[seg] != nil {
		return
	}
	a.stamp++
	e := &segCounter{seg: seg, stamp: a.stamp}
	a.bySeg[seg] = e
	a.heapPush(e)
}

// untrack drops a segment that left usedSegs (erased or retired). Nil-safe:
// retirement may hit segments that were already in the free pool.
func (a *gcAcct) untrack(seg int) {
	e := a.bySeg[seg]
	if e == nil {
		return
	}
	a.heapRemove(e)
	a.bySeg[seg] = nil
}

func (a *gcAcct) validCount(seg int) int { return a.valid[seg] }

// onSet / onClear keep the counters exact; FTL.markValid / markInvalid
// guarantee each call corresponds to a real bit transition.
func (a *gcAcct) onSet(p int64) {
	seg := int(p) / a.f.cfg.Nand.PagesPerSegment
	a.valid[seg]++
	if e := a.bySeg[seg]; e != nil {
		a.heapFix(e)
	}
}

func (a *gcAcct) onClear(p int64) {
	seg := int(p) / a.f.cfg.Nand.PagesPerSegment
	a.valid[seg]--
	if e := a.bySeg[seg]; e != nil {
		a.heapFix(e)
	}
}

// onRunDelta applies delta bit transitions at once for a run contained in
// the segment holding page p — the batched data path's bulk counterpart of
// onSet/onClear (callers pass the number of bits that actually flipped).
func (a *gcAcct) onRunDelta(p int64, delta int) {
	seg := int(p) / a.f.cfg.Nand.PagesPerSegment
	a.valid[seg] += delta
	if e := a.bySeg[seg]; e != nil {
		a.heapFix(e)
	}
}

// bestGreedy returns the cleanable segment with the most invalid pages
// (fewest valid), oldest-first on ties — or nil when nothing is reclaimable.
// The log head and an in-flight victim are parked aside during the search.
func (a *gcAcct) bestGreedy() *segCounter {
	f := a.f
	var parked []*segCounter
	var best *segCounter
	for len(a.heap) > 0 {
		top := a.heap[0]
		// A victim must itself hold reclaimable pages: cleaning a segment
		// that is fully valid — counting pinned checkpoint chunks, which the
		// cleaner copies but can never invalidate — reclaims nothing, burns
		// an erase, and (picked repeatedly) would wedge the emergency-clean
		// loop shuffling pins from segment to segment.
		if top.seg == f.headSeg || top.seg == f.gcVictim ||
			f.cfg.Nand.PagesPerSegment-a.valid[top.seg]-f.pinnedInSeg(top.seg) <= 0 {
			a.heapRemove(top)
			parked = append(parked, top)
			continue
		}
		best = top
		break
	}
	for _, e := range parked {
		a.heapPush(e)
	}
	return best
}

// bestCostBenefit scans usedSegs oldest-first with the classic LFS
// benefit/cost score over the cached counters. O(S), no bitmap walks.
func (a *gcAcct) bestCostBenefit() *segCounter {
	f := a.f
	pps := f.cfg.Nand.PagesPerSegment
	var best *segCounter
	bestScore := -1.0
	for _, seg := range f.usedSegs {
		if seg == f.headSeg || seg == f.gcVictim {
			continue
		}
		valid := a.valid[seg]
		invalid := pps - valid - f.pinnedInSeg(seg)
		if invalid <= 0 {
			continue
		}
		score := victimScore(VictimCostBenefit, invalid, valid, f.seq, f.segLastSeq[seg])
		if score > bestScore {
			best, bestScore = a.bySeg[seg], score
		}
	}
	return best
}

// ---- heap (min by valid count, then by insertion stamp) ----

func (a *gcAcct) better(x, y *segCounter) bool {
	vx, vy := a.valid[x.seg], a.valid[y.seg]
	if vx != vy {
		return vx < vy
	}
	return x.stamp < y.stamp
}

func (a *gcAcct) heapSwap(i, j int) {
	a.heap[i], a.heap[j] = a.heap[j], a.heap[i]
	a.heap[i].heapIdx = i
	a.heap[j].heapIdx = j
}

func (a *gcAcct) heapPush(e *segCounter) {
	e.heapIdx = len(a.heap)
	a.heap = append(a.heap, e)
	a.siftUp(e.heapIdx)
}

func (a *gcAcct) heapRemove(e *segCounter) {
	i := e.heapIdx
	last := len(a.heap) - 1
	if i != last {
		a.heapSwap(i, last)
	}
	a.heap = a.heap[:last]
	e.heapIdx = -1
	if i < last {
		a.heapFix(a.heap[i])
	}
}

func (a *gcAcct) heapFix(e *segCounter) {
	i := e.heapIdx
	a.siftUp(i)
	a.siftDown(e.heapIdx)
}

func (a *gcAcct) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !a.better(a.heap[i], a.heap[parent]) {
			return
		}
		a.heapSwap(i, parent)
		i = parent
	}
}

func (a *gcAcct) siftDown(i int) {
	n := len(a.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && a.better(a.heap[l], a.heap[min]) {
			min = l
		}
		if r < n && a.better(a.heap[r], a.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		a.heapSwap(i, min)
		i = min
	}
}
