package ftl

import (
	"fmt"

	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

// ForceClean schedules a paced background clean of a specific segment (the
// experimental methodology of the paper's Table 4: "we force the cleaner to
// pick up the segment which was just written"). Use CleaningActive to
// observe completion.
func (f *FTL) ForceClean(now sim.Time, seg int) error {
	if f.closed {
		return ErrClosed
	}
	if f.gcActive {
		return fmt.Errorf("ftl: cleaner already active")
	}
	if seg < 0 || seg >= f.cfg.Nand.Segments || seg == f.headSeg {
		return fmt.Errorf("ftl: segment %d not cleanable", seg)
	}
	found := false
	for _, s := range f.usedSegs {
		if s == seg {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("ftl: segment %d not in use", seg)
	}
	valid := f.acct.validCount(seg)
	quanta := (valid + f.cfg.GCChunk - 1) / f.cfg.GCChunk
	f.gcActive = true
	f.gcVictim = seg
	f.sched.Schedule(now, &gcTask{
		f:       f,
		victim:  seg,
		pacer:   ratelimit.NewPacer(now, quanta, f.cfg.GCWindow),
		started: now,
	})
	return nil
}

// CleaningActive reports whether a cleaner task is in flight.
func (f *FTL) CleaningActive() bool { return f.gcActive }

// UsedSegments returns the segments currently holding data, oldest first
// (the log head is last).
func (f *FTL) UsedSegments() []int { return append([]int(nil), f.usedSegs...) }
