// Package ftl implements the vanilla log-structured FTL the paper builds
// on: the Fusion-io Virtual Storage Layer as described in §5.2 — a host-
// memory B+tree forward map, a validity bitmap, Remap-on-Write log
// appends, a greedy paced segment cleaner, checkpoint on clean shutdown,
// and crash recovery by log scan.
//
// This package has no snapshot support at all; it is the baseline
// ("Vanilla") column of the paper's Table 2 and Table 4. Package iosnap
// extends the same design with epochs, snapshot trees, and CoW validity
// maps.
package ftl

import (
	"errors"
	"fmt"

	"iosnap/internal/bitmap"
	"iosnap/internal/mapcache"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// Errors returned by FTL operations.
var (
	ErrOutOfRange  = errors.New("ftl: LBA out of range")
	ErrBadLength   = errors.New("ftl: buffer not a multiple of sector size")
	ErrClosed      = errors.New("ftl: device closed")
	ErrDeviceFull  = errors.New("ftl: no reclaimable space")
	ErrUnformatted = errors.New("ftl: device holds no valid log")
	// ErrOutOfSpace is graceful degradation: new writes are shed because the
	// free pool is down to the rescue reserve and cleaning cannot refill it.
	// Reads, trims, and background cleaning keep running, and writes resume
	// automatically once reclaimed space lifts the pool above the reserve.
	ErrOutOfSpace = errors.New("ftl: out of space (degraded: writes shed, reads still served)")
)

// Config parameterizes the FTL above the raw NAND geometry.
type Config struct {
	Nand nand.Config

	// UserSectors is the advertised logical capacity. It must leave
	// over-provisioning headroom below the physical capacity or the cleaner
	// cannot make progress; Default leaves 1/8 plus the reserve.
	UserSectors int64

	// ReserveSegments triggers background cleaning when the free-segment
	// pool drops to this level. Writes that find the pool down to one
	// segment force synchronous cleaning.
	ReserveSegments int

	// GCWindow is the interval over which the cleaner paces the copy-forward
	// of one victim segment.
	GCWindow sim.Duration

	// GCChunk is the number of pages the cleaner copies per quantum.
	GCChunk int

	// VictimPolicy selects how the cleaner picks segments (§5.2.3: "the
	// segment to erase is chosen on the basis of ... invalid data ... and
	// the relative age of the blocks").
	VictimPolicy VictimPolicy

	// MapCPUCost models the host CPU cost of one forward-map descent on the
	// I/O path. A multi-sector request is charged once per *leaf* its run
	// spans in a maximally-packed tree (ftlmap.RunSpan), not once per sector — the batched data
	// path's cost model (DESIGN.md §10).
	MapCPUCost sim.Duration

	// MapCachePages selects the forward map's memory layout (DESIGN.md
	// §13). 0 (the default) keeps the in-RAM B+tree. Non-zero switches to
	// the flash-resident paged map: translation pages of
	// mapcache.SlotsFor(SectorSize) slots each, a RAM-pinned global
	// translation directory, and a CLOCK cache of resident pages. A
	// positive value bounds the cache to that many resident translation
	// pages — dirty pages write back through the log head on eviction and
	// the map's host footprint becomes O(cache + GTD) instead of O(map) —
	// and requires a data-storing device (Nand.StoreData). A negative
	// value runs the paged layout cache-unbounded: nothing is ever written
	// to flash, which keeps it lockstep bit-exact with the tree.
	MapCachePages int

	// ReferenceDataPath selects the per-sector reference implementation of
	// the data path: per-key map operations, per-bit validity flips, and
	// per-page device calls, all on the exact virtual-time skeleton the
	// batched path uses. It exists to pin the batched path's semantics (the
	// equivalence tests run every workload both ways) and as the baseline
	// the data-path benchmarks compare against.
	ReferenceDataPath bool

	// MergeCPUPerBlock models the cleaner's host CPU cost to determine one
	// block's validity. The vanilla FTL consults a single bitmap; the
	// snapshot FTL pays this per epoch merged (Table 4's "validity merge").
	MergeCPUPerBlock sim.Duration

	// Retry bounds per-NAND-operation retries of transient media errors.
	// The zero value disables retrying.
	Retry retry.Policy

	// RescueReserve is the number of free segments the write path must leave
	// untouched: headroom that keeps the cleaner and segment rescue able to
	// make progress even when users have filled the device. Writes that
	// would dip into the reserve (and cannot force-clean their way out) are
	// shed with ErrOutOfSpace. 0 behaves like the historical floor of 1.
	RescueReserve int

	// CheckpointInterval arms periodic background checkpointing: once at
	// least this much virtual time has passed since the last checkpoint, the
	// next head advance starts a paced checkpoint task. 0 disables the
	// periodic mode (Close still writes a synchronous checkpoint). Periodic
	// checkpoints only run when the NAND stores payloads
	// (nand.Config.StoreData) — without payloads a checkpoint can never be
	// read back.
	CheckpointInterval sim.Duration

	// CheckpointLimit paces the background checkpoint task's chunk
	// programs, like the scrubber's budget: after Work time spent
	// programming chunks, the task sleeps Sleep. The zero value is
	// unlimited.
	CheckpointLimit ratelimit.WorkSleep
}

// DefaultConfig returns a config over the given NAND geometry with the
// calibrated defaults used throughout the experiments.
func DefaultConfig(nc nand.Config) Config {
	phys := nc.TotalPages()
	reserve := nc.Segments / 16
	if reserve < 2 {
		reserve = 2
	}
	user := phys * 7 / 8
	// Never advertise into the reserve segments.
	maxUser := int64(nc.Segments-reserve-1) * int64(nc.PagesPerSegment)
	if user > maxUser {
		user = maxUser
	}
	return Config{
		Nand:             nc,
		UserSectors:      user,
		ReserveSegments:  reserve,
		GCWindow:         10 * sim.Second,
		GCChunk:          32,
		MapCPUCost:       300 * sim.Nanosecond,
		MergeCPUPerBlock: 15 * sim.Nanosecond,
		Retry:            retry.Default(),
		RescueReserve:    2,
	}
}

// dataReserve is the free-segment floor user writes may not cross; the
// historical behaviour (keep one segment for the cleaner) is the minimum.
func (c Config) dataReserve() int {
	if c.RescueReserve < 1 {
		return 1
	}
	return c.RescueReserve
}

// Validate checks config consistency.
func (c Config) Validate() error {
	if err := c.Nand.Validate(); err != nil {
		return err
	}
	if c.UserSectors <= 0 {
		return fmt.Errorf("ftl: UserSectors %d must be positive", c.UserSectors)
	}
	if c.UserSectors >= c.Nand.TotalPages() {
		return fmt.Errorf("ftl: UserSectors %d leaves no over-provisioning (physical %d)",
			c.UserSectors, c.Nand.TotalPages())
	}
	if c.ReserveSegments < 1 || c.ReserveSegments >= c.Nand.Segments {
		return fmt.Errorf("ftl: ReserveSegments %d out of range", c.ReserveSegments)
	}
	if c.GCChunk <= 0 {
		return fmt.Errorf("ftl: GCChunk %d must be positive", c.GCChunk)
	}
	if c.RescueReserve < 0 || c.RescueReserve >= c.Nand.Segments {
		return fmt.Errorf("ftl: RescueReserve %d out of range", c.RescueReserve)
	}
	if c.MapCachePages > 0 && !c.Nand.StoreData {
		return fmt.Errorf("ftl: MapCachePages %d requires a data-storing device (translation pages live on flash)", c.MapCachePages)
	}
	return nil
}

// mapLimit converts MapCachePages to the cache's residency-limit parameter
// (<=0 = unbounded).
func (c Config) mapLimit() int {
	if c.MapCachePages < 0 {
		return 0
	}
	return c.MapCachePages
}

// Stats counts FTL-level activity.
type Stats struct {
	UserReads    int64 // sectors read by the user (not calls)
	UserWrites   int64 // sectors written by the user (not calls)
	BytesRead    int64
	BytesWritten int64
	Trims        int64

	GCRuns       int64        // victim segments cleaned
	GCForced     int64        // cleans forced synchronously by writers
	GCCopied     int64        // pages copy-forwarded
	GCErases     int64        // segments erased by the cleaner
	GCErrors     int64        // background cleans aborted by device errors
	GCLastErr    string       // most recent aborting error ("" when none)
	GCMergeTime  sim.Duration // host time spent computing block validity
	GCTotalTime  sim.Duration // virtual time from victim selection to erase
	GCLastAt     sim.Time     // completion time of the most recent clean
	MapMemory    int64        // forward map bytes, as if fully resident (refreshed on Stats())
	WriteAmplify float64      // (user+gc programs)/user programs, refreshed on Stats()

	MapMemoryResident int64 // host RAM the map actually holds: resident pages + GTD (refreshed on Stats())
	MapCacheHits      int64 // translation pages served from the cache (paged mode)
	MapCacheMisses    int64 // translation pages faulted from flash (paged mode)
	MapCacheEvictions int64 // resident translation pages evicted (paged mode)
	MapPagesFlushed   int64 // dirty translation pages written back to the log (paged mode)

	Retries          int64 // NAND operations re-attempted by the retry policy
	MediaFailures    int64 // permanent media failures (each marks a segment suspect)
	SegmentsSuspect  int   // refreshed on Stats()
	SegmentsRetired  int   // refreshed on Stats()
	OutOfSpaceWrites int64 // writes shed with ErrOutOfSpace
	Degraded         bool  // write path currently shedding load, refreshed on Stats()

	TornPagesSkipped int64 // unparseable headers dropped during recovery scans

	// Batched data-path accounting. The reference path reports the same
	// numbers — what the batched path would have submitted — so the two
	// paths' Stats stay comparable field for field.
	BatchDescents  int64 // leaf descents charged for run operations
	BatchPages     int64 // pages submitted through batch NAND entry points
	BatchNandCalls int64 // batch NAND calls issued (one per run chunk)

	Checkpoints       int64  // checkpoints committed (anchor updated)
	CheckpointChunks  int64  // chunk pages programmed by committed checkpoints
	CheckpointErrors  int64  // checkpoint attempts aborted by device errors
	CheckpointLastErr string // most recent aborting error ("" when none)

	RecoveryTailBounded bool  // this FTL came up via the checkpoint fast path
	RecoveryFallbacks   int64 // tail-bounded attempts that fell back to a full scan
	RecoverySegsScanned int64 // segments whose OOB headers recovery scanned
	RecoveryHeaderPages int64 // header pages recovery scanned
}

// FTL is the vanilla log-structured translation layer. It is not safe for
// concurrent use (the whole simulation is single-threaded virtual time).
type FTL struct {
	cfg   Config
	dev   *nand.Device
	sched *sim.Scheduler

	fmap     *mapcache.Map
	validity *bitmap.Bitmap

	headSeg    int      // segment currently absorbing appends
	headIdx    int      // next page index within headSeg
	seq        uint64   // global write sequence number
	freeSegs   []int    // erased segments available for the log head
	usedSegs   []int    // segments with data, oldest first (headSeg is last)
	segLastSeq []uint64 // newest write sequence in each segment (victim aging)

	gcActive bool
	gcVictim int // segment a background gcTask currently owns (-1 = none)
	degraded bool
	closed   bool
	stats    Stats

	acct *gcAcct // incremental per-segment valid counters (gcacct.go)

	ws dataPathScratch // reusable buffers for the batched data path (datapath.go)

	// Checkpoint state. Chunk pages are never valid in the bitmap — they are
	// consumed at recovery, not translated — so the pin set is what keeps the
	// cleaner from erasing the newest durable checkpoint (and one in flight)
	// out from under a future recovery; pinned pages are copy-forwarded like
	// valid ones and the anchor follows them. anchorID/anchorAddrs mirror the
	// device anchor; ckptInflight is the partial chunk list of a running
	// background checkpoint task.
	ckptActive   bool
	lastCkpt     sim.Time
	ckptPins     map[nand.PageAddr]bool
	anchorID     uint64
	anchorAddrs  []nand.PageAddr
	ckptInflight []nand.PageAddr

	// mapPins protects on-flash translation pages (paged map mode) the
	// same way ckptPins protects checkpoint chunks: translation pages are
	// never valid in the bitmap, so the pin is their only cleaning
	// protection. Keyed by flash address, valued by translation-page index.
	mapPins map[nand.PageAddr]uint64
}

// markValid sets a validity bit and keeps the per-segment counters exact.
// All validity transitions must go through markValid/markInvalid.
func (f *FTL) markValid(p int64) {
	if f.validity.Test(p) {
		return
	}
	f.validity.Set(p)
	f.acct.onSet(p)
}

// markInvalid clears a validity bit and keeps the per-segment counters exact.
func (f *FTL) markInvalid(p int64) {
	if !f.validity.Test(p) {
		return
	}
	f.validity.Clear(p)
	f.acct.onClear(p)
}

// New formats a fresh device and returns an FTL over it. The scheduler is
// where the FTL queues its background cleaning; callers drive it via
// Scheduler().RunUntil(now) (the workload package does this automatically).
func New(cfg Config, sched *sim.Scheduler) (*FTL, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil {
		sched = sim.NewScheduler()
	}
	f := &FTL{
		cfg:        cfg,
		dev:        nand.New(cfg.Nand),
		sched:      sched,
		validity:   bitmap.New(cfg.Nand.TotalPages()),
		gcVictim:   -1,
		segLastSeq: make([]uint64, cfg.Nand.Segments),
		ckptPins:   make(map[nand.PageAddr]bool),
		mapPins:    make(map[nand.PageAddr]uint64),
	}
	f.fmap = f.newActiveMap()
	for s := cfg.Nand.Segments - 1; s >= 1; s-- {
		f.freeSegs = append(f.freeSegs, s)
	}
	f.headSeg = 0
	f.usedSegs = []int{0}
	f.acct = newGCAcct(f)
	f.acct.track(0)
	return f, nil
}

// Device exposes the underlying NAND (tests and experiments inspect it).
func (f *FTL) Device() *nand.Device { return f.dev }

// Scheduler returns the background-task scheduler this FTL enqueues on.
func (f *FTL) Scheduler() *sim.Scheduler { return f.sched }

// Config returns the FTL configuration.
func (f *FTL) Config() Config { return f.cfg }

// SectorSize implements blockdev.Device.
func (f *FTL) SectorSize() int { return f.cfg.Nand.SectorSize }

// Sectors implements blockdev.Device.
func (f *FTL) Sectors() int64 { return f.cfg.UserSectors }

// Stats returns a snapshot of the counters with derived fields refreshed.
func (f *FTL) Stats() Stats {
	s := f.stats
	s.MapMemory = f.fmap.MemoryBytes()
	s.MapMemoryResident = f.fmap.ResidentBytes()
	if c := f.fmap.Paged(); c != nil {
		cs := c.Stats()
		s.MapCacheHits = cs.Hits
		s.MapCacheMisses = cs.Misses
		s.MapCacheEvictions = cs.Evictions
		s.MapPagesFlushed = cs.Flushed
	}
	if s.UserWrites > 0 {
		s.WriteAmplify = float64(s.UserWrites+s.GCCopied) / float64(s.UserWrites)
	}
	s.SegmentsSuspect, s.SegmentsRetired = f.dev.HealthCounts()
	s.Degraded = f.degraded
	return s
}

// FreeSegments returns the size of the erased-segment pool.
func (f *FTL) FreeSegments() int { return len(f.freeSegs) }

// MappedSectors returns how many LBAs currently have a translation.
func (f *FTL) MappedSectors() int { return f.fmap.Len() }

func (f *FTL) checkIO(lba int64, n int) error {
	if f.closed {
		return ErrClosed
	}
	if n == 0 {
		return fmt.Errorf("%w: zero-length I/O", ErrBadLength)
	}
	if lba < 0 || lba+int64(n) > f.cfg.UserSectors {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, lba, lba+int64(n), f.cfg.UserSectors)
	}
	return nil
}

// ungetPage rolls back the most recent allocPage/allocPageGC after a failed
// program. Without it the unprogrammed page becomes a permanent hole at the
// log head: SequentialProg devices reject every later program in the segment
// with ErrOutOfOrder, turning one transient fault into a bricked log. Only
// the exact page just handed out is reclaimed, and only if the program
// really did not land.
func (f *FTL) ungetPage(addr nand.PageAddr) {
	if f.headIdx == 0 || addr != f.dev.Addr(f.headSeg, f.headIdx-1) {
		return
	}
	if _, err := f.dev.PageOOB(addr); err == nil {
		return
	}
	f.headIdx--
}

// allocPage returns the next log-head page, advancing segments and invoking
// the cleaner as needed. The returned time reflects any synchronous
// cleaning the caller had to wait for.
func (f *FTL) allocPage(now sim.Time) (nand.PageAddr, sim.Time, error) {
	if f.headIdx == f.cfg.Nand.PagesPerSegment {
		var err error
		now, err = f.advanceHead(now)
		if err != nil {
			return 0, now, err
		}
	}
	addr := f.dev.Addr(f.headSeg, f.headIdx)
	f.headIdx++
	return addr, now, nil
}

func (f *FTL) advanceHead(now sim.Time) (sim.Time, error) {
	// Forced cleaning: the pool is down to the reserve and the writer must
	// wait. If cleaning cannot lift it back out, the write is shed instead
	// of bricking the device — reads, trims, and GC continue, and the next
	// write re-evaluates the pool from scratch.
	for len(f.freeSegs) <= f.cfg.dataReserve() {
		var err error
		now, err = f.cleanOnce(now, true)
		if err != nil {
			if errors.Is(err, ErrDeviceFull) {
				f.degraded = true
				f.stats.OutOfSpaceWrites++
				return now, ErrOutOfSpace
			}
			return now, err
		}
	}
	f.degraded = false
	f.headSeg = f.freeSegs[0]
	f.freeSegs = f.freeSegs[1:]
	f.headIdx = 0
	f.usedSegs = append(f.usedSegs, f.headSeg)
	f.acct.track(f.headSeg)
	f.maybeScheduleGC(now)
	f.maybeScheduleCheckpoint(now)
	return now, nil
}

// Close checkpoints the forward map to the log and marks the FTL closed.
// Recovery from a checkpoint requires the NAND to store payloads
// (nand.Config.StoreData); without it, recovery falls back to the full
// header scan.
//
// The log remains the source of truth: a failed checkpoint attempt is
// recorded in CheckpointErrors, leaves the previous anchor (if any)
// intact, and the close still proceeds — the next recovery simply falls
// back to the full scan, matching iosnap's Close semantics. The returned
// time includes the NAND/bus time consumed by a partial attempt.
func (f *FTL) Close(now sim.Time) (sim.Time, error) {
	if f.closed {
		return now, ErrClosed
	}
	if !f.ckptActive {
		done, _ := f.writeCheckpoint(now)
		now = done
	}
	f.closed = true
	return now, nil
}
