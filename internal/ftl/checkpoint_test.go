package ftl

import (
	"bytes"
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// bigConfig: testConfig on a 64-segment device, enough headroom that the
// tail written after a checkpoint stays GC-quiet (a post-checkpoint erase
// legitimately invalidates the generation and forces the full scan).
func bigConfig() Config {
	cfg := testConfig()
	cfg.Nand.Segments = 64
	return cfg
}

func verifyFTLModel(t *testing.T, f *FTL, now sim.Time, model map[int64]byte) {
	t.Helper()
	buf := make([]byte, f.SectorSize())
	for lba, v := range model {
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatalf("read LBA %d: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(f.SectorSize(), lba, v)) {
			t.Fatalf("LBA %d wrong", lba)
		}
	}
}

// TestTailBoundedRecoveryStats: a clean Close anchors a checkpoint, and the
// next mount loads it instead of scanning the whole log — strictly fewer
// header pages than the full scan on an identical device copy.
func TestTailBoundedRecoveryStats(t *testing.T) {
	f, err := New(bigConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	model, now := fillAndChurn(t, f, 400, 50, 31)
	now, err = f.Close(now)
	if err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := f.Device().SaveImage(&img); err != nil {
		t.Fatal(err)
	}
	devA, err := nand.LoadImage(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	devB, err := nand.LoadImage(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, nowA, err := Recover(f.Config(), devA, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RecoverFullScan(f.Config(), devB, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Stats().RecoveryTailBounded || a.Stats().RecoveryFallbacks != 0 {
		t.Fatalf("clean mount did not take the tail path: %+v", a.Stats())
	}
	if ap, bp := a.Stats().RecoveryHeaderPages, b.Stats().RecoveryHeaderPages; ap >= bp {
		t.Fatalf("tail path scanned %d header pages, full scan %d", ap, bp)
	}
	if a.MappedSectors() != b.MappedSectors() {
		t.Fatalf("tail mapped %d sectors, full scan %d", a.MappedSectors(), b.MappedSectors())
	}
	verifyFTLModel(t, a, nowA, model)
}

// TestCheckpointFallsBackOnIncompleteChunks: the regression the vanilla FTL
// shipped — an anchor whose chunk set cannot be loaded whole (reclaimed,
// missing, or from the wrong generation) must be rejected in favour of the
// full scan, never mounted partially.
func TestCheckpointFallsBackOnIncompleteChunks(t *testing.T) {
	tamper := map[string]func(a *nand.Anchor) *nand.Anchor{
		"missing-chunk":    func(a *nand.Anchor) *nand.Anchor { a.Addrs = a.Addrs[:len(a.Addrs)-1]; return a },
		"wrong-generation": func(a *nand.Anchor) *nand.Anchor { a.ID++; return a },
	}
	for name, mutate := range tamper {
		t.Run(name, func(t *testing.T) {
			f := newTestFTL(t)
			model, now := fillAndChurn(t, f, 300, 40, 33)
			now, err := f.Close(now)
			if err != nil {
				t.Fatal(err)
			}
			dev := f.Device()
			anchor := dev.Anchor()
			if anchor == nil || len(anchor.Addrs) < 2 {
				t.Fatalf("unexpectedly small checkpoint: %+v", anchor)
			}
			dev.SetAnchor(mutate(anchor))
			r, now, err := Recover(f.Config(), dev, nil, now)
			if err != nil {
				t.Fatalf("recovery with tampered anchor: %v", err)
			}
			st := r.Stats()
			if st.RecoveryTailBounded || st.RecoveryFallbacks != 1 {
				t.Fatalf("tampered anchor not rejected: %+v", st)
			}
			verifyFTLModel(t, r, now, model)
		})
	}
}

// TestCheckpointChunkFailureSealsHead: the other shipped regression — a
// permanent media failure while programming a checkpoint chunk must seal
// the log head off the failing segment exactly like the data-write path
// does, leaving the FTL writable and a retried checkpoint able to commit.
func TestCheckpointChunkFailureSealsHead(t *testing.T) {
	f := newTestFTL(t)
	model, now := fillAndChurn(t, f, 150, 30, 35)
	oldHead := f.headSeg
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindTransient, Op: nand.OpProgram, Seg: faultinject.AnySeg,
		AfterN: 1, Times: 10, // outlasts the retry budget: a permanent failure
	})
	plan.Arm(f.Device())
	if !f.StartCheckpoint(now) {
		t.Fatal("StartCheckpoint refused")
	}
	now = f.Scheduler().Drain(now)
	plan.Disarm(f.Device())
	st := f.Stats()
	if st.CheckpointErrors < 1 || st.Checkpoints != 0 {
		t.Fatalf("failed checkpoint misaccounted: %+v", st)
	}
	if f.Device().Anchor() != nil {
		t.Fatal("aborted checkpoint left an anchor")
	}
	if f.headSeg == oldHead {
		t.Fatal("head not sealed off the failing segment")
	}
	// Still writable, and a retried checkpoint commits and mounts.
	d, err := f.Write(now, 2, sectorPattern(f.SectorSize(), 2, 88))
	if err != nil {
		t.Fatalf("write after sealed head: %v", err)
	}
	model[2] = 88
	now = d
	if !f.StartCheckpoint(now) {
		t.Fatal("retry StartCheckpoint refused")
	}
	now = f.Scheduler().Drain(now)
	if f.Stats().Checkpoints != 1 {
		t.Fatalf("retried checkpoint did not commit: %+v", f.Stats())
	}
	r, now, err := Recover(f.Config(), f.Device(), nil, now)
	if err != nil {
		t.Fatal(err)
	}
	verifyFTLModel(t, r, now, model)
}

// TestCrashDuringCheckpointCycles: repeated crash/recover cycles where power
// dies right after the n-th chunk of an in-flight checkpoint lands. Each
// cycle the device carries one complete committed generation plus a fresh
// partial one; every mount must come up from the complete generation
// (tail-bounded, partial chunks skipped) with all acknowledged writes.
func TestCrashDuringCheckpointCycles(t *testing.T) {
	f, err := New(bigConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[int64]byte)
	now := sim.Time(0)
	ss := f.SectorSize()
	churn := func(seed uint64, n int) {
		rng := sim.NewRNG(seed)
		for i := 0; i < n; i++ {
			f.Scheduler().RunUntil(now)
			lba := rng.Int63n(50)
			v := byte(int(seed)*40 + i%40 + 1)
			d, err := f.Write(now, lba, sectorPattern(ss, lba, v))
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			model[lba] = v
			now = d
		}
		now = f.Scheduler().Drain(now)
	}
	partialCycles := 0
	for cycle := 0; cycle < 4; cycle++ {
		churn(uint64(cycle)*2+1, 40)
		// A clean checkpoint commits...
		if !f.StartCheckpoint(now) {
			t.Fatalf("cycle %d: clean StartCheckpoint refused", cycle)
		}
		now = f.Scheduler().Drain(now)
		if f.Stats().Checkpoints < 1 {
			t.Fatalf("cycle %d: clean checkpoint did not commit", cycle)
		}
		committed := f.Device().Anchor()
		churn(uint64(cycle)*2+2, 15)
		// ...then a second one dies after its n-th chunk. A crash after the
		// final chunk lands post-commit (the generation is complete); any
		// earlier leaves a partial generation that must not move the anchor.
		plan := faultinject.CrashAtChunk(header.TypeCheckpoint, int64(cycle%2)+1)
		plan.Arm(f.Device())
		if !f.StartCheckpoint(now) {
			t.Fatalf("cycle %d: crashing StartCheckpoint refused", cycle)
		}
		now = f.Scheduler().Drain(now)
		if !plan.Crashed() {
			t.Fatalf("cycle %d: checkpoint crash never fired (fired: %+v)", cycle, plan.Fired())
		}
		plan.Disarm(f.Device())
		anchor := f.Device().Anchor()
		if anchor == nil {
			t.Fatalf("cycle %d: anchor gone after mid-checkpoint crash", cycle)
		}
		if anchor.ID == committed.ID {
			partialCycles++
		}
		r, nowR, err := Recover(f.Config(), f.Device(), nil, now)
		if err != nil {
			t.Fatalf("cycle %d: recovery: %v", cycle, err)
		}
		st := r.Stats()
		if !st.RecoveryTailBounded || st.RecoveryFallbacks != 0 {
			t.Fatalf("cycle %d: expected tail-bounded mount from the committed generation: %+v", cycle, st)
		}
		verifyFTLModel(t, r, nowR, model)
		f, now = r, nowR
	}
	if partialCycles == 0 {
		t.Fatal("no cycle ever crashed mid-generation; the partial-checkpoint path went untested")
	}
}
