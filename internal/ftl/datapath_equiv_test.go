package ftl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// The batched data path and the per-sector reference path run on the same
// virtual-time skeleton, so on any fault-free workload they must agree
// bit-for-bit: same per-op completion times, same errors, same Stats
// (except MapMemory — bulk-loaded leaves pack differently than organically
// grown ones), same device image. These tests drive both paths with the
// same seeded workloads and diff everything.

func equivConfig(reference bool) Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 32
	nc.Segments = 32
	nc.Channels = 4
	nc.StoreData = true
	nc.ReadLatency = 2 * sim.Microsecond
	nc.ProgramLatency = 4 * sim.Microsecond
	nc.EraseLatency = 50 * sim.Microsecond
	cfg := DefaultConfig(nc)
	cfg.GCWindow = 10 * sim.Millisecond
	cfg.ReferenceDataPath = reference
	return cfg
}

type equivOp struct {
	kind byte // 'w', 'r', 't'
	lba  int64
	n    int
	ver  byte
}

// genEquivOps builds a seeded op mix: sequential sweeps, uniform-random
// runs, and zipf-skewed runs, with lengths from 1 to maxRun sectors plus
// occasional trims.
func genEquivOps(seed int64, userSectors int64, count, maxRun int) []equivOp {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(userSectors-1))
	ops := make([]equivOp, 0, count)
	ver := byte(1)
	seqCursor := int64(0)
	for len(ops) < count {
		n := 1 + rng.Intn(maxRun)
		var lba int64
		switch rng.Intn(3) {
		case 0: // sequential sweep
			lba = seqCursor
			if lba+int64(n) > userSectors {
				lba = 0
			}
			seqCursor = lba + int64(n)
		case 1: // uniform random
			lba = rng.Int63n(userSectors - int64(n) + 1)
		default: // zipf-skewed hot set
			lba = int64(zipf.Uint64())
			if lba+int64(n) > userSectors {
				lba = userSectors - int64(n)
			}
		}
		switch r := rng.Intn(10); {
		case r < 6:
			ver++
			ops = append(ops, equivOp{'w', lba, n, ver})
		case r < 9:
			ops = append(ops, equivOp{'r', lba, n, 0})
		default:
			ops = append(ops, equivOp{'t', lba, n, 0})
		}
	}
	return ops
}

func runPattern(ss int, lba int64, n int, ver byte) []byte {
	b := make([]byte, n*ss)
	for i := range b {
		sec := lba + int64(i/ss)
		b[i] = byte(sec) ^ byte(sec>>8) ^ ver ^ byte(i)
	}
	return b
}

// deviceDigest summarizes every programmed page (payload fingerprint + OOB
// header bytes) so two devices can be diffed exactly.
func deviceDigest(t *testing.T, d *nand.Device) string {
	t.Helper()
	cfg := d.Config()
	var b strings.Builder
	for seg := 0; seg < cfg.Segments; seg++ {
		for i := 0; i < cfg.PagesPerSegment; i++ {
			a := d.Addr(seg, i)
			if !d.IsProgrammed(a) {
				continue
			}
			fp, err := d.PageFingerprint(a)
			if err != nil {
				t.Fatalf("fingerprint %v: %v", a, err)
			}
			oob, err := d.PageOOB(a)
			if err != nil {
				t.Fatalf("oob %v: %v", a, err)
			}
			fmt.Fprintf(&b, "%d/%d %x %x\n", seg, i, fp, oob)
		}
	}
	return b.String()
}

func firstDigestDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: batched %q vs reference %q", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(al), len(bl))
}

func TestDataPathEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			batched, err := New(equivConfig(false), nil)
			if err != nil {
				t.Fatal(err)
			}
			reference, err := New(equivConfig(true), nil)
			if err != nil {
				t.Fatal(err)
			}
			ss := batched.SectorSize()
			ops := genEquivOps(seed, batched.cfg.UserSectors, 300, 256)

			now := sim.Time(0)
			bbuf := make([]byte, 256*ss)
			rbuf := make([]byte, 256*ss)
			for i, op := range ops {
				var bd, rd sim.Time
				var be, re error
				switch op.kind {
				case 'w':
					data := runPattern(ss, op.lba, op.n, op.ver)
					bd, be = batched.Write(now, op.lba, data)
					rd, re = reference.Write(now, op.lba, data)
				case 'r':
					bd, be = batched.Read(now, op.lba, bbuf[:op.n*ss])
					rd, re = reference.Read(now, op.lba, rbuf[:op.n*ss])
					if string(bbuf[:op.n*ss]) != string(rbuf[:op.n*ss]) {
						t.Fatalf("op %d (%c lba=%d n=%d): payload mismatch", i, op.kind, op.lba, op.n)
					}
				case 't':
					bd, be = batched.Trim(now, op.lba, int64(op.n))
					rd, re = reference.Trim(now, op.lba, int64(op.n))
				}
				if (be == nil) != (re == nil) {
					t.Fatalf("op %d (%c lba=%d n=%d): batched err %v, reference err %v", i, op.kind, op.lba, op.n, be, re)
				}
				if bd != rd {
					t.Fatalf("op %d (%c lba=%d n=%d): batched done %d, reference done %d (Δ %d)",
						i, op.kind, op.lba, op.n, bd, rd, bd.Sub(rd))
				}
				if bd > now {
					now = bd
				}
				batched.Scheduler().RunUntil(now)
				reference.Scheduler().RunUntil(now)
			}

			bs, rs := batched.Stats(), reference.Stats()
			// Bulk-loaded leaves pack tighter than organically grown ones, so
			// tree size is the one sanctioned divergence.
			bs.MapMemory, rs.MapMemory = 0, 0
			bs.MapMemoryResident, rs.MapMemoryResident = 0, 0
			if bs != rs {
				t.Fatalf("Stats diverge:\nbatched:   %+v\nreference: %+v", bs, rs)
			}
			if bdev, rdev := batched.Device().Stats(), reference.Device().Stats(); bdev != rdev {
				t.Fatalf("device Stats diverge:\nbatched:   %+v\nreference: %+v", bdev, rdev)
			}
			bdig := deviceDigest(t, batched.Device())
			rdig := deviceDigest(t, reference.Device())
			if bdig != rdig {
				t.Fatalf("device images diverge: %s", firstDigestDiff(bdig, rdig))
			}
			if bs.BatchNandCalls == 0 || bs.BatchPages <= bs.BatchNandCalls {
				t.Fatalf("batch counters implausible: %+v", bs)
			}
		})
	}
}

// TestReadEquivalenceWithHoles pins down the zero-fill path: unmapped
// sectors inside a run read as zeros on both paths.
func TestReadEquivalenceWithHoles(t *testing.T) {
	batched, _ := New(equivConfig(false), nil)
	reference, _ := New(equivConfig(true), nil)
	ss := batched.SectorSize()
	now := sim.Time(0)
	// Map every third sector only.
	for lba := int64(0); lba < 60; lba += 3 {
		d1, e1 := batched.Write(now, lba, runPattern(ss, lba, 1, 9))
		d2, e2 := reference.Write(now, lba, runPattern(ss, lba, 1, 9))
		if e1 != nil || e2 != nil || d1 != d2 {
			t.Fatalf("write lba %d: %v %v %d %d", lba, e1, e2, d1, d2)
		}
		now = d1
	}
	bbuf := make([]byte, 60*ss)
	rbuf := make([]byte, 60*ss)
	bd, be := batched.Read(now, 0, bbuf)
	rd, re := reference.Read(now, 0, rbuf)
	if be != nil || re != nil {
		t.Fatal(be, re)
	}
	if bd != rd {
		t.Fatalf("done: %d vs %d", bd, rd)
	}
	if string(bbuf) != string(rbuf) {
		t.Fatal("hole fill mismatch")
	}
	for i := 0; i < 60; i++ {
		sector := bbuf[i*ss : (i+1)*ss]
		if i%3 != 0 {
			for _, c := range sector {
				if c != 0 {
					t.Fatalf("unmapped sector %d not zero-filled", i)
				}
			}
		}
	}
}

// TestPartialBatchWriteAccounting: a permanent mid-run program failure
// leaves the completed prefix committed and counted, and the returned
// virtual time reflects the work actually consumed.
func TestPartialBatchWriteAccounting(t *testing.T) {
	for _, reference := range []bool{false, true} {
		name := "batched"
		if reference {
			name = "reference"
		}
		t.Run(name, func(t *testing.T) {
			f, err := New(equivConfig(reference), nil)
			if err != nil {
				t.Fatal(err)
			}
			ss := f.SectorSize()
			// The 5th program attempt enters a transient episode longer than
			// the retry budget: a permanent mid-run failure at sector 4.
			plan := faultinject.NewPlan(0, faultinject.Rule{
				Kind: faultinject.KindTransient, Op: nand.OpProgram, Seg: faultinject.AnySeg,
				AfterN: 5, Times: 100,
			})
			plan.Arm(f.Device())
			now := sim.Time(1000)
			done, err := f.Write(now, 0, runPattern(ss, 0, 8, 1))
			plan.Disarm(f.Device())
			if err == nil {
				t.Fatal("mid-run failure did not surface")
			}
			if done <= now {
				t.Fatalf("done %d does not reflect consumed time (now %d)", done, now)
			}
			st := f.Stats()
			if st.UserWrites != 4 {
				t.Fatalf("UserWrites = %d, want 4 (completed sectors)", st.UserWrites)
			}
			if st.BytesWritten != int64(4*ss) {
				t.Fatalf("BytesWritten = %d, want %d", st.BytesWritten, 4*ss)
			}
			buf := make([]byte, ss)
			for lba := int64(0); lba < 4; lba++ {
				if _, err := f.Read(done, lba, buf); err != nil {
					t.Fatalf("completed sector %d unreadable: %v", lba, err)
				}
				want := runPattern(ss, lba, 1, 1)
				if string(buf) != string(want) {
					t.Fatalf("completed sector %d corrupted", lba)
				}
			}
			if _, err := f.Read(done, 5, buf); err != nil {
				t.Fatal(err)
			}
			for _, c := range buf {
				if c != 0 {
					t.Fatal("unwritten sector not zero")
				}
			}
		})
	}
}

// TestPartialBatchReadAccounting: a permanent read failure mid-run counts
// only the sectors read before it.
func TestPartialBatchReadAccounting(t *testing.T) {
	for _, reference := range []bool{false, true} {
		name := "batched"
		if reference {
			name = "reference"
		}
		t.Run(name, func(t *testing.T) {
			f, err := New(equivConfig(reference), nil)
			if err != nil {
				t.Fatal(err)
			}
			ss := f.SectorSize()
			now, err := f.Write(0, 0, runPattern(ss, 0, 8, 1))
			if err != nil {
				t.Fatal(err)
			}
			readsBefore := f.Stats().UserReads
			plan := faultinject.NewPlan(0, faultinject.Rule{
				Kind: faultinject.KindTransient, Op: nand.OpRead, Seg: faultinject.AnySeg,
				AfterN: 4, Times: 100,
			})
			plan.Arm(f.Device())
			buf := make([]byte, 8*ss)
			done, err := f.Read(now, 0, buf)
			plan.Disarm(f.Device())
			if err == nil {
				t.Fatal("mid-run read failure did not surface")
			}
			if done <= now {
				t.Fatalf("done %d does not reflect consumed time (now %d)", done, now)
			}
			st := f.Stats()
			if got := st.UserReads - readsBefore; got != 3 {
				t.Fatalf("UserReads delta = %d, want 3 (completed sectors)", got)
			}
		})
	}
}
