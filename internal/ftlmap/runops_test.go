package ftlmap

import (
	"fmt"
	"math/rand"
	"testing"
)

// audit validates invariants the plain check() skips: node counters, size,
// and leaf-chain integrity (the chain must visit exactly the tree's keys in
// ascending order).
func audit(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	var leaves, internals, size int
	var leftmost *leaf
	var walk func(n node)
	walk = func(n node) {
		switch n := n.(type) {
		case *leaf:
			leaves++
			size += len(n.keys)
			if leftmost == nil {
				leftmost = n
			}
		case *internal:
			internals++
			for _, k := range n.kids {
				walk(k)
			}
		}
	}
	walk(tr.root)
	if leaves != tr.leaves || internals != tr.internals || size != tr.size {
		t.Fatalf("counters: have leaves=%d internals=%d size=%d, tree says %d/%d/%d",
			leaves, internals, size, tr.leaves, tr.internals, tr.size)
	}
	var chain []uint64
	for lf := leftmost; lf != nil; lf = lf.next {
		chain = append(chain, lf.keys...)
	}
	var inorder []uint64
	tr.All(func(k, v uint64) bool { inorder = append(inorder, k); return true })
	if len(chain) != len(inorder) {
		t.Fatalf("chain has %d keys, tree has %d", len(chain), len(inorder))
	}
	for i := range chain {
		if chain[i] != inorder[i] {
			t.Fatalf("chain[%d]=%d != inorder %d", i, chain[i], inorder[i])
		}
	}
	if len(chain) != tr.size {
		t.Fatalf("chain %d keys, size %d", len(chain), tr.size)
	}
}

// mirror applies the same operations to a reference tree via per-key ops and
// to the tree under test via run ops, comparing results.
func TestRunOpsMatchPerKey(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ref := New()
			tut := New()
			const keySpace = 1 << 14
			for step := 0; step < 400; step++ {
				lo := uint64(rng.Intn(keySpace))
				n := 1 + rng.Intn(300)
				switch rng.Intn(3) {
				case 0: // insert a run of consecutive keys
					entries := make([]Entry, n)
					for i := range entries {
						entries[i] = Entry{Key: lo + uint64(i), Val: rng.Uint64()}
					}
					var refPrev, tutPrev []string
					for i, e := range entries {
						if prev, ok := ref.Insert(e.Key, e.Val); ok {
							refPrev = append(refPrev, fmt.Sprint(i, prev))
						}
					}
					tut.InsertRun(entries, func(i int, prev uint64) {
						tutPrev = append(tutPrev, fmt.Sprint(i, prev))
					})
					if fmt.Sprint(refPrev) != fmt.Sprint(tutPrev) {
						t.Fatalf("step %d: prev callbacks differ:\nref %v\ntut %v", step, refPrev, tutPrev)
					}
				case 1: // delete a range
					hi := lo + uint64(n)
					var refDel, tutDel []string
					var refCount int
					for k := lo; k < hi; k++ {
						if v, ok := ref.Delete(k); ok {
							refDel = append(refDel, fmt.Sprint(k, v))
							refCount++
						}
					}
					tutCount := tut.DeleteRange(lo, hi, func(k, v uint64) {
						tutDel = append(tutDel, fmt.Sprint(k, v))
					})
					if refCount != tutCount {
						t.Fatalf("step %d: DeleteRange removed %d, per-key removed %d", step, tutCount, refCount)
					}
					if fmt.Sprint(refDel) != fmt.Sprint(tutDel) {
						t.Fatalf("step %d: delete callbacks differ:\nref %v\ntut %v", step, refDel, tutDel)
					}
				case 2: // range lookup
					vals := make([]uint64, n)
					found := make([]bool, n)
					hits := tut.LookupRange(lo, vals, found)
					wantHits := 0
					for i := 0; i < n; i++ {
						wv, wok := ref.Lookup(lo + uint64(i))
						if wok {
							wantHits++
						}
						if wok != found[i] || (wok && wv != vals[i]) {
							t.Fatalf("step %d: LookupRange key %d: got (%d,%v) want (%d,%v)",
								step, lo+uint64(i), vals[i], found[i], wv, wok)
						}
					}
					if hits != wantHits {
						t.Fatalf("step %d: hits %d want %d", step, hits, wantHits)
					}
				}
				if ref.Len() != tut.Len() {
					t.Fatalf("step %d: size %d vs %d", step, tut.Len(), ref.Len())
				}
				if step%37 == 0 {
					audit(t, tut)
				}
			}
			audit(t, tut)
			// Final content equivalence.
			var want, got []string
			ref.All(func(k, v uint64) bool { want = append(want, fmt.Sprint(k, v)); return true })
			tut.All(func(k, v uint64) bool { got = append(got, fmt.Sprint(k, v)); return true })
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("content differs")
			}
		})
	}
}

func TestInsertRunLargeIntoEmpty(t *testing.T) {
	tr := New()
	const n = 100000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: uint64(i * 3), Val: uint64(i)}
	}
	tr.InsertRun(entries, nil)
	audit(t, tr)
	if tr.Len() != n {
		t.Fatalf("len %d want %d", tr.Len(), n)
	}
	vals := make([]uint64, 10)
	found := make([]bool, 10)
	tr.LookupRange(30, vals, found)
	if !found[0] || vals[0] != 10 || found[1] {
		t.Fatalf("lookup after bulk insert wrong: %v %v", vals, found)
	}
}

func TestDeleteRangeEverything(t *testing.T) {
	tr := New()
	entries := make([]Entry, 5000)
	for i := range entries {
		entries[i] = Entry{Key: uint64(i), Val: uint64(i)}
	}
	tr.InsertRun(entries, nil)
	if got := tr.DeleteRange(0, 5000, nil); got != 5000 {
		t.Fatalf("deleted %d", got)
	}
	audit(t, tr)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("not empty: len=%d height=%d", tr.Len(), tr.Height())
	}
	// Tree must be fully reusable after total deletion.
	tr.InsertRun(entries[:100], nil)
	audit(t, tr)
	if tr.Len() != 100 {
		t.Fatalf("reinsert len %d", tr.Len())
	}
}

func TestLeafSpan(t *testing.T) {
	tr := New()
	if got := tr.LeafSpan(0, 1000); got != 1 {
		t.Fatalf("empty tree span %d", got)
	}
	entries := make([]Entry, 10000)
	for i := range entries {
		entries[i] = Entry{Key: uint64(i), Val: uint64(i)}
	}
	tr.InsertRun(entries, nil)
	if got := tr.LeafSpan(5, 6); got != 1 {
		t.Fatalf("single-key span %d", got)
	}
	full := tr.LeafSpan(0, 10000)
	leaves, _ := tr.Nodes()
	if full != leaves {
		t.Fatalf("full span %d, leaves %d", full, leaves)
	}
	// Span must be monotone in range width and bounded by leaf count.
	prev := 0
	for w := uint64(1); w <= 4096; w *= 4 {
		s := tr.LeafSpan(100, 100+w)
		if s < prev || s > leaves {
			t.Fatalf("span %d (prev %d, leaves %d) at width %d", s, prev, leaves, w)
		}
		prev = s
	}
}
