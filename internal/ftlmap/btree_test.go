package ftlmap

import (
	"sort"
	"testing"

	"iosnap/internal/sim"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Lookup(5); ok {
		t.Fatal("lookup in empty tree succeeded")
	}
	if _, ok := tr.Delete(5); ok {
		t.Fatal("delete in empty tree succeeded")
	}
}

func TestInsertLookup(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 1000; i++ {
		if _, existed := tr.Insert(i*3, i); existed {
			t.Fatalf("fresh insert of %d reported existing", i*3)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		v, ok := tr.Lookup(i * 3)
		if !ok || v != i {
			t.Fatalf("Lookup(%d) = %d,%v", i*3, v, ok)
		}
		if _, ok := tr.Lookup(i*3 + 1); ok {
			t.Fatalf("Lookup(%d) should miss", i*3+1)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestInsertOverwrite(t *testing.T) {
	tr := New()
	tr.Insert(7, 100)
	prev, existed := tr.Insert(7, 200)
	if !existed || prev != 100 {
		t.Fatalf("overwrite: prev=%d existed=%v", prev, existed)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", tr.Len())
	}
	v, _ := tr.Lookup(7)
	if v != 200 {
		t.Fatalf("Lookup after overwrite = %d", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 5000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i+1)
	}
	// Delete every other key.
	for i := uint64(0); i < n; i += 2 {
		v, ok := tr.Delete(i)
		if !ok || v != i+1 {
			t.Fatalf("Delete(%d) = %d,%v", i, v, ok)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invariants after deletes: %v", err)
	}
	for i := uint64(0); i < n; i++ {
		_, ok := tr.Lookup(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Lookup(%d) = %v, want %v", i, ok, want)
		}
	}
	// Delete everything else, down to empty.
	for i := uint64(1); i < n; i += 2 {
		if _, ok := tr.Delete(i); !ok {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after full delete = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height after full delete = %d", tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invariants on emptied tree: %v", err)
	}
}

func TestRange(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i*10, i)
	}
	var got []uint64
	tr.Range(95, 305, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250, 260, 270, 280, 290, 300}
	if len(got) != len(want) {
		t.Fatalf("Range returned %d keys, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i, i)
	}
	count := 0
	tr.Range(0, 100, func(k, v uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestAll(t *testing.T) {
	tr := New()
	keys := []uint64{5, 1, 9, 3, 7}
	for _, k := range keys {
		tr.Insert(k, k*2)
	}
	var got []uint64
	tr.All(func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("All not sorted: %v", got)
	}
	if len(got) != len(keys) {
		t.Fatalf("All visited %d", len(got))
	}
}

func TestBulkLoad(t *testing.T) {
	var entries []Entry
	for i := uint64(0); i < 12345; i++ {
		entries = append(entries, Entry{Key: i * 2, Val: i})
	}
	tr := BulkLoad(entries, 1.0)
	if tr.Len() != len(entries) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	for _, e := range entries {
		v, ok := tr.Lookup(e.Key)
		if !ok || v != e.Val {
			t.Fatalf("Lookup(%d) = %d,%v", e.Key, v, ok)
		}
	}
	// Bulk-loaded tree must still accept mutations.
	tr.Insert(1, 999)
	if v, ok := tr.Lookup(1); !ok || v != 999 {
		t.Fatal("insert into bulk-loaded tree failed")
	}
	if _, ok := tr.Delete(0); !ok {
		t.Fatal("delete from bulk-loaded tree failed")
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invariants after mutation: %v", err)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil, 1.0)
	if tr.Len() != 0 {
		t.Fatal("empty bulk load not empty")
	}
	tr.Insert(1, 2)
	if v, _ := tr.Lookup(1); v != 2 {
		t.Fatal("insert after empty bulk load failed")
	}
}

func TestBulkLoadUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted BulkLoad did not panic")
		}
	}()
	BulkLoad([]Entry{{5, 0}, {3, 0}}, 1.0)
}

func TestBulkLoadCompactness(t *testing.T) {
	// The Table 3 effect: a bulk-loaded tree must be measurably smaller than
	// the same contents inserted in random order.
	rng := sim.NewRNG(31)
	const n = 50000
	perm := rng.Perm(n)
	grown := New()
	for _, p := range perm {
		grown.Insert(uint64(p), uint64(p))
	}
	var entries []Entry
	for i := 0; i < n; i++ {
		entries = append(entries, Entry{Key: uint64(i), Val: uint64(i)})
	}
	packed := BulkLoad(entries, 1.0)
	if packed.MemoryBytes() >= grown.MemoryBytes() {
		t.Fatalf("bulk-loaded tree (%d B) not smaller than grown tree (%d B)",
			packed.MemoryBytes(), grown.MemoryBytes())
	}
	gl, _ := grown.Nodes()
	pl, _ := packed.Nodes()
	if pl >= gl {
		t.Fatalf("bulk-loaded leaves %d not fewer than grown %d", pl, gl)
	}
}

func TestTreeMatchesModelRandomOps(t *testing.T) {
	rng := sim.NewRNG(99)
	tr := New()
	model := make(map[uint64]uint64)
	const space = 2000
	for step := 0; step < 50000; step++ {
		k := uint64(rng.Intn(space))
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			prev, existed := tr.Insert(k, v)
			mv, mok := model[k]
			if existed != mok || (existed && prev != mv) {
				t.Fatalf("step %d: Insert(%d) prev=%d,%v model=%d,%v", step, k, prev, existed, mv, mok)
			}
			model[k] = v
		case 2:
			v, ok := tr.Delete(k)
			mv, mok := model[k]
			if ok != mok || (ok && v != mv) {
				t.Fatalf("step %d: Delete(%d) = %d,%v model=%d,%v", step, k, v, ok, mv, mok)
			}
			delete(model, k)
		case 3:
			v, ok := tr.Lookup(k)
			mv, mok := model[k]
			if ok != mok || (ok && v != mv) {
				t.Fatalf("step %d: Lookup(%d) = %d,%v model=%d,%v", step, k, v, ok, mv, mok)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("final Len = %d, model %d", tr.Len(), len(model))
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
	// Full scan must match sorted model.
	var modelKeys []uint64
	for k := range model {
		modelKeys = append(modelKeys, k)
	}
	sort.Slice(modelKeys, func(i, j int) bool { return modelKeys[i] < modelKeys[j] })
	i := 0
	tr.All(func(k, v uint64) bool {
		if i >= len(modelKeys) || k != modelKeys[i] || v != model[k] {
			t.Fatalf("All mismatch at %d: key %d", i, k)
		}
		i++
		return true
	})
	if i != len(modelKeys) {
		t.Fatalf("All visited %d, model has %d", i, len(modelKeys))
	}
}

func TestLargeSequentialInsertHeight(t *testing.T) {
	tr := New()
	const n = 200000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	if tr.Height() > 4 {
		t.Fatalf("height %d too tall for %d sequential keys with order %d", tr.Height(), n, order)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNodesAccounting(t *testing.T) {
	tr := New()
	l, in := tr.Nodes()
	if l != 1 || in != 0 {
		t.Fatalf("fresh tree nodes = %d,%d", l, in)
	}
	for i := uint64(0); i < 10000; i++ {
		tr.Insert(i, i)
	}
	l, in = tr.Nodes()
	if l < 10000/order || in == 0 {
		t.Fatalf("nodes = %d leaves, %d internals", l, in)
	}
	// Count leaves via the leaf chain and compare.
	count := 0
	n := tr.root
	for {
		innode, ok := n.(*internal)
		if !ok {
			break
		}
		n = innode.kids[0]
	}
	for lf := n.(*leaf); lf != nil; lf = lf.next {
		count++
	}
	if count != l {
		t.Fatalf("leaf chain count %d != accounting %d", count, l)
	}
}
