// Run-based batch operations on the forward map. A multi-sector request
// translates to a run of consecutive LBAs; serving it with per-key
// Insert/Lookup/Delete costs one full root-to-leaf descent per sector even
// though consecutive keys almost always land in the same handful of leaves.
// The operations here descend once per *touched leaf* instead: InsertRun
// merges a sorted run into the leaf chain with multi-way splits, LookupRange
// resolves a run with a single descent plus a next-pointer walk, and
// DeleteRange splices a key interval out of the chain and prunes emptied
// nodes. LeafSpan reports how many leaves a run touches, which is what the
// FTLs charge MapCPUCost against (see DESIGN.md §10).
package ftlmap

// RunSpan is the modeled descent count for a run of n consecutive keys: one
// root-to-leaf descent plus one next-pointer hop per additional leaf of a
// maximally-packed tree. The FTLs charge MapCPUCost against this instead of
// the live tree's LeafSpan because the model must be shape-independent:
// bulk-loaded and organically-grown trees spread the same keys over
// different leaf counts, and the batched/reference data paths must charge
// identical virtual time for the same request.
func RunSpan(n int) int {
	if n <= 0 {
		return 1
	}
	return 1 + (n-1)/order
}

// LeafSpan returns the number of leaves the key interval [lo, hi) touches
// in this tree, never less than 1: one root-to-leaf descent plus one
// next-pointer hop per additional leaf.
func (t *Tree) LeafSpan(lo, hi uint64) int {
	n := t.root
	for {
		in, ok := n.(*internal)
		if !ok {
			break
		}
		n = in.kids[upperBound(in.keys, lo)]
	}
	span := 1
	for lf := n.(*leaf); lf.next != nil && len(lf.next.keys) > 0 && lf.next.keys[0] < hi; lf = lf.next {
		span++
	}
	return span
}

// LookupRange resolves the len(vals) consecutive keys lo, lo+1, ... with a
// single descent followed by a leaf-chain walk. vals[i] and found[i] are
// filled for key lo+i; it returns the number of keys found. vals and found
// must have equal length, and found must be all-false on entry (the caller
// owns and typically reuses both).
func (t *Tree) LookupRange(lo uint64, vals []uint64, found []bool) int {
	if len(vals) != len(found) {
		panic("ftlmap: LookupRange vals/found length mismatch")
	}
	hi := lo + uint64(len(vals))
	n := t.root
	for {
		in, ok := n.(*internal)
		if !ok {
			break
		}
		n = in.kids[upperBound(in.keys, lo)]
	}
	hits := 0
	for lf := n.(*leaf); lf != nil; lf = lf.next {
		i := 0
		if lf == n.(*leaf) {
			i = lowerBound(lf.keys, lo)
		}
		for ; i < len(lf.keys); i++ {
			k := lf.keys[i]
			if k >= hi {
				return hits
			}
			if k >= lo {
				vals[k-lo] = lf.vals[i]
				found[k-lo] = true
				hits++
			}
		}
	}
	return hits
}

// InsertRun inserts entries — strictly ascending by key, like BulkLoad input
// — descending once per touched leaf and splitting multi-way where a run
// overfills a node. For every key that replaced an existing mapping, onPrev
// is called with the entry's index and the previous value (nil to ignore).
// It panics on an unsorted run, mirroring BulkLoad.
func (t *Tree) InsertRun(entries []Entry, onPrev func(i int, prev uint64)) {
	if len(entries) == 0 {
		return
	}
	if len(entries) == 1 {
		// A run of one is a plain insert: cheaper, and it preserves the
		// organic growth profile of per-sector workloads (splits that leave
		// half-full leaves — what makes activation's bulk-loaded tree the
		// compact one, Table 3).
		if prev, existed := t.Insert(entries[0].Key, entries[0].Val); existed && onPrev != nil {
			onPrev(0, prev)
		}
		return
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key <= entries[i-1].Key {
			panic("ftlmap: InsertRun entries not strictly ascending")
		}
	}
	rights, seps := t.insertRun(t.root, entries, 0, onPrev)
	for len(rights) > 0 {
		nroot := &internal{
			keys: append([]uint64(nil), seps...),
			kids: append([]node{t.root}, rights...),
		}
		t.internals++
		t.height++
		t.root = nroot
		if len(nroot.keys) <= order {
			break
		}
		rights, seps = t.splitInternal(nroot)
	}
}

// insertRun inserts entries (all within n's key range) into subtree n.
// Splits propagate up as a list of new right siblings plus the separator
// keys that precede each of them.
func (t *Tree) insertRun(n node, entries []Entry, base int, onPrev func(int, uint64)) (rights []node, seps []uint64) {
	switch n := n.(type) {
	case *leaf:
		t.mergeRunIntoLeaf(n, entries, base, onPrev)
		if len(n.keys) <= order {
			return nil, nil
		}
		return t.splitLeaf(n)
	case *internal:
		// Jump straight to the first touched child and stop once the run is
		// consumed; the node is only rebuilt if some child actually split.
		// (The common steady-state case — overwrites that split nothing —
		// touches no internal-node memory at all.)
		type splice struct {
			at     int
			rights []node
			seps   []uint64
		}
		var splices []splice
		extra := 0
		ei := 0
		for ci := upperBound(n.keys, entries[0].Key); ei < len(entries); ci++ {
			hi := ^uint64(0)
			if ci < len(n.keys) {
				hi = n.keys[ci]
			}
			j := ei
			for j < len(entries) && entries[j].Key < hi {
				j++
			}
			if j > ei {
				rs, ss := t.insertRun(n.kids[ci], entries[ei:j], base+ei, onPrev)
				if len(rs) > 0 {
					splices = append(splices, splice{ci, rs, ss})
					extra += len(rs)
				}
				ei = j
			}
		}
		if len(splices) == 0 {
			return nil, nil
		}
		nkeys := make([]uint64, 0, len(n.keys)+extra)
		nkids := make([]node, 0, len(n.kids)+extra)
		si := 0
		for ci, kid := range n.kids {
			if ci > 0 {
				nkeys = append(nkeys, n.keys[ci-1])
			}
			nkids = append(nkids, kid)
			if si < len(splices) && splices[si].at == ci {
				for r := range splices[si].rights {
					nkeys = append(nkeys, splices[si].seps[r])
					nkids = append(nkids, splices[si].rights[r])
				}
				si++
			}
		}
		n.keys, n.kids = nkeys, nkids
		if len(n.keys) <= order {
			return nil, nil
		}
		return t.splitInternal(n)
	}
	panic("ftlmap: unknown node type")
}

// mergeRunIntoLeaf merges a sorted run into a leaf's sorted arrays in one
// two-pointer pass, replacing values for duplicate keys. The two dominant
// workloads take allocation-free fast paths: a run appended past the leaf's
// last key (bulk fill of a fresh region) and a run whose keys are all
// already present (steady-state overwrite).
func (t *Tree) mergeRunIntoLeaf(lf *leaf, entries []Entry, base int, onPrev func(int, uint64)) {
	if len(lf.keys) == 0 || entries[0].Key > lf.keys[len(lf.keys)-1] {
		for j := range entries {
			lf.keys = append(lf.keys, entries[j].Key)
			lf.vals = append(lf.vals, entries[j].Val)
		}
		t.size += len(entries)
		return
	}
	if i0 := lowerBound(lf.keys, entries[0].Key); i0+len(entries) <= len(lf.keys) {
		match := true
		for j := range entries {
			if lf.keys[i0+j] != entries[j].Key {
				match = false
				break
			}
		}
		if match {
			for j := range entries {
				if onPrev != nil {
					onPrev(base+j, lf.vals[i0+j])
				}
				lf.vals[i0+j] = entries[j].Val
			}
			return
		}
	}
	nk := make([]uint64, 0, len(lf.keys)+len(entries))
	nv := make([]uint64, 0, len(lf.keys)+len(entries))
	i, j := 0, 0
	for i < len(lf.keys) && j < len(entries) {
		switch {
		case lf.keys[i] < entries[j].Key:
			nk = append(nk, lf.keys[i])
			nv = append(nv, lf.vals[i])
			i++
		case lf.keys[i] > entries[j].Key:
			nk = append(nk, entries[j].Key)
			nv = append(nv, entries[j].Val)
			j++
			t.size++
		default:
			if onPrev != nil {
				onPrev(base+j, lf.vals[i])
			}
			nk = append(nk, entries[j].Key)
			nv = append(nv, entries[j].Val)
			i++
			j++
		}
	}
	for ; i < len(lf.keys); i++ {
		nk = append(nk, lf.keys[i])
		nv = append(nv, lf.vals[i])
	}
	for ; j < len(entries); j++ {
		nk = append(nk, entries[j].Key)
		nv = append(nv, entries[j].Val)
		t.size++
	}
	lf.keys, lf.vals = nk, nv
}

// splitLeaf splits an overfull leaf into balanced pieces of at most order
// keys. The first piece stays in lf; the rest are returned with their
// separator keys (each new leaf's first key), chain-linked in place.
func (t *Tree) splitLeaf(lf *leaf) (rights []node, seps []uint64) {
	total := len(lf.keys)
	pieces := (total + order - 1) / order
	per := total / pieces
	extra := total % pieces
	sizeOf := func(p int) int {
		if p < extra {
			return per + 1
		}
		return per
	}
	start := sizeOf(0)
	prev := lf
	tail := lf.next
	for p := 1; p < pieces; p++ {
		end := start + sizeOf(p)
		r := &leaf{
			keys: append([]uint64(nil), lf.keys[start:end]...),
			vals: append([]uint64(nil), lf.vals[start:end]...),
		}
		prev.next = r
		prev = r
		rights = append(rights, r)
		seps = append(seps, r.keys[0])
		t.leaves++
		start = end
	}
	prev.next = tail
	lf.keys = lf.keys[:sizeOf(0)]
	lf.vals = lf.vals[:sizeOf(0)]
	return rights, seps
}

// splitInternal splits an overfull internal node into balanced pieces of at
// most order keys, promoting one separator key between each pair of pieces.
// The first piece stays in n.
func (t *Tree) splitInternal(n *internal) (rights []node, seps []uint64) {
	total := len(n.keys)
	// m pieces hold total-(m-1) keys after promoting m-1 separators.
	pieces := (total + 1 + order) / (order + 1)
	kept := total - (pieces - 1)
	per := kept / pieces
	extra := kept % pieces
	sizeOf := func(p int) int {
		if p < extra {
			return per + 1
		}
		return per
	}
	start := sizeOf(0)
	for p := 1; p < pieces; p++ {
		sep := n.keys[start]
		kstart := start + 1
		kend := kstart + sizeOf(p)
		r := &internal{
			keys: append([]uint64(nil), n.keys[kstart:kend]...),
			kids: append([]node(nil), n.kids[kstart:kend+1]...),
		}
		rights = append(rights, r)
		seps = append(seps, sep)
		t.internals++
		start = kend
	}
	n.keys = n.keys[:sizeOf(0)]
	n.kids = n.kids[:sizeOf(0)+1]
	return rights, seps
}

// DeleteRange removes every mapping with lo <= key < hi, calling onDel (if
// non-nil) for each removed pair in ascending key order, and returns the
// number removed. Emptied leaves are unlinked from the chain and emptied
// nodes pruned; interior nodes are allowed to underflow (like the per-key
// Delete path after merges, occupancy below the split threshold is legal —
// the tree only guarantees ordering and depth invariants).
func (t *Tree) DeleteRange(lo, hi uint64, onDel func(key, val uint64)) int {
	if hi <= lo {
		return 0
	}
	// Locate the leaf chain predecessor of the range: the rightmost leaf
	// strictly to the left of the descent path, so the chain can be repaired
	// if leading leaves of the range empty out.
	var pred *leaf
	n := t.root
	for {
		in, ok := n.(*internal)
		if !ok {
			break
		}
		idx := upperBound(in.keys, lo)
		if idx > 0 {
			r := in.kids[idx-1]
			for {
				if rin, ok := r.(*internal); ok {
					r = rin.kids[len(rin.kids)-1]
					continue
				}
				break
			}
			pred = r.(*leaf)
		}
		n = in.kids[idx]
	}
	first := n.(*leaf)

	// Splice the range out of each touched leaf.
	deleted := 0
	last := first
	for lf := first; lf != nil; lf = lf.next {
		last = lf
		i := lowerBound(lf.keys, lo)
		j := lowerBound(lf.keys, hi)
		if onDel != nil {
			for k := i; k < j; k++ {
				onDel(lf.keys[k], lf.vals[k])
			}
		}
		if j > i {
			deleted += j - i
			lf.keys = append(lf.keys[:i], lf.keys[j:]...)
			lf.vals = append(lf.vals[:i], lf.vals[j:]...)
		}
		if lf.next != nil && len(lf.next.keys) > 0 && lf.next.keys[0] >= hi {
			break
		}
	}
	if deleted == 0 {
		return 0
	}
	t.size -= deleted

	// Repair the chain across emptied leaves. Empty leaves form a contiguous
	// stretch within [first, last]; link the last surviving leaf before the
	// stretch to the first surviving leaf after it.
	link := pred
	for lf := first; ; lf = lf.next {
		if len(lf.keys) > 0 {
			link = lf
		} else if link != nil {
			link.next = lf.next
		}
		if lf == last {
			break
		}
	}

	// Prune emptied nodes bottom-up along the touched range. An empty root
	// leaf is already the canonical empty tree, so only internal roots need
	// the pass.
	if _, ok := t.root.(*internal); ok {
		if t.prune(t.root, lo, hi) {
			t.root = &leaf{}
			t.height = 1
			t.leaves = 1
			return deleted
		}
		for {
			in, ok := t.root.(*internal)
			if !ok || len(in.kids) != 1 {
				break
			}
			t.root = in.kids[0]
			t.internals--
			t.height--
		}
	}
	return deleted
}

// prune removes empty descendants of n within the touched key range and
// reports whether n itself is now empty (its node counter already adjusted).
func (t *Tree) prune(n node, lo, hi uint64) (empty bool) {
	switch n := n.(type) {
	case *leaf:
		if len(n.keys) == 0 {
			t.leaves--
			return true
		}
		return false
	case *internal:
		// Kids that can intersect [lo, hi): the descent targets for lo
		// through hi-1 inclusive (hi > lo is guaranteed by the caller).
		from := upperBound(n.keys, lo)
		to := upperBound(n.keys, hi-1)
		w := from
		for ci := from; ci <= to; ci++ {
			if t.prune(n.kids[ci], lo, hi) {
				continue
			}
			n.kids[w] = n.kids[ci]
			w++
		}
		removed := to + 1 - w
		if removed > 0 {
			copy(n.kids[w:], n.kids[to+1:])
			n.kids = n.kids[:len(n.kids)-removed]
			if removed >= len(n.keys) {
				n.keys = n.keys[:0]
			} else {
				// Each removed kid consumes one adjacent separator: its left
				// one when a left sibling survives, its right one otherwise.
				ks := w
				if ks > 0 {
					ks--
				}
				n.keys = append(n.keys[:ks], n.keys[ks+removed:]...)
			}
		}
		if len(n.kids) == 0 {
			t.internals--
			return true
		}
		return false
	}
	panic("ftlmap: unknown node type")
}
