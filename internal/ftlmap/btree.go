// Package ftlmap implements the FTL's forward map: an in-memory B+tree
// translating logical block addresses (LBAs) to physical page addresses,
// the structure the paper's VSL keeps in host memory (§5.2.2).
//
// Besides the usual insert/lookup/delete, the tree supports bottom-up bulk
// loading from sorted entries. That is how both crash recovery (§5.5.1,
// "sort the entries ... and reconstruct the forward map in a bottom up
// fashion") and snapshot activation build their trees — and why an activated
// snapshot's tree is more compact than an organically grown active tree with
// identical contents, the effect the paper measures in Table 3.
package ftlmap

import "fmt"

// order is the maximum number of keys per node. 64 keys × 16 bytes keeps
// nodes around a cache-line-friendly 1 KB.
const order = 64

// minKeys is the underflow threshold for non-root nodes.
const minKeys = order / 2

// Tree is a B+tree from uint64 keys (LBAs) to uint64 values (physical page
// addresses). The zero value is not usable; call New.
type Tree struct {
	root      node
	height    int // 1 = root is a leaf
	size      int
	leaves    int
	internals int
}

type node interface{ isNode() }

type leaf struct {
	keys []uint64
	vals []uint64
	next *leaf
}

type internal struct {
	keys []uint64 // keys[i] separates kids[i] (< keys[i]) from kids[i+1] (>= keys[i])
	kids []node
}

func (*leaf) isNode()     {}
func (*internal) isNode() {}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}, height: 1, leaves: 1}
}

// Len returns the number of mappings.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Nodes returns the number of leaf and internal nodes.
func (t *Tree) Nodes() (leaves, internals int) { return t.leaves, t.internals }

// MemoryBytes estimates the heap footprint of the tree: per-node fixed
// overhead plus per-entry storage, using each node's *capacity* (allocated
// space), which is what makes fragmentation after random growth visible —
// the paper's Table 3 effect.
func (t *Tree) MemoryBytes() int64 {
	var total int64
	var walk func(n node)
	walk = func(n node) {
		switch n := n.(type) {
		case *leaf:
			total += 48 + int64(cap(n.keys))*8 + int64(cap(n.vals))*8
		case *internal:
			total += 48 + int64(cap(n.keys))*8 + int64(cap(n.kids))*16
			for _, k := range n.kids {
				walk(k)
			}
		}
	}
	walk(t.root)
	return total
}

// upperBound returns the first index i with keys[i] > k.
func upperBound(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the first index i with keys[i] >= k.
func lowerBound(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Lookup returns the value mapped to key and whether it exists.
func (t *Tree) Lookup(key uint64) (uint64, bool) {
	n := t.root
	for {
		switch nn := n.(type) {
		case *internal:
			n = nn.kids[upperBound(nn.keys, key)]
		case *leaf:
			i := lowerBound(nn.keys, key)
			if i < len(nn.keys) && nn.keys[i] == key {
				return nn.vals[i], true
			}
			return 0, false
		}
	}
}

// Insert adds or replaces the mapping for key. It returns the previous value
// and whether one existed.
func (t *Tree) Insert(key, val uint64) (prev uint64, existed bool) {
	right, sep, split, prev, existed := t.insert(t.root, key, val)
	if split {
		t.root = &internal{keys: []uint64{sep}, kids: []node{t.root, right}}
		t.internals++
		t.height++
	}
	if !existed {
		t.size++
	}
	return prev, existed
}

func (t *Tree) insert(n node, key, val uint64) (right node, sep uint64, split bool, prev uint64, existed bool) {
	switch n := n.(type) {
	case *leaf:
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			prev, existed = n.vals[i], true
			n.vals[i] = val
			return nil, 0, false, prev, existed
		}
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = val
		if len(n.keys) <= order {
			return nil, 0, false, 0, false
		}
		// Split the leaf.
		mid := len(n.keys) / 2
		r := &leaf{
			keys: append([]uint64(nil), n.keys[mid:]...),
			vals: append([]uint64(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = r
		t.leaves++
		return r, r.keys[0], true, 0, false
	case *internal:
		idx := upperBound(n.keys, key)
		r, s, sp, prev, existed := t.insert(n.kids[idx], key, val)
		if !sp {
			return nil, 0, false, prev, existed
		}
		n.keys = append(n.keys, 0)
		n.kids = append(n.kids, nil)
		copy(n.keys[idx+1:], n.keys[idx:])
		copy(n.kids[idx+2:], n.kids[idx+1:])
		n.keys[idx] = s
		n.kids[idx+1] = r
		if len(n.keys) <= order {
			return nil, 0, false, prev, existed
		}
		mid := len(n.keys) / 2
		sepUp := n.keys[mid]
		rn := &internal{
			keys: append([]uint64(nil), n.keys[mid+1:]...),
			kids: append([]node(nil), n.kids[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.kids = n.kids[:mid+1]
		t.internals++
		return rn, sepUp, true, prev, existed
	}
	panic("ftlmap: unknown node type")
}

// Delete removes the mapping for key, returning its value and whether it
// existed.
func (t *Tree) Delete(key uint64) (uint64, bool) {
	val, existed := t.delete(t.root, key)
	if existed {
		t.size--
	}
	// Collapse a root internal node with a single child.
	if in, ok := t.root.(*internal); ok && len(in.kids) == 1 {
		t.root = in.kids[0]
		t.internals--
		t.height--
	}
	return val, existed
}

func (t *Tree) delete(n node, key uint64) (uint64, bool) {
	switch n := n.(type) {
	case *leaf:
		i := lowerBound(n.keys, key)
		if i >= len(n.keys) || n.keys[i] != key {
			return 0, false
		}
		val := n.vals[i]
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return val, true
	case *internal:
		idx := upperBound(n.keys, key)
		val, existed := t.delete(n.kids[idx], key)
		if existed {
			t.rebalance(n, idx)
		}
		return val, existed
	}
	panic("ftlmap: unknown node type")
}

// rebalance fixes a possible underflow of n.kids[idx] by borrowing from or
// merging with a sibling.
func (t *Tree) rebalance(n *internal, idx int) {
	switch child := n.kids[idx].(type) {
	case *leaf:
		if len(child.keys) >= minKeys {
			return
		}
		// Borrow from left sibling.
		if idx > 0 {
			left := n.kids[idx-1].(*leaf)
			if len(left.keys) > minKeys {
				last := len(left.keys) - 1
				child.keys = append([]uint64{left.keys[last]}, child.keys...)
				child.vals = append([]uint64{left.vals[last]}, child.vals...)
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				n.keys[idx-1] = child.keys[0]
				return
			}
		}
		// Borrow from right sibling.
		if idx < len(n.kids)-1 {
			right := n.kids[idx+1].(*leaf)
			if len(right.keys) > minKeys {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = right.keys[1:]
				right.vals = right.vals[1:]
				n.keys[idx] = right.keys[0]
				return
			}
		}
		// Merge with a sibling.
		if idx > 0 {
			left := n.kids[idx-1].(*leaf)
			left.keys = append(left.keys, child.keys...)
			left.vals = append(left.vals, child.vals...)
			left.next = child.next
			n.keys = append(n.keys[:idx-1], n.keys[idx:]...)
			n.kids = append(n.kids[:idx], n.kids[idx+1:]...)
			t.leaves--
			return
		}
		right := n.kids[idx+1].(*leaf)
		child.keys = append(child.keys, right.keys...)
		child.vals = append(child.vals, right.vals...)
		child.next = right.next
		n.keys = append(n.keys[:idx], n.keys[idx+1:]...)
		n.kids = append(n.kids[:idx+1], n.kids[idx+2:]...)
		t.leaves--
	case *internal:
		if len(child.keys) >= minKeys {
			return
		}
		if idx > 0 {
			left := n.kids[idx-1].(*internal)
			if len(left.keys) > minKeys {
				last := len(left.keys) - 1
				child.keys = append([]uint64{n.keys[idx-1]}, child.keys...)
				child.kids = append([]node{left.kids[len(left.kids)-1]}, child.kids...)
				n.keys[idx-1] = left.keys[last]
				left.keys = left.keys[:last]
				left.kids = left.kids[:len(left.kids)-1]
				return
			}
		}
		if idx < len(n.kids)-1 {
			right := n.kids[idx+1].(*internal)
			if len(right.keys) > minKeys {
				child.keys = append(child.keys, n.keys[idx])
				child.kids = append(child.kids, right.kids[0])
				n.keys[idx] = right.keys[0]
				right.keys = right.keys[1:]
				right.kids = right.kids[1:]
				return
			}
		}
		if idx > 0 {
			left := n.kids[idx-1].(*internal)
			left.keys = append(left.keys, n.keys[idx-1])
			left.keys = append(left.keys, child.keys...)
			left.kids = append(left.kids, child.kids...)
			n.keys = append(n.keys[:idx-1], n.keys[idx:]...)
			n.kids = append(n.kids[:idx], n.kids[idx+1:]...)
			t.internals--
			return
		}
		right := n.kids[idx+1].(*internal)
		child.keys = append(child.keys, n.keys[idx])
		child.keys = append(child.keys, right.keys...)
		child.kids = append(child.kids, right.kids...)
		n.keys = append(n.keys[:idx], n.keys[idx+1:]...)
		n.kids = append(n.kids[:idx+1], n.kids[idx+2:]...)
		t.internals--
	}
}

// Range calls fn for every mapping with lo <= key < hi in ascending key
// order, stopping early if fn returns false.
func (t *Tree) Range(lo, hi uint64, fn func(key, val uint64) bool) {
	n := t.root
	for {
		in, ok := n.(*internal)
		if !ok {
			break
		}
		n = in.kids[upperBound(in.keys, lo)]
	}
	for lf := n.(*leaf); lf != nil; lf = lf.next {
		for i, k := range lf.keys {
			if k < lo {
				continue
			}
			if k >= hi {
				return
			}
			if !fn(k, lf.vals[i]) {
				return
			}
		}
	}
}

// All calls fn for every mapping in ascending key order.
func (t *Tree) All(fn func(key, val uint64) bool) {
	t.Range(0, ^uint64(0), fn)
	// Note: ^uint64(0) itself can never be visited as hi is exclusive; the
	// FTL never uses the all-ones LBA, reserving it as an invalid sentinel.
}

// Entry is one key/value pair, used by BulkLoad.
type Entry struct {
	Key uint64
	Val uint64
}

// BulkLoad builds a tree bottom-up from entries sorted by ascending unique
// key, packing leaves to the given fill factor in (0, 1]. A fill of 1 yields
// the most compact tree possible. It panics if entries are unsorted or
// duplicated — callers sort and deduplicate during recovery/activation.
func BulkLoad(entries []Entry, fill float64) *Tree {
	if fill <= 0 || fill > 1 {
		panic(fmt.Sprintf("ftlmap: fill factor %v out of (0,1]", fill))
	}
	perLeaf := int(float64(order) * fill)
	if perLeaf < 1 {
		perLeaf = 1
	}
	t := &Tree{}
	if len(entries) == 0 {
		t.root = &leaf{}
		t.height = 1
		t.leaves = 1
		return t
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key <= entries[i-1].Key {
			panic("ftlmap: BulkLoad entries not strictly ascending")
		}
	}

	// Build packed leaves.
	var leaves []node
	var seps []uint64 // seps[i] = first key of leaves[i+1]
	for start := 0; start < len(entries); start += perLeaf {
		end := start + perLeaf
		if end > len(entries) {
			end = len(entries)
		}
		lf := &leaf{
			keys: make([]uint64, end-start),
			vals: make([]uint64, end-start),
		}
		for i := start; i < end; i++ {
			lf.keys[i-start] = entries[i].Key
			lf.vals[i-start] = entries[i].Val
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].(*leaf).next = lf
			seps = append(seps, lf.keys[0])
		}
		leaves = append(leaves, lf)
	}
	t.leaves = len(leaves)
	t.size = len(entries)

	// Build internal levels until a single root remains.
	level := leaves
	levelSeps := seps
	t.height = 1
	perNode := perLeaf
	if perNode > order {
		perNode = order
	}
	for len(level) > 1 {
		var nextLevel []node
		var nextSeps []uint64
		for start := 0; start < len(level); start += perNode + 1 {
			end := start + perNode + 1
			if end > len(level) {
				end = len(level)
			}
			in := &internal{
				kids: append([]node(nil), level[start:end]...),
				keys: append([]uint64(nil), levelSeps[start:end-1]...),
			}
			t.internals++
			if len(nextLevel) > 0 {
				nextSeps = append(nextSeps, levelSeps[start-1])
			}
			nextLevel = append(nextLevel, in)
		}
		level = nextLevel
		levelSeps = nextSeps
		t.height++
	}
	t.root = level[0]
	return t
}

// check validates tree invariants; it is exported to tests via export_test.
func (t *Tree) check() error {
	type bound struct{ lo, hi uint64 } // keys in [lo, hi)
	var walk func(n node, b bound, depth int) error
	walk = func(n node, b bound, depth int) error {
		switch n := n.(type) {
		case *leaf:
			if depth != t.height {
				return fmt.Errorf("leaf at depth %d, height %d", depth, t.height)
			}
			for i, k := range n.keys {
				if k < b.lo || k >= b.hi {
					return fmt.Errorf("leaf key %d out of bound [%d,%d)", k, b.lo, b.hi)
				}
				if i > 0 && n.keys[i-1] >= k {
					return fmt.Errorf("leaf keys not ascending at %d", k)
				}
			}
		case *internal:
			if len(n.kids) != len(n.keys)+1 {
				return fmt.Errorf("internal fanout mismatch: %d kids, %d keys", len(n.kids), len(n.keys))
			}
			for i, k := range n.keys {
				if k < b.lo || k >= b.hi {
					return fmt.Errorf("internal key %d out of bound [%d,%d)", k, b.lo, b.hi)
				}
				if i > 0 && n.keys[i-1] >= k {
					return fmt.Errorf("internal keys not ascending at %d", k)
				}
			}
			for i, kid := range n.kids {
				lo, hi := b.lo, b.hi
				if i > 0 {
					lo = n.keys[i-1]
				}
				if i < len(n.keys) {
					hi = n.keys[i]
				}
				if err := walk(kid, bound{lo, hi}, depth+1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(t.root, bound{0, ^uint64(0)}, 1)
}
