package ftlmap

// Check exposes the internal invariant checker to tests.
func (t *Tree) Check() error { return t.check() }
