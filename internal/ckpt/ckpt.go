// Package ckpt is the chunk codec shared by both FTLs' checkpoints.
//
// A checkpoint is an opaque byte stream of typed sections, framed with a
// magic, a version, the checkpoint's identity (ID + the log sequence number
// it captures), an explicit length, and an FNV-64a checksum, then split
// into sector-sized chunks for programming onto the log. Every chunk is
// prefixed with the checkpoint ID so recovery can group chunks by
// generation: two checkpoints interrupted at the right moments can leave
// chunks of *different* generations on the device, and an index-set check
// alone would happily stitch them into a complete-looking, corrupt stream.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Section is one typed region of a checkpoint stream. Kind is
// FTL-defined; the codec only frames it.
type Section struct {
	Kind uint8
	Data []byte
}

const (
	version = 1
	// ChunkPrefix is the per-chunk generation tag: the checkpoint ID,
	// little-endian, at offset 0 of every chunk.
	ChunkPrefix = 8

	headerLen   = 4 + 1 + 8 + 8 + 4 + 4 // magic ver id seq totalLen nsec
	checksumLen = 8
)

var magic = [4]byte{'i', 'C', 'k', 'p'}

var (
	ErrBadMagic    = errors.New("ckpt: bad magic")
	ErrBadVersion  = errors.New("ckpt: unsupported version")
	ErrTruncated   = errors.New("ckpt: truncated stream")
	ErrBadChecksum = errors.New("ckpt: checksum mismatch")
	ErrBadChunk    = errors.New("ckpt: malformed chunk")
)

// Encode frames sections into a self-checking stream.
func Encode(ckptID, ckptSeq uint64, secs []Section) []byte {
	total := headerLen + checksumLen
	for _, s := range secs {
		total += 1 + 4 + len(s.Data)
	}
	b := make([]byte, 0, total)
	b = append(b, magic[:]...)
	b = append(b, version)
	b = binary.LittleEndian.AppendUint64(b, ckptID)
	b = binary.LittleEndian.AppendUint64(b, ckptSeq)
	b = binary.LittleEndian.AppendUint32(b, uint32(total))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(secs)))
	for _, s := range secs {
		b = append(b, s.Kind)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Data)))
		b = append(b, s.Data...)
	}
	h := fnv.New64a()
	h.Write(b)
	return binary.LittleEndian.AppendUint64(b, h.Sum64())
}

// Decode validates framing and checksum and returns the sections. The
// input may carry trailing padding (Join concatenates whole chunks).
func Decode(stream []byte) (ckptID, ckptSeq uint64, secs []Section, err error) {
	if len(stream) < headerLen+checksumLen {
		return 0, 0, nil, ErrTruncated
	}
	if [4]byte(stream[:4]) != magic {
		return 0, 0, nil, ErrBadMagic
	}
	if stream[4] != version {
		return 0, 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, stream[4])
	}
	ckptID = binary.LittleEndian.Uint64(stream[5:])
	ckptSeq = binary.LittleEndian.Uint64(stream[13:])
	total := int(binary.LittleEndian.Uint32(stream[21:]))
	nsec := int(binary.LittleEndian.Uint32(stream[25:]))
	if total < headerLen+checksumLen || total > len(stream) {
		return 0, 0, nil, ErrTruncated
	}
	body, sum := stream[:total-checksumLen], binary.LittleEndian.Uint64(stream[total-checksumLen:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return 0, 0, nil, ErrBadChecksum
	}
	off := headerLen
	secs = make([]Section, 0, nsec)
	for i := 0; i < nsec; i++ {
		if off+5 > len(body) {
			return 0, 0, nil, ErrTruncated
		}
		kind := body[off]
		n := int(binary.LittleEndian.Uint32(body[off+1:]))
		off += 5
		if n < 0 || off+n > len(body) {
			return 0, 0, nil, ErrTruncated
		}
		secs = append(secs, Section{Kind: kind, Data: body[off : off+n]})
		off += n
	}
	return ckptID, ckptSeq, secs, nil
}

// Split cuts a stream into sector-sized chunks, each prefixed with the
// checkpoint ID. The last chunk is zero-padded; Decode's explicit length
// makes the padding harmless.
func Split(ckptID uint64, stream []byte, sectorSize int) ([][]byte, error) {
	payload := sectorSize - ChunkPrefix
	if payload <= 0 {
		return nil, fmt.Errorf("ckpt: sector size %d leaves no chunk payload", sectorSize)
	}
	n := (len(stream) + payload - 1) / payload
	if n == 0 {
		n = 1
	}
	chunks := make([][]byte, n)
	for i := range chunks {
		c := make([]byte, sectorSize)
		binary.LittleEndian.PutUint64(c, ckptID)
		lo := i * payload
		hi := min(lo+payload, len(stream))
		if lo < len(stream) {
			copy(c[ChunkPrefix:], stream[lo:hi])
		}
		chunks[i] = c
	}
	return chunks, nil
}

// Join strips the per-chunk prefixes, verifying every chunk carries the
// expected checkpoint ID, and returns the concatenated stream (with the
// final chunk's padding still attached).
func Join(ckptID uint64, chunks [][]byte) ([]byte, error) {
	var out []byte
	for i, c := range chunks {
		if len(c) <= ChunkPrefix {
			return nil, fmt.Errorf("%w: chunk %d too short", ErrBadChunk, i)
		}
		if id := binary.LittleEndian.Uint64(c); id != ckptID {
			return nil, fmt.Errorf("%w: chunk %d has id %d, want %d", ErrBadChunk, i, id, ckptID)
		}
		out = append(out, c[ChunkPrefix:]...)
	}
	if len(out) == 0 {
		return nil, ErrTruncated
	}
	return out, nil
}

// ChunkID reads the generation tag off a raw chunk.
func ChunkID(chunk []byte) (uint64, bool) {
	if len(chunk) < ChunkPrefix {
		return 0, false
	}
	return binary.LittleEndian.Uint64(chunk), true
}

// Writer accumulates little-endian fields for a section body.
type Writer struct{ B []byte }

func (w *Writer) U8(v uint8)   { w.B = append(w.B, v) }
func (w *Writer) U32(v uint32) { w.B = binary.LittleEndian.AppendUint32(w.B, v) }
func (w *Writer) U64(v uint64) { w.B = binary.LittleEndian.AppendUint64(w.B, v) }
func (w *Writer) Bool(v bool)  { w.U8(map[bool]uint8{false: 0, true: 1}[v]) }
func (w *Writer) Bytes(p []byte) {
	w.U32(uint32(len(p)))
	w.B = append(w.B, p...)
}

// Reader decodes what Writer produced; the first framing violation
// latches sticky into Err and zero values flow after it.
type Reader struct {
	B   []byte
	off int
	err error
}

func (r *Reader) fail() { r.err = ErrTruncated }

func (r *Reader) U8() uint8 {
	if r.err != nil || r.off+1 > len(r.B) {
		if r.err == nil {
			r.fail()
		}
		return 0
	}
	v := r.B[r.off]
	r.off++
	return v
}

func (r *Reader) U32() uint32 {
	if r.err != nil || r.off+4 > len(r.B) {
		if r.err == nil {
			r.fail()
		}
		return 0
	}
	v := binary.LittleEndian.Uint32(r.B[r.off:])
	r.off += 4
	return v
}

func (r *Reader) U64() uint64 {
	if r.err != nil || r.off+8 > len(r.B) {
		if r.err == nil {
			r.fail()
		}
		return 0
	}
	v := binary.LittleEndian.Uint64(r.B[r.off:])
	r.off += 8
	return v
}

func (r *Reader) Bool() bool { return r.U8() != 0 }

func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if r.err != nil || n < 0 || r.off+n > len(r.B) {
		if r.err == nil {
			r.fail()
		}
		return nil
	}
	v := r.B[r.off : r.off+n]
	r.off += n
	return v
}

// Err reports the first framing violation seen by this reader.
func (r *Reader) Err() error { return r.err }

// Rest reports how many bytes remain unread.
func (r *Reader) Rest() int { return len(r.B) - r.off }
