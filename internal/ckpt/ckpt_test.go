package ckpt

import (
	"bytes"
	"errors"
	"testing"
)

func roundTrip(t *testing.T, id, seq uint64, secs []Section, sectorSize int) []Section {
	t.Helper()
	stream := Encode(id, seq, secs)
	chunks, err := Split(id, stream, sectorSize)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	for _, c := range chunks {
		if len(c) != sectorSize {
			t.Fatalf("chunk size %d, want %d", len(c), sectorSize)
		}
		got, ok := ChunkID(c)
		if !ok || got != id {
			t.Fatalf("ChunkID = %d,%v want %d", got, ok, id)
		}
	}
	joined, err := Join(id, chunks)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	gotID, gotSeq, got, err := Decode(joined)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if gotID != id || gotSeq != seq {
		t.Fatalf("Decode identity = (%d,%d), want (%d,%d)", gotID, gotSeq, id, seq)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	secs := []Section{
		{Kind: 1, Data: []byte("forward map payload")},
		{Kind: 2, Data: nil},
		{Kind: 3, Data: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	got := roundTrip(t, 42, 1234, secs, 128)
	if len(got) != len(secs) {
		t.Fatalf("got %d sections, want %d", len(got), len(secs))
	}
	for i, s := range secs {
		if got[i].Kind != s.Kind || !bytes.Equal(got[i].Data, s.Data) {
			t.Fatalf("section %d mismatch", i)
		}
	}
}

func TestEmptySections(t *testing.T) {
	if got := roundTrip(t, 7, 0, nil, 64); len(got) != 0 {
		t.Fatalf("got %d sections, want 0", len(got))
	}
}

func TestCorruptionDetected(t *testing.T) {
	stream := Encode(9, 9, []Section{{Kind: 5, Data: bytes.Repeat([]byte{7}, 300)}})
	for _, pos := range []int{0, 4, 10, headerLen + 3, len(stream) - 1} {
		bad := append([]byte(nil), stream...)
		bad[pos] ^= 0xFF
		if _, _, _, err := Decode(bad); err == nil {
			t.Fatalf("Decode accepted corruption at byte %d", pos)
		}
	}
	if _, _, _, err := Decode(stream[:len(stream)-3]); err == nil {
		t.Fatal("Decode accepted truncated stream")
	}
}

func TestJoinRejectsForeignChunk(t *testing.T) {
	stream := Encode(1, 1, []Section{{Kind: 1, Data: bytes.Repeat([]byte{3}, 200)}})
	chunks, err := Split(1, stream, 64)
	if err != nil {
		t.Fatal(err)
	}
	other, err := Split(2, Encode(2, 2, nil), 64)
	if err != nil {
		t.Fatal(err)
	}
	chunks[1] = other[0]
	if _, err := Join(1, chunks); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("Join = %v, want ErrBadChunk", err)
	}
}

func TestSplitTinySector(t *testing.T) {
	if _, err := Split(1, []byte{1}, ChunkPrefix); err == nil {
		t.Fatal("Split accepted sector with no payload room")
	}
}

func TestWriterReader(t *testing.T) {
	var w Writer
	w.U8(3)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte("hello"))

	r := Reader{B: w.B}
	if v := r.U8(); v != 3 {
		t.Fatalf("U8 = %d", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Fatalf("U32 = %x", v)
	}
	if v := r.U64(); v != 1<<60 {
		t.Fatalf("U64 = %x", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool mismatch")
	}
	if v := r.Bytes(); string(v) != "hello" {
		t.Fatalf("Bytes = %q", v)
	}
	if r.Err() != nil || r.Rest() != 0 {
		t.Fatalf("Err=%v Rest=%d", r.Err(), r.Rest())
	}
	// Reading past the end latches the sticky error.
	if r.U64(); r.Err() == nil {
		t.Fatal("overread not detected")
	}
}
