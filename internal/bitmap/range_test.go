package bitmap

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestBitmapRangeKernelsMatchPerBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	a := New(n)
	b := New(n)
	for step := 0; step < 2000; step++ {
		lo := int64(rng.Intn(n))
		hi := lo + 1 + int64(rng.Intn(300))
		if hi > n {
			hi = n
		}
		if rng.Intn(2) == 0 {
			a.SetRange(lo, hi)
			for i := lo; i < hi; i++ {
				b.Set(i)
			}
		} else {
			a.ClearRange(lo, hi)
			for i := lo; i < hi; i++ {
				b.Clear(i)
			}
		}
		if !a.Equal(b) {
			t.Fatalf("step %d: range kernel diverged from per-bit after [%d,%d)", step, lo, hi)
		}
	}
	if a.Count() == 0 {
		t.Fatal("degenerate test: nothing ever set")
	}
}

// TestStoreRangeKernelsMatchPerBit drives two stores with an identical
// random schedule of epoch creates/deletes and validity flips — one using
// SetRange/ClearRange, one using per-bit Set/Clear — and demands identical
// bit views for every live epoch AND an identical cumulative CoW-copy count
// (the quantity CoWPageCost is charged against).
func TestStoreRangeKernelsMatchPerBit(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const n = 4096 * 4 // 4 CoW pages at the small page size below
			const bpp = 4096
			ranged := NewStore(n, bpp)
			perBit := NewStore(n, bpp)
			for _, s := range []*Store{ranged, perBit} {
				if err := s.CreateEpoch(0, NoParent); err != nil {
					t.Fatal(err)
				}
			}
			live := []Epoch{0}
			nextEpoch := Epoch(1)
			for step := 0; step < 1500; step++ {
				switch rng.Intn(10) {
				case 0: // snapshot: new epoch inheriting a random live one
					parent := live[rng.Intn(len(live))]
					for _, s := range []*Store{ranged, perBit} {
						if err := s.CreateEpoch(nextEpoch, parent); err != nil {
							t.Fatal(err)
						}
					}
					live = append(live, nextEpoch)
					nextEpoch++
				case 1: // delete a random non-root epoch
					if len(live) > 1 {
						i := 1 + rng.Intn(len(live)-1)
						for _, s := range []*Store{ranged, perBit} {
							if err := s.DeleteEpoch(live[i]); err != nil {
								t.Fatal(err)
							}
						}
						live = append(live[:i], live[i+1:]...)
					}
				default:
					e := live[rng.Intn(len(live))]
					lo := int64(rng.Intn(n))
					hi := lo + 1 + int64(rng.Intn(2000))
					if hi > n {
						hi = n
					}
					if rng.Intn(2) == 0 {
						ranged.SetRange(e, lo, hi)
						for i := lo; i < hi; i++ {
							perBit.Set(e, i)
						}
					} else {
						ranged.ClearRange(e, lo, hi)
						for i := lo; i < hi; i++ {
							perBit.Clear(e, i)
						}
					}
				}
				if ranged.CoWCopies() != perBit.CoWCopies() {
					t.Fatalf("step %d: CoW copies diverged: ranged %d, per-bit %d",
						step, ranged.CoWCopies(), perBit.CoWCopies())
				}
			}
			for _, e := range ranged.Epochs() {
				for i := int64(0); i < n; i++ {
					if ranged.Test(e, i) != perBit.Test(e, i) {
						t.Fatalf("epoch %d bit %d: ranged %v per-bit %v",
							e, i, ranged.Test(e, i), perBit.Test(e, i))
					}
				}
			}
			if ranged.CoWCopies() == 0 {
				t.Fatal("degenerate test: no CoW copies happened")
			}
		})
	}
}

func TestStoreSetRangeCoWOncePerPage(t *testing.T) {
	s := NewStore(4096*3, 4096)
	if err := s.CreateEpoch(0, NoParent); err != nil {
		t.Fatal(err)
	}
	// Populate all three pages in epoch 0, then snapshot.
	s.SetRange(0, 0, 4096*3)
	if err := s.CreateEpoch(1, 0); err != nil {
		t.Fatal(err)
	}
	before := s.CoWCopies()
	// A range spanning all three inherited pages must copy exactly three.
	if cows := s.ClearRange(1, 100, 4096*2+200); cows != 3 {
		t.Fatalf("ClearRange reported %d CoW copies, want 3", cows)
	}
	if got := s.CoWCopies() - before; got != 3 {
		t.Fatalf("store counted %d copies, want 3", got)
	}
	// The same range again touches only owned pages: zero copies.
	if cows := s.SetRange(1, 100, 4096*2+200); cows != 0 {
		t.Fatalf("second pass reported %d CoW copies, want 0", cows)
	}
	// Epoch 0's view is untouched.
	if got := s.CountValid(0, 0, 4096*3); got != 4096*3 {
		t.Fatalf("parent lost bits: %d valid", got)
	}
}
