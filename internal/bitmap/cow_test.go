package bitmap

import (
	"testing"

	"iosnap/internal/sim"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(1024, 128) // 8 CoW pages of 128 bits
	if err := s.CreateEpoch(1, NoParent); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreSetTest(t *testing.T) {
	s := newTestStore(t)
	if s.Test(1, 100) {
		t.Fatal("fresh store has bits set")
	}
	if cow := s.Set(1, 100); cow {
		t.Fatal("first Set on a fresh page should not be a CoW copy")
	}
	if !s.Test(1, 100) {
		t.Fatal("Set did not stick")
	}
	s.Clear(1, 100)
	if s.Test(1, 100) {
		t.Fatal("Clear did not stick")
	}
	if s.CoWCopies() != 0 {
		t.Fatalf("CoWCopies = %d, want 0", s.CoWCopies())
	}
}

func TestEpochInheritance(t *testing.T) {
	s := newTestStore(t)
	s.Set(1, 5)
	s.Set(1, 200)
	if err := s.CreateEpoch(2, 1); err != nil {
		t.Fatal(err)
	}
	// Child sees parent's bits without copying anything.
	if !s.Test(2, 5) || !s.Test(2, 200) {
		t.Fatal("child does not inherit parent bits")
	}
	if s.OwnedPages(2) != 0 {
		t.Fatal("inheritance should not allocate pages")
	}
}

func TestCoWOnModify(t *testing.T) {
	s := newTestStore(t)
	s.Set(1, 5)
	if err := s.CreateEpoch(2, 1); err != nil {
		t.Fatal(err)
	}
	// Clearing an inherited bit must copy the page and leave the parent
	// untouched — this is the exact mechanism of paper Figure 5.
	if cow := s.Clear(2, 5); !cow {
		t.Fatal("modifying inherited page should CoW")
	}
	if s.Test(2, 5) {
		t.Fatal("child still sees cleared bit")
	}
	if !s.Test(1, 5) {
		t.Fatal("parent's frozen bitmap was modified")
	}
	if s.CoWCopies() != 1 {
		t.Fatalf("CoWCopies = %d, want 1", s.CoWCopies())
	}
	// Second modification of the same page must not copy again.
	s.Set(2, 6)
	if s.CoWCopies() != 1 {
		t.Fatalf("CoWCopies after second modify = %d, want 1", s.CoWCopies())
	}
}

func TestClearAbsentBitNoCoW(t *testing.T) {
	s := newTestStore(t)
	s.Set(1, 5)
	if err := s.CreateEpoch(2, 1); err != nil {
		t.Fatal(err)
	}
	// Clearing a bit in a page that no ancestor owns is a no-op.
	if cow := s.Clear(2, 900); cow {
		t.Fatal("clearing absent bit copied a page")
	}
	if s.OwnedPages(2) != 0 {
		t.Fatal("clearing absent bit allocated a page")
	}
}

func TestGrandparentChain(t *testing.T) {
	s := newTestStore(t)
	s.Set(1, 10)
	s.CreateEpoch(2, 1)
	s.Set(2, 20)
	s.CreateEpoch(3, 2)
	if !s.Test(3, 10) || !s.Test(3, 20) {
		t.Fatal("grandchild should see whole chain")
	}
	s.Clear(3, 10)
	if !s.Test(1, 10) || !s.Test(2, 10) {
		t.Fatal("ancestors disturbed by grandchild CoW")
	}
}

func TestMergeRange(t *testing.T) {
	s := newTestStore(t)
	s.Set(1, 3)
	s.CreateEpoch(2, 1)
	s.Clear(2, 3) // overwritten in epoch 2
	s.Set(2, 4)

	m := s.MergeRange([]Epoch{1, 2}, 0, 128)
	// Bit 3 valid in snapshot epoch 1, bit 4 valid in active epoch 2.
	if !m.Test(3) || !m.Test(4) {
		t.Fatalf("merged map missing bits: 3=%v 4=%v", m.Test(3), m.Test(4))
	}
	if m.Count() != 2 {
		t.Fatalf("merged count = %d", m.Count())
	}
}

func TestMergeSkipsDeleted(t *testing.T) {
	s := newTestStore(t)
	s.Set(1, 3)
	s.CreateEpoch(2, 1)
	s.Clear(2, 3)
	if err := s.DeleteEpoch(1); err != nil {
		t.Fatal(err)
	}
	m := s.MergeRange([]Epoch{1, 2}, 0, 128)
	// With epoch 1 deleted, its only block is free — exactly paper Fig 6C.
	if m.Test(3) {
		t.Fatal("deleted epoch still contributes to merge")
	}
	if !s.Deleted(1) {
		t.Fatal("Deleted() disagrees")
	}
}

func TestDeletedEpochPagesStillInherited(t *testing.T) {
	s := newTestStore(t)
	s.Set(1, 3)
	s.CreateEpoch(2, 1)
	s.DeleteEpoch(1)
	// Epoch 2 never modified the page; it must still see the bit through
	// the deleted parent (the data is inherited, hence still live).
	if !s.Test(2, 3) {
		t.Fatal("descendant lost inherited state after parent deletion")
	}
}

func TestCreateEpochErrors(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreateEpoch(1, NoParent); err == nil {
		t.Fatal("duplicate epoch accepted")
	}
	if err := s.CreateEpoch(5, 99); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if err := s.DeleteEpoch(99); err == nil {
		t.Fatal("deleting unknown epoch accepted")
	}
}

func TestCountValid(t *testing.T) {
	s := newTestStore(t)
	for i := int64(0); i < 10; i++ {
		s.Set(1, i)
	}
	if got := s.CountValid(1, 0, 1024); got != 10 {
		t.Fatalf("CountValid = %d", got)
	}
	if got := s.CountValid(1, 5, 8); got != 3 {
		t.Fatalf("CountValid range = %d", got)
	}
}

func TestMemoryAccounting(t *testing.T) {
	s := NewStore(1024, 128)
	s.CreateEpoch(1, NoParent)
	if s.MemoryBytes() != 0 {
		t.Fatal("fresh store consumes memory")
	}
	s.Set(1, 0)
	if s.MemoryBytes() != 128/8 {
		t.Fatalf("MemoryBytes = %d, want 16", s.MemoryBytes())
	}
	if s.TotalPages() != 8 {
		t.Fatalf("TotalPages = %d, want 8", s.TotalPages())
	}
	s.ResetCoWCounter()
	if s.CoWCopies() != 0 {
		t.Fatal("ResetCoWCounter failed")
	}
}

func TestEpochsList(t *testing.T) {
	s := newTestStore(t)
	s.CreateEpoch(2, 1)
	s.CreateEpoch(3, 1)
	es := s.Epochs()
	if len(es) != 3 {
		t.Fatalf("Epochs len = %d", len(es))
	}
	if !s.Exists(2) || s.Exists(42) {
		t.Fatal("Exists wrong")
	}
}

// TestCoWStoreMatchesModel is the central property test: arbitrary epoch
// trees with arbitrary Set/Clear sequences must behave exactly like
// independent full-copy bitmaps.
func TestCoWStoreMatchesModel(t *testing.T) {
	rng := sim.NewRNG(7)
	const nBits = 640
	s := NewStore(nBits, 128)
	s.CreateEpoch(0, NoParent)

	type modelEpoch struct {
		bits    map[int64]bool
		mutable bool
	}
	model := map[Epoch]*modelEpoch{0: {bits: map[int64]bool{}, mutable: true}}
	mutable := []Epoch{0}
	all := []Epoch{0}
	next := Epoch(1)

	for step := 0; step < 30000; step++ {
		switch op := rng.Intn(10); {
		case op == 0 && len(all) < 12:
			// Fork a new epoch off a random existing one; freeze the parent
			// (mirrors snapshot create / activate in the FTL).
			parent := all[rng.Intn(len(all))]
			if err := s.CreateEpoch(next, parent); err != nil {
				t.Fatal(err)
			}
			nb := make(map[int64]bool, len(model[parent].bits))
			for k, v := range model[parent].bits {
				nb[k] = v
			}
			model[parent].mutable = false
			model[next] = &modelEpoch{bits: nb, mutable: true}
			all = append(all, next)
			mutable = nil
			for _, e := range all {
				if model[e].mutable {
					mutable = append(mutable, e)
				}
			}
			next++
		case op < 5:
			e := mutable[rng.Intn(len(mutable))]
			i := int64(rng.Intn(nBits))
			s.Set(e, i)
			model[e].bits[i] = true
		case op < 8:
			e := mutable[rng.Intn(len(mutable))]
			i := int64(rng.Intn(nBits))
			s.Clear(e, i)
			delete(model[e].bits, i)
		default:
			e := all[rng.Intn(len(all))]
			i := int64(rng.Intn(nBits))
			if got, want := s.Test(e, i), model[e].bits[i]; got != want {
				t.Fatalf("step %d: epoch %d bit %d = %v, model %v", step, e, i, got, want)
			}
		}
	}

	// Final sweep: every epoch must match its model exactly, and MergeRange
	// must equal the OR of the models.
	for _, e := range all {
		for i := int64(0); i < nBits; i++ {
			if got, want := s.Test(e, i), model[e].bits[i]; got != want {
				t.Fatalf("final: epoch %d bit %d = %v, model %v", e, i, got, want)
			}
		}
	}
	merged := s.MergeRange(all, 0, nBits)
	for i := int64(0); i < nBits; i++ {
		want := false
		for _, e := range all {
			if model[e].bits[i] {
				want = true
				break
			}
		}
		if merged.Test(i) != want {
			t.Fatalf("merged bit %d = %v, model %v", i, merged.Test(i), want)
		}
	}
}

func TestMergeRangeWordAlignedMatchesBitwise(t *testing.T) {
	// Property: the word-optimized path (lo%64==0) must agree with per-bit
	// evaluation for random epoch trees.
	rng := sim.NewRNG(17)
	s := NewStore(4096, 256)
	s.CreateEpoch(0, NoParent)
	epochs := []Epoch{0}
	for e := Epoch(1); e < 6; e++ {
		parent := epochs[rng.Intn(len(epochs))]
		s.CreateEpoch(e, parent)
		epochs = append(epochs, e)
	}
	for i := 0; i < 5000; i++ {
		e := epochs[rng.Intn(len(epochs))]
		bit := int64(rng.Intn(4096))
		if rng.Intn(2) == 0 {
			s.Set(e, bit)
		} else {
			s.Clear(e, bit)
		}
	}
	s.DeleteEpoch(2)
	for _, r := range [][2]int64{{0, 4096}, {64, 1024}, {1024, 1100}, {0, 63}, {128, 128}} {
		lo, hi := r[0], r[1]
		m := s.MergeRange(epochs, lo, hi)
		for i := lo; i < hi; i++ {
			want := false
			for _, e := range epochs {
				if !s.Deleted(e) && s.Test(e, i) {
					want = true
					break
				}
			}
			if m.Test(i-lo) != want {
				t.Fatalf("range [%d,%d) bit %d: merged %v, want %v", lo, hi, i, m.Test(i-lo), want)
			}
		}
	}
}

func TestParentMutationDoesNotLeakIntoChild(t *testing.T) {
	// A child epoch's view is frozen at creation. Mutating the parent
	// afterwards (only the segment cleaner does this, when it re-points a
	// frozen snapshot's bits at a moved block) must not change what the
	// child observes through shared pages.
	s := NewStore(256, 64)
	s.CreateEpoch(1, NoParent)
	s.Set(1, 3)
	s.CreateEpoch(2, 1) // child shares epoch 1's pages

	s.Set(1, 40) // same CoW page as bit 3: owned in-place mutation
	if s.Test(2, 40) {
		t.Fatal("parent Set leaked into child via shared page")
	}
	if !s.Test(1, 40) || !s.Test(2, 3) {
		t.Fatal("push-down corrupted the intended views")
	}

	s.Clear(1, 3)
	if !s.Test(2, 3) {
		t.Fatal("parent Clear leaked into child via shared page")
	}

	// Mutating a mid-chain epoch: grandchild resolves through the child.
	s.CreateEpoch(3, 2)
	s.Set(2, 100)
	if s.Test(3, 100) {
		t.Fatal("mid-chain Set leaked into grandchild")
	}
	// A page the ancestor never owned: the first Set allocates it privately,
	// and descendants sharing "absent = all zero" must keep seeing zeros.
	s.Set(1, 200)
	if s.Test(2, 200) || s.Test(3, 200) {
		t.Fatal("Set on a previously absent page leaked into descendants")
	}

	// Children created after the mutation do inherit it.
	s.CreateEpoch(4, 1)
	if !s.Test(4, 40) || !s.Test(4, 200) || s.Test(4, 3) {
		t.Fatal("post-mutation child does not see the parent's current view")
	}
}

// TestExportImportRoundTrip: exporting every epoch's owned pages and
// re-importing them into a fresh store (epochs created in topological
// order) must reproduce every epoch's full view bit-for-bit — the
// checkpoint serialize/restore contract.
func TestExportImportRoundTrip(t *testing.T) {
	s := newTestStore(t)
	s.Set(1, 5)
	s.Set(1, 200) // second CoW page
	s.CreateEpoch(2, 1)
	s.Set(2, 6)
	s.Clear(2, 5)
	s.CreateEpoch(3, 2)
	s.Set(3, 700)
	s.DeleteEpoch(2)

	r := NewStore(1024, 128)
	parents := map[Epoch]Epoch{1: NoParent, 2: 1, 3: 2}
	for _, e := range []Epoch{1, 2, 3} {
		if err := r.CreateEpoch(e, parents[e]); err != nil {
			t.Fatal(err)
		}
		for _, pg := range s.ExportEpoch(e) {
			if err := r.ImportPage(e, pg.PageIdx, pg.Words); err != nil {
				t.Fatal(err)
			}
		}
		if s.Deleted(e) {
			if err := r.DeleteEpoch(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range []Epoch{1, 2, 3} {
		if r.OwnedPages(e) != s.OwnedPages(e) {
			t.Fatalf("epoch %d owned pages = %d, want %d", e, r.OwnedPages(e), s.OwnedPages(e))
		}
		if r.Deleted(e) != s.Deleted(e) {
			t.Fatalf("epoch %d deleted flag mismatch", e)
		}
		for i := int64(0); i < 1024; i++ {
			if r.Test(e, i) != s.Test(e, i) {
				t.Fatalf("epoch %d bit %d: restored %v, original %v", e, i, r.Test(e, i), s.Test(e, i))
			}
		}
	}
}

func TestExportOrderedAndDetached(t *testing.T) {
	s := newTestStore(t)
	s.Set(1, 900)
	s.Set(1, 10)
	pages := s.ExportEpoch(1)
	if len(pages) != 2 || pages[0].PageIdx >= pages[1].PageIdx {
		t.Fatalf("export not in ascending page order: %+v", pages)
	}
	// Mutating the export must not touch the store.
	pages[0].Words[0] = ^uint64(0)
	if s.Test(1, 0) {
		t.Fatal("ExportEpoch aliased store memory")
	}
}

func TestImportPageValidation(t *testing.T) {
	s := newTestStore(t)
	if err := s.ImportPage(1, 0, make([]uint64, 1)); err == nil {
		t.Fatal("short page accepted")
	}
	words := make([]uint64, 2) // 128 bits / 64
	if err := s.ImportPage(1, 99, words); err == nil {
		t.Fatal("out-of-range page index accepted")
	}
	if err := s.ImportPage(1, 0, words); err != nil {
		t.Fatal(err)
	}
	if err := s.ImportPage(1, 0, words); err == nil {
		t.Fatal("duplicate import accepted")
	}
}

func TestPageIndicesSparse(t *testing.T) {
	s := newTestStore(t) // 8 pages of 128 bits
	if got := s.PageIndices(1); len(got) != 0 {
		t.Fatalf("fresh epoch observes pages %v, want none", got)
	}
	s.Set(1, 5)    // page 0
	s.Set(1, 700)  // page 5
	if err := s.CreateEpoch(2, 1); err != nil {
		t.Fatal(err)
	}
	s.Set(2, 300) // page 2, owned by the child only
	got := s.PageIndices(2)
	want := []int64{0, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("PageIndices(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PageIndices(2) = %v, want %v", got, want)
		}
	}
	// The parent does not see the child's private page.
	got = s.PageIndices(1)
	// Set(1, ...) after the fork may have pushed pages down, but epoch 1
	// itself observes exactly the pages it touched.
	want = []int64{0, 5}
	if len(got) != len(want) || got[0] != 0 || got[1] != 5 {
		t.Fatalf("PageIndices(1) = %v, want %v", got, want)
	}
	// A cleared page still counts as observable (its bits read zero); the
	// contract is a superset bound, never an undercount.
	s.Clear(2, 300)
	if got := s.PageIndices(2); len(got) != 3 {
		t.Fatalf("PageIndices(2) after clear = %v, want 3 pages", got)
	}
}
