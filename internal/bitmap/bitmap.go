// Package bitmap provides the validity-tracking structures of the FTL: a
// plain dense bitmap, and the paper's copy-on-write *per-epoch* validity
// maps (ioSnap §5.4.1).
//
// A validity bit records whether the physical page at that index holds data
// that is live from some epoch's point of view. Instead of copying the whole
// bitmap at snapshot creation (512 MB per snapshot on the paper's 2 TB /
// 512 B device), each epoch owns only the bitmap *pages* it has modified and
// inherits the rest from its parent epoch; the first modification of an
// inherited page copies it (one "CoW event", the quantity plotted in the
// paper's Figure 7b).
package bitmap

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitmap is a dense, fixed-size bitmap.
type Bitmap struct {
	words []uint64
	n     int64
}

// New returns a zeroed bitmap of n bits.
func New(n int64) *Bitmap {
	if n < 0 {
		panic("bitmap: negative size")
	}
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits.
func (b *Bitmap) Len() int64 { return b.n }

func (b *Bitmap) checkIdx(i int64) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: index %d out of range [0,%d)", i, b.n))
	}
}

// Set sets bit i.
func (b *Bitmap) Set(i int64) {
	b.checkIdx(i)
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int64) {
	b.checkIdx(i)
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetRange sets every bit in [lo, hi) a word at a time, with masked
// boundary words — the foreground data path's counterpart of CountRange.
func (b *Bitmap) SetRange(lo, hi int64) {
	if hi <= lo {
		return
	}
	b.checkIdx(lo)
	b.checkIdx(hi - 1)
	setWordRange(b.words, lo, hi)
}

// ClearRange clears every bit in [lo, hi) a word at a time.
func (b *Bitmap) ClearRange(lo, hi int64) {
	if hi <= lo {
		return
	}
	b.checkIdx(lo)
	b.checkIdx(hi - 1)
	clearWordRange(b.words, lo, hi)
}

// setWordRange sets bits [lo, hi) of a raw word array; hi > lo.
func setWordRange(words []uint64, lo, hi int64) {
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << uint(lo%wordBits)
	hiMask := ^uint64(0) >> uint(wordBits-(hi-hiW*wordBits))
	if loW == hiW {
		words[loW] |= loMask & hiMask
		return
	}
	words[loW] |= loMask
	for w := loW + 1; w < hiW; w++ {
		words[w] = ^uint64(0)
	}
	words[hiW] |= hiMask
}

// clearWordRange clears bits [lo, hi) of a raw word array; hi > lo.
func clearWordRange(words []uint64, lo, hi int64) {
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << uint(lo%wordBits)
	hiMask := ^uint64(0) >> uint(wordBits-(hi-hiW*wordBits))
	if loW == hiW {
		words[loW] &^= loMask & hiMask
		return
	}
	words[loW] &^= loMask
	for w := loW + 1; w < hiW; w++ {
		words[w] = 0
	}
	words[hiW] &^= hiMask
}

// Test reports whether bit i is set.
func (b *Bitmap) Test(i int64) bool {
	b.checkIdx(i)
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Or merges other into b (bitwise OR). The bitmaps must be the same length.
func (b *Bitmap) Or(other *Bitmap) {
	if b.n != other.n {
		panic("bitmap: Or of mismatched lengths")
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// CountRange returns the number of set bits in [lo, hi), popcounting a word
// at a time with masked boundary words.
func (b *Bitmap) CountRange(lo, hi int64) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return 0
	}
	loWord, hiWord := lo/wordBits, (hi-1)/wordBits
	if loWord == hiWord {
		w := b.words[loWord] >> uint(lo%wordBits)
		return bits.OnesCount64(w << uint(wordBits-(hi-lo)) >> uint(wordBits-(hi-lo)))
	}
	n := bits.OnesCount64(b.words[loWord] >> uint(lo%wordBits))
	for w := loWord + 1; w < hiWord; w++ {
		n += bits.OnesCount64(b.words[w])
	}
	tail := hi - hiWord*wordBits // 1..64 bits of the last word
	n += bits.OnesCount64(b.words[hiWord] << uint(wordBits-tail) >> uint(wordBits-tail))
	return n
}

// Count returns the total number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset zeroes every bit in place, preserving the backing storage.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// CopyFrom overwrites b with other's bits. The bitmaps must be the same
// length.
func (b *Bitmap) CopyFrom(other *Bitmap) {
	if b.n != other.n {
		panic("bitmap: CopyFrom of mismatched lengths")
	}
	copy(b.words, other.words)
}

// Equal reports whether b and other hold identical bits. Bitmaps of
// different lengths are never equal.
func (b *Bitmap) Equal(other *Bitmap) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

func popcount(x uint64) int { return bits.OnesCount64(x) }
