package bitmap

import (
	"fmt"
	"math/bits"
	"sort"
)

// Epoch identifies one epoch's validity map within a Store. Epoch numbers
// come from the FTL's monotonically increasing epoch counter.
type Epoch uint64

// DefaultBitsPerPage mirrors a 4 KB bitmap block: 4096 bytes × 8 bits.
const DefaultBitsPerPage = 4096 * 8

// vpage is one CoW unit of a validity map.
type vpage struct {
	words []uint64
}

func (p *vpage) clone() *vpage {
	c := &vpage{words: make([]uint64, len(p.words))}
	copy(c.words, p.words)
	return c
}

// epochMap is one epoch's view of the device validity bitmap: privately
// owned pages plus everything inherited through the parent chain.
type epochMap struct {
	epoch    Epoch
	parent   *epochMap
	children []*epochMap
	deleted  bool
	pages    map[int64]*vpage
}

// Store manages the per-epoch CoW validity maps of one device.
type Store struct {
	nBits       int64
	bitsPerPage int64
	epochs      map[Epoch]*epochMap

	cowCopies  int64 // total bitmap pages copied (Figure 7b's counter)
	livePages  int64 // privately owned pages across live epochs
	totalPages int64 // ceil(nBits / bitsPerPage)
	gen        uint64
}

// NewStore creates a store covering nBits physical pages with the given CoW
// page granularity (0 selects DefaultBitsPerPage). The root epoch is created
// implicitly by the first CreateEpoch with parent NoParent.
func NewStore(nBits int64, bitsPerPage int64) *Store {
	if nBits < 0 {
		panic("bitmap: negative store size")
	}
	if bitsPerPage == 0 {
		bitsPerPage = DefaultBitsPerPage
	}
	if bitsPerPage < wordBits || bitsPerPage%wordBits != 0 {
		panic("bitmap: bitsPerPage must be a positive multiple of 64")
	}
	return &Store{
		nBits:       nBits,
		bitsPerPage: bitsPerPage,
		epochs:      make(map[Epoch]*epochMap),
		totalPages:  (nBits + bitsPerPage - 1) / bitsPerPage,
	}
}

// NoParent marks an epoch created without inheritance (the initial epoch of
// a fresh device).
const NoParent = Epoch(1<<64 - 1)

// Len returns the number of bits each epoch's map covers.
func (s *Store) Len() int64 { return s.nBits }

// BitsPerPage returns the CoW granularity.
func (s *Store) BitsPerPage() int64 { return s.bitsPerPage }

// CreateEpoch registers epoch e inheriting the validity state of parent.
// Pass NoParent for the device's first epoch. It is the caller's (FTL's)
// responsibility that the parent stops being modified in the normal write
// path once it has children — only the segment cleaner may touch it, which
// matches the paper's rule that a snapshot's validity bitmap is never
// modified except by block movement.
func (s *Store) CreateEpoch(e, parent Epoch) error {
	if _, dup := s.epochs[e]; dup {
		return fmt.Errorf("bitmap: epoch %d already exists", e)
	}
	var p *epochMap
	if parent != NoParent {
		var ok bool
		p, ok = s.epochs[parent]
		if !ok {
			return fmt.Errorf("bitmap: parent epoch %d does not exist", parent)
		}
	}
	em := &epochMap{epoch: e, parent: p, pages: make(map[int64]*vpage)}
	if p != nil {
		p.children = append(p.children, em)
	}
	s.epochs[e] = em
	s.gen++
	return nil
}

// DeleteEpoch marks epoch e deleted. Its pages stay reachable for
// descendants that still inherit them (the paper's rule: a deleted epoch's
// bitmap need not be merged unless a descendant inherits it), but e itself
// no longer contributes to merges.
func (s *Store) DeleteEpoch(e Epoch) error {
	em, ok := s.epochs[e]
	if !ok {
		return fmt.Errorf("bitmap: epoch %d does not exist", e)
	}
	em.deleted = true
	s.gen++
	return nil
}

// Gen returns a counter that advances whenever the set of live epochs
// changes (CreateEpoch or DeleteEpoch). Cached merge results built against
// one generation are exact until the generation moves; the cleaner's
// incremental accounting uses this as its staleness stamp.
func (s *Store) Gen() uint64 { return s.gen }

// Deleted reports whether epoch e is marked deleted.
func (s *Store) Deleted(e Epoch) bool {
	em, ok := s.epochs[e]
	return ok && em.deleted
}

// Exists reports whether epoch e is registered.
func (s *Store) Exists(e Epoch) bool {
	_, ok := s.epochs[e]
	return ok
}

// Epochs returns the registered epoch numbers (unspecified order).
func (s *Store) Epochs() []Epoch {
	out := make([]Epoch, 0, len(s.epochs))
	for e := range s.epochs {
		out = append(out, e)
	}
	return out
}

func (s *Store) get(e Epoch) *epochMap {
	em, ok := s.epochs[e]
	if !ok {
		panic(fmt.Sprintf("bitmap: unknown epoch %d", e))
	}
	return em
}

func (s *Store) checkBit(i int64) {
	if i < 0 || i >= s.nBits {
		panic(fmt.Sprintf("bitmap: bit %d out of range [0,%d)", i, s.nBits))
	}
}

// findPage walks e's inheritance chain for the page holding bit pageIdx and
// returns the page (nil when no epoch on the chain owns it, meaning all
// zero) and whether e itself owns it.
func (em *epochMap) findPage(pageIdx int64) (p *vpage, owned bool) {
	for m := em; m != nil; m = m.parent {
		if pg, ok := m.pages[pageIdx]; ok {
			return pg, m == em
		}
	}
	return nil, false
}

// PageIndices returns the ascending indices of the bitmap pages epoch e can
// observe — privately owned or inherited through the parent chain. Every bit
// outside these pages reads zero, so a sweep over a sparse epoch can restrict
// itself to these pages instead of probing the full bit space (which on a
// TB-class device is hundreds of millions of bits, nearly all untouched).
func (s *Store) PageIndices(e Epoch) []int64 {
	seen := make(map[int64]struct{})
	for m := s.get(e); m != nil; m = m.parent {
		for idx := range m.pages {
			seen[idx] = struct{}{}
		}
	}
	out := make([]int64, 0, len(seen))
	for idx := range seen {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Test reports bit i as seen by epoch e.
func (s *Store) Test(e Epoch, i int64) bool {
	s.checkBit(i)
	em := s.get(e)
	pg, _ := em.findPage(i / s.bitsPerPage)
	if pg == nil {
		return false
	}
	off := i % s.bitsPerPage
	return pg.words[off/wordBits]&(1<<uint(off%wordBits)) != 0
}

// ownPage returns e's privately owned page for pageIdx, copying an inherited
// page (a CoW event) or allocating a zero page as needed. copied reports
// whether this call performed a copy of inherited state.
func (s *Store) ownPage(em *epochMap, pageIdx int64) (pg *vpage, copied bool) {
	pg, owned := em.findPage(pageIdx)
	if owned {
		return pg, false
	}
	if pg == nil {
		pg = &vpage{words: make([]uint64, s.bitsPerPage/wordBits)}
		em.pages[pageIdx] = pg
		s.livePages++
		return pg, false
	}
	cp := pg.clone()
	em.pages[pageIdx] = cp
	s.cowCopies++
	s.livePages++
	return cp, true
}

// pushDown pins the current view of pageIdx into every immediate child of em
// that does not privately own it yet. A child's view was frozen when the
// child was created; without this, mutating em's copy (the segment cleaner
// re-pointing a frozen snapshot's bits) would retroactively change what
// every sharing descendant — including the active epoch — observes.
// Grandchildren resolve through the child afterwards, so one level suffices.
func (s *Store) pushDown(em *epochMap, pageIdx int64) {
	if len(em.children) == 0 {
		return
	}
	cur, _ := em.findPage(pageIdx)
	for _, c := range em.children {
		if _, owns := c.pages[pageIdx]; owns {
			continue
		}
		if cur == nil {
			c.pages[pageIdx] = &vpage{words: make([]uint64, s.bitsPerPage/wordBits)}
		} else {
			c.pages[pageIdx] = cur.clone()
			s.cowCopies++
		}
		s.livePages++
	}
}

// Set sets bit i in epoch e, copying the containing page on first
// modification of inherited state. It reports whether a CoW copy occurred.
func (s *Store) Set(e Epoch, i int64) (cow bool) {
	s.checkBit(i)
	em := s.get(e)
	s.pushDown(em, i/s.bitsPerPage)
	pg, copied := s.ownPage(em, i/s.bitsPerPage)
	off := i % s.bitsPerPage
	pg.words[off/wordBits] |= 1 << uint(off%wordBits)
	return copied
}

// Clear clears bit i in epoch e, with the same CoW behaviour as Set.
func (s *Store) Clear(e Epoch, i int64) (cow bool) {
	s.checkBit(i)
	em := s.get(e)
	pageIdx := i / s.bitsPerPage
	// Clearing a bit that is already 0 everywhere on the chain needs no page.
	pg, owned := em.findPage(pageIdx)
	if pg == nil {
		return false
	}
	s.pushDown(em, pageIdx)
	if owned {
		off := i % s.bitsPerPage
		pg.words[off/wordBits] &^= 1 << uint(off%wordBits)
		return false
	}
	pg, copied := s.ownPage(em, pageIdx)
	off := i % s.bitsPerPage
	pg.words[off/wordBits] &^= 1 << uint(off%wordBits)
	return copied
}

// SetRange sets bits [lo, hi) in epoch e with at most one CoW copy per
// touched bitmap page, and returns the number of CoW copies performed. A
// run of per-bit Set calls over the same range performs exactly the same
// copies (a page is copied at most once per epoch, on first touch), so the
// count — and therefore the FTL's CoWPageCost charge — is identical; only
// the host-side work drops from per-bit to per-word.
func (s *Store) SetRange(e Epoch, lo, hi int64) (cows int) {
	if hi <= lo {
		return 0
	}
	s.checkBit(lo)
	s.checkBit(hi - 1)
	em := s.get(e)
	for pageIdx := lo / s.bitsPerPage; pageIdx*s.bitsPerPage < hi; pageIdx++ {
		s.pushDown(em, pageIdx)
		pg, copied := s.ownPage(em, pageIdx)
		if copied {
			cows++
		}
		pageStart := pageIdx * s.bitsPerPage
		from, to := lo, hi
		if pageStart > from {
			from = pageStart
		}
		if end := pageStart + s.bitsPerPage; end < to {
			to = end
		}
		setWordRange(pg.words, from-pageStart, to-pageStart)
	}
	return cows
}

// ClearRange clears bits [lo, hi) in epoch e with the same CoW behaviour as
// SetRange. Like Clear, a page with no owner anywhere on the inheritance
// chain (all-zero view) is skipped without a pushdown or a copy.
func (s *Store) ClearRange(e Epoch, lo, hi int64) (cows int) {
	if hi <= lo {
		return 0
	}
	s.checkBit(lo)
	s.checkBit(hi - 1)
	em := s.get(e)
	for pageIdx := lo / s.bitsPerPage; pageIdx*s.bitsPerPage < hi; pageIdx++ {
		pg, owned := em.findPage(pageIdx)
		if pg == nil {
			continue
		}
		s.pushDown(em, pageIdx)
		if !owned {
			var copied bool
			pg, copied = s.ownPage(em, pageIdx)
			if copied {
				cows++
			}
		}
		pageStart := pageIdx * s.bitsPerPage
		from, to := lo, hi
		if pageStart > from {
			from = pageStart
		}
		if end := pageStart + s.bitsPerPage; end < to {
			to = end
		}
		clearWordRange(pg.words, from-pageStart, to-pageStart)
	}
	return cows
}

// MergeRange ORs the validity of bits [lo, hi) across the given epochs
// (skipping deleted ones) into a fresh Bitmap of length hi-lo. This is the
// segment cleaner's merged map (paper Figure 6). The cost of this call —
// proportional to len(epochs) × (hi-lo) — is exactly the "validity merge"
// overhead measured in the paper's Table 4.
func (s *Store) MergeRange(epochs []Epoch, lo, hi int64) *Bitmap {
	return s.MergeRangeInto(epochs, lo, hi, nil)
}

// MergeRangeInto is MergeRange reusing out as the destination buffer when it
// is non-nil and of length hi-lo (it is zeroed first); otherwise a fresh
// bitmap is allocated. The cleaner's cached-merge rebuilds call this to
// avoid re-allocating a segment-sized bitmap per rebuild.
func (s *Store) MergeRangeInto(epochs []Epoch, lo, hi int64, out *Bitmap) *Bitmap {
	if lo < 0 || hi > s.nBits || lo > hi {
		panic(fmt.Sprintf("bitmap: merge range [%d,%d) out of [0,%d)", lo, hi, s.nBits))
	}
	if out == nil || out.n != hi-lo {
		out = New(hi - lo)
	} else {
		out.Reset()
	}
	s.OrRangeInto(epochs, lo, hi, out)
	return out
}

// OrRangeInto ORs the validity of bits [lo, hi) across the given epochs
// (skipping deleted ones) into out, which must have length hi-lo. Unlike
// MergeRangeInto it does not zero out first, so callers can layer epoch
// groups into one merged map.
func (s *Store) OrRangeInto(epochs []Epoch, lo, hi int64, out *Bitmap) {
	if out.n != hi-lo {
		panic(fmt.Sprintf("bitmap: OrRangeInto buffer length %d != range %d", out.n, hi-lo))
	}
	wordAligned := lo%wordBits == 0
	for _, e := range epochs {
		em := s.get(e)
		if em.deleted {
			continue
		}
		if wordAligned {
			s.mergeWords(em, out, lo, hi)
			continue
		}
		for i := lo; i < hi; i++ {
			pg, _ := em.findPage(i / s.bitsPerPage)
			if pg == nil {
				// Skip the rest of this page's span within the range.
				i = (i/s.bitsPerPage+1)*s.bitsPerPage - 1
				continue
			}
			off := i % s.bitsPerPage
			if pg.words[off/wordBits]&(1<<uint(off%wordBits)) != 0 {
				out.Set(i - lo)
			}
		}
	}
}

// mergeWords ORs epoch em's bits in the word-aligned range [lo, hi) into
// out, a whole CoW page's words at a time. bitsPerPage is a multiple of 64
// by construction, so page boundaries are word boundaries.
func (s *Store) mergeWords(em *epochMap, out *Bitmap, lo, hi int64) {
	for pageIdx := lo / s.bitsPerPage; pageIdx*s.bitsPerPage < hi; pageIdx++ {
		pg, _ := em.findPage(pageIdx)
		if pg == nil {
			continue
		}
		pageStart := pageIdx * s.bitsPerPage
		from := lo
		if pageStart > from {
			from = pageStart
		}
		to := pageStart + s.bitsPerPage
		if to > hi {
			to = hi
		}
		for bit := from; bit < to; bit += wordBits {
			w := pg.words[(bit-pageStart)/wordBits]
			if rem := to - bit; rem < wordBits {
				w &= (1 << uint(rem)) - 1 // clip a partial trailing word
			}
			out.words[(bit-lo)/wordBits] |= w
		}
	}
}

// CountValid returns the number of set bits in [lo, hi) for epoch e,
// popcounting whole CoW-page words where the range allows it.
func (s *Store) CountValid(e Epoch, lo, hi int64) int {
	if lo < 0 {
		lo = 0
	}
	if hi > s.nBits {
		hi = s.nBits
	}
	if lo >= hi {
		return 0
	}
	em := s.get(e)
	n := 0
	for pageIdx := lo / s.bitsPerPage; pageIdx*s.bitsPerPage < hi; pageIdx++ {
		pg, _ := em.findPage(pageIdx)
		if pg == nil {
			continue
		}
		pageStart := pageIdx * s.bitsPerPage
		from := lo
		if pageStart > from {
			from = pageStart
		}
		to := pageStart + s.bitsPerPage
		if to > hi {
			to = hi
		}
		// Popcount full words; mask the partial boundary words.
		for bit := from; bit < to; {
			w := pg.words[(bit-pageStart)/wordBits]
			start := bit % wordBits
			span := wordBits - start
			if rem := to - bit; rem < span {
				span = rem
			}
			w >>= uint(start)
			if span < wordBits {
				w &= (1 << uint(span)) - 1
			}
			n += bits.OnesCount64(w)
			bit += span
		}
	}
	return n
}

// OwnedPage is one privately owned CoW page of an epoch's validity map:
// the unit of the epoch's delta against its parent, and what a checkpoint
// serializes per epoch.
type OwnedPage struct {
	PageIdx int64
	Words   []uint64
}

// ExportEpoch returns copies of epoch e's privately owned pages in
// ascending page order. Inherited pages are not exported — they belong to
// an ancestor and re-importing every epoch of a tree in topological order
// reproduces the full inheritance structure.
func (s *Store) ExportEpoch(e Epoch) []OwnedPage {
	em := s.get(e)
	out := make([]OwnedPage, 0, len(em.pages))
	for idx, pg := range em.pages {
		out = append(out, OwnedPage{PageIdx: idx, Words: append([]uint64(nil), pg.words...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PageIdx < out[j].PageIdx })
	return out
}

// ImportPage installs one privately owned page into epoch e (the
// checkpoint-restore inverse of ExportEpoch). The words slice is copied.
// Import happens during recovery, before any cleaner accounting is built
// on the store; it deliberately does not advance Gen.
func (s *Store) ImportPage(e Epoch, pageIdx int64, words []uint64) error {
	em := s.get(e)
	if int64(len(words)) != s.bitsPerPage/wordBits {
		return fmt.Errorf("bitmap: import page has %d words, want %d", len(words), s.bitsPerPage/wordBits)
	}
	if pageIdx < 0 || pageIdx >= s.totalPages {
		return fmt.Errorf("bitmap: import page index %d out of [0,%d)", pageIdx, s.totalPages)
	}
	if _, dup := em.pages[pageIdx]; dup {
		return fmt.Errorf("bitmap: epoch %d already owns page %d", e, pageIdx)
	}
	em.pages[pageIdx] = &vpage{words: append([]uint64(nil), words...)}
	s.livePages++
	return nil
}

// CoWCopies returns the cumulative count of bitmap-page copies (the solid
// grey line of the paper's Figure 7).
func (s *Store) CoWCopies() int64 { return s.cowCopies }

// ResetCoWCounter zeroes the CoW copy counter (experiments reset it between
// phases).
func (s *Store) ResetCoWCounter() { s.cowCopies = 0 }

// OwnedPages returns how many bitmap pages epoch e privately owns.
func (s *Store) OwnedPages(e Epoch) int { return len(s.get(e).pages) }

// MemoryBytes estimates the memory consumed by all privately owned pages.
func (s *Store) MemoryBytes() int64 {
	return s.livePages * (s.bitsPerPage / 8)
}

// TotalPages returns how many CoW pages a full map comprises (the memory a
// naive full-copy-per-snapshot design would pay per snapshot).
func (s *Store) TotalPages() int64 { return s.totalPages }
