package bitmap

import (
	"testing"
	"testing/quick"

	"iosnap/internal/sim"
)

func TestBitmapBasics(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	for _, i := range []int64{0, 64, 129} {
		if !b.Test(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if b.Test(1) || b.Test(128) {
		t.Fatal("unexpected bits set")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("Clear failed")
	}
	if b.Count() != 2 {
		t.Fatalf("Count after clear = %d", b.Count())
	}
}

func TestBitmapCountRange(t *testing.T) {
	b := New(100)
	for i := int64(10); i < 20; i++ {
		b.Set(i)
	}
	if got := b.CountRange(0, 100); got != 10 {
		t.Fatalf("CountRange full = %d", got)
	}
	if got := b.CountRange(15, 18); got != 3 {
		t.Fatalf("CountRange [15,18) = %d", got)
	}
	if got := b.CountRange(-5, 1000); got != 10 {
		t.Fatalf("CountRange clamped = %d", got)
	}
}

func TestBitmapOr(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(1)
	b.Set(65)
	a.Or(b)
	if !a.Test(1) || !a.Test(65) {
		t.Fatal("Or lost bits")
	}
}

func TestBitmapOrMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths did not panic")
		}
	}()
	New(10).Or(New(20))
}

func TestBitmapClone(t *testing.T) {
	a := New(10)
	a.Set(3)
	c := a.Clone()
	c.Clear(3)
	if !a.Test(3) {
		t.Fatal("Clone shares storage")
	}
}

func TestBitmapOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Set did not panic")
		}
	}()
	New(10).Set(10)
}

func TestBitmapMatchesModel(t *testing.T) {
	// Property: a random op sequence on Bitmap matches a map[int64]bool model.
	rng := sim.NewRNG(42)
	const n = 512
	b := New(n)
	model := make(map[int64]bool)
	for step := 0; step < 20000; step++ {
		i := int64(rng.Intn(n))
		switch rng.Intn(3) {
		case 0:
			b.Set(i)
			model[i] = true
		case 1:
			b.Clear(i)
			delete(model, i)
		case 2:
			if b.Test(i) != model[i] {
				t.Fatalf("step %d: Test(%d) = %v, model %v", step, i, b.Test(i), model[i])
			}
		}
	}
	if b.Count() != len(model) {
		t.Fatalf("Count = %d, model %d", b.Count(), len(model))
	}
}

func TestPopcountQuick(t *testing.T) {
	if err := quick.Check(func(x uint64) bool {
		n := 0
		for i := 0; i < 64; i++ {
			if x&(1<<uint(i)) != 0 {
				n++
			}
		}
		return popcount(x) == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}
