package iosnap

import (
	"iosnap/internal/nand"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// This file is ioSnap's media-failure boundary, mirroring the one in
// internal/ftl: every NAND operation goes through a wrapper that retries
// transient errors under the configured policy and, when a failure proves
// permanent, marks the affected segment suspect so the cleaner (or the
// scrubber) rescues its data and retires it.

// markSuspect records a permanent media failure against seg.
func (f *FTL) markSuspect(seg int) {
	if f.dev.SegmentHealth(seg) != nand.Healthy {
		return
	}
	f.dev.MarkSuspect(seg)
	f.stats.MediaFailures++
}

func (f *FTL) devReadPage(now sim.Time, addr nand.PageAddr) (data, oob []byte, done sim.Time, err error) {
	done, retries, err := f.cfg.Retry.Do(now, func(at sim.Time) (sim.Time, error) {
		var e error
		data, oob, at, e = f.dev.ReadPage(at, addr)
		return at, e
	})
	f.stats.Retries += retries
	if err != nil && retry.MediaFailure(err) {
		f.markSuspect(f.dev.SegmentOf(addr))
	}
	return data, oob, done, err
}

func (f *FTL) devProgramPage(now sim.Time, addr nand.PageAddr, data, oob []byte) (sim.Time, error) {
	done, retries, err := f.cfg.Retry.Do(now, func(at sim.Time) (sim.Time, error) {
		return f.dev.ProgramPage(at, addr, data, oob)
	})
	f.stats.Retries += retries
	if err != nil && retry.MediaFailure(err) {
		f.markSuspect(f.dev.SegmentOf(addr))
	}
	return done, err
}

// devCopyPage attributes a permanent copy failure to the source segment:
// that is the segment the cleaner is moving data off, and suspecting it
// drives the rescue machinery toward the data most at risk. (A permanent
// destination failure resurfaces as a program failure on the head.)
func (f *FTL) devCopyPage(now sim.Time, from, to nand.PageAddr) (sim.Time, error) {
	done, retries, err := f.cfg.Retry.Do(now, func(at sim.Time) (sim.Time, error) {
		return f.dev.CopyPage(at, from, to)
	})
	f.stats.Retries += retries
	if err != nil && retry.MediaFailure(err) {
		f.markSuspect(f.dev.SegmentOf(from))
	}
	return done, err
}

func (f *FTL) devEraseSegment(now sim.Time, seg int) (sim.Time, error) {
	done, retries, err := f.cfg.Retry.Do(now, func(at sim.Time) (sim.Time, error) {
		return f.dev.EraseSegment(at, seg)
	})
	f.stats.Retries += retries
	if err != nil && retry.MediaFailure(err) {
		f.markSuspect(seg)
	}
	return done, err
}

func (f *FTL) devScanSegmentOOB(now sim.Time, seg int) (oobs [][]byte, done sim.Time, err error) {
	done, retries, err := f.cfg.Retry.Do(now, func(at sim.Time) (sim.Time, error) {
		var e error
		oobs, at, e = f.dev.ScanSegmentOOB(at, seg)
		return at, e
	})
	f.stats.Retries += retries
	if err != nil && retry.MediaFailure(err) {
		f.markSuspect(seg)
	}
	return oobs, done, err
}

// retireSegment removes a fully-rescued segment from service: the device
// refuses further programs/erases, and the segment leaves both pools and
// the presence summary for good. Callers must have moved every merged-valid
// block off it first (copy-forward under the merged validity map rescues
// blocks live in ANY epoch, so snapshotted data survives too).
func (f *FTL) retireSegment(seg int) {
	f.dev.Retire(seg)
	for i, s := range f.usedSegs {
		if s == seg {
			f.usedSegs = append(f.usedSegs[:i], f.usedSegs[i+1:]...)
			break
		}
	}
	for i, s := range f.freeSegs {
		if s == seg {
			f.freeSegs = append(f.freeSegs[:i], f.freeSegs[i+1:]...)
			break
		}
	}
	f.presence.clear(seg)
	f.acct.untrack(seg)
}

// sealHead abandons the rest of a suspect head segment so subsequent appends
// land on healthy media; the suspect segment's existing data is rescued when
// the cleaner or scrubber picks it. With no spare free segment the head stays
// put (the next write retries in place rather than starving the cleaner).
func (f *FTL) sealHead() {
	if f.dev.SegmentHealth(f.headSeg) == nand.Healthy || len(f.freeSegs) <= 1 {
		return
	}
	f.headSeg = f.freeSegs[0]
	f.freeSegs = f.freeSegs[1:]
	f.headIdx = 0
	f.usedSegs = append(f.usedSegs, f.headSeg)
	f.acct.track(f.headSeg, true)
}
