package iosnap

import (
	"iosnap/internal/nand"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// This file is ioSnap's media-failure boundary, mirroring the one in
// internal/ftl: every NAND operation goes through a wrapper that retries
// transient errors under the configured policy and, when a failure proves
// permanent, marks the affected segment suspect so the cleaner (or the
// scrubber) rescues its data and retires it.

// markSuspect records a permanent media failure against seg.
func (f *FTL) markSuspect(seg int) {
	if f.dev.SegmentHealth(seg) != nand.Healthy {
		return
	}
	f.dev.MarkSuspect(seg)
	f.stats.MediaFailures++
}

func (f *FTL) devReadPage(now sim.Time, addr nand.PageAddr) (data, oob []byte, done sim.Time, err error) {
	done, retries, err := f.cfg.Retry.Do(now, func(at sim.Time) (sim.Time, error) {
		var e error
		data, oob, at, e = f.dev.ReadPage(at, addr)
		return at, e
	})
	f.stats.Retries += retries
	if err != nil && retry.MediaFailure(err) {
		f.markSuspect(f.dev.SegmentOf(addr))
	}
	return data, oob, done, err
}

func (f *FTL) devProgramPage(now sim.Time, addr nand.PageAddr, data, oob []byte) (sim.Time, error) {
	done, retries, err := f.cfg.Retry.Do(now, func(at sim.Time) (sim.Time, error) {
		return f.dev.ProgramPage(at, addr, data, oob)
	})
	f.stats.Retries += retries
	if err != nil && retry.MediaFailure(err) {
		f.markSuspect(f.dev.SegmentOf(addr))
	}
	return done, err
}

// devCopyPage attributes a permanent copy failure to the source segment:
// that is the segment the cleaner is moving data off, and suspecting it
// drives the rescue machinery toward the data most at risk. (A permanent
// destination failure resurfaces as a program failure on the head.)
func (f *FTL) devCopyPage(now sim.Time, from, to nand.PageAddr) (sim.Time, error) {
	done, retries, err := f.cfg.Retry.Do(now, func(at sim.Time) (sim.Time, error) {
		return f.dev.CopyPage(at, from, to)
	})
	f.stats.Retries += retries
	if err != nil && retry.MediaFailure(err) {
		f.markSuspect(f.dev.SegmentOf(from))
	}
	return done, err
}

func (f *FTL) devEraseSegment(now sim.Time, seg int) (sim.Time, error) {
	done, retries, err := f.cfg.Retry.Do(now, func(at sim.Time) (sim.Time, error) {
		return f.dev.EraseSegment(at, seg)
	})
	f.stats.Retries += retries
	if err != nil && retry.MediaFailure(err) {
		f.markSuspect(seg)
	}
	return done, err
}

func (f *FTL) devScanSegmentOOB(now sim.Time, seg int) (oobs [][]byte, done sim.Time, err error) {
	done, retries, err := f.cfg.Retry.Do(now, func(at sim.Time) (sim.Time, error) {
		var e error
		oobs, at, e = f.dev.ScanSegmentOOB(at, seg)
		return at, e
	})
	f.stats.Retries += retries
	if err != nil && retry.MediaFailure(err) {
		f.markSuspect(seg)
	}
	return oobs, done, err
}

// devProgramPages is the batched data path's program boundary: one device
// call for the whole run. The batch call counts as each page's first
// attempt; when a page fails transiently, it alone re-enters the policy's
// backoff schedule (retry.DoFrom) and, once it lands, the remainder of the
// batch resumes at the recovered page's completion time. Returns how many
// pages landed, the completion time of the landed pages, and the first
// unrecovered error.
func (f *FTL) devProgramPages(now sim.Time, addrs []nand.PageAddr, datas, oobs [][]byte) (n int, done sim.Time, err error) {
	done = now
	at := now
	for n < len(addrs) {
		k, d, e := f.dev.ProgramPages(at, addrs[n:], datas[n:], oobs[n:])
		n += k
		if d > done {
			done = d
		}
		if e == nil {
			return n, done, nil
		}
		d2, retries, e2 := f.cfg.Retry.DoFrom(at, 1, e, func(t sim.Time) (sim.Time, error) {
			return f.dev.ProgramPage(t, addrs[n], datas[n], oobs[n])
		})
		f.stats.Retries += retries
		if d2 > done {
			done = d2
		}
		if e2 != nil {
			if retry.MediaFailure(e2) {
				f.markSuspect(f.dev.SegmentOf(addrs[n]))
			}
			return n, done, e2
		}
		n++
		at = d2
	}
	return n, done, nil
}

// devReadPages is the batched read boundary, with the same per-page retry
// continuation as devProgramPages. Returned slices alias device memory and
// per-FTL scratch: they are valid until the next devReadPages call, so
// callers that loop must copy out what they keep (slice headers suffice —
// the device page memory itself is stable).
func (f *FTL) devReadPages(now sim.Time, addrs []nand.PageAddr) (datas, oobs [][]byte, n int, done sim.Time, err error) {
	done = now
	at := now
	datas = f.ws.rdatas[:0]
	oobs = f.ws.roobs[:0]
	defer func() { f.ws.rdatas, f.ws.roobs = datas, oobs }()
	for n < len(addrs) {
		k, d, e := f.dev.ReadPagesInto(at, addrs[n:], &datas, &oobs)
		n += k
		if d > done {
			done = d
		}
		if e == nil {
			return datas, oobs, n, done, nil
		}
		var data, oob []byte
		d2, retries, e2 := f.cfg.Retry.DoFrom(at, 1, e, func(t sim.Time) (sim.Time, error) {
			var e3 error
			data, oob, t, e3 = f.dev.ReadPage(t, addrs[n])
			return t, e3
		})
		f.stats.Retries += retries
		if d2 > done {
			done = d2
		}
		if e2 != nil {
			if retry.MediaFailure(e2) {
				f.markSuspect(f.dev.SegmentOf(addrs[n]))
			}
			return datas, oobs, n, done, e2
		}
		datas = append(datas, data)
		oobs = append(oobs, oob)
		n++
		at = d2
	}
	return datas, oobs, n, done, nil
}

// devCopyPages is the cleaner's batched copy-forward boundary. Failure
// attribution matches devCopyPage: the source segment is suspected.
func (f *FTL) devCopyPages(now sim.Time, froms, tos []nand.PageAddr) (n int, done sim.Time, err error) {
	done = now
	at := now
	for n < len(froms) {
		k, d, e := f.dev.CopyPages(at, froms[n:], tos[n:])
		n += k
		if d > done {
			done = d
		}
		if e == nil {
			return n, done, nil
		}
		d2, retries, e2 := f.cfg.Retry.DoFrom(at, 1, e, func(t sim.Time) (sim.Time, error) {
			return f.dev.CopyPage(t, froms[n], tos[n])
		})
		f.stats.Retries += retries
		if d2 > done {
			done = d2
		}
		if e2 != nil {
			if retry.MediaFailure(e2) {
				f.markSuspect(f.dev.SegmentOf(froms[n]))
			}
			return n, done, e2
		}
		n++
		at = d2
	}
	return n, done, nil
}

// retireSegment removes a fully-rescued segment from service: the device
// refuses further programs/erases, and the segment leaves both pools and
// the presence summary for good. Callers must have moved every merged-valid
// block off it first (copy-forward under the merged validity map rescues
// blocks live in ANY epoch, so snapshotted data survives too).
func (f *FTL) retireSegment(seg int) {
	f.dev.Retire(seg)
	for i, s := range f.usedSegs {
		if s == seg {
			f.usedSegs = append(f.usedSegs[:i], f.usedSegs[i+1:]...)
			break
		}
	}
	for i, s := range f.freeSegs {
		if s == seg {
			f.freeSegs = append(f.freeSegs[:i], f.freeSegs[i+1:]...)
			break
		}
	}
	f.presence.clear(seg)
	f.acct.untrack(seg)
}

// sealHead abandons the rest of a suspect head segment so subsequent appends
// land on healthy media; the suspect segment's existing data is rescued when
// the cleaner or scrubber picks it. With no spare free segment the head stays
// put (the next write retries in place rather than starving the cleaner).
func (f *FTL) sealHead() {
	if f.dev.SegmentHealth(f.headSeg) == nand.Healthy || len(f.freeSegs) <= 1 {
		return
	}
	f.headSeg = f.freeSegs[0]
	f.freeSegs = f.freeSegs[1:]
	f.headIdx = 0
	f.usedSegs = append(f.usedSegs, f.headSeg)
	f.acct.track(f.headSeg, true)
}
