package iosnap

import (
	"bytes"
	"errors"
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/nand"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
	"iosnap/internal/xport"
)

// replPair builds a source FTL with some initial content plus a blank
// destination FTL of identical geometry, and returns the expected image
// (lba -> payload) of the content written so far.
func replPair(t *testing.T, lbas []int64, version byte) (src, dst *FTL, want map[int64][]byte, now sim.Time) {
	t.Helper()
	src = newTestFTL(t)
	dst = newTestFTL(t)
	want = make(map[int64][]byte)
	ss := src.SectorSize()
	for _, lba := range lbas {
		data := sectorPattern(ss, lba, version)
		d, err := src.Write(now, lba, data)
		if err != nil {
			t.Fatalf("seed write lba %d: %v", lba, err)
		}
		now = d
		want[lba] = data
	}
	return src, dst, want, now
}

// checkReplica asserts dst holds exactly the expected image: every
// expected sector bit-identical, every other sector zero.
func checkReplica(t *testing.T, dst *FTL, want map[int64][]byte) {
	t.Helper()
	ss := dst.SectorSize()
	buf := make([]byte, ss)
	zero := make([]byte, ss)
	for lba := int64(0); lba < dst.Sectors(); lba++ {
		if _, err := dst.Read(0, lba, buf); err != nil {
			t.Fatalf("replica read lba %d: %v", lba, err)
		}
		if exp, ok := want[lba]; ok {
			if !bytes.Equal(buf, exp) {
				t.Fatalf("replica lba %d differs from snapshot image", lba)
			}
		} else if !bytes.Equal(buf, zero) {
			t.Fatalf("replica lba %d should be zero (unmapped in image)", lba)
		}
	}
}

func TestFullReplicateBitIdentical(t *testing.T) {
	src, dst, want, now := replPair(t, []int64{0, 1, 2, 7, 40, 41, 99}, 1)
	snap, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite after the snapshot: the export must ship the frozen image,
	// not the live one.
	ss := src.SectorSize()
	if now, err = src.Write(now, 7, sectorPattern(ss, 7, 9)); err != nil {
		t.Fatal(err)
	}

	r := &Replicator{Src: src, Dst: dst, Policy: retry.Default()}
	m, now, err := r.Replicate(now, snap.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.IsDelta() {
		t.Fatal("first replication must be a full image")
	}
	if len(m.Writes) != len(want) {
		t.Fatalf("manifest defines %d sectors, want %d", len(m.Writes), len(want))
	}
	checkReplica(t, dst, want)

	mism, _, err := VerifyReplica(dst, now, m)
	if err != nil || len(mism) != 0 {
		t.Fatalf("verify: mismatches %v, err %v", mism, err)
	}
	if got := src.Stats().ExportChunks; got != int64(len(want)) {
		t.Fatalf("ExportChunks = %d, want %d", got, len(want))
	}
	if r.Generation() == nil || r.Generation().ID() != m.ID() {
		t.Fatal("replicator did not commit the generation")
	}
	if r.Journal() != nil {
		t.Fatal("committed transfer must clear the journal")
	}
}

func TestIncrementalShipsOnlyTheDelta(t *testing.T) {
	src, dst, want, now := replPair(t, []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 30, 31}, 1)
	ss := src.SectorSize()
	s1, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	r := &Replicator{Src: src, Dst: dst, Policy: retry.Default()}
	if _, now, err = r.Replicate(now, s1.ID, 0); err != nil {
		t.Fatal(err)
	}
	fullChunks := src.Stats().ExportChunks

	// Change two sectors, add one, trim one; freeze the next generation.
	for _, lba := range []int64{3, 7} {
		if now, err = src.Write(now, lba, sectorPattern(ss, lba, 2)); err != nil {
			t.Fatal(err)
		}
		want[lba] = sectorPattern(ss, lba, 2)
	}
	if now, err = src.Write(now, 55, sectorPattern(ss, 55, 2)); err != nil {
		t.Fatal(err)
	}
	want[55] = sectorPattern(ss, 55, 2)
	if now, err = src.Trim(now, 30, 1); err != nil {
		t.Fatal(err)
	}
	delete(want, 30)
	s2, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}

	m, now, err := r.Replicate(now, s2.ID, s1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsDelta() {
		t.Fatal("base-relative replication must produce a delta")
	}
	deltaChunks := src.Stats().ExportChunks - fullChunks
	if deltaChunks != 3 {
		t.Fatalf("delta shipped %d chunks, want 3 (changed 3/7, new 55)", deltaChunks)
	}
	if deltaChunks >= fullChunks {
		t.Fatalf("incremental (%d) must ship fewer chunks than full (%d)", deltaChunks, fullChunks)
	}
	if len(m.Deletes) != 1 || m.Deletes[0] != 30 {
		t.Fatalf("delta deletes %v, want [30]", m.Deletes)
	}
	checkReplica(t, dst, want)
	if mism, _, err := VerifyReplica(dst, now, m); err != nil || len(mism) != 0 {
		t.Fatalf("verify: %v, %v", mism, err)
	}
}

func TestDedupSkipsUnchangedContent(t *testing.T) {
	src, dst, want, now := replPair(t, []int64{0, 1, 2, 3, 4, 5, 6, 7}, 1)
	s1, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	r := &Replicator{Src: src, Dst: dst, Policy: retry.Default()}
	if _, now, err = r.Replicate(now, s1.ID, 0); err != nil {
		t.Fatal(err)
	}

	// Rewrite one sector with DIFFERENT bytes and snapshot again: a full
	// (non-delta) replication of s2 still only ships that one chunk — the
	// committed generation dedups every unchanged sector.
	ss := src.SectorSize()
	if now, err = src.Write(now, 4, sectorPattern(ss, 4, 2)); err != nil {
		t.Fatal(err)
	}
	want[4] = sectorPattern(ss, 4, 2)
	s2, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	before := src.Stats()
	m, _, err := r.Replicate(now, s2.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	after := src.Stats()
	if shipped := after.ExportChunks - before.ExportChunks; shipped != 1 {
		t.Fatalf("full-with-dedup shipped %d chunks, want 1", shipped)
	}
	if hits := after.ExportDedupHits - before.ExportDedupHits; hits != int64(len(want)-1) {
		t.Fatalf("dedup hits = %d, want %d", hits, len(want)-1)
	}
	if m.IsDelta() {
		t.Fatal("base=0 replication must still be a full manifest")
	}
	checkReplica(t, dst, want)
}

func TestCrashMidReceiveResumes(t *testing.T) {
	src, dst, want, now := replPair(t, []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 1)
	snap, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	_, stream, now, err := src.ExportSync(now, ExportOpts{Snapshot: snap.ID})
	if err != nil {
		t.Fatal(err)
	}

	var persisted []byte
	keep := func(j []byte) error { persisted = append([]byte(nil), j...); return nil }

	// Crash after three applied chunks. The journal persisted at the abort
	// is everything the resume may rely on.
	rec, now, err := ReceiveInto(dst, now, stream, ReceiveOpts{AbortAfter: 3, Persist: keep, PersistEvery: 2})
	if !errors.Is(err, ErrReceiveAborted) {
		t.Fatalf("want ErrReceiveAborted, got %v", err)
	}
	if rec.Applied != 3 || persisted == nil {
		t.Fatalf("aborted receive: applied %d, journal persisted %v", rec.Applied, persisted != nil)
	}

	// Resume from the persisted journal: only the remaining chunks land.
	rec2, now, err := ReceiveInto(dst, now, stream, ReceiveOpts{Journal: persisted, Persist: keep})
	if err != nil {
		t.Fatal(err)
	}
	if !rec2.Resumed {
		t.Fatal("second receive must report Resumed")
	}
	if rec2.Skipped != 3 || rec2.Applied != len(want)-3 {
		t.Fatalf("resume skipped %d applied %d, want 3/%d", rec2.Skipped, rec2.Applied, len(want)-3)
	}
	if !rec2.Journal.Committed {
		t.Fatal("resumed receive must commit")
	}
	checkReplica(t, dst, want)

	// A journal from this transfer must be refused by a different one.
	if now, err = src.Write(now, 1, sectorPattern(src.SectorSize(), 1, 3)); err != nil {
		t.Fatal(err)
	}
	snap2, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	_, stream2, now, err := src.ExportSync(now, ExportOpts{Snapshot: snap2.ID})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReceiveInto(dst, now, stream2, ReceiveOpts{Journal: persisted}); !errors.Is(err, xport.ErrWrongTransfer) {
		t.Fatalf("stale journal: want ErrWrongTransfer, got %v", err)
	}
}

// TestPersistFailureAbortsReceive: when the journal cannot be made
// durable, the receive must fail — not report success against a resume
// contract that exists only in memory. (Regression: Persist errors used to
// be unreportable by signature.)
func TestPersistFailureAbortsReceive(t *testing.T) {
	src, dst, _, now := replPair(t, []int64{0, 1, 2, 3, 4}, 1)
	snap, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	_, stream, now, err := src.ExportSync(now, ExportOpts{Snapshot: snap.ID})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sidecar device full")
	// Fail the very first durability point.
	rec, _, rerr := ReceiveInto(dst, now, stream, ReceiveOpts{Persist: func([]byte) error { return boom }})
	if !errors.Is(rerr, boom) {
		t.Fatalf("receive with failing persist returned %v, want the persist error", rerr)
	}
	if rec != nil && rec.Journal.Committed {
		t.Fatal("journal claims committed although it never became durable")
	}

	// Fail only the final (commit) persist: everything applied, but the
	// commit record was lost — the call must still fail and the journal
	// must not claim Committed.
	calls := 0
	var last error
	rec, _, rerr = ReceiveInto(dst, now, stream, ReceiveOpts{
		PersistEvery: 1000, // only the clear-phase and commit persists fire
		Persist: func(j []byte) error {
			calls++
			if calls >= 2 {
				last = boom
				return boom
			}
			return nil
		},
	})
	if !errors.Is(rerr, boom) || last == nil {
		t.Fatalf("receive with failing commit persist returned %v (persist calls %d)", rerr, calls)
	}
	if rec.Journal.Committed {
		t.Fatal("journal claims committed although the commit record was lost")
	}

	// The replicator propagates the same failure instead of committing a
	// generation whose journal never persisted.
	r := &Replicator{Src: src, Dst: dst, Persist: func([]byte) error { return boom }}
	if _, _, err := r.Replicate(now, snap.ID, 0); !errors.Is(err, boom) {
		t.Fatalf("replicate with failing persist returned %v, want the persist error", err)
	}
	if r.Generation() != nil {
		t.Fatal("failed replication must not advance the committed generation")
	}
}

func TestDamagedStreamFailsAtomically(t *testing.T) {
	src, dst, _, now := replPair(t, []int64{0, 1, 2, 3, 4}, 1)
	snap, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	_, stream, now, err := src.ExportSync(now, ExportOpts{Snapshot: snap.ID})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the destination with a sentinel the receive must not disturb.
	ss := dst.SectorSize()
	sentinel := sectorPattern(ss, 2, 77)
	if now, err = dst.Write(now, 2, sentinel); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mangle func([]byte) []byte
		want   error
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-9] }, xport.ErrTruncated},
		{"bit-flipped", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x20
			return c
		}, xport.ErrBadChecksum},
		{"empty", func(b []byte) []byte { return nil }, xport.ErrTruncated},
	}
	for _, tc := range cases {
		var persisted bool
		_, _, err := ReceiveInto(dst, now, tc.mangle(stream), ReceiveOpts{Persist: func([]byte) error { persisted = true; return nil }})
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		if !xport.Retryable(err) {
			t.Fatalf("%s: stream damage must be retryable", tc.name)
		}
		if persisted {
			t.Fatalf("%s: rejected stream must not journal anything", tc.name)
		}
		buf := make([]byte, ss)
		if _, err := dst.Read(now, 2, buf); err != nil || !bytes.Equal(buf, sentinel) {
			t.Fatalf("%s: rejected stream mutated the destination", tc.name)
		}
	}
}

func TestReplicatorRetriesWireDamage(t *testing.T) {
	src, dst, want, now := replPair(t, []int64{0, 1, 2, 3, 4, 5}, 1)
	snap, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	r := &Replicator{
		Src:    src,
		Dst:    dst,
		Policy: retry.Policy{MaxAttempts: 4, Backoff: 100 * sim.Microsecond},
		// Attempt 1 arrives truncated, attempt 2 bit-flipped, attempt 3 clean.
		Mangle: func(attempt int, stream []byte) []byte {
			switch attempt {
			case 1:
				return stream[:len(stream)-20]
			case 2:
				c := append([]byte(nil), stream...)
				c[len(c)-30] ^= 0x01
				return c
			}
			return stream
		},
	}
	m, now, err := r.Replicate(now, snap.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := src.Stats().ImportRetries; got != 2 {
		t.Fatalf("ImportRetries = %d, want 2", got)
	}
	checkReplica(t, dst, want)
	if mism, _, err := VerifyReplica(dst, now, m); err != nil || len(mism) != 0 {
		t.Fatalf("verify after retries: %v, %v", mism, err)
	}
}

func TestTransientNANDDuringExport(t *testing.T) {
	src, dst, want, now := replPair(t, []int64{0, 1, 2, 3, 4, 5, 6, 7}, 1)
	snap, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// Transient read faults plus a read-side corruption during the export's
	// payload reads: the media retry layer absorbs both.
	plan := faultinject.NewPlan(3,
		faultinject.Rule{Kind: faultinject.KindTransient, Op: nand.OpRead, Seg: faultinject.AnySeg, AfterN: 2, Times: 1},
		faultinject.Rule{Kind: faultinject.KindCorruptData, Op: nand.OpRead, Seg: faultinject.AnySeg, AfterN: 4, Times: 1})
	plan.Arm(src.Device())
	r := &Replicator{Src: src, Dst: dst, Policy: retry.Default()}
	m, now, err := r.Replicate(now, snap.ID, 0)
	plan.Disarm(src.Device())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Fired()) == 0 {
		t.Fatal("plan never fired — test exercised nothing")
	}
	if src.Stats().Retries == 0 {
		t.Fatal("expected media retries during export")
	}
	checkReplica(t, dst, want)
	if mism, _, err := VerifyReplica(dst, now, m); err != nil || len(mism) != 0 {
		t.Fatalf("verify: %v, %v", mism, err)
	}
}

func TestVerifyRepairAfterDestinationCorruption(t *testing.T) {
	src, dst, want, now := replPair(t, []int64{0, 1, 2, 3, 4, 5, 6, 7}, 1)
	snap, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// One of the receive's programs on the DESTINATION persists corrupted
	// bytes (detected on every read until the sector is rewritten). The
	// post-receive verify flags it; the repair pass re-applies exactly that
	// sector from the stream, landing on a fresh page.
	plan := faultinject.CorruptNth(nand.OpProgram, 3)
	plan.Arm(dst.Device())
	r := &Replicator{
		Src:    src,
		Dst:    dst,
		Policy: retry.Policy{MaxAttempts: 3, Backoff: 100 * sim.Microsecond},
	}
	m, now, err := r.Replicate(now, snap.ID, 0)
	plan.Disarm(dst.Device())
	if err != nil {
		t.Fatal(err)
	}
	st := src.Stats()
	if st.VerifyMismatches == 0 {
		t.Fatal("expected the corrupted sector to fail verification once")
	}
	if st.ImportRetries == 0 {
		t.Fatal("expected a repair attempt")
	}
	checkReplica(t, dst, want)
	if mism, _, err := VerifyReplica(dst, now, m); err != nil || len(mism) != 0 {
		t.Fatalf("repaired replica must verify clean: %v, %v", mism, err)
	}
}

func TestExportWhileForegroundWritesContinue(t *testing.T) {
	src, dst, want, now := replPair(t, []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 1)
	snap, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	x, now, err := src.BeginExport(now, ExportOpts{Snapshot: snap.ID})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave overwrites with export steps: one foreground write per
	// export quantum, touching sectors the snapshot covers.
	ss := src.SectorSize()
	lba := int64(0)
	for !x.Done() {
		next, fin := x.Run(now)
		if fin {
			break
		}
		if next > now {
			now = next
		}
		if now, err = src.Write(now, lba%10, sectorPattern(ss, lba%10, 5)); err != nil {
			t.Fatal(err)
		}
		lba++
	}
	if lba == 0 {
		t.Fatal("export finished in one quantum — nothing interleaved")
	}
	_, stream, err := x.Result()
	if err != nil {
		t.Fatal(err)
	}
	if _, now, err = ReceiveInto(dst, now, stream, ReceiveOpts{}); err != nil {
		t.Fatal(err)
	}
	// The replica must equal the FROZEN image (version 1), untouched by the
	// interleaved version-5 writes.
	checkReplica(t, dst, want)
}

func TestExportGuards(t *testing.T) {
	now := sim.Time(0)

	t.Run("fingerprint mode", func(t *testing.T) {
		cfg := testConfig()
		cfg.Nand.StoreData = false
		f, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := f.Write(now, 1, make([]byte, f.SectorSize()))
		if err != nil {
			t.Fatal(err)
		}
		snap, d, err := f.FrozenSnapshot(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.BeginExport(d, ExportOpts{Snapshot: snap.ID}); !errors.Is(err, ErrBadExport) {
			t.Fatalf("fingerprint-mode export: got %v, want ErrBadExport", err)
		}
	})

	t.Run("unknown and deleted snapshots", func(t *testing.T) {
		f := newTestFTL(t)
		d, err := f.Write(now, 1, make([]byte, f.SectorSize()))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.BeginExport(d, ExportOpts{Snapshot: 42}); !errors.Is(err, ErrNoSuchSnapshot) {
			t.Fatalf("unknown snapshot: %v", err)
		}
		snap, d, err := f.FrozenSnapshot(d)
		if err != nil {
			t.Fatal(err)
		}
		s2, d, err := f.FrozenSnapshot(d)
		if err != nil {
			t.Fatal(err)
		}
		if d, err = f.DeleteSnapshot(d, snap.ID); err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.BeginExport(d, ExportOpts{Snapshot: snap.ID}); !errors.Is(err, ErrSnapshotDeleted) {
			t.Fatalf("deleted snapshot: %v", err)
		}
		if _, _, err := f.BeginExport(d, ExportOpts{Snapshot: s2.ID, Base: snap.ID}); !errors.Is(err, ErrSnapshotDeleted) {
			t.Fatalf("deleted base: %v", err)
		}
	})

	t.Run("deleted mid-export", func(t *testing.T) {
		f := newTestFTL(t)
		d, err := f.Write(now, 1, sectorPattern(f.SectorSize(), 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		snap, d, err := f.FrozenSnapshot(d)
		if err != nil {
			t.Fatal(err)
		}
		x, d, err := f.BeginExport(d, ExportOpts{Snapshot: snap.ID})
		if err != nil {
			t.Fatal(err)
		}
		if d, err = f.DeleteSnapshot(d, snap.ID); err != nil {
			t.Fatal(err)
		}
		for !x.Done() {
			var fin bool
			d, fin = x.Run(d)
			if fin {
				break
			}
		}
		if !errors.Is(x.Err(), ErrExportAborted) {
			t.Fatalf("mid-export deletion: got %v, want ErrExportAborted", x.Err())
		}
		if len(f.exports) != 0 {
			t.Fatal("failed export must deregister itself")
		}
	})

	t.Run("cancel", func(t *testing.T) {
		f := newTestFTL(t)
		d, err := f.Write(now, 1, sectorPattern(f.SectorSize(), 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		snap, d, err := f.FrozenSnapshot(d)
		if err != nil {
			t.Fatal(err)
		}
		x, d, err := f.BeginExport(d, ExportOpts{Snapshot: snap.ID})
		if err != nil {
			t.Fatal(err)
		}
		if err := x.Cancel(d); err != nil {
			t.Fatal(err)
		}
		if !x.Done() || !errors.Is(x.Err(), ErrExportAborted) || len(f.exports) != 0 {
			t.Fatalf("cancel: done %v err %v exports %d", x.Done(), x.Err(), len(f.exports))
		}
	})
}

func TestDeltaRequiresMatchingBase(t *testing.T) {
	src, dst, _, now := replPair(t, []int64{0, 1, 2, 3}, 1)
	ss := src.SectorSize()
	s1, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	if now, err = src.Write(now, 2, sectorPattern(ss, 2, 2)); err != nil {
		t.Fatal(err)
	}
	s2, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// Export the delta with a bogus receiver-generation stamp.
	_, stream, now, err := src.ExportSync(now, ExportOpts{Snapshot: s2.ID, Base: s1.ID, BaseManifestID: 0xDEAD})
	if err != nil {
		t.Fatal(err)
	}
	// Bare destination: refused.
	if _, _, err := ReceiveInto(dst, now, stream, ReceiveOpts{}); !errors.Is(err, xport.ErrBaseMismatch) {
		t.Fatalf("delta on bare destination: %v", err)
	}
	// Destination holding a different generation: refused.
	other := &xport.Manifest{SnapID: 1, SectorSize: ss, Sectors: src.Sectors()}
	if _, _, err := ReceiveInto(dst, now, stream, ReceiveOpts{Base: other}); !errors.Is(err, xport.ErrBaseMismatch) {
		t.Fatalf("delta on wrong generation: %v", err)
	}
	// A replicator with no committed generation refuses to even export one.
	r := &Replicator{Src: src, Dst: dst, Policy: retry.Default()}
	if _, _, err := r.Replicate(now, s2.ID, s1.ID); !errors.Is(err, xport.ErrBaseMismatch) {
		t.Fatalf("incremental with no generation: %v", err)
	}
}

func TestExportSurvivesGCMoves(t *testing.T) {
	// Begin an export, then force cleaning between quanta so collected
	// entries are re-pointed by gcFixup (f.exports wiring). The finished
	// replica must still be bit-identical.
	src, dst, want, now := replPair(t, []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 1)
	snap, now, err := src.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	x, now, err := src.BeginExport(now, ExportOpts{Snapshot: snap.ID})
	if err != nil {
		t.Fatal(err)
	}
	ss := src.SectorSize()
	i := int64(0)
	for !x.Done() {
		next, fin := x.Run(now)
		if fin {
			break
		}
		if next > now {
			now = next
		}
		// Churn hard enough to trigger cleaning while the export is live.
		for k := 0; k < 8; k++ {
			if now, err = src.Write(now, 12+(i%20), sectorPattern(ss, 12+(i%20), byte(2+i%3))); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	_, stream, err := x.Result()
	if err != nil {
		t.Fatal(err)
	}
	if src.Stats().GCRuns == 0 {
		t.Skip("churn did not trigger cleaning on this geometry")
	}
	if _, _, err = ReceiveInto(dst, now, stream, ReceiveOpts{}); err != nil {
		t.Fatal(err)
	}
	checkReplica(t, dst, want)
}
