package iosnap

import (
	"bytes"
	"errors"
	"testing"

	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

func TestActivateEachOfFiveSnapshots(t *testing.T) {
	// The Figure 8 semantics: snapshots 1..5 with data written between,
	// every activation reproduces exactly the state at its create.
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	models := make([]map[int64]byte, 0, 5)
	model := make(map[int64]byte)
	var snaps []*Snapshot
	rng := sim.NewRNG(5)
	for s := 0; s < 5; s++ {
		for i := 0; i < 20; i++ {
			f.sched.RunUntil(now)
			lba := rng.Int63n(60)
			v := byte(s*20 + i + 1)
			d, err := f.Write(now, lba, sectorPattern(ss, lba, v))
			if err != nil {
				t.Fatal(err)
			}
			model[lba] = v
			now = d
		}
		snap, d, err := f.CreateSnapshot(now)
		if err != nil {
			t.Fatal(err)
		}
		now = d
		snaps = append(snaps, snap)
		frozen := make(map[int64]byte, len(model))
		for k, v := range model {
			frozen[k] = v
		}
		models = append(models, frozen)
	}
	buf := make([]byte, ss)
	for i, snap := range snaps {
		view, d, err := f.ActivateSync(now, snap.ID, noLimit, false)
		if err != nil {
			t.Fatalf("activating snapshot %d: %v", i+1, err)
		}
		now = d
		for lba := int64(0); lba < 60; lba++ {
			if _, err := view.Read(now, lba, buf); err != nil {
				t.Fatal(err)
			}
			if v, ok := models[i][lba]; ok {
				if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
					t.Fatalf("snapshot %d LBA %d wrong", i+1, lba)
				}
			} else {
				for _, b := range buf {
					if b != 0 {
						t.Fatalf("snapshot %d LBA %d should be unwritten", i+1, lba)
					}
				}
			}
		}
		if view.MappedSectors() != len(models[i]) {
			t.Fatalf("snapshot %d mapped %d, want %d", i+1, view.MappedSectors(), len(models[i]))
		}
	}
}

func TestActivationErrors(t *testing.T) {
	f := newTestFTL(t)
	if _, _, err := f.ActivateSync(0, 42, noLimit, false); !errors.Is(err, ErrNoSuchSnapshot) {
		t.Fatalf("unknown snapshot: %v", err)
	}
}

func TestBackgroundActivation(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 30; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	snap, now, _ := f.CreateSnapshot(now)
	act, now, err := f.Activate(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	if act.Ready() {
		t.Fatal("activation ready before the scheduler ran")
	}
	if _, err := act.View(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("View before ready: %v", err)
	}
	end := f.sched.Drain(now)
	if !act.Ready() {
		t.Fatal("activation not ready after drain")
	}
	view, err := act.View()
	if err != nil {
		t.Fatal(err)
	}
	_ = end
	if act.CompletedAt() < now {
		t.Fatalf("completion time %v before activation started at %v", act.CompletedAt(), now)
	}
	buf := make([]byte, ss)
	if _, err := view.Read(end, 7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 7, 1)) {
		t.Fatal("background-activated view wrong")
	}
}

func TestRateLimitedActivationIsSlower(t *testing.T) {
	mk := func(limit ratelimit.WorkSleep) sim.Duration {
		f := newTestFTL(nil2(t))
		ss := f.SectorSize()
		now := sim.Time(0)
		for lba := int64(0); lba < 50; lba++ {
			now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
		}
		snap, now, _ := f.CreateSnapshot(now)
		_, done, err := f.ActivateSync(now, snap.ID, limit, false)
		if err != nil {
			t.Fatal(err)
		}
		return done.Sub(now)
	}
	fast := mk(noLimit)
	slow := mk(ratelimit.WorkSleep{Work: 20 * sim.Microsecond, Sleep: 2 * sim.Millisecond})
	if slow < 4*fast {
		t.Fatalf("rate-limited activation %v not much slower than unthrottled %v", slow, fast)
	}
}

// nil2 lets mk above keep the test handle without shadow complaints.
func nil2(t *testing.T) *testing.T { return t }

func TestWritableViewAndTreeFork(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	now, _ = f.Write(now, 1, sectorPattern(ss, 1, 1))
	now, _ = f.Write(now, 2, sectorPattern(ss, 2, 1))
	s1, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// Diverge the active branch.
	now, _ = f.Write(now, 1, sectorPattern(ss, 1, 2))
	s2, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// Activate s1 writable; modify LBA 2; snapshot the view: a fork (the
	// paper's Figure 4: S3 hangs off S1, not S2).
	view, now, err := f.ActivateSync(now, s1.ID, noLimit, true)
	if err != nil {
		t.Fatal(err)
	}
	if !view.Writable() {
		t.Fatal("view not writable")
	}
	now, err = view.Write(now, 2, sectorPattern(ss, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	s3, now, err := view.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Parent != s1 {
		t.Fatalf("fork parent = %v, want s1", s3.Parent)
	}
	if s2.Parent != s1 {
		t.Fatal("main branch parent wrong")
	}
	// Active device must be unaffected by view writes.
	buf := make([]byte, ss)
	if _, err := f.Read(now, 2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 2, 1)) {
		t.Fatal("view write leaked into active device")
	}
	// The forked snapshot activates to s1's state + the view's change.
	v3, now, err := f.ActivateSync(now, s3.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v3.Read(now, 1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 1, 1)) {
		t.Fatal("fork saw main-branch overwrite")
	}
	if _, err := v3.Read(now, 2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 2, 7)) {
		t.Fatal("fork missing view write")
	}
}

func TestReadOnlyViewRejectsWrites(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, _ := f.Write(0, 0, sectorPattern(ss, 0, 1))
	s, now, _ := f.CreateSnapshot(now)
	view, now, err := f.ActivateSync(now, s.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.Write(now, 0, make([]byte, ss)); !errors.Is(err, ErrReadOnlyView) {
		t.Fatalf("write to readable view: %v", err)
	}
	if _, _, err := view.CreateSnapshot(now); !errors.Is(err, ErrReadOnlyView) {
		t.Fatalf("snapshot of readable view: %v", err)
	}
}

func TestDeactivate(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, _ := f.Write(0, 0, sectorPattern(ss, 0, 1))
	s, now, _ := f.CreateSnapshot(now)
	view, now, err := f.ActivateSync(now, s.ID, noLimit, true)
	if err != nil {
		t.Fatal(err)
	}
	now, err = view.Deactivate(now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.Read(now, 0, make([]byte, ss)); !errors.Is(err, ErrViewClosed) {
		t.Fatalf("read after deactivate: %v", err)
	}
	if _, err := view.Deactivate(now); !errors.Is(err, ErrViewClosed) {
		t.Fatalf("double deactivate: %v", err)
	}
	if len(f.views) != 1 {
		t.Fatalf("views = %d, want only active", len(f.views))
	}
}

func TestActivatedTreeIsCompact(t *testing.T) {
	// Table 3's observation: the bulk-loaded activated tree is smaller than
	// the organically grown active tree holding the same translations.
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	rng := sim.NewRNG(77)
	perm := rng.Perm(120)
	for _, p := range perm {
		f.sched.RunUntil(now)
		d, err := f.Write(now, int64(p), sectorPattern(ss, int64(p), 1))
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	s, now, _ := f.CreateSnapshot(now)
	activeBytes := f.ActiveMapMemory()
	view, _, err := f.ActivateSync(now, s.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	if view.MappedSectors() != 120 {
		t.Fatalf("view mapped %d", view.MappedSectors())
	}
	if view.MapMemory() >= activeBytes {
		t.Fatalf("activated tree %d B not smaller than active tree %d B",
			view.MapMemory(), activeBytes)
	}
}

func TestActivationDuringChurnWithGC(t *testing.T) {
	// The hard case: a background activation races foreground writes and
	// segment cleaning. The finished view must still be exactly the
	// snapshot state.
	for _, seed := range []uint64{3, 11, 29} {
		f := newTestFTL(t)
		ss := f.SectorSize()
		now := sim.Time(0)
		rng := sim.NewRNG(seed)
		model := make(map[int64]byte)
		for i := 0; i < 120; i++ {
			f.sched.RunUntil(now)
			lba := rng.Int63n(80)
			v := byte(i + 1)
			d, err := f.Write(now, lba, sectorPattern(ss, lba, v))
			if err != nil {
				t.Fatal(err)
			}
			model[lba] = v
			now = d
		}
		snap, d, err := f.CreateSnapshot(now)
		if err != nil {
			t.Fatal(err)
		}
		now = d
		frozen := make(map[int64]byte, len(model))
		for k, v := range model {
			frozen[k] = v
		}
		// Start a throttled activation so churn interleaves with the scan.
		act, d2, err := f.Activate(now, snap.ID, ratelimit.WorkSleep{Work: 5 * sim.Microsecond, Sleep: 300 * sim.Microsecond}, false)
		if err != nil {
			t.Fatal(err)
		}
		now = d2
		for i := 0; i < 250; i++ {
			f.sched.RunUntil(now)
			lba := rng.Int63n(80)
			d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(200+i%50)))
			if err != nil {
				t.Fatalf("seed %d churn write %d: %v", seed, i, err)
			}
			now = d
		}
		end := f.sched.Drain(now)
		if !act.Ready() {
			t.Fatalf("seed %d: activation never finished", seed)
		}
		view, err := act.View()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if f.Stats().GCRuns == 0 {
			t.Fatalf("seed %d: churn produced no cleaning; test is vacuous", seed)
		}
		buf := make([]byte, ss)
		for lba, v := range frozen {
			if _, err := view.Read(end, lba, buf); err != nil {
				t.Fatalf("seed %d view read %d: %v", seed, lba, err)
			}
			if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
				t.Fatalf("seed %d: snapshot LBA %d corrupted by concurrent GC", seed, lba)
			}
		}
		if view.MappedSectors() != len(frozen) {
			t.Fatalf("seed %d: view mapped %d, want %d", seed, view.MappedSectors(), len(frozen))
		}
	}
}

// TestParallelActivations exercises the paper's "no limit on the number of
// snapshots activated in parallel" claim: two background activations run
// concurrently and both produce correct views.
func TestParallelActivations(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	// Snapshot A at version 1, snapshot B at version 2.
	for lba := int64(0); lba < 20; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	snapA, now, _ := f.CreateSnapshot(now)
	for lba := int64(0); lba < 20; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 2))
	}
	snapB, now, _ := f.CreateSnapshot(now)
	for lba := int64(0); lba < 20; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 3))
	}

	limit := ratelimit.WorkSleep{Work: 10 * sim.Microsecond, Sleep: 200 * sim.Microsecond}
	actA, now, err := f.Activate(now, snapA.ID, limit, false)
	if err != nil {
		t.Fatal(err)
	}
	actB, now, err := f.Activate(now, snapB.ID, limit, false)
	if err != nil {
		t.Fatal(err)
	}
	end := f.sched.Drain(now)
	viewA, err := actA.View()
	if err != nil {
		t.Fatal(err)
	}
	viewB, err := actB.View()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 20; lba++ {
		if _, err := viewA.Read(end, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 1)) {
			t.Fatalf("view A LBA %d wrong", lba)
		}
		if _, err := viewB.Read(end, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 2)) {
			t.Fatalf("view B LBA %d wrong", lba)
		}
	}
}

// TestWriteAcrossSegmentBoundary checks multi-sector ops spanning the log
// head's segment switch.
func TestWriteAcrossSegmentBoundary(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	pps := f.cfg.Nand.PagesPerSegment
	now := sim.Time(0)
	// Fill the head segment to one page short of full.
	for i := 0; i < pps-1; i++ {
		d, err := f.Write(now, int64(i), sectorPattern(ss, int64(i), 1))
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	// A 4-sector op now spans the boundary.
	data := make([]byte, 4*ss)
	for i := 0; i < 4; i++ {
		copy(data[i*ss:], sectorPattern(ss, int64(100+i), 7))
	}
	now, err := f.Write(now, 100, data)
	if err != nil {
		t.Fatalf("boundary write: %v", err)
	}
	buf := make([]byte, ss)
	for i := int64(100); i < 104; i++ {
		if _, err := f.Read(now, i, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, i, 7)) {
			t.Fatalf("LBA %d wrong after boundary write", i)
		}
	}
}

// TestLastSectorOfDevice exercises the device-edge addresses.
func TestLastSectorOfDevice(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	last := f.Sectors() - 1
	now, err := f.Write(0, last, sectorPattern(ss, last, 9))
	if err != nil {
		t.Fatalf("write to last sector: %v", err)
	}
	buf := make([]byte, ss)
	if _, err := f.Read(now, last, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, last, 9)) {
		t.Fatal("last sector round trip failed")
	}
	// One past the end must fail.
	if _, err := f.Write(now, last+1, make([]byte, ss)); err == nil {
		t.Fatal("write past end accepted")
	}
	// Multi-sector op overlapping the end must fail atomically.
	if _, err := f.Write(now, last, make([]byte, 2*ss)); err == nil {
		t.Fatal("op spanning device end accepted")
	}
}

func TestCancelActivation(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 40; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	snap, now, _ := f.CreateSnapshot(now)
	act, now, err := f.Activate(now, snap.ID,
		ratelimit.WorkSleep{Work: 5 * sim.Microsecond, Sleep: sim.Millisecond}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Let a little of the scan happen, then cancel.
	f.sched.RunUntil(now.Add(2 * sim.Millisecond))
	if err := act.Cancel(now.Add(2 * sim.Millisecond)); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Cancel: %v", err)
	}
	if !act.Ready() {
		t.Fatal("cancelled activation not done")
	}
	if _, err := act.View(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("View after cancel: %v", err)
	}
	// Remaining scheduled quanta must be harmless.
	end := f.sched.Drain(now.Add(2 * sim.Millisecond))
	// The snapshot itself is unharmed: a fresh activation works.
	view, _, err := f.ActivateSync(end, snap.ID, noLimit, false)
	if err != nil {
		t.Fatalf("re-activation after cancel: %v", err)
	}
	if view.MappedSectors() != 40 {
		t.Fatalf("re-activated view mapped %d", view.MappedSectors())
	}
	// Cancelling a finished activation is a no-op returning its state.
	if err := act.Cancel(end); !errors.Is(err, ErrCancelled) {
		t.Fatal("double cancel changed state")
	}
}
