package iosnap

import (
	"bytes"
	"testing"

	"iosnap/internal/sim"
)

func TestSnapshottedDataSurvivesHeavyCleaning(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	rng := sim.NewRNG(100)
	model := make(map[int64]byte)
	for i := 0; i < 100; i++ {
		f.sched.RunUntil(now)
		lba := rng.Int63n(60)
		v := byte(i + 1)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, v))
		if err != nil {
			t.Fatal(err)
		}
		model[lba] = v
		now = d
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	frozen := make(map[int64]byte, len(model))
	for k, v := range model {
		frozen[k] = v
	}
	// Heavy churn: many segment cleanings move snapshot blocks repeatedly.
	for i := 0; i < 600; i++ {
		f.sched.RunUntil(now)
		lba := rng.Int63n(60)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(i)))
		if err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
		now = d
	}
	now = f.sched.Drain(now)
	if f.Stats().GCRuns < 5 {
		t.Fatalf("only %d cleanings; test is weak", f.Stats().GCRuns)
	}
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	for lba, v := range frozen {
		if _, err := view.Read(now, lba, buf); err != nil {
			t.Fatalf("snapshot read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
			t.Fatalf("snapshot LBA %d corrupted by cleaning", lba)
		}
	}
}

func TestGCCopiesMoreWithSnapshots(t *testing.T) {
	// Snapshotted-but-overwritten blocks are extra copy-forward work; the
	// paper's Table 4 quantifies this as additional data movement.
	run := func(withSnap bool) int64 {
		f := newTestFTL(t)
		ss := f.SectorSize()
		now := sim.Time(0)
		rng := sim.NewRNG(9)
		for i := 0; i < 80; i++ {
			f.sched.RunUntil(now)
			lba := rng.Int63n(80)
			now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
		}
		if withSnap {
			_, d, err := f.CreateSnapshot(now)
			if err != nil {
				t.Fatal(err)
			}
			now = d
		}
		for i := 0; i < 400; i++ {
			f.sched.RunUntil(now)
			lba := rng.Int63n(80)
			d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(2+i%10)))
			if err != nil {
				t.Fatal(err)
			}
			now = d
		}
		f.sched.Drain(now)
		return f.Stats().GCCopied
	}
	without := run(false)
	with := run(true)
	if with <= without {
		t.Fatalf("GC with snapshot copied %d, without %d; snapshot should add movement", with, without)
	}
}

func TestEpochsPreservedAcrossMoves(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	now, _ = f.Write(now, 3, sectorPattern(ss, 3, 1))
	snap, now, _ := f.CreateSnapshot(now)
	// Force cleaning by churning unrelated LBAs.
	rng := sim.NewRNG(4)
	for i := 0; i < 500; i++ {
		f.sched.RunUntil(now)
		lba := 10 + rng.Int63n(50)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	now = f.sched.Drain(now)
	// The snapshot block was moved at least once; its epoch tag must have
	// moved with it so activation can still find it.
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	if _, err := view.Read(now, 3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 3, 1)) {
		t.Fatal("snapshot block lost its identity across moves")
	}
}

func TestMergeTimeGrowsWithSnapshots(t *testing.T) {
	run := func(snaps int) sim.Duration {
		f := newTestFTL(t)
		ss := f.SectorSize()
		now := sim.Time(0)
		rng := sim.NewRNG(12)
		for s := 0; s <= snaps; s++ {
			for i := 0; i < 40; i++ {
				f.sched.RunUntil(now)
				lba := rng.Int63n(60)
				d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(i)))
				if err != nil {
					t.Fatal(err)
				}
				now = d
			}
			if s < snaps {
				_, d, err := f.CreateSnapshot(now)
				if err != nil {
					t.Fatal(err)
				}
				now = d
			}
		}
		for i := 0; i < 300; i++ {
			f.sched.RunUntil(now)
			lba := rng.Int63n(60)
			d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(i)))
			if err != nil {
				t.Fatal(err)
			}
			now = d
		}
		f.sched.Drain(now)
		st := f.Stats()
		if st.GCRuns == 0 {
			t.Fatal("no cleaning")
		}
		return st.GCMergeTime / sim.Duration(st.GCRuns)
	}
	m0 := run(0)
	m2 := run(2)
	if m2 <= m0 {
		t.Fatalf("per-clean merge time with 2 snapshots (%v) not above zero snapshots (%v)", m2, m0)
	}
}

func TestEpochSegregationReducesIntermix(t *testing.T) {
	run := func(segregate bool) float64 {
		cfg := testConfig()
		cfg.EpochSegregation = segregate
		f, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		ss := f.SectorSize()
		now := sim.Time(0)
		rng := sim.NewRNG(33)
		// Interleave writes and snapshots so victims hold several epochs.
		for s := 0; s < 4; s++ {
			for i := 0; i < 45; i++ {
				f.sched.RunUntil(now)
				lba := rng.Int63n(90)
				d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(s*50+i)))
				if err != nil {
					t.Fatal(err)
				}
				now = d
			}
			if s < 3 {
				_, d, err := f.CreateSnapshot(now)
				if err != nil {
					t.Fatal(err)
				}
				now = d
			}
		}
		for i := 0; i < 400; i++ {
			f.sched.RunUntil(now)
			lba := rng.Int63n(90)
			d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(i)))
			if err != nil {
				t.Fatal(err)
			}
			now = d
		}
		f.sched.Drain(now)
		// Average epoch-run count across used segments.
		total, n := 0, 0
		for seg := 0; seg < cfg.Nand.Segments; seg++ {
			if f.dev.ProgrammedInSegment(seg) > 0 {
				total += f.SegmentEpochRuns(seg)
				n++
			}
		}
		if n == 0 {
			t.Fatal("no used segments")
		}
		return float64(total) / float64(n)
	}
	mixed := run(false)
	grouped := run(true)
	if grouped > mixed {
		t.Fatalf("epoch segregation increased intermix: %.2f runs vs %.2f", grouped, mixed)
	}
}
