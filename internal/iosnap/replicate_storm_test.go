package iosnap

import (
	"bytes"
	"fmt"
	"testing"

	"iosnap/internal/sim"
)

// TestExportStorm is the replication storm: four independent source→replica
// pairs run in parallel goroutines (the CI -race target), and within each
// pair three export jobs — one per frozen generation — are pumped
// round-robin, interleaved with foreground writes, so several exports are
// in flight over the same device at once while its contents churn. Every
// stream must land bit-identically for its own frozen generation.
func TestExportStorm(t *testing.T) {
	for p := 0; p < 4; p++ {
		t.Run(fmt.Sprintf("pair%d", p), func(t *testing.T) {
			t.Parallel()
			f := newTestFTL(t)
			ss := f.SectorSize()
			now := sim.Time(0)
			rng := sim.NewRNG(uint64(100 + p))

			// Three generations of churn, each frozen with its model.
			var (
				snaps  []SnapshotID
				models []map[int64][]byte
			)
			model := make(map[int64][]byte)
			for g := 0; g < 3; g++ {
				for i := 0; i < 40; i++ {
					lba := rng.Int63n(64)
					pat := sectorPattern(ss, lba, byte(10*g+i%10+1))
					f.sched.RunUntil(now)
					d, err := f.Write(now, lba, pat)
					if err != nil {
						t.Fatalf("gen %d write: %v", g, err)
					}
					now = d
					model[lba] = pat
				}
				snap, d, err := f.CreateSnapshot(now)
				if err != nil {
					t.Fatal(err)
				}
				now = d
				snaps = append(snaps, snap.ID)
				frozen := make(map[int64][]byte, len(model))
				for k, v := range model {
					frozen[k] = v
				}
				models = append(models, frozen)
			}

			// All three exports in flight at once, pumped round-robin with
			// a foreground write squeezed between every round.
			exports := make([]*Export, len(snaps))
			for i, id := range snaps {
				x, d, err := f.BeginExport(now, ExportOpts{Snapshot: id})
				if err != nil {
					t.Fatal(err)
				}
				now = d
				exports[i] = x
			}
			for {
				pending := false
				for _, x := range exports {
					if x.Done() {
						continue
					}
					pending = true
					d, _ := x.Run(now)
					if d > now {
						now = d
					}
				}
				if !pending {
					break
				}
				lba := rng.Int63n(64)
				f.sched.RunUntil(now)
				d, err := f.Write(now, lba, sectorPattern(ss, lba, 99))
				if err != nil {
					t.Fatalf("storm write: %v", err)
				}
				now = d
			}

			// Each stream restores its own frozen generation exactly.
			for i, x := range exports {
				m, stream, err := x.Result()
				if err != nil {
					t.Fatalf("export %d: %v", i, err)
				}
				dst := newTestFTL(t)
				_, d2, err := ReceiveInto(dst, now, stream, ReceiveOpts{})
				if err != nil {
					t.Fatalf("receive %d: %v", i, err)
				}
				d2 = dst.Scheduler().Drain(d2)
				if bad, _, err := VerifyReplica(dst, d2, m); err != nil {
					t.Fatalf("verify %d: %v", i, err)
				} else if len(bad) > 0 {
					t.Fatalf("replica %d diverges at %d sectors", i, len(bad))
				}
				buf := make([]byte, ss)
				for lba, want := range models[i] {
					if _, err := dst.Read(d2, lba, buf); err != nil {
						t.Fatalf("replica %d read LBA %d: %v", i, lba, err)
					}
					if !bytes.Equal(buf, want) {
						t.Fatalf("replica %d: LBA %d not the frozen generation", i, lba)
					}
				}
			}
		})
	}
}
