package iosnap

import (
	"fmt"

	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

// ForceClean schedules a paced background clean of a specific segment —
// the methodology of the paper's Table 4 / Figure 10, which forces the
// cleaner onto the segment holding snapshotted data while foreground I/O
// continues. The work estimate (and hence pacing) follows the configured
// GCPolicy. Use CleaningActive to observe completion.
func (f *FTL) ForceClean(now sim.Time, seg int) error {
	if f.closed {
		return ErrClosed
	}
	if f.gcActive {
		return fmt.Errorf("iosnap: cleaner already active")
	}
	if seg < 0 || seg >= f.cfg.Nand.Segments || seg == f.headSeg {
		return fmt.Errorf("iosnap: segment %d not cleanable", seg)
	}
	found := false
	for _, s := range f.usedSegs {
		if s == seg {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("iosnap: segment %d not in use", seg)
	}
	pps := int64(f.cfg.Nand.PagesPerSegment)
	lo, hi := int64(seg)*pps, int64(seg+1)*pps
	cost := f.acct.ensureFresh(seg)
	f.stats.GCMergeTime += cost
	est := f.acct.validCount(seg)
	if f.cfg.GCPolicy == GCVanillaEstimate {
		est = f.vstore.CountValid(f.active.epoch, lo, hi)
	}
	quanta := (est + f.cfg.GCChunk - 1) / f.cfg.GCChunk
	f.gcActive = true
	f.gcVictim = seg
	merged := f.acct.mergedClone(seg)
	f.orPinsInto(seg, merged)
	f.sched.Schedule(now, &gcTask{
		f:       f,
		victim:  seg,
		pacer:   ratelimit.NewPacer(now, quanta, f.cfg.GCWindow),
		started: now,
		merged:  merged,
		order:   f.copyOrder(seg, merged),
	})
	return nil
}

// CleaningActive reports whether a cleaner task (scheduled or forced) is in
// flight.
func (f *FTL) CleaningActive() bool { return f.gcActive }

// UsedSegments returns the segments currently holding data, oldest first
// (the log head is last).
func (f *FTL) UsedSegments() []int { return append([]int(nil), f.usedSegs...) }

// CountValidActive counts active-epoch-valid blocks in [lo, hi) physical
// pages (experiment/diagnostic hook).
func (f *FTL) CountValidActive(lo, hi int64) int {
	return f.vstore.CountValid(f.active.epoch, lo, hi)
}

// CountValidMerged counts merged-valid blocks in [lo, hi) physical pages
// across all live epochs (experiment/diagnostic hook).
func (f *FTL) CountValidMerged(lo, hi int64) int {
	return f.vstore.MergeRange(f.vstore.Epochs(), lo, hi).Count()
}
