package iosnap

import (
	"testing"

	"iosnap/internal/sim"
)

// churnVictimState drives an FTL through writes, overwrites, trims, and
// snapshot create/delete churn, leaving a mix of fresh and stale accounting
// caches behind for the selection tests to chew on.
func churnVictimState(t *testing.T, f *FTL) sim.Time {
	t.Helper()
	ss := f.SectorSize()
	now := sim.Time(0)
	var snaps []SnapshotID
	for round := 0; round < 6; round++ {
		for lba := int64(0); lba < 60; lba++ {
			done, err := f.Write(now, lba, sectorPattern(ss, lba, byte(round+1)))
			if err != nil {
				t.Fatalf("round %d write lba %d: %v", round, lba, err)
			}
			now = done
			f.sched.RunUntil(now)
		}
		if round%2 == 0 {
			s, done, err := f.CreateSnapshot(now)
			if err != nil {
				t.Fatalf("round %d snapshot: %v", round, err)
			}
			now = done
			snaps = append(snaps, s.ID)
		}
		if round == 3 && len(snaps) > 1 {
			done, err := f.DeleteSnapshot(now, snaps[0])
			if err != nil {
				t.Fatalf("delete snapshot %d: %v", snaps[0], err)
			}
			now = done
			snaps = snaps[1:]
		}
		if _, err := f.Trim(now, int64(10*round), 5); err != nil {
			t.Fatalf("round %d trim: %v", round, err)
		}
	}
	return f.sched.Drain(now)
}

// TestSelectVictimMatchesScratch pins the tentpole's correctness bar: the
// heap/counter-based selection must choose the same victim, with the same
// merged-valid estimate, as a from-scratch merge over every used segment —
// under both victim policies and with snapshot churn in the history.
func TestSelectVictimMatchesScratch(t *testing.T) {
	for _, policy := range []VictimPolicy{VictimGreedy, VictimCostBenefit} {
		cfg := testConfig()
		cfg.VictimPolicy = policy
		f, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		now := churnVictimState(t, f)
		for i := 0; i < 4; i++ {
			gotSeg, gotValid, _, _ := f.selectVictim()
			wantSeg, wantValid := f.selectVictimScratch()
			if gotSeg != wantSeg || gotValid != wantValid {
				t.Fatalf("policy %v pass %d: incremental selection (%d, %d) != scratch (%d, %d)",
					policy, i, gotSeg, gotValid, wantSeg, wantValid)
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("policy %v pass %d: %v", policy, i, err)
			}
			// Mutate between passes: more overwrites, another snapshot flip.
			for lba := int64(0); lba < 20; lba++ {
				done, werr := f.Write(now, lba, sectorPattern(f.SectorSize(), lba, byte(40+i)))
				if werr != nil {
					t.Fatalf("policy %v pass %d write: %v", policy, i, werr)
				}
				now = done
			}
			if i == 1 {
				if _, done, serr := f.CreateSnapshot(now); serr == nil {
					now = done
				}
			}
			now = f.sched.Drain(now)
		}
	}
}

// TestSelectVictimNeverFullyValid pins the zero-merged-invalid fix: a
// segment with nothing reclaimable must never be chosen, even when other
// segments make "any invalid exists" true.
func TestSelectVictimNeverFullyValid(t *testing.T) {
	for _, policy := range []VictimPolicy{VictimGreedy, VictimCostBenefit} {
		cfg := testConfig()
		cfg.VictimPolicy = policy
		f, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		churnVictimState(t, f)
		victim, mergedValid, _, _ := f.selectVictim()
		if victim < 0 {
			continue
		}
		pps := f.cfg.Nand.PagesPerSegment
		if mergedValid >= pps {
			t.Fatalf("policy %v: victim %d is fully merged-valid (%d/%d)", policy, victim, mergedValid, pps)
		}
	}
}

// TestTortureSnapshotChurn runs the snapshot-lifecycle storm mix: heavy
// create/delete/activate/deactivate traffic plus forced cleans and scrub
// passes, with the gcacct cross-check firing inside every CheckInvariants.
func TestTortureSnapshotChurn(t *testing.T) {
	for _, seed := range []uint64{2, 13, 77} {
		rep, err := Torture(tortureConfig(), TortureOptions{
			Seed:          seed,
			Steps:         900,
			SnapshotChurn: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, rep)
		}
		if rep.Checks == 0 {
			t.Fatalf("seed %d: no invariant checks ran", seed)
		}
		if rep.FinalStats.GCCacheRebuilds == 0 {
			t.Fatalf("seed %d: churn run never rebuilt a cleaning cache (%s)", seed, rep)
		}
	}
}

// TestTortureSnapshotChurnDeterministic re-runs one churn seed and demands
// bit-identical accounting-visible outcomes: the incremental selection path
// must not introduce run-to-run nondeterminism.
func TestTortureSnapshotChurnDeterministic(t *testing.T) {
	run := func() Stats {
		rep, err := Torture(tortureConfig(), TortureOptions{
			Seed:          13,
			Steps:         900,
			SnapshotChurn: true,
		})
		if err != nil {
			t.Fatalf("%v (%s)", err, rep)
		}
		return rep.FinalStats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("churn run not deterministic:\n run1: %+v\n run2: %+v", a, b)
	}
}
