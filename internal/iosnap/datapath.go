package iosnap

// The ioSnap foreground data path, rebuilt around batches — the snapshot
// twin of internal/ftl/datapath.go. A multi-sector request is one *run*:
// the view's forward map is charged one MapCPUCost per leaf the run touches
// spans in a maximally-packed tree (ftlmap.RunSpan), translations move through InsertRun / LookupRange /
// DeleteRange, validity flips through the CoW store's word-level range
// kernels (one CoW page copy per touched bitmap page, exactly what per-bit
// flips would have copied), and the NAND sees one batch call per log-head
// chunk. The path stays snapshot-oblivious: no per-snapshot work appears
// anywhere; only CoW page copies — charged once, in aggregate, at the end
// of the run — betray a snapshot's existence (Figure 7's spikes).
//
// Config.ReferenceDataPath selects the historical per-sector algorithms on
// the same virtual-time skeleton (same charges, same chunk boundaries, same
// submit times, same Stats increments), so batched and reference runs of
// any fault-free workload produce bit-identical device state, Stats, and
// completion times. Partial failure is accounted honestly in both: the
// sectors that completed stay committed and counted, and the returned time
// reflects work actually consumed.

import (
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/ftlmap"
	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// dataPathScratch holds the per-FTL reusable buffers of the batched data
// path; the simulation is single-threaded, so one set suffices.
type dataPathScratch struct {
	addrs   []nand.PageAddr
	datas   [][]byte
	oobs    [][]byte
	oobBuf  []byte   // flat backing store for oobs: header.Len bytes per page
	rdatas  [][]byte // devReadPages results, valid until its next call
	roobs   [][]byte
	entries []ftlmap.Entry
	prevs   []uint64
	vals    []uint64
	found   []bool
	secIdx  []int

	mapMiss  []uint64        // translation-page fault lists (mappage.go)
	mapAddrs []nand.PageAddr // their flash addresses for the batch read
}

// readVia serves a run read against any view. It returns the number of
// sectors completed (all of them unless the device failed mid-run), the
// completion time of the work performed, and the first error.
func (f *FTL) readVia(v *view, now sim.Time, lba int64, buf []byte) (completed int, done sim.Time, err error) {
	ss := f.cfg.Nand.SectorSize
	if len(buf)%ss != 0 {
		return 0, now, fmt.Errorf("%w: %d", ErrBadLength, len(buf))
	}
	n := len(buf) / ss
	if err := f.checkIO(lba, n); err != nil {
		return 0, now, err
	}
	span := ftlmap.RunSpan(n)
	f.stats.BatchDescents += int64(span)
	t := now.Add(sim.Duration(span) * f.cfg.MapCPUCost)
	// Paged map: fault the run's translation pages in (charged) before the
	// map is consulted. Tree and unbounded-paged maps pass through untimed.
	if t, err = f.mapEnsure(t, v, uint64(lba), n); err != nil {
		return 0, t, err
	}
	done = t

	// Resolve the run's translations; unmapped sectors read as zeros.
	addrs := f.ws.addrs[:0]
	secIdx := f.ws.secIdx[:0]
	if f.cfg.ReferenceDataPath {
		for i := 0; i < n; i++ {
			if a, ok := v.fmap.Lookup(uint64(lba) + uint64(i)); ok {
				addrs = append(addrs, nand.PageAddr(a))
				secIdx = append(secIdx, i)
			} else {
				zeroSector(buf[i*ss : (i+1)*ss])
			}
		}
	} else {
		vals, found := f.lookupScratch(n)
		v.fmap.LookupRange(uint64(lba), vals, found)
		for i := 0; i < n; i++ {
			if found[i] {
				addrs = append(addrs, nand.PageAddr(vals[i]))
				secIdx = append(secIdx, i)
				found[i] = false // leave the scratch all-false for reuse
			} else {
				zeroSector(buf[i*ss : (i+1)*ss])
			}
		}
	}
	f.ws.addrs, f.ws.secIdx = addrs, secIdx
	if len(addrs) == 0 {
		return n, done, nil
	}
	f.stats.BatchPages += int64(len(addrs))
	f.stats.BatchNandCalls++

	if f.cfg.ReferenceDataPath {
		for j, a := range addrs {
			data, _, d, err := f.devReadPage(t, a)
			if err != nil {
				return secIdx[j], done, fmt.Errorf("iosnap: reading LBA %d: %w", lba+int64(secIdx[j]), err)
			}
			copy(buf[secIdx[j]*ss:(secIdx[j]+1)*ss], data) // nil data (fingerprint mode) leaves buf as-is
			if d > done {
				done = d
			}
		}
		return n, done, nil
	}
	datas, _, k, d, err := f.devReadPages(t, addrs)
	for j := 0; j < k; j++ {
		copy(buf[secIdx[j]*ss:(secIdx[j]+1)*ss], datas[j])
	}
	if d > done {
		done = d
	}
	if err != nil {
		return secIdx[k], done, fmt.Errorf("iosnap: reading LBA %d: %w", lba+int64(secIdx[k]), err)
	}
	return n, done, nil
}

// writeVia appends a run to the log on behalf of a writable view: the run
// lands in per-segment chunks at the head, the view's map absorbs it with
// one descent per touched leaf, and the view epoch's validity flips in
// ranges. CoW page copies are charged in aggregate at the end of the run.
func (f *FTL) writeVia(v *view, now sim.Time, lba int64, data []byte) (completed int, done sim.Time, err error) {
	if f.frozen {
		return 0, now, ErrFrozen
	}
	ss := f.cfg.Nand.SectorSize
	if len(data)%ss != 0 {
		return 0, now, fmt.Errorf("%w: %d", ErrBadLength, len(data))
	}
	n := len(data) / ss
	if err := f.checkIO(lba, n); err != nil {
		return 0, now, err
	}
	span := ftlmap.RunSpan(n)
	f.stats.BatchDescents += int64(span)
	at := now.Add(sim.Duration(span) * f.cfg.MapCPUCost)
	if at, err = f.mapEnsure(at, v, uint64(lba), n); err != nil {
		return 0, at, err
	}
	done = at
	written := 0
	totalCows := 0
	var firstErr error
	for written < n && firstErr == nil {
		// The first page of each chunk goes through allocPage so head
		// advancement (forced cleaning, degradation, background-task
		// scheduling) behaves exactly as before; the rest of the chunk
		// fills the head segment contiguously.
		addr0, at2, err := f.allocPage(at)
		if err != nil {
			firstErr = err
			break
		}
		at = at2
		if at > done {
			done = at
		}
		chunk := n - written
		if room := f.cfg.Nand.PagesPerSegment - f.headIdx + 1; chunk > room {
			chunk = room
		}
		addrs := append(f.ws.addrs[:0], addr0)
		for j := 1; j < chunk; j++ {
			addrs = append(addrs, f.dev.Addr(f.headSeg, f.headIdx))
			f.headIdx++
		}
		seqBase := f.seq
		datas, oobs := f.ws.datas[:0], f.ws.oobs[:0]
		if f.cfg.ReferenceDataPath {
			// Historical host-cost profile: one fresh header buffer per page.
			for j := 0; j < chunk; j++ {
				datas = append(datas, data[(written+j)*ss:(written+j+1)*ss])
				h := header.Header{Type: header.TypeData, LBA: uint64(lba) + uint64(written+j), Epoch: uint64(v.epoch), Seq: seqBase + uint64(j) + 1}
				oobs = append(oobs, h.Marshal())
			}
		} else {
			if need := chunk * header.Len; cap(f.ws.oobBuf) < need {
				f.ws.oobBuf = make([]byte, need)
			}
			for j := 0; j < chunk; j++ {
				datas = append(datas, data[(written+j)*ss:(written+j+1)*ss])
				h := header.Header{Type: header.TypeData, LBA: uint64(lba) + uint64(written+j), Epoch: uint64(v.epoch), Seq: seqBase + uint64(j) + 1}
				oob := f.ws.oobBuf[j*header.Len : (j+1)*header.Len]
				h.MarshalInto(oob)
				oobs = append(oobs, oob)
			}
		}
		f.seq += uint64(chunk)
		f.ws.addrs, f.ws.datas, f.ws.oobs = addrs, datas, oobs
		f.stats.BatchPages += int64(chunk)
		f.stats.BatchNandCalls++

		var k int
		var d sim.Time
		if f.cfg.ReferenceDataPath {
			d = at
			for k = 0; k < chunk; k++ {
				pd, e := f.devProgramPage(at, addrs[k], datas[k], oobs[k])
				if pd > d {
					d = pd
				}
				if e != nil {
					err = e
					break
				}
			}
		} else {
			k, d, err = f.devProgramPages(at, addrs, datas, oobs)
		}
		if d > done {
			done = d
		}
		if k > 0 {
			seg := f.dev.SegmentOf(addrs[0])
			f.segLastSeq[seg] = seqBase + uint64(k)
			f.presence.add(seg, v.epoch)
		}
		if err != nil {
			// Pages past the failing one were never attempted: they hand
			// back their sequence numbers and log-head slots. The failing
			// page keeps its consumed seq (as the per-sector path always
			// did) and is reclaimed by ungetPage unless it landed after all.
			f.seq -= uint64(chunk - k - 1)
			f.headIdx -= chunk - k - 1
			f.ungetPage(addrs[k])
			if retry.MediaFailure(err) {
				f.sealHead()
			}
			firstErr = fmt.Errorf("iosnap: programming LBA %d: %w", lba+int64(written+k), err)
		}
		totalCows += f.commitWriteRun(v, uint64(lba)+uint64(written), addrs[:k])
		written += k
	}
	if totalCows > 0 {
		done = done.Add(sim.Duration(totalCows) * f.cfg.CoWPageCost)
	}
	return written, done, firstErr
}

// commitWriteRun installs view translations for a run of freshly-programmed
// pages (addrs[j] backs lba0+j) and flips the view epoch's validity: the
// new pages set as one contiguous range, the displaced translations clear
// in coalesced runs. It returns the number of CoW bitmap-page copies the
// flips triggered — identical to what per-bit flips would have copied,
// since each inherited page is copied exactly once per epoch regardless of
// how many bits in it flip.
func (f *FTL) commitWriteRun(v *view, lba0 uint64, addrs []nand.PageAddr) int {
	if len(addrs) == 0 {
		return 0
	}
	cows := 0
	if f.cfg.ReferenceDataPath {
		for j, a := range addrs {
			if prev, existed := v.fmap.Insert(lba0+uint64(j), uint64(a)); existed {
				if f.vstore.Clear(v.epoch, int64(prev)) {
					cows++
				}
				f.acct.onViewClear(v.epoch, int64(prev))
			}
			if f.vstore.Set(v.epoch, int64(a)) {
				cows++
			}
			f.acct.onViewSet(int64(a))
		}
		return cows
	}
	entries := f.ws.entries[:0]
	for j, a := range addrs {
		entries = append(entries, ftlmap.Entry{Key: lba0 + uint64(j), Val: uint64(a)})
	}
	f.ws.entries = entries
	f.ws.prevs = f.ws.prevs[:0]
	v.fmap.InsertRun(entries, func(_ int, prev uint64) {
		f.ws.prevs = append(f.ws.prevs, prev)
	})
	lo, hi := int64(addrs[0]), int64(addrs[0])+int64(len(addrs))
	cows += f.vstore.SetRange(v.epoch, lo, hi)
	f.acct.onViewSetRun(lo, hi)
	cows += f.clearViewRuns(v.epoch, f.ws.prevs)
	return cows
}

// clearViewRuns clears the given physical pages in epoch e, coalescing
// sorted neighbours into ClearRange calls (split at segment boundaries so
// the accounting hook stays within one merge cache). Returns CoW copies.
func (f *FTL) clearViewRuns(e bitmap.Epoch, prevs []uint64) int {
	if len(prevs) == 0 {
		return 0
	}
	sorted := true
	for i := 1; i < len(prevs); i++ {
		if prevs[i] < prevs[i-1] {
			sorted = false
			break
		}
	}
	if !sorted { // sequential overwrites displace already-ascending runs
		sort.Slice(prevs, func(i, j int) bool { return prevs[i] < prevs[j] })
	}
	pps := int64(f.cfg.Nand.PagesPerSegment)
	cows := 0
	for i := 0; i < len(prevs); {
		lo := int64(prevs[i])
		hi := lo + 1
		segEnd := (lo/pps + 1) * pps
		j := i + 1
		for j < len(prevs) && int64(prevs[j]) == hi && hi < segEnd {
			hi++
			j++
		}
		cows += f.vstore.ClearRange(e, lo, hi)
		f.acct.onViewClearRun(e, lo, hi)
		i = j
	}
	return cows
}

// Trim drops active-view translations for the run. The pages remain live in
// any snapshot that captured them; only the active epoch's bits clear. Like
// the other run operations it charges one MapCPUCost per touched leaf.
func (f *FTL) Trim(now sim.Time, lba int64, n int64) (sim.Time, error) {
	// A closed device refuses trims with ErrClosed even if it was frozen
	// when it closed — closed beats frozen, matching Read and Write.
	if err := f.checkIO(lba, int(n)); err != nil {
		return now, err
	}
	if f.frozen {
		return now, ErrFrozen
	}
	span := ftlmap.RunSpan(int(n))
	f.stats.BatchDescents += int64(span)
	// Paged map: fault only the translation pages that exist inside the
	// trimmed range (a discard over a hole touches nothing).
	t, err := f.mapEnsureRange(now, f.active, uint64(lba), uint64(lba)+uint64(n))
	if err != nil {
		return t, err
	}
	if f.cfg.ReferenceDataPath {
		for i := int64(0); i < n; i++ {
			if prev, existed := f.active.fmap.Delete(uint64(lba + i)); existed {
				f.vstore.Clear(f.active.epoch, int64(prev))
				f.acct.onViewClear(f.active.epoch, int64(prev))
			}
		}
	} else {
		f.ws.prevs = f.ws.prevs[:0]
		f.active.fmap.DeleteRange(uint64(lba), uint64(lba)+uint64(n), func(_, prev uint64) {
			f.ws.prevs = append(f.ws.prevs, prev)
		})
		f.clearViewRuns(f.active.epoch, f.ws.prevs)
	}
	f.stats.Trims += n
	return t.Add(sim.Duration(span) * f.cfg.MapCPUCost), nil
}

// lookupScratch returns the reusable LookupRange buffers, grown to n and
// with found all-false (readVia resets the bits it sets).
func (f *FTL) lookupScratch(n int) ([]uint64, []bool) {
	if cap(f.ws.vals) < n {
		f.ws.vals = make([]uint64, n)
		f.ws.found = make([]bool, n)
	}
	return f.ws.vals[:n], f.ws.found[:n]
}

func zeroSector(s []byte) {
	for i := range s {
		s[i] = 0
	}
}
