package iosnap

import (
	"errors"

	"iosnap/internal/sim"
)

// ErrFrozen is returned for writes attempted while the device is frozen.
var ErrFrozen = errors.New("iosnap: device frozen")

// Freeze quiesces the write path, the block-layer half of the freeze/
// unfreeze handshake the paper describes (§2: file systems flush dirty
// state and block I/O so the block device can take a consistent snapshot;
// §5.8: "the application must quiesce writes before issuing a snapshot
// create"). While frozen, writes and trims — on the active device and on
// writable views — fail with ErrFrozen; reads and snapshot operations
// proceed.
func (f *FTL) Freeze(now sim.Time) (sim.Time, error) {
	if f.closed {
		return now, ErrClosed
	}
	f.frozen = true
	return now, nil
}

// Unfreeze resumes the write path.
func (f *FTL) Unfreeze(now sim.Time) (sim.Time, error) {
	if f.closed {
		return now, ErrClosed
	}
	f.frozen = false
	return now, nil
}

// Frozen reports whether the device is currently quiesced.
func (f *FTL) Frozen() bool { return f.frozen }

// FrozenSnapshot is the safe-create convenience: freeze, snapshot,
// unfreeze, returning the snapshot.
func (f *FTL) FrozenSnapshot(now sim.Time) (*Snapshot, sim.Time, error) {
	if _, err := f.Freeze(now); err != nil {
		return nil, now, err
	}
	snap, done, err := f.CreateSnapshot(now)
	if _, uerr := f.Unfreeze(done); uerr != nil && err == nil {
		err = uerr
	}
	return snap, done, err
}
