package iosnap

import (
	"testing"

	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// benchFTL builds an FTL carrying nSnaps live snapshots over a 64-segment ×
// 64-page device. Each round writes a fresh 20-LBA window twice (the first
// pass becomes merged-invalid garbage, since no earlier epoch ever saw those
// pages) and then snapshots, so the final state has many used segments, a
// deep live-epoch set, and a realistic mix of valid and reclaimable blocks.
func benchFTL(b *testing.B, nSnaps int) (*FTL, sim.Time) {
	b.Helper()
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 64
	nc.Segments = 64
	nc.Channels = 4
	nc.StoreData = true
	cfg := DefaultConfig(nc)
	cfg.GCWindow = 10 * sim.Millisecond
	f, err := New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	now := sim.Time(0)
	buf := make([]byte, f.SectorSize())
	for r := 0; r < nSnaps; r++ {
		base := int64(r) * 20
		for pass := 0; pass < 2; pass++ {
			for i := int64(0); i < 20; i++ {
				done, err := f.Write(now, base+i, buf)
				if err != nil {
					b.Fatalf("round %d write: %v", r, err)
				}
				now = done
				f.sched.RunUntil(now)
			}
		}
		if _, done, err := f.CreateSnapshot(now); err != nil {
			b.Fatalf("round %d snapshot: %v", r, err)
		} else {
			now = done
		}
	}
	return f, f.sched.Drain(now)
}

// BenchmarkVictimSelect measures one cleaner victim decision on the
// incremental path: cached counters plus the score heap, with the caches in
// the all-fresh steady state they occupy between epoch-set changes.
func BenchmarkVictimSelect(b *testing.B) {
	f, _ := benchFTL(b, 64)
	f.selectVictim() // warm: pay the one post-churn rebuild outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.selectVictim()
	}
}

// BenchmarkVictimSelectScratch measures the pre-optimization behaviour kept
// as selectVictimScratch: a from-scratch merge across every live epoch for
// every used segment, per decision.
func BenchmarkVictimSelectScratch(b *testing.B) {
	f, _ := benchFTL(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.selectVictimScratch()
	}
}

// BenchmarkGCHeavySnapshotWorkload measures end-to-end host time of a write
// stream that keeps the cleaner busy under 64 live snapshots: the working
// set cycles over snapshot-pinned LBAs, so every write both invalidates and
// appends, and the free pool hovers near the reserve where every allocation
// consults the cleaner.
func BenchmarkGCHeavySnapshotWorkload(b *testing.B) {
	f, now := benchFTL(b, 64)
	buf := make([]byte, f.SectorSize())
	const space = 64 * 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := f.Write(now, int64(i)%space, buf)
		if err != nil {
			b.Fatalf("write %d: %v", i, err)
		}
		now = done
		f.sched.RunUntil(now)
	}
}
