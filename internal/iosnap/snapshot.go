package iosnap

import (
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// SnapshotID identifies a snapshot on one device.
type SnapshotID uint64

// Snapshot is one node of the snapshot tree (paper Figure 4). A snapshot
// freezes the epoch that was active when it was created; the data reachable
// from a snapshot is the union of its lineage's epochs.
type Snapshot struct {
	ID        SnapshotID
	Epoch     bitmap.Epoch
	Parent    *Snapshot // nil for snapshots of the initial lineage root
	Children  []*Snapshot
	Deleted   bool
	CreatedAt sim.Time

	noteAddr nand.PageAddr // location of the snap-create note
}

// Lineage returns the epochs captured by this snapshot, oldest first:
// the epochs of all ancestors plus its own.
func (s *Snapshot) Lineage() []bitmap.Epoch {
	var rev []bitmap.Epoch
	for n := s; n != nil; n = n.Parent {
		rev = append(rev, n.Epoch)
	}
	out := make([]bitmap.Epoch, len(rev))
	for i, e := range rev {
		out[len(rev)-1-i] = e
	}
	return out
}

// Depth returns how many ancestors the snapshot has.
func (s *Snapshot) Depth() int {
	d := 0
	for n := s.Parent; n != nil; n = n.Parent {
		d++
	}
	return d
}

// Tree is the snapshot tree: all snapshots ever created on the device,
// including deleted ones (kept as tombstones until their blocks are fully
// reclaimed — mirrors the paper's marked-deleted semantics).
type Tree struct {
	byID    map[SnapshotID]*Snapshot
	byEpoch map[bitmap.Epoch]*Snapshot
	nextID  SnapshotID
	nodes   int64 // in-memory node estimate for stats
}

// NewTree returns an empty snapshot tree.
func NewTree() *Tree {
	return &Tree{
		byID:    make(map[SnapshotID]*Snapshot),
		byEpoch: make(map[bitmap.Epoch]*Snapshot),
		nextID:  1,
	}
}

// Lookup returns the snapshot with the given id.
func (t *Tree) Lookup(id SnapshotID) (*Snapshot, bool) {
	s, ok := t.byID[id]
	return s, ok
}

// ByEpoch returns the snapshot that froze the given epoch.
func (t *Tree) ByEpoch(e bitmap.Epoch) (*Snapshot, bool) {
	s, ok := t.byEpoch[e]
	return s, ok
}

// Len returns the number of snapshots (including deleted tombstones).
func (t *Tree) Len() int { return len(t.byID) }

// Live returns the number of non-deleted snapshots.
func (t *Tree) Live() int {
	n := 0
	for _, s := range t.byID {
		if !s.Deleted {
			n++
		}
	}
	return n
}

// IDs returns all snapshot ids in ascending order.
func (t *Tree) IDs() []SnapshotID {
	out := make([]SnapshotID, 0, len(t.byID))
	for id := range t.byID {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// add registers a snapshot built by the FTL or by recovery.
func (t *Tree) add(s *Snapshot) {
	t.byID[s.ID] = s
	t.byEpoch[s.Epoch] = s
	if s.Parent != nil {
		s.Parent.Children = append(s.Parent.Children, s)
	}
	if s.ID >= t.nextID {
		t.nextID = s.ID + 1
	}
	t.nodes++
}

// CreateSnapshot snapshots the active device: the current epoch is frozen
// into a new snapshot node and the active view moves to a fresh epoch that
// inherits the frozen validity state.
//
// Per the paper (§5.8) this is four steps — the application quiesces writes
// (implicit here: the simulation is single-threaded), a snapshot-create
// note is appended to the log, the epoch counter increments, and the
// snapshot joins the tree. The whole operation costs one page program.
func (f *FTL) CreateSnapshot(now sim.Time) (*Snapshot, sim.Time, error) {
	if f.closed {
		return nil, now, ErrClosed
	}
	return f.createSnapshotFrom(f.active, now)
}

func (f *FTL) createSnapshotFrom(v *view, now sim.Time) (*Snapshot, sim.Time, error) {
	id := f.tree.nextID
	frozen := v.epoch

	noteAddr, done, err := f.writeNote(now, header.TypeSnapCreate, id, frozen)
	if err != nil {
		return nil, now, err
	}

	f.epochCounter++
	newEpoch := f.epochCounter
	if err := f.vstore.CreateEpoch(newEpoch, frozen); err != nil {
		return nil, now, fmt.Errorf("iosnap: creating epoch %d: %w", newEpoch, err)
	}
	f.epochParent[newEpoch] = frozen

	snap := &Snapshot{
		ID:        id,
		Epoch:     frozen,
		Parent:    v.parent,
		CreatedAt: now,
		noteAddr:  noteAddr,
	}
	f.tree.add(snap)
	v.epoch = newEpoch
	v.parent = snap
	// The view now continues on a fresh epoch born of a create, not an
	// activation: a crash keeps that epoch's lineage (it is a snapshot
	// child), so checkpoints must not normalize it dead.
	v.fromActivation = false
	f.stats.SnapshotCreates++
	return snap, done, nil
}

// DeleteSnapshot marks a snapshot deleted: a note makes the deletion
// durable, the tree node is tombstoned, and the snapshot's exclusively-held
// blocks become reclaimable — the cleaner frees them in the background, so
// deletion itself costs one page program (paper §5.8).
func (f *FTL) DeleteSnapshot(now sim.Time, id SnapshotID) (sim.Time, error) {
	if f.closed {
		return now, ErrClosed
	}
	snap, ok := f.tree.Lookup(id)
	if !ok {
		return now, fmt.Errorf("%w: %d", ErrNoSuchSnapshot, id)
	}
	if snap.Deleted {
		return now, fmt.Errorf("%w: %d", ErrSnapshotDeleted, id)
	}
	_, done, err := f.writeNote(now, header.TypeSnapDelete, id, snap.Epoch)
	if err != nil {
		return now, err
	}
	snap.Deleted = true
	if err := f.vstore.DeleteEpoch(snap.Epoch); err != nil {
		return now, fmt.Errorf("iosnap: deleting epoch %d: %w", snap.Epoch, err)
	}
	// The create note stays on the log (one 4 KB block per snapshot ever
	// created — the paper's "insignificant" fixed metadata): recovery
	// replays the full note history to reproduce epoch numbering, so even
	// tombstoned snapshots keep their create note.
	f.stats.SnapshotDeletes++
	return done, nil
}

// Snapshots returns the live snapshots in creation order.
func (f *FTL) Snapshots() []*Snapshot {
	var out []*Snapshot
	for _, id := range f.tree.IDs() {
		s, _ := f.tree.Lookup(id)
		if !s.Deleted {
			out = append(out, s)
		}
	}
	return out
}
