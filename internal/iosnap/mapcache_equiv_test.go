package iosnap

import (
	"fmt"
	"testing"

	"iosnap/internal/sim"
)

// The cache-unbounded paged map is contractually lockstep bit-exact with
// the in-RAM tree: every page is resident, the GTD stays empty, nothing is
// ever written to flash, so virtual times, Stats, and the device image
// must all match. Host RAM layout (MapMemory/MapMemoryResident) and the
// cache's own hit counters are the only sanctioned divergences.

func pagedEquivConfig(pages int) Config {
	cfg := equivConfig(false)
	cfg.MapCachePages = pages
	return cfg
}

func TestPagedMapEquivalenceWithSnapshots(t *testing.T) {
	for _, seed := range []int64{3, 11, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tree, err := New(pagedEquivConfig(0), nil)
			if err != nil {
				t.Fatal(err)
			}
			paged, err := New(pagedEquivConfig(-1), nil)
			if err != nil {
				t.Fatal(err)
			}
			if paged.pagedActive() == nil {
				t.Fatal("MapCachePages=-1 did not produce a paged map")
			}
			ss := tree.SectorSize()
			ops := genEquivOps(seed, tree.cfg.UserSectors, 250, 256)

			now := sim.Time(0)
			tbuf := make([]byte, 256*ss)
			pbuf := make([]byte, 256*ss)
			var liveSnaps []SnapshotID
			for i, op := range ops {
				var td, pd sim.Time
				var te, pe error
				switch op.kind {
				case 'w':
					data := runPattern(ss, op.lba, op.n, op.ver)
					td, te = tree.Write(now, op.lba, data)
					pd, pe = paged.Write(now, op.lba, data)
				case 'r':
					td, te = tree.Read(now, op.lba, tbuf[:op.n*ss])
					pd, pe = paged.Read(now, op.lba, pbuf[:op.n*ss])
					if string(tbuf[:op.n*ss]) != string(pbuf[:op.n*ss]) {
						t.Fatalf("op %d (%c lba=%d n=%d): payload mismatch", i, op.kind, op.lba, op.n)
					}
				case 't':
					td, te = tree.Trim(now, op.lba, int64(op.n))
					pd, pe = paged.Trim(now, op.lba, int64(op.n))
				case 's':
					var ts, ps *Snapshot
					ts, td, te = tree.CreateSnapshot(now)
					ps, pd, pe = paged.CreateSnapshot(now)
					if (ts == nil) != (ps == nil) {
						t.Fatalf("op %d: snapshot presence mismatch", i)
					}
					if ts != nil {
						if ts.ID != ps.ID {
							t.Fatalf("op %d: snapshot IDs diverge: %d vs %d", i, ts.ID, ps.ID)
						}
						liveSnaps = append(liveSnaps, ts.ID)
					}
				case 'd':
					if len(liveSnaps) == 0 {
						continue
					}
					id := liveSnaps[0]
					liveSnaps = liveSnaps[1:]
					td, te = tree.DeleteSnapshot(now, id)
					pd, pe = paged.DeleteSnapshot(now, id)
				}
				if (te == nil) != (pe == nil) {
					t.Fatalf("op %d (%c lba=%d n=%d): tree err %v, paged err %v", i, op.kind, op.lba, op.n, te, pe)
				}
				if td != pd {
					t.Fatalf("op %d (%c lba=%d n=%d): tree done %d, paged done %d (Δ %d)",
						i, op.kind, op.lba, op.n, td, pd, td.Sub(pd))
				}
				if td > now {
					now = td
				}
				tree.Scheduler().RunUntil(now)
				paged.Scheduler().RunUntil(now)
			}

			ts, ps := tree.Stats(), paged.Stats()
			if ps.MapPagesFlushed != 0 || ps.MapCacheEvictions != 0 {
				t.Fatalf("unbounded paged map touched flash: %+v", ps)
			}
			// Host RAM layout and the cache's hit counters are the sanctioned
			// divergences; everything else must match bit for bit.
			ts.MapMemory, ps.MapMemory = 0, 0
			ts.MapMemoryResident, ps.MapMemoryResident = 0, 0
			ts.MapCacheHits, ps.MapCacheHits = 0, 0
			ts.MapCacheMisses, ps.MapCacheMisses = 0, 0
			if ts != ps {
				t.Fatalf("Stats diverge:\ntree:  %+v\npaged: %+v", ts, ps)
			}
			if tdev, pdev := tree.Device().Stats(), paged.Device().Stats(); tdev != pdev {
				t.Fatalf("device Stats diverge:\ntree:  %+v\npaged: %+v", tdev, pdev)
			}
			tdig := deviceDigest(t, tree.Device())
			pdig := deviceDigest(t, paged.Device())
			if tdig != pdig {
				t.Fatalf("device images diverge: %s", firstDigestDiff(tdig, pdig))
			}
			if err := paged.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
